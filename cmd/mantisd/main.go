// Command mantisd runs a Mantis agent against a simulated switch
// loaded with a compiled .p4r program, drives synthetic traffic through
// it, and reports dialogue-loop statistics — a miniature of deploying
// the Mantis agent on a switch CPU.
//
// Usage:
//
//	mantisd [-duration 10ms] [-pacing 0] [-pps 100000] [-faults transient] program.p4r
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// faultProfile maps the -faults flag value to an injector profile.
func faultProfile(name string) (faults.Profile, bool) {
	switch name {
	case "", "none":
		return faults.None(), name != ""
	case "transient":
		return faults.TransientErrors(), true
	case "latency":
		return faults.LatencySpikes(), true
	case "partial":
		return faults.PartialBatches(), true
	case "stuck":
		return faults.StuckChannel(), true
	default:
		fmt.Fprintf(os.Stderr, "mantisd: unknown fault profile %q (want none|transient|latency|partial|stuck)\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

func main() {
	duration := flag.Duration("duration", 10*time.Millisecond, "virtual run time")
	pacing := flag.Duration("pacing", 0, "dialogue pacing (0 = busy loop)")
	pps := flag.Float64("pps", 100000, "synthetic traffic rate (packets/second)")
	seed := flag.Int64("seed", 1, "random seed")
	faultsFlag := flag.String("faults", "", "inject driver-channel faults: none|transient|latency|partial|stuck (enables agent recovery)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (independent of -seed)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mantisd [flags] program.p4r")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan, err := compiler.CompileSource(string(src), compiler.DefaultOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
		os.Exit(1)
	}

	s := sim.New(*seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
		os.Exit(1)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	var ch driver.Channel = drv
	var inj *faults.Injector
	opts := core.Options{Pacing: *pacing}
	if prof, active := faultProfile(*faultsFlag); active {
		inj = faults.Wrap(s, drv, prof, *faultSeed)
		ch = inj
		opts.Recovery = core.DefaultRecovery()
		// Let the prologue install cleanly; faults start shortly after.
		inj.SetEnabled(false)
		s.Schedule(50*sim.Microsecond, func() { inj.SetEnabled(true) })
	}
	agent := core.NewAgent(s, ch, plan, opts)
	agent.Start()

	// Synthetic traffic: random field values at the requested rate.
	if *pps > 0 {
		rng := s.Rand()
		names := plan.Prog.Schema.Names()
		interval := time.Duration(float64(time.Second) / *pps)
		s.Every(interval, func() {
			pkt := plan.Prog.Schema.New()
			pkt.Size = 64 + rng.Intn(1400)
			for _, n := range names {
				if len(n) > 5 && (n[:5] == "ipv4." || n[:4] == "tcp." || n[:4] == "hdr.") {
					pkt.SetName(n, uint64(rng.Int63()))
				}
			}
			sw.Inject(rng.Intn(sw.Config().NumPorts), pkt)
		})
	}

	s.RunFor(*duration)
	agent.Stop()
	s.RunFor(time.Millisecond)
	if err := agent.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: agent: %v\n", err)
		os.Exit(1)
	}

	ast := agent.Stats()
	sst := sw.Stats()
	dst := drv.Stats()
	fmt.Printf("virtual time:      %v\n", s.Now())
	fmt.Printf("dialogue:          %d iterations, %d commits, busy %v (%.1f%% CPU)\n",
		ast.Iterations, ast.Commits, ast.Busy, 100*float64(ast.Busy)/float64(s.Now().Duration()))
	fmt.Printf("iteration latency: %v\n", stats.SummarizeDurations(ast.Latencies))
	fmt.Printf("switch:            rx %d, tx %d, drops %d (ingress) / %d (queue)\n",
		sst.RxPackets, sst.TxPackets, sst.IngressDrops, sst.QueueDrops)
	fmt.Printf("driver:            %d table ops (%d memoized), %d reads (%d bytes)\n",
		dst.TableOps, dst.MemoizedOps, dst.RegReads, dst.RegReadBytes)
	if inj != nil {
		fst := inj.FaultStats()
		fmt.Printf("faults (%s):   %d ops, %d errors, %d spikes, %d partial batches, %d stuck waits (%v wedged)\n",
			inj.Profile().Name, fst.Ops, fst.InjectedErrors, fst.InjectedSpikes, fst.PartialBatches, fst.StuckWaits, fst.StuckTime)
		fmt.Printf("recovery:          %d retries, %d rollbacks, %d watchdog trips, %d abandoned, %d degraded, %d repair ops\n",
			ast.Retries, ast.Rollbacks, ast.WatchdogTrips, ast.Abandoned, ast.Degraded, ast.RepairOps)
	}
	for _, rxn := range plan.Reactions {
		fmt.Printf("reaction:          %s\n", rxn.Name)
	}
}
