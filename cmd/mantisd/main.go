// Command mantisd runs a Mantis agent against a simulated switch
// loaded with a compiled .p4r program, drives synthetic traffic through
// it, and reports dialogue-loop statistics — a miniature of deploying
// the Mantis agent on a switch CPU.
//
// Usage:
//
//	mantisd [-duration 10ms] [-pacing 0] [-pps 100000] [-faults transient] [-legacy-clients 4] program.p4r
//	mantisd -ctl-loss 0.01 -ctl-partition 700us/300us -ctl-delay 500ns program.p4r
//
// With -topology the single switch becomes a leaf–spine fabric running
// the built-in fabric programs and the network-wide DoS reference
// scenario (no program argument):
//
//	mantisd -topology leafspine:4,2 [-duration 10ms] [-ctl-loss 0.01]
//
// Fabric failures can be injected mid-run (the failure lands at 1/3 of
// -duration and heals at 2/3), exercising the per-leaf gray detectors
// and the coordinator's ECMP-exclude reroutes:
//
//	mantisd -topology leafspine:4,2 -fail-spine 1
//	mantisd -topology leafspine:4,2 -gray-trunk 0,1:0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/compiler/place"
	"repro/internal/core"
	"repro/internal/ctlchan"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ctlLinkProfile assembles the message-channel fault profile from the
// -ctl-* flags. The -ctl-partition value is EVERY/FOR, two durations:
// the link partitions for FOR every EVERY (e.g. 700us/300us).
func ctlLinkProfile(loss float64, partition string) (faults.LinkProfile, error) {
	prof := faults.LinkProfile{Name: "ctl", Loss: loss}
	if partition != "" {
		parts := strings.SplitN(partition, "/", 2)
		if len(parts) != 2 {
			return prof, fmt.Errorf("-ctl-partition %q: want EVERY/FOR (e.g. 700us/300us)", partition)
		}
		every, err := time.ParseDuration(parts[0])
		if err != nil {
			return prof, fmt.Errorf("-ctl-partition: %v", err)
		}
		for_, err := time.ParseDuration(parts[1])
		if err != nil {
			return prof, fmt.Errorf("-ctl-partition: %v", err)
		}
		if every <= 0 || for_ <= 0 {
			return prof, fmt.Errorf("-ctl-partition %q: durations must be positive", partition)
		}
		prof.PartitionEvery, prof.PartitionFor = every, for_
	}
	return prof, nil
}

// faultProfile maps the -faults flag value to an injector profile.
func faultProfile(name string) (faults.Profile, bool) {
	switch name {
	case "", "none":
		return faults.None(), name != ""
	case "transient":
		return faults.TransientErrors(), true
	case "latency":
		return faults.LatencySpikes(), true
	case "partial":
		return faults.PartialBatches(), true
	case "stuck":
		return faults.StuckChannel(), true
	case "crash-prepare":
		return faults.CrashMidPrepare(), true
	case "crash-commit":
		return faults.CrashAtCommit(), true
	case "crash-mirror":
		return faults.CrashMidMirror(), true
	default:
		fmt.Fprintf(os.Stderr, "mantisd: unknown fault profile %q (want none|transient|latency|partial|stuck|crash-prepare|crash-commit|crash-mirror)\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

// legacyChurnTarget picks a table for legacy bulk clients to churn: the
// first (alphabetically) non-malleable table that is not part of the
// compiler-generated init/loader machinery. Falls back to register
// reads when the program has no such table.
func legacyChurnTarget(plan *compiler.Plan) (table, action string, nKeys, nParams int, ok bool) {
	reserved := map[string]bool{}
	for _, it := range plan.InitTables {
		reserved[it.Table] = true
	}
	for _, se := range plan.StaticEntries {
		reserved[se.Table] = true
	}
	var names []string
	for name, tbl := range plan.Prog.Tables {
		if !tbl.Malleable && !reserved[name] && len(tbl.ActionNames) > 0 && len(tbl.Keys) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", "", 0, 0, false
	}
	sort.Strings(names)
	tbl := plan.Prog.Tables[names[0]]
	act := plan.Prog.Actions[tbl.ActionNames[0]]
	return tbl.Name, act.Name, len(tbl.Keys), len(act.Params), true
}

// legacyReadTarget picks a register for read-only churn fallback.
func legacyReadTarget(prog *p4.Program) (reg string, n uint64, ok bool) {
	var names []string
	for name := range prog.Registers {
		names = append(names, name)
	}
	if len(names) == 0 {
		return "", 0, false
	}
	sort.Strings(names)
	r := prog.Registers[names[0]]
	n = uint64(r.Instances)
	if n > 16 {
		n = 16
	}
	return names[0], n, true
}

// parseGrayTrunk parses -gray-trunk's L,S[:RATE] form.
func parseGrayTrunk(spec string) (leaf, spine int, rate float64, err error) {
	rate = 0.3
	lhs := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		lhs = spec[:i]
		if _, err = fmt.Sscanf(spec[i+1:], "%g", &rate); err != nil || rate <= 0 || rate > 1 {
			return 0, 0, 0, fmt.Errorf("-gray-trunk %q: rate must be in (0,1]", spec)
		}
	}
	if _, err = fmt.Sscanf(lhs, "%d,%d", &leaf, &spine); err != nil {
		return 0, 0, 0, fmt.Errorf("-gray-trunk %q: want L,S[:RATE] (e.g. 0,1:0.3)", spec)
	}
	return leaf, spine, rate, nil
}

// runTopology is the -topology mode: a leaf–spine fabric of switches,
// each with its own agent over a lossy control channel, running the
// network-wide DoS scenario end to end. failSpine ≥ 0 crashes that
// spine at duration/3 and restores it at 2·duration/3; grayTrunk (if
// non-empty) silently degrades one leaf↔spine trunk over the same
// window instead.
func runTopology(spec string, duration, pacing time.Duration, seed int64, ctlDelay time.Duration, ctlProf faults.LinkProfile, failSpine int, grayTrunk, target string) {
	rest, ok := strings.CutPrefix(spec, "leafspine:")
	var leaves, spines int
	if ok {
		if _, err := fmt.Sscanf(rest, "%d,%d", &leaves, &spines); err != nil {
			ok = false
		}
	}
	if !ok || leaves < 1 || spines < 1 {
		fmt.Fprintf(os.Stderr, "mantisd: -topology %q: want leafspine:L,S with L,S ≥ 1\n", spec)
		os.Exit(2)
	}

	cfg := fabric.DosFabricConfig{Fabric: fabric.Config{
		Leaves: leaves, Spines: spines, Seed: seed,
		Pacing: pacing, CtlDelay: ctlDelay, CtlProfile: ctlProf,
		Target: target,
	}}
	if ctlProf.Loss > 0 || ctlProf.PartitionEvery > 0 {
		// Sustained channel faults need a longer per-op budget; see
		// fabric.Config.CtlOpDeadline.
		cfg.Fabric.CtlOpDeadline = 2 * time.Millisecond
	}
	s := sim.New(seed)
	d, err := fabric.NewDosFabric(s, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
		os.Exit(1)
	}
	// Failure injection: land at 1/3 of the run, heal at 2/3, so the
	// report shows detection, reroute, and restore all inside -duration.
	failAt, healAt := duration/3, 2*duration/3
	if failSpine >= 0 {
		if failSpine >= spines {
			fmt.Fprintf(os.Stderr, "mantisd: -fail-spine %d: fabric has spines 0..%d\n", failSpine, spines-1)
			os.Exit(2)
		}
		name := d.F.Spines[failSpine].Name
		s.Schedule(failAt, func() {
			if err := d.F.Crash(name); err != nil {
				fmt.Fprintf(os.Stderr, "mantisd: crash %s: %v\n", name, err)
			}
		})
		s.Schedule(healAt, func() {
			if err := d.F.Restore(name); err != nil {
				fmt.Fprintf(os.Stderr, "mantisd: restore %s: %v\n", name, err)
			}
		})
	}
	if grayTrunk != "" {
		gl, gs, rate, err := parseGrayTrunk(grayTrunk)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
			os.Exit(2)
		}
		if gl < 0 || gl >= leaves || gs < 0 || gs >= spines {
			fmt.Fprintf(os.Stderr, "mantisd: -gray-trunk %d,%d: fabric is %d×%d\n", gl, gs, leaves, spines)
			os.Exit(2)
		}
		tr := d.F.Trunks[gl][gs]
		s.Schedule(failAt, func() { tr.SetGray(rate) })
		s.Schedule(healAt, func() { tr.SetGray(0) })
	}

	const warmup = 2 * time.Millisecond
	tail := duration - warmup
	if tail < time.Millisecond {
		tail = time.Millisecond
	}
	if err := d.Run(warmup, tail); err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("topology:          leaf-spine %d×%d (%d switches), victim on leaf0, flood at spine0's border port\n",
		leaves, spines, leaves+spines)
	fmt.Printf("virtual time:      %v\n", s.Now())
	for _, n := range d.F.Nodes() {
		ast := n.Agent.Stats()
		cs := n.AgentCli.ChanStats()
		ccs := n.CoordCli.ChanStats()
		fmt.Printf("  %-8s %6d iterations, %5d commits, agent ch %d ops (%d retx), coord ch %d ops (%d retx)\n",
			n.Name, ast.Iterations, ast.Commits, cs.Ops, cs.Retransmits, ccs.Ops, ccs.Retransmits)
	}
	var up, down netsim.TrunkStats
	for _, row := range d.F.Trunks {
		for _, tr := range row {
			u, dn := tr.Stats(0), tr.Stats(1)
			up.Sent += u.Sent
			up.Delivered += u.Delivered
			up.Lost += u.Lost
			down.Sent += dn.Sent
			down.Delivered += dn.Delivered
			down.Lost += dn.Lost
		}
	}
	fmt.Printf("trunks:            leaf→spine %d sent / %d delivered, spine→leaf %d sent / %d delivered, %d lost\n",
		up.Sent, up.Delivered, down.Sent, down.Delivered, up.Lost+down.Lost)
	// Per-trunk drop-reason accounting: only trunks that dropped
	// anything are listed, with the cause split out.
	for l, row := range d.F.Trunks {
		for sp, tr := range row {
			var t netsim.TrunkStats
			for _, st := range []netsim.TrunkStats{tr.Stats(0), tr.Stats(1)} {
				t.Lost += st.Lost
				t.PartitionDrops += st.PartitionDrops
				t.AdminDownDrops += st.AdminDownDrops
				t.GrayDrops += st.GrayDrops
			}
			if t.Lost+t.PartitionDrops+t.AdminDownDrops+t.GrayDrops == 0 {
				continue
			}
			fmt.Printf("  leaf%d↔spine%d: %d lost (profile), %d partition, %d admin-down, %d gray\n",
				l, sp, t.Lost, t.PartitionDrops, t.AdminDownDrops, t.GrayDrops)
		}
	}

	cst := d.F.Coord.Stats()
	fmt.Printf("coordinator:       %d events (%d blocks, %d hh reports), %d filter installs, %d degraded (%d audited present, %d reissued)\n",
		cst.Events, cst.Blocks, cst.HHReports, cst.FilterInstalls, cst.DegradedInstalls, cst.AuditConfirmed, cst.Reissues)
	if cst.GraySuspects+cst.GrayClears > 0 {
		fmt.Printf("health:            %d gray suspects, %d clears, %d reroutes (%d route moves, %d degraded, %d reissued)\n",
			cst.GraySuspects, cst.GrayClears, cst.Reroutes, cst.RouteMoves, cst.DegradedRouteMoves, cst.RouteReissues)
		for sp := range d.F.Spines {
			h := d.F.Coord.Health(sp)
			suspects := make([]string, 0, len(h.Suspects))
			for name := range h.Suspects {
				suspects = append(suspects, name)
			}
			sort.Strings(suspects)
			line := fmt.Sprintf("  spine%d: %v", sp, h.State)
			if len(suspects) > 0 {
				line += fmt.Sprintf(" (suspected by %s)", strings.Join(suspects, ", "))
			}
			fmt.Println(line)
		}
		for _, rr := range d.F.Coord.Reroutes() {
			verb := "exclude"
			if !rr.Exclude {
				verb = "restore"
			}
			done := "pending"
			if rr.DoneAt != 0 {
				done = fmt.Sprintf("committed +%v", rr.DoneAt.Sub(rr.At))
			}
			fmt.Printf("  reroute @%v: %s spine%d (evidence %s), %d moves, %s\n",
				rr.At, verb, rr.Spine, rr.Leaf, rr.Moves, done)
		}
	}
	if esc := d.Escalation(); esc != nil {
		fmt.Printf("escalation:        detected by %s %v after flood start; spines filtered +%v, all %d switches +%v\n",
			esc.DetectedBy, esc.DetectedAt.Sub(d.FloodStart), esc.SpinesDoneAt.Sub(esc.DetectedAt),
			len(esc.Installed), esc.AllDoneAt.Sub(esc.DetectedAt))
		if sup, err := d.Suppression(s.Now()); err == nil {
			fmt.Printf("suppression:       %.1f%% of attack traffic removed from the victim leaf's trunks\n", sup*100)
		}
	} else {
		fmt.Printf("escalation:        none (flood never detected within -duration)\n")
	}
	fmt.Printf("heavy hitters:     top 5 of %d tracked senders:\n", len(d.DeliveredBySrc))
	for _, e := range d.F.Coord.TopK(5) {
		fmt.Printf("  %#x  est %d bytes  (delivered %d)\n", e.Src, e.Bytes, d.DeliveredBySrc[e.Src])
	}
}

func main() {
	duration := flag.Duration("duration", 10*time.Millisecond, "virtual run time")
	pacing := flag.Duration("pacing", 0, "dialogue pacing (0 = busy loop)")
	pps := flag.Float64("pps", 100000, "synthetic traffic rate (packets/second)")
	seed := flag.Int64("seed", 1, "random seed")
	faultsFlag := flag.String("faults", "", "inject driver-channel faults: none|transient|latency|partial|stuck (enables agent recovery), or crash the primary with crash-prepare|crash-commit|crash-mirror (enables journaled failover to a standby)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (independent of -seed)")
	legacyClients := flag.Int("legacy-clients", 0, "concurrent legacy control-plane clients churning a table through bulk sessions")
	sched := flag.String("sched", "priority", "control-plane scheduling policy: priority|fifo")
	ctlDelay := flag.Duration("ctl-delay", 0, "run the dialogue over a message-based control channel with this one-way link delay (0 = in-process calls unless another -ctl-* flag is set, then 500ns)")
	ctlLoss := flag.Float64("ctl-loss", 0, "control-channel frame loss probability per direction (implies the message channel)")
	ctlPartition := flag.String("ctl-partition", "", "periodic control-channel partitions, EVERY/FOR (e.g. 700us/300us; implies the message channel)")
	topology := flag.String("topology", "", "run a multi-switch fabric instead of one switch: leafspine:L,S (uses built-in programs; no program argument)")
	target := flag.String("target", "", "switch profile the program must place under (default: the compiler's generic-16stage; \"none\" skips the placement check)")
	failSpine := flag.Int("fail-spine", -1, "with -topology: crash this spine (all trunks down, control endpoints dead, agent halted) at duration/3, restore at 2·duration/3")
	grayTrunk := flag.String("gray-trunk", "", "with -topology: silently degrade one leaf↔spine trunk, L,S[:RATE] (e.g. 0,1:0.3), over the same fail/heal window")
	flag.Parse()

	if *topology != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "mantisd: -topology uses the built-in fabric programs; no program argument")
			os.Exit(2)
		}
		if *faultsFlag != "" || *legacyClients > 0 {
			fmt.Fprintln(os.Stderr, "mantisd: -topology cannot be combined with -faults or -legacy-clients")
			os.Exit(2)
		}
		ctlProf, err := ctlLinkProfile(*ctlLoss, *ctlPartition)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
			os.Exit(2)
		}
		runTopology(*topology, *duration, *pacing, *seed, *ctlDelay, ctlProf, *failSpine, *grayTrunk, *target)
		return
	}
	if *failSpine >= 0 || *grayTrunk != "" {
		fmt.Fprintln(os.Stderr, "mantisd: -fail-spine and -gray-trunk require -topology")
		os.Exit(2)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mantisd [flags] program.p4r")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	copts := compiler.DefaultOptions()
	switch *target {
	case "none":
	case "":
		copts.Target = place.DefaultTarget
	default:
		copts.Target = *target
	}
	plan, err := compiler.CompileSource(string(src), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
		os.Exit(1)
	}
	if plan.Placement != nil {
		fmt.Printf("placement:         profile %s, %d ingress + %d egress stages, fits\n",
			plan.Placement.Profile.Name, plan.Placement.IngressStages, plan.Placement.EgressStages)
	}

	s := sim.New(*seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
		os.Exit(1)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	ch := driver.Channel(drv)
	var inj *faults.Injector
	opts := core.Options{Pacing: *pacing}
	prof, faultsActive := faultProfile(*faultsFlag)
	crash := faultsActive && prof.CrashEnabled()
	if faultsActive && !crash {
		// In-process fault classes wrap the shared channel below the
		// control-plane service; the agent's recovery loop survives them.
		inj = faults.Wrap(s, drv, prof, *faultSeed)
		ch = inj
		opts.Recovery = core.DefaultRecovery()
		// Let the prologue install cleanly; faults start shortly after.
		inj.SetEnabled(false)
		s.Schedule(50*sim.Microsecond, func() { inj.SetEnabled(true) })
	}
	var policy ctlplane.Policy
	switch *sched {
	case "priority":
		policy = ctlplane.PolicyPriority
	case "fifo":
		policy = ctlplane.PolicyFIFO
	default:
		fmt.Fprintf(os.Stderr, "mantisd: unknown scheduling policy %q (want priority|fifo)\n", *sched)
		os.Exit(2)
	}
	ctlEnabled := *ctlDelay > 0 || *ctlLoss > 0 || *ctlPartition != ""
	if ctlEnabled && crash {
		fmt.Fprintln(os.Stderr, "mantisd: -ctl-* flags cannot be combined with crash fault profiles (the standby takes over through the control-plane service, not the message channel)")
		os.Exit(2)
	}
	// The control-plane service sits above the (possibly fault-injected)
	// channel: the agent holds the primary session, legacy clients get
	// bulk sessions, and dialogue ops are scheduled ahead of bulk churn.
	svc := ctlplane.New(s, ch, ctlplane.Options{Policy: policy})
	var agent *core.Agent
	var sb *core.Standby
	var ctlLink *netsim.Link
	var ctlSrv *ctlchan.Server
	var ctlCli *ctlchan.Client
	if crash {
		// A crash profile kills the agent process outright, so the wiring
		// is the failover stack: the injector wraps the primary's own
		// session (the shared dispatcher must survive the crash), the
		// agent write-ahead journals every iteration, and a hot standby
		// watches the journal heartbeat, ready to elect itself primary
		// and reconcile the switch.
		sess, err := svc.Open(ctlplane.SessionOptions{
			Name: "mantis-agent", Role: ctlplane.RolePrimary, ElectionID: 1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
			os.Exit(1)
		}
		inj = faults.Wrap(s, sess, prof, *faultSeed)
		store := journal.NewMemStore()
		opts.Recovery = core.DefaultRecovery()
		opts.Journal = &core.JournalConfig{Store: store}
		agent = core.NewAgent(s, inj, plan, opts)
		inj.SetEnabled(false)
		s.Schedule(50*sim.Microsecond, func() { inj.SetEnabled(true) })
		sb = core.NewStandby(s, svc, core.StandbyOptions{
			Name:       "standby",
			ElectionID: 2,
			Store:      store,
			Plan:       plan,
			Agent:      core.Options{Pacing: *pacing, Recovery: core.DefaultRecovery()},
		})
	} else if ctlEnabled {
		// Message-channel mode: the agent's session is reached over a
		// simulated lossy link — request/response frames with sequence
		// numbers, retransmission, and epoch fencing — instead of
		// in-process calls. The link starts clean so the prologue installs
		// reliably; the configured faults arm at 50µs.
		ctlProf, err := ctlLinkProfile(*ctlLoss, *ctlPartition)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
			os.Exit(2)
		}
		delay := *ctlDelay
		if delay <= 0 {
			delay = 500 * time.Nanosecond
		}
		sess, err := svc.Open(ctlplane.SessionOptions{
			Name: "mantis-agent", Role: ctlplane.RolePrimary, ElectionID: 1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
			os.Exit(1)
		}
		ctlLink = netsim.NewLink(s, delay, faults.LinkNone(), *seed)
		ctlSrv = ctlchan.NewServer(s)
		ctlSrv.Attach(ctlLink, netsim.LinkSideB, 1, 1, sess)
		ctlCli = ctlchan.NewClient(s, ctlLink, netsim.LinkSideA, ctlchan.ClientOptions{
			Session: 1, Epoch: 1, Meta: drv,
		})
		s.Schedule(50*sim.Microsecond, func() { ctlLink.SetProfile(ctlProf) })
		opts.Recovery = core.RecoveryForChannel(ctlCli.RTT())
		opts.Journal = &core.JournalConfig{Store: journal.NewMemStore()}
		agent = core.NewAgent(s, ctlCli, plan, opts)
	} else {
		var err error
		agent, _, err = core.NewSessionAgent(s, svc, 1, plan, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
			os.Exit(1)
		}
	}
	agent.Start()

	// Legacy clients churn a non-Mantis table (or fall back to register
	// reads) through their own bulk sessions, best-effort under faults.
	legacyErrs := 0
	if *legacyClients > 0 {
		table, action, nKeys, nParams, haveTable := legacyChurnTarget(plan)
		reg, regN, haveReg := legacyReadTarget(plan.Prog)
		if !haveTable && !haveReg {
			fmt.Fprintln(os.Stderr, "mantisd: -legacy-clients: program has no non-Mantis table or register to churn")
			os.Exit(2)
		}
		for c := 0; c < *legacyClients; c++ {
			c := c
			sess, err := svc.Open(ctlplane.SessionOptions{
				Name: fmt.Sprintf("legacy%d", c), Role: ctlplane.RoleLegacy,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mantisd: %v\n", err)
				os.Exit(1)
			}
			s.Spawn(sess.Name(), func(p *sim.Proc) {
				rng := s.Rand()
				var h rmt.EntryHandle
				if haveTable {
					keys := make([]rmt.KeySpec, nKeys)
					for i := range keys {
						keys[i] = rmt.ExactKey(uint64(c + 1))
					}
					var err error
					if h, err = sess.AddEntry(p, table, rmt.Entry{
						Keys: keys, Action: action, Data: make([]uint64, nParams),
					}); err != nil {
						legacyErrs++
						return
					}
				}
				for i := 0; ; i++ {
					p.Sleep(time.Duration(rng.Intn(5000)) * time.Nanosecond)
					var err error
					if haveTable {
						data := make([]uint64, nParams)
						for j := range data {
							data[j] = uint64(i)
						}
						err = sess.ModifyEntry(p, table, h, action, data)
					} else {
						_, err = sess.BatchRead(p, []driver.ReadReq{{Reg: reg, Lo: 0, Hi: regN}})
					}
					if err != nil {
						legacyErrs++
					}
				}
			})
		}
	}

	// Synthetic traffic: random field values at the requested rate.
	if *pps > 0 {
		rng := s.Rand()
		names := plan.Prog.Schema.Names()
		interval := time.Duration(float64(time.Second) / *pps)
		s.Every(interval, func() {
			pkt := plan.Prog.Schema.New()
			pkt.Size = 64 + rng.Intn(1400)
			for _, n := range names {
				if len(n) > 5 && (n[:5] == "ipv4." || n[:4] == "tcp." || n[:4] == "hdr.") {
					pkt.SetName(n, uint64(rng.Int63()))
				}
			}
			sw.Inject(rng.Intn(sw.Config().NumPorts), pkt)
		})
	}

	s.RunFor(*duration)
	agent.Stop()
	if sb != nil {
		sb.Stop()
		if succ := sb.Agent(); succ != nil {
			succ.Stop()
		}
	}
	s.RunFor(time.Millisecond)
	if err := agent.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mantisd: agent: %v\n", err)
		os.Exit(1)
	}

	ast := agent.Stats()
	sst := sw.Stats()
	dst := drv.Stats()
	fmt.Printf("virtual time:      %v\n", s.Now())
	fmt.Printf("dialogue:          %d iterations, %d commits, busy %v (%.1f%% CPU)\n",
		ast.Iterations, ast.Commits, ast.Busy, 100*float64(ast.Busy)/float64(s.Now().Duration()))
	fmt.Printf("iteration latency: %v\n", stats.SummarizeDurations(ast.Latencies))
	fmt.Printf("switch:            rx %d, tx %d, drops %d (ingress) / %d (queue)\n",
		sst.RxPackets, sst.TxPackets, sst.IngressDrops, sst.QueueDrops)
	fmt.Printf("driver:            %d table ops (%d memoized), %d reads (%d bytes)\n",
		dst.TableOps, dst.MemoizedOps, dst.RegReads, dst.RegReadBytes)
	cst := svc.Stats()
	fmt.Printf("ctlplane:          policy %s, %d sessions, %d dialogue ops, %d bulk ops, %d reads coalesced, %d writes coalesced, %d rejections, %d demotions\n",
		policy, len(svc.Sessions()), cst.DialogueOps, cst.BulkOps, cst.ReadsCoalesced, cst.WritesCoalesced, cst.Rejections, cst.Demotions)
	for _, sess := range svc.Sessions() {
		sst := sess.SessionStats()
		meanWait := time.Duration(0)
		if sst.Completed > 0 {
			meanWait = sst.TotalWait / time.Duration(sst.Completed)
		}
		fmt.Printf("  session %-14s %s/%s: %d completed, %d failed, %d rejected, max queue %d, mean wait %v, max wait %v\n",
			sess.Name(), sess.Role(), sess.Class(), sst.Completed, sst.Failed, sst.Rejected, sst.MaxQueueDepth, meanWait, sst.MaxWait)
	}
	if legacyErrs > 0 {
		fmt.Printf("legacy clients:    %d operations failed (best-effort churn under faults)\n", legacyErrs)
	}
	if inj != nil {
		fst := inj.FaultStats()
		fmt.Printf("faults (%s):   %d ops, %d errors, %d spikes, %d partial batches, %d stuck waits (%v wedged)\n",
			inj.Profile().Name, fst.Ops, fst.InjectedErrors, fst.InjectedSpikes, fst.PartialBatches, fst.StuckWaits, fst.StuckTime)
		fmt.Printf("recovery:          %d retries, %d rollbacks, %d watchdog trips, %d abandoned, %d degraded, %d repair ops\n",
			ast.Retries, ast.Rollbacks, ast.WatchdogTrips, ast.Abandoned, ast.Degraded, ast.RepairOps)
	}
	if ctlCli != nil {
		cs, css, ls := ctlCli.ChanStats(), ctlSrv.Stats(), ctlLink.Stats()
		fmt.Printf("ctl channel:       rtt %v, %d ops, %d frames sent, %d retransmits, %d timeouts, %d late responses, %d window waits\n",
			ctlCli.RTT(), cs.Ops, cs.Sent, cs.Retransmits, cs.Timeouts, cs.LateResponses, cs.WindowWaits)
		fmt.Printf("  server:          %d frames, %d executed (%d mutations), %d dedup hits, %d stale rejected, %d fenced\n",
			css.Frames, css.Executed, css.MutationsExecuted, css.DedupHits, css.StaleWrites, css.FencedWrites)
		fmt.Printf("  link:            %d sent, %d delivered, %d lost, %d partition drops, %d duplicated, %d reordered\n",
			ls.Sent, ls.Delivered, ls.Lost, ls.PartitionDrops, ls.Duplicated, ls.Reordered)
		fmt.Printf("  recovery:        %d retries, %d abandoned, %d degraded, %d resyncs (%d repair writes), %d staleness aborts\n",
			ast.Retries, ast.Abandoned, ast.Degraded, ast.Resyncs, ast.ResyncWrites, ast.StalenessAborts)
	}
	if sb != nil {
		if err := sb.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "mantisd: standby: %v\n", err)
			os.Exit(1)
		}
		if !sb.TookOver() {
			fmt.Printf("takeover:          none (crash never fired within -duration, or primary still healthy)\n")
		} else {
			rep := sb.Report()
			succ := sb.Agent()
			if err := succ.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "mantisd: successor: %v\n", err)
				os.Exit(1)
			}
			crashAt := inj.CrashedAt()
			sst := succ.Stats()
			fmt.Printf("takeover:          outcome %s, %d repair writes over %d audited entries\n",
				rep.Recover.Outcome, rep.Recover.RepairWrites, rep.Recover.AuditedEntries)
			fmt.Printf("  MTTR:            %v (detect %v, audit %v, reconcile %v, resume %v)\n",
				rep.ResumedAt.Sub(crashAt), rep.DetectedAt.Sub(crashAt),
				rep.Recover.AuditTime, rep.Recover.ReconcileTime, rep.ResumedAt.Sub(rep.RecoveredAt))
			fmt.Printf("  successor:       %d iterations, %d commits after takeover\n", sst.Iterations-rep.Recover.Iteration, sst.Commits)
		}
	}
	for _, rxn := range plan.Reactions {
		fmt.Printf("reaction:          %s\n", rxn.Name)
	}
}
