// Command perfbench runs the hot-path microbenchmark suite and manages
// the checked-in performance baseline.
//
// Regenerate the baseline (after intentional perf-relevant changes):
//
//	perfbench -out BENCH_rmt.json -note "dev laptop, go1.24"
//
// Check the current tree against the baseline (CI runs this enforcing:
// non-zero exit on regression, with the default 2x time tolerance and
// zero allocation tolerance; -report-only downgrades regressions to a
// log line for ad-hoc comparisons on very noisy machines):
//
//	perfbench -baseline BENCH_rmt.json -check
//	perfbench -baseline BENCH_rmt.json -check -report-only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perf"
)

func main() {
	out := flag.String("out", "", "write measured metrics to this baseline file")
	baseline := flag.String("baseline", "", "baseline file to compare against")
	check := flag.Bool("check", false, "compare against -baseline and fail on regression")
	tolerance := flag.Float64("tolerance", perf.DefaultOptions().NsTolerance,
		"allowed relative ns/op growth before a time regression is flagged")
	allocTolerance := flag.Int64("alloc-tolerance", perf.DefaultOptions().AllocTolerance,
		"allowed absolute allocs/op growth before an alloc regression is flagged")
	reportOnly := flag.Bool("report-only", false, "report regressions but exit 0")
	note := flag.String("note", "", "provenance note stored in the baseline")
	flag.Parse()

	if *out == "" && !*check {
		fmt.Fprintln(os.Stderr, "perfbench: nothing to do: pass -out and/or -check (see -h)")
		os.Exit(2)
	}
	if *check && *baseline == "" {
		fmt.Fprintln(os.Stderr, "perfbench: -check requires -baseline")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "perfbench: running %d benchmarks...\n", len(perf.HotPathBenchmarks()))
	cur := &perf.Baseline{Note: *note, Metrics: perf.Run()}
	fmt.Print(perf.FormatMetrics(cur.Metrics))

	if *out != "" {
		if err := cur.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "perfbench: wrote %s\n", *out)
	}
	if *check {
		base, err := perf.Load(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %v\n", err)
			os.Exit(1)
		}
		opt := perf.Options{NsTolerance: *tolerance, AllocTolerance: *allocTolerance}
		regs := perf.Compare(base, cur, opt)
		fmt.Print(perf.FormatReport(regs))
		os.Exit(perf.CheckResult(regs, *reportOnly))
	}
}
