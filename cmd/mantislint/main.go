// Command mantislint runs this repository's custom Go invariant
// checkers (internal/lint): wrapcheck, simclock, and journalintent.
//
// It speaks two protocols:
//
//	mantislint ./...                 # standalone: walk the module, report findings
//	go vet -vettool=$(pwd)/mantislint ./...   # unit-checker mode driven by cmd/go
//
// In vettool mode cmd/go invokes the binary once per package with a
// single .cfg (JSON) argument describing the unit, after querying
// `-V=full` (version fingerprint for the build cache) and `-flags`
// (supported analyzer flags). Findings go to stderr as
// file:line:col: message, with a nonzero exit status — the same
// contract golang.org/x/tools' unitchecker implements, hand-rolled here
// because the module graph is hermetic (no external deps).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Protocol handshakes from cmd/go come before anything else.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: every analyzer always runs.
			fmt.Println("[]")
			return
		case a == "-list" || a == "--list":
			for _, an := range lint.All() {
				fmt.Printf("%-14s %s\n", an.Name, an.Doc)
			}
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion emits the `name version ... buildID=` line cmd/go hashes
// into its action cache; fingerprinting the executable itself means a
// rebuilt linter invalidates stale vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("mantislint version devel buildID=%x\n", h.Sum(nil))
}

// vetConfig is the subset of cmd/go's vet .cfg schema this tool needs.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runUnit analyzes one package unit on behalf of `go vet -vettool`.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mantislint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The driver requires the facts file to exist even though these
	// analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mantislint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := analyzeFiles(cfg.GoFiles, cfg.ImportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runStandalone walks package directories (the "./..." form or explicit
// dirs) under the current module and analyzes each.
func runStandalone(args []string) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	module, root, err := moduleInfo()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
		return 2
	}

	dirs := map[string]bool{}
	for _, arg := range args {
		recursive := false
		if strings.HasSuffix(arg, "/...") {
			recursive = true
			arg = strings.TrimSuffix(arg, "/...")
		}
		if arg == "" || arg == "." {
			arg = root
		}
		if !recursive {
			dirs[filepath.Clean(arg)] = true
			continue
		}
		err := filepath.Walk(arg, func(path string, info os.FileInfo, walkErr error) error {
			if walkErr != nil {
				return walkErr
			}
			if info.IsDir() {
				base := filepath.Base(path)
				if base == "testdata" || base == ".git" || base == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if filepath.Ext(path) == ".go" {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
			return 2
		}
	}

	exit := 0
	for _, dir := range sortedKeys(dirs) {
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = dir
		}
		importPath := module
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
			return 2
		}
		diags, err := analyzeFiles(paths, importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mantislint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
			exit = 1
		}
	}
	return exit
}

func analyzeFiles(paths []string, importPath string) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return lint.RunAll(fset, files, importPath)
}

// moduleInfo finds the enclosing go.mod and returns its module path and
// directory.
func moduleInfo() (module, root string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
