// Command mantisc is the Mantis compiler CLI: it translates a .p4r file
// into the generated (malleable) P4 program and a summary of the
// reaction plan — the analogue of the paper's Flex/Bison compiler
// emitting a P4 program and C reaction code.
//
// Usage:
//
//	mantisc [-o out.p4] [-plan] program.p4r
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/compiler"
)

func main() {
	out := flag.String("o", "", "write generated P4 to this file (default stdout)")
	showPlan := flag.Bool("plan", true, "print the reaction plan summary to stderr")
	maxInitBits := flag.Int("max-init-bits", 512, "platform limit on init-action parameter bits")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mantisc [-o out.p4] program.p4r")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := compiler.DefaultOptions()
	opts.ProgramName = flag.Arg(0)
	opts.MaxInitActionBits = *maxInitBits
	plan, err := compiler.CompileSource(string(src), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mantisc: %v\n", err)
		os.Exit(1)
	}

	generated := plan.Prog.Print()
	if *out == "" {
		fmt.Print(generated)
	} else if err := os.WriteFile(*out, []byte(generated), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *showPlan {
		w := os.Stderr
		fmt.Fprintf(w, "-- reaction plan --\n")
		fmt.Fprintf(w, "source: %d LoC -> generated P4: %d LoC\n", plan.SourceLines, plan.Prog.LineCount())
		fmt.Fprintf(w, "version bits: vv=%v mv=%v\n", plan.UsesVV, plan.UsesMV)
		for i, it := range plan.InitTables {
			role := "shadowed"
			if it.Master {
				role = "master"
			}
			fmt.Fprintf(w, "init table %d: %s (%s, %d params)\n", i, it.Table, role, len(it.Params))
		}
		var names []string
		for name := range plan.MblValues {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mv := plan.MblValues[name]
			fmt.Fprintf(w, "malleable value %s: width %d init %d -> %s\n", name, mv.Width, mv.Init, mv.MetaField)
		}
		names = names[:0]
		for name := range plan.MblFields {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mf := plan.MblFields[name]
			fmt.Fprintf(w, "malleable field %s: alts %v selector %s\n", name, mf.Alts, mf.Selector)
		}
		names = names[:0]
		for name := range plan.MblTables {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ti := plan.MblTables[name]
			fmt.Fprintf(w, "malleable table %s: %d generated key columns (vv col %d)\n", name, ti.GenKeyCount, ti.VVCol)
		}
		for _, rxn := range plan.Reactions {
			fmt.Fprintf(w, "reaction %s: %d ing slots, %d egr slots, %d register params, %d malleable params\n",
				rxn.Name, len(rxn.IngSlots), len(rxn.EgrSlots), len(rxn.RegParams), len(rxn.MblParams))
		}
		res := plan.Prog.EstimateResources(nil)
		fmt.Fprintf(w, "resources: %d stages, %d tables, %d registers, SRAM %dKb, TCAM %dKb, metadata %db\n",
			res.Stages, res.NumTables, res.NumRegisters, res.SRAMBits/1024, res.TCAMBits/1024, res.MetadataBits)
	}
}
