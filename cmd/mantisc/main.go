// Command mantisc is the Mantis compiler CLI: it translates a .p4r file
// into the generated (malleable) P4 program and a summary of the
// reaction plan — the analogue of the paper's Flex/Bison compiler
// emitting a P4 program and C reaction code.
//
// Usage:
//
//	mantisc [-o out.p4] [-plan] [-check] [-Werror] [-target profile] [-report] program.p4r
//
// With -check, mantisc runs the full analysis pipeline (semantic
// analyzer, and — unless -target none — lowering plus the RMT placement
// pass) printing every diagnostic without generating code. -target
// selects the switch profile the placement pass charges the program
// against (a built-in name like generic-16stage/tofino-like/mini, or a
// JSON profile file); -report prints the placement stage map with
// per-stage utilization to stdout.
//
// Both the -check and full compile paths end with a one-line summary
// "path: N errors, M warnings" on stderr, and exit non-zero iff N > 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/compiler"
	"repro/internal/compiler/place"
	"repro/internal/p4r/diag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code lifted out for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mantisc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write generated P4 to this file (default stdout)")
	showPlan := fs.Bool("plan", true, "print the reaction plan summary to stderr")
	maxInitBits := fs.Int("max-init-bits", 512, "platform limit on init-action parameter bits")
	checkOnly := fs.Bool("check", false, "analyze and place only; report diagnostics, generate nothing")
	werror := fs.Bool("Werror", false, "treat warnings as errors")
	target := fs.String("target", place.DefaultTarget,
		"switch profile for the RMT placement pass: a built-in name, a .json profile file, or \"none\" to skip placement")
	report := fs.Bool("report", false, "print the placement stage map and per-stage utilization to stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: mantisc [-o out.p4] [-check] [-Werror] [-target profile] [-report] program.p4r")
		return 2
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	opts := compiler.DefaultOptions()
	opts.ProgramName = path
	opts.MaxInitActionBits = *maxInitBits
	opts.Werror = *werror
	if *target != "" && *target != "none" {
		opts.Target = *target
	}
	if *report && opts.Target == "" {
		fmt.Fprintln(stderr, "mantisc: -report needs a placement target (drop -target none)")
		return 2
	}

	plan, cerr := compiler.CompileSource(string(src), opts)
	// Render every diagnostic: the error side (which may be a structured
	// list) plus warnings that survived a successful compile.
	errs, warns := printDiags(stderr, path, cerr)
	if plan != nil && cerr == nil && plan.Diags != nil {
		for _, d := range plan.Diags.Warnings() {
			fmt.Fprintf(stderr, "%s: %s\n", path, d.Error())
			warns++
		}
	}

	// A placement report is printed even when placement failed — the
	// stage map (with its overflow rows) is how you see why.
	if *report && plan != nil && plan.Placement != nil {
		fmt.Fprint(stdout, plan.Placement.Report())
	}

	if cerr == nil && !*checkOnly {
		generated := plan.Prog.Print()
		if *out == "" {
			fmt.Fprint(stdout, generated)
		} else if werr := os.WriteFile(*out, []byte(generated), 0o644); werr != nil {
			fmt.Fprintln(stderr, werr)
			return 2
		}
		if *showPlan {
			printPlan(stderr, plan)
		}
	}

	fmt.Fprintf(stderr, "%s: %d errors, %d warnings\n", path, errs, warns)
	if errs > 0 {
		return 1
	}
	return 0
}

// printDiags renders a compile error, unpacking diagnostic lists so
// each finding gets its own prefixed line, and returns the error and
// warning counts.
func printDiags(stderr io.Writer, path string, err error) (errs, warns int) {
	if err == nil {
		return 0, 0
	}
	if l, ok := err.(*diag.List); ok {
		for _, d := range l.Diags {
			fmt.Fprintf(stderr, "%s: %s\n", path, d.Error())
			if d.Severity == diag.Error {
				errs++
			} else {
				warns++
			}
		}
		return errs, warns
	}
	fmt.Fprintf(stderr, "%s: %v\n", path, err)
	return 1, 0
}

// printPlan writes the reaction-plan summary.
func printPlan(w io.Writer, plan *compiler.Plan) {
	fmt.Fprintf(w, "-- reaction plan --\n")
	fmt.Fprintf(w, "source: %d LoC -> generated P4: %d LoC\n", plan.SourceLines, plan.Prog.LineCount())
	fmt.Fprintf(w, "version bits: vv=%v mv=%v\n", plan.UsesVV, plan.UsesMV)
	for i, it := range plan.InitTables {
		role := "shadowed"
		if it.Master {
			role = "master"
		}
		fmt.Fprintf(w, "init table %d: %s (%s, %d params)\n", i, it.Table, role, len(it.Params))
	}
	var names []string
	for name := range plan.MblValues {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mv := plan.MblValues[name]
		fmt.Fprintf(w, "malleable value %s: width %d init %d -> %s\n", name, mv.Width, mv.Init, mv.MetaField)
	}
	names = names[:0]
	for name := range plan.MblFields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mf := plan.MblFields[name]
		fmt.Fprintf(w, "malleable field %s: alts %v selector %s\n", name, mf.Alts, mf.Selector)
	}
	names = names[:0]
	for name := range plan.MblTables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ti := plan.MblTables[name]
		fmt.Fprintf(w, "malleable table %s: %d generated key columns (vv col %d)\n", name, ti.GenKeyCount, ti.VVCol)
	}
	for _, rxn := range plan.Reactions {
		fmt.Fprintf(w, "reaction %s: %d ing slots, %d egr slots, %d register params, %d malleable params\n",
			rxn.Name, len(rxn.IngSlots), len(rxn.EgrSlots), len(rxn.RegParams), len(rxn.MblParams))
	}
	res := plan.Prog.EstimateResources(nil)
	fmt.Fprintf(w, "resources: %d stages, %d tables, %d registers, SRAM %dKb, TCAM %dKb, metadata %db\n",
		res.Stages, res.NumTables, res.NumRegisters, res.SRAMBits/1024, res.TCAMBits/1024, res.MetadataBits)
	if plan.Placement != nil {
		fmt.Fprintf(w, "placement: profile %s, %d+%d stages, fits=%v (use -report for the stage map)\n",
			plan.Placement.Profile.Name, plan.Placement.IngressStages, plan.Placement.EgressStages, plan.Placement.Fits())
	}
}
