// Command mantisc is the Mantis compiler CLI: it translates a .p4r file
// into the generated (malleable) P4 program and a summary of the
// reaction plan — the analogue of the paper's Flex/Bison compiler
// emitting a P4 program and C reaction code.
//
// Usage:
//
//	mantisc [-o out.p4] [-plan] [-check] [-Werror] program.p4r
//
// With -check, mantisc parses and runs the semantic analyzer only,
// printing every diagnostic (code, position, hint) without generating
// code; the exit status is 1 if any error-severity diagnostic (or, with
// -Werror, any diagnostic at all) was reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/compiler"
	"repro/internal/p4r"
	"repro/internal/p4r/analysis"
	"repro/internal/p4r/diag"
)

func main() {
	out := flag.String("o", "", "write generated P4 to this file (default stdout)")
	showPlan := flag.Bool("plan", true, "print the reaction plan summary to stderr")
	maxInitBits := flag.Int("max-init-bits", 512, "platform limit on init-action parameter bits")
	checkOnly := flag.Bool("check", false, "run the semantic analyzer only; report diagnostics, generate nothing")
	werror := flag.Bool("Werror", false, "treat analyzer warnings as errors")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mantisc [-o out.p4] [-check] [-Werror] program.p4r")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := compiler.DefaultOptions()
	opts.ProgramName = flag.Arg(0)
	opts.MaxInitActionBits = *maxInitBits
	opts.Werror = *werror

	if *checkOnly {
		os.Exit(check(flag.Arg(0), string(src), opts))
	}

	plan, err := compiler.CompileSource(string(src), opts)
	if err != nil {
		printDiags(flag.Arg(0), err)
		os.Exit(1)
	}
	// Surface analyzer warnings even on a successful compile.
	if plan.Diags != nil {
		for _, d := range plan.Diags.Warnings() {
			fmt.Fprintf(os.Stderr, "%s: %s\n", flag.Arg(0), d.Error())
		}
	}

	generated := plan.Prog.Print()
	if *out == "" {
		fmt.Print(generated)
	} else if err := os.WriteFile(*out, []byte(generated), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *showPlan {
		w := os.Stderr
		fmt.Fprintf(w, "-- reaction plan --\n")
		fmt.Fprintf(w, "source: %d LoC -> generated P4: %d LoC\n", plan.SourceLines, plan.Prog.LineCount())
		fmt.Fprintf(w, "version bits: vv=%v mv=%v\n", plan.UsesVV, plan.UsesMV)
		for i, it := range plan.InitTables {
			role := "shadowed"
			if it.Master {
				role = "master"
			}
			fmt.Fprintf(w, "init table %d: %s (%s, %d params)\n", i, it.Table, role, len(it.Params))
		}
		var names []string
		for name := range plan.MblValues {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mv := plan.MblValues[name]
			fmt.Fprintf(w, "malleable value %s: width %d init %d -> %s\n", name, mv.Width, mv.Init, mv.MetaField)
		}
		names = names[:0]
		for name := range plan.MblFields {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mf := plan.MblFields[name]
			fmt.Fprintf(w, "malleable field %s: alts %v selector %s\n", name, mf.Alts, mf.Selector)
		}
		names = names[:0]
		for name := range plan.MblTables {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ti := plan.MblTables[name]
			fmt.Fprintf(w, "malleable table %s: %d generated key columns (vv col %d)\n", name, ti.GenKeyCount, ti.VVCol)
		}
		for _, rxn := range plan.Reactions {
			fmt.Fprintf(w, "reaction %s: %d ing slots, %d egr slots, %d register params, %d malleable params\n",
				rxn.Name, len(rxn.IngSlots), len(rxn.EgrSlots), len(rxn.RegParams), len(rxn.MblParams))
		}
		res := plan.Prog.EstimateResources(nil)
		fmt.Fprintf(w, "resources: %d stages, %d tables, %d registers, SRAM %dKb, TCAM %dKb, metadata %db\n",
			res.Stages, res.NumTables, res.NumRegisters, res.SRAMBits/1024, res.TCAMBits/1024, res.MetadataBits)
	}
}

// check runs analyze-only mode and returns the process exit code.
func check(path, src string, opts compiler.Options) int {
	f, err := p4r.Parse(src)
	if err != nil {
		printDiags(path, err)
		return 1
	}
	diags := analysis.Analyze(f, analysis.Limits{
		MaxInitActionBits: opts.MaxInitActionBits,
		MeasSlotBits:      opts.MeasSlotBits,
		MaxTableEntries:   opts.MaxTableEntries,
	})
	if opts.Werror {
		diags.Promote()
	}
	for _, d := range diags.Diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", path, d.Error())
	}
	if diags.HasErrors() {
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s: ok (%d warnings)\n", path, len(diags.Warnings()))
	return 0
}

// printDiags renders a compile error, unpacking diagnostic lists so each
// finding gets its own prefixed line.
func printDiags(path string, err error) {
	if l, ok := err.(*diag.List); ok {
		for _, d := range l.Diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", path, d.Error())
		}
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
}
