package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const fig1Path = "../../examples/p4r/fig1.p4r"

// runCLI invokes run() in-process and captures both streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// writeProgram drops P4R source into a temp file.
func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.p4r")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var summaryRE = regexp.MustCompile(`(?m)^\S+\.p4r: (\d+) errors, (\d+) warnings$`)

// lastSummary extracts the trailing "N errors, M warnings" line.
func lastSummary(t *testing.T, stderr string) string {
	t.Helper()
	m := summaryRE.FindAllString(stderr, -1)
	if len(m) == 0 {
		t.Fatalf("no summary line in stderr:\n%s", stderr)
	}
	return m[len(m)-1]
}

func TestCheckCleanProgram(t *testing.T) {
	code, _, stderr := runCLI(t, "-check", "-Werror", fig1Path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if s := lastSummary(t, stderr); !strings.HasSuffix(s, "0 errors, 0 warnings") {
		t.Fatalf("summary = %q", s)
	}
}

func TestFullCompileWritesProgram(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.p4")
	code, _, stderr := runCLI(t, "-o", out, fig1Path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	gen, err := os.ReadFile(out)
	if err != nil || len(gen) == 0 {
		t.Fatalf("no generated program: %v", err)
	}
	if !strings.Contains(stderr, "placement: profile generic-16stage") {
		t.Errorf("plan summary missing placement line:\n%s", stderr)
	}
}

func TestMiniTargetRejectsFig1(t *testing.T) {
	code, _, stderr := runCLI(t, "-check", "-target", "mini", fig1Path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
	}
	// The acceptance criterion: a positioned P-family code with a hint.
	if !regexp.MustCompile(`line \d+:\d+: error\[P\d+\]: .*\(.*\)`).MatchString(stderr) {
		t.Fatalf("no positioned placement diagnostic with hint:\n%s", stderr)
	}
	if s := lastSummary(t, stderr); strings.HasSuffix(s, "0 errors, 0 warnings") {
		t.Fatalf("summary reports no errors: %q", s)
	}
}

func TestReportShowsStageMap(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-check", "-report", fig1Path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"placement: profile generic-16stage", "FITS", "ingress", "%"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("report missing %q:\n%s", want, stdout)
		}
	}
}

func TestReportPrintedEvenWhenPlacementFails(t *testing.T) {
	code, stdout, _ := runCLI(t, "-check", "-report", "-target", "mini", fig1Path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "DOES NOT FIT") {
		t.Fatalf("failing placement should still print the stage map:\n%s", stdout)
	}
}

func TestUnknownTarget(t *testing.T) {
	code, _, stderr := runCLI(t, "-check", "-target", "warp-drive", fig1Path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "[P007]") {
		t.Fatalf("want P007 diagnostic:\n%s", stderr)
	}
}

func TestSummaryConsistentAcrossCheckAndCompile(t *testing.T) {
	// A program with a semantic error: reaction writes a polled param.
	bad := writeProgram(t, `
header_type h_t { fields { f : 32; } }
header h_t h;
register r { width : 32; instance_count : 4; }
reaction rx(reg r) {
  r[0] = 1;
}
control ingress { }
`)
	codeCheck, _, errCheck := runCLI(t, "-check", bad)
	codeFull, _, errFull := runCLI(t, bad)
	if codeCheck != 1 || codeFull != 1 {
		t.Fatalf("exits %d/%d, want 1/1\ncheck:\n%s\nfull:\n%s", codeCheck, codeFull, errCheck, errFull)
	}
	sc, sf := lastSummary(t, errCheck), lastSummary(t, errFull)
	if sc != sf {
		t.Fatalf("summaries differ: check %q vs compile %q", sc, sf)
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-report", "-target", "none", fig1Path); code != 2 {
		t.Fatalf("-report without target exit %d, want 2", code)
	}
}
