// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig10a,fig10b,fig11,fig12,fig12x,fig13,table1,fig14,fig15,fig16,ablations
//	experiments -run fig14 -scale 0.1
//	experiments -run fig16 -trials 5 -parallel 4
//	experiments -run fig10a,fig10b -json out/   # also write out/BENCH_<name>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: fig10a,fig10b,fig11,fig12,fig12x,fig13,table1,fig14,fig15,fig16,recirc,freshness,ablations,faults,fig-takeover,fig-ctlchan,fig-fabric,fig-reroute,fig-place")
	scale := flag.Float64("scale", 0.05, "fig14 trace scale relative to one full CAIDA block (8.9M packets)")
	trials := flag.Int("trials", 5, "fig16 trials per parameter point")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max simulation trials in flight at once (1 = serial; results are identical at any value)")
	seed := flag.Int64("seed", 1, "random seed")
	jsonDir := flag.String("json", "", "directory to write BENCH_<name>.json machine-readable results into (created if missing)")
	flag.Parse()

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "json dir: %v\n", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	failed := false

	// Each step returns the human-readable report plus a structured
	// value; with -json the latter lands in BENCH_<jsonName>.json
	// (jsonName defaults to the step name).
	stepNamed := func(name, jsonName string, fn func() (string, any, error)) {
		if !all && !want[name] {
			return
		}
		out, val, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(out)
		if *jsonDir != "" && val != nil {
			path := filepath.Join(*jsonDir, "BENCH_"+jsonName+".json")
			buf, err := json.MarshalIndent(val, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: marshal: %v\n", name, err)
				failed = true
				return
			}
			buf = append(buf, '\n')
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				failed = true
			}
		}
	}
	step := func(name string, fn func() (string, any, error)) { stepNamed(name, name, fn) }

	step("fig10a", func() (string, any, error) {
		rows, err := experiments.RunFig10a()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig10a(rows), rows, nil
	})
	step("fig10b", func() (string, any, error) {
		rows, err := experiments.RunFig10b()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig10b(rows), rows, nil
	})
	step("fig11", func() (string, any, error) {
		rows, err := experiments.RunFig11()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig11(rows), rows, nil
	})
	step("fig12", func() (string, any, error) {
		res, err := experiments.RunFig12()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig12(res), res, nil
	})
	step("fig12x", func() (string, any, error) {
		clients := make([]int, 16)
		for i := range clients {
			clients[i] = i + 1
		}
		res, err := experiments.RunFig12x(clients, 10*time.Millisecond)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig12x(res), res, nil
	})
	step("fig13", func() (string, any, error) {
		a, err := experiments.RunFig13a(32)
		if err != nil {
			return "", nil, err
		}
		b, err := experiments.RunFig13b(4)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig13(a, b), map[string]any{"a": a, "b": b}, nil
	})
	step("table1", func() (string, any, error) {
		out, err := experiments.RunTable1()
		return out, out, err
	})
	step("fig14", func() (string, any, error) {
		res, err := experiments.RunFig14(*scale, *seed)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig14(res), res, nil
	})
	step("fig15", func() (string, any, error) {
		res, err := experiments.RunFig15(*seed)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig15(res), res, nil
	})
	step("fig16", func() (string, any, error) {
		res, err := experiments.RunFig16Parallel(*trials, *parallel)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFig16(res), res, nil
	})
	step("recirc", func() (string, any, error) {
		rows, err := experiments.RunRecirculation()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatRecirculation(rows), rows, nil
	})
	step("freshness", func() (string, any, error) {
		res, err := experiments.RunFreshness()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFreshness(res), res, nil
	})
	step("ablations", func() (string, any, error) {
		res, err := experiments.RunAblations()
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatAblations(res), res, nil
	})
	step("faults", func() (string, any, error) {
		rows, err := experiments.RunFaultSweep(*seed)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFaultSweep(rows), rows, nil
	})
	stepNamed("fig-takeover", "takeover", func() (string, any, error) {
		res, err := experiments.RunTakeover(*seed)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatTakeover(res), res, nil
	})
	stepNamed("fig-ctlchan", "ctlchan", func() (string, any, error) {
		res, err := experiments.RunCtlchan(*seed)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatCtlchan(res), res, nil
	})
	stepNamed("fig-fabric", "fabric", func() (string, any, error) {
		res, err := experiments.RunFabric(*seed, *parallel)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatFabric(res), res, nil
	})
	stepNamed("fig-reroute", "reroute", func() (string, any, error) {
		res, err := experiments.RunReroute(*seed, *parallel)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatReroute(res), res, nil
	})
	stepNamed("fig-place", "place", func() (string, any, error) {
		res, err := experiments.RunPlacement()
		if err != nil {
			return "", nil, err
		}
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "PLACEMENT_fabric_leaf.txt")
			if err := os.WriteFile(path, []byte(res.LeafReport), 0o644); err != nil {
				return "", nil, err
			}
		}
		return experiments.FormatPlacement(res), res, nil
	})

	if failed {
		os.Exit(1)
	}
}
