// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig10a,fig10b,fig11,fig12,fig13,table1,fig14,fig15,fig16,ablations
//	experiments -run fig14 -scale 0.1
//	experiments -run fig16 -trials 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: fig10a,fig10b,fig11,fig12,fig13,table1,fig14,fig15,fig16,recirc,freshness,ablations,faults")
	scale := flag.Float64("scale", 0.05, "fig14 trace scale relative to one full CAIDA block (8.9M packets)")
	trials := flag.Int("trials", 5, "fig16 trials per parameter point")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	failed := false

	step := func(name string, fn func() (string, error)) {
		if !all && !want[name] {
			return
		}
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(out)
	}

	step("fig10a", func() (string, error) {
		rows, err := experiments.RunFig10a()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig10a(rows), nil
	})
	step("fig10b", func() (string, error) {
		rows, err := experiments.RunFig10b()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig10b(rows), nil
	})
	step("fig11", func() (string, error) {
		rows, err := experiments.RunFig11()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig11(rows), nil
	})
	step("fig12", func() (string, error) {
		res, err := experiments.RunFig12()
		if err != nil {
			return "", err
		}
		return experiments.FormatFig12(res), nil
	})
	step("fig13", func() (string, error) {
		a, err := experiments.RunFig13a(32)
		if err != nil {
			return "", err
		}
		b, err := experiments.RunFig13b(4)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig13(a, b), nil
	})
	step("table1", experiments.RunTable1)
	step("fig14", func() (string, error) {
		res, err := experiments.RunFig14(*scale, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig14(res), nil
	})
	step("fig15", func() (string, error) {
		res, err := experiments.RunFig15(*seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig15(res), nil
	})
	step("fig16", func() (string, error) {
		res, err := experiments.RunFig16(*trials)
		if err != nil {
			return "", err
		}
		return experiments.FormatFig16(res), nil
	})
	step("recirc", func() (string, error) {
		rows, err := experiments.RunRecirculation()
		if err != nil {
			return "", err
		}
		return experiments.FormatRecirculation(rows), nil
	})
	step("freshness", func() (string, error) {
		res, err := experiments.RunFreshness()
		if err != nil {
			return "", err
		}
		return experiments.FormatFreshness(res), nil
	})
	step("ablations", func() (string, error) {
		res, err := experiments.RunAblations()
		if err != nil {
			return "", err
		}
		return experiments.FormatAblations(res), nil
	})
	step("faults", func() (string, error) {
		rows, err := experiments.RunFaultSweep(*seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFaultSweep(rows), nil
	})

	if failed {
		os.Exit(1)
	}
}
