package rcl

import (
	"fmt"
)

// Arg is one argument passed to a host function or malleable-table
// library call: an integer or a string (e.g. an action name).
type Arg struct {
	I     int64
	S     string
	IsStr bool
}

// Host is the environment a reaction body executes against. The Mantis
// agent (internal/core) implements Host, backing malleable reads/writes
// with the generated init-table machinery and table calls with the
// three-phase serializable update protocol.
type Host interface {
	// ReadMbl returns the last written value of a malleable value, or the
	// current alt index of a malleable field.
	ReadMbl(name string) (int64, error)
	// WriteMbl stages a write to a malleable value or field.
	WriteMbl(name string, v int64) error
	// TableOp performs a malleable-table library call
	// (addEntry/modEntry/delEntry/setDefault) and returns a handle or 0.
	TableOp(table, method string, args []Arg) (int64, error)
	// Call invokes a host builtin (now(), set_hash_seed(...), ...).
	Call(name string, args []Arg) (int64, error)
}

// Program is a compiled reaction body: the AST lowered into closure
// trees with compile-time slot resolution (compile.go). Static
// variables persist on the Program across Exec calls, mirroring C
// statics in a loaded .so.
type Program struct {
	stmts []Stmt

	code        []stmtFn
	nlocals     int
	params      map[string]int // free name → params-array slot
	staticCells map[string]*staticCell
	// compileErr defers semantic errors found during lowering
	// (redeclaration, bad assignment targets) to Exec time, preserving
	// the dynamic interpreter's error surface.
	compileErr error

	// MaxSteps bounds interpreted loop iterations per invocation;
	// reaction loops must terminate for the dialogue to advance.
	// 0 = default.
	MaxSteps int
}

const defaultMaxSteps = 10_000_000

// Compile parses a reaction body into an executable Program.
func Compile(src string) (*Program, error) {
	stmts, err := parseBody(src)
	if err != nil {
		return nil, err
	}
	p := &Program{
		stmts:       stmts,
		params:      make(map[string]int),
		staticCells: make(map[string]*staticCell),
	}
	p.compile()
	return p, nil
}

// ParseBody parses a reaction body and returns its statement AST without
// building an executable Program. Static analyzers (internal/p4r/analysis)
// use this to walk reaction bodies for reads, writes, and declarations.
func ParseBody(src string) ([]Stmt, error) { return parseBody(src) }

// cell is a variable binding: a scalar or an array, with an optional
// width mask applied on store.
type cell struct {
	scalar int64
	arr    []int64
	isArr  bool
	width  int // 64 = unmasked
}

func (c *cell) store(v int64) {
	if c.width > 0 && c.width < 64 {
		v &= (1 << uint(c.width)) - 1
	}
	c.scalar = v
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// execState is the reusable run-time state of one Frame: the flat
// locals array (slots assigned at compile time, reused across scopes),
// the parameter cells Bind* fills, and the stack-disciplined host-call
// argument scratch. Nothing here allocates after the Frame's first
// execution.
type execState struct {
	locals []cell
	params []cell
	bound  []bool // params[i] has been bound by Frame.Bind*
	argbuf []Arg
}

// interp is the per-execution context threaded through compiled
// closures: the host, the state arrays, and the loop step guard.
type interp struct {
	prog  *Program
	host  Host
	st    *execState
	steps int
	max   int
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > in.max {
		return fmt.Errorf("rcl: reaction exceeded %d operations (non-terminating loop?)", in.max)
	}
	return nil
}

// Exec runs the reaction once. params binds polled reaction parameters
// by name: values must be int64 (scalar fields/malleables) or []int64
// (register slices). Parameter arrays are bound by reference.
//
// Exec builds a throwaway Frame per call and is the convenience path;
// hot loops (the agent dialogue) should prepare a Frame once and call
// Frame.Exec so parameter binding and interpreter scratch are reused.
func (p *Program) Exec(host Host, params map[string]any) error {
	f := p.NewFrame()
	for name, v := range params {
		switch val := v.(type) {
		case int64:
			*f.BindScalar(name) = val
		case uint64:
			*f.BindScalar(name) = int64(val)
		case int:
			*f.BindScalar(name) = int64(val)
		case []int64:
			f.BindArray(name, val)
		case []uint64:
			arr := make([]int64, len(val))
			for i, x := range val {
				arr[i] = int64(x)
			}
			f.BindArray(name, arr)
		default:
			return fmt.Errorf("rcl: parameter %s has unsupported type %T", name, v)
		}
	}
	return f.Exec(host)
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
