package rcl

import (
	"fmt"
)

// Arg is one argument passed to a host function or malleable-table
// library call: an integer or a string (e.g. an action name).
type Arg struct {
	I     int64
	S     string
	IsStr bool
}

// Host is the environment a reaction body executes against. The Mantis
// agent (internal/core) implements Host, backing malleable reads/writes
// with the generated init-table machinery and table calls with the
// three-phase serializable update protocol.
type Host interface {
	// ReadMbl returns the last written value of a malleable value, or the
	// current alt index of a malleable field.
	ReadMbl(name string) (int64, error)
	// WriteMbl stages a write to a malleable value or field.
	WriteMbl(name string, v int64) error
	// TableOp performs a malleable-table library call
	// (addEntry/modEntry/delEntry/setDefault) and returns a handle or 0.
	TableOp(table, method string, args []Arg) (int64, error)
	// Call invokes a host builtin (now(), set_hash_seed(...), ...).
	Call(name string, args []Arg) (int64, error)
}

// Program is a compiled reaction body. Static variables persist on the
// Program across Exec calls, mirroring C statics in a loaded .so.
type Program struct {
	stmts   []Stmt
	statics map[string]*cell
	// MaxSteps bounds interpreted operations per invocation; reaction
	// loops must terminate for the dialogue to advance. 0 = default.
	MaxSteps int
}

const defaultMaxSteps = 10_000_000

// Compile parses a reaction body into an executable Program.
func Compile(src string) (*Program, error) {
	stmts, err := parseBody(src)
	if err != nil {
		return nil, err
	}
	return &Program{stmts: stmts, statics: make(map[string]*cell)}, nil
}

// ParseBody parses a reaction body and returns its statement AST without
// building an executable Program. Static analyzers (internal/p4r/analysis)
// use this to walk reaction bodies for reads, writes, and declarations.
func ParseBody(src string) ([]Stmt, error) { return parseBody(src) }

// cell is a variable binding: a scalar or an array, with an optional
// width mask applied on store.
type cell struct {
	scalar int64
	arr    []int64
	isArr  bool
	width  int // 64 = unmasked
}

func (c *cell) store(v int64) {
	if c.width > 0 && c.width < 64 {
		v &= (1 << uint(c.width)) - 1
	}
	c.scalar = v
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type interp struct {
	prog   *Program
	host   Host
	scopes []map[string]*cell
	steps  int
	max    int
}

// Exec runs the reaction once. params binds polled reaction parameters
// by name: values must be int64 (scalar fields/malleables) or []int64
// (register slices). Parameter arrays are bound by reference.
func (p *Program) Exec(host Host, params map[string]any) error {
	in := &interp{
		prog:   p,
		host:   host,
		scopes: []map[string]*cell{make(map[string]*cell)},
		max:    p.MaxSteps,
	}
	if in.max == 0 {
		in.max = defaultMaxSteps
	}
	for name, v := range params {
		switch val := v.(type) {
		case int64:
			in.scopes[0][name] = &cell{scalar: val, width: 64}
		case uint64:
			in.scopes[0][name] = &cell{scalar: int64(val), width: 64}
		case int:
			in.scopes[0][name] = &cell{scalar: int64(val), width: 64}
		case []int64:
			in.scopes[0][name] = &cell{arr: val, isArr: true}
		case []uint64:
			arr := make([]int64, len(val))
			for i, x := range val {
				arr[i] = int64(x)
			}
			in.scopes[0][name] = &cell{arr: arr, isArr: true}
		default:
			return fmt.Errorf("rcl: parameter %s has unsupported type %T", name, v)
		}
	}
	_, err := in.execStmts(p.stmts)
	return err
}

func (in *interp) push() { in.scopes = append(in.scopes, make(map[string]*cell)) }
func (in *interp) pop()  { in.scopes = in.scopes[:len(in.scopes)-1] }

func (in *interp) lookup(name string) (*cell, bool) {
	for i := len(in.scopes) - 1; i >= 0; i-- {
		if c, ok := in.scopes[i][name]; ok {
			return c, true
		}
	}
	if c, ok := in.prog.statics[name]; ok {
		return c, true
	}
	return nil, false
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > in.max {
		return fmt.Errorf("rcl: reaction exceeded %d operations (non-terminating loop?)", in.max)
	}
	return nil
}

func (in *interp) execStmts(stmts []Stmt) (ctrl, error) {
	for _, s := range stmts {
		c, err := in.execStmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (in *interp) execStmt(s Stmt) (ctrl, error) {
	if err := in.tick(); err != nil {
		return ctrlNone, err
	}
	switch st := s.(type) {
	case DeclStmt:
		return ctrlNone, in.execDecl(st)
	case ExprStmt:
		_, err := in.eval(st.E)
		return ctrlNone, err
	case IfStmt:
		v, err := in.eval(st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		in.push()
		defer in.pop()
		if v != 0 {
			return in.execStmts(st.Then)
		}
		return in.execStmts(st.Else)
	case WhileStmt:
		for {
			v, err := in.eval(st.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if v == 0 {
				return ctrlNone, nil
			}
			in.push()
			c, err := in.execStmts(st.Body)
			in.pop()
			if err != nil {
				return ctrlNone, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, nil
			case ctrlReturn:
				return ctrlReturn, nil
			}
			if err := in.tick(); err != nil {
				return ctrlNone, err
			}
		}
	case ForStmt:
		in.push()
		defer in.pop()
		if st.Init != nil {
			if c, err := in.execStmt(st.Init); err != nil || c != ctrlNone {
				return c, err
			}
		}
		for {
			if st.Cond != nil {
				v, err := in.eval(st.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if v == 0 {
					return ctrlNone, nil
				}
			}
			in.push()
			c, err := in.execStmts(st.Body)
			in.pop()
			if err != nil {
				return ctrlNone, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, nil
			case ctrlReturn:
				return ctrlReturn, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post); err != nil {
					return ctrlNone, err
				}
			}
			if err := in.tick(); err != nil {
				return ctrlNone, err
			}
		}
	case BreakStmt:
		return ctrlBreak, nil
	case ContinueStmt:
		return ctrlContinue, nil
	case ReturnStmt:
		if st.E != nil {
			if _, err := in.eval(st.E); err != nil {
				return ctrlNone, err
			}
		}
		return ctrlReturn, nil
	}
	return ctrlNone, fmt.Errorf("rcl: unknown statement %T", s)
}

func (in *interp) execDecl(d DeclStmt) error {
	for _, v := range d.Vars {
		if d.Static {
			if _, exists := in.prog.statics[v.Name]; exists {
				continue // statics initialize once
			}
		} else if _, dup := in.scopes[len(in.scopes)-1][v.Name]; dup {
			return fmt.Errorf("rcl line %d: redeclaration of %s", d.Line, v.Name)
		}
		c := &cell{width: d.Width}
		if v.ArraySize > 0 {
			c.isArr = true
			c.arr = make([]int64, v.ArraySize)
			if v.Init != nil {
				return fmt.Errorf("rcl line %d: array initializers are not supported", d.Line)
			}
		} else if v.Init != nil {
			val, err := in.eval(v.Init)
			if err != nil {
				return err
			}
			c.store(val)
		}
		if d.Static {
			in.prog.statics[v.Name] = c
		} else {
			in.scopes[len(in.scopes)-1][v.Name] = c
		}
	}
	return nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *interp) eval(e Expr) (int64, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case NumLit:
		return x.V, nil
	case StrLit:
		return 0, fmt.Errorf("rcl: string literal used as a value")
	case VarRef:
		c, ok := in.lookup(x.Name)
		if !ok {
			return 0, fmt.Errorf("rcl line %d: undefined variable %s", x.Line, x.Name)
		}
		if c.isArr {
			return 0, fmt.Errorf("rcl line %d: array %s used as a scalar", x.Line, x.Name)
		}
		return c.scalar, nil
	case MblExpr:
		return in.host.ReadMbl(x.Name)
	case IndexExpr:
		return in.evalIndex(x)
	case UnaryExpr:
		return in.evalUnary(x)
	case BinaryExpr:
		return in.evalBinary(x)
	case TernaryExpr:
		v, err := in.eval(x.Cond)
		if err != nil {
			return 0, err
		}
		if v != 0 {
			return in.eval(x.T)
		}
		return in.eval(x.F)
	case AssignExpr:
		return in.evalAssign(x)
	case CallExpr:
		return in.evalCall(x)
	case TableCallExpr:
		args, err := in.evalArgs(x.Args)
		if err != nil {
			return 0, err
		}
		v, err := in.host.TableOp(x.Table, x.Method, args)
		if err != nil {
			return 0, fmt.Errorf("rcl line %d: %w", x.Line, err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("rcl: unknown expression %T", e)
}

func (in *interp) arrayCell(x IndexExpr) (*cell, int64, error) {
	base, ok := x.Base.(VarRef)
	if !ok {
		return nil, 0, fmt.Errorf("rcl line %d: indexing a non-variable", x.Line)
	}
	c, found := in.lookup(base.Name)
	if !found {
		return nil, 0, fmt.Errorf("rcl line %d: undefined array %s", x.Line, base.Name)
	}
	if !c.isArr {
		return nil, 0, fmt.Errorf("rcl line %d: %s is not an array", x.Line, base.Name)
	}
	idx, err := in.eval(x.Idx)
	if err != nil {
		return nil, 0, err
	}
	if idx < 0 || idx >= int64(len(c.arr)) {
		return nil, 0, fmt.Errorf("rcl line %d: index %d out of range for %s[%d]", x.Line, idx, base.Name, len(c.arr))
	}
	return c, idx, nil
}

func (in *interp) evalIndex(x IndexExpr) (int64, error) {
	c, idx, err := in.arrayCell(x)
	if err != nil {
		return 0, err
	}
	return c.arr[idx], nil
}

func (in *interp) evalUnary(x UnaryExpr) (int64, error) {
	switch x.Op {
	case "++", "--":
		old, err := in.loadTarget(x.X)
		if err != nil {
			return 0, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		if err := in.storeTarget(x.X, old+delta); err != nil {
			return 0, err
		}
		if x.Postfix {
			return old, nil
		}
		return old + delta, nil
	}
	v, err := in.eval(x.X)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case "-":
		return -v, nil
	case "~":
		return ^v, nil
	case "!":
		return boolToInt(v == 0), nil
	}
	return 0, fmt.Errorf("rcl: unknown unary op %q", x.Op)
}

func (in *interp) evalBinary(x BinaryExpr) (int64, error) {
	// Short-circuit logical operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.eval(x.L)
		if err != nil {
			return 0, err
		}
		if x.Op == "&&" && l == 0 {
			return 0, nil
		}
		if x.Op == "||" && l != 0 {
			return 1, nil
		}
		r, err := in.eval(x.R)
		if err != nil {
			return 0, err
		}
		return boolToInt(r != 0), nil
	}
	l, err := in.eval(x.L)
	if err != nil {
		return 0, err
	}
	r, err := in.eval(x.R)
	if err != nil {
		return 0, err
	}
	return applyBinop(x.Op, l, r, x.Line)
}

func applyBinop(op string, l, r int64, line int) (int64, error) {
	switch op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("rcl line %d: division by zero", line)
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("rcl line %d: modulo by zero", line)
		}
		return l % r, nil
	case "&":
		return l & r, nil
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	case "<<":
		return l << (uint64(r) & 63), nil
	case ">>":
		return l >> (uint64(r) & 63), nil
	case "==":
		return boolToInt(l == r), nil
	case "!=":
		return boolToInt(l != r), nil
	case "<":
		return boolToInt(l < r), nil
	case "<=":
		return boolToInt(l <= r), nil
	case ">":
		return boolToInt(l > r), nil
	case ">=":
		return boolToInt(l >= r), nil
	}
	return 0, fmt.Errorf("rcl line %d: unknown operator %q", line, op)
}

func (in *interp) loadTarget(e Expr) (int64, error) {
	switch e.(type) {
	case VarRef, IndexExpr, MblExpr:
		return in.eval(e)
	}
	return 0, fmt.Errorf("rcl: invalid assignment target %T", e)
}

func (in *interp) storeTarget(e Expr, v int64) error {
	switch t := e.(type) {
	case VarRef:
		c, ok := in.lookup(t.Name)
		if !ok {
			return fmt.Errorf("rcl line %d: undefined variable %s", t.Line, t.Name)
		}
		if c.isArr {
			return fmt.Errorf("rcl line %d: cannot assign to array %s", t.Line, t.Name)
		}
		c.store(v)
		return nil
	case IndexExpr:
		c, idx, err := in.arrayCell(t)
		if err != nil {
			return err
		}
		c.arr[idx] = v
		return nil
	case MblExpr:
		return in.host.WriteMbl(t.Name, v)
	}
	return fmt.Errorf("rcl: invalid assignment target %T", e)
}

func (in *interp) evalAssign(x AssignExpr) (int64, error) {
	rhs, err := in.eval(x.Val)
	if err != nil {
		return 0, err
	}
	if x.Op != "=" {
		old, err := in.loadTarget(x.Target)
		if err != nil {
			return 0, err
		}
		op := x.Op[:len(x.Op)-1] // strip '='
		rhs, err = applyBinop(op, old, rhs, x.Line)
		if err != nil {
			return 0, err
		}
	}
	if err := in.storeTarget(x.Target, rhs); err != nil {
		return 0, err
	}
	return rhs, nil
}

func (in *interp) evalArgs(exprs []Expr) ([]Arg, error) {
	args := make([]Arg, len(exprs))
	for i, e := range exprs {
		if s, ok := e.(StrLit); ok {
			args[i] = Arg{S: s.S, IsStr: true}
			continue
		}
		v, err := in.eval(e)
		if err != nil {
			return nil, err
		}
		args[i] = Arg{I: v}
	}
	return args, nil
}

func (in *interp) evalCall(x CallExpr) (int64, error) {
	// Interpreter-level builtins first.
	switch x.Name {
	case "min", "max":
		if len(x.Args) != 2 {
			return 0, fmt.Errorf("rcl line %d: %s takes 2 arguments", x.Line, x.Name)
		}
		a, err := in.eval(x.Args[0])
		if err != nil {
			return 0, err
		}
		b, err := in.eval(x.Args[1])
		if err != nil {
			return 0, err
		}
		if (x.Name == "min") == (a < b) {
			return a, nil
		}
		return b, nil
	case "abs":
		if len(x.Args) != 1 {
			return 0, fmt.Errorf("rcl line %d: abs takes 1 argument", x.Line)
		}
		v, err := in.eval(x.Args[0])
		if err != nil {
			return 0, err
		}
		if v < 0 {
			return -v, nil
		}
		return v, nil
	case "len":
		if len(x.Args) != 1 {
			return 0, fmt.Errorf("rcl line %d: len takes 1 argument", x.Line)
		}
		vr, ok := x.Args[0].(VarRef)
		if !ok {
			return 0, fmt.Errorf("rcl line %d: len argument must be an array", x.Line)
		}
		c, found := in.lookup(vr.Name)
		if !found || !c.isArr {
			return 0, fmt.Errorf("rcl line %d: len of non-array %s", x.Line, vr.Name)
		}
		return int64(len(c.arr)), nil
	}
	args, err := in.evalArgs(x.Args)
	if err != nil {
		return 0, err
	}
	v, err := in.host.Call(x.Name, args)
	if err != nil {
		return 0, fmt.Errorf("rcl line %d: %w", x.Line, err)
	}
	return v, nil
}
