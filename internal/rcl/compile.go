package rcl

import "fmt"

// This file lowers the parsed AST into closure trees once, at Compile
// time. The tree-walking interpreter this replaces re-dispatched on
// node types and resolved every variable by walking a name stack on
// every execution; reaction bodies run every dialogue iteration
// forever, so that per-iteration work is paid millions of times. The
// compiled form resolves each name to a fixed slot at compile time and
// specializes each operator into its own closure, leaving only the
// actual arithmetic (plus the loop step guard) at run time.
//
// Name resolution is lexical. Each declaration gets a slot in a flat
// locals array; sibling scopes reuse slots (stack discipline), so the
// array's length is the program's deepest live-variable count. Names
// that resolve to no declaration are parameters: they get slots in a
// separate params array that Frame.BindScalar/BindArray fill before
// execution. Reading an unbound parameter reports the same "undefined
// variable" error the dynamic interpreter produced.
//
// Semantic errors found during lowering (redeclaration, bad assignment
// targets, array misuse) are deferred: Compile still succeeds and the
// first Exec returns the error, matching the dynamic interpreter's
// behavior that callers and tests rely on.

// evalFn computes one expression.
type evalFn func(in *interp) (int64, error)

// stmtFn executes one statement and reports control transfer.
type stmtFn func(in *interp) (ctrl, error)

// storeFn writes a value through an assignment target.
type storeFn func(in *interp, v int64) error

// staticCell is a static variable's storage plus its run-once flag.
// Closures capture it, so statics persist per-Program across Exec
// calls, as before.
type staticCell struct {
	c    cell
	done bool
}

type refKind int

const (
	refLocal refKind = iota
	refParam
	refStatic
)

// slotRef is a compile-time resolved variable.
type slotRef struct {
	kind refKind
	slot int         // refLocal / refParam
	sc   *staticCell // refStatic
}

// compScope is one lexical scope during lowering. nlocals counts only
// local slots (statics resolve through the scope but own no slot), so
// popping releases exactly the slots this scope allocated.
type compScope struct {
	names   map[string]slotRef
	nlocals int
}

type compEnv struct {
	prog   *Program
	scopes []compScope // innermost last
	cur    int         // next free local slot
	high   int         // locals high-water mark
}

// compile lowers prog.stmts into prog.code. Errors are recorded in
// prog.compileErr rather than returned (see the file comment).
func (p *Program) compile() {
	ce := &compEnv{prog: p}
	ce.pushScope()
	code, err := ce.compileStmts(p.stmts)
	ce.popScope()
	p.code = code
	p.nlocals = ce.high
	p.compileErr = err
}

func (ce *compEnv) pushScope() {
	ce.scopes = append(ce.scopes, compScope{})
}

func (ce *compEnv) popScope() {
	top := &ce.scopes[len(ce.scopes)-1]
	ce.cur -= top.nlocals // release this scope's slots for siblings
	ce.scopes = ce.scopes[:len(ce.scopes)-1]
}

// declareLocal allocates a slot for name in the innermost scope.
func (ce *compEnv) declareLocal(name string, line int) (int, error) {
	top := &ce.scopes[len(ce.scopes)-1]
	if _, dup := top.names[name]; dup {
		return 0, fmt.Errorf("rcl line %d: redeclaration of %s", line, name)
	}
	if top.names == nil {
		top.names = make(map[string]slotRef)
	}
	slot := ce.cur
	ce.cur++
	top.nlocals++
	if ce.cur > ce.high {
		ce.high = ce.cur
	}
	top.names[name] = slotRef{kind: refLocal, slot: slot}
	return slot, nil
}

func (ce *compEnv) declareStatic(name string, width int) *staticCell {
	sc, ok := ce.prog.staticCells[name]
	if !ok {
		sc = &staticCell{c: cell{width: width}}
		ce.prog.staticCells[name] = sc
	}
	top := &ce.scopes[len(ce.scopes)-1]
	if top.names == nil {
		top.names = make(map[string]slotRef)
	}
	if _, dup := top.names[name]; !dup {
		top.names[name] = slotRef{kind: refStatic, sc: sc}
	}
	return sc
}

// resolve finds name in the scope stack; unknown names become params.
func (ce *compEnv) resolve(name string) slotRef {
	for i := len(ce.scopes) - 1; i >= 0; i-- {
		if r, ok := ce.scopes[i].names[name]; ok {
			return r
		}
	}
	if slot, ok := ce.prog.params[name]; ok {
		return slotRef{kind: refParam, slot: slot}
	}
	slot := len(ce.prog.params)
	ce.prog.params[name] = slot
	return slotRef{kind: refParam, slot: slot}
}

// cellFn returns an accessor for the resolved variable's cell. The
// param variant checks the bound bit so a typo'd name still reports
// "undefined variable" at run time.
func (ce *compEnv) cellFn(name string, line int) func(in *interp) (*cell, error) {
	switch r := ce.resolve(name); r.kind {
	case refLocal:
		slot := r.slot
		return func(in *interp) (*cell, error) { return &in.st.locals[slot], nil }
	case refStatic:
		c := &r.sc.c
		return func(in *interp) (*cell, error) { return c, nil }
	default:
		slot := r.slot
		return func(in *interp) (*cell, error) {
			if !in.st.bound[slot] {
				return nil, fmt.Errorf("rcl line %d: undefined variable %s", line, name)
			}
			return &in.st.params[slot], nil
		}
	}
}

func (ce *compEnv) compileStmts(stmts []Stmt) ([]stmtFn, error) {
	fns := make([]stmtFn, 0, len(stmts))
	for _, s := range stmts {
		f, err := ce.compileStmt(s)
		if err != nil {
			return nil, err
		}
		fns = append(fns, f...)
	}
	return fns, nil
}

// runStmts drives a compiled statement list.
func runStmts(in *interp, fns []stmtFn) (ctrl, error) {
	for _, f := range fns {
		c, err := f(in)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

// compileStmt lowers one statement. Declarations may expand to one
// closure per declarator, hence the slice.
func (ce *compEnv) compileStmt(s Stmt) ([]stmtFn, error) {
	switch st := s.(type) {
	case DeclStmt:
		return ce.compileDecl(st)
	case ExprStmt:
		ef, err := ce.compileExpr(st.E)
		if err != nil {
			return nil, err
		}
		return []stmtFn{func(in *interp) (ctrl, error) {
			_, err := ef(in)
			return ctrlNone, err
		}}, nil
	case IfStmt:
		cond, err := ce.compileExpr(st.Cond)
		if err != nil {
			return nil, err
		}
		ce.pushScope()
		then, err := ce.compileStmts(st.Then)
		ce.popScope()
		if err != nil {
			return nil, err
		}
		ce.pushScope()
		els, err := ce.compileStmts(st.Else)
		ce.popScope()
		if err != nil {
			return nil, err
		}
		return []stmtFn{func(in *interp) (ctrl, error) {
			v, err := cond(in)
			if err != nil {
				return ctrlNone, err
			}
			if v != 0 {
				return runStmts(in, then)
			}
			return runStmts(in, els)
		}}, nil
	case WhileStmt:
		cond, err := ce.compileExpr(st.Cond)
		if err != nil {
			return nil, err
		}
		ce.pushScope()
		body, err := ce.compileStmts(st.Body)
		ce.popScope()
		if err != nil {
			return nil, err
		}
		return []stmtFn{func(in *interp) (ctrl, error) {
			for {
				if err := in.tick(); err != nil {
					return ctrlNone, err
				}
				v, err := cond(in)
				if err != nil {
					return ctrlNone, err
				}
				if v == 0 {
					return ctrlNone, nil
				}
				c, err := runStmts(in, body)
				if err != nil {
					return ctrlNone, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil
				case ctrlReturn:
					return ctrlReturn, nil
				}
			}
		}}, nil
	case ForStmt:
		// The init declaration's scope spans the whole loop.
		ce.pushScope()
		defer ce.popScope()
		var initFns []stmtFn
		if st.Init != nil {
			var err error
			initFns, err = ce.compileStmt(st.Init)
			if err != nil {
				return nil, err
			}
		}
		var cond evalFn
		if st.Cond != nil {
			var err error
			cond, err = ce.compileExpr(st.Cond)
			if err != nil {
				return nil, err
			}
		}
		var post evalFn
		if st.Post != nil {
			var err error
			post, err = ce.compileExpr(st.Post)
			if err != nil {
				return nil, err
			}
		}
		ce.pushScope()
		body, err := ce.compileStmts(st.Body)
		ce.popScope()
		if err != nil {
			return nil, err
		}
		return []stmtFn{func(in *interp) (ctrl, error) {
			if c, err := runStmts(in, initFns); err != nil || c != ctrlNone {
				return c, err
			}
			for {
				if err := in.tick(); err != nil {
					return ctrlNone, err
				}
				if cond != nil {
					v, err := cond(in)
					if err != nil {
						return ctrlNone, err
					}
					if v == 0 {
						return ctrlNone, nil
					}
				}
				c, err := runStmts(in, body)
				if err != nil {
					return ctrlNone, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil
				case ctrlReturn:
					return ctrlReturn, nil
				}
				if post != nil {
					if _, err := post(in); err != nil {
						return ctrlNone, err
					}
				}
			}
		}}, nil
	case BreakStmt:
		return []stmtFn{func(*interp) (ctrl, error) { return ctrlBreak, nil }}, nil
	case ContinueStmt:
		return []stmtFn{func(*interp) (ctrl, error) { return ctrlContinue, nil }}, nil
	case ReturnStmt:
		if st.E == nil {
			return []stmtFn{func(*interp) (ctrl, error) { return ctrlReturn, nil }}, nil
		}
		ef, err := ce.compileExpr(st.E)
		if err != nil {
			return nil, err
		}
		return []stmtFn{func(in *interp) (ctrl, error) {
			if _, err := ef(in); err != nil {
				return ctrlNone, err
			}
			return ctrlReturn, nil
		}}, nil
	}
	return nil, fmt.Errorf("rcl: unknown statement %T", s)
}

func (ce *compEnv) compileDecl(d DeclStmt) ([]stmtFn, error) {
	var fns []stmtFn
	for _, v := range d.Vars {
		if v.ArraySize > 0 && v.Init != nil {
			return nil, fmt.Errorf("rcl line %d: array initializers are not supported", d.Line)
		}
		var initFn evalFn
		if v.Init != nil {
			var err error
			initFn, err = ce.compileExpr(v.Init)
			if err != nil {
				return nil, err
			}
		}
		if d.Static {
			sc := ce.declareStatic(v.Name, d.Width)
			size := v.ArraySize
			fns = append(fns, func(in *interp) (ctrl, error) {
				if sc.done {
					return ctrlNone, nil // statics initialize once
				}
				sc.done = true
				if size > 0 {
					sc.c.isArr = true
					sc.c.arr = make([]int64, size)
				} else if initFn != nil {
					val, err := initFn(in)
					if err != nil {
						return ctrlNone, err
					}
					sc.c.store(val)
				}
				return ctrlNone, nil
			})
			continue
		}
		slot, err := ce.declareLocal(v.Name, d.Line)
		if err != nil {
			return nil, err
		}
		width := d.Width
		if size := v.ArraySize; size > 0 {
			// Redeclared arrays (loop bodies, repeated Execs) reuse the
			// slot's capacity; only the first execution allocates.
			fns = append(fns, func(in *interp) (ctrl, error) {
				c := &in.st.locals[slot]
				c.isArr = true
				c.width = width
				if cap(c.arr) >= size {
					c.arr = c.arr[:size]
					for i := range c.arr {
						c.arr[i] = 0
					}
				} else {
					c.arr = make([]int64, size)
				}
				return ctrlNone, nil
			})
			continue
		}
		if initFn != nil {
			fns = append(fns, func(in *interp) (ctrl, error) {
				c := &in.st.locals[slot]
				c.isArr = false
				c.width = width
				c.scalar = 0
				val, err := initFn(in)
				if err != nil {
					return ctrlNone, err
				}
				c.store(val)
				return ctrlNone, nil
			})
		} else {
			fns = append(fns, func(in *interp) (ctrl, error) {
				c := &in.st.locals[slot]
				c.isArr = false
				c.width = width
				c.scalar = 0
				return ctrlNone, nil
			})
		}
	}
	return fns, nil
}

func (ce *compEnv) compileExpr(e Expr) (evalFn, error) {
	switch x := e.(type) {
	case NumLit:
		v := x.V
		return func(*interp) (int64, error) { return v, nil }, nil
	case StrLit:
		return nil, fmt.Errorf("rcl: string literal used as a value")
	case VarRef:
		name, line := x.Name, x.Line
		if r := ce.resolve(name); r.kind == refLocal {
			slot := r.slot
			return func(in *interp) (int64, error) {
				c := &in.st.locals[slot]
				if c.isArr {
					return 0, fmt.Errorf("rcl line %d: array %s used as a scalar", line, name)
				}
				return c.scalar, nil
			}, nil
		}
		cf := ce.cellFn(name, line)
		return func(in *interp) (int64, error) {
			c, err := cf(in)
			if err != nil {
				return 0, err
			}
			if c.isArr {
				return 0, fmt.Errorf("rcl line %d: array %s used as a scalar", line, name)
			}
			return c.scalar, nil
		}, nil
	case MblExpr:
		name := x.Name
		return func(in *interp) (int64, error) { return in.host.ReadMbl(name) }, nil
	case IndexExpr:
		cf, idxFn, err := ce.compileIndex(x)
		if err != nil {
			return nil, err
		}
		return func(in *interp) (int64, error) {
			c, idx, err := arrayCell(in, cf, idxFn, x.Line)
			if err != nil {
				return 0, err
			}
			return c.arr[idx], nil
		}, nil
	case UnaryExpr:
		return ce.compileUnary(x)
	case BinaryExpr:
		return ce.compileBinary(x)
	case TernaryExpr:
		cond, err := ce.compileExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		tf, err := ce.compileExpr(x.T)
		if err != nil {
			return nil, err
		}
		ff, err := ce.compileExpr(x.F)
		if err != nil {
			return nil, err
		}
		return func(in *interp) (int64, error) {
			v, err := cond(in)
			if err != nil {
				return 0, err
			}
			if v != 0 {
				return tf(in)
			}
			return ff(in)
		}, nil
	case AssignExpr:
		return ce.compileAssign(x)
	case CallExpr:
		return ce.compileCall(x)
	case TableCallExpr:
		argFns, err := ce.compileArgs(x.Args)
		if err != nil {
			return nil, err
		}
		table, method, line := x.Table, x.Method, x.Line
		return func(in *interp) (int64, error) {
			mark, err := pushArgs(in, argFns)
			if err != nil {
				return 0, err
			}
			v, err := in.host.TableOp(table, method, in.st.argbuf[mark:])
			in.st.argbuf = in.st.argbuf[:mark]
			if err != nil {
				return 0, fmt.Errorf("rcl line %d: %w", line, err)
			}
			return v, nil
		}, nil
	}
	return nil, fmt.Errorf("rcl: unknown expression %T", e)
}

// compileIndex resolves arr[idx]'s base cell accessor and index fn.
func (ce *compEnv) compileIndex(x IndexExpr) (func(in *interp) (*cell, error), evalFn, error) {
	base, ok := x.Base.(VarRef)
	if !ok {
		return nil, nil, fmt.Errorf("rcl line %d: indexing a non-variable", x.Line)
	}
	idxFn, err := ce.compileExpr(x.Idx)
	if err != nil {
		return nil, nil, err
	}
	return ce.cellFn(base.Name, base.Line), idxFn, nil
}

// arrayCell fetches the array cell and a bounds-checked index.
func arrayCell(in *interp, cf func(in *interp) (*cell, error), idxFn evalFn, line int) (*cell, int64, error) {
	c, err := cf(in)
	if err != nil {
		return nil, 0, err
	}
	if !c.isArr {
		return nil, 0, fmt.Errorf("rcl line %d: indexing a non-array", line)
	}
	idx, err := idxFn(in)
	if err != nil {
		return nil, 0, err
	}
	if idx < 0 || idx >= int64(len(c.arr)) {
		return nil, 0, fmt.Errorf("rcl line %d: index %d out of range for array of %d", line, idx, len(c.arr))
	}
	return c, idx, nil
}

// compileTarget lowers an assignment target into load and store fns.
func (ce *compEnv) compileTarget(e Expr) (evalFn, storeFn, error) {
	switch t := e.(type) {
	case VarRef:
		name, line := t.Name, t.Line
		cf := ce.cellFn(name, line)
		load := func(in *interp) (int64, error) {
			c, err := cf(in)
			if err != nil {
				return 0, err
			}
			if c.isArr {
				return 0, fmt.Errorf("rcl line %d: array %s used as a scalar", line, name)
			}
			return c.scalar, nil
		}
		store := func(in *interp, v int64) error {
			c, err := cf(in)
			if err != nil {
				return err
			}
			if c.isArr {
				return fmt.Errorf("rcl line %d: cannot assign to array %s", line, name)
			}
			c.store(v)
			return nil
		}
		return load, store, nil
	case IndexExpr:
		cf, idxFn, err := ce.compileIndex(t)
		if err != nil {
			return nil, nil, err
		}
		line := t.Line
		load := func(in *interp) (int64, error) {
			c, idx, err := arrayCell(in, cf, idxFn, line)
			if err != nil {
				return 0, err
			}
			return c.arr[idx], nil
		}
		store := func(in *interp, v int64) error {
			c, idx, err := arrayCell(in, cf, idxFn, line)
			if err != nil {
				return err
			}
			c.arr[idx] = v
			return nil
		}
		return load, store, nil
	case MblExpr:
		name := t.Name
		load := func(in *interp) (int64, error) { return in.host.ReadMbl(name) }
		store := func(in *interp, v int64) error { return in.host.WriteMbl(name, v) }
		return load, store, nil
	}
	return nil, nil, fmt.Errorf("rcl: invalid assignment target %T", e)
}

func (ce *compEnv) compileUnary(x UnaryExpr) (evalFn, error) {
	if x.Op == "++" || x.Op == "--" {
		load, store, err := ce.compileTarget(x.X)
		if err != nil {
			return nil, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		postfix := x.Postfix
		return func(in *interp) (int64, error) {
			old, err := load(in)
			if err != nil {
				return 0, err
			}
			if err := store(in, old+delta); err != nil {
				return 0, err
			}
			if postfix {
				return old, nil
			}
			return old + delta, nil
		}, nil
	}
	xf, err := ce.compileExpr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		return func(in *interp) (int64, error) { v, err := xf(in); return -v, err }, nil
	case "~":
		return func(in *interp) (int64, error) { v, err := xf(in); return ^v, err }, nil
	case "!":
		return func(in *interp) (int64, error) {
			v, err := xf(in)
			if err != nil {
				return 0, err
			}
			return boolToInt(v == 0), nil
		}, nil
	}
	return nil, fmt.Errorf("rcl: unknown unary op %q", x.Op)
}

// binopFn specializes one binary operator into a two-operand function.
// Only division and modulo can fail, so the others compile to bare
// arithmetic.
func binopFn(op string, line int) (func(l, r int64) (int64, error), error) {
	switch op {
	case "+":
		return func(l, r int64) (int64, error) { return l + r, nil }, nil
	case "-":
		return func(l, r int64) (int64, error) { return l - r, nil }, nil
	case "*":
		return func(l, r int64) (int64, error) { return l * r, nil }, nil
	case "/":
		return func(l, r int64) (int64, error) {
			if r == 0 {
				return 0, fmt.Errorf("rcl line %d: division by zero", line)
			}
			return l / r, nil
		}, nil
	case "%":
		return func(l, r int64) (int64, error) {
			if r == 0 {
				return 0, fmt.Errorf("rcl line %d: modulo by zero", line)
			}
			return l % r, nil
		}, nil
	case "&":
		return func(l, r int64) (int64, error) { return l & r, nil }, nil
	case "|":
		return func(l, r int64) (int64, error) { return l | r, nil }, nil
	case "^":
		return func(l, r int64) (int64, error) { return l ^ r, nil }, nil
	case "<<":
		return func(l, r int64) (int64, error) { return l << (uint64(r) & 63), nil }, nil
	case ">>":
		return func(l, r int64) (int64, error) { return l >> (uint64(r) & 63), nil }, nil
	case "==":
		return func(l, r int64) (int64, error) { return boolToInt(l == r), nil }, nil
	case "!=":
		return func(l, r int64) (int64, error) { return boolToInt(l != r), nil }, nil
	case "<":
		return func(l, r int64) (int64, error) { return boolToInt(l < r), nil }, nil
	case "<=":
		return func(l, r int64) (int64, error) { return boolToInt(l <= r), nil }, nil
	case ">":
		return func(l, r int64) (int64, error) { return boolToInt(l > r), nil }, nil
	case ">=":
		return func(l, r int64) (int64, error) { return boolToInt(l >= r), nil }, nil
	}
	return nil, fmt.Errorf("rcl line %d: unknown operator %q", line, op)
}

func (ce *compEnv) compileBinary(x BinaryExpr) (evalFn, error) {
	lf, err := ce.compileExpr(x.L)
	if err != nil {
		return nil, err
	}
	rf, err := ce.compileExpr(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "&&":
		return func(in *interp) (int64, error) {
			l, err := lf(in)
			if err != nil || l == 0 {
				return 0, err
			}
			r, err := rf(in)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		}, nil
	case "||":
		return func(in *interp) (int64, error) {
			l, err := lf(in)
			if err != nil {
				return 0, err
			}
			if l != 0 {
				return 1, nil
			}
			r, err := rf(in)
			if err != nil {
				return 0, err
			}
			return boolToInt(r != 0), nil
		}, nil
	}
	op, err := binopFn(x.Op, x.Line)
	if err != nil {
		return nil, err
	}
	return func(in *interp) (int64, error) {
		l, err := lf(in)
		if err != nil {
			return 0, err
		}
		r, err := rf(in)
		if err != nil {
			return 0, err
		}
		return op(l, r)
	}, nil
}

func (ce *compEnv) compileAssign(x AssignExpr) (evalFn, error) {
	rhsFn, err := ce.compileExpr(x.Val)
	if err != nil {
		return nil, err
	}
	load, store, err := ce.compileTarget(x.Target)
	if err != nil {
		return nil, err
	}
	if x.Op == "=" {
		return func(in *interp) (int64, error) {
			rhs, err := rhsFn(in)
			if err != nil {
				return 0, err
			}
			if err := store(in, rhs); err != nil {
				return 0, err
			}
			return rhs, nil
		}, nil
	}
	op, err := binopFn(x.Op[:len(x.Op)-1], x.Line) // strip '='
	if err != nil {
		return nil, err
	}
	return func(in *interp) (int64, error) {
		rhs, err := rhsFn(in)
		if err != nil {
			return 0, err
		}
		old, err := load(in)
		if err != nil {
			return 0, err
		}
		rhs, err = op(old, rhs)
		if err != nil {
			return 0, err
		}
		if err := store(in, rhs); err != nil {
			return 0, err
		}
		return rhs, nil
	}, nil
}

// argFn produces one host-call argument.
type argFn func(in *interp) (Arg, error)

func (ce *compEnv) compileArgs(exprs []Expr) ([]argFn, error) {
	fns := make([]argFn, len(exprs))
	for i, e := range exprs {
		if s, ok := e.(StrLit); ok {
			a := Arg{S: s.S, IsStr: true}
			fns[i] = func(*interp) (Arg, error) { return a, nil }
			continue
		}
		ef, err := ce.compileExpr(e)
		if err != nil {
			return nil, err
		}
		fns[i] = func(in *interp) (Arg, error) {
			v, err := ef(in)
			return Arg{I: v}, err
		}
	}
	return fns, nil
}

// pushArgs evaluates call arguments onto the shared argbuf stack and
// returns the mark where this call's region begins. The caller slices
// argbuf[mark:] for the host call and truncates back to mark after;
// nested calls inside argument expressions push and pop their own
// regions above ours. Hosts must not retain the slice past the call.
func pushArgs(in *interp, fns []argFn) (int, error) {
	st := in.st
	mark := len(st.argbuf)
	for _, f := range fns {
		a, err := f(in)
		if err != nil {
			st.argbuf = st.argbuf[:mark]
			return mark, err
		}
		st.argbuf = append(st.argbuf, a)
	}
	return mark, nil
}

func (ce *compEnv) compileCall(x CallExpr) (evalFn, error) {
	// Interpreter-level builtins first.
	switch x.Name {
	case "min", "max":
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("rcl line %d: %s takes 2 arguments", x.Line, x.Name)
		}
		af, err := ce.compileExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		bf, err := ce.compileExpr(x.Args[1])
		if err != nil {
			return nil, err
		}
		wantMin := x.Name == "min"
		return func(in *interp) (int64, error) {
			a, err := af(in)
			if err != nil {
				return 0, err
			}
			b, err := bf(in)
			if err != nil {
				return 0, err
			}
			if wantMin == (a < b) {
				return a, nil
			}
			return b, nil
		}, nil
	case "abs":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("rcl line %d: abs takes 1 argument", x.Line)
		}
		xf, err := ce.compileExpr(x.Args[0])
		if err != nil {
			return nil, err
		}
		return func(in *interp) (int64, error) {
			v, err := xf(in)
			if err != nil {
				return 0, err
			}
			if v < 0 {
				return -v, nil
			}
			return v, nil
		}, nil
	case "len":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("rcl line %d: len takes 1 argument", x.Line)
		}
		vr, ok := x.Args[0].(VarRef)
		if !ok {
			return nil, fmt.Errorf("rcl line %d: len argument must be an array", x.Line)
		}
		cf := ce.cellFn(vr.Name, vr.Line)
		line := x.Line
		name := vr.Name
		return func(in *interp) (int64, error) {
			c, err := cf(in)
			if err != nil {
				return 0, err
			}
			if !c.isArr {
				return 0, fmt.Errorf("rcl line %d: len of non-array %s", line, name)
			}
			return int64(len(c.arr)), nil
		}, nil
	}
	argFns, err := ce.compileArgs(x.Args)
	if err != nil {
		return nil, err
	}
	name, line := x.Name, x.Line
	return func(in *interp) (int64, error) {
		mark, err := pushArgs(in, argFns)
		if err != nil {
			return 0, err
		}
		v, err := in.host.Call(name, in.st.argbuf[mark:])
		in.st.argbuf = in.st.argbuf[:mark]
		if err != nil {
			return 0, fmt.Errorf("rcl line %d: %w", line, err)
		}
		return v, nil
	}, nil
}
