package rcl

// Frame is a prepared execution context for a Program: the locals and
// parameter slot arrays are sized once at construction and reused, so
// after warmup a Frame.Exec of a steady-state reaction body performs
// zero heap allocations — which is what keeps the Mantis dialogue loop
// allocation-free.
//
// The intended pattern, mirroring how the agent compiles reactions at
// prologue time:
//
//	f := prog.NewFrame()
//	depth := f.BindScalar("depth")       // once, at setup
//	f.BindArray("qdepths", qbuf)         // once; qbuf refilled per poll
//	for each iteration {
//	    *depth = polledDepth             // no map, no boxing
//	    if err := f.Exec(host); err != nil { ... }
//	}
//
// A Frame is not safe for concurrent use, and Exec must not be called
// reentrantly from a Host callback on the same Frame.
type Frame struct {
	prog *Program
	st   execState
	in   interp // embedded so Exec never heap-allocates the interpreter
}

// NewFrame returns a Frame with slot arrays sized to the compiled
// program and every parameter unbound. Parameters referenced by the
// body must be bound before Exec.
func (p *Program) NewFrame() *Frame {
	f := &Frame{prog: p}
	f.st.locals = make([]cell, p.nlocals)
	f.st.params = make([]cell, len(p.params))
	f.st.bound = make([]bool, len(p.params))
	return f
}

// BindScalar binds (or rebinds) a scalar parameter and returns a stable
// pointer to its storage; writing through the pointer before Exec is how
// per-iteration polled values reach the reaction without allocation.
// Binding a name the body never references is allowed (and inert).
func (f *Frame) BindScalar(name string) *int64 {
	slot, ok := f.prog.params[name]
	if !ok {
		// The body never reads this name; hand back real storage so the
		// caller's writes stay harmless.
		return new(int64)
	}
	c := &f.st.params[slot]
	c.isArr = false
	c.arr = nil
	f.st.bound[slot] = true
	return &c.scalar
}

// BindArray binds (or rebinds) an array parameter by reference: the
// reaction indexes arr directly, so refilling arr in place between Exec
// calls updates the parameter with no copy. Writes from the reaction
// body are visible to the caller.
func (f *Frame) BindArray(name string, arr []int64) {
	slot, ok := f.prog.params[name]
	if !ok {
		return
	}
	c := &f.st.params[slot]
	c.isArr = true
	c.arr = arr
	f.st.bound[slot] = true
}

// Exec runs the program once against host using the bound parameters.
// Steady-state cost is the compiled closure tree only: no allocation,
// no name resolution.
func (f *Frame) Exec(host Host) error {
	if err := f.prog.compileErr; err != nil {
		return err
	}
	f.st.argbuf = f.st.argbuf[:0]
	f.in = interp{prog: f.prog, host: host, st: &f.st, max: f.prog.MaxSteps}
	if f.in.max == 0 {
		f.in.max = defaultMaxSteps
	}
	_, err := runStmts(&f.in, f.prog.code)
	f.in.host = nil // do not retain the host past the call
	return err
}
