package rcl

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// testHost is a scriptable Host for interpreter tests.
type testHost struct {
	mbls     map[string]int64
	tableOps []string
	calls    []string
	callRet  map[string]int64
}

func newTestHost() *testHost {
	return &testHost{mbls: map[string]int64{}, callRet: map[string]int64{}}
}

func (h *testHost) ReadMbl(name string) (int64, error) {
	v, ok := h.mbls[name]
	if !ok {
		return 0, fmt.Errorf("unknown malleable %s", name)
	}
	return v, nil
}

func (h *testHost) WriteMbl(name string, v int64) error {
	if _, ok := h.mbls[name]; !ok {
		return fmt.Errorf("unknown malleable %s", name)
	}
	h.mbls[name] = v
	return nil
}

func (h *testHost) TableOp(table, method string, args []Arg) (int64, error) {
	h.tableOps = append(h.tableOps, fmt.Sprintf("%s.%s/%d", table, method, len(args)))
	return 42, nil
}

func (h *testHost) Call(name string, args []Arg) (int64, error) {
	h.calls = append(h.calls, name)
	if v, ok := h.callRet[name]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown builtin %s", name)
}

// run compiles and executes src once, returning the host for inspection.
func run(t *testing.T, src string, params map[string]any) *testHost {
	t.Helper()
	h := newTestHost()
	h.mbls["out"] = 0
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := prog.Exec(h, params); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return h
}

func TestFig1ReactionBody(t *testing.T) {
	// The exact reaction body from Figure 1 of the paper (with the loop
	// body braced), finding the port with maximum queue depth.
	src := `
	uint16_t current_max = 0;
	uint16_t max_port = 0;
	for (int i = 1; i <= 10; ++i) {
		if (qdepths[i] > current_max) {
			current_max = qdepths[i]; max_port = i;
		}
	}
	${value_var} = max_port;
	`
	h := newTestHost()
	h.mbls["value_var"] = 0
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	qdepths := []int64{0, 5, 2, 99, 1, 0, 0, 7, 0, 3, 4}
	if err := prog.Exec(h, map[string]any{"qdepths": qdepths}); err != nil {
		t.Fatal(err)
	}
	if h.mbls["value_var"] != 3 {
		t.Fatalf("value_var = %d, want 3 (port of max depth 99)", h.mbls["value_var"])
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]int64{
		"1 + 2 * 3":          7,
		"(1 + 2) * 3":        9,
		"10 / 3":             3,
		"10 % 3":             1,
		"7 - 10":             -3,
		"1 << 4":             16,
		"256 >> 4":           16,
		"0xFF & 0x0F":        0x0F,
		"0xF0 | 0x0F":        0xFF,
		"0xFF ^ 0x0F":        0xF0,
		"~0":                 -1,
		"-5":                 -5,
		"!0":                 1,
		"!7":                 0,
		"3 < 4":              1,
		"4 <= 4":             1,
		"5 > 6":              0,
		"5 >= 5":             1,
		"5 == 5":             1,
		"5 != 5":             0,
		"1 && 2":             1,
		"1 && 0":             0,
		"0 || 3":             1,
		"0 || 0":             0,
		"1 ? 10 : 20":        10,
		"0 ? 10 : 20":        20,
		"min(3, 9)":          3,
		"max(3, 9)":          9,
		"abs(0 - 4)":         4,
		"abs(4)":             4,
		"2 + 3 == 5 ? 1 : 0": 1,
		"1 << 2 << 3":        32,
	}
	for src, want := range cases {
		h := run(t, fmt.Sprintf("${out} = %s;", src), nil)
		if h.mbls["out"] != want {
			t.Errorf("%s = %d, want %d", src, h.mbls["out"], want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// If && short-circuits, the division by zero on the right never runs.
	h := run(t, "int x = 0; ${out} = (x != 0) && (10 / x > 1);", nil)
	if h.mbls["out"] != 0 {
		t.Fatal("short-circuit && failed")
	}
	h = run(t, "int x = 0; ${out} = (x == 0) || (10 / x > 1);", nil)
	if h.mbls["out"] != 1 {
		t.Fatal("short-circuit || failed")
	}
}

func TestDivisionByZero(t *testing.T) {
	prog, err := Compile("int x = 1 / 0;")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Exec(newTestHost(), nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	prog, _ = Compile("int x = 1 % 0;")
	if err := prog.Exec(newTestHost(), nil); err == nil {
		t.Fatal("modulo by zero not caught")
	}
}

func TestCompoundAssignment(t *testing.T) {
	src := `
	int x = 10;
	x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1; x &= 0xF; x ^= 2;
	${out} = x;
	`
	// 10+5=15, -3=12, *2=24, /4=6, %4=2, <<3=16, |1=17, &0xF=1, ^2=3
	h := run(t, src, nil)
	if h.mbls["out"] != 3 {
		t.Fatalf("out = %d, want 3", h.mbls["out"])
	}
}

func TestIncrementDecrement(t *testing.T) {
	src := `
	int x = 5;
	int a = x++;
	int b = ++x;
	int c = x--;
	int d = --x;
	${out} = a * 1000 + b * 100 + c * 10 + d;
	`
	// a=5 (x=6), b=7 (x=7), c=7 (x=6), d=5 (x=5)
	h := run(t, src, nil)
	if h.mbls["out"] != 5775 {
		t.Fatalf("out = %d, want 5775", h.mbls["out"])
	}
}

func TestWidthMasking(t *testing.T) {
	h := run(t, "uint8_t x = 300; ${out} = x;", nil)
	if h.mbls["out"] != 300&0xFF {
		t.Fatalf("uint8_t masking: %d", h.mbls["out"])
	}
	h = run(t, "uint16_t x = 0; x = x - 1; ${out} = x;", nil)
	if h.mbls["out"] != 0xFFFF {
		t.Fatalf("uint16_t underflow: %d, want 65535", h.mbls["out"])
	}
	h = run(t, "int x = 0; x = x - 1; ${out} = x;", nil)
	if h.mbls["out"] != -1 {
		t.Fatalf("signed int: %d, want -1", h.mbls["out"])
	}
}

func TestWhileLoopAndBreakContinue(t *testing.T) {
	src := `
	int sum = 0;
	int i = 0;
	while (1) {
		i++;
		if (i > 10) { break; }
		if (i % 2 == 0) { continue; }
		sum += i;
	}
	${out} = sum;
	`
	h := run(t, src, nil) // 1+3+5+7+9 = 25
	if h.mbls["out"] != 25 {
		t.Fatalf("out = %d, want 25", h.mbls["out"])
	}
}

func TestForLoopVariants(t *testing.T) {
	h := run(t, "int s = 0; for (int i = 0; i < 5; i++) { s += i; } ${out} = s;", nil)
	if h.mbls["out"] != 10 {
		t.Fatalf("decl-init for: %d", h.mbls["out"])
	}
	h = run(t, "int s = 0; int i = 0; for (i = 10; i > 0; i -= 2) s++; ${out} = s;", nil)
	if h.mbls["out"] != 5 {
		t.Fatalf("expr-init unbraced for: %d", h.mbls["out"])
	}
	h = run(t, "int s = 0; for (;;) { s++; if (s == 3) break; } ${out} = s;", nil)
	if h.mbls["out"] != 3 {
		t.Fatalf("empty-clause for: %d", h.mbls["out"])
	}
}

func TestNestedLoopBreak(t *testing.T) {
	src := `
	int count = 0;
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 10; j++) {
			if (j == 2) break;
			count++;
		}
	}
	${out} = count;
	`
	h := run(t, src, nil)
	if h.mbls["out"] != 6 {
		t.Fatalf("out = %d, want 6 (break only exits inner loop)", h.mbls["out"])
	}
}

func TestReturnStopsExecution(t *testing.T) {
	h := run(t, "${out} = 1; return; ${out} = 2;", nil)
	if h.mbls["out"] != 1 {
		t.Fatalf("out = %d, return did not stop execution", h.mbls["out"])
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
	uint32_t hist[8];
	for (int i = 0; i < 8; i++) { hist[i] = i * i; }
	int s = 0;
	for (int i = 0; i < len(hist); i++) { s += hist[i]; }
	${out} = s;
	`
	h := run(t, src, nil) // 0+1+4+9+16+25+36+49 = 140
	if h.mbls["out"] != 140 {
		t.Fatalf("out = %d, want 140", h.mbls["out"])
	}
}

func TestArrayOutOfRange(t *testing.T) {
	prog, err := Compile("int a[4]; a[4] = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Exec(newTestHost(), nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
	prog, _ = Compile("int a[4]; int x = a[0-1];")
	if err := prog.Exec(newTestHost(), nil); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestStaticsPersistAcrossInvocations(t *testing.T) {
	// The paper's "stateful dialogue": statics retain values across
	// iterations of the reaction loop.
	prog, err := Compile("static int total = 0; total += delta; ${out} = total;")
	if err != nil {
		t.Fatal(err)
	}
	h := newTestHost()
	h.mbls["out"] = 0
	for i := 1; i <= 4; i++ {
		if err := prog.Exec(h, map[string]any{"delta": int64(10)}); err != nil {
			t.Fatal(err)
		}
		if h.mbls["out"] != int64(10*i) {
			t.Fatalf("iteration %d: out = %d, want %d", i, h.mbls["out"], 10*i)
		}
	}
}

func TestParamsBinding(t *testing.T) {
	src := "${out} = scalar + arr[1] + u64 + goInt;"
	h := newTestHost()
	h.mbls["out"] = 0
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	err = prog.Exec(h, map[string]any{
		"scalar": int64(1),
		"arr":    []int64{10, 20},
		"u64":    uint64(300),
		"goInt":  4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.mbls["out"] != 4321 {
		t.Fatalf("out = %d, want 4321", h.mbls["out"])
	}
	// []uint64 parameters are converted.
	prog2, _ := Compile("${out} = a[0];")
	if err := prog2.Exec(h, map[string]any{"a": []uint64{7}}); err != nil {
		t.Fatal(err)
	}
	if h.mbls["out"] != 7 {
		t.Fatal("[]uint64 binding failed")
	}
	// Unsupported param type errors.
	if err := prog2.Exec(h, map[string]any{"a": "nope"}); err == nil {
		t.Fatal("string param accepted")
	}
}

func TestTableOps(t *testing.T) {
	src := `
	int h = tbl.addEntry(5, "my_action", 7);
	tbl.modEntry(h, "my_action", 8);
	tbl.delEntry(h);
	${out} = h;
	`
	h := run(t, src, nil)
	if h.mbls["out"] != 42 {
		t.Fatalf("handle = %d", h.mbls["out"])
	}
	want := []string{"tbl.addEntry/3", "tbl.modEntry/3", "tbl.delEntry/1"}
	if len(h.tableOps) != 3 {
		t.Fatalf("ops = %v", h.tableOps)
	}
	for i := range want {
		if h.tableOps[i] != want[i] {
			t.Fatalf("ops = %v, want %v", h.tableOps, want)
		}
	}
}

func TestHostCalls(t *testing.T) {
	h := newTestHost()
	h.mbls["out"] = 0
	h.callRet["now"] = 123456
	prog, err := Compile("${out} = now();")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Exec(h, nil); err != nil {
		t.Fatal(err)
	}
	if h.mbls["out"] != 123456 {
		t.Fatalf("now() = %d", h.mbls["out"])
	}
	prog2, _ := Compile("int x = mystery();")
	if err := prog2.Exec(h, nil); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestUnknownMalleable(t *testing.T) {
	prog, _ := Compile("${ghost} = 1;")
	if err := prog.Exec(newTestHost(), nil); err == nil {
		t.Fatal("write to unknown malleable accepted")
	}
	prog2, _ := Compile("int x = ${ghost};")
	if err := prog2.Exec(newTestHost(), nil); err == nil {
		t.Fatal("read of unknown malleable accepted")
	}
}

func TestUndefinedVariable(t *testing.T) {
	prog, _ := Compile("int x = y + 1;")
	if err := prog.Exec(newTestHost(), nil); err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("err = %v", err)
	}
}

func TestRedeclaration(t *testing.T) {
	prog, _ := Compile("int x = 1; int x = 2;")
	if err := prog.Exec(newTestHost(), nil); err == nil || !strings.Contains(err.Error(), "redeclaration") {
		t.Fatalf("err = %v", err)
	}
	// Shadowing in an inner scope is fine (C semantics).
	h := run(t, "int x = 1; if (1) { int x = 2; } ${out} = x;", nil)
	if h.mbls["out"] != 1 {
		t.Fatal("inner scope leaked")
	}
}

func TestScopingBlockLocals(t *testing.T) {
	prog, _ := Compile("if (1) { int y = 5; } ${out} = y;")
	h := newTestHost()
	h.mbls["out"] = 0
	if err := prog.Exec(h, nil); err == nil {
		t.Fatal("block-local variable visible outside block")
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	prog, err := Compile("while (1) { }")
	if err != nil {
		t.Fatal(err)
	}
	prog.MaxSteps = 1000
	if err := prog.Exec(newTestHost(), nil); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"int = 5;",
		"x ++ ++;",
		"if (x {)",
		"int a[0];",
		"int a[2] = 5;",
		"5 = x;",
		"for (int i = 0 i < 5; i++) {}",
		"int x = \"str\" + 1;",
		"@",
		"/* unterminated",
		"\"unterminated",
		"${}",
		"while (1) { break",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			// Some of these fail at runtime rather than compile time.
			prog, _ := Compile(src)
			if prog != nil {
				if err := prog.Exec(newTestHost(), nil); err == nil {
					t.Errorf("no error for %q", src)
				}
			}
		}
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
	int r = 0;
	if (x == 1) { r = 10; }
	else if (x == 2) { r = 20; }
	else { r = 30; }
	${out} = r;
	`
	for x, want := range map[int64]int64{1: 10, 2: 20, 3: 30} {
		h := run(t, src, map[string]any{"x": x})
		if h.mbls["out"] != want {
			t.Errorf("x=%d: out = %d, want %d", x, h.mbls["out"], want)
		}
	}
}

func TestStringArgsToHost(t *testing.T) {
	h := newTestHost()
	h.callRet["log"] = 0
	prog, err := Compile(`log("hello", 42);`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Exec(h, nil); err != nil {
		t.Fatal(err)
	}
	if len(h.calls) != 1 || h.calls[0] != "log" {
		t.Fatalf("calls = %v", h.calls)
	}
}

// Property: the interpreter agrees with Go on a randomly parameterized
// arithmetic identity.
func TestPropertyArithmeticAgreesWithGo(t *testing.T) {
	prog, err := Compile("${out} = (a + b) * 3 - (a - b) / 2 + (a ^ b) % 7;")
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int32) bool {
		h := newTestHost()
		h.mbls["out"] = 0
		ai, bi := int64(a), int64(b)
		if err := prog.Exec(h, map[string]any{"a": ai, "b": bi}); err != nil {
			return false
		}
		want := (ai+bi)*3 - (ai-bi)/2 + (ai^bi)%7
		return h.mbls["out"] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a summation loop equals n*(n+1)/2 for any small n.
func TestPropertySumLoop(t *testing.T) {
	prog, err := Compile("int s = 0; for (int i = 1; i <= n; i++) { s += i; } ${out} = s;")
	if err != nil {
		t.Fatal(err)
	}
	f := func(n8 uint8) bool {
		n := int64(n8)
		h := newTestHost()
		h.mbls["out"] = 0
		if err := prog.Exec(h, map[string]any{"n": n}); err != nil {
			return false
		}
		return h.mbls["out"] == n*(n+1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
