// Package rcl implements the Reaction C-like Language: the C-style
// bodies of P4R `reaction` declarations.
//
// In the original Mantis, reaction bodies are extracted from the .p4r
// file, compiled with gcc into a shared object, and dynamically loaded
// by the agent. Go has no equivalent of dlopen for Go code, so this
// package interprets the same language instead. The semantics preserved
// are the ones the paper relies on:
//
//   - arbitrary (Turing-complete) computation over polled parameters,
//   - reads and writes of malleables via ${name},
//   - malleable table manipulation via generated library functions
//     (table.addEntry / modEntry / delEntry / setDefault),
//   - `static` variables that persist across dialogue iterations (the
//     paper's "stateful dialogue" via C statics), and
//   - host builtins (now(), min(), max(), ...).
//
// Values are signed 64-bit integers with C-like operator semantics.
// Declared widths (uint16_t, ...) mask on assignment the way C integer
// conversion would.
package rcl

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tMbl   // ${name}
	tPunct // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tMbl:
		return fmt.Sprintf("${%s}", t.text)
	case tString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// twoCharOps are multi-character operators, longest-match-first.
var threeCharOps = []string{"<<=", ">>="}
var twoCharOps = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("line %d: unterminated comment", line)
			}
			i += 2
		case c == '$' && i+1 < n && src[i+1] == '{':
			i += 2
			start := i
			for i < n && (src[i] == '_' || src[i] == '.' || unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			if i >= n || src[i] != '}' || i == start {
				return nil, fmt.Errorf("line %d: malformed malleable reference", line)
			}
			toks = append(toks, token{kind: tMbl, text: src[start:i], line: line})
			i++
		case c == '"':
			i++
			start := i
			for i < n && src[i] != '"' {
				if src[i] == '\n' {
					return nil, fmt.Errorf("line %d: newline in string literal", line)
				}
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("line %d: unterminated string literal", line)
			}
			toks = append(toks, token{kind: tString, text: src[start:i], line: line})
			i++
		case c == '_' || unicode.IsLetter(rune(c)):
			start := i
			for i < n && (src[i] == '_' || unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			toks = append(toks, token{kind: tIdent, text: src[start:i], line: line})
		case unicode.IsDigit(rune(c)):
			start := i
			base := 10
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
			}
			for i < n && (isHexDigit(src[i]) && base == 16 || unicode.IsDigit(rune(src[i])) && base == 10) {
				i++
			}
			text := src[start:i]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				// Allow the full uint64 range to wrap into int64.
				u, uerr := strconv.ParseUint(text, 0, 64)
				if uerr != nil {
					return nil, fmt.Errorf("line %d: bad number %q", line, text)
				}
				v = int64(u)
			}
			toks = append(toks, token{kind: tNumber, text: text, num: v, line: line})
		default:
			matched := false
			for _, op := range threeCharOps {
				if i+3 <= n && src[i:i+3] == op {
					toks = append(toks, token{kind: tPunct, text: op, line: line})
					i += 3
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			for _, op := range twoCharOps {
				if i+2 <= n && src[i:i+2] == op {
					toks = append(toks, token{kind: tPunct, text: op, line: line})
					i += 2
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
				'(', ')', '{', '}', '[', ']', ';', ',', '?', ':', '.':
				toks = append(toks, token{kind: tPunct, text: string(c), line: line})
				i++
			default:
				return nil, fmt.Errorf("line %d: unexpected character %q", line, string(c))
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
