package rcl

import "fmt"

// ---- AST ----

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclVar is one declarator within a declaration.
type DeclVar struct {
	Name      string
	ArraySize int  // 0 for scalars
	Init      Expr // nil if absent
}

// DeclStmt declares one or more variables of a C integer type. Static
// declarations persist across reaction invocations.
type DeclStmt struct {
	Static bool
	Type   string
	Width  int // mask width; 64 means unmasked
	Vars   []DeclVar
	Line   int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ E Expr }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
}

// ForStmt is a C for loop.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Expr // may be nil
	Body []Stmt
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// ReturnStmt ends the reaction invocation.
type ReturnStmt struct{ E Expr }

func (DeclStmt) stmtNode()     {}
func (ExprStmt) stmtNode()     {}
func (IfStmt) stmtNode()       {}
func (WhileStmt) stmtNode()    {}
func (ForStmt) stmtNode()      {}
func (BreakStmt) stmtNode()    {}
func (ContinueStmt) stmtNode() {}
func (ReturnStmt) stmtNode()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumLit is an integer literal.
type NumLit struct{ V int64 }

// StrLit is a string literal (allowed only as a call argument, e.g. an
// action name for table operations).
type StrLit struct{ S string }

// VarRef names a variable or bound parameter.
type VarRef struct {
	Name string
	Line int
}

// MblExpr references a malleable value/field: ${name}.
type MblExpr struct {
	Name string
	Line int
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	Base Expr
	Idx  Expr
	Line int
}

// UnaryExpr is a prefix or postfix unary operation. Op is one of
// - ~ ! ++ --.
type UnaryExpr struct {
	Op      string
	X       Expr
	Postfix bool
	Line    int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// TernaryExpr is cond ? a : b.
type TernaryExpr struct{ Cond, T, F Expr }

// AssignExpr assigns (possibly compound) to a variable, array element,
// or malleable.
type AssignExpr struct {
	Target Expr // VarRef, IndexExpr, or MblExpr
	Op     string
	Val    Expr
	Line   int
}

// CallExpr invokes a builtin or host function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// TableCallExpr invokes a generated malleable-table library function:
// table.addEntry(...), table.modEntry(...), table.delEntry(...),
// table.setDefault(...).
type TableCallExpr struct {
	Table  string
	Method string
	Args   []Expr
	Line   int
}

func (NumLit) exprNode()        {}
func (StrLit) exprNode()        {}
func (VarRef) exprNode()        {}
func (MblExpr) exprNode()       {}
func (IndexExpr) exprNode()     {}
func (UnaryExpr) exprNode()     {}
func (BinaryExpr) exprNode()    {}
func (TernaryExpr) exprNode()   {}
func (AssignExpr) exprNode()    {}
func (CallExpr) exprNode()      {}
func (TableCallExpr) exprNode() {}

// typeWidths maps C type names to mask widths (64 = unmasked).
var typeWidths = map[string]int{
	"int": 64, "long": 64, "short": 16, "char": 8, "bool": 1,
	"unsigned": 64, "size_t": 64,
	"uint8_t": 8, "uint16_t": 16, "uint32_t": 32, "uint64_t": 64,
	"int8_t": 64, "int16_t": 64, "int32_t": 64, "int64_t": 64,
}

// ---- Parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("reaction body line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) isPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *parser) expect(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %s", s, p.cur())
	}
	p.advance()
	return nil
}

// parseBody parses a full reaction body: a statement list.
func parseBody(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for p.cur().kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

// parseBlockOrStmt parses `{ ... }` or a single statement.
func (p *parser) parseBlockOrStmt() ([]Stmt, error) {
	if p.isPunct("{") {
		p.advance()
		var out []Stmt
		for !p.isPunct("}") {
			if p.cur().kind == tEOF {
				return nil, p.errf("unterminated block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		p.advance()
		return out, nil
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.kind == tIdent {
		switch t.text {
		case "if":
			return p.parseIf()
		case "while":
			return p.parseWhile()
		case "for":
			return p.parseFor()
		case "break":
			p.advance()
			return BreakStmt{Line: t.line}, p.expect(";")
		case "continue":
			p.advance()
			return ContinueStmt{Line: t.line}, p.expect(";")
		case "return":
			p.advance()
			if p.isPunct(";") {
				p.advance()
				return ReturnStmt{}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return ReturnStmt{E: e}, p.expect(";")
		case "static":
			p.advance()
			return p.parseDecl(true)
		}
		if _, isType := typeWidths[t.text]; isType {
			return p.parseDecl(false)
		}
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return ExprStmt{E: e}, p.expect(";")
}

func (p *parser) parseDecl(static bool) (Stmt, error) {
	t := p.cur()
	width, ok := typeWidths[t.text]
	if !ok {
		return nil, p.errf("expected type name, got %s", t)
	}
	p.advance()
	// Skip a second type word ("unsigned int", "long long").
	if p.cur().kind == tIdent {
		if w2, ok := typeWidths[p.cur().text]; ok && p.peek().kind == tIdent {
			width = w2
			p.advance()
		}
	}
	d := DeclStmt{Static: static, Type: t.text, Width: width, Line: t.line}
	for {
		if p.cur().kind != tIdent {
			return nil, p.errf("expected variable name, got %s", p.cur())
		}
		v := DeclVar{Name: p.advance().text}
		if p.isPunct("[") {
			p.advance()
			if p.cur().kind != tNumber {
				return nil, p.errf("array size must be a constant")
			}
			v.ArraySize = int(p.advance().num)
			if v.ArraySize <= 0 {
				return nil, p.errf("array size must be positive")
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if p.isPunct("=") {
			p.advance()
			e, err := p.parseAssignRHS()
			if err != nil {
				return nil, err
			}
			v.Init = e
		}
		d.Vars = append(d.Vars, v)
		if p.isPunct(",") {
			p.advance()
			continue
		}
		break
	}
	return d, p.expect(";")
}

func (p *parser) parseIf() (Stmt, error) {
	p.advance()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	st := IfStmt{Cond: cond, Then: then}
	if p.cur().kind == tIdent && p.cur().text == "else" {
		p.advance()
		if p.cur().kind == tIdent && p.cur().text == "if" {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
		} else {
			els, err := p.parseBlockOrStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	p.advance()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	return WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	p.advance()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var st ForStmt
	if !p.isPunct(";") {
		if p.cur().kind == tIdent {
			if _, isType := typeWidths[p.cur().text]; isType {
				d, err := p.parseDecl(false) // consumes trailing ';'
				if err != nil {
					return nil, err
				}
				st.Init = d
				goto cond
			}
		}
		{
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = ExprStmt{E: e}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	} else {
		p.advance()
	}
cond:
	if !p.isPunct(";") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = e
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = e
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// ---- Expressions (precedence climbing) ----

// parseExpr parses a full expression including assignment (lowest,
// right-associative).
func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tPunct {
		op := p.cur().text
		switch op {
		case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
			line := p.cur().line
			switch lhs.(type) {
			case VarRef, IndexExpr, MblExpr:
			default:
				return nil, p.errf("invalid assignment target")
			}
			p.advance()
			rhs, err := p.parseExpr() // right-assoc
			if err != nil {
				return nil, err
			}
			return AssignExpr{Target: lhs, Op: op, Val: rhs, Line: line}, nil
		}
	}
	return lhs, nil
}

// parseAssignRHS parses an initializer expression (no comma operator).
func (p *parser) parseAssignRHS() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		p.advance()
		t, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return TernaryExpr{Cond: cond, T: t, F: f}, nil
	}
	return cond, nil
}

// binary operator precedence, lowest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tPunct {
		matched := ""
		for _, op := range precLevels[level] {
			if p.cur().text == op {
				matched = op
				break
			}
		}
		if matched == "" {
			break
		}
		line := p.cur().line
		p.advance()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = BinaryExpr{Op: matched, L: lhs, R: rhs, Line: line}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "-", "~", "!", "+":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
		case "++", "--":
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			line := p.cur().line
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = IndexExpr{Base: e, Idx: idx, Line: line}
		case p.isPunct("."):
			vr, ok := e.(VarRef)
			if !ok {
				return nil, p.errf("method call on non-table expression")
			}
			p.advance()
			if p.cur().kind != tIdent {
				return nil, p.errf("expected method name after '.'")
			}
			method := p.advance().text
			args, err := p.parseCallArgs()
			if err != nil {
				return nil, err
			}
			e = TableCallExpr{Table: vr.Name, Method: method, Args: args, Line: vr.Line}
		case p.isPunct("++") || p.isPunct("--"):
			op := p.advance().text
			e = UnaryExpr{Op: op, X: e, Postfix: true}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseCallArgs() ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.isPunct(")") {
		a, err := p.parseAssignRHS()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.isPunct(",") {
			p.advance()
		}
	}
	p.advance()
	return args, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.advance()
		return NumLit{V: t.num}, nil
	case tString:
		p.advance()
		return StrLit{S: t.text}, nil
	case tMbl:
		p.advance()
		return MblExpr{Name: t.text, Line: t.line}, nil
	case tIdent:
		p.advance()
		if p.isPunct("(") {
			args, err := p.parseCallArgs()
			if err != nil {
				return nil, err
			}
			return CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		}
		return VarRef{Name: t.text, Line: t.line}, nil
	case tPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, p.errf("unexpected token %s", t)
}
