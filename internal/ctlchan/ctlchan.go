// Package ctlchan turns the driver.Channel method set into sequenced
// request/response messages carried over a netsim.Link — the control
// channel between a Mantis agent and its switch, made explicit so it
// can drop, duplicate, reorder, delay, and partition like a real one.
//
// The in-process layers below (driver, ctlplane, faults) keep a clean
// failure model: an operation either applies or it doesn't, and the
// caller always learns which. A message channel breaks that assumption
// in one specific way — the request or its acknowledgment can be lost
// independently — and this package contains the machinery that puts the
// pieces back together:
//
//   - Sequencing and idempotency. Every request carries a per-session
//     sequence number, which doubles as its idempotency token: the
//     server caches each executed request's response by (session, seq)
//     and answers retransmits from the cache without re-executing, so a
//     mutation applies at-most-once no matter how many copies of the
//     request arrive. Each request also piggybacks the client's lowest
//     unresolved sequence number; the server garbage-collects its cache
//     below that floor and rejects (never executes) mutations that
//     surface from the network after their seq dropped below it.
//
//   - Retransmission with a deadline. The client retransmits un-acked
//     requests on a full-jitter backoff (faults.Backoff) until a
//     response arrives or the per-op deadline passes. A deadline expiry
//     surfaces driver.ErrChannelDegraded: the op may or may not have
//     applied. Before reporting it for a mutation, the client sits out
//     the link's maximum message lifetime (netsim.Link.MaxDelay) so no
//     stale copy of the abandoned request is still in flight — the
//     virtual-clock analogue of TCP's MSL quarantine — which makes a
//     subsequent switch audit definitive.
//
//   - Epoch fencing. Write sessions carry an election epoch. The server
//     tracks the highest epoch it has seen and rejects lower-epoch
//     mutations with ErrFenced, so a partitioned-then-healed old
//     primary cannot push stale writes past a standby takeover. The
//     per-session execution channel is expected to be a ctlplane
//     session opened with the same epoch as its election ID, so
//     demotion fences writes at the dispatcher too — two independent
//     fences.
//
// In-flight windowing bounds the number of outstanding requests per
// client; excess callers queue FIFO. Reads share the same machinery but
// skip the quarantine (a stale read executing late is harmless).
package ctlchan

import (
	"errors"
	"fmt"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
)

// ErrFenced marks a mutation rejected because a higher election epoch
// has been seen by the server: the issuing session lost a takeover while
// partitioned. Fenced is terminal for the session — not transient — so
// a demoted agent stops instead of retrying into a split brain.
var ErrFenced = errors.New("ctlchan: session fenced by higher epoch")

// Frame kinds (first byte on the wire).
const (
	frameRequest  uint8 = 0xC1
	frameResponse uint8 = 0xC2
	frameDatagram uint8 = 0xC3 // fire-and-forget request, no response
)

// Verbs, one per driver.Channel operation that crosses the wire.
const (
	verbAddEntry uint8 = iota + 1
	verbModifyEntry
	verbDeleteEntry
	verbSetDefaultAction
	verbSetHashSeed
	verbRegWrite
	verbRegRead
	verbBatchRead
	verbReadEntries
	verbReadDefaultAction
	verbMemoize
)

var verbNames = map[uint8]string{
	verbAddEntry:          "AddEntry",
	verbModifyEntry:       "ModifyEntry",
	verbDeleteEntry:       "DeleteEntry",
	verbSetDefaultAction:  "SetDefaultAction",
	verbSetHashSeed:       "SetHashSeed",
	verbRegWrite:          "RegWrite",
	verbRegRead:           "RegRead",
	verbBatchRead:         "BatchRead",
	verbReadEntries:       "ReadEntries",
	verbReadDefaultAction: "ReadDefaultAction",
	verbMemoize:           "Memoize",
}

// mutatingVerb reports whether the verb changes switch state — the set
// subject to idempotency tokens, the MSL quarantine, and epoch fencing.
func mutatingVerb(v uint8) bool {
	switch v {
	case verbAddEntry, verbModifyEntry, verbDeleteEntry, verbSetDefaultAction,
		verbSetHashSeed, verbRegWrite:
		return true
	}
	return false
}

// Response status codes.
const (
	statusOK uint8 = iota
	// statusTransient: the inner channel failed transiently; the client
	// rebuilds an error wrapping driver.ErrTransient so the agent's
	// retry policy applies unchanged.
	statusTransient
	// statusFenced: the mutation was rejected by epoch fencing.
	statusFenced
	// statusStale: the request's seq is below the session's resolved
	// floor — a ghost copy of an operation the client already gave up
	// on. Never executed; no caller is waiting.
	statusStale
	// statusError: a non-transient remote error, carried as text.
	statusError
)

// request is the decoded form of one client→server frame. Exactly the
// fields of its verb are meaningful.
type request struct {
	Kind    uint8
	Session uint32
	Epoch   uint64
	Seq     uint64
	// Ack is the client's lowest unresolved seq: everything below it is
	// resolved client-side and can be dropped from the server's caches.
	Ack  uint64
	Verb uint8

	Table  string
	Entry  rmt.Entry
	Handle rmt.EntryHandle
	Action string
	Data   []uint64
	Call   *p4.ActionCall
	Name   string
	Seed   uint64
	Reg    string
	Idx    uint64
	Val    uint64
	Reqs   []driver.ReadReq
}

// response is the decoded form of one server→client frame.
type response struct {
	Session uint32
	Seq     uint64
	Status  uint8
	ErrMsg  string

	Handle  rmt.EntryHandle
	Val     uint64
	Vals    [][]uint64
	Entries []rmt.Entry
	Call    *p4.ActionCall
}

// ---- Wire codec ----
//
// Fixed-width little-endian integers with length-prefixed strings and
// slices: simple enough to decode incrementally and strict enough that
// a truncated or corrupted frame fails loudly instead of misparsing.

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *enc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) u64s(vs []uint64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u64(v)
	}
}
func (e *enc) keys(ks []rmt.KeySpec) {
	e.u32(uint32(len(ks)))
	for _, k := range ks {
		e.u64(k.Value)
		e.u64(k.Mask)
		e.u64(k.Lo)
		e.u64(k.Hi)
	}
}
func (e *enc) entry(en rmt.Entry) {
	e.u64(uint64(en.Handle))
	e.u64(uint64(int64(en.Priority)))
	e.str(en.Action)
	e.keys(en.Keys)
	e.u64s(en.Data)
}
func (e *enc) call(c *p4.ActionCall) {
	if c == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.str(c.Action)
	e.u64s(c.Data)
}

var errShortFrame = errors.New("ctlchan: truncated frame")

// maxSliceLen rejects length prefixes a sane frame cannot carry, so a
// corrupted frame fails instead of allocating gigabytes.
const maxSliceLen = 1 << 20

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() { d.err = errShortFrame }

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	b := d.b[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	b := d.b[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n > maxSliceLen || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
func (d *dec) u64s() []uint64 {
	n := int(d.u32())
	if d.err != nil || n > maxSliceLen {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.u64()
	}
	if d.err != nil {
		return nil
	}
	return vs
}
func (d *dec) keys() []rmt.KeySpec {
	n := int(d.u32())
	if d.err != nil || n > maxSliceLen {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	ks := make([]rmt.KeySpec, n)
	for i := range ks {
		ks[i] = rmt.KeySpec{Value: d.u64(), Mask: d.u64(), Lo: d.u64(), Hi: d.u64()}
	}
	if d.err != nil {
		return nil
	}
	return ks
}
func (d *dec) entry() rmt.Entry {
	return rmt.Entry{
		Handle:   rmt.EntryHandle(d.u64()),
		Priority: int(int64(d.u64())),
		Action:   d.str(),
		Keys:     d.keys(),
		Data:     d.u64s(),
	}
}
func (d *dec) callv() *p4.ActionCall {
	if d.u8() == 0 {
		return nil
	}
	return &p4.ActionCall{Action: d.str(), Data: d.u64s()}
}

// leftover fails the decode if trailing bytes remain: a frame must be
// consumed exactly.
func (d *dec) leftover() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("ctlchan: %d trailing bytes in frame", len(d.b)-d.off)
	}
	return nil
}

// encodeRequest serializes a request (or datagram) frame.
func encodeRequest(r *request) []byte {
	e := &enc{b: make([]byte, 0, 64)}
	e.u8(r.Kind)
	e.u32(r.Session)
	e.u64(r.Epoch)
	e.u64(r.Seq)
	e.u64(r.Ack)
	e.u8(r.Verb)
	switch r.Verb {
	case verbAddEntry:
		e.str(r.Table)
		e.entry(r.Entry)
	case verbModifyEntry:
		e.str(r.Table)
		e.u64(uint64(r.Handle))
		e.str(r.Action)
		e.u64s(r.Data)
	case verbDeleteEntry, verbMemoize:
		e.str(r.Table)
		e.u64(uint64(r.Handle))
	case verbSetDefaultAction:
		e.str(r.Table)
		e.call(r.Call)
	case verbSetHashSeed:
		e.str(r.Name)
		e.u64(r.Seed)
	case verbRegWrite:
		e.str(r.Reg)
		e.u64(r.Idx)
		e.u64(r.Val)
	case verbRegRead:
		e.str(r.Reg)
		e.u64(r.Idx)
	case verbBatchRead:
		e.u32(uint32(len(r.Reqs)))
		for _, rq := range r.Reqs {
			e.str(rq.Reg)
			e.u64(rq.Lo)
			e.u64(rq.Hi)
		}
	case verbReadEntries, verbReadDefaultAction:
		e.str(r.Table)
	}
	return e.b
}

// decodeRequest parses a request or datagram frame.
func decodeRequest(b []byte) (*request, error) {
	d := &dec{b: b}
	r := &request{Kind: d.u8()}
	if r.Kind != frameRequest && r.Kind != frameDatagram {
		return nil, fmt.Errorf("ctlchan: not a request frame (kind 0x%02x)", r.Kind)
	}
	r.Session = d.u32()
	r.Epoch = d.u64()
	r.Seq = d.u64()
	r.Ack = d.u64()
	r.Verb = d.u8()
	switch r.Verb {
	case verbAddEntry:
		r.Table = d.str()
		r.Entry = d.entry()
	case verbModifyEntry:
		r.Table = d.str()
		r.Handle = rmt.EntryHandle(d.u64())
		r.Action = d.str()
		r.Data = d.u64s()
	case verbDeleteEntry, verbMemoize:
		r.Table = d.str()
		r.Handle = rmt.EntryHandle(d.u64())
	case verbSetDefaultAction:
		r.Table = d.str()
		r.Call = d.callv()
	case verbSetHashSeed:
		r.Name = d.str()
		r.Seed = d.u64()
	case verbRegWrite:
		r.Reg = d.str()
		r.Idx = d.u64()
		r.Val = d.u64()
	case verbRegRead:
		r.Reg = d.str()
		r.Idx = d.u64()
	case verbBatchRead:
		n := int(d.u32())
		if d.err == nil && n > maxSliceLen {
			d.fail()
		}
		for i := 0; i < n && d.err == nil; i++ {
			r.Reqs = append(r.Reqs, driver.ReadReq{Reg: d.str(), Lo: d.u64(), Hi: d.u64()})
		}
	case verbReadEntries, verbReadDefaultAction:
		r.Table = d.str()
	default:
		return nil, fmt.Errorf("ctlchan: unknown verb %d", r.Verb)
	}
	if err := d.leftover(); err != nil {
		return nil, err
	}
	return r, nil
}

// encodeResponse serializes a response frame.
func encodeResponse(r *response) []byte {
	e := &enc{b: make([]byte, 0, 64)}
	e.u8(frameResponse)
	e.u32(r.Session)
	e.u64(r.Seq)
	e.u8(r.Status)
	e.str(r.ErrMsg)
	e.u64(uint64(r.Handle))
	e.u64(r.Val)
	e.u32(uint32(len(r.Vals)))
	for _, vs := range r.Vals {
		e.u64s(vs)
	}
	e.u32(uint32(len(r.Entries)))
	for _, en := range r.Entries {
		e.entry(en)
	}
	e.call(r.Call)
	return e.b
}

// decodeResponse parses a response frame.
func decodeResponse(b []byte) (*response, error) {
	d := &dec{b: b}
	if k := d.u8(); k != frameResponse {
		return nil, fmt.Errorf("ctlchan: not a response frame (kind 0x%02x)", k)
	}
	r := &response{
		Session: d.u32(),
		Seq:     d.u64(),
		Status:  d.u8(),
		ErrMsg:  d.str(),
		Handle:  rmt.EntryHandle(d.u64()),
		Val:     d.u64(),
	}
	nv := int(d.u32())
	if d.err == nil && nv > maxSliceLen {
		d.fail()
	}
	for i := 0; i < nv && d.err == nil; i++ {
		r.Vals = append(r.Vals, d.u64s())
	}
	ne := int(d.u32())
	if d.err == nil && ne > maxSliceLen {
		d.fail()
	}
	for i := 0; i < ne && d.err == nil; i++ {
		r.Entries = append(r.Entries, d.entry())
	}
	r.Call = d.callv()
	if err := d.leftover(); err != nil {
		return nil, err
	}
	return r, nil
}
