package ctlchan

import (
	"errors"

	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Server is the switch-side endpoint of the control channel: it decodes
// request frames arriving on attached links, executes them on each
// session's inner driver channel, and replies. One dispatcher process
// serves all sessions, so execution is serialized exactly like the
// single control CPU it models.
//
// The server is where at-most-once lands: executed responses are cached
// by (session, seq) and retransmits are answered from the cache, while
// mutations whose seq has fallen below the session's resolved floor —
// ghost copies of operations the client already abandoned — are
// rejected without executing. Epoch fencing is also enforced here (and
// again by the ctlplane dispatcher below, when the inner channel is a
// ctlplane session): a mutation carrying an epoch lower than the
// highest the server has seen is refused.
type Server struct {
	sim      *sim.Simulator
	sessions map[uint32]*serverSession

	queue []inbound
	disp  *sim.Proc
	idle  bool

	// epoch is the highest election epoch seen on any session; mutations
	// below it are fenced. epochAt records when it last rose — the
	// fencing point a split-brain audit compares mutation times against.
	epoch   uint64
	epochAt sim.Time

	stats ServerStats
}

type inbound struct {
	sess *serverSession
	msg  []byte
}

type serverSession struct {
	id    uint32
	epoch uint64
	link  *netsim.Link
	side  int // the server's side of the link; replies go out here
	ch    driver.Channel

	// floor is the client's lowest unresolved seq: responses below it
	// are garbage-collected, and mutating requests below it are stale.
	floor uint64
	// cache holds encoded responses by seq for retransmit replay.
	cache map[uint64][]byte

	executed       uint64
	mutations      uint64
	lastMutationAt sim.Time
}

// ServerStats counts server-side frame outcomes.
type ServerStats struct {
	// Frames counts frames received (including duplicates and garbage).
	Frames uint64
	// BadFrames counts frames that failed to decode.
	BadFrames uint64
	// Executed counts requests executed on an inner channel.
	Executed uint64
	// MutationsExecuted counts the mutating subset of Executed — the
	// number the at-most-once property is asserted against.
	MutationsExecuted uint64
	// DedupHits counts retransmits answered from the response cache
	// without re-executing.
	DedupHits uint64
	// FencedWrites counts mutations rejected for carrying a stale epoch.
	FencedWrites uint64
	// StaleWrites counts mutations rejected for a seq below the
	// session's resolved floor.
	StaleWrites uint64
	// Epoch is the highest election epoch seen; EpochBumpedAt is when it
	// last rose.
	Epoch         uint64
	EpochBumpedAt sim.Time
}

// SessionInfo is a snapshot of one attached session's counters.
type SessionInfo struct {
	ID             uint32
	Epoch          uint64
	Executed       uint64
	Mutations      uint64
	LastMutationAt sim.Time
}

// NewServer starts a control-channel server. Its dispatcher process
// spawns immediately and parks until the first frame arrives.
func NewServer(s *sim.Simulator) *Server {
	srv := &Server{sim: s, sessions: make(map[uint32]*serverSession)}
	srv.disp = s.Spawn("ctlchan-server", srv.run)
	return srv
}

// Attach binds a session to the server: frames arriving at side of link
// are decoded and executed on ch (typically a ctlplane session opened
// with ElectionID == epoch, so demotion fences writes below this layer
// too). Replies are sent back out the same side.
func (srv *Server) Attach(link *netsim.Link, side int, sessionID uint32, epoch uint64, ch driver.Channel) {
	sess := &serverSession{
		id: sessionID, epoch: epoch, link: link, side: side, ch: ch,
		cache: make(map[uint64][]byte),
	}
	srv.sessions[sessionID] = sess
	if epoch > srv.epoch {
		srv.epoch = epoch
		srv.epochAt = srv.sim.Now()
	}
	link.SetRecv(side, func(msg []byte) {
		srv.queue = append(srv.queue, inbound{sess: sess, msg: msg})
		srv.kick()
	})
}

// Stats returns a copy of the server counters.
func (srv *Server) Stats() ServerStats {
	st := srv.stats
	st.Epoch = srv.epoch
	st.EpochBumpedAt = srv.epochAt
	return st
}

// Sessions returns a snapshot of every attached session, in id order
// for small maps (callers sort if they care).
func (srv *Server) Sessions() []SessionInfo {
	out := make([]SessionInfo, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		out = append(out, SessionInfo{
			ID: s.id, Epoch: s.epoch, Executed: s.executed,
			Mutations: s.mutations, LastMutationAt: s.lastMutationAt,
		})
	}
	return out
}

// kick wakes the dispatcher if it is parked; the idle flag flips here
// so two arrivals at the same instant cannot double-unpark it.
func (srv *Server) kick() {
	if srv.idle {
		srv.idle = false
		srv.disp.Unpark()
	}
}

// run is the dispatcher: drain the frame queue in arrival order, park
// when empty.
func (srv *Server) run(p *sim.Proc) {
	for {
		if len(srv.queue) == 0 {
			srv.idle = true
			p.Park()
			continue
		}
		in := srv.queue[0]
		srv.queue = srv.queue[1:]
		srv.handle(p, in.sess, in.msg)
	}
}

// handle processes one frame end to end: decode, dedup, fence, execute,
// cache, reply.
func (srv *Server) handle(p *sim.Proc, sess *serverSession, msg []byte) {
	srv.stats.Frames++
	req, err := decodeRequest(msg)
	if err != nil {
		srv.stats.BadFrames++
		return
	}

	// Datagrams execute without sequencing or reply; a lost one is lost.
	if req.Kind == frameDatagram {
		if req.Verb == verbMemoize {
			sess.ch.Memoize(req.Table, req.Handle)
		}
		return
	}

	// The piggybacked ack advances the resolved floor: everything below
	// it is settled client-side, so its cached responses can go.
	if req.Ack > sess.floor {
		sess.floor = req.Ack
		for seq := range sess.cache {
			if seq < sess.floor {
				delete(sess.cache, seq)
			}
		}
	}

	// Retransmit of an already-answered request: replay the cached
	// response, do not re-execute. This is the at-most-once mechanism.
	if cached, ok := sess.cache[req.Seq]; ok {
		srv.stats.DedupHits++
		sess.link.Send(sess.side, cached)
		return
	}

	// A ghost copy below the floor: the client has already abandoned
	// this op (and quarantined past the link's max delay before doing
	// anything else), so executing it now would be a lost update wearing
	// a valid seq. Refuse; mutations are the dangerous case.
	if req.Seq < sess.floor {
		if mutatingVerb(req.Verb) {
			srv.stats.StaleWrites++
		}
		srv.reply(sess, &response{Session: sess.id, Seq: req.Seq, Status: statusStale})
		return
	}

	// Epoch fencing: a mutation from a session that lost an election may
	// not touch the switch, even if its request was composed before the
	// takeover and merely delayed in flight.
	if req.Epoch > srv.epoch {
		srv.epoch = req.Epoch
		srv.epochAt = srv.sim.Now()
	}
	if mutatingVerb(req.Verb) && req.Epoch < srv.epoch {
		srv.stats.FencedWrites++
		resp := &response{Session: sess.id, Seq: req.Seq, Status: statusFenced}
		sess.cache[req.Seq] = encodeResponse(resp)
		srv.reply(sess, resp)
		return
	}

	resp := srv.execute(p, sess, req)
	sess.cache[req.Seq] = encodeResponse(resp)
	srv.reply(sess, resp)
}

// execute runs the request on the session's inner channel (paying its
// channel latency on the dispatcher process) and builds the response.
func (srv *Server) execute(p *sim.Proc, sess *serverSession, req *request) *response {
	resp := &response{Session: sess.id, Seq: req.Seq, Status: statusOK}
	var err error
	switch req.Verb {
	case verbAddEntry:
		resp.Handle, err = sess.ch.AddEntry(p, req.Table, req.Entry)
	case verbModifyEntry:
		err = sess.ch.ModifyEntry(p, req.Table, req.Handle, req.Action, req.Data)
	case verbDeleteEntry:
		err = sess.ch.DeleteEntry(p, req.Table, req.Handle)
	case verbSetDefaultAction:
		err = sess.ch.SetDefaultAction(p, req.Table, req.Call)
	case verbSetHashSeed:
		err = sess.ch.SetHashSeed(p, req.Name, req.Seed)
	case verbRegWrite:
		err = sess.ch.RegWrite(p, req.Reg, req.Idx, req.Val)
	case verbRegRead:
		resp.Val, err = sess.ch.RegRead(p, req.Reg, req.Idx)
	case verbBatchRead:
		resp.Vals, err = sess.ch.BatchRead(p, req.Reqs)
	case verbReadEntries:
		resp.Entries, err = sess.ch.ReadEntries(p, req.Table)
	case verbReadDefaultAction:
		resp.Call, err = sess.ch.ReadDefaultAction(p, req.Table)
	default:
		resp.Status = statusError
		resp.ErrMsg = "unknown verb"
		return resp
	}
	srv.stats.Executed++
	sess.executed++
	if err == nil && mutatingVerb(req.Verb) {
		srv.stats.MutationsExecuted++
		sess.mutations++
		sess.lastMutationAt = srv.sim.Now()
	}
	switch {
	case err == nil:
	case errors.Is(err, ctlplane.ErrNotPrimary):
		// The inner ctlplane session was demoted: the second fence.
		resp.Status = statusFenced
		resp.ErrMsg = err.Error()
	case driver.IsTransient(err):
		resp.Status = statusTransient
		resp.ErrMsg = err.Error()
	default:
		resp.Status = statusError
		resp.ErrMsg = err.Error()
	}
	return resp
}

func (srv *Server) reply(sess *serverSession, resp *response) {
	sess.link.Send(sess.side, encodeResponse(resp))
}
