package ctlchan

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// twoTableSrc is the serializability workload (same as the core chaos
// suite): a reaction bumps entries in two tables every iteration, and no
// packet may ever observe t1's new value alongside t2's old one.
const twoTableSrc = `
header_type h_t { fields { k : 8; o1 : 32; o2 : 32; } }
header h_t hdr;
malleable value dummy { width : 8; init : 0; }
action set1(v) { modify_field(hdr.o1, v); }
action set2(v) {
  modify_field(hdr.o2, v);
  modify_field(standard_metadata.egress_spec, 1);
}
malleable table t1 { reads { hdr.k : exact; } actions { set1; } size : 4; }
malleable table t2 { reads { hdr.k : exact; } actions { set2; } size : 4; }
reaction bump() { }
control ingress { apply(t1); apply(t2); }
`

// stackRig is the full message-channel stack under the two-table
// workload:
//
//	agent -> ctlchan.Client -> netsim.Link -> ctlchan.Server -> driver -> switch
//
// The link starts clean so the prologue installs over a working wire;
// the fault profile swaps in at 50µs (the message-channel analogue of
// the chaos suite's injector-arming delay).
type stackRig struct {
	sim   *sim.Simulator
	sw    *rmt.Switch
	drv   *driver.Driver
	plan  *compiler.Plan
	link  *netsim.Link
	srv   *Server
	cli   *Client
	store *journal.MemStore
	agent *core.Agent

	gen        uint64
	packets    int
	violations int
}

func buildStack(t testing.TB, linkDelay time.Duration, cliOpts ClientOptions, mod func(*core.RecoveryOptions)) *stackRig {
	t.Helper()
	plan, err := compiler.CompileSource(twoTableSrc, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	link := netsim.NewLink(s, linkDelay, faults.LinkNone(), 11)
	srv := NewServer(s)
	if cliOpts.Session == 0 {
		cliOpts.Session = 1
	}
	if cliOpts.Epoch == 0 {
		cliOpts.Epoch = 1
	}
	cliOpts.Meta = drv
	srv.Attach(link, netsim.LinkSideB, cliOpts.Session, cliOpts.Epoch, drv)
	cli := NewClient(s, link, netsim.LinkSideA, cliOpts)

	rec := core.RecoveryForChannel(cli.RTT())
	if mod != nil {
		mod(&rec)
	}
	r := &stackRig{
		sim: s, sw: sw, drv: drv, plan: plan, link: link, srv: srv, cli: cli,
		store: journal.NewMemStore(),
	}
	var h1, h2 core.UserHandle
	r.agent = core.NewAgent(s, cli, plan, core.Options{
		Recovery: rec,
		Journal:  &core.JournalConfig{Store: r.store},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	if err := r.agent.RegisterNativeReaction("bump", func(ctx *core.Ctx) error {
		r.gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{r.gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{r.gen})
	}); err != nil {
		t.Fatal(err)
	}
	sw.Tx = func(_ int, pkt *packet.Packet) {
		r.packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			r.violations++
		}
	}
	return r
}

// run starts the agent and traffic, swaps the profile in at 50µs, runs
// for d, then stops and drains.
func (r *stackRig) run(prof faults.LinkProfile, d time.Duration) {
	r.sim.Schedule(50*time.Microsecond, func() { r.link.SetProfile(prof) })
	r.agent.Start()
	tick := r.sim.Every(150*time.Nanosecond, func() {
		pkt := r.plan.Prog.Schema.New()
		pkt.Size = 64
		pkt.SetName("hdr.k", 7)
		r.sw.Inject(0, pkt)
	})
	r.sim.RunFor(d)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(2 * time.Millisecond)
}

// TestChannelChaosSerializability is the tentpole property: under every
// channel fault profile the agent keeps committing, no packet observes
// mixed cross-table state, and every mutation applies at most once.
func TestChannelChaosSerializability(t *testing.T) {
	for _, prof := range faults.LinkProfiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			r := buildStack(t, 500*time.Nanosecond, ClientOptions{}, nil)
			r.run(prof, 5*time.Millisecond)

			if err := r.agent.Err(); err != nil {
				t.Fatalf("agent died under %s channel faults: %v", prof.Name, err)
			}
			if r.violations != 0 {
				t.Fatalf("%d/%d packets observed inconsistent cross-table state under %s channel faults",
					r.violations, r.packets, prof.Name)
			}
			st := r.agent.Stats()
			if r.packets < 1000 || r.gen < 5 || st.Commits == 0 {
				t.Fatalf("no progress under %s channel faults: packets=%d generations=%d commits=%d",
					prof.Name, r.packets, r.gen, st.Commits)
			}
			cs, ss := r.cli.ChanStats(), r.srv.Stats()
			// At-most-once, asserted globally: the server never executed a
			// mutation twice, no matter what the wire did. Every server-side
			// execution is distinct-by-seq; dedup and floor rejection absorb
			// the rest. The client-side ledger: ops that returned success are
			// a lower bound on executions; timeouts are the only ambiguity.
			if ss.MutationsExecuted > cs.Ops {
				t.Fatalf("more mutations executed (%d) than operations issued (%d)", ss.MutationsExecuted, cs.Ops)
			}
			switch prof.Name {
			case "none":
				if cs.Retransmits != 0 || cs.Timeouts != 0 || ss.DedupHits != 0 {
					t.Fatalf("clean wire produced recovery traffic: client %+v server %+v", cs, ss)
				}
			case "lossy", "dup", "chaos":
				if ss.DedupHits == 0 {
					t.Fatalf("%s profile produced no dedup hits — idempotency path unexercised (client %+v server %+v)",
						prof.Name, cs, ss)
				}
				fallthrough
			case "reorder", "jitter":
				if prof.Loss > 0 && cs.Retransmits == 0 {
					t.Fatalf("loss but no retransmits: %+v", cs)
				}
			case "partition":
				if cs.Timeouts == 0 {
					t.Fatal("partition windows never degraded an operation; deadline is mis-sized")
				}
				if st.Resyncs == 0 {
					t.Fatalf("degraded channel healed but the agent never resynced: %+v", st)
				}
			}
			if prof.PartitionEvery > 0 && st.Resyncs == 0 {
				t.Fatalf("%s: post-partition heal without resync: %+v", prof.Name, st)
			}
		})
	}
}

func ctlplaneNew(s *sim.Simulator, drv *driver.Driver) *ctlplane.Service {
	return ctlplane.New(s, drv, ctlplane.Options{})
}

func mustOpen(t *testing.T, svc *ctlplane.Service, name string, electionID uint64) *ctlplane.Session {
	t.Helper()
	sess, err := svc.Open(ctlplane.SessionOptions{Name: name, Role: ctlplane.RolePrimary, ElectionID: electionID})
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return sess
}

// TestSplitBrainFencedOnTakeover is the split-brain property: a primary
// partitioned across a standby takeover must have every post-takeover
// mutation fenced — by epoch at the channel server, and by election at
// the ctlplane dispatcher — so its stale writes never reach the switch.
func TestSplitBrainFencedOnTakeover(t *testing.T) {
	// Assembled by hand rather than via buildStack: the two controllers
	// need separate links into one server over one ctlplane service.
	plan, err := compiler.CompileSource(twoTableSrc, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	svc := ctlplaneNew(s, drv)
	store := journal.NewMemStore()
	srv := NewServer(s)

	link1 := netsim.NewLink(s, 500*time.Nanosecond, faults.LinkNone(), 21)
	sess1 := mustOpen(t, svc, "primary", 1)
	srv.Attach(link1, netsim.LinkSideB, 1, 1, sess1)
	cli1 := NewClient(s, link1, netsim.LinkSideA, ClientOptions{Session: 1, Epoch: 1, Meta: drv})

	packets, violations := 0, 0
	sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			violations++
		}
	}

	var h1, h2 core.UserHandle
	gen := uint64(0)
	reaction := func(ctx *core.Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}
	agent1 := core.NewAgent(s, cli1, plan, core.Options{
		Recovery: core.RecoveryForChannel(cli1.RTT()),
		Journal:  &core.JournalConfig{Store: store},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, core.UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	if err := agent1.RegisterNativeReaction("bump", reaction); err != nil {
		t.Fatal(err)
	}
	agent1.Start()
	tick := s.Every(150*time.Nanosecond, func() {
		pkt := plan.Prog.Schema.New()
		pkt.Size = 64
		pkt.SetName("hdr.k", 7)
		sw.Inject(0, pkt)
	})

	// t=300µs: the primary's link partitions. Its in-flight ops
	// retransmit into the void (well inside their 100µs deadline).
	s.Schedule(300*time.Microsecond, func() { link1.SetPartitioned(true) })

	// t=305µs: a successor performs a takeover on its own healthy link:
	// higher ctlplane election (demotes sess1) and higher channel epoch.
	var agent2 *core.Agent
	var recErr error
	s.Schedule(305*time.Microsecond, func() {
		s.Spawn("takeover", func(p *sim.Proc) {
			sess2 := mustOpen(t, svc, "successor", 2)
			link2 := netsim.NewLink(s, 500*time.Nanosecond, faults.LinkNone(), 22)
			srv.Attach(link2, netsim.LinkSideB, 2, 2, sess2)
			cli2 := NewClient(s, link2, netsim.LinkSideA, ClientOptions{Session: 2, Epoch: 2, Meta: drv})
			agent2, _, recErr = core.Recover(p, s, cli2, store, plan, core.Options{
				Recovery: core.RecoveryForChannel(cli2.RTT()),
			})
			if recErr != nil {
				return
			}
			if recErr = agent2.RegisterNativeReaction("bump", reaction); recErr != nil {
				return
			}
			agent2.Start()
		})
	})

	// t=320µs: the old primary's link heals — shorter than its op
	// deadline, so its suspended requests retransmit straight into the
	// fence instead of degrading first.
	s.Schedule(320*time.Microsecond, func() { link1.SetPartitioned(false) })

	s.RunFor(2 * time.Millisecond)
	tick.Stop()
	if agent2 != nil {
		agent2.Stop()
	}
	s.RunFor(2 * time.Millisecond)

	if recErr != nil {
		t.Fatalf("takeover recovery failed: %v", recErr)
	}
	if agent2 == nil {
		t.Fatal("successor never recovered")
	}
	if err := agent2.Err(); err != nil {
		t.Fatalf("successor died: %v", err)
	}
	if agent2.Stats().Commits == 0 {
		t.Fatal("successor made no commits after takeover")
	}

	// The fenced primary must be dead, with the fence as the cause.
	err1 := agent1.Err()
	if err1 == nil {
		t.Fatal("partitioned-then-healed primary is still running — fencing failed")
	}
	if !errors.Is(err1, ErrFenced) {
		t.Fatalf("old primary died of %v, want ErrFenced", err1)
	}
	ss := srv.Stats()
	if ss.FencedWrites == 0 {
		t.Fatal("no write was ever fenced; the scenario is vacuous")
	}
	// Split-brain freedom, asserted from the server's ledger: the old
	// session's last executed mutation predates the epoch bump.
	for _, si := range srv.Sessions() {
		if si.ID == 1 && si.LastMutationAt > ss.EpochBumpedAt {
			t.Fatalf("session 1 executed a mutation at %v, after the epoch rose at %v — split brain",
				si.LastMutationAt, ss.EpochBumpedAt)
		}
	}
	if violations != 0 {
		t.Fatalf("%d/%d packets observed mixed cross-table state across the takeover", violations, packets)
	}
	if packets < 1000 {
		t.Fatalf("only %d packets audited", packets)
	}
}

// fig1Src is the paper's Figure 1 workload (same as the core suite): a
// register the reaction polls, with the result written back through a
// malleable value. Unlike twoTableSrc's bump(), my_reaction actually
// polls the switch — which is what the staleness budget governs.
const fig1Src = `
header_type h_t { fields { tag : 16; port : 8; } }
header h_t hdr;
register qdepths { width : 32; instance_count : 16; }
malleable value value_var { width : 16; init : 0; }
action observe() {
  register_write(qdepths, hdr.port, standard_metadata.packet_length);
  modify_field(hdr.tag, ${value_var});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { observe; } default_action : observe; size : 1; }
reaction my_reaction(reg qdepths) {
  uint16_t current_max = 0;
  uint16_t max_port = 0;
  for (int i = 0; i < 16; ++i) {
    if (qdepths[i] > current_max) {
      current_max = qdepths[i]; max_port = i;
    }
  }
  ${value_var} = max_port;
}
control ingress { apply(t); }
`

// readFaultChan wraps the server's inner channel and fails measurement
// reads with a transient error while tripped, leaving mutations alone.
// This is the degraded-polls regime: the wire still carries flips and
// commits, but no fresh measurement snapshot can be fetched. (A full
// partition cannot produce it — there the measurement-version flip fails
// before any poll is attempted and the iteration abandons early.)
type readFaultChan struct {
	driver.Channel
	fail bool
}

func (c *readFaultChan) BatchRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	if c.fail {
		return nil, fmt.Errorf("measurement unit offline: %w", driver.ErrTransient)
	}
	return c.Channel.BatchRead(p, reqs)
}

func (c *readFaultChan) UnbatchedRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	if c.fail {
		return nil, fmt.Errorf("measurement unit offline: %w", driver.ErrTransient)
	}
	return c.Channel.UnbatchedRead(p, reqs)
}

// TestStalenessBudgetAborts: while polls fail, degraded reactions run on
// the cached snapshot only as long as it is younger than the staleness
// budget — past it the iteration aborts instead of reacting to ancient
// measurements — and commits resume once polling heals.
func TestStalenessBudgetAborts(t *testing.T) {
	plan, err := compiler.CompileSource(fig1Src, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	inner := &readFaultChan{Channel: drv}
	link := netsim.NewLink(s, 500*time.Nanosecond, faults.LinkNone(), 31)
	srv := NewServer(s)
	srv.Attach(link, netsim.LinkSideB, 1, 1, inner)
	cli := NewClient(s, link, netsim.LinkSideA, ClientOptions{Session: 1, Epoch: 1, Meta: drv})

	rec := core.RecoveryForChannel(cli.RTT())
	rec.StalenessBudget = 150 * time.Microsecond
	agent := core.NewAgent(s, cli, plan, core.Options{
		Recovery: rec,
		Journal:  &core.JournalConfig{Store: journal.NewMemStore()},
	})

	// Reads fail from 200µs to 800µs: 600µs without a fresh snapshot
	// against a 150µs budget.
	s.Schedule(200*time.Microsecond, func() { inner.fail = true })
	var commitsAtHeal uint64
	s.Schedule(800*time.Microsecond, func() {
		inner.fail = false
		commitsAtHeal = agent.Stats().Commits
	})

	agent.Start()
	tick := s.Every(2*time.Microsecond, func() {
		pkt := plan.Prog.Schema.New()
		pkt.Size = 400
		pkt.SetName("hdr.port", 5)
		sw.Inject(0, pkt)
	})
	s.RunFor(3 * time.Millisecond)
	tick.Stop()
	agent.Stop()
	s.RunFor(2 * time.Millisecond)

	if err := agent.Err(); err != nil {
		t.Fatalf("agent died: %v", err)
	}
	st := agent.Stats()
	if st.Degraded == 0 {
		t.Fatalf("no iteration degraded onto the cached snapshot inside the budget: %+v", st)
	}
	if st.StalenessAborts == 0 {
		t.Fatalf("600µs of failed polls never tripped the 150µs staleness budget: %+v", st)
	}
	if st.Commits <= commitsAtHeal {
		t.Fatalf("no commits after the heal: %d at heal, %d at end", commitsAtHeal, st.Commits)
	}
}

// TestWatchdogScalesWithRTT is the satellite-2 regression: a wall-clock
// iteration deadline tuned for the in-process channel wedges an agent on
// a high-latency link, while the RTT-scaled watchdog sizes itself.
func TestWatchdogScalesWithRTT(t *testing.T) {
	const slowDelay = 25 * time.Microsecond // 50µs RTT; iterations take several hundred µs

	// Fixed 100µs deadline (generous for the ~10µs in-process iteration)
	// on the slow link: the deadline is checked between driver ops, and
	// the two reaction prepares alone take ~2 RTTs (~104µs), so every
	// iteration trips before its master flip can commit.
	fixed := buildStack(t, slowDelay, ClientOptions{}, func(rec *core.RecoveryOptions) {
		rec.ChannelRTT = 0
		rec.WatchdogRTTs = 0
		rec.IterationDeadline = 100 * time.Microsecond
	})
	fixed.run(faults.LinkNone(), 20*time.Millisecond)
	if err := fixed.agent.Err(); err != nil {
		t.Fatalf("fixed-deadline agent died: %v", err)
	}
	fst := fixed.agent.Stats()
	if fst.WatchdogTrips == 0 {
		t.Fatalf("fixed 100µs deadline never tripped on a %v link: %+v", slowDelay, fst)
	}
	if fst.Commits > 0 {
		t.Fatalf("fixed deadline below iteration time still committed %d times — watchdog not the binding constraint", fst.Commits)
	}

	// RTT-scaled: 400 round trips = 20ms of budget, plenty.
	scaled := buildStack(t, slowDelay, ClientOptions{}, nil)
	scaled.run(faults.LinkNone(), 20*time.Millisecond)
	if err := scaled.agent.Err(); err != nil {
		t.Fatalf("RTT-scaled agent died: %v", err)
	}
	sst := scaled.agent.Stats()
	if sst.WatchdogTrips != 0 {
		t.Fatalf("RTT-scaled watchdog tripped %d times on a clean link", sst.WatchdogTrips)
	}
	if sst.Commits == 0 {
		t.Fatal("RTT-scaled agent never committed")
	}
}
