package ctlchan

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// fakeChan is an in-memory driver.Channel that records mutations —
// enough switch to assert at-most-once without an RMT pipeline under it.
type fakeChan struct {
	regs     map[string]map[uint64]uint64
	writes   uint64 // mutating calls executed
	memoized uint64
	entries  []rmt.Entry
	call     *p4.ActionCall
	// failNext, when set, is returned (and cleared) by the next op.
	failNext error
}

func newFakeChan() *fakeChan {
	return &fakeChan{regs: map[string]map[uint64]uint64{}}
}

func (f *fakeChan) take() error { err := f.failNext; f.failNext = nil; return err }

func (f *fakeChan) AddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error) {
	if err := f.take(); err != nil {
		return 0, err
	}
	f.writes++
	e.Handle = rmt.EntryHandle(len(f.entries) + 1)
	f.entries = append(f.entries, e)
	return e.Handle, nil
}
func (f *fakeChan) ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	if err := f.take(); err != nil {
		return err
	}
	f.writes++
	return nil
}
func (f *fakeChan) DeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error {
	if err := f.take(); err != nil {
		return err
	}
	f.writes++
	return nil
}
func (f *fakeChan) SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	if err := f.take(); err != nil {
		return err
	}
	f.writes++
	f.call = call
	return nil
}
func (f *fakeChan) SetHashSeed(p *sim.Proc, name string, seed uint64) error {
	if err := f.take(); err != nil {
		return err
	}
	f.writes++
	return nil
}
func (f *fakeChan) RegWrite(p *sim.Proc, reg string, idx uint64, v uint64) error {
	if err := f.take(); err != nil {
		return err
	}
	f.writes++
	if f.regs[reg] == nil {
		f.regs[reg] = map[uint64]uint64{}
	}
	f.regs[reg][idx] = v
	return nil
}
func (f *fakeChan) RegRead(p *sim.Proc, reg string, idx uint64) (uint64, error) {
	if err := f.take(); err != nil {
		return 0, err
	}
	return f.regs[reg][idx], nil
}
func (f *fakeChan) BatchRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	if err := f.take(); err != nil {
		return nil, err
	}
	out := make([][]uint64, 0, len(reqs))
	for _, rq := range reqs {
		vs := make([]uint64, 0, rq.Hi-rq.Lo+1)
		for i := rq.Lo; i <= rq.Hi; i++ {
			vs = append(vs, f.regs[rq.Reg][i])
		}
		out = append(out, vs)
	}
	return out, nil
}
func (f *fakeChan) UnbatchedRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	return f.BatchRead(p, reqs)
}
func (f *fakeChan) ReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error) {
	if err := f.take(); err != nil {
		return nil, err
	}
	return f.entries, nil
}
func (f *fakeChan) ReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error) {
	if err := f.take(); err != nil {
		return nil, err
	}
	return f.call, nil
}
func (f *fakeChan) Memoize(table string, handle rmt.EntryHandle) { f.memoized++ }
func (f *fakeChan) Switch() *rmt.Switch                          { return nil }
func (f *fakeChan) Stats() driver.Stats                          { return driver.Stats{} }

// ---- Codec ----

func sampleRequests() []*request {
	return []*request{
		{Verb: verbAddEntry, Table: "t1", Entry: rmt.Entry{
			Handle: 3, Priority: -2, Action: "set1",
			Keys: []rmt.KeySpec{{Value: 7, Mask: 0xFF}, {Lo: 1, Hi: 9}},
			Data: []uint64{1, 2, 3},
		}},
		{Verb: verbModifyEntry, Table: "t2", Handle: 9, Action: "set2", Data: []uint64{42}},
		{Verb: verbModifyEntry, Table: "t2", Handle: 9, Action: "noop"}, // zero-length data
		{Verb: verbDeleteEntry, Table: "t1", Handle: 5},
		{Verb: verbSetDefaultAction, Table: "t1", Call: &p4.ActionCall{Action: "drop", Data: []uint64{0xDEAD}}},
		{Verb: verbSetDefaultAction, Table: "t1"}, // nil call
		{Verb: verbSetHashSeed, Name: "ecmp", Seed: 0xFEEDFACE},
		{Verb: verbRegWrite, Reg: "cnt", Idx: 12, Val: ^uint64(0)},
		{Verb: verbRegRead, Reg: "cnt", Idx: 12},
		{Verb: verbBatchRead, Reqs: []driver.ReadReq{{Reg: "a", Lo: 0, Hi: 3}, {Reg: "b", Lo: 5, Hi: 5}}},
		{Verb: verbReadEntries, Table: "t2"},
		{Verb: verbReadDefaultAction, Table: "t2"},
		{Kind: frameDatagram, Verb: verbMemoize, Table: "t1", Handle: 77},
	}
}

func TestCodecRequestRoundTrip(t *testing.T) {
	for i, r := range sampleRequests() {
		if r.Kind == 0 {
			r.Kind = frameRequest
		}
		r.Session, r.Epoch, r.Seq, r.Ack = 0xA1B2C3D4, 3, uint64(i)+1, uint64(i)
		got, err := decodeRequest(encodeRequest(r))
		if err != nil {
			t.Fatalf("verb %s: decode: %v", verbNames[r.Verb], err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("verb %s roundtrip:\n got %+v\nwant %+v", verbNames[r.Verb], got, r)
		}
	}
}

func TestCodecResponseRoundTrip(t *testing.T) {
	rs := []*response{
		{Session: 1, Seq: 2, Status: statusOK, Handle: 7, Val: 99,
			Vals:    [][]uint64{{1, 2}, nil, {3}},
			Entries: []rmt.Entry{{Handle: 1, Action: "a", Keys: []rmt.KeySpec{{Value: 4}}, Data: []uint64{8}}},
			Call:    &p4.ActionCall{Action: "fwd", Data: []uint64{1}}},
		{Session: 9, Seq: 1, Status: statusError, ErrMsg: "unknown table \"zap\""},
		{Session: 9, Seq: 3, Status: statusStale},
	}
	for _, r := range rs {
		got, err := decodeResponse(encodeResponse(r))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, r)
		}
	}
}

// TestCodecRejectsCorruptFrames truncates every valid frame at every
// length and appends trailing garbage: each variant must error, never
// misparse or panic.
func TestCodecRejectsCorruptFrames(t *testing.T) {
	for _, r := range sampleRequests() {
		if r.Kind == 0 {
			r.Kind = frameRequest
		}
		b := encodeRequest(r)
		for cut := 0; cut < len(b); cut++ {
			if _, err := decodeRequest(b[:cut]); err == nil {
				t.Fatalf("verb %s: truncation at %d/%d decoded cleanly", verbNames[r.Verb], cut, len(b))
			}
		}
		if _, err := decodeRequest(append(append([]byte(nil), b...), 0)); err == nil {
			t.Fatalf("verb %s: trailing byte accepted", verbNames[r.Verb])
		}
	}
	resp := encodeResponse(&response{Session: 1, Seq: 2, Status: statusOK})
	for cut := 0; cut < len(resp); cut++ {
		if _, err := decodeResponse(resp[:cut]); err == nil {
			t.Fatalf("response truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := decodeRequest([]byte{0x55}); err == nil {
		t.Fatal("bad frame kind accepted")
	}
	if _, err := decodeRequest(encodeResponse(&response{})); err == nil {
		t.Fatal("response frame accepted as request")
	}
	// A length prefix claiming a gigabyte must fail without allocating.
	e := &enc{}
	e.u8(frameRequest)
	e.u32(1)
	e.u64(1)
	e.u64(1)
	e.u64(0)
	e.u8(verbReadEntries)
	e.u32(1 << 30) // table-name length
	if _, err := decodeRequest(e.b); err == nil {
		t.Fatal("gigabyte length prefix accepted")
	}
}

// ---- Client/server harness ----

type chanRig struct {
	sim  *sim.Simulator
	link *netsim.Link
	fake *fakeChan
	srv  *Server
	cli  *Client
}

func buildChanRig(t *testing.T, prof faults.LinkProfile, opts ClientOptions) *chanRig {
	t.Helper()
	s := sim.New(1)
	link := netsim.NewLink(s, 500*time.Nanosecond, prof, 7)
	fake := newFakeChan()
	srv := NewServer(s)
	if opts.Session == 0 {
		opts.Session = 1
	}
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	srv.Attach(link, netsim.LinkSideB, opts.Session, opts.Epoch, fake)
	cli := NewClient(s, link, netsim.LinkSideA, opts)
	return &chanRig{sim: s, link: link, fake: fake, srv: srv, cli: cli}
}

// do runs fn on a spawned proc and returns its error after the sim runs
// to completion of the proc (bounded by d).
func (r *chanRig) do(t *testing.T, d time.Duration, fn func(p *sim.Proc) error) error {
	t.Helper()
	var err error
	done := false
	r.sim.Spawn("test-op", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	r.sim.RunFor(d)
	if !done {
		t.Fatal("operation did not complete in time")
	}
	return err
}

func TestClientServerCleanOps(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{})
	err := r.do(t, time.Millisecond, func(p *sim.Proc) error {
		h, err := r.cli.AddEntry(p, "t1", rmt.Entry{Action: "set1", Keys: []rmt.KeySpec{{Value: 7}}, Data: []uint64{1}})
		if err != nil {
			return err
		}
		if h != 1 {
			return fmt.Errorf("handle = %d, want 1", h)
		}
		if err := r.cli.ModifyEntry(p, "t1", h, "set1", []uint64{2}); err != nil {
			return err
		}
		if err := r.cli.SetDefaultAction(p, "t1", &p4.ActionCall{Action: "drop"}); err != nil {
			return err
		}
		if err := r.cli.SetHashSeed(p, "ecmp", 99); err != nil {
			return err
		}
		if err := r.cli.RegWrite(p, "cnt", 3, 41); err != nil {
			return err
		}
		v, err := r.cli.RegRead(p, "cnt", 3)
		if err != nil {
			return err
		}
		if v != 41 {
			return fmt.Errorf("RegRead = %d, want 41", v)
		}
		vals, err := r.cli.BatchRead(p, []driver.ReadReq{{Reg: "cnt", Lo: 2, Hi: 4}})
		if err != nil {
			return err
		}
		if len(vals) != 1 || len(vals[0]) != 3 || vals[0][1] != 41 {
			return fmt.Errorf("BatchRead = %v", vals)
		}
		uv, err := r.cli.UnbatchedRead(p, []driver.ReadReq{{Reg: "cnt", Lo: 3, Hi: 3}, {Reg: "cnt", Lo: 0, Hi: 0}})
		if err != nil {
			return err
		}
		if len(uv) != 2 || uv[0][0] != 41 {
			return fmt.Errorf("UnbatchedRead = %v", uv)
		}
		ents, err := r.cli.ReadEntries(p, "t1")
		if err != nil {
			return err
		}
		if len(ents) != 1 || ents[0].Keys[0].Value != 7 {
			return fmt.Errorf("ReadEntries = %+v", ents)
		}
		call, err := r.cli.ReadDefaultAction(p, "t1")
		if err != nil {
			return err
		}
		if call == nil || call.Action != "drop" {
			return fmt.Errorf("ReadDefaultAction = %+v", call)
		}
		if err := r.cli.DeleteEntry(p, "t1", h); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r.cli.Memoize("t1", 1)
	r.sim.RunFor(10 * time.Microsecond)
	if r.fake.memoized != 1 {
		t.Fatalf("memoize datagram not executed: %d", r.fake.memoized)
	}
	cs, ss := r.cli.ChanStats(), r.srv.Stats()
	if cs.Retransmits != 0 || cs.Timeouts != 0 || ss.DedupHits != 0 {
		t.Fatalf("clean link produced recovery traffic: client %+v server %+v", cs, ss)
	}
	if ss.MutationsExecuted != 6 {
		t.Fatalf("MutationsExecuted = %d, want 6", ss.MutationsExecuted)
	}
	if r.cli.Degraded() || r.cli.Fenced() {
		t.Fatal("clean link left client degraded/fenced")
	}
}

// TestAtMostOnceUnderLossAndDup is the idempotency property: across a
// wire that loses and duplicates aggressively, every mutation the
// client confirms executed exactly once switch-side.
func TestAtMostOnceUnderLossAndDup(t *testing.T) {
	prof := faults.LinkProfile{Name: "hostile", Loss: 0.25, Dup: 0.25, DupDelay: 2 * time.Microsecond}
	r := buildChanRig(t, prof, ClientOptions{OpDeadline: 10 * time.Millisecond})
	const n = 200
	err := r.do(t, time.Second, func(p *sim.Proc) error {
		for i := 0; i < n; i++ {
			if err := r.cli.RegWrite(p, "cnt", uint64(i%8), uint64(i)); err != nil {
				return fmt.Errorf("write %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, cs := r.srv.Stats(), r.cli.ChanStats()
	if r.fake.writes != n || ss.MutationsExecuted != n {
		t.Fatalf("executed %d/%d mutations for %d confirmed ops (dedup leak)", r.fake.writes, ss.MutationsExecuted, n)
	}
	if cs.Retransmits == 0 || ss.DedupHits == 0 {
		t.Fatalf("fault paths never exercised: client %+v server %+v", cs, ss)
	}
	// The floor GC must be keeping the response cache bounded: with
	// sequential ops, at most the in-flight op plus ghosts remain.
	if len(r.srv.sessions[1].cache) > 4 {
		t.Fatalf("response cache not garbage-collected: %d entries", len(r.srv.sessions[1].cache))
	}
}

// TestWindowQueuesExcessCallers: concurrent callers beyond the window
// queue FIFO and all complete.
func TestWindowQueuesExcessCallers(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{Window: 2})
	const n = 6
	doneCount := 0
	for i := 0; i < n; i++ {
		idx := uint64(i)
		r.sim.Spawn("caller", func(p *sim.Proc) {
			if _, err := r.cli.RegRead(p, "cnt", idx); err != nil {
				t.Errorf("caller %d: %v", idx, err)
			}
			doneCount++
		})
	}
	r.sim.RunFor(time.Millisecond)
	if doneCount != n {
		t.Fatalf("%d/%d callers completed", doneCount, n)
	}
	if ws := r.cli.ChanStats().WindowWaits; ws == 0 {
		t.Fatal("window never queued anyone")
	}
}

// TestReadDeadlineFailsFast: a read op on a dead link reports
// ErrChannelDegraded at its deadline, without the mutation quarantine.
func TestReadDeadlineFailsFast(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{OpDeadline: 100 * time.Microsecond})
	r.link.SetPartitioned(true)
	var failedAt sim.Time
	err := r.do(t, time.Millisecond, func(p *sim.Proc) error {
		_, err := r.cli.RegRead(p, "cnt", 0)
		failedAt = r.sim.Now()
		return err
	})
	if !errors.Is(err, driver.ErrChannelDegraded) {
		t.Fatalf("err = %v, want ErrChannelDegraded", err)
	}
	if failedAt < sim.Time(100*time.Microsecond) {
		t.Fatalf("failed at %v, before the deadline", failedAt)
	}
	if !r.cli.Degraded() {
		t.Fatal("client not marked degraded")
	}
	if r.cli.ChanStats().Timeouts != 1 {
		t.Fatalf("Timeouts = %d", r.cli.ChanStats().Timeouts)
	}
}

// TestMutationQuarantineOutlivesMaxDelay: an abandoned mutation must not
// be reported until every copy the client ever transmitted is off the
// wire — failure time >= last transmit + link MaxDelay.
func TestMutationQuarantineOutlivesMaxDelay(t *testing.T) {
	// High skew so the quarantine is visibly longer than the deadline
	// alone: MaxDelay = 500ns + (10+10+10)µs.
	prof := faults.LinkProfile{
		Name: "skewed", Jitter: 10 * time.Microsecond,
		Reorder: 0.5, ReorderDelay: 10 * time.Microsecond,
		Dup: 0.5, DupDelay: 10 * time.Microsecond,
	}
	r := buildChanRig(t, prof, ClientOptions{OpDeadline: 50 * time.Microsecond})
	r.link.SetPartitioned(true)
	var failedAt sim.Time
	err := r.do(t, 10*time.Millisecond, func(p *sim.Proc) error {
		werr := r.cli.RegWrite(p, "cnt", 0, 1)
		failedAt = r.sim.Now()
		return werr
	})
	if !errors.Is(err, driver.ErrChannelDegraded) {
		t.Fatalf("err = %v, want ErrChannelDegraded", err)
	}
	// The last retransmit happened at or before the deadline; the report
	// must wait out MaxDelay past it. We can't see lastTx directly, but
	// deadline + MaxDelay - RTO is a safe lower bound on the earliest
	// legal report (the final transmit is at most one RTO before the
	// deadline check... conservatively assert > deadline).
	if failedAt < sim.Time(50*time.Microsecond+r.link.MaxDelay()/2) {
		t.Fatalf("mutation failure reported at %v — quarantine skipped (MaxDelay %v)", failedAt, r.link.MaxDelay())
	}
}

// TestGhostMutationStaleRejected: a duplicate copy of a mutation that
// surfaces after the client resolved it (ack floor advanced past its
// seq) is refused, not re-executed.
func TestGhostMutationStaleRejected(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{})
	err := r.do(t, time.Millisecond, func(p *sim.Proc) error {
		if err := r.cli.RegWrite(p, "cnt", 0, 1); err != nil {
			return err
		}
		// Advance the floor past seq 1 with a second op.
		return r.cli.RegWrite(p, "cnt", 0, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	writesBefore := r.fake.writes
	// Replay a ghost of seq 1 — as the network would after a dup held it.
	ghost := encodeRequest(&request{
		Kind: frameRequest, Session: 1, Epoch: 1, Seq: 1, Ack: 3,
		Verb: verbRegWrite, Reg: "cnt", Idx: 0, Val: 1,
	})
	r.link.Send(netsim.LinkSideA, ghost)
	r.sim.RunFor(100 * time.Microsecond)
	if r.fake.writes != writesBefore {
		t.Fatal("ghost mutation re-executed — lost-update hazard")
	}
	if ss := r.srv.Stats(); ss.StaleWrites != 1 {
		t.Fatalf("StaleWrites = %d, want 1", ss.StaleWrites)
	}
	if v := r.fake.regs["cnt"][0]; v != 2 {
		t.Fatalf("register = %d, want 2 (ghost must not roll back)", v)
	}
}

// TestEpochFencing: once the server sees a higher epoch, lower-epoch
// mutations are refused and the old client latches fenced — while its
// reads still work, so a demoted agent can observe state on its way out.
func TestEpochFencing(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{Session: 1, Epoch: 1})
	err := r.do(t, time.Millisecond, func(p *sim.Proc) error {
		return r.cli.RegWrite(p, "cnt", 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}

	// A successor attaches at epoch 2 on its own link.
	link2 := netsim.NewLink(r.sim, 500*time.Nanosecond, faults.LinkNone(), 8)
	r.srv.Attach(link2, netsim.LinkSideB, 2, 2, r.fake)
	cli2 := NewClient(r.sim, link2, netsim.LinkSideA, ClientOptions{Session: 2, Epoch: 2})

	err = r.do(t, time.Millisecond, func(p *sim.Proc) error {
		return r.cli.RegWrite(p, "cnt", 0, 99) // stale primary writes
	})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch write: err = %v, want ErrFenced", err)
	}
	if !r.cli.Fenced() {
		t.Fatal("client did not latch fenced")
	}
	if v := r.fake.regs["cnt"][0]; v != 1 {
		t.Fatalf("fenced write applied: register = %d", v)
	}
	if fw := r.srv.Stats().FencedWrites; fw != 1 {
		t.Fatalf("FencedWrites = %d, want 1", fw)
	}

	// Subsequent mutations fail fast, without touching the wire.
	sentBefore := r.cli.ChanStats().Sent
	err = r.do(t, time.Millisecond, func(p *sim.Proc) error {
		return r.cli.RegWrite(p, "cnt", 0, 100)
	})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("post-fence write: err = %v, want ErrFenced", err)
	}
	if r.cli.ChanStats().Sent != sentBefore {
		t.Fatal("fenced mutation still hit the wire")
	}

	// Reads from the fenced session still work.
	err = r.do(t, time.Millisecond, func(p *sim.Proc) error {
		v, rerr := r.cli.RegRead(p, "cnt", 0)
		if rerr == nil && v != 1 {
			return fmt.Errorf("read %d, want 1", v)
		}
		return rerr
	})
	if err != nil {
		t.Fatalf("fenced session read: %v", err)
	}

	// The successor writes freely.
	err = r.do(t, time.Millisecond, func(p *sim.Proc) error {
		return cli2.RegWrite(p, "cnt", 0, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.fake.regs["cnt"][0]; v != 7 {
		t.Fatalf("successor write lost: register = %d", v)
	}
}

// TestTransientAndErrorStatusMapping: inner-channel failures travel the
// wire and come back as the same error classes the in-process stack
// produces.
func TestTransientAndErrorStatusMapping(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{})
	r.fake.failNext = fmt.Errorf("injected: %w", driver.ErrTransient)
	err := r.do(t, time.Millisecond, func(p *sim.Proc) error {
		return r.cli.RegWrite(p, "cnt", 0, 1)
	})
	if !driver.IsTransient(err) {
		t.Fatalf("transient not preserved across the wire: %v", err)
	}
	if r.fake.writes != 0 {
		t.Fatal("failed op counted as a write")
	}
	r.fake.failNext = errors.New("unknown register \"zap\"")
	err = r.do(t, time.Millisecond, func(p *sim.Proc) error {
		return r.cli.RegWrite(p, "zap", 0, 1)
	})
	if err == nil || driver.IsTransient(err) || errors.Is(err, driver.ErrChannelDegraded) {
		t.Fatalf("fatal remote error misclassified: %v", err)
	}
}

// TestDegradedClearsOnHeal: the degraded latch drops on the next
// response after a partition heals — including a late response to an op
// nobody is waiting on.
func TestDegradedClearsOnHeal(t *testing.T) {
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{OpDeadline: 50 * time.Microsecond})
	r.link.SetPartitioned(true)
	err := r.do(t, time.Millisecond, func(p *sim.Proc) error {
		_, rerr := r.cli.RegRead(p, "cnt", 0)
		return rerr
	})
	if !errors.Is(err, driver.ErrChannelDegraded) || !r.cli.Degraded() {
		t.Fatalf("setup: err=%v degraded=%v", err, r.cli.Degraded())
	}
	r.link.SetPartitioned(false)
	err = r.do(t, time.Millisecond, func(p *sim.Proc) error {
		_, rerr := r.cli.RegRead(p, "cnt", 0)
		return rerr
	})
	if err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if r.cli.Degraded() {
		t.Fatal("degraded latch did not clear on heal")
	}
}

// TestDegradedCauseClassification pins the cause a coordinator reads
// off a degraded channel: partition while the wire is cut, peer-dead
// when the server endpoint is marked crashed, loss when the wire looks
// up but frames vanish — and CauseNone whenever the channel is healthy.
func TestDegradedCauseClassification(t *testing.T) {
	expire := func(r *chanRig) error {
		return r.do(t, time.Millisecond, func(p *sim.Proc) error {
			_, rerr := r.cli.RegRead(p, "cnt", 0)
			return rerr
		})
	}

	// Partition.
	r := buildChanRig(t, faults.LinkNone(), ClientOptions{OpDeadline: 50 * time.Microsecond})
	if got := r.cli.DegradedCause(); got != CauseNone {
		t.Fatalf("healthy channel cause = %v, want none", got)
	}
	r.link.SetPartitioned(true)
	if err := expire(r); !errors.Is(err, driver.ErrChannelDegraded) {
		t.Fatalf("partition expiry err = %v", err)
	}
	if got := r.cli.DegradedCause(); got != CausePartition {
		t.Fatalf("cause = %v, want partition", got)
	}

	// Peer dead wins over partition: the endpoint crashed, the wire state
	// is secondary.
	r = buildChanRig(t, faults.LinkNone(), ClientOptions{OpDeadline: 50 * time.Microsecond})
	r.link.SetPeerDown(netsim.LinkSideB, true)
	if err := expire(r); !errors.Is(err, driver.ErrChannelDegraded) {
		t.Fatalf("peer-dead expiry err = %v", err)
	}
	if got := r.cli.DegradedCause(); got != CausePeerDead {
		t.Fatalf("cause = %v, want peer-dead", got)
	}

	// Pure loss: wire up, every frame eaten.
	r = buildChanRig(t, faults.LinkProfile{Name: "black", Loss: 1}, ClientOptions{OpDeadline: 50 * time.Microsecond})
	if err := expire(r); !errors.Is(err, driver.ErrChannelDegraded) {
		t.Fatalf("loss expiry err = %v", err)
	}
	if got := r.cli.DegradedCause(); got != CauseLoss {
		t.Fatalf("cause = %v, want loss", got)
	}
	cs := r.cli.ChanStats()
	if cs.DegradedLoss != 1 || cs.LastDegradedCause != CauseLoss {
		t.Fatalf("stats = %+v, want loss counted and latched", cs)
	}

	// Recovery clears the live cause but keeps the post-mortem latch.
	r.link.SetProfile(faults.LinkNone())
	if err := expire(r); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if got := r.cli.DegradedCause(); got != CauseNone {
		t.Fatalf("post-heal cause = %v, want none", got)
	}
	if cs := r.cli.ChanStats(); cs.LastDegradedCause != CauseLoss {
		t.Fatalf("post-mortem latch lost: %+v", cs)
	}
}
