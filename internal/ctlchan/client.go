package ctlchan

import (
	"fmt"
	"time"

	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// ClientOptions tunes the agent-side endpoint of the control channel.
type ClientOptions struct {
	// Session identifies this client to the server; Epoch is its
	// election epoch, stamped on every request for fencing.
	Session uint32
	Epoch   uint64

	// RTO is the initial retransmission timeout; each retransmit re-arms
	// at RTO plus a full-jitter backoff draw capped at MaxRTO. Default:
	// 2 link RTTs plus a fixed service allowance (the server executes a
	// request on its driver before replying, so the response takes wire +
	// execution + wire — an RTO of bare wire time retransmits spuriously
	// on a perfectly healthy channel). MaxRTO defaults to 8x RTO.
	RTO    time.Duration
	MaxRTO time.Duration
	// OpDeadline bounds how long one operation retransmits before the
	// client gives up and reports driver.ErrChannelDegraded. Default
	// 5x RTO — roughly four retransmission opportunities.
	OpDeadline time.Duration
	// Window bounds in-flight requests; excess callers queue FIFO.
	// Default 8.
	Window int

	// Meta, when set, serves the instantaneous wiring accessors of
	// driver.Channel — Switch() and Stats() — which are simulation
	// plumbing, not control messages, and do not cross the wire.
	Meta driver.Channel
}

// DegradeCause classifies why an operation hit its deadline, from the
// client's view of the wire at expiry time. It is evidence, not truth —
// a partition can heal between the drops and the deadline — but it is
// the distinction a coordinator needs between "that switch crashed" and
// "my own channel is bad".
type DegradeCause uint8

const (
	// CauseNone: the channel is not degraded.
	CauseNone DegradeCause = iota
	// CauseLoss: the wire looked up the whole time; frames (or their
	// responses) were presumably eaten by loss.
	CauseLoss
	// CausePartition: the link reported partitioned at expiry.
	CausePartition
	// CausePeerDead: the remote endpoint is marked dead — the peer's
	// process crashed, the wire itself is fine.
	CausePeerDead
)

// String names the cause for reports.
func (dc DegradeCause) String() string {
	switch dc {
	case CauseLoss:
		return "loss"
	case CausePartition:
		return "partition"
	case CausePeerDead:
		return "peer-dead"
	default:
		return "none"
	}
}

// ClientStats counts client-side channel behavior.
type ClientStats struct {
	// Ops counts operations issued through the client.
	Ops uint64
	// Sent counts frames transmitted (first sends and retransmits).
	Sent uint64
	// Retransmits counts re-sends after an un-acked timeout.
	Retransmits uint64
	// Timeouts counts operations that hit OpDeadline and were abandoned.
	Timeouts uint64
	// LateResponses counts responses that arrived after their operation
	// was already resolved (duplicate or post-abandon arrivals).
	LateResponses uint64
	// WindowWaits counts callers that had to queue for a window slot.
	WindowWaits uint64
	// BadFrames counts undecodable response frames.
	BadFrames uint64
	// FencedOps counts operations refused because the session is fenced.
	FencedOps uint64
	// DegradedLoss, DegradedPartition, and DegradedPeerDead split
	// Timeouts by classified cause; LastDegradedCause is the most recent
	// classification (it persists across recovery for post-mortems —
	// DegradedCause() is the live view).
	DegradedLoss      uint64
	DegradedPartition uint64
	DegradedPeerDead  uint64
	LastDegradedCause DegradeCause
}

// call is one in-flight request.
type call struct {
	seq      uint64
	req      *request
	waiter   *sim.Proc
	bo       *faults.Backoff
	timer    sim.EventID
	armed    bool
	lastTx   sim.Time
	deadline sim.Time

	done      bool
	abandoned bool // past deadline, in MSL quarantine, no longer retransmitting
	resp      *response
	failErr   error
}

// Client is the agent-side endpoint: a driver.Channel whose every
// operation becomes a sequenced request frame on a netsim.Link, with
// retransmission, in-flight windowing, idempotent delivery (via server
// dedup keyed on the seq), epoch fencing, and an MSL quarantine before
// any mutation is reported as possibly-lost.
//
// The client assumes the single-threaded simulator discipline of the
// rest of the tree: all calls come from simulator processes, and the
// agent issues its mutations sequentially (one outstanding mutation per
// agent process), which is what makes the quarantine argument airtight
// — by the time a mutation's failure is reported, no copy of it remains
// in flight, so a subsequent audit read observes its final effect.
type Client struct {
	sim  *sim.Simulator
	link *netsim.Link
	side int
	opts ClientOptions

	nextSeq  uint64
	pending  map[uint64]*call
	inFlight int
	waitq    []*sim.Proc

	// degraded latches true when an op times out and clears on the next
	// response (late ones included) — the channel-health signal the
	// agent's staleness budget consumes.
	degraded bool
	// fenced latches when the server rejects a mutation for a stale
	// epoch; every later mutation fails fast with ErrFenced.
	fenced bool
	// lastCause is the classification of the most recent timeout.
	lastCause DegradeCause

	stats ClientStats
}

var _ driver.Channel = (*Client)(nil)

// rtoServiceAllowance is the server-side execution budget folded into
// the default RTO: a request is not late until wire + driver-op + wire
// time has passed, and driver table/register operations cost single-digit
// microseconds each, plus queueing behind other sessions' requests on
// the serialized control CPU.
const rtoServiceAllowance = 20 * time.Microsecond

// NewClient opens the client endpoint on side of link. The opposite
// side is expected to be served by a Server with a matching Attach.
func NewClient(s *sim.Simulator, link *netsim.Link, side int, opts ClientOptions) *Client {
	if opts.RTO <= 0 {
		opts.RTO = 4*link.Delay() + rtoServiceAllowance
	}
	if opts.MaxRTO <= 0 {
		opts.MaxRTO = 8 * opts.RTO
	}
	if opts.OpDeadline <= 0 {
		opts.OpDeadline = 5 * opts.RTO
	}
	if opts.Window <= 0 {
		opts.Window = 8
	}
	c := &Client{
		sim: s, link: link, side: side, opts: opts,
		nextSeq: 1, pending: make(map[uint64]*call),
	}
	link.SetRecv(side, c.onFrame)
	return c
}

// RTT returns the link's fault-free round-trip time — the figure
// watchdog and deadline budgets should scale from.
func (c *Client) RTT() time.Duration { return 2 * c.link.Delay() }

// Degraded reports whether the most recent channel evidence is bad: an
// operation timed out and no response has arrived since.
func (c *Client) Degraded() bool { return c.degraded }

// DegradedCause classifies the current degradation: CauseNone while the
// channel is healthy, otherwise the wire's state when the most recent
// operation expired (loss, partition, or peer dead).
func (c *Client) DegradedCause() DegradeCause {
	if !c.degraded {
		return CauseNone
	}
	return c.lastCause
}

// classifyDegrade reads the wire at deadline expiry and picks the most
// specific explanation: a dead peer beats a partition beats plain loss.
func (c *Client) classifyDegrade() DegradeCause {
	switch {
	case c.link.PeerDown(1 - c.side):
		c.stats.DegradedPeerDead++
		return CausePeerDead
	case c.link.Partitioned():
		c.stats.DegradedPartition++
		return CausePartition
	default:
		c.stats.DegradedLoss++
		return CauseLoss
	}
}

// Fenced reports whether the session has been fenced by a higher epoch.
func (c *Client) Fenced() bool { return c.fenced }

// ChanStats returns a copy of the client counters. (Stats() is taken by
// the driver.Channel interface for switch-op accounting.)
func (c *Client) ChanStats() ClientStats { return c.stats }

// ackFloor is the lowest unresolved seq — everything below it is
// settled client-side. Piggybacked on every frame so the server can
// garbage-collect its response cache and reject ghost mutations.
func (c *Client) ackFloor() uint64 {
	if len(c.pending) == 0 {
		return c.nextSeq
	}
	min := ^uint64(0)
	for seq := range c.pending {
		if seq < min {
			min = seq
		}
	}
	return min
}

// transmit (re-)encodes and sends a call's frame with a fresh ack.
func (c *Client) transmit(cl *call) {
	cl.req.Ack = c.ackFloor()
	cl.lastTx = c.sim.Now()
	c.stats.Sent++
	c.link.Send(c.side, encodeRequest(cl.req))
}

// arm schedules the call's retransmission timer: RTO plus a full-jitter
// draw, so clients that tripped over the same loss burst or partition
// heal do not retransmit in lockstep.
func (c *Client) arm(cl *call) {
	cl.armed = true
	cl.timer = c.sim.Schedule(c.opts.RTO+cl.bo.Next(), func() { c.onTimer(cl) })
}

// onTimer fires when a call's retransmission timer expires.
func (c *Client) onTimer(cl *call) {
	if cl.done || cl.abandoned {
		return
	}
	cl.armed = false
	now := c.sim.Now()
	if now >= cl.deadline {
		c.stats.Timeouts++
		c.degraded = true
		c.lastCause = c.classifyDegrade()
		c.stats.LastDegradedCause = c.lastCause
		if mutatingVerb(cl.req.Verb) {
			// Ambiguous abandon: the request (or only its ack) may be
			// lost. Quarantine until every copy we ever sent is off the
			// wire, so the failure we report is stable: either a
			// response completes the call during quarantine, or no copy
			// exists anywhere and an audit read is definitive.
			cl.abandoned = true
			quarantineEnd := cl.lastTx.Add(c.link.MaxDelay())
			if now >= quarantineEnd {
				c.fail(cl, c.degradedErr(cl))
				return
			}
			c.sim.At(quarantineEnd, func() {
				if !cl.done {
					c.fail(cl, c.degradedErr(cl))
				}
			})
			return
		}
		// Reads carry no risk of a lost update: fail immediately.
		c.fail(cl, c.degradedErr(cl))
		return
	}
	c.stats.Retransmits++
	c.transmit(cl)
	c.arm(cl)
}

func (c *Client) degradedErr(cl *call) error {
	return fmt.Errorf("ctlchan: %s seq %d: no response within %v: %w",
		verbNames[cl.req.Verb], cl.seq, c.opts.OpDeadline, driver.ErrChannelDegraded)
}

// onFrame handles a response frame arriving from the server.
func (c *Client) onFrame(msg []byte) {
	resp, err := decodeResponse(msg)
	if err != nil {
		c.stats.BadFrames++
		return
	}
	cl, ok := c.pending[resp.Seq]
	if !ok || cl.done {
		// Resolved already (duplicate response, or a ghost's answer
		// arriving after abandon). Still a proof of life for the wire.
		c.stats.LateResponses++
		c.degraded = false
		return
	}
	cl.done = true
	cl.resp = resp
	c.degraded = false
	if cl.armed {
		c.sim.Cancel(cl.timer)
		cl.armed = false
	}
	c.resolve(cl)
	cl.waiter.Unpark()
}

// fail resolves a call with a local error (deadline expiry).
func (c *Client) fail(cl *call, err error) {
	cl.done = true
	cl.failErr = err
	if cl.armed {
		c.sim.Cancel(cl.timer)
		cl.armed = false
	}
	c.resolve(cl)
	cl.waiter.Unpark()
}

// resolve releases a finished call's bookkeeping: pending entry and
// window slot, waking the next queued caller if any.
func (c *Client) resolve(cl *call) {
	delete(c.pending, cl.seq)
	c.inFlight--
	if len(c.waitq) > 0 {
		next := c.waitq[0]
		c.waitq = c.waitq[1:]
		next.Unpark()
	}
}

// roundTrip runs one request to completion: admission, transmit,
// retransmit until response or deadline, classify.
func (c *Client) roundTrip(p *sim.Proc, req *request) (*response, error) {
	c.stats.Ops++
	if c.fenced && mutatingVerb(req.Verb) {
		c.stats.FencedOps++
		return nil, fmt.Errorf("ctlchan: %s refused: %w", verbNames[req.Verb], ErrFenced)
	}
	for c.inFlight >= c.opts.Window {
		c.stats.WindowWaits++
		c.waitq = append(c.waitq, p)
		p.Park()
	}
	c.inFlight++

	req.Kind = frameRequest
	req.Session = c.opts.Session
	req.Epoch = c.opts.Epoch
	req.Seq = c.nextSeq
	c.nextSeq++

	cl := &call{
		seq: req.Seq, req: req, waiter: p,
		bo:       faults.NewBackoff(c.sim.Rand(), c.opts.RTO, c.opts.MaxRTO),
		deadline: c.sim.Now().Add(c.opts.OpDeadline),
	}
	c.pending[cl.seq] = cl
	c.transmit(cl)
	c.arm(cl)
	p.Park()

	if cl.failErr != nil {
		return nil, cl.failErr
	}
	resp := cl.resp
	switch resp.Status {
	case statusOK:
		return resp, nil
	case statusTransient:
		return nil, fmt.Errorf("ctlchan: remote %s: %s: %w",
			verbNames[req.Verb], resp.ErrMsg, driver.ErrTransient)
	case statusFenced:
		c.fenced = true
		c.stats.FencedOps++
		return nil, fmt.Errorf("ctlchan: %s seq %d: %w", verbNames[req.Verb], cl.seq, ErrFenced)
	case statusStale:
		// A live call answered stale means the server's floor passed our
		// seq — only possible through frame corruption or a server bug.
		// Surface as degraded: the op's fate is unknown.
		return nil, fmt.Errorf("ctlchan: %s seq %d: stale-rejected: %w",
			verbNames[req.Verb], cl.seq, driver.ErrChannelDegraded)
	default:
		return nil, fmt.Errorf("ctlchan: remote %s: %s", verbNames[req.Verb], resp.ErrMsg)
	}
}

// ---- driver.Channel ----

// AddEntry installs a match-action entry over the wire.
func (c *Client) AddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error) {
	resp, err := c.roundTrip(p, &request{Verb: verbAddEntry, Table: table, Entry: e})
	if err != nil {
		return 0, err
	}
	return resp.Handle, nil
}

// ModifyEntry rewrites an installed entry's action over the wire.
func (c *Client) ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	_, err := c.roundTrip(p, &request{Verb: verbModifyEntry, Table: table, Handle: h, Action: action, Data: data})
	return err
}

// DeleteEntry removes an installed entry over the wire.
func (c *Client) DeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error {
	_, err := c.roundTrip(p, &request{Verb: verbDeleteEntry, Table: table, Handle: h})
	return err
}

// SetDefaultAction rewrites a table's default action over the wire.
func (c *Client) SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	_, err := c.roundTrip(p, &request{Verb: verbSetDefaultAction, Table: table, Call: call})
	return err
}

// SetHashSeed reseeds a hash unit over the wire.
func (c *Client) SetHashSeed(p *sim.Proc, name string, seed uint64) error {
	_, err := c.roundTrip(p, &request{Verb: verbSetHashSeed, Name: name, Seed: seed})
	return err
}

// RegWrite writes one register cell over the wire.
func (c *Client) RegWrite(p *sim.Proc, reg string, idx uint64, v uint64) error {
	_, err := c.roundTrip(p, &request{Verb: verbRegWrite, Reg: reg, Idx: idx, Val: v})
	return err
}

// RegRead reads one register cell over the wire.
func (c *Client) RegRead(p *sim.Proc, reg string, idx uint64) (uint64, error) {
	resp, err := c.roundTrip(p, &request{Verb: verbRegRead, Reg: reg, Idx: idx})
	if err != nil {
		return 0, err
	}
	return resp.Val, nil
}

// BatchRead reads register ranges in one request frame.
func (c *Client) BatchRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	resp, err := c.roundTrip(p, &request{Verb: verbBatchRead, Reqs: reqs})
	if err != nil {
		return nil, err
	}
	return resp.Vals, nil
}

// UnbatchedRead reads register ranges one request frame each — the
// unbatched baseline pays a full channel round trip per range here just
// as it pays per-op channel latency below.
func (c *Client) UnbatchedRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	out := make([][]uint64, 0, len(reqs))
	for _, rq := range reqs {
		resp, err := c.roundTrip(p, &request{Verb: verbBatchRead, Reqs: []driver.ReadReq{rq}})
		if err != nil {
			return nil, err
		}
		out = append(out, resp.Vals...)
	}
	return out, nil
}

// ReadEntries audits a table's installed entries over the wire.
func (c *Client) ReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error) {
	resp, err := c.roundTrip(p, &request{Verb: verbReadEntries, Table: table})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// ReadDefaultAction audits a table's default action over the wire.
func (c *Client) ReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error) {
	resp, err := c.roundTrip(p, &request{Verb: verbReadDefaultAction, Table: table})
	if err != nil {
		return nil, err
	}
	return resp.Call, nil
}

// Memoize ships as a fire-and-forget datagram: it is a hint, losing one
// costs a future lookup, not correctness, so it gets no retransmission.
func (c *Client) Memoize(table string, handle rmt.EntryHandle) {
	c.link.Send(c.side, encodeRequest(&request{
		Kind: frameDatagram, Session: c.opts.Session, Epoch: c.opts.Epoch,
		Ack: c.ackFloor(), Verb: verbMemoize, Table: table, Handle: handle,
	}))
}

// Switch returns the wired switch via the Meta backdoor (simulation
// plumbing — not a control message).
func (c *Client) Switch() *rmt.Switch {
	if c.opts.Meta == nil {
		return nil
	}
	return c.opts.Meta.Switch()
}

// Stats returns the underlying driver's op counters via the Meta
// backdoor. The client's own wire counters live in ChanStats.
func (c *Client) Stats() driver.Stats {
	if c.opts.Meta == nil {
		return driver.Stats{}
	}
	return c.opts.Meta.Stats()
}
