package ctlplane

import (
	"errors"
	"fmt"

	"repro/internal/driver"
)

// Sentinel errors of the control-plane service. All of them surface
// through the driver.Channel methods of a Session, so clients written
// against a raw driver classify them with the same errors.Is calls they
// already use.
var (
	// ErrQueueFull is the backpressure rejection: the session's bounded
	// request queue is at its limit and the submission was refused
	// outright — never silently dropped. It wraps driver.ErrTransient
	// because backpressure is by nature retryable: the operation was not
	// applied, and reissuing it after a backoff (exactly what the
	// agent's recovery layer does) is the correct client response.
	ErrQueueFull = fmt.Errorf("ctlplane: session queue full: %w", driver.ErrTransient)

	// ErrReadOnly rejects a write submitted on an observer session.
	ErrReadOnly = errors.New("ctlplane: read-only session")

	// ErrNotPrimary rejects a write from a primary session that lost the
	// election to a newer primary with a higher election id. Unlike
	// queue-full this is NOT transient: the demoted client must stop
	// writing (or re-open with a higher election id), not retry.
	ErrNotPrimary = errors.New("ctlplane: session lost primacy")

	// ErrPrimacyHeld rejects opening a primary session while another
	// primary holds an equal or higher election id.
	ErrPrimacyHeld = errors.New("ctlplane: primary with an equal or higher election id exists")

	// ErrClosed rejects operations on a closed session; requests still
	// queued when Close is called complete with this error too.
	ErrClosed = errors.New("ctlplane: session closed")
)
