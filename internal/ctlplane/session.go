package ctlplane

import (
	"fmt"
	"time"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// Role is a session's arbitration role.
type Role int

const (
	// RoleObserver sessions may only read (register reads and the
	// instantaneous Switch/Stats accessors); every write is rejected
	// with ErrReadOnly.
	RoleObserver Role = iota
	// RolePrimary sessions are exclusive writers elected by id: opening
	// a primary with a higher election id demotes the incumbent, whose
	// subsequent writes fail with ErrNotPrimary. The Mantis agent runs
	// as primary.
	RolePrimary
	// RoleLegacy sessions are bulk writers — coexisting legacy control
	// planes. Any number may be open; they share the bulk class.
	RoleLegacy
)

// String names the role for stats output.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleLegacy:
		return "legacy"
	default:
		return "observer"
	}
}

// SessionOptions configures one client session.
type SessionOptions struct {
	// Name labels the session in stats output.
	Name string
	// Role is the arbitration role (default RoleObserver — read-only is
	// the safe default).
	Role Role
	// ElectionID arbitrates primacy; only meaningful for RolePrimary.
	ElectionID uint64
	// Class overrides the scheduling class; ClassAuto derives it from
	// the role (primary -> dialogue, observer/legacy -> bulk).
	Class Class
	// QueueLimit bounds this session's request queue; 0 uses the
	// service default.
	QueueLimit int
}

// SessionStats counts one session's request activity.
type SessionStats struct {
	// Submitted counts accepted submissions; Rejected counts
	// backpressure refusals (ErrQueueFull).
	Submitted uint64
	Rejected  uint64
	// Completed counts dispatched requests; Failed is the subset that
	// completed with an error.
	Completed uint64
	Failed    uint64
	// MaxQueueDepth is the deepest the queue ever got.
	MaxQueueDepth int
	// TotalWait accumulates enqueue-to-dispatch time; MaxWait is the
	// worst single wait. Mean wait = TotalWait / Completed.
	TotalWait time.Duration
	MaxWait   time.Duration
	// TotalService accumulates dispatch-to-completion channel time.
	TotalService time.Duration
}

// requestKind tells the scheduler what it may coalesce.
type requestKind int

const (
	kindExec       requestKind = iota // opaque operation, never coalesced
	kindRead                          // batched register read, merges with adjacent reads
	kindModify                        // table-entry write, superseded by adjacent same-entry writes
	kindAdd                           // table-entry install (completion carries the new handle)
	kindDelete                        // table-entry removal
	kindSetDefault                    // table miss-action replacement
	kindHashSeed                      // hash-calculation reseed
	kindRegWrite                      // single register-cell write
)

// ringable reports whether the kind is a field-encoded write verb the
// dispatcher stages into the driver submission ring. kindExec writes
// stay opaque (the closure could do anything) and dispatch one at a
// time as before.
func (k requestKind) ringable() bool { return k >= kindModify }

// request is one queued control-plane operation.
type request struct {
	sess       *Session
	seq        uint64
	kind       requestKind
	class      Class
	write      bool
	pooled     bool // recyclable via Service.putReq (sync-path requests only)
	enqueuedAt sim.Time

	// exec runs an opaque kindExec operation against the channel.
	exec func(p *sim.Proc, ch driver.Channel) error
	// reads/out carry a kindRead request's ranges and results.
	reads []driver.ReadReq
	out   [][]uint64

	// Field-encoded write verbs: ring descriptors in waiting. The
	// dispatcher copies these into ring slots, so a write costs no
	// closure and (on the pooled sync path) no allocation at all.
	// table doubles as the register or hash-calculation name;
	// table/handle/action also key same-entry write coalescing.
	table    string
	handle   rmt.EntryHandle
	action   string
	data     []uint64 // reused capacity when pooled
	keys     []rmt.KeySpec
	priority int
	idx, val uint64

	// newHandle carries a kindAdd's installed entry handle back.
	newHandle rmt.EntryHandle
	// superseded points at the newer same-entry write that replaced this
	// modify within one dispatch batch (write-behind newest-wins).
	superseded *request

	done   bool
	err    error
	waiter *sim.Proc
}

// sameEntry reports whether two modify requests target the same table
// entry with the same action (so the newer data can supersede).
func (r *request) sameEntry(o *request) bool {
	return r.table == o.table && r.handle == o.handle && r.action == o.action
}

// getReq hands out a request from the freelist (or a fresh poolable
// one). Only the synchronous Channel methods use pooled requests: they
// own the full lifecycle (submit, wait, extract, release), so a recycled
// request can never be observed through a stale Pending.
func (svc *Service) getReq() *request {
	if n := len(svc.free); n > 0 {
		r := svc.free[n-1]
		svc.free = svc.free[:n-1]
		return r
	}
	return &request{pooled: true}
}

// putReq recycles a pooled request, keeping its data/keys capacity so
// the steady-state write path stops allocating once warmed up.
func (svc *Service) putReq(r *request) {
	if !r.pooled {
		return
	}
	data, keys := r.data[:0], r.keys[:0]
	*r = request{pooled: true, data: data, keys: keys}
	svc.free = append(svc.free, r)
}

// Pending is a handle to an in-flight request (the asynchronous
// submission API). Synchronous callers never see one: the Channel
// methods submit and wait internally.
type Pending struct{ req *request }

// Done reports whether the request completed.
func (pn *Pending) Done() bool { return pn.req.done }

// Wait parks p until the request completes and returns its error.
func (pn *Pending) Wait(p *sim.Proc) error {
	for !pn.req.done {
		pn.req.waiter = p
		p.Park()
		pn.req.waiter = nil
	}
	return pn.req.err
}

// Values returns a completed read request's register values, aligned
// with the submitted ranges. Nil until done or on error.
func (pn *Pending) Values() [][]uint64 { return pn.req.out }

// Session is one client's connection to the control-plane service. It
// implements driver.Channel, so anything written against a raw driver
// (the Mantis agent, experiment harnesses) runs through a session
// unchanged.
type Session struct {
	svc        *Service
	id         int
	name       string
	role       Role
	class      Class
	electionID uint64
	queueLimit int

	queue   []*request
	demoted bool
	closed  bool

	stats SessionStats
}

var _ driver.Channel = (*Session)(nil)

// Open creates a session. Primary opens are arbitrated by election id:
// a higher id than the incumbent wins and demotes it; an equal or lower
// id is refused with ErrPrimacyHeld.
func (svc *Service) Open(opts SessionOptions) (*Session, error) {
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("session-%d", svc.nextID)
	}
	if opts.Class == ClassAuto {
		if opts.Role == RolePrimary {
			opts.Class = ClassDialogue
		} else {
			opts.Class = ClassBulk
		}
	}
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = svc.opts.DefaultQueueLimit
	}
	s := &Session{
		svc:        svc,
		id:         svc.nextID,
		name:       opts.Name,
		role:       opts.Role,
		class:      opts.Class,
		electionID: opts.ElectionID,
		queueLimit: opts.QueueLimit,
	}
	if opts.Role == RolePrimary {
		if cur := svc.Primary(); cur != nil {
			if opts.ElectionID <= cur.electionID {
				return nil, fmt.Errorf("ctlplane: open %q: %q holds election id %d >= %d: %w",
					opts.Name, cur.name, cur.electionID, opts.ElectionID, ErrPrimacyHeld)
			}
			cur.demoted = true
			svc.stats.Demotions++
		}
		svc.primary = s
	}
	svc.nextID++
	svc.sessions = append(svc.sessions, s)
	return s, nil
}

// Name returns the session label.
func (s *Session) Name() string { return s.name }

// Role returns the session's arbitration role.
func (s *Session) Role() Role { return s.role }

// Class returns the session's scheduling class.
func (s *Session) Class() Class { return s.class }

// ElectionID returns the id the session opened with.
func (s *Session) ElectionID() uint64 { return s.electionID }

// Demoted reports whether a newer primary displaced this session.
func (s *Session) Demoted() bool { return s.demoted }

// QueueDepth returns the number of requests waiting (not yet
// dispatched).
func (s *Session) QueueDepth() int { return len(s.queue) }

// SessionStats returns a copy of the session counters. (Named to keep
// Stats() free for the driver.Channel pass-through.)
func (s *Session) SessionStats() SessionStats { return s.stats }

// Close closes the session. Requests still queued complete immediately
// with ErrClosed (waking their waiters); a closed primary relinquishes
// primacy so a successor of any election id can take over.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, r := range s.queue {
		r.err = fmt.Errorf("ctlplane: session %q: %w", s.name, ErrClosed)
		r.done = true
		s.stats.Completed++
		s.stats.Failed++
		if r.waiter != nil {
			r.waiter.Unpark()
		}
	}
	s.queue = nil
	if s.svc.primary == s {
		s.svc.primary = nil
	}
}

// writable classifies whether this session may write right now.
func (s *Session) writable() error {
	switch {
	case s.closed:
		return fmt.Errorf("ctlplane: session %q: %w", s.name, ErrClosed)
	case s.role == RoleObserver:
		return fmt.Errorf("ctlplane: session %q: %w", s.name, ErrReadOnly)
	case s.role == RolePrimary && s.demoted:
		return fmt.Errorf("ctlplane: session %q (election id %d): %w", s.name, s.electionID, ErrNotPrimary)
	}
	return nil
}

// enqueue queues r or rejects it. Rejection is always explicit: the
// typed error tells the caller whether to back off (ErrQueueFull wraps
// driver.ErrTransient) or stop (ErrReadOnly, ErrNotPrimary, ErrClosed).
func (s *Session) enqueue(r *request) error {
	if s.closed {
		return fmt.Errorf("ctlplane: session %q: %w", s.name, ErrClosed)
	}
	if r.write {
		if err := s.writable(); err != nil {
			return err
		}
	}
	if len(s.queue) >= s.queueLimit {
		s.stats.Rejected++
		s.svc.stats.Rejections++
		return fmt.Errorf("ctlplane: session %q: %d/%d requests pending: %w",
			s.name, len(s.queue), s.queueLimit, ErrQueueFull)
	}
	s.svc.seq++
	r.sess = s
	r.seq = s.svc.seq
	r.class = s.class
	r.enqueuedAt = s.svc.sim.Now()
	s.queue = append(s.queue, r)
	s.stats.Submitted++
	if d := len(s.queue); d > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = d
	}
	s.svc.kick()
	return nil
}

// submit enqueues r and wraps it in a Pending for asynchronous waiters.
func (s *Session) submit(r *request) (*Pending, error) {
	if err := s.enqueue(r); err != nil {
		return nil, err
	}
	return &Pending{req: r}, nil
}

// syncRun enqueues r and parks until it completes. The caller still
// owns r afterwards (to extract results) and must release pooled
// requests via putReq.
func (s *Session) syncRun(p *sim.Proc, r *request) error {
	if err := s.enqueue(r); err != nil {
		return err
	}
	for !r.done {
		r.waiter = p
		p.Park()
		r.waiter = nil
	}
	return r.err
}

// ---- Asynchronous submission API ----
//
// Pipelined clients submit several requests and Wait on the Pendings
// later; the bounded queue then does real work (a synchronous client
// never holds more than one slot).

// SubmitExec enqueues an opaque channel operation. write marks
// operations that mutate switch state, enforcing the session role.
func (s *Session) SubmitExec(write bool, fn func(p *sim.Proc, ch driver.Channel) error) (*Pending, error) {
	return s.submit(&request{kind: kindExec, write: write, exec: fn})
}

// SubmitRead enqueues a batched register read; the scheduler may merge
// it with adjacent queued reads into one driver transaction.
func (s *Session) SubmitRead(reqs []driver.ReadReq) (*Pending, error) {
	return s.submit(&request{kind: kindRead, reads: reqs})
}

// SubmitModify enqueues a table-entry write; while it queues, a newer
// write to the same entry supersedes its data (write-behind).
func (s *Session) SubmitModify(table string, h rmt.EntryHandle, action string, data []uint64) (*Pending, error) {
	return s.submit(&request{
		kind: kindModify, write: true, table: table, handle: h, action: action,
		data: append([]uint64(nil), data...),
	})
}

// doSync submits one opaque operation and blocks until it completes.
func (s *Session) doSync(p *sim.Proc, write bool, fn func(dp *sim.Proc, ch driver.Channel) error) error {
	pn, err := s.SubmitExec(write, fn)
	if err != nil {
		return err
	}
	return pn.Wait(p)
}

// ---- driver.Channel implementation ----
//
// The write verbs are field-encoded onto pooled requests: the dispatcher
// copies the fields straight into driver submission-ring descriptors, so
// a steady-state synchronous write allocates nothing.

// AddEntry installs a table entry through the session queue.
func (s *Session) AddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error) {
	r := s.svc.getReq()
	r.kind, r.write = kindAdd, true
	r.table, r.action = table, e.Action
	r.keys = append(r.keys[:0], e.Keys...)
	r.priority = e.Priority
	r.data = append(r.data[:0], e.Data...)
	err := s.syncRun(p, r)
	h := r.newHandle
	s.svc.putReq(r)
	return h, err
}

// ModifyEntry rebinds an entry's action and data through the session
// queue (coalescible when pipelined).
func (s *Session) ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	r := s.svc.getReq()
	r.kind, r.write = kindModify, true
	r.table, r.handle, r.action = table, h, action
	r.data = append(r.data[:0], data...)
	err := s.syncRun(p, r)
	s.svc.putReq(r)
	return err
}

// DeleteEntry removes an entry through the session queue.
func (s *Session) DeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error {
	r := s.svc.getReq()
	r.kind, r.write = kindDelete, true
	r.table, r.handle = table, h
	err := s.syncRun(p, r)
	s.svc.putReq(r)
	return err
}

// SetDefaultAction replaces a table's miss action through the session
// queue.
func (s *Session) SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	r := s.svc.getReq()
	r.kind, r.write = kindSetDefault, true
	r.table, r.action = table, call.Action
	r.data = append(r.data[:0], call.Data...)
	err := s.syncRun(p, r)
	s.svc.putReq(r)
	return err
}

// SetHashSeed reprograms a hash calculation through the session queue.
func (s *Session) SetHashSeed(p *sim.Proc, name string, seed uint64) error {
	r := s.svc.getReq()
	r.kind, r.write = kindHashSeed, true
	r.table, r.val = name, seed
	err := s.syncRun(p, r)
	s.svc.putReq(r)
	return err
}

// RegWrite writes one register cell through the session queue.
func (s *Session) RegWrite(p *sim.Proc, reg string, idx uint64, v uint64) error {
	r := s.svc.getReq()
	r.kind, r.write = kindRegWrite, true
	r.table, r.idx, r.val = reg, idx, v
	err := s.syncRun(p, r)
	s.svc.putReq(r)
	return err
}

// RegRead reads one register cell; as a single-range read it rides the
// coalescer like any other read.
func (s *Session) RegRead(p *sim.Proc, reg string, idx uint64) (uint64, error) {
	vals, err := s.BatchRead(p, []driver.ReadReq{{Reg: reg, Lo: idx, Hi: idx + 1}})
	if err != nil {
		return 0, err
	}
	return vals[0][0], nil
}

// BatchRead reads register ranges through the session queue; adjacent
// queued reads share one driver transaction.
func (s *Session) BatchRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	pn, err := s.SubmitRead(reqs)
	if err != nil {
		return nil, err
	}
	if err := pn.Wait(p); err != nil {
		return nil, err
	}
	return pn.Values(), nil
}

// UnbatchedRead issues one transaction per range (the batching
// ablation); by design it bypasses the read coalescer, or the ablation
// would measure nothing.
func (s *Session) UnbatchedRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	var vals [][]uint64
	err := s.doSync(p, false, func(dp *sim.Proc, ch driver.Channel) error {
		var err error
		vals, err = ch.UnbatchedRead(dp, reqs)
		return err
	})
	return vals, err
}

// ReadEntries dumps a table's installed entries through the session
// queue (the recovery audit path; reads are open to any role).
func (s *Session) ReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error) {
	var out []rmt.Entry
	err := s.doSync(p, false, func(dp *sim.Proc, ch driver.Channel) error {
		var err error
		out, err = ch.ReadEntries(dp, table)
		return err
	})
	return out, err
}

// ReadDefaultAction reads back a table's miss action through the
// session queue.
func (s *Session) ReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error) {
	var out *p4.ActionCall
	err := s.doSync(p, false, func(dp *sim.Proc, ch driver.Channel) error {
		var err error
		out, err = ch.ReadDefaultAction(dp, table)
		return err
	})
	return out, err
}

// Memoize passes through: descriptor precomputation is control-plane
// local, consumes no channel time, and needs no scheduling.
func (s *Session) Memoize(table string, handle rmt.EntryHandle) { s.svc.ch.Memoize(table, handle) }

// Switch exposes the underlying switch (instantaneous, for wiring and
// tests).
func (s *Session) Switch() *rmt.Switch { return s.svc.ch.Switch() }

// Stats returns the underlying driver counters (the driver.Channel
// contract; session-level counters live in SessionStats).
func (s *Session) Stats() driver.Stats { return s.svc.ch.Stats() }
