package ctlplane

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// testProgram builds a program with two register arrays and one table,
// enough surface for every scheduler path.
func testProgram() *p4.Program {
	prog := p4.NewProgram("ctlplane-test")
	prog.DefineStandardMetadata()
	k := prog.Schema.Define("h.k", 32)
	prog.AddRegister(&p4.Register{Name: "r0", Width: 32, Instances: 64})
	prog.AddRegister(&p4.Register{Name: "r1", Width: 32, Instances: 64})
	prog.AddAction(&p4.Action{
		Name:   "act",
		Params: []p4.Param{{Name: "v", Width: 32}},
		Body: []p4.Primitive{p4.ModifyField{
			Dst: prog.Schema.MustID(p4.FieldEgressSpec), DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "v"),
		}},
	})
	prog.AddTable(&p4.Table{
		Name:        "tbl",
		Keys:        []p4.MatchKey{{FieldName: "h.k", Field: k, Width: 32, Kind: p4.MatchExact}},
		ActionNames: []string{"act"},
		Size:        256,
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "tbl"}}
	return prog
}

// testRig builds simulator, switch, driver, and a service over them.
func testRig(t testing.TB, opts Options) (*sim.Simulator, *rmt.Switch, *driver.Driver, *Service) {
	t.Helper()
	s := sim.New(1)
	sw, err := rmt.New(s, testProgram(), rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	return s, sw, drv, New(s, drv, opts)
}

func TestSessionRoundTrip(t *testing.T) {
	s, sw, drv, svc := testRig(t, Options{})
	sess, err := svc.Open(SessionOptions{Name: "prim", Role: RolePrimary, ElectionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", func(p *sim.Proc) {
		h, err := sess.AddEntry(p, "tbl", rmt.Entry{
			Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "act", Data: []uint64{1},
		})
		if err != nil {
			t.Errorf("AddEntry: %v", err)
		}
		if err := sess.ModifyEntry(p, "tbl", h, "act", []uint64{9}); err != nil {
			t.Errorf("ModifyEntry: %v", err)
		}
		if err := sess.RegWrite(p, "r0", 3, 42); err != nil {
			t.Errorf("RegWrite: %v", err)
		}
		v, err := sess.RegRead(p, "r0", 3)
		if err != nil || v != 42 {
			t.Errorf("RegRead = %d, %v; want 42", v, err)
		}
		if _, err := sess.BatchRead(p, []driver.ReadReq{{Reg: "r1", Lo: 0, Hi: 8}}); err != nil {
			t.Errorf("BatchRead: %v", err)
		}
	})
	s.Run()
	if drv.Stats().TableOps != 2 || drv.Stats().RegWrites != 1 {
		t.Fatalf("driver stats: %+v", drv.Stats())
	}
	if sw.Stats().RxPackets != 0 {
		t.Fatalf("unexpected packets")
	}
	st := sess.SessionStats()
	if st.Submitted != 5 || st.Completed != 5 || st.Failed != 0 {
		t.Fatalf("session stats: %+v", st)
	}
}

func TestPrimaryArbitration(t *testing.T) {
	s, _, _, svc := testRig(t, Options{})
	old, err := svc.Open(SessionOptions{Name: "old", Role: RolePrimary, ElectionID: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Equal or lower election id: refused.
	if _, err := svc.Open(SessionOptions{Role: RolePrimary, ElectionID: 5}); !errors.Is(err, ErrPrimacyHeld) {
		t.Fatalf("equal id open: %v", err)
	}
	if _, err := svc.Open(SessionOptions{Role: RolePrimary, ElectionID: 4}); !errors.Is(err, ErrPrimacyHeld) {
		t.Fatalf("lower id open: %v", err)
	}
	// Higher id: wins, demotes the incumbent.
	neu, err := svc.Open(SessionOptions{Name: "new", Role: RolePrimary, ElectionID: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !old.Demoted() || svc.Primary() != neu {
		t.Fatalf("demotion did not happen")
	}
	s.Spawn("client", func(p *sim.Proc) {
		if err := old.RegWrite(p, "r0", 0, 1); !errors.Is(err, ErrNotPrimary) {
			t.Errorf("demoted write: %v", err)
		}
		if err := neu.RegWrite(p, "r0", 0, 1); err != nil {
			t.Errorf("new primary write: %v", err)
		}
		// Demoted sessions may still read.
		if _, err := old.RegRead(p, "r0", 0); err != nil {
			t.Errorf("demoted read: %v", err)
		}
	})
	s.Run()
	if svc.Stats().Demotions != 1 {
		t.Fatalf("demotions = %d", svc.Stats().Demotions)
	}
	// Closing the primary relinquishes primacy: any id may take over.
	neu.Close()
	if _, err := svc.Open(SessionOptions{Role: RolePrimary, ElectionID: 1}); err != nil {
		t.Fatalf("open after close: %v", err)
	}
}

func TestObserverReadOnly(t *testing.T) {
	s, _, _, svc := testRig(t, Options{})
	obs, err := svc.Open(SessionOptions{Name: "obs"}) // default role: observer
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", func(p *sim.Proc) {
		if err := obs.RegWrite(p, "r0", 0, 1); !errors.Is(err, ErrReadOnly) {
			t.Errorf("observer write: %v", err)
		}
		if _, err := obs.AddEntry(p, "tbl", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "act", Data: []uint64{0}}); !errors.Is(err, ErrReadOnly) {
			t.Errorf("observer add: %v", err)
		}
		if _, err := obs.RegRead(p, "r0", 0); err != nil {
			t.Errorf("observer read: %v", err)
		}
	})
	s.Run()
}

func TestBackpressureTypedRejection(t *testing.T) {
	s, _, _, svc := testRig(t, Options{})
	sess, err := svc.Open(SessionOptions{Name: "bulk", Role: RoleLegacy, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", func(p *sim.Proc) {
		var pendings []*Pending
		for i := 0; i < 2; i++ {
			pn, err := sess.SubmitExec(true, func(dp *sim.Proc, ch driver.Channel) error {
				return ch.RegWrite(dp, "r0", 0, 1)
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			pendings = append(pendings, pn)
		}
		// Third submission while two are queued: explicit typed rejection.
		_, err := sess.SubmitExec(true, func(dp *sim.Proc, ch driver.Channel) error { return nil })
		if !errors.Is(err, ErrQueueFull) {
			t.Errorf("overflow error = %v, want ErrQueueFull", err)
		}
		// Backpressure is advertised as retryable.
		if !driver.IsTransient(err) {
			t.Errorf("ErrQueueFull is not transient: %v", err)
		}
		for _, pn := range pendings {
			if err := pn.Wait(p); err != nil {
				t.Errorf("queued op failed: %v", err)
			}
		}
		// After draining, submissions are accepted again.
		if err := sess.RegWrite(p, "r0", 1, 2); err != nil {
			t.Errorf("post-drain write: %v", err)
		}
	})
	s.Run()
	st := sess.SessionStats()
	if st.Rejected != 1 || svc.Stats().Rejections != 1 {
		t.Fatalf("rejected = %d / %d, want 1", st.Rejected, svc.Stats().Rejections)
	}
}

// submitOrderProbe enqueues one channel op that records its execution
// order.
func submitOrderProbe(t *testing.T, sess *Session, tag string, order *[]string) *Pending {
	t.Helper()
	pn, err := sess.SubmitExec(sess.Role() != RoleObserver, func(dp *sim.Proc, ch driver.Channel) error {
		*order = append(*order, tag)
		return ch.RegWrite(dp, "r0", 0, 1)
	})
	if err != nil {
		t.Fatalf("submit %s: %v", tag, err)
	}
	return pn
}

// priorityOrFIFOOrder submits 4 bulk ops then 1 dialogue op at the same
// instant and returns the execution order.
func priorityOrFIFOOrder(t *testing.T, policy Policy) []string {
	s, _, _, svc := testRig(t, Options{Policy: policy})
	bulk, err := svc.Open(SessionOptions{Name: "legacy", Role: RoleLegacy})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := svc.Open(SessionOptions{Name: "mantis", Role: RolePrimary, ElectionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	s.Spawn("client", func(p *sim.Proc) {
		var pendings []*Pending
		for i := 0; i < 4; i++ {
			pendings = append(pendings, submitOrderProbe(t, bulk, fmt.Sprintf("bulk%d", i), &order))
		}
		pendings = append(pendings, submitOrderProbe(t, prim, "dialogue", &order))
		for _, pn := range pendings {
			if err := pn.Wait(p); err != nil {
				t.Errorf("op failed: %v", err)
			}
		}
	})
	s.Run()
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	return order
}

func TestPriorityServesDialogueFirst(t *testing.T) {
	order := priorityOrFIFOOrder(t, PolicyPriority)
	if order[0] != "dialogue" {
		t.Fatalf("priority order = %v, want dialogue first", order)
	}
}

func TestFIFOServesArrivalOrder(t *testing.T) {
	order := priorityOrFIFOOrder(t, PolicyFIFO)
	if order[len(order)-1] != "dialogue" {
		t.Fatalf("fifo order = %v, want dialogue last", order)
	}
}

func TestRoundRobinFairnessWithinClass(t *testing.T) {
	s, _, _, svc := testRig(t, Options{})
	a, _ := svc.Open(SessionOptions{Name: "a", Role: RoleLegacy})
	b, _ := svc.Open(SessionOptions{Name: "b", Role: RoleLegacy})
	var order []string
	s.Spawn("client", func(p *sim.Proc) {
		var pendings []*Pending
		// Session a enqueues all its work first; round-robin must still
		// interleave b's ops instead of draining a completely.
		for i := 0; i < 3; i++ {
			pendings = append(pendings, submitOrderProbe(t, a, "a", &order))
		}
		for i := 0; i < 3; i++ {
			pendings = append(pendings, submitOrderProbe(t, b, "b", &order))
		}
		for _, pn := range pendings {
			if err := pn.Wait(p); err != nil {
				t.Errorf("op failed: %v", err)
			}
		}
	})
	s.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want strict alternation", order)
		}
	}
}

func TestReadCoalescing(t *testing.T) {
	s, sw, drv, svc := testRig(t, Options{})
	sess, _ := svc.Open(SessionOptions{Name: "obs"})
	for i := uint64(0); i < 16; i++ {
		if err := sw.RegWrite("r0", i, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.RegWrite("r1", 2, 7); err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", func(p *sim.Proc) {
		// Three pipelined reads: two adjacent ranges of r0 (merge into
		// one range) and one of r1 — a single driver transaction total.
		p1, err := sess.SubmitRead([]driver.ReadReq{{Reg: "r0", Lo: 0, Hi: 8}})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := sess.SubmitRead([]driver.ReadReq{{Reg: "r0", Lo: 8, Hi: 16}})
		if err != nil {
			t.Fatal(err)
		}
		p3, err := sess.SubmitRead([]driver.ReadReq{{Reg: "r1", Lo: 2, Hi: 3}})
		if err != nil {
			t.Fatal(err)
		}
		for _, pn := range []*Pending{p1, p2, p3} {
			if err := pn.Wait(p); err != nil {
				t.Errorf("read failed: %v", err)
			}
		}
		if v := p1.Values()[0][0]; v != 100 {
			t.Errorf("p1[0] = %d, want 100", v)
		}
		if v := p2.Values()[0][7]; v != 115 {
			t.Errorf("p2[7] = %d, want 115", v)
		}
		if v := p3.Values()[0][0]; v != 7 {
			t.Errorf("p3[0] = %d, want 7", v)
		}
	})
	s.Run()
	if got := drv.Stats().RegReads; got != 1 {
		t.Fatalf("driver transactions = %d, want 1 (coalesced)", got)
	}
	st := svc.Stats()
	if st.ReadsCoalesced != 2 || st.RangesMerged != 1 {
		t.Fatalf("coalescing stats: %+v", st)
	}
}

func TestWriteCoalescing(t *testing.T) {
	s, sw, drv, svc := testRig(t, Options{})
	sess, _ := svc.Open(SessionOptions{Name: "legacy", Role: RoleLegacy})
	s.Spawn("client", func(p *sim.Proc) {
		h, err := sess.AddEntry(p, "tbl", rmt.Entry{
			Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "act", Data: []uint64{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		base := drv.Stats().TableOps
		// Three pipelined writes to the same entry: only the last value
		// reaches the device.
		var pendings []*Pending
		for _, v := range []uint64{1, 2, 3} {
			pn, err := sess.SubmitModify("tbl", h, "act", []uint64{v})
			if err != nil {
				t.Fatal(err)
			}
			pendings = append(pendings, pn)
		}
		for _, pn := range pendings {
			if err := pn.Wait(p); err != nil {
				t.Errorf("write failed: %v", err)
			}
		}
		if ops := drv.Stats().TableOps - base; ops != 1 {
			t.Errorf("device table ops = %d, want 1 (coalesced)", ops)
		}
		entries, err := sw.Entries("tbl")
		if err != nil || len(entries) != 1 || len(entries[0].Data) == 0 || entries[0].Data[0] != 3 {
			t.Errorf("entries = %+v, %v; want one entry with final value 3", entries, err)
		}
	})
	s.Run()
	if svc.Stats().WritesCoalesced != 2 {
		t.Fatalf("WritesCoalesced = %d, want 2", svc.Stats().WritesCoalesced)
	}
}

// TestWriteRingBatching pipelines writes to distinct entries: unlike
// same-entry coalescing, every write must reach the device, but the run
// shares a single submission-ring flush (one doorbell, one transaction).
func TestWriteRingBatching(t *testing.T) {
	s, sw, drv, svc := testRig(t, Options{})
	sess, _ := svc.Open(SessionOptions{Name: "legacy", Role: RoleLegacy})
	s.Spawn("client", func(p *sim.Proc) {
		var hs []rmt.EntryHandle
		for i := uint64(0); i < 3; i++ {
			h, err := sess.AddEntry(p, "tbl", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(i)}, Action: "act", Data: []uint64{0},
			})
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h)
		}
		base := drv.Stats().TableOps
		baseTx := svc.Stats().WriteTransactions
		var pendings []*Pending
		for i, h := range hs {
			pn, err := sess.SubmitModify("tbl", h, "act", []uint64{uint64(10 + i)})
			if err != nil {
				t.Fatal(err)
			}
			pendings = append(pendings, pn)
		}
		for _, pn := range pendings {
			if err := pn.Wait(p); err != nil {
				t.Errorf("write failed: %v", err)
			}
		}
		if ops := drv.Stats().TableOps - base; ops != 3 {
			t.Errorf("device table ops = %d, want 3 (distinct entries must all land)", ops)
		}
		if tx := svc.Stats().WriteTransactions - baseTx; tx != 1 {
			t.Errorf("write transactions = %d, want 1 (batched into one ring flush)", tx)
		}
		for i := range hs {
			entries, err := sw.Entries("tbl")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range entries {
				if e.Keys[0].Value == uint64(i) && len(e.Data) > 0 && e.Data[0] == uint64(10+i) {
					found = true
				}
			}
			if !found {
				t.Errorf("entry %d missing final value %d: %+v", i, 10+i, entries)
			}
		}
	})
	s.Run()
	if svc.Stats().WritesCoalesced != 0 {
		t.Fatalf("WritesCoalesced = %d, want 0 (distinct entries)", svc.Stats().WritesCoalesced)
	}
	if rs := svc.RingStats(); rs.OpsFlushed < 3 {
		t.Fatalf("ring ops flushed = %d, want >= 3", rs.OpsFlushed)
	}
}

// TestDemotedWhileQueued submits pipelined writes, demotes the session
// before the dispatcher runs, and expects the dispatch-time permission
// re-check to fail them all with ErrNotPrimary.
func TestDemotedWhileQueued(t *testing.T) {
	s, _, drv, svc := testRig(t, Options{})
	old, err := svc.Open(SessionOptions{Name: "old", Role: RolePrimary, ElectionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("client", func(p *sim.Proc) {
		var pendings []*Pending
		for i := uint64(0); i < 2; i++ {
			pn, err := old.SubmitModify("tbl", 1, "act", []uint64{i})
			if err != nil {
				t.Fatal(err)
			}
			pendings = append(pendings, pn)
		}
		// Demote before the dispatcher gets to run (we have not parked).
		if _, err := svc.Open(SessionOptions{Name: "new", Role: RolePrimary, ElectionID: 2}); err != nil {
			t.Fatal(err)
		}
		for _, pn := range pendings {
			if err := pn.Wait(p); !errors.Is(err, ErrNotPrimary) {
				t.Errorf("queued write after demotion: %v, want ErrNotPrimary", err)
			}
		}
	})
	s.Run()
	if drv.Stats().TableOps != 0 {
		t.Fatalf("device ops = %d, want 0 (demoted writes must not land)", drv.Stats().TableOps)
	}
}

func TestMergeRanges(t *testing.T) {
	reqs := []driver.ReadReq{
		{Reg: "r1", Lo: 2, Hi: 3},
		{Reg: "r0", Lo: 8, Hi: 16},
		{Reg: "r0", Lo: 0, Hi: 8},
		{Reg: "r0", Lo: 20, Hi: 24}, // gap after 16: must NOT merge
	}
	merged, slots := mergeRanges(reqs)
	if len(merged) != 3 {
		t.Fatalf("merged = %+v, want 3 ranges", merged)
	}
	// Every original range must map inside its merged range.
	for i, r := range reqs {
		m := merged[slots[i].idx]
		if m.Reg != r.Reg || uint64(slots[i].off) != r.Lo-m.Lo || slots[i].n != int(r.Hi-r.Lo) {
			t.Fatalf("slot %d = %+v for %+v in %+v", i, slots[i], r, m)
		}
	}
}

func TestSessionCloseFailsQueuedRequests(t *testing.T) {
	s, _, _, svc := testRig(t, Options{})
	sess, _ := svc.Open(SessionOptions{Name: "legacy", Role: RoleLegacy})
	s.Spawn("client", func(p *sim.Proc) {
		pn, err := sess.SubmitExec(true, func(dp *sim.Proc, ch driver.Channel) error {
			return ch.RegWrite(dp, "r0", 0, 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		sess.Close() // before the dispatcher ever runs
		if err := pn.Wait(p); !errors.Is(err, ErrClosed) {
			t.Errorf("queued request after close: %v, want ErrClosed", err)
		}
		if err := sess.RegWrite(p, "r0", 0, 1); !errors.Is(err, ErrClosed) {
			t.Errorf("write after close: %v, want ErrClosed", err)
		}
	})
	s.Run()
}

// TestSessionStressManyClients hammers one service (and through it one
// driver) from a primary, observers, and many legacy writers at once —
// run under -race in CI, it exercises the proc handoff and park/unpark
// machinery across dozens of goroutine-backed processes.
func TestSessionStressManyClients(t *testing.T) {
	s, _, drv, svc := testRig(t, Options{})
	const nLegacy, nObs, opsEach = 12, 4, 40

	prim, err := svc.Open(SessionOptions{Name: "prim", Role: RolePrimary, ElectionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("prim", func(p *sim.Proc) {
		h, err := prim.AddEntry(p, "tbl", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(999)}, Action: "act", Data: []uint64{0}})
		if err != nil {
			t.Errorf("prim add: %v", err)
			return
		}
		for i := 0; i < opsEach; i++ {
			if err := prim.ModifyEntry(p, "tbl", h, "act", []uint64{uint64(i)}); err != nil {
				t.Errorf("prim modify: %v", err)
				return
			}
			if _, err := prim.BatchRead(p, []driver.ReadReq{{Reg: "r0", Lo: 0, Hi: 16}}); err != nil {
				t.Errorf("prim read: %v", err)
				return
			}
		}
	})
	for c := 0; c < nLegacy; c++ {
		c := c
		sess, err := svc.Open(SessionOptions{Name: fmt.Sprintf("legacy%d", c), Role: RoleLegacy})
		if err != nil {
			t.Fatal(err)
		}
		s.Spawn(sess.Name(), func(p *sim.Proc) {
			h, err := sess.AddEntry(p, "tbl", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(uint64(c))}, Action: "act", Data: []uint64{0}})
			if err != nil {
				t.Errorf("legacy%d add: %v", c, err)
				return
			}
			for i := 0; i < opsEach; i++ {
				if err := sess.ModifyEntry(p, "tbl", h, "act", []uint64{uint64(i)}); err != nil {
					t.Errorf("legacy%d modify: %v", c, err)
					return
				}
				p.Sleep(time.Duration(c+1) * 100 * time.Nanosecond)
			}
		})
	}
	for c := 0; c < nObs; c++ {
		sess, err := svc.Open(SessionOptions{Name: fmt.Sprintf("obs%d", c)})
		if err != nil {
			t.Fatal(err)
		}
		s.Spawn(sess.Name(), func(p *sim.Proc) {
			for i := 0; i < opsEach; i++ {
				if _, err := sess.BatchRead(p, []driver.ReadReq{{Reg: "r1", Lo: 0, Hi: 32}}); err != nil {
					t.Errorf("%s read: %v", sess.Name(), err)
					return
				}
				p.Sleep(time.Microsecond)
			}
		})
	}
	s.Run()

	var completed, failed uint64
	for _, sess := range svc.Sessions() {
		st := sess.SessionStats()
		completed += st.Completed
		failed += st.Failed
		if st.Submitted != st.Completed+st.Rejected {
			t.Fatalf("%s: submitted %d != completed %d + rejected %d",
				sess.Name(), st.Submitted, st.Completed, st.Rejected)
		}
	}
	if failed != 0 {
		t.Fatalf("%d requests failed", failed)
	}
	wantOps := uint64(1+nLegacy) /*adds*/ + uint64((1+nLegacy)*opsEach) /*modifies*/
	if drv.Stats().TableOps != wantOps {
		t.Fatalf("driver table ops = %d, want %d", drv.Stats().TableOps, wantOps)
	}
	if completed == 0 || svc.Stats().BulkOps == 0 || svc.Stats().DialogueOps == 0 {
		t.Fatalf("stats: completed=%d svc=%+v", completed, svc.Stats())
	}
}
