// Package ctlplane is the runtime control-plane service between
// control-plane clients and the switch driver.
//
// The paper's agent shares the switch CPU with legacy control planes
// (§6, Fig. 12), but raw driver access gives every caller the same
// standing: operations serialize in arrival order, one aggressive bulk
// writer can starve the reaction loop, and nothing bounds how much work
// a client may have in flight. Real runtime-control stacks (P4Runtime,
// RBFRT) solve this with a mediating service, and this package is that
// layer for the simulated stack:
//
//   - Sessions with role arbitration: exactly one primary writer
//     (election ids break ties, higher wins and demotes the incumbent),
//     any number of read-only observers, and legacy bulk-writer
//     sessions for coexisting control planes.
//
//   - A request scheduler with bounded per-session queues, strict
//     priority of the dialogue class over the bulk class, round-robin
//     fairness within a class, and an optional global-FIFO policy that
//     serves as the no-scheduler baseline in the fig12x experiment.
//
//   - Explicit backpressure: a submission to a full queue is rejected
//     with a typed error (ErrQueueFull), never dropped or silently
//     delayed.
//
//   - Batching: adjacent register-read requests queued on one session
//     coalesce into a single driver transaction (one base cost instead
//     of many — the same economics as the driver's own BatchRead), and
//     adjacent pipelined writes to the same table entry collapse to the
//     final value before any reaches the device.
//
// A Session implements driver.Channel, so existing clients — the
// Mantis agent, the fault-injection chaos suite, the experiment
// drivers — drop onto the service without code changes; the fault
// injector sits *below* the service (driver -> faults.Injector ->
// Service), so chaos profiles exercise the whole stack.
//
// The service runs as one simulated process (the dispatcher) that
// executes requests against the underlying channel one scheduling
// decision at a time. Service is non-preemptive at operation
// granularity, like the PCIe channel it fronts: a dialogue request
// never interrupts a bulk operation already in flight, it only jumps
// the queue ahead of bulk operations not yet started.
package ctlplane

import (
	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// Class is a scheduling class. The dialogue class is always served
// before the bulk class under the priority policy.
type Class int

const (
	// ClassAuto derives the class from the session role: primaries get
	// ClassDialogue, observers and legacy writers get ClassBulk.
	ClassAuto Class = iota
	// ClassDialogue is the high-priority class of the Mantis reaction
	// loop: short, latency-critical operation streams.
	ClassDialogue
	// ClassBulk is the low-priority class of legacy control planes and
	// observers: throughput-oriented, tolerant of queueing.
	ClassBulk
)

// String names the class for stats output.
func (c Class) String() string {
	switch c {
	case ClassDialogue:
		return "dialogue"
	case ClassBulk:
		return "bulk"
	default:
		return "auto"
	}
}

// classOrder is the strict priority order of the scheduler.
var classOrder = [...]Class{ClassDialogue, ClassBulk}

// Policy selects how the dispatcher picks the next request.
type Policy int

const (
	// PolicyPriority serves classes in strict priority order and
	// sessions within a class round-robin. The default.
	PolicyPriority Policy = iota
	// PolicyFIFO serves requests in global arrival order regardless of
	// class — the naive single-queue behavior of the raw driver channel,
	// kept as the measurable baseline for the fig12x experiment.
	PolicyFIFO
)

// String names the policy for experiment tables.
func (p Policy) String() string {
	if p == PolicyFIFO {
		return "fifo"
	}
	return "priority"
}

// Options configures a Service.
type Options struct {
	// Policy is the scheduling policy (default PolicyPriority).
	Policy Policy
	// DefaultQueueLimit bounds each session's request queue when the
	// session does not set its own limit. 0 = 64.
	DefaultQueueLimit int
	// CoalesceLimit caps how many adjacent queued requests merge into
	// one dispatch (reads into one driver transaction, same-entry writes
	// into the last value). 0 = 8; 1 disables coalescing.
	CoalesceLimit int
	// RingSize is the depth of the driver submission ring write requests
	// flush through. 0 = driver.DefaultRingSize; values below
	// CoalesceLimit are raised to it so one dispatch batch always fits.
	RingSize int
}

// DefaultQueueLimit is the per-session queue bound when neither the
// service options nor the session options set one.
const DefaultQueueLimit = 64

// DefaultCoalesceLimit is the default cap on requests merged per
// dispatch.
const DefaultCoalesceLimit = 8

// Stats counts service-wide scheduler activity. Per-session counters
// live in SessionStats.
type Stats struct {
	// DialogueOps and BulkOps count dispatched requests per class.
	DialogueOps uint64
	BulkOps     uint64
	// ReadTransactions counts driver read transactions issued; when
	// reads coalesce, one transaction completes several requests.
	ReadTransactions uint64
	// ReadsCoalesced counts read requests that rode along in another
	// request's driver transaction (the saved base costs).
	ReadsCoalesced uint64
	// RangesMerged counts register ranges folded into an adjacent range
	// within one transaction (the saved per-range setup costs).
	RangesMerged uint64
	// WritesCoalesced counts pipelined same-entry writes superseded by a
	// newer queued value before reaching the driver.
	WritesCoalesced uint64
	// WriteTransactions counts submission-ring flushes (doorbells); when
	// adjacent writes batch, several requests share one flush.
	WriteTransactions uint64
	// Rejections counts submissions refused with ErrQueueFull.
	Rejections uint64
	// Demotions counts primaries displaced by a higher election id.
	Demotions uint64
}

// Service mediates control-plane access to one driver channel.
type Service struct {
	sim  *sim.Simulator
	ch   driver.Channel
	opts Options

	sessions []*Session
	nextID   int
	seq      uint64 // global arrival sequence, for PolicyFIFO

	primary *Session // current primary writer, nil if none

	disp *sim.Proc
	idle bool

	// rrNext[class] is the session index to start the round-robin scan
	// at for that class.
	rrNext map[Class]int

	// ring is the driver submission ring every write request flushes
	// through; batchBuf and free are dispatcher/sync-path scratch that
	// keep the steady-state write path allocation-free.
	ring     *driver.Ring
	batchBuf []*request
	free     []*request

	stats Stats
}

// New starts a control-plane service over ch. The dispatcher process
// spawns immediately and parks until the first request arrives.
func New(s *sim.Simulator, ch driver.Channel, opts Options) *Service {
	if opts.DefaultQueueLimit <= 0 {
		opts.DefaultQueueLimit = DefaultQueueLimit
	}
	if opts.CoalesceLimit <= 0 {
		opts.CoalesceLimit = DefaultCoalesceLimit
	}
	if opts.RingSize <= 0 {
		opts.RingSize = driver.DefaultRingSize
	}
	if opts.RingSize < opts.CoalesceLimit {
		opts.RingSize = opts.CoalesceLimit
	}
	svc := &Service{sim: s, ch: ch, opts: opts, rrNext: make(map[Class]int)}
	svc.ring = driver.NewRing(ch, opts.RingSize)
	svc.disp = s.Spawn("ctlplane-dispatcher", svc.run)
	return svc
}

// Channel returns the underlying driver channel the service fronts.
func (svc *Service) Channel() driver.Channel { return svc.ch }

// Stats returns a copy of the service counters.
func (svc *Service) Stats() Stats { return svc.stats }

// RingStats returns a copy of the driver submission-ring counters.
func (svc *Service) RingStats() driver.RingStats { return svc.ring.Stats() }

// Sessions returns the open sessions (closed ones are pruned).
func (svc *Service) Sessions() []*Session {
	var out []*Session
	for _, s := range svc.sessions {
		if !s.closed {
			out = append(out, s)
		}
	}
	return out
}

// Primary returns the current primary writer session, or nil.
func (svc *Service) Primary() *Session {
	if svc.primary != nil && svc.primary.closed {
		return nil
	}
	return svc.primary
}

// kick wakes the dispatcher if it is parked on empty queues. The idle
// flag flips here, not when Park returns, so two submissions at the
// same instant cannot double-unpark the dispatcher.
func (svc *Service) kick() {
	if svc.idle {
		svc.idle = false
		svc.disp.Unpark()
	}
}

// run is the dispatcher process: pick a request by policy, execute it
// (plus anything coalescible behind it), repeat; park when idle.
func (svc *Service) run(p *sim.Proc) {
	for {
		req := svc.next()
		if req == nil {
			svc.idle = true
			p.Park()
			continue
		}
		svc.dispatch(p, req)
	}
}

// next picks the request to serve — always the head of some session's
// queue, so per-session ordering is preserved under every policy.
func (svc *Service) next() *request {
	if svc.opts.Policy == PolicyFIFO {
		var best *request
		for _, s := range svc.sessions {
			if len(s.queue) > 0 && (best == nil || s.queue[0].seq < best.seq) {
				best = s.queue[0]
			}
		}
		return best
	}
	for _, class := range classOrder {
		if r := svc.nextInClass(class); r != nil {
			return r
		}
	}
	return nil
}

// nextInClass round-robins across the class's sessions with pending
// work, resuming after the last session served.
func (svc *Service) nextInClass(class Class) *request {
	n := len(svc.sessions)
	if n == 0 {
		return nil
	}
	start := svc.rrNext[class] % n
	for i := 0; i < n; i++ {
		s := svc.sessions[(start+i)%n]
		if s.class == class && len(s.queue) > 0 {
			svc.rrNext[class] = (start + i + 1) % n
			return s.queue[0]
		}
	}
	return nil
}

// dispatch executes the head request of req's session, folding in any
// coalescible run of adjacent queued requests behind it. Reads merge
// into one driver transaction; field-encoded writes of any verb stage
// into the submission ring and flush as one doorbell.
func (svc *Service) dispatch(p *sim.Proc, req *request) {
	s := req.sess
	batch := append(svc.batchBuf[:0], req)
	limit := svc.opts.CoalesceLimit
	switch {
	case req.kind == kindRead:
		for len(batch) < limit && len(s.queue) > len(batch) && s.queue[len(batch)].kind == kindRead {
			batch = append(batch, s.queue[len(batch)])
		}
	case req.kind.ringable():
		for len(batch) < limit && len(s.queue) > len(batch) && s.queue[len(batch)].kind.ringable() {
			batch = append(batch, s.queue[len(batch)])
		}
	}
	s.queue = s.queue[len(batch):]

	start := p.Now()
	for _, r := range batch {
		if r.class == ClassDialogue {
			svc.stats.DialogueOps++
		} else {
			svc.stats.BulkOps++
		}
	}

	switch {
	case req.kind == kindRead:
		svc.executeReads(p, batch)
	case req.kind.ringable():
		svc.executeRing(p, batch)
	default:
		if req.write {
			if err := req.sess.writable(); err != nil {
				// Re-checked at dispatch time: the session may have been
				// demoted or closed while the request was queued.
				req.err = err
			} else {
				req.err = req.exec(p, svc.ch)
			}
		} else {
			req.err = req.exec(p, svc.ch)
		}
	}

	end := p.Now()
	for _, r := range batch {
		svc.complete(r, start, end)
	}
	svc.batchBuf = batch[:0]
}

// executeRing stages a run of field-encoded write requests into the
// driver submission ring and flushes them as one doorbell. Pipelined
// writes to the same table entry collapse to the newest queued value
// before any descriptor is reserved (write-behind: a synchronous client
// never has two writes queued, so it is unaffected), and every request
// re-checks write permission at dispatch time — the session may have
// been demoted while it was queued.
func (svc *Service) executeRing(p *sim.Proc, batch []*request) {
	for i, r := range batch {
		if r.kind != kindModify {
			continue
		}
		for _, later := range batch[i+1:] {
			if later.kind == kindModify && later.sameEntry(r) {
				r.superseded = later
				svc.stats.WritesCoalesced++
				break
			}
		}
	}
	staged := false
	for _, r := range batch {
		if r.superseded != nil {
			continue
		}
		if err := r.sess.writable(); err != nil {
			r.err = err
			continue
		}
		op, err := svc.ring.Reserve()
		if err != nil {
			// Unreachable when RingSize >= CoalesceLimit (New enforces
			// it), but a typed refusal beats a silent drop.
			r.err = err
			continue
		}
		switch r.kind {
		case kindModify:
			op.SetModify(r.table, r.handle, r.action, r.data)
		case kindAdd:
			op.SetAdd(r.table, rmt.Entry{Keys: r.keys, Priority: r.priority, Action: r.action, Data: r.data})
		case kindDelete:
			op.SetDelete(r.table, r.handle)
		case kindSetDefault:
			op.SetDefault(r.table, &p4.ActionCall{Action: r.action, Data: r.data})
		case kindHashSeed:
			op.SetHashSeed(r.table, r.val)
		case kindRegWrite:
			op.SetRegWrite(r.table, r.idx, r.val)
		}
		op.Tag = r
		staged = true
	}
	if staged {
		svc.stats.WriteTransactions++
		svc.ring.Flush(p)
		svc.ring.Drain(func(op *driver.RingOp) {
			r := op.Tag.(*request)
			r.err = op.Err
			r.newHandle = op.NewHandle
		})
	}
	// Superseded writes complete with their winner's outcome. Walk
	// backwards so supersession chains resolve: the winner's error is
	// already settled when an older write copies it.
	for i := len(batch) - 1; i >= 0; i-- {
		if w := batch[i].superseded; w != nil {
			batch[i].err = w.err
			batch[i].superseded = nil
		}
	}
}

// executeReads merges the batch's register ranges into one driver
// transaction and splits the values back per request. All requests in
// the batch observe values captured at the same completion instant —
// the same snapshot semantics a single BatchRead already has.
func (svc *Service) executeReads(p *sim.Proc, batch []*request) {
	var all []driver.ReadReq
	slots := make([][2]int, len(batch)) // [start,len) into all, per request
	for i, r := range batch {
		slots[i] = [2]int{len(all), len(r.reads)}
		all = append(all, r.reads...)
	}
	merged, where := mergeRanges(all)
	svc.stats.ReadTransactions++
	svc.stats.ReadsCoalesced += uint64(len(batch) - 1)
	svc.stats.RangesMerged += uint64(len(all) - len(merged))

	vals, err := svc.ch.BatchRead(p, merged)
	if err != nil {
		for _, r := range batch {
			r.err = err
		}
		return
	}
	for i, r := range batch {
		lo, n := slots[i][0], slots[i][1]
		out := make([][]uint64, n)
		for j := 0; j < n; j++ {
			w := where[lo+j]
			out[j] = vals[w.idx][w.off : w.off+w.n]
		}
		r.out = out
	}
}

// complete finishes one request: record wait/service time on its
// session, mark it done, and wake its waiter.
func (svc *Service) complete(r *request, start, end sim.Time) {
	st := &r.sess.stats
	st.Completed++
	if r.err != nil {
		st.Failed++
	}
	wait := start.Sub(r.enqueuedAt)
	st.TotalWait += wait
	if wait > st.MaxWait {
		st.MaxWait = wait
	}
	st.TotalService += end.Sub(start)
	r.done = true
	if r.waiter != nil {
		r.waiter.Unpark()
	}
}

// readSlot locates one original range inside the merged request list.
type readSlot struct {
	idx int // merged range index
	off int // cell offset within the merged range
	n   int // cell count
}

// mergeRanges folds overlapping or adjacent ranges on the same register
// into unions, returning the merged list and, for each original range,
// where its values live in the merged results. Ranges on distinct
// registers or with gaps between them stay separate — merging across a
// gap would DMA cells nobody asked for.
func mergeRanges(reqs []driver.ReadReq) ([]driver.ReadReq, []readSlot) {
	if len(reqs) <= 1 {
		slots := make([]readSlot, len(reqs))
		for i, r := range reqs {
			slots[i] = readSlot{idx: i, n: int(r.Hi - r.Lo)}
		}
		return reqs, slots
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (register, Lo): request lists are short (a
	// handful of reactions' params), and stability is irrelevant since
	// ties resolve identically.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := reqs[order[j]], reqs[order[j-1]]
			if a.Reg < b.Reg || (a.Reg == b.Reg && a.Lo < b.Lo) {
				order[j], order[j-1] = order[j-1], order[j]
			} else {
				break
			}
		}
	}
	var merged []driver.ReadReq
	slots := make([]readSlot, len(reqs))
	for _, oi := range order {
		r := reqs[oi]
		if n := len(merged); n > 0 && merged[n-1].Reg == r.Reg && r.Lo <= merged[n-1].Hi {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
		} else {
			merged = append(merged, r)
		}
		last := merged[len(merged)-1]
		slots[oi] = readSlot{idx: len(merged) - 1, off: int(r.Lo - last.Lo), n: int(r.Hi - r.Lo)}
	}
	return merged, slots
}
