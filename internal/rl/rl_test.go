package rl

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{States: 0, Actions: 2, Alpha: 0.1}); err == nil {
		t.Fatal("zero states accepted")
	}
	if _, err := New(Config{States: 2, Actions: 2, Alpha: 0}); err == nil {
		t.Fatal("zero alpha accepted")
	}
	if _, err := New(Config{States: 2, Actions: 2, Alpha: 0.5, Gamma: 1.5}); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
	if _, err := New(DefaultConfig(4, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMovesTowardTarget(t *testing.T) {
	l, _ := New(Config{States: 2, Actions: 2, Alpha: 0.5, Gamma: 0, Seed: 1})
	l.Update(0, 1, 10, 1)
	if l.Q(0, 1) != 5 { // 0 + 0.5*(10 - 0)
		t.Fatalf("Q(0,1) = %v", l.Q(0, 1))
	}
	l.Update(0, 1, 10, 1)
	if l.Q(0, 1) != 7.5 {
		t.Fatalf("Q(0,1) = %v", l.Q(0, 1))
	}
}

func TestBestAndGreedy(t *testing.T) {
	l, _ := New(Config{States: 1, Actions: 3, Alpha: 1, Gamma: 0, Epsilon: 0, Seed: 1})
	l.Update(0, 2, 5, 0)
	if l.Best(0) != 2 {
		t.Fatalf("Best = %d", l.Best(0))
	}
	if l.Act(0) != 2 {
		t.Fatal("greedy Act ignored best action")
	}
}

func TestEpsilonDecay(t *testing.T) {
	cfg := DefaultConfig(2, 2)
	cfg.Epsilon = 1.0
	cfg.EpsilonDecay = 0.5
	cfg.MinEpsilon = 0.1
	l, _ := New(cfg)
	for i := 0; i < 10; i++ {
		l.Update(0, 0, 0, 0)
	}
	if l.Epsilon() != 0.1 {
		t.Fatalf("epsilon = %v, want floor 0.1", l.Epsilon())
	}
}

func TestExplorationHappens(t *testing.T) {
	cfg := DefaultConfig(1, 4)
	cfg.Epsilon = 1.0
	cfg.EpsilonDecay = 1.0
	l, _ := New(cfg)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[l.Act(0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("pure exploration visited %d/4 actions", len(seen))
	}
}

// TestLearnsSimpleMDP: a 1-state bandit where action 1 pays 1 and
// action 0 pays 0 — the learner must converge to action 1.
func TestLearnsSimpleMDP(t *testing.T) {
	cfg := DefaultConfig(1, 2)
	l, _ := New(cfg)
	for i := 0; i < 500; i++ {
		a := l.Act(0)
		r := 0.0
		if a == 1 {
			r = 1
		}
		l.Update(0, a, r, 0)
	}
	if l.Best(0) != 1 {
		t.Fatalf("did not learn the bandit: Q = [%v %v]", l.Q(0, 0), l.Q(0, 1))
	}
}

// TestLearnsChainMDP: states 0..4; action 1 moves right (reward 1 at
// the end), action 0 stays. Discounted lookahead must propagate value
// back so the learner walks right from state 0.
func TestLearnsChainMDP(t *testing.T) {
	cfg := DefaultConfig(5, 2)
	cfg.Epsilon = 0.3
	l, _ := New(cfg)
	rng := rand.New(rand.NewSource(2))
	s := 0
	for i := 0; i < 20000; i++ {
		a := l.Act(s)
		s2, r := s, 0.0
		if a == 1 {
			s2 = s + 1
			if s2 == 4 {
				r = 1
				s2 = 0 // episode restarts
			}
		}
		l.Update(s, a, r, s2)
		s = s2
		if rng.Float64() < 0.01 {
			s = rng.Intn(4)
		}
	}
	for st := 0; st < 4; st++ {
		if l.Best(st) != 1 {
			t.Fatalf("state %d: best = %d, want move-right", st, l.Best(st))
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		l, _ := New(DefaultConfig(3, 3))
		var out []int
		for i := 0; i < 100; i++ {
			a := l.Act(i % 3)
			out = append(out, a)
			l.Update(i%3, a, float64(i%5), (i+1)%3)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic trajectory")
		}
	}
}
