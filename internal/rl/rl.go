// Package rl implements tabular off-policy Q-learning with an ε-greedy
// behaviour policy — the TD control algorithm (Sutton & Barto) that use
// case #4 of the paper runs inside a Mantis reaction to tune the DCTCP
// ECN marking threshold.
package rl

import (
	"fmt"
	"math/rand"
)

// Config parameterizes the learner.
type Config struct {
	// States and Actions size the Q table.
	States  int
	Actions int
	// Alpha is the learning rate, Gamma the discount factor.
	Alpha float64
	Gamma float64
	// Epsilon is the exploration probability; it decays by EpsilonDecay
	// (multiplicative) after each update, to a floor of MinEpsilon.
	Epsilon      float64
	EpsilonDecay float64
	MinEpsilon   float64
	Seed         int64
}

// DefaultConfig returns common hyperparameters.
func DefaultConfig(states, actions int) Config {
	return Config{
		States: states, Actions: actions,
		Alpha: 0.2, Gamma: 0.9,
		Epsilon: 0.3, EpsilonDecay: 0.999, MinEpsilon: 0.02,
		Seed: 1,
	}
}

// QLearner is a tabular Q-learning agent.
type QLearner struct {
	cfg Config
	q   [][]float64
	rng *rand.Rand
	// Updates counts TD updates applied.
	Updates uint64
}

// New builds a learner with a zero-initialized Q table.
func New(cfg Config) (*QLearner, error) {
	if cfg.States <= 0 || cfg.Actions <= 0 {
		return nil, fmt.Errorf("rl: need positive state/action counts, got %d/%d", cfg.States, cfg.Actions)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("rl: alpha %v out of (0,1]", cfg.Alpha)
	}
	if cfg.Gamma < 0 || cfg.Gamma > 1 {
		return nil, fmt.Errorf("rl: gamma %v out of [0,1]", cfg.Gamma)
	}
	q := make([][]float64, cfg.States)
	for i := range q {
		q[i] = make([]float64, cfg.Actions)
	}
	return &QLearner{cfg: cfg, q: q, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Q returns the current action-value estimate.
func (l *QLearner) Q(state, action int) float64 { return l.q[state][action] }

// Best returns the greedy action for a state (ties break toward the
// lowest index, deterministically).
func (l *QLearner) Best(state int) int {
	best, bestV := 0, l.q[state][0]
	for a := 1; a < l.cfg.Actions; a++ {
		if l.q[state][a] > bestV {
			best, bestV = a, l.q[state][a]
		}
	}
	return best
}

// Act picks an action ε-greedily.
func (l *QLearner) Act(state int) int {
	if l.rng.Float64() < l.cfg.Epsilon {
		return l.rng.Intn(l.cfg.Actions)
	}
	return l.Best(state)
}

// Update applies one TD(0) control update for the transition
// (s, a, r, s') and decays ε.
func (l *QLearner) Update(s, a int, r float64, s2 int) {
	maxNext := l.q[s2][l.Best(s2)]
	l.q[s][a] += l.cfg.Alpha * (r + l.cfg.Gamma*maxNext - l.q[s][a])
	l.Updates++
	if l.cfg.Epsilon > l.cfg.MinEpsilon {
		l.cfg.Epsilon *= l.cfg.EpsilonDecay
		if l.cfg.Epsilon < l.cfg.MinEpsilon {
			l.cfg.Epsilon = l.cfg.MinEpsilon
		}
	}
}

// Epsilon returns the current exploration rate.
func (l *QLearner) Epsilon() float64 { return l.cfg.Epsilon }
