package netsim

import (
	"testing"
	"time"

	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

var testFM = FieldMap{
	Src: "ipv4.srcAddr", Dst: "ipv4.dstAddr", Proto: "ipv4.protocol",
	Seq: "tcp.seq", Ack: "tcp.ack", IsAck: "tcp.isAck",
}

// routerProgram forwards by exact destination address.
func routerProgram(t testing.TB) *p4.Program {
	t.Helper()
	p := p4.NewProgram("router")
	p.DefineStandardMetadata()
	p.Schema.Define("ipv4.srcAddr", 32)
	dst := p.Schema.Define("ipv4.dstAddr", 32)
	p.Schema.Define("ipv4.protocol", 8)
	p.Schema.Define("tcp.seq", 32)
	p.Schema.Define("tcp.ack", 32)
	p.Schema.Define("tcp.isAck", 1)
	egr := p.Schema.MustID(p4.FieldEgressSpec)
	p.AddAction(&p4.Action{
		Name:   "fwd",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	p.AddAction(&p4.Action{Name: "toss", Body: []p4.Primitive{p4.Drop{}}})
	p.AddTable(&p4.Table{
		Name:          "route",
		Keys:          []p4.MatchKey{{FieldName: "ipv4.dstAddr", Field: dst, Width: 32, Kind: p4.MatchExact}},
		ActionNames:   []string{"fwd", "toss"},
		DefaultAction: &p4.ActionCall{Action: "toss"},
		Size:          64,
	})
	p.Ingress = []p4.ControlStmt{p4.Apply{Table: "route"}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

type netRig struct {
	sim *sim.Simulator
	sw  *rmt.Switch
	net *Network
}

func buildNet(t testing.TB, cfg rmt.Config) *netRig {
	t.Helper()
	s := sim.New(1)
	sw, err := rmt.New(s, routerProgram(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := New(s, sw, 25e9, time.Microsecond)
	return &netRig{sim: s, sw: sw, net: n}
}

func (r *netRig) route(t testing.TB, addr uint32, port int) {
	t.Helper()
	if _, err := r.sw.AddEntry("route", rmt.Entry{
		Keys: []rmt.KeySpec{rmt.ExactKey(uint64(addr))}, Action: "fwd", Data: []uint64{uint64(port)},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHostSendDelivery(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	var deliveredAt sim.Time
	b.Rx = func(pkt *packet.Packet) { deliveredAt = r.sim.Now() }
	pkt := r.sw.Program().Schema.New()
	pkt.Size = 1500
	pkt.SetName("ipv4.dstAddr", 2)
	a.Send(pkt)
	r.sim.Run()
	if deliveredAt == 0 {
		t.Fatal("packet not delivered")
	}
	// uplink ser (480ns) + prop (1µs) + pipeline (400ns) + egress ser
	// (480ns) + prop (1µs) ≈ 3.36µs
	if deliveredAt < sim.Time(3*time.Microsecond) || deliveredAt > sim.Time(4*time.Microsecond) {
		t.Fatalf("delivered at %v", deliveredAt)
	}
}

func TestHostLinkSerializes(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	var times []sim.Time
	b.Rx = func(pkt *packet.Packet) { times = append(times, r.sim.Now()) }
	for i := 0; i < 3; i++ {
		pkt := r.sw.Program().Schema.New()
		pkt.Size = 1500
		pkt.SetName("ipv4.dstAddr", 2)
		a.Send(pkt)
	}
	r.sim.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	// Back-to-back 1500B at 25Gbps: 480ns spacing.
	if gap < sim.Time(400*time.Nanosecond) || gap > sim.Time(600*time.Nanosecond) {
		t.Fatalf("inter-arrival %v", time.Duration(gap))
	}
}

func TestFlooderRate(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	f := NewFlooder(a, r.sw.Program().Schema, testFM, 2, 10e9, 1500)
	f.Start()
	r.sim.RunFor(time.Millisecond)
	f.Stop()
	// 10 Gbps of 1500B packets = ~833 packets/ms.
	if f.Sent < 750 || f.Sent > 900 {
		t.Fatalf("flooder sent %d packets in 1ms", f.Sent)
	}
}

func TestHeartbeater(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	sink := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	got := 0
	sink.Rx = func(pkt *packet.Packet) {
		if pkt.GetName("ipv4.protocol") == 0xFD {
			got++
		}
	}
	hb := NewHeartbeater(a, r.sw.Program().Schema, testFM, 2, time.Microsecond)
	hb.Start()
	r.sim.RunFor(100 * time.Microsecond)
	if hb.Sent < 95 || hb.Sent > 105 {
		t.Fatalf("sent %d heartbeats in 100µs at T_s=1µs", hb.Sent)
	}
	if got < 90 {
		t.Fatalf("delivered %d heartbeats", got)
	}
	// Gray failure: generator alive, signal gone. Let in-flight packets
	// drain before snapshotting.
	hb.Enabled = false
	r.sim.RunFor(10 * time.Microsecond)
	before := got
	r.sim.RunFor(50 * time.Microsecond)
	if got != before {
		t.Fatal("heartbeats delivered after gray failure")
	}
	hb.Stop()
}

// wireFlow connects Rx handlers so data reaches the receiver flow logic
// and ACKs reach the sender.
func wireFlow(sender, receiver *Host) {
	dispatch := func(h *Host) func(*packet.Packet) {
		return func(pkt *packet.Packet) {
			if f, ok := pkt.Payload.(*TCPFlow); ok {
				f.HandlePacket(pkt, h)
			}
		}
	}
	sender.Rx = dispatch(sender)
	receiver.Rx = dispatch(receiver)
}

func TestTCPTransfersAndGrows(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	r.route(t, 1, 0)
	wireFlow(a, b)
	flow := NewTCPFlow(a, r.sw.Program().Schema, testFM, 2, DefaultTCPConfig())
	flow.Start()
	r.sim.RunFor(2 * time.Millisecond)
	flow.Stop()
	if flow.DeliveredBytes == 0 {
		t.Fatal("no bytes delivered")
	}
	// Clean path: no retransmissions, window grew past initial.
	if flow.Retransmits != 0 {
		t.Fatalf("retransmits = %d on loss-free path", flow.Retransmits)
	}
	if flow.Cwnd() <= DefaultTCPConfig().InitialCwnd {
		t.Fatalf("cwnd = %v never grew", flow.Cwnd())
	}
	// Goodput should be a decent share of the 25 Gbps path over 2ms.
	gbps := float64(flow.DeliveredBytes*8) / (2e-3) / 1e9
	if gbps < 5 {
		t.Fatalf("goodput = %.1f Gbps, want > 5", gbps)
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	cfg := rmt.DefaultConfig()
	cfg.QueueCapacity = 16
	r := buildNet(t, cfg)
	// Bottleneck: 1 Gbps egress to the receiver.
	r.sw.SetPortBandwidth(1, 1e9)
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	r.route(t, 1, 0)
	wireFlow(a, b)
	tcpCfg := DefaultTCPConfig()
	flow := NewTCPFlow(a, r.sw.Program().Schema, testFM, 2, tcpCfg)
	flow.Start()
	r.sim.RunFor(20 * time.Millisecond)
	flow.Stop()
	if r.sw.Stats().QueueDrops == 0 {
		t.Fatal("no queue drops despite 25:1 over-subscription")
	}
	if flow.Retransmits == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	// Delivery continues at roughly the bottleneck rate: 1 Gbps over
	// 20ms = 2.5 MB; expect a decent fraction.
	if flow.DeliveredBytes < 1_000_000 {
		t.Fatalf("delivered %d bytes, want ~2.5MB area", flow.DeliveredBytes)
	}
}

func TestTwoTCPFlowsShare(t *testing.T) {
	cfg := rmt.DefaultConfig()
	cfg.QueueCapacity = 32
	r := buildNet(t, cfg)
	r.sw.SetPortBandwidth(2, 1e9)
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	dst := r.net.AddHost(2, 3)
	r.route(t, 3, 2)
	r.route(t, 1, 0)
	r.route(t, 2, 1)
	wireFlow(a, dst)
	// dst.Rx dispatches on payload, so both flows work through it; b
	// also needs ACK dispatch.
	b.Rx = a.Rx
	f1 := NewTCPFlow(a, r.sw.Program().Schema, testFM, 3, DefaultTCPConfig())
	f2 := NewTCPFlow(b, r.sw.Program().Schema, testFM, 3, DefaultTCPConfig())
	f1.Start()
	f2.Start()
	r.sim.RunFor(20 * time.Millisecond)
	if f1.DeliveredBytes == 0 || f2.DeliveredBytes == 0 {
		t.Fatalf("flows starved: %d / %d", f1.DeliveredBytes, f2.DeliveredBytes)
	}
	ratio := float64(f1.DeliveredBytes) / float64(f2.DeliveredBytes)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("unfair split: %d vs %d", f1.DeliveredBytes, f2.DeliveredBytes)
	}
}

// TestFloodStarvesThenRecovery is a miniature Fig. 15: a UDP flood
// collapses TCP goodput; once the flood stops, TCP recovers.
func TestFloodStarvesThenRecovery(t *testing.T) {
	cfg := rmt.DefaultConfig()
	cfg.QueueCapacity = 64
	r := buildNet(t, cfg)
	r.sw.SetPortBandwidth(2, 1e9) // 1 Gbps bottleneck
	a := r.net.AddHost(0, 1)
	atk := r.net.AddHost(1, 9)
	dst := r.net.AddHost(2, 3)
	r.route(t, 3, 2)
	r.route(t, 1, 0)
	r.route(t, 9, 1)
	wireFlow(a, dst)
	flow := NewTCPFlow(a, r.sw.Program().Schema, testFM, 3, DefaultTCPConfig())
	flow.Start()

	flood := NewFlooder(atk, r.sw.Program().Schema, testFM, 3, 20e9, 1500)
	r.sim.RunFor(5 * time.Millisecond)
	preFlood := flow.DeliveredBytes
	flood.Start()
	r.sim.RunFor(5 * time.Millisecond)
	duringFlood := flow.DeliveredBytes - preFlood
	flood.Stop()
	r.sim.RunFor(10 * time.Millisecond)
	postFlood := flow.DeliveredBytes - preFlood - duringFlood

	if duringFlood*5 > preFlood {
		t.Fatalf("flood did not suppress TCP: pre=%d during=%d", preFlood, duringFlood)
	}
	if postFlood < preFlood/2 {
		t.Fatalf("TCP did not recover: pre=%d (5ms) post=%d (10ms)", preFlood, postFlood)
	}
}

// dctcpRig builds a 1 Gbps bottleneck with ECN marking above a queue
// depth of 8.
func dctcpRig(t *testing.T, useDCTCP bool) (*sim.Simulator, *rmt.Switch, *TCPFlow) {
	t.Helper()
	prog := routerProgram(t)
	ecn := prog.Schema.Define("ipv4.ecn", 1)
	qd := prog.Schema.MustID(p4.FieldEnqQdepth)
	prog.AddAction(&p4.Action{Name: "mark", Body: []p4.Primitive{
		p4.ModifyField{Dst: ecn, DstName: "ipv4.ecn", Src: p4.ConstOp(1)},
	}})
	prog.AddTable(&p4.Table{
		Name:          "marker",
		ActionNames:   []string{"mark"},
		DefaultAction: &p4.ActionCall{Action: "mark"},
		Size:          1,
	})
	prog.Egress = []p4.ControlStmt{
		p4.If{
			Cond: p4.CondExpr{Left: p4.FieldOp(qd, p4.FieldEnqQdepth), Op: p4.CmpGT, Right: p4.ConstOp(8)},
			Then: []p4.ControlStmt{p4.Apply{Table: "marker"}},
		},
	}
	s := sim.New(1)
	cfg := rmt.DefaultConfig()
	cfg.QueueCapacity = 128
	sw, err := rmt.New(s, prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw.SetPortBandwidth(1, 1e9)
	n := New(s, sw, 25e9, time.Microsecond)
	r := &netRig{sim: s, sw: sw, net: n}
	a := n.AddHost(0, 1)
	b := n.AddHost(1, 2)
	r.route(t, 2, 1)
	r.route(t, 1, 0)
	wireFlow(a, b)
	fm := testFM
	fm.ECN = "ipv4.ecn"
	tcfg := DefaultTCPConfig()
	tcfg.DCTCP = useDCTCP
	flow := NewTCPFlow(a, sw.Program().Schema, fm, 2, tcfg)
	flow.Start()
	return s, sw, flow
}

// TestDCTCPRespondsToMarks: with the switch marking ECN above a queue
// threshold, a DCTCP flow reacts to marks and loses far fewer packets
// than a loss-driven TCP on the same path.
func TestDCTCPRespondsToMarks(t *testing.T) {
	s, sw, flow := dctcpRig(t, true)
	s.RunFor(20 * time.Millisecond)
	if flow.MarkedAcks == 0 {
		t.Fatal("no ECN-marked ACKs observed")
	}
	if flow.DCTCPAlpha() <= 0 {
		t.Fatal("DCTCP alpha never moved")
	}
	if flow.DeliveredBytes < 1_000_000 {
		t.Fatalf("delivered %d bytes", flow.DeliveredBytes)
	}
	// The DCTCP signature: steady-state queues hover near the marking
	// threshold instead of filling the buffer like loss-driven TCP.
	sampleDepth := func(s *sim.Simulator, sw *rmt.Switch) float64 {
		sum, n := 0, 0
		tk := s.Every(100*time.Microsecond, func() {
			sum += sw.QueueDepth(1)
			n++
		})
		s.RunFor(20 * time.Millisecond)
		tk.Stop()
		return float64(sum) / float64(n)
	}
	dctcpDepth := sampleDepth(s, sw)

	s2, sw2, flow2 := dctcpRig(t, false)
	s2.RunFor(20 * time.Millisecond) // warmup, same as DCTCP run
	plainDepth := sampleDepth(s2, sw2)
	if flow2.DeliveredBytes < 1_000_000 {
		t.Fatalf("plain TCP delivered %d bytes", flow2.DeliveredBytes)
	}
	if dctcpDepth >= plainDepth/2 {
		t.Fatalf("steady-state queue: DCTCP %.1f vs plain %.1f packets; marking should keep queues short", dctcpDepth, plainDepth)
	}
}
