package netsim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Trunk is a point-to-point inter-switch link: it joins one egress port
// of switch A to one ingress port of switch B (and vice versa), so a
// packet routed out a trunk port is injected into the peer switch after
// the trunk's propagation delay. Trunks are what turn a set of
// single-switch Networks into a fabric.
//
// Serialization is already modeled by the sending switch's egress port
// (SetPortBandwidth), so a trunk adds only propagation delay plus its
// fault profile. Of faults.LinkProfile, a packet trunk honors Loss,
// Jitter, and partition windows; Dup and Reorder are message-channel
// faults and are ignored (switch egress already serializes packets in
// order, and wire duplication is not a failure mode the fabric
// experiments model).
//
// Only wire state crosses a trunk. A delivered packet is re-serialized
// into the receiving switch's schema: declared header fields carry
// over by position, while switch-local scratch (standard_metadata.*
// and compiler-synthesized p4r_meta_.* fields) is dropped and
// re-stamped by the receiver — exactly as a real wire would behave.
// ConnectTrunk therefore requires the two programs' wire headers to
// match (see WireCompatible) but tolerates differing scratch layouts,
// letting switches compiled from different P4R programs peer.
type Trunk struct {
	sim   *sim.Simulator
	delay time.Duration
	prof  faults.LinkProfile
	rng   *rand.Rand

	// forced cuts the trunk in both directions regardless of profile.
	forced bool
	// admin is an administrative down — the "link pulled" failure mode,
	// distinct from a transient partition so drop accounting can tell
	// operator action from fault-profile behavior.
	admin bool
	// grayRate is the silent partial-drop probability of a gray link
	// (0 = healthy). It composes with the profile's Loss: a packet must
	// survive both draws to cross.
	grayRate float64

	ends  [2]trunkEnd
	stats [2]TrunkStats
	// wire[side] re-serializes packets sent from side into the peer
	// switch's schema.
	wire [2]wireXlat

	// Tap, if set, observes every delivered packet at its arrival
	// instant, just before injection into the receiving switch. from is
	// the sending side (0 or 1). Experiments use it to meter what a
	// trunk actually carries.
	Tap func(from int, pkt *packet.Packet)
}

type trunkEnd struct {
	net  *Network
	port int
}

// TrunkStats counts one direction of a trunk, indexed by sending side.
type TrunkStats struct {
	Sent           uint64
	Delivered      uint64
	Lost           uint64
	PartitionDrops uint64
	// AdminDownDrops counts packets dropped while the trunk was
	// administratively down (SetAdminDown); GrayDrops those silently
	// eaten by a gray link (SetGray). Lost stays profile-loss only, so
	// the three drop reasons are separable in reports.
	AdminDownDrops uint64
	GrayDrops      uint64
}

// ConnectTrunk joins a's portA to b's portB over a bidirectional trunk
// with the given one-way propagation delay and fault profile. Both
// networks must share one simulator, and each endpoint port must not
// already hold a host or another trunk. The seed gives the trunk its
// own fault RNG so loss schedules are independent per link.
func ConnectTrunk(a *Network, portA int, b *Network, portB int, delay time.Duration, prof faults.LinkProfile, seed int64) (*Trunk, error) {
	if a.Sim != b.Sim {
		return nil, fmt.Errorf("netsim: trunk endpoints on different simulators")
	}
	for _, e := range []trunkEnd{{a, portA}, {b, portB}} {
		if e.net.hosts[e.port] != nil {
			return nil, fmt.Errorf("netsim: port %d already has a host", e.port)
		}
		if e.net.trunks[e.port] != nil {
			return nil, fmt.Errorf("netsim: port %d already has a trunk", e.port)
		}
	}
	sa, sb := a.Sw.Program().Schema, b.Sw.Program().Schema
	if err := WireCompatible(sa, sb); err != nil {
		return nil, err
	}
	t := &Trunk{
		sim:   a.Sim,
		delay: delay,
		prof:  prof,
		rng:   rand.New(rand.NewSource(seed)),
		ends:  [2]trunkEnd{{a, portA}, {b, portB}},
		wire:  [2]wireXlat{newWireXlat(sa, sb), newWireXlat(sb, sa)},
	}
	a.trunks[portA] = &trunkAttach{trunk: t, side: 0}
	b.trunks[portB] = &trunkAttach{trunk: t, side: 1}
	return t, nil
}

// trunkAttach records which side of a trunk a local port is.
type trunkAttach struct {
	trunk *Trunk
	side  int
}

// Delay returns the trunk's one-way propagation delay.
func (t *Trunk) Delay() time.Duration { return t.delay }

// SetPartitioned forces the trunk down (both directions) or restores it.
func (t *Trunk) SetPartitioned(down bool) { t.forced = down }

// SetAdminDown takes the trunk administratively down (both directions)
// or brings it back up. Unlike SetPartitioned it is accounted as its
// own drop reason — the injected-failure counterpart of a partition.
func (t *Trunk) SetAdminDown(down bool) { t.admin = down }

// AdminDown reports whether the trunk is administratively down.
func (t *Trunk) AdminDown() bool { return t.admin }

// SetGray turns the trunk gray: every packet in either direction is
// silently dropped with probability rate, on top of (and independent
// of) the profile's Loss. rate <= 0 restores a healthy link; rate is
// clamped to [0, 1]. Gray drops draw from the trunk's own fault RNG,
// so schedules replay deterministically per (seed, rate) history.
func (t *Trunk) SetGray(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.grayRate = rate
}

// GrayRate returns the current gray drop probability (0 = healthy).
func (t *Trunk) GrayRate() float64 { return t.grayRate }

// Stats returns the counters for the direction sending from side.
func (t *Trunk) Stats(side int) TrunkStats { return t.stats[side] }

// End returns the (network, port) of side.
func (t *Trunk) End(side int) (*Network, int) { return t.ends[side].net, t.ends[side].port }

// Inject transmits pkt from side as if the local switch had routed it
// out the trunk port — the hook for link-level probe traffic (BFD-style
// liveness heartbeats emitted by the port hardware rather than the
// forwarding pipeline). The packet must already be in side's schema; it
// rides the same fault path as routed traffic, so probes see exactly
// the drops data packets would.
func (t *Trunk) Inject(side int, pkt *packet.Packet) { t.send(side, pkt) }

// send carries pkt from side toward its peer, applying the fault
// profile. Called from the sending switch's Tx path.
func (t *Trunk) send(side int, pkt *packet.Packet) {
	st := &t.stats[side]
	st.Sent++
	now := t.sim.Now()
	if t.admin {
		st.AdminDownDrops++
		return
	}
	if t.forced || t.prof.Partitioned(now) {
		st.PartitionDrops++
		return
	}
	if t.grayRate > 0 && t.rng.Float64() < t.grayRate {
		st.GrayDrops++
		return
	}
	if t.prof.Loss > 0 && t.rng.Float64() < t.prof.Loss {
		st.Lost++
		return
	}
	d := t.delay
	if t.prof.Jitter > 0 {
		d += time.Duration(t.rng.Int63n(int64(t.prof.Jitter)))
	}
	peer := t.ends[1-side]
	t.sim.Schedule(d, func() {
		st.Delivered++
		out := t.wire[side].translate(pkt)
		if t.Tap != nil {
			t.Tap(side, out)
		}
		peer.net.Sw.Inject(peer.port, out)
	})
}

// ---- wire translation ----

// WireCompatible reports whether packets serialized by schema a can
// cross a trunk onto a switch using schema b: both must declare the
// same sequence of wire header fields (same names, same widths, same
// order — the on-the-wire layout). Switch-local scratch — fields under
// p4.StdMetadataPrefix or p4.MetadataPrefix — is excluded: it never
// crosses the wire and each switch re-stamps its own.
func WireCompatible(a, b *packet.Schema) error {
	wa, wb := wireFieldIDs(a), wireFieldIDs(b)
	if len(wa) != len(wb) {
		return fmt.Errorf("netsim: wire headers diverge: %d fields vs %d", len(wa), len(wb))
	}
	for i := range wa {
		an, bn := a.Name(wa[i]), b.Name(wb[i])
		aw, bw := a.Width(wa[i]), b.Width(wb[i])
		if an != bn || aw != bw {
			return fmt.Errorf("netsim: wire headers diverge at slot %d: %s:%d vs %s:%d", i, an, aw, bn, bw)
		}
	}
	return nil
}

// wireFieldIDs lists a schema's wire fields in declaration order.
func wireFieldIDs(s *packet.Schema) []packet.FieldID {
	var out []packet.FieldID
	for i := 0; i < s.NumFields(); i++ {
		id := packet.FieldID(i)
		name := s.Name(id)
		if strings.HasPrefix(name, p4.StdMetadataPrefix) || strings.HasPrefix(name, p4.MetadataPrefix) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// wireXlat re-serializes packets from one schema into another whose
// wire fields match (checked by WireCompatible at trunk setup).
type wireXlat struct {
	dst   *packet.Schema
	pairs [][2]packet.FieldID // src id → dst id, wire fields only
}

func newWireXlat(src, dst *packet.Schema) wireXlat {
	sa, da := wireFieldIDs(src), wireFieldIDs(dst)
	x := wireXlat{dst: dst, pairs: make([][2]packet.FieldID, len(sa))}
	for i := range sa {
		x.pairs[i] = [2]packet.FieldID{sa[i], da[i]}
	}
	return x
}

// translate builds the receiving switch's view of pkt: a fresh packet
// in the destination schema carrying the wire fields plus the
// simulator bookkeeping that models payload (Size, Priority, Payload).
// Scratch metadata starts zeroed and the receiver's ingress re-stamps
// it.
func (x wireXlat) translate(pkt *packet.Packet) *packet.Packet {
	out := x.dst.New()
	out.Size = pkt.Size
	out.Priority = pkt.Priority
	out.Payload = pkt.Payload
	for _, pr := range x.pairs {
		out.Set(pr[1], pkt.Get(pr[0]))
	}
	return out
}
