package netsim

import (
	"math/rand"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Link is a bidirectional point-to-point message channel on the virtual
// clock — the control-path counterpart of the data-plane host links
// above. It carries opaque byte messages (the ctlchan codec's frames)
// between two endpoints, sides A and B, and perturbs them per a
// faults.LinkProfile: loss, duplication, reordering, delivery jitter,
// and partition windows.
//
// Fault decisions draw from the link's own seeded RNG, independent of
// the simulator's stream, so a (profile, seed) pair replays the exact
// delivery schedule. Partitions are evaluated at both the send and the
// arrival instant: a message in flight when the window opens is lost
// with the partition, while a message held back by reordering past the
// heal is delivered — the reorder-across-heal case the transport layer
// must survive.
type Link struct {
	sim   *sim.Simulator
	delay time.Duration
	prof  faults.LinkProfile
	rng   *rand.Rand

	// recv[side] consumes messages arriving at that side.
	recv [2]func(msg []byte)
	// forced is the manual partition override (SetPartitioned), OR-ed
	// with the profile's periodic windows.
	forced bool
	// peerDown[side] marks that side's endpoint dead (crashed process,
	// not a cut wire): messages toward it vanish, and transports can ask
	// PeerDown to tell "peer crashed" from "link partitioned".
	peerDown [2]bool

	stats LinkStats
}

// LinkSideA and LinkSideB name the two endpoints of a Link.
const (
	LinkSideA = 0
	LinkSideB = 1
)

// LinkStats counts per-link message outcomes (both directions).
type LinkStats struct {
	// Sent counts Send calls.
	Sent uint64
	// Delivered counts messages handed to a receiver (duplicates count
	// each delivery).
	Delivered uint64
	// Lost counts messages dropped by the loss probability.
	Lost uint64
	// PartitionDrops counts messages dropped by a partition, at send or
	// arrival time.
	PartitionDrops uint64
	// Duplicated counts messages scheduled for a second delivery.
	Duplicated uint64
	// Reordered counts messages held back by the reorder delay.
	Reordered uint64
	// PeerDownDrops counts messages dropped because the destination
	// endpoint was marked dead (SetPeerDown), at send or arrival time.
	PeerDownDrops uint64
}

// NewLink creates a message link with the given one-way base delay and
// fault profile. The delay is clamped to at least 1ns: two events at
// the same instant would make delivery order depend on scheduling
// internals.
func NewLink(s *sim.Simulator, delay time.Duration, prof faults.LinkProfile, seed int64) *Link {
	if delay <= 0 {
		delay = time.Nanosecond
	}
	return &Link{sim: s, delay: delay, prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// SetRecv installs the receive callback of one side. Messages sent from
// the opposite side are delivered to it; messages arriving at a side
// with no receiver are dropped silently (counted as delivered — the
// wire did its job).
func (l *Link) SetRecv(side int, fn func(msg []byte)) { l.recv[side] = fn }

// Profile returns the link's fault profile.
func (l *Link) Profile() faults.LinkProfile { return l.prof }

// SetProfile swaps the fault profile at runtime — the chaos harness's
// way of letting a prologue install over a clean wire before faults
// start (the message-channel analogue of faults.Injector.SetEnabled).
// Messages already scheduled keep their original delivery times; only
// future sends (and the partition check at their arrival) see the new
// profile.
func (l *Link) SetProfile(prof faults.LinkProfile) { l.prof = prof }

// Delay returns the one-way base delay.
func (l *Link) Delay() time.Duration { return l.delay }

// MaxDelay bounds how long after Send a copy of the message can still
// arrive (base delay plus the profile's jitter, reorder, and duplicate
// skew). Reliability layers that abandon an un-acked mutation must wait
// this long before assuming no stale copy remains in flight.
func (l *Link) MaxDelay() time.Duration { return l.delay + l.prof.MaxSkew() }

// SetPartitioned forces the link down (or back up) regardless of the
// profile's periodic windows — the test hook for explicit partition
// scenarios.
func (l *Link) SetPartitioned(down bool) { l.forced = down }

// Partitioned reports whether the link is cut right now (forced or
// periodic).
func (l *Link) Partitioned() bool {
	return l.forced || l.prof.Partitioned(l.sim.Now())
}

// SetPeerDown marks one side's endpoint dead or alive. While a side is
// down, messages destined for it are dropped (at send and at arrival,
// so in-flight messages die too) — the wire itself stays up, which is
// what distinguishes a crashed peer from a partition.
func (l *Link) SetPeerDown(side int, down bool) { l.peerDown[side] = down }

// PeerDown reports whether side's endpoint is marked dead.
func (l *Link) PeerDown(side int) bool { return l.peerDown[side] }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Send transmits msg from one side toward the other. The message is
// copied at send time, so the caller may reuse its buffer; each
// delivery hands the receiver its own copy. Zero-length messages are
// legal and travel like any other.
func (l *Link) Send(from int, msg []byte) {
	l.stats.Sent++
	if l.peerDown[1-from] {
		l.stats.PeerDownDrops++
		return
	}
	if l.Partitioned() {
		l.stats.PartitionDrops++
		return
	}
	if l.prof.Loss > 0 && l.rng.Float64() < l.prof.Loss {
		l.stats.Lost++
		return
	}
	to := 1 - from
	d := l.delay
	if l.prof.Jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(l.prof.Jitter)))
	}
	if l.prof.Reorder > 0 && l.prof.ReorderDelay > 0 && l.rng.Float64() < l.prof.Reorder {
		l.stats.Reordered++
		d += time.Duration(l.rng.Int63n(int64(l.prof.ReorderDelay)))
	}
	held := append([]byte(nil), msg...)
	l.sim.Schedule(d, func() { l.arrive(to, held) })
	if l.prof.Dup > 0 && l.rng.Float64() < l.prof.Dup {
		l.stats.Duplicated++
		dd := d
		if l.prof.DupDelay > 0 {
			dd += time.Duration(l.rng.Int63n(int64(l.prof.DupDelay)))
		}
		l.sim.Schedule(dd, func() { l.arrive(to, append([]byte(nil), held...)) })
	}
}

// arrive completes one delivery attempt: a message landing inside a
// partition window dies with it.
func (l *Link) arrive(to int, msg []byte) {
	if l.peerDown[to] {
		l.stats.PeerDownDrops++
		return
	}
	if l.Partitioned() {
		l.stats.PartitionDrops++
		return
	}
	l.stats.Delivered++
	if fn := l.recv[to]; fn != nil {
		fn(msg)
	}
}
