package netsim

import (
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TCPConfig tunes the compact TCP implementation.
type TCPConfig struct {
	// MSS is the data segment size in bytes.
	MSS int
	// InitialCwnd is the initial window in segments.
	InitialCwnd float64
	// RTO is the retransmission timeout.
	RTO time.Duration
	// AckSize is the ACK segment wire size.
	AckSize int
	// MaxCwnd caps the window (segments).
	MaxCwnd float64
	// DCTCP enables ECN-reaction: the sender maintains the DCTCP alpha
	// estimate of the marked fraction and cuts cwnd by alpha/2 once per
	// window. Requires FieldMap.ECN.
	DCTCP bool
	// DCTCPGain is the EWMA gain g for alpha (default 1/16).
	DCTCPGain float64
	// PacedRate, when positive, caps the flow's send rate (bits/s) —
	// an application-limited flow, used to model the Fig. 15 benign
	// senders that together hold the bottleneck at 20%.
	PacedRate float64
}

// DefaultTCPConfig returns datacenter-ish parameters: in a network with
// ~10 µs RTTs an RTO of 1 ms plays the role of the real-world min-RTO.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{MSS: 1500, InitialCwnd: 10, RTO: time.Millisecond, AckSize: 64, MaxCwnd: 256}
}

// TCPFlow is a one-directional TCP-like flow between two hosts through
// the switch: slow start, AIMD congestion avoidance, NewReno-style
// fast retransmit/fast recovery with partial-ACK retransmission, and
// RTO fallback. Sequence numbers count segments, not bytes.
type TCPFlow struct {
	cfg    TCPConfig
	sender *Host
	fm     FieldMap
	schema *packet.Schema
	dst    uint32

	nextSeq    uint64 // next new segment to send
	highestAck uint64 // all segments < highestAck are delivered
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	// NewReno recovery state: while inRecovery, partial ACKs below
	// recoverSeq trigger immediate hole retransmission.
	inRecovery   bool
	recoverSeq   uint64
	lastProgress sim.Time
	stopped      bool

	// DCTCP state
	dctcpAlpha   float64
	windowAcked  float64
	windowMarked float64
	// MarkedAcks counts ECN-echo ACKs observed (diagnostics).
	MarkedAcks uint64

	// pacing state
	nextSendAt  sim.Time
	pumpPending bool

	// receiver state
	rcvNext uint64          // next expected seq
	rcvBuf  map[uint64]bool // out-of-order segments

	// DeliveredBytes counts in-order data accepted by the receiver.
	DeliveredBytes uint64
	// Retransmits counts loss-recovery sends.
	Retransmits uint64
	// Timeouts counts RTO firings.
	Timeouts uint64
	// OnDeliver, if set, observes each in-order delivery.
	OnDeliver func(at sim.Time, bytes int)
}

// NewTCPFlow wires a flow from sender toward dst. Data packets carry
// the flow in Payload; endpoints dispatch via HandlePacket.
func NewTCPFlow(sender *Host, schema *packet.Schema, fm FieldMap, dst uint32, cfg TCPConfig) *TCPFlow {
	if cfg.DCTCPGain == 0 {
		cfg.DCTCPGain = 1.0 / 16
	}
	return &TCPFlow{
		cfg: cfg, sender: sender, fm: fm, schema: schema, dst: dst,
		cwnd: cfg.InitialCwnd, ssthresh: cfg.MaxCwnd,
		rcvBuf: make(map[uint64]bool),
	}
}

// Start opens the flow and sends the initial window.
func (f *TCPFlow) Start() {
	f.lastProgress = f.sender.net.Sim.Now()
	f.armRTO()
	f.pump()
}

// Stop halts the flow (no new data).
func (f *TCPFlow) Stop() { f.stopped = true }

// outstanding is the un-ACKed segment count.
func (f *TCPFlow) outstanding() float64 { return float64(f.nextSeq - f.highestAck) }

func (f *TCPFlow) sendSegment(seq uint64, retx bool) {
	pkt := f.schema.New()
	pkt.Size = f.cfg.MSS
	pkt.SetName(f.fm.Src, uint64(f.sender.Addr))
	pkt.SetName(f.fm.Dst, uint64(f.dst))
	pkt.SetName(f.fm.Proto, ProtoTCP)
	pkt.SetName(f.fm.Seq, seq)
	pkt.SetName(f.fm.IsAck, 0)
	pkt.Payload = f
	if retx {
		f.Retransmits++
	}
	f.sender.Send(pkt)
}

// pump sends new segments while the window (and pacing budget) allows.
func (f *TCPFlow) pump() {
	if f.stopped {
		return
	}
	if f.cfg.PacedRate <= 0 {
		for f.outstanding() < f.cwnd {
			f.sendSegment(f.nextSeq, false)
			f.nextSeq++
		}
		return
	}
	now := f.sender.net.Sim.Now()
	interval := time.Duration(float64(f.cfg.MSS*8) / f.cfg.PacedRate * float64(time.Second))
	for f.outstanding() < f.cwnd {
		if f.nextSendAt > now {
			// Pacing-blocked with window open: resume at the token time.
			if !f.pumpPending {
				f.pumpPending = true
				f.sender.net.Sim.At(f.nextSendAt, func() {
					f.pumpPending = false
					f.pump()
				})
			}
			return
		}
		f.sendSegment(f.nextSeq, false)
		f.nextSeq++
		// Allow up to a small burst of accumulated credit so that late
		// pumps (ACK-clocked) do not permanently lose rate; without the
		// floor the paced rate decays over time.
		if floor := now.Add(-4 * interval); f.nextSendAt < floor {
			f.nextSendAt = floor
		}
		f.nextSendAt = f.nextSendAt.Add(interval)
	}
}

func (f *TCPFlow) armRTO() {
	asOf := f.lastProgress
	f.sender.net.Sim.Schedule(f.cfg.RTO, func() { f.checkRTO(asOf) })
}

func (f *TCPFlow) checkRTO(asOf sim.Time) {
	if f.stopped {
		return
	}
	if f.lastProgress > asOf || f.outstanding() == 0 {
		f.armRTO()
		return
	}
	// Timeout: collapse to slow start and retransmit the hole.
	f.Timeouts++
	f.ssthresh = f.cwnd / 2
	if f.ssthresh < 2 {
		f.ssthresh = 2
	}
	f.cwnd = 1
	f.dupAcks = 0
	// Enter recovery so that partial ACKs retransmit subsequent holes at
	// RTT (not RTO) cadence — without this, a loss burst with many holes
	// would cost one RTO per hole.
	f.inRecovery = true
	f.recoverSeq = f.nextSeq
	f.lastProgress = f.sender.net.Sim.Now()
	f.sendSegment(f.highestAck, true)
	f.armRTO()
}

// HandlePacket processes a packet belonging to this flow at either
// endpoint: the receiving host for data, the sending host for ACKs.
func (f *TCPFlow) HandlePacket(pkt *packet.Packet, receiver *Host) {
	if pkt.GetName(f.fm.IsAck) == 1 {
		marked := f.fm.ECN != "" && pkt.GetName(f.fm.ECN) == 1
		f.onAck(pkt.GetName(f.fm.Ack), marked)
		return
	}
	f.onData(pkt, receiver)
}

func (f *TCPFlow) onData(pkt *packet.Packet, receiver *Host) {
	seq := pkt.GetName(f.fm.Seq)
	if seq == f.rcvNext {
		f.deliver(receiver)
		f.rcvNext++
		for f.rcvBuf[f.rcvNext] {
			delete(f.rcvBuf, f.rcvNext)
			f.deliver(receiver)
			f.rcvNext++
		}
	} else if seq > f.rcvNext {
		f.rcvBuf[seq] = true
	}
	// Cumulative ACK (a duplicate ACK when data arrived out of order).
	ack := f.schema.New()
	ack.Size = f.cfg.AckSize
	ack.SetName(f.fm.Src, uint64(f.dst))
	ack.SetName(f.fm.Dst, uint64(f.sender.Addr))
	ack.SetName(f.fm.Proto, ProtoTCP)
	ack.SetName(f.fm.IsAck, 1)
	ack.SetName(f.fm.Ack, f.rcvNext)
	if f.fm.ECN != "" {
		// Echo the congestion-experienced mark back to the sender.
		ack.SetName(f.fm.ECN, pkt.GetName(f.fm.ECN))
	}
	ack.Payload = f
	receiver.Send(ack)
}

func (f *TCPFlow) deliver(receiver *Host) {
	f.DeliveredBytes += uint64(f.cfg.MSS)
	if f.OnDeliver != nil {
		f.OnDeliver(receiver.net.Sim.Now(), f.cfg.MSS)
	}
}

func (f *TCPFlow) onAck(ack uint64, marked bool) {
	if f.stopped {
		return
	}
	if marked {
		f.MarkedAcks++
	}
	switch {
	case ack > f.highestAck:
		newly := float64(ack - f.highestAck)
		f.highestAck = ack
		f.lastProgress = f.sender.net.Sim.Now()
		if f.cfg.DCTCP {
			f.dctcpWindow(newly, marked)
		}
		if f.inRecovery {
			if ack < f.recoverSeq {
				// Partial ACK: another hole was lost; retransmit it now
				// (NewReno) without leaving recovery.
				f.sendSegment(f.highestAck, true)
				f.pump()
				return
			}
			f.inRecovery = false
			f.cwnd = f.ssthresh
		}
		f.dupAcks = 0
		if f.cwnd < f.ssthresh {
			f.cwnd += newly // slow start
		} else {
			f.cwnd += newly / f.cwnd // congestion avoidance
		}
		if f.cwnd > f.cfg.MaxCwnd {
			f.cwnd = f.cfg.MaxCwnd
		}
		f.pump()
	case ack == f.highestAck && f.outstanding() > 0:
		f.dupAcks++
		if f.dupAcks == 3 && !f.inRecovery {
			// Fast retransmit, enter recovery.
			f.ssthresh = f.cwnd / 2
			if f.ssthresh < 2 {
				f.ssthresh = 2
			}
			f.cwnd = f.ssthresh
			f.inRecovery = true
			f.recoverSeq = f.nextSeq
			f.lastProgress = f.sender.net.Sim.Now()
			f.sendSegment(f.highestAck, true)
		} else if f.inRecovery {
			// Window inflation keeps the pipe full during recovery.
			if f.cwnd < f.cfg.MaxCwnd {
				f.cwnd++
			}
			f.pump()
		}
	}
}

// dctcpWindow accumulates per-window mark statistics and applies the
// DCTCP cut cwnd *= (1 - alpha/2) once per window of ACKed data.
func (f *TCPFlow) dctcpWindow(newly float64, marked bool) {
	f.windowAcked += newly
	if marked {
		f.windowMarked += newly
	}
	if f.windowAcked < f.cwnd {
		return
	}
	frac := f.windowMarked / f.windowAcked
	g := f.cfg.DCTCPGain
	f.dctcpAlpha = (1-g)*f.dctcpAlpha + g*frac
	if frac > 0 {
		f.cwnd *= 1 - f.dctcpAlpha/2
		if f.cwnd < 2 {
			f.cwnd = 2
		}
		// A mark episode ends slow start, as in real DCTCP: growth past
		// this point is additive, so the alpha/2 cuts can hold the queue
		// at the marking threshold.
		if f.ssthresh > f.cwnd {
			f.ssthresh = f.cwnd
		}
	}
	f.windowAcked, f.windowMarked = 0, 0
}

// DCTCPAlpha exposes the running marked-fraction estimate.
func (f *TCPFlow) DCTCPAlpha() float64 { return f.dctcpAlpha }

// Cwnd exposes the current congestion window (segments).
func (f *TCPFlow) Cwnd() float64 { return f.cwnd }
