package netsim

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// ---- Message link ----

func TestLinkDeliversOwnedCopies(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, time.Microsecond, faults.LinkNone(), 7)
	var got [][]byte
	l.SetRecv(LinkSideB, func(msg []byte) { got = append(got, msg) })

	buf := []byte{1, 2, 3}
	l.Send(LinkSideA, buf)
	buf[0] = 99 // caller reuses its buffer; the wire must have copied
	l.Send(LinkSideA, []byte{})
	l.Send(LinkSideA, nil)
	s.RunFor(10 * time.Microsecond)

	if len(got) != 3 {
		t.Fatalf("delivered %d messages, want 3", len(got))
	}
	if got[0][0] != 1 {
		t.Fatalf("delivery aliases the sender's buffer: got %v", got[0])
	}
	// Zero-length messages are legal and travel like any other.
	if len(got[1]) != 0 || len(got[2]) != 0 {
		t.Fatalf("zero-length messages mangled: %v, %v", got[1], got[2])
	}
	st := l.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkLossAndDupAccounting(t *testing.T) {
	s := sim.New(1)
	prof := faults.LinkProfile{Name: "test", Loss: 0.3, Dup: 0.3, DupDelay: time.Microsecond}
	l := NewLink(s, time.Microsecond, prof, 42)
	delivered := 0
	l.SetRecv(LinkSideB, func([]byte) { delivered++ })
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send(LinkSideA, []byte{byte(i)})
	}
	s.RunFor(time.Millisecond)
	st := l.Stats()
	if st.Sent != n {
		t.Fatalf("Sent = %d, want %d", st.Sent, n)
	}
	if st.Lost == 0 || st.Duplicated == 0 {
		t.Fatalf("faults never fired: %+v", st)
	}
	// Every send is either lost or delivered; duplicates add deliveries.
	if st.Delivered != uint64(delivered) || st.Delivered != st.Sent-st.Lost+st.Duplicated {
		t.Fatalf("accounting broken: %+v, receiver saw %d", st, delivered)
	}
}

func TestLinkPeriodicPartitionWindows(t *testing.T) {
	s := sim.New(1)
	prof := faults.LinkProfile{Name: "part", PartitionEvery: 100 * time.Microsecond, PartitionFor: 50 * time.Microsecond}
	l := NewLink(s, time.Microsecond, prof, 1)
	delivered := 0
	l.SetRecv(LinkSideB, func([]byte) { delivered++ })

	// t=10µs: link up; t=120µs: inside the [100,150) window.
	s.Schedule(10*time.Microsecond, func() {
		if l.Partitioned() {
			t.Error("link partitioned during up window")
		}
		l.Send(LinkSideA, []byte{1})
	})
	s.Schedule(120*time.Microsecond, func() {
		if !l.Partitioned() {
			t.Error("link up inside partition window")
		}
		l.Send(LinkSideA, []byte{2})
	})
	s.RunFor(200 * time.Microsecond)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (partition send dropped)", delivered)
	}
	if st := l.Stats(); st.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", st.PartitionDrops)
	}
}

// TestLinkPartitionEdges pins the two delivery rules around a partition
// window: a message already in flight when the window opens dies at
// arrival time, while a message whose (reorder-delayed) arrival lands
// after the heal is delivered — the reorder-across-heal case the
// transport must survive.
func TestLinkPartitionEdges(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 10*time.Microsecond, faults.LinkNone(), 1)
	var got []byte
	l.SetRecv(LinkSideB, func(msg []byte) { got = append(got, msg[0]) })

	// Message "a": in flight when the window opens, due to arrive inside
	// it — dies with the partition.
	l.Send(LinkSideA, []byte{'a'})                                    // arrives t=10µs
	s.Schedule(5*time.Microsecond, func() { l.SetPartitioned(true) }) // window opens t=5µs
	s.Schedule(12*time.Microsecond, func() { l.SetPartitioned(false) })

	// Message "c": the window opens AND heals while it is in flight; its
	// arrival lands after the heal — delivered. This is the
	// reorder-across-heal shape: the wire held the message over a whole
	// partition window, and the transport above must cope with its
	// arrival as if nothing happened.
	s.Schedule(40*time.Microsecond, func() { l.Send(LinkSideA, []byte{'c'}) }) // arrives t=50µs
	s.Schedule(42*time.Microsecond, func() { l.SetPartitioned(true) })
	s.Schedule(48*time.Microsecond, func() { l.SetPartitioned(false) })

	s.RunFor(100 * time.Microsecond)
	if string(got) != "c" {
		t.Fatalf("delivered %q, want only %q", got, "c")
	}
	if st := l.Stats(); st.PartitionDrops != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want 1 partition drop and 1 delivery", st)
	}
}

// TestLinkPeerDown pins the dead-endpoint mode: messages toward a down
// side die at send time, in-flight messages die at arrival, traffic the
// other way is untouched, and the wire itself never reports partitioned.
func TestLinkPeerDown(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, 10*time.Microsecond, faults.LinkNone(), 1)
	var toB, toA int
	l.SetRecv(LinkSideB, func([]byte) { toB++ })
	l.SetRecv(LinkSideA, func([]byte) { toA++ })

	// In flight toward B when B dies at t=5µs: dies at arrival.
	l.Send(LinkSideA, []byte{1})
	s.Schedule(5*time.Microsecond, func() { l.SetPeerDown(LinkSideB, true) })
	// Sent toward the dead B: dies at send.
	s.Schedule(20*time.Microsecond, func() { l.Send(LinkSideA, []byte{2}) })
	// The reverse direction still works — B's process is dead but A's is
	// not, and in this model a dead side going quiet is the transport's
	// job, not the wire's; the wire only kills what lands on the corpse.
	s.Schedule(20*time.Microsecond, func() { l.Send(LinkSideB, []byte{3}) })
	s.Schedule(40*time.Microsecond, func() {
		if l.Partitioned() {
			t.Error("peer-down must not read as a partition")
		}
		if !l.PeerDown(LinkSideB) || l.PeerDown(LinkSideA) {
			t.Error("PeerDown sides wrong")
		}
		l.SetPeerDown(LinkSideB, false)
		l.Send(LinkSideA, []byte{4})
	})
	s.RunFor(100 * time.Microsecond)
	if toB != 1 || toA != 1 {
		t.Fatalf("delivered toB=%d toA=%d, want 1 and 1", toB, toA)
	}
	if st := l.Stats(); st.PeerDownDrops != 2 || st.PartitionDrops != 0 {
		t.Fatalf("stats = %+v, want 2 peer-down drops, no partition drops", st)
	}
}

func TestLinkMaxDelayBoundsArrivals(t *testing.T) {
	s := sim.New(1)
	prof := faults.LinkProfile{
		Name: "skewed",
		Dup:  0.5, DupDelay: 3 * time.Microsecond,
		Reorder: 0.5, ReorderDelay: 2 * time.Microsecond,
		Jitter: time.Microsecond,
	}
	l := NewLink(s, time.Microsecond, prof, 99)
	if want := 7 * time.Microsecond; l.MaxDelay() != want {
		t.Fatalf("MaxDelay = %v, want %v", l.MaxDelay(), want)
	}
	var lastArrival sim.Time
	l.SetRecv(LinkSideB, func([]byte) { lastArrival = s.Now() })
	var lastSend sim.Time
	for i := 0; i < 500; i++ {
		at := time.Duration(i) * 10 * time.Microsecond
		s.Schedule(at, func() {
			l.Send(LinkSideA, []byte{1})
		})
	}
	lastSend = sim.Time(0).Add(499 * 10 * time.Microsecond)
	s.RunFor(6 * time.Millisecond)
	if lastArrival > lastSend.Add(l.MaxDelay()) {
		t.Fatalf("arrival at %v exceeds send %v + MaxDelay %v", lastArrival, lastSend, l.MaxDelay())
	}
	// Every copy of every message must respect the bound; spot-check via
	// stats that dup/reorder actually exercised the skew paths.
	st := l.Stats()
	if st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("skew paths never exercised: %+v", st)
	}
}

// ---- TCP receiver edges ----
//
// These drive TCPFlow's receiver path directly with hand-crafted
// segments, pinning the edge cases an unreliable wire produces: the
// same segment arriving twice (retransmission raced the original), a
// hole filled only after later segments buffered (reordering across a
// partition heal), and frames that are not flow traffic at all.

// tcpEdgeRig builds a sender/receiver pair with ACKs routed back to the
// sender host, whose Rx records cumulative ACK values instead of
// feeding the congestion machinery.
func tcpEdgeRig(t *testing.T) (*netRig, *TCPFlow, *Host, *[]uint64) {
	t.Helper()
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	r.route(t, 1, 0)
	flow := NewTCPFlow(a, r.sw.Program().Schema, testFM, 2, DefaultTCPConfig())
	flow.Stop() // receiver-only: keep the sender machinery quiet
	acks := new([]uint64)
	a.Rx = func(pkt *packet.Packet) {
		if pkt.GetName(testFM.IsAck) == 1 {
			*acks = append(*acks, pkt.GetName(testFM.Ack))
		}
	}
	return r, flow, b, acks
}

func (r *netRig) dataSegment(f *TCPFlow, seq uint64) *packet.Packet {
	pkt := r.sw.Program().Schema.New()
	pkt.Size = f.cfg.MSS
	pkt.SetName(testFM.Src, 2)
	pkt.SetName(testFM.Dst, 1)
	pkt.SetName(testFM.Proto, ProtoTCP)
	pkt.SetName(testFM.Seq, seq)
	pkt.SetName(testFM.IsAck, 0)
	pkt.Payload = f
	return pkt
}

// TestTCPDuplicateAfterRetransmit: a retransmission whose original was
// merely delayed means the receiver sees the same segment twice. The
// duplicate must not double-count delivered bytes, and both copies must
// be re-ACKed so the sender's cumulative state converges.
func TestTCPDuplicateAfterRetransmit(t *testing.T) {
	r, flow, b, acks := tcpEdgeRig(t)
	flow.HandlePacket(r.dataSegment(flow, 0), b)
	flow.HandlePacket(r.dataSegment(flow, 0), b) // the late original
	r.sim.RunFor(time.Millisecond)

	if want := uint64(flow.cfg.MSS); flow.DeliveredBytes != want {
		t.Fatalf("DeliveredBytes = %d, want %d (duplicate must not double-count)", flow.DeliveredBytes, want)
	}
	if len(*acks) != 2 || (*acks)[0] != 1 || (*acks)[1] != 1 {
		t.Fatalf("acks = %v, want [1 1] (duplicate still re-ACKed)", *acks)
	}
	if flow.rcvNext != 1 || len(flow.rcvBuf) != 0 {
		t.Fatalf("receiver state rcvNext=%d buf=%v", flow.rcvNext, flow.rcvBuf)
	}
}

// TestTCPReorderAcrossHeal: segments 1 and 2 arrive while segment 0 is
// stuck behind a partition; when the heal finally delivers 0, the whole
// run drains in order and the cumulative ACK jumps straight to 3.
func TestTCPReorderAcrossHeal(t *testing.T) {
	r, flow, b, acks := tcpEdgeRig(t)
	var order []uint64
	flow.OnDeliver = func(sim.Time, int) { order = append(order, flow.rcvNext) }

	flow.HandlePacket(r.dataSegment(flow, 1), b)
	flow.HandlePacket(r.dataSegment(flow, 2), b)
	if flow.DeliveredBytes != 0 {
		t.Fatalf("delivered %d bytes before the hole filled", flow.DeliveredBytes)
	}
	flow.HandlePacket(r.dataSegment(flow, 0), b) // the heal
	r.sim.RunFor(time.Millisecond)

	if want := uint64(3 * flow.cfg.MSS); flow.DeliveredBytes != want {
		t.Fatalf("DeliveredBytes = %d, want %d", flow.DeliveredBytes, want)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("delivery order = %v, want [0 1 2]", order)
	}
	// Two dup ACKs at 0 while buffering, then the jump to 3.
	if len(*acks) != 3 || (*acks)[0] != 0 || (*acks)[1] != 0 || (*acks)[2] != 3 {
		t.Fatalf("acks = %v, want [0 0 3]", *acks)
	}
	if len(flow.rcvBuf) != 0 {
		t.Fatalf("rcvBuf not drained: %v", flow.rcvBuf)
	}
}

// TestTCPIgnoresForeignTraffic: frames without a flow payload pass
// through a wireFlow'd host untouched — no crash, no state change.
func TestTCPIgnoresForeignTraffic(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	b := r.net.AddHost(1, 2)
	r.route(t, 2, 1)
	r.route(t, 1, 0)
	wireFlow(a, b)
	flow := NewTCPFlow(a, r.sw.Program().Schema, testFM, 2, DefaultTCPConfig())

	pkt := r.sw.Program().Schema.New()
	pkt.Size = 64
	pkt.SetName(testFM.Dst, 2)
	pkt.SetName(testFM.Seq, 5) // looks like data, but carries no flow
	a.Send(pkt)
	r.sim.RunFor(time.Millisecond)
	if flow.DeliveredBytes != 0 || flow.rcvNext != 0 {
		t.Fatalf("foreign packet mutated flow state: bytes=%d rcvNext=%d", flow.DeliveredBytes, flow.rcvNext)
	}
}
