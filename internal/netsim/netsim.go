// Package netsim provides the network-level simulation around the
// switch model: hosts attached to switch ports over links with
// bandwidth and propagation delay, a compact TCP implementation (slow
// start, AIMD congestion avoidance, duplicate-ACK fast retransmit, RTO
// fallback), a constant-rate UDP flooder, and heartbeat generators.
//
// These stand in for the paper's testbed servers: Fig. 15's 250
// legitimate TCP senders plus a DPDK UDP blaster, and Fig. 16's
// heartbeat generators at T_s = 1 µs.
package netsim

import (
	"time"

	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// FieldMap names the schema fields netsim reads/writes on packets. The
// program under test defines these headers; netsim fills them.
type FieldMap struct {
	Src   string // e.g. "ipv4.srcAddr"
	Dst   string // e.g. "ipv4.dstAddr"
	Proto string // e.g. "ipv4.protocol"
	Seq   string // data sequence number
	Ack   string // cumulative ACK number
	IsAck string // 1 for ACK segments
	// ECN, if non-empty, is a 1-bit congestion-experienced field the
	// switch may set and the receiver echoes on ACKs (DCTCP-style).
	ECN string
}

// Protocol numbers used in traces.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Host is an endpoint attached to one switch port.
type Host struct {
	net  *Network
	Port int
	Addr uint32
	// Rx is invoked for every packet delivered to this host.
	Rx func(pkt *packet.Packet)
	// linkBusyUntil paces the host's uplink.
	linkBusyUntil sim.Time
}

// Network wires hosts to a switch.
type Network struct {
	Sim *sim.Simulator
	Sw  *rmt.Switch
	// LinkBandwidth is the host uplink rate in bits per second.
	LinkBandwidth float64
	// Propagation is the one-way link delay.
	Propagation time.Duration

	hosts  map[int]*Host        // by port
	trunks map[int]*trunkAttach // by port
	stats  NetworkStats
}

// NetworkStats counts network-level drop events.
type NetworkStats struct {
	// DroppedNoPeer counts packets the switch transmitted out a port
	// with neither a host nor a trunk attached. Such packets are a
	// wiring or routing mistake; they are dropped and counted, never
	// silently lost.
	DroppedNoPeer uint64
}

// New wires a network around sw. It takes over sw.Tx: a transmitted
// packet is delivered to the host on the egress port, carried over the
// trunk attached there to a peer switch, or — with neither — dropped
// and counted in Stats().DroppedNoPeer.
func New(s *sim.Simulator, sw *rmt.Switch, linkBW float64, prop time.Duration) *Network {
	n := &Network{
		Sim: s, Sw: sw, LinkBandwidth: linkBW, Propagation: prop,
		hosts:  make(map[int]*Host),
		trunks: make(map[int]*trunkAttach),
	}
	sw.Tx = func(portN int, pkt *packet.Packet) {
		if h, ok := n.hosts[portN]; ok {
			if h.Rx != nil {
				s.Schedule(prop, func() { h.Rx(pkt) })
			}
			return
		}
		if ta, ok := n.trunks[portN]; ok {
			ta.trunk.send(ta.side, pkt)
			return
		}
		n.stats.DroppedNoPeer++
	}
	return n
}

// Stats returns the network's drop counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// AddHost attaches a host to a switch port.
func (n *Network) AddHost(port int, addr uint32) *Host {
	h := &Host{net: n, Port: port, Addr: addr}
	n.hosts[port] = h
	return h
}

// Host returns the host on a port, or nil.
func (n *Network) Host(port int) *Host { return n.hosts[port] }

// Send transmits a packet from the host into the switch, modeling
// uplink serialization and propagation. Sends queue behind each other
// on the host's link.
func (h *Host) Send(pkt *packet.Packet) {
	now := h.net.Sim.Now()
	start := now
	if h.linkBusyUntil > start {
		start = h.linkBusyUntil
	}
	ser := time.Duration(float64(pkt.Size*8) / h.net.LinkBandwidth * float64(time.Second))
	if ser <= 0 {
		ser = time.Nanosecond
	}
	done := start.Add(ser)
	h.linkBusyUntil = done
	arrive := done.Add(h.net.Propagation)
	h.net.Sim.At(arrive, func() { h.net.Sw.Inject(h.Port, pkt) })
}

// ---- UDP flooder ----

// Flooder blasts fixed-size UDP packets at a constant rate, the
// DPDK-blaster stand-in of Fig. 15.
type Flooder struct {
	host   *Host
	fm     FieldMap
	schema *packet.Schema
	Dst    uint32
	Rate   float64 // bits per second
	Size   int
	ticker *sim.Ticker
	Sent   uint64
}

// NewFlooder creates a flooder on h targeting dst at rate bps.
func NewFlooder(h *Host, schema *packet.Schema, fm FieldMap, dst uint32, rate float64, size int) *Flooder {
	return &Flooder{host: h, fm: fm, schema: schema, Dst: dst, Rate: rate, Size: size}
}

// Start begins flooding at the configured rate.
func (f *Flooder) Start() {
	interval := time.Duration(float64(f.Size*8) / f.Rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	f.ticker = f.host.net.Sim.Every(interval, func() {
		pkt := f.schema.New()
		pkt.Size = f.Size
		pkt.SetName(f.fm.Src, uint64(f.host.Addr))
		pkt.SetName(f.fm.Dst, uint64(f.Dst))
		pkt.SetName(f.fm.Proto, ProtoUDP)
		f.host.Send(pkt)
		f.Sent++
	})
}

// Stop halts the flood.
func (f *Flooder) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
	}
}

// ---- Heartbeats ----

// Heartbeater emits small, high-priority heartbeat packets every
// period — the gray-failure detector's signal source (§8.3.2).
type Heartbeater struct {
	host   *Host
	schema *packet.Schema
	fm     FieldMap
	Dst    uint32
	Period time.Duration
	ticker *sim.Ticker
	Sent   uint64
	// Enabled gates emission; clearing it emulates a gray failure where
	// the link stays up but traffic silently dies.
	Enabled bool
}

// NewHeartbeater creates a heartbeat source on h.
func NewHeartbeater(h *Host, schema *packet.Schema, fm FieldMap, dst uint32, period time.Duration) *Heartbeater {
	return &Heartbeater{host: h, schema: schema, fm: fm, Dst: dst, Period: period, Enabled: true}
}

// Start begins emitting heartbeats.
func (hb *Heartbeater) Start() {
	hb.ticker = hb.host.net.Sim.Every(hb.Period, func() {
		if !hb.Enabled {
			return
		}
		pkt := hb.schema.New()
		pkt.Size = 64
		pkt.Priority = 7
		pkt.SetName(hb.fm.Src, uint64(hb.host.Addr))
		pkt.SetName(hb.fm.Dst, uint64(hb.Dst))
		pkt.SetName(hb.fm.Proto, 0xFD) // heartbeat protocol tag
		hb.host.Send(pkt)
		hb.Sent++
	})
}

// Stop halts the generator entirely.
func (hb *Heartbeater) Stop() {
	if hb.ticker != nil {
		hb.ticker.Stop()
	}
}
