package netsim

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// chainRig is a linear chain of switches: host a on the first switch,
// host b on the last, trunks in between.
//
//	a -- sw0 ==trunk0== sw1 ==trunk1== sw2 -- b
type chainRig struct {
	sim    *sim.Simulator
	nets   []*Network
	trunks []*Trunk
	a, b   *Host
}

const (
	chainDstAddr = 99
	chainSrcAddr = 1
)

// buildChain wires n switches in a line on one simulator. Trunk i gets
// delay delays[i] and profile profs[i]. Downlink port on each switch is
// even-numbered: a sits on sw0 port 0, b on the last switch port 2.
func buildChain(t testing.TB, delays []time.Duration, profs []faults.LinkProfile) *chainRig {
	t.Helper()
	n := len(delays) + 1
	s := sim.New(1)
	r := &chainRig{sim: s}
	for i := 0; i < n; i++ {
		sw, err := rmt.New(s, routerProgram(t), rmt.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r.nets = append(r.nets, New(s, sw, 25e9, time.Microsecond))
	}
	for i := 0; i < n-1; i++ {
		// Uplink toward the tail is port 10, the downlink from the
		// previous switch lands on port 11.
		tr, err := ConnectTrunk(r.nets[i], 10, r.nets[i+1], 11, delays[i], profs[i], int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		r.trunks = append(r.trunks, tr)
	}
	// Route dst through every switch: intermediate hops forward out the
	// trunk port, the tail delivers to the host port.
	for i, net := range r.nets {
		port := 10
		if i == n-1 {
			port = 2
		}
		if _, err := net.Sw.AddEntry("route", rmt.Entry{
			Keys: []rmt.KeySpec{rmt.ExactKey(chainDstAddr)}, Action: "fwd", Data: []uint64{uint64(port)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.a = r.nets[0].AddHost(0, chainSrcAddr)
	r.b = r.nets[n-1].AddHost(2, chainDstAddr)
	return r
}

func (r *chainRig) sendSeq(seq uint64) {
	pkt := r.nets[0].Sw.Program().Schema.New()
	pkt.Size = 200
	pkt.SetName(testFM.Src, chainSrcAddr)
	pkt.SetName(testFM.Dst, chainDstAddr)
	pkt.SetName(testFM.Seq, seq)
	r.a.Send(pkt)
}

// TestDroppedNoPeer pins satellite 1: a packet routed out a port with
// neither host nor trunk is dropped and counted, never lost silently.
func TestDroppedNoPeer(t *testing.T) {
	r := buildNet(t, rmt.DefaultConfig())
	a := r.net.AddHost(0, 1)
	r.route(t, 7, 5) // port 5 has no host and no trunk
	pkt := r.sw.Program().Schema.New()
	pkt.Size = 100
	pkt.SetName(testFM.Src, 1)
	pkt.SetName(testFM.Dst, 7)
	a.Send(pkt)
	r.sim.RunFor(time.Millisecond)
	if got := r.net.Stats().DroppedNoPeer; got != 1 {
		t.Fatalf("DroppedNoPeer = %d, want 1", got)
	}
}

// TestTrunkEndpointConflicts pins ConnectTrunk's wiring checks.
func TestTrunkEndpointConflicts(t *testing.T) {
	s := sim.New(1)
	swA, _ := rmt.New(s, routerProgram(t), rmt.DefaultConfig())
	swB, _ := rmt.New(s, routerProgram(t), rmt.DefaultConfig())
	a, b := New(s, swA, 25e9, time.Microsecond), New(s, swB, 25e9, time.Microsecond)
	a.AddHost(3, 1)
	if _, err := ConnectTrunk(a, 3, b, 0, time.Microsecond, faults.LinkNone(), 1); err == nil {
		t.Fatal("trunk on a host port: want error")
	}
	if _, err := ConnectTrunk(a, 4, b, 0, time.Microsecond, faults.LinkNone(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectTrunk(a, 4, b, 1, time.Microsecond, faults.LinkNone(), 1); err == nil {
		t.Fatal("second trunk on one port: want error")
	}
	other := sim.New(2)
	swC, _ := rmt.New(other, routerProgram(t), rmt.DefaultConfig())
	c := New(other, swC, 25e9, time.Microsecond)
	if _, err := ConnectTrunk(a, 5, c, 0, time.Microsecond, faults.LinkNone(), 1); err == nil {
		t.Fatal("trunk across simulators: want error")
	}
}

// TestChainDelayAccumulates pins that each hop's propagation delay
// lands on the sim clock: the same send through the same 3-switch chain
// arrives later by exactly the sum of the trunk delays.
func TestChainDelayAccumulates(t *testing.T) {
	arrivalWith := func(d1, d2 time.Duration) sim.Time {
		r := buildChain(t, []time.Duration{d1, d2}, []faults.LinkProfile{faults.LinkNone(), faults.LinkNone()})
		var at sim.Time
		r.b.Rx = func(pkt *packet.Packet) { at = r.sim.Now() }
		r.sendSeq(1)
		r.sim.RunFor(10 * time.Millisecond)
		if at == 0 {
			t.Fatal("packet never arrived")
		}
		return at
	}
	base := arrivalWith(0, 0)
	d1, d2 := 5*time.Microsecond, 9*time.Microsecond
	got := arrivalWith(d1, d2)
	if want := base.Add(d1 + d2); got != want {
		t.Fatalf("arrival with %v+%v trunk delay = %v, want %v (base %v)", d1, d2, got, want, base)
	}
}

// TestChainFIFOPerLink pins that a trunk preserves send order when its
// delay is uniform: packets injected back-to-back arrive in sequence
// after two hops.
func TestChainFIFOPerLink(t *testing.T) {
	r := buildChain(t, []time.Duration{5 * time.Microsecond, 5 * time.Microsecond},
		[]faults.LinkProfile{faults.LinkNone(), faults.LinkNone()})
	var got []uint64
	r.b.Rx = func(pkt *packet.Packet) { got = append(got, pkt.GetName(testFM.Seq)) }
	const n = 20
	for i := uint64(1); i <= n; i++ {
		r.sendSeq(i)
	}
	r.sim.RunFor(10 * time.Millisecond)
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("position %d: seq %d, want %d (FIFO violated)", i, seq, i+1)
		}
	}
}

// TestTrunkAdminDown pins the administrative down/up cycle: packets
// sent while the trunk is down are counted as AdminDownDrops (not Lost
// or PartitionDrops), and delivery resumes after SetAdminDown(false).
func TestTrunkAdminDown(t *testing.T) {
	r := buildChain(t, []time.Duration{5 * time.Microsecond},
		[]faults.LinkProfile{faults.LinkNone()})
	delivered := 0
	r.b.Rx = func(pkt *packet.Packet) { delivered++ }

	r.trunks[0].SetAdminDown(true)
	if !r.trunks[0].AdminDown() {
		t.Fatal("AdminDown() = false after SetAdminDown(true)")
	}
	const down = 10
	for i := uint64(1); i <= down; i++ {
		r.sendSeq(i)
	}
	r.sim.RunFor(time.Millisecond)
	st := r.trunks[0].Stats(0)
	if st.AdminDownDrops != down || st.Lost != 0 || st.PartitionDrops != 0 || delivered != 0 {
		t.Fatalf("down window: stats %+v delivered %d, want %d admin drops only", st, delivered, down)
	}

	r.trunks[0].SetAdminDown(false)
	const up = 5
	for i := uint64(1); i <= up; i++ {
		r.sendSeq(i)
	}
	r.sim.RunFor(time.Millisecond)
	st = r.trunks[0].Stats(0)
	if st.AdminDownDrops != down || st.Delivered != up || delivered != up {
		t.Fatalf("after restore: stats %+v delivered %d, want %d delivered", st, delivered, up)
	}
}

// TestTrunkGrayComposesWithLoss pins gray-mode accounting: gray drops
// are partial, counted separately from profile loss, and SetGray(0)
// heals the link completely.
func TestTrunkGrayComposesWithLoss(t *testing.T) {
	lossy := faults.LinkProfile{Name: "lossy", Loss: 0.2}
	r := buildChain(t, []time.Duration{5 * time.Microsecond},
		[]faults.LinkProfile{lossy})
	delivered := 0
	r.b.Rx = func(pkt *packet.Packet) { delivered++ }

	r.trunks[0].SetGray(0.5)
	const n = 400
	for i := uint64(1); i <= n; i++ {
		r.sendSeq(i)
	}
	r.sim.RunFor(10 * time.Millisecond)
	st := r.trunks[0].Stats(0)
	if st.GrayDrops == 0 || st.GrayDrops == n {
		t.Fatalf("GrayDrops = %d of %d, want partial silent drop", st.GrayDrops, n)
	}
	if st.Lost == 0 {
		t.Fatalf("Lost = 0, want profile loss composing with gray (stats %+v)", st)
	}
	if got := st.GrayDrops + st.Lost + st.Delivered; got != n {
		t.Fatalf("drop reasons don't partition sends: %d+%d+%d = %d, want %d",
			st.GrayDrops, st.Lost, st.Delivered, got, n)
	}
	// Gray rate ~0.5 of sends: bound it loosely to catch the rate being
	// applied to the wrong population.
	if st.GrayDrops < n/4 || st.GrayDrops > 3*n/4 {
		t.Fatalf("GrayDrops = %d of %d, want ~%d at rate 0.5", st.GrayDrops, n, n/2)
	}

	// Heal: no further gray drops.
	r.trunks[0].SetGray(0)
	before := st.GrayDrops
	for i := uint64(1); i <= 100; i++ {
		r.sendSeq(i)
	}
	r.sim.RunFor(10 * time.Millisecond)
	if st = r.trunks[0].Stats(0); st.GrayDrops != before {
		t.Fatalf("GrayDrops grew after heal: %d -> %d", before, st.GrayDrops)
	}
}

// TestChainLossIsolation pins that a lossy profile on one trunk leaves
// the other trunk untouched: traffic entering past the lossy hop is
// delivered in full, and everything surviving the lossy hop crosses the
// clean hop.
func TestChainLossIsolation(t *testing.T) {
	lossy := faults.LinkProfile{Name: "lossy", Loss: 0.5}
	r := buildChain(t, []time.Duration{5 * time.Microsecond, 5 * time.Microsecond},
		[]faults.LinkProfile{lossy, faults.LinkNone()})
	delivered := 0
	r.b.Rx = func(pkt *packet.Packet) { delivered++ }

	const n = 200
	for i := uint64(1); i <= n; i++ {
		r.sendSeq(i)
	}
	// A second source on the middle switch only crosses the clean trunk.
	mid := r.nets[1].AddHost(0, 50)
	sendMid := func() {
		pkt := r.nets[1].Sw.Program().Schema.New()
		pkt.Size = 200
		pkt.SetName(testFM.Src, 50)
		pkt.SetName(testFM.Dst, chainDstAddr)
		mid.Send(pkt)
	}
	const m = 50
	for i := 0; i < m; i++ {
		sendMid()
	}
	r.sim.RunFor(20 * time.Millisecond)

	s0, s1 := r.trunks[0].Stats(0), r.trunks[1].Stats(0)
	if s0.Lost == 0 || s0.Lost == s0.Sent {
		t.Fatalf("lossy trunk: Lost = %d of Sent = %d, want partial loss", s0.Lost, s0.Sent)
	}
	if s1.Lost != 0 {
		t.Fatalf("clean trunk lost %d packets, want 0", s1.Lost)
	}
	// Everything surviving trunk0 plus all mid-switch traffic crosses trunk1.
	if want := s0.Delivered + m; s1.Sent != want {
		t.Fatalf("clean trunk Sent = %d, want %d (trunk0 delivered %d + %d mid)", s1.Sent, want, s0.Delivered, m)
	}
	if want := int(s0.Delivered) + m; delivered != want {
		t.Fatalf("host received %d, want %d", delivered, want)
	}
}
