// Package lint is a small, dependency-free static-analysis framework
// for this repository's own Go invariants, in the spirit of
// golang.org/x/tools/go/analysis but built on the standard library
// only (go/ast, go/parser, go/token), so it works in hermetic builds
// with no module downloads.
//
// Analyzers are purely syntactic: they inspect parsed ASTs plus each
// file's import table, which is sufficient for the repo invariants they
// encode (sentinel wrapping, wall-clock bans, journal-before-mutate
// ordering). cmd/mantislint drives them either standalone or under
// `go vet -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Diagnostic is one finding, with a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by mantislint -list.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path. Analyzers are scoped: running them elsewhere would flag
	// legitimate code.
	Match func(importPath string) bool
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path (e.g. "repro/internal/core").
	Path string

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// TestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) TestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies one analyzer to a parsed package and returns its findings.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, path string) ([]Diagnostic, error) {
	if a.Match != nil && !a.Match(path) {
		return nil, nil
	}
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Path: path}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, path, err)
	}
	return pass.diags, nil
}

// All lists every analyzer mantislint ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{WrapcheckAnalyzer, SimclockAnalyzer, JournalIntentAnalyzer, DiagcodeAnalyzer}
}

// RunAll applies every analyzer whose Match accepts path.
func RunAll(fset *token.FileSet, files []*ast.File, path string) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range All() {
		ds, err := Run(a, fset, files, path)
		if err != nil {
			return nil, err
		}
		out = append(out, ds...)
	}
	return out, nil
}

// pathIn reports whether importPath is one of, or a sub-package of, the
// given package roots (full import paths, e.g. "repro/internal/core").
func pathIn(importPath string, roots ...string) bool {
	for _, r := range roots {
		if importPath == r || strings.HasPrefix(importPath, r+"/") {
			return true
		}
	}
	return false
}

// importLocal returns the identifier a file binds to the given import
// path ("" if the file does not import it). A dot or blank import
// returns "" as well — selector-based analyzers cannot see through
// those, and the repo does not use them.
func importLocal(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		// Default local name: the last path segment.
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// pkgCall matches a call of the form <local>.<name>(...) where local is
// the file-level binding of an imported package, returning the function
// name ("" if the call does not match).
func pkgCall(call *ast.CallExpr, local string) string {
	if local == "" {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != local {
		return ""
	}
	// A shadowed identifier (e.g. a local variable named rand) would
	// have a non-nil Obj resolved to the local declaration.
	if base.Obj != nil {
		return ""
	}
	return sel.Sel.Name
}

// calleeName returns the bare function or method name of a call:
// f(...) -> "f", x.f(...) -> "f".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
