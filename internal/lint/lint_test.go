package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestWrapcheck(t *testing.T) {
	linttest.Run(t, lint.WrapcheckAnalyzer, filepath.Join("testdata", "wrapcheck"), "repro/internal/driver")
}

func TestSimclock(t *testing.T) {
	linttest.Run(t, lint.SimclockAnalyzer, filepath.Join("testdata", "simclock"), "repro/internal/sim")
}

func TestJournalIntent(t *testing.T) {
	linttest.Run(t, lint.JournalIntentAnalyzer, filepath.Join("testdata", "journalintent"), "repro/internal/core")
}

func TestJournalIntentCtlchan(t *testing.T) {
	linttest.Run(t, lint.JournalIntentAnalyzer, filepath.Join("testdata", "journalintent_ctlchan"), "repro/internal/ctlchan")
}

func TestJournalIntentCtlplane(t *testing.T) {
	linttest.Run(t, lint.JournalIntentAnalyzer, filepath.Join("testdata", "journalintent_ctlplane"), "repro/internal/ctlplane")
}

func TestDiagcode(t *testing.T) {
	linttest.Run(t, lint.DiagcodeAnalyzer, filepath.Join("testdata", "diagcode"), "repro/internal/compiler/place")
}

// TestMatchScoping pins that analyzers stay out of packages they were
// not written for — running e.g. simclock on cmd/experiments would flag
// legitimate wall-clock use.
func TestMatchScoping(t *testing.T) {
	cases := []struct {
		path string
		want []string
	}{
		{"repro/internal/driver", []string{"wrapcheck"}},
		{"repro/internal/ctlplane", []string{"wrapcheck", "journalintent"}},
		{"repro/internal/faults", []string{"wrapcheck"}},
		{"repro/internal/sim", []string{"simclock"}},
		{"repro/internal/rmt", []string{"simclock"}},
		{"repro/internal/core", []string{"simclock", "journalintent"}},
		{"repro/internal/fabric", []string{"simclock"}},
		{"repro/internal/ctlchan", []string{"journalintent"}},
		{"repro/internal/compiler", []string{"diagcode"}},
		{"repro/internal/compiler/place", []string{"diagcode"}},
		{"repro/cmd/experiments", nil},
		{"repro/internal/corelike", nil},
	}
	for _, tc := range cases {
		var got []string
		for _, a := range lint.All() {
			if a.Match(tc.path) {
				got = append(got, a.Name)
			}
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: matched %v, want %v", tc.path, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: matched %v, want %v", tc.path, got, tc.want)
			}
		}
	}
}

// TestRepoClean runs every analyzer over the real repository packages —
// the same sweep CI performs via `go vet -vettool` — and requires zero
// findings. A regression here means new code broke one of the linted
// invariants (or an analyzer grew a false positive; fix whichever is
// wrong).
func TestRepoClean(t *testing.T) {
	root := filepath.Join("..", "..")
	dirs := map[string]bool{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "testdata" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) == ".go" {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		importPath := "repro"
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}

		fset := token.NewFileSet()
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		var files []*ast.File
		for _, path := range matches {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			files = append(files, f)
		}
		diags, err := lint.RunAll(fset, files, importPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("repo not lint-clean: %s", d)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("walked only %d package dirs; repo layout changed?", checked)
	}
}
