package lint

import (
	"go/ast"
	"go/token"
)

// JournalIntentAnalyzer enforces the crash-consistency discipline from
// the failover work (internal/core + internal/journal): within a
// function, the write-ahead intent record must be durably journaled
// BEFORE the driver mutation it covers. If the mutation comes first, a
// crash between the two leaves the switch changed with no intent on
// disk, and takeover reconciliation cannot classify — let alone roll
// back — the half-applied iteration.
//
// The check is intra-function and order-based: when a function body
// contains both an intent-journal write (journalBegin,
// journalCommitStaged, or a WriteIntent call) and a driver mutation,
// the first intent write must precede the first mutation in source
// order. Functions that only mutate (e.g. prologue setup or
// reconciliation replay, which checkpoint afterwards) are not flagged —
// the invariant binds the two together only where both occur.
//
// The mutation vocabulary is scoped per package subtree: internal/core
// mutates through its drv* wrappers; internal/ctlchan's mutation sites
// are the Channel mutation methods (client-side encode-and-send, and
// the server's execute path calling the same methods on the inner
// channel); internal/ctlplane mutates through the driver submission
// ring. The bare Channel names are registered only for ctlchan and
// ctlplane — applying them to core would flag its own legitimate call
// sites.
//
// The ring submit API (internal/driver.Ring) splits submission into
// staging and execution: Reserve and the Set* encoders are pure host
// memory and impose no ordering, while Flush is the doorbell that
// applies every staged descriptor to the switch. Flush is therefore
// the mutation verb — an intent journaled after Reserve but before
// Flush still covers the crash window.
var JournalIntentAnalyzer = &Analyzer{
	Name: "journalintent",
	Doc:  "journal intent writes in internal/core, internal/ctlchan, and internal/ctlplane must precede the driver mutations they cover",
	Match: func(p string) bool {
		return pathIn(p, "repro/internal/core", "repro/internal/ctlchan", "repro/internal/ctlplane")
	},
	Run: runJournalIntent,
}

// intentWriters durably record what is about to be done.
var intentWriters = map[string]bool{
	"journalBegin": true, "journalCommitStaged": true, "WriteIntent": true,
}

// driverMutators maps a package subtree to its switch-mutating entry
// points. "Flush" (the ring doorbell) appears in every vocabulary that
// may submit through a ring; the staging half of the ring API
// (Reserve/Set*) deliberately does not.
var driverMutators = map[string]map[string]bool{
	"repro/internal/core": {
		"drvAddEntry": true, "drvModifyEntry": true, "drvDeleteEntry": true,
		"drvSetDefaultAction": true, "drvSetHashSeed": true,
		"Flush": true,
	},
	"repro/internal/ctlchan": {
		"AddEntry": true, "ModifyEntry": true, "DeleteEntry": true,
		"SetDefaultAction": true, "SetHashSeed": true, "RegWrite": true,
		"Flush": true,
	},
	"repro/internal/ctlplane": {
		"AddEntry": true, "ModifyEntry": true, "DeleteEntry": true,
		"SetDefaultAction": true, "SetHashSeed": true, "RegWrite": true,
		"Flush": true,
	},
}

// mutatorsFor picks the vocabulary whose subtree contains path.
func mutatorsFor(path string) map[string]bool {
	for root, set := range driverMutators {
		if pathIn(path, root) {
			return set
		}
	}
	return nil
}

func runJournalIntent(pass *Pass) error {
	mutators := mutatorsFor(pass.Path)
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var firstIntent, firstMut token.Pos
			var mutName string
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				switch {
				case intentWriters[name]:
					if firstIntent == token.NoPos {
						firstIntent = call.Pos()
					}
				case mutators[name]:
					if firstMut == token.NoPos {
						firstMut = call.Pos()
						mutName = name
					}
				}
				return true
			})
			if firstIntent != token.NoPos && firstMut != token.NoPos && firstMut < firstIntent {
				pass.Reportf(firstMut,
					"%s: driver mutation %s precedes the intent journal write; a crash here is unrecoverable (journal the intent first)",
					fn.Name.Name, mutName)
			}
		}
	}
	return nil
}
