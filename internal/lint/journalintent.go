package lint

import (
	"go/ast"
	"go/token"
)

// JournalIntentAnalyzer enforces the crash-consistency discipline from
// the failover work (internal/core + internal/journal): within a
// function, the write-ahead intent record must be durably journaled
// BEFORE the driver mutation it covers. If the mutation comes first, a
// crash between the two leaves the switch changed with no intent on
// disk, and takeover reconciliation cannot classify — let alone roll
// back — the half-applied iteration.
//
// The check is intra-function and order-based: when a function body
// contains both an intent-journal write (journalBegin,
// journalCommitStaged, or a WriteIntent call) and a driver mutation
// (drvAddEntry, drvModifyEntry, drvDeleteEntry, drvSetDefaultAction,
// drvSetHashSeed), the first intent write must precede the first
// mutation in source order. Functions that only mutate (e.g. prologue
// setup or reconciliation replay, which checkpoint afterwards) are not
// flagged — the invariant binds the two together only where both occur.
var JournalIntentAnalyzer = &Analyzer{
	Name:  "journalintent",
	Doc:   "journal intent writes in internal/core must precede the driver mutations they cover",
	Match: func(p string) bool { return pathIn(p, "repro/internal/core") },
	Run:   runJournalIntent,
}

// intentWriters durably record what is about to be done.
var intentWriters = map[string]bool{
	"journalBegin": true, "journalCommitStaged": true, "WriteIntent": true,
}

// driverMutators are the core agent's switch-mutating driver wrappers.
var driverMutators = map[string]bool{
	"drvAddEntry": true, "drvModifyEntry": true, "drvDeleteEntry": true,
	"drvSetDefaultAction": true, "drvSetHashSeed": true,
}

func runJournalIntent(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var firstIntent, firstMut token.Pos
			var mutName string
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				switch {
				case intentWriters[name]:
					if firstIntent == token.NoPos {
						firstIntent = call.Pos()
					}
				case driverMutators[name]:
					if firstMut == token.NoPos {
						firstMut = call.Pos()
						mutName = name
					}
				}
				return true
			})
			if firstIntent != token.NoPos && firstMut != token.NoPos && firstMut < firstIntent {
				pass.Reportf(firstMut,
					"%s: driver mutation %s precedes the intent journal write; a crash here is unrecoverable (journal the intent first)",
					fn.Name.Name, mutName)
			}
		}
	}
	return nil
}
