// Package linttest runs lint analyzers over fixture directories, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files
// mark expected findings with trailing `// want "regexp"` comments, and
// the runner fails on any missed or unexpected diagnostic.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the quoted pattern of a `// want "..."` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run parses every .go file in dir as one package, applies the analyzer
// under the given import path, and checks findings against the
// fixtures' want-comments.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	fset := token.NewFileSet()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixtures in %s: %v", dir, err)
	}
	sort.Strings(paths)

	var files []*ast.File
	var wants []*expectation
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, pattern: re})
		}
	}

	diags, err := lint.Run(a, fset, files, importPath)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
