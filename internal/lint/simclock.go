package lint

import (
	"go/ast"
)

// SimclockAnalyzer bans wall-clock time and nondeterministic randomness
// in the packages whose correctness (and whose chaos/failover test
// reproducibility) depends on the simulated clock: internal/sim,
// internal/core, internal/rmt, and internal/fabric (a whole fabric of
// switches and agents shares one virtual clock; one stray wall-clock
// read desynchronizes every escalation timeline). Those packages must take time from
// sim.Simulator and randomness from a seeded rand.New(rand.NewSource(..));
// a stray time.Now or global rand.Intn makes every recorded latency and
// every chaos schedule unreproducible.
//
// Seeded construction (rand.New, rand.NewSource, rand.NewZipf) and
// *rand.Rand method calls are allowed — they are how determinism is
// implemented. Test files are exempt.
var SimclockAnalyzer = &Analyzer{
	Name: "simclock",
	Doc:  "no wall-clock time.* or global math/rand calls in sim-clock-driven packages",
	Match: func(p string) bool {
		return pathIn(p, "repro/internal/sim", "repro/internal/core", "repro/internal/rmt", "repro/internal/fabric")
	},
	Run: runSimclock,
}

// wallClockFuncs are the time package entry points that read or wait on
// the real clock. Pure constructors/converters (time.Duration,
// time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
	"Since": true, "Until": true,
}

// seededRandFuncs are the math/rand constructors for deterministic,
// locally-seeded generators; everything else on the package (Intn,
// Int63, Float64, Perm, Shuffle, Seed, ...) hits the global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runSimclock(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		timeName := importLocal(f, "time")
		randName := importLocal(f, "math/rand")
		if timeName == "" && randName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := pkgCall(call, timeName); wallClockFuncs[fn] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock; use the simulated clock (sim.Simulator) in %s", fn, pass.Path)
			}
			if fn := pkgCall(call, randName); fn != "" && !seededRandFuncs[fn] {
				pass.Reportf(call.Pos(),
					"rand.%s uses the global random source; use a seeded rand.New(rand.NewSource(seed)) in %s", fn, pass.Path)
			}
			return true
		})
	}
	return nil
}
