package lint

import (
	"go/ast"
)

// DiagcodeAnalyzer keeps the compiler's user-facing error surface on
// the coded-diagnostic path. Lowering and placement report problems as
// diag.Diagnostic values with a stable code, a source position, and a
// hint; a bare fmt.Errorf in internal/compiler produces an unpositioned,
// uncoded string that escapes the -Werror/-check accounting, breaks the
// golden corpus, and gives editors nothing to jump to. Test files are
// exempt — they format failure messages, not diagnostics.
var DiagcodeAnalyzer = &Analyzer{
	Name: "diagcode",
	Doc:  "compiler errors must be coded diag.Diagnostics, not bare fmt.Errorf",
	Match: func(p string) bool {
		return pathIn(p, "repro/internal/compiler")
	},
	Run: runDiagcode,
}

func runDiagcode(pass *Pass) error {
	for _, f := range pass.Files {
		fmtName := importLocal(f, "fmt")
		if fmtName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pkgCall(call, fmtName) != "Errorf" {
				return true
			}
			if pass.TestFile(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"fmt.Errorf in the compiler error path; emit a positioned diag.Diagnostic with a code and hint instead")
			return true
		})
	}
	return nil
}
