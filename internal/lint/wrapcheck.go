package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// WrapcheckAnalyzer enforces sentinel wrapping on the error paths the
// agent's recovery logic depends on. internal/driver, internal/ctlplane
// and internal/faults classify failures with errors.Is against typed
// sentinels (driver.ErrTransient, ctlplane.ErrNotPrimary, ...); a
// fmt.Errorf that formats an error with %v or %s instead of %w severs
// the chain and silently disables retry/degraded-poll handling.
var WrapcheckAnalyzer = &Analyzer{
	Name: "wrapcheck",
	Doc:  "fmt.Errorf over error values in driver/ctlplane/faults must wrap with %w",
	Match: func(p string) bool {
		return pathIn(p, "repro/internal/driver", "repro/internal/ctlplane", "repro/internal/faults")
	},
	Run: runWrapcheck,
}

func runWrapcheck(pass *Pass) error {
	for _, f := range pass.Files {
		fmtName := importLocal(f, "fmt")
		if fmtName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pkgCall(call, fmtName) != "Errorf" || len(call.Args) < 2 {
				return true
			}
			format, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			wraps := strings.Contains(format, "%w")
			for _, arg := range call.Args[1:] {
				if !errorish(arg) {
					continue
				}
				if !wraps {
					pass.Reportf(call.Pos(),
						"fmt.Errorf formats error %s without %%w; errors.Is against the sentinel will fail downstream",
						exprName(arg))
				}
				break
			}
			return true
		})
	}
	return nil
}

// errorish reports whether an expression syntactically denotes an error
// value: the identifier err, or an Err-prefixed/suffixed name — the
// naming convention every sentinel and error variable in this repo
// follows.
func errorish(e ast.Expr) bool {
	name := exprName(e)
	return name == "err" ||
		strings.HasPrefix(name, "Err") || strings.HasSuffix(name, "Err") ||
		strings.HasSuffix(name, "err")
}

func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		// err.Error(), sub.Err() and the like are strings, not errors.
		return ""
	}
	return ""
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	// Strip the surrounding quotes; escapes don't matter for %-verb
	// scanning.
	return lit.Value, true
}
