// Fixture for the diagcode analyzer (analyzed as
// repro/internal/compiler/place).
package place

import (
	"fmt"
	"strings"
)

type diagnostic struct {
	Code, Msg string
}

func bad(name string) error {
	return fmt.Errorf("table %q does not fit", name) // want "positioned diag.Diagnostic"
}

func badWrapped(err error) error {
	return fmt.Errorf("load profile: %w", err) // want "positioned diag.Diagnostic"
}

func goodDiag(name string) diagnostic {
	return diagnostic{Code: "P002", Msg: "table " + name + " does not fit"}
}

func goodSprintf(parts []string) string {
	// Non-error formatting stays allowed; only Errorf is the error path.
	return fmt.Sprintf("stages: %s", strings.Join(parts, ","))
}
