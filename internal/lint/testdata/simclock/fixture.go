// Fixture for the simclock analyzer (analyzed as repro/internal/sim).
package sim

import (
	"math/rand"
	"time"
)

type proc struct {
	rng *rand.Rand
}

func newProc(seed int64) *proc {
	// Seeded construction is the sanctioned pattern: allowed.
	return &proc{rng: rand.New(rand.NewSource(seed))}
}

func (p *proc) step() int {
	// Method calls on a seeded *rand.Rand are allowed.
	return p.rng.Intn(10)
}

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "global random source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global random source"
}

func duration(ms int) time.Duration {
	// Pure conversion, no clock read: allowed.
	return time.Duration(ms) * time.Millisecond
}
