// Fixture for the journalintent analyzer's ring-submit vocabulary
// (analyzed as repro/internal/ctlplane). The ring API splits submission
// into staging (Reserve/Set*, pure host memory) and execution (Flush,
// the doorbell): only Flush is a mutation, so an intent journaled
// between staging and the doorbell still covers the crash window.
package ctlplane

type ringOp struct{}

func (op *ringOp) SetModify(t string, h int)         {}
func (op *ringOp) SetRegWrite(r string, i, v uint64) {}

type ring struct{}

func (rg *ring) Reserve() *ringOp { return &ringOp{} }
func (rg *ring) Flush() error     { return nil }
func (rg *ring) Drain()           {}

type svc struct {
	ring *ring
}

func (s *svc) WriteIntent() error { return nil }

func (s *svc) goodFlush() {
	// Staging before the intent is fine: nothing reaches the switch
	// until the doorbell.
	op := s.ring.Reserve()
	op.SetModify("t", 1)
	_ = s.WriteIntent()
	_ = s.ring.Flush()
	s.ring.Drain()
}

func (s *svc) badFlush() {
	op := s.ring.Reserve()
	op.SetRegWrite("r", 0, 1)
	_ = s.ring.Flush() // want "driver mutation Flush precedes the intent journal write"
	_ = s.WriteIntent()
}

func (s *svc) flushOnly() {
	// No intent write in scope: dispatcher fast path, not flagged.
	op := s.ring.Reserve()
	op.SetModify("t", 2)
	_ = s.ring.Flush()
	s.ring.Drain()
}
