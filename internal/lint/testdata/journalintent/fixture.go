// Fixture for the journalintent analyzer (analyzed as
// repro/internal/core).
package core

type agent struct{}

func (a *agent) journalBegin() error            { return nil }
func (a *agent) journalCommitStaged() error     { return nil }
func (a *agent) journalCheckpoint() error       { return nil }
func (a *agent) drvModifyEntry(t string, k int) {}
func (a *agent) drvAddEntry(t string, k int)    {}
func (a *agent) drvBatchRead() int              { return 0 }

func (a *agent) goodCommit() {
	// Intent first, mutation second: the crash window is covered.
	_ = a.journalCommitStaged()
	a.drvModifyEntry("t", 1)
}

func (a *agent) badCommit() {
	a.drvModifyEntry("t", 1) // want "driver mutation drvModifyEntry precedes the intent journal write"
	_ = a.journalCommitStaged()
}

func (a *agent) badBegin() {
	a.drvAddEntry("t", 2) // want "driver mutation drvAddEntry precedes the intent journal write"
	_ = a.journalBegin()
	a.drvModifyEntry("t", 3)
}

func (a *agent) mutateOnly() {
	// No intent write in scope: reconciliation-style replay, not flagged.
	a.drvAddEntry("t", 4)
	a.drvModifyEntry("t", 5)
}

func (a *agent) checkpointAfter() {
	// Checkpoints summarize state after the fact; they are not intent
	// writes and impose no ordering.
	a.drvModifyEntry("t", 6)
	_ = a.journalCheckpoint()
}

func (a *agent) readsDontCount() {
	_ = a.drvBatchRead()
	_ = a.journalBegin()
	a.drvModifyEntry("t", 7)
}

type ring struct{}

func (rg *ring) Reserve() *ring { return rg }
func (rg *ring) SetModify()     {}
func (rg *ring) Flush() error   { return nil }

func (a *agent) goodRingSubmit(rg *ring) {
	// Reserve/Set* are pure staging: journaling the intent after filling
	// descriptors but before the doorbell still covers the crash window.
	rg.Reserve().SetModify()
	_ = a.journalCommitStaged()
	_ = rg.Flush()
}

func (a *agent) badRingSubmit(rg *ring) {
	rg.Reserve().SetModify()
	_ = rg.Flush() // want "driver mutation Flush precedes the intent journal write"
	_ = a.journalCommitStaged()
}
