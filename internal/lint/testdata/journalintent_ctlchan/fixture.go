// Fixture for the journalintent analyzer's ctlchan vocabulary
// (analyzed as repro/internal/ctlchan): the mutation sites are the
// Channel mutation methods themselves, not core's drv* wrappers.
package ctlchan

type client struct{}

func (c *client) WriteIntent(rec string) error             { return nil }
func (c *client) RegWrite(reg string, idx, v uint64) error { return nil }
func (c *client) ModifyEntry(t string, h int) error        { return nil }
func (c *client) BatchRead() int                           { return 0 }
func (c *client) drvModifyEntry()                          {}

func (c *client) goodReplay() {
	// Intent first, mutation second: the crash window is covered.
	_ = c.WriteIntent("modify t")
	_ = c.ModifyEntry("t", 1)
}

func (c *client) badReplay() {
	_ = c.RegWrite("r", 0, 1) // want "driver mutation RegWrite precedes the intent journal write"
	_ = c.WriteIntent("write r")
}

func (c *client) mutateOnly() {
	// No intent write in scope: ordinary request dispatch, not flagged.
	_ = c.ModifyEntry("t", 2)
}

func (c *client) readsDontCount() {
	_ = c.BatchRead()
	_ = c.WriteIntent("x")
	_ = c.ModifyEntry("t", 3)
}

func (c *client) coreNamesIgnored() {
	// core's drv* vocabulary is not a mutation site in this package.
	c.drvModifyEntry()
	_ = c.WriteIntent("x")
}
