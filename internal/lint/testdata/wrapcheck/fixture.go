// Fixture for the wrapcheck analyzer (analyzed as repro/internal/driver).
package driver

import (
	"errors"
	"fmt"
)

var ErrTransient = errors.New("transient")

func bad(err error) error {
	return fmt.Errorf("op failed: %v", err) // want "without %w"
}

func badSentinel(reg string) error {
	return fmt.Errorf("unknown register %q: %s", reg, ErrTransient) // want "without %w"
}

func good(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

func goodSentinel(reg string) error {
	return fmt.Errorf("unknown register %q: %w", reg, ErrTransient)
}

func unrelated(name string) error {
	return fmt.Errorf("no such table %q", name)
}

func stringified(err error) string {
	// err.Error() is a string, not an error value: no finding.
	return fmt.Errorf("wrapped: %s", err.Error()).Error()
}
