package fabric

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/usecases"
)

// TestFabricBuild pins topology construction: node/trunk counts, the
// schema-compatibility gate, and a clean start/stop with every agent's
// prologue running over its own control channel.
func TestFabricBuild(t *testing.T) {
	s := sim.New(1)
	f, err := Build(s, Config{Leaves: 2, Spines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Leaves) != 2 || len(f.Spines) != 2 {
		t.Fatalf("got %d leaves, %d spines", len(f.Leaves), len(f.Spines))
	}
	if len(f.Trunks) != 2 || len(f.Trunks[0]) != 2 {
		t.Fatalf("trunk matrix %dx%d, want 2x2", len(f.Trunks), len(f.Trunks[0]))
	}
	// Leaf agents need their native reaction before starting.
	for _, leaf := range f.Leaves {
		det := usecases.NewDosDetector(usecases.DefaultDosConfig())
		if err := leaf.Agent.RegisterNativeReaction("dos_react", det.React); err != nil {
			t.Fatal(err)
		}
	}
	f.Start()
	s.RunFor(2 * time.Millisecond)
	f.Stop()
	s.RunFor(200 * time.Microsecond)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	for _, n := range f.Nodes() {
		if n.Agent.Stats().Iterations == 0 {
			t.Fatalf("%s: agent never iterated", n.Name)
		}
	}
}

// TestFabricSchemaGate pins that Build refuses programs whose packet
// schemas lay fields out differently.
func TestFabricSchemaGate(t *testing.T) {
	s := sim.New(1)
	_, err := Build(s, Config{
		Leaves: 1, Spines: 1, Seed: 1,
		// dstAddr before srcAddr: same names, different slots.
		SpineProgram: `
header_type ipv4_t { fields { dstAddr : 32; srcAddr : 32; protocol : 8; ecn : 1; } }
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;
action drop_pkt() { drop(); }
action route_pkt(port) { modify_field(standard_metadata.egress_spec, port); }
table route { reads { ipv4.dstAddr : exact; } actions { route_pkt; drop_pkt; } default_action : drop_pkt; size : 64; }
reaction r() { }
control ingress { apply(route); }
`,
	})
	if err == nil {
		t.Fatal("mismatched schemas accepted")
	}
}

// TestFabricCrossLeafDelivery sends a packet from a leaf-0 host to a
// leaf-1 host and pins the leaf→spine→leaf path.
func TestFabricCrossLeafDelivery(t *testing.T) {
	s := sim.New(1)
	f, err := Build(s, Config{Leaves: 2, Spines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range f.Leaves {
		det := usecases.NewDosDetector(usecases.DefaultDosConfig())
		if err := leaf.Agent.RegisterNativeReaction("dos_react", det.React); err != nil {
			t.Fatal(err)
		}
	}
	src := f.AddHost(0, 0)
	dst := f.AddHost(1, 1)
	got := 0
	dst.Rx = func(pkt *packet.Packet) { got++ }

	// Meter data-plane trunk crossings, ignoring the probe heartbeats
	// the fabric injects for gray-failure detection (proto 0xFD).
	up, down, probes := uint64(0), uint64(0), uint64(0)
	for l := range f.Trunks {
		for sp := range f.Trunks[l] {
			f.Trunks[l][sp].Tap = func(from int, pkt *packet.Packet) {
				if pkt.GetName(usecases.FM.Proto) == uint64(HeartbeatProto) {
					probes++
					return
				}
				if from == 0 {
					up++
				} else {
					down++
				}
			}
		}
	}

	f.Start()
	s.RunFor(time.Millisecond) // prologues install routes over ctlchan

	schema := f.Leaves[0].Plan.Prog.Schema
	pkt := schema.New()
	pkt.Size = 200
	pkt.SetName(usecases.FM.Src, uint64(src.Addr))
	pkt.SetName(usecases.FM.Dst, uint64(dst.Addr))
	src.Send(pkt)
	s.RunFor(time.Millisecond)
	f.Stop()
	s.RunFor(200 * time.Microsecond)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("cross-leaf delivery: got %d packets, want 1", got)
	}
	// The packet must have crossed exactly one leaf→spine trunk and one
	// spine→leaf trunk; probe heartbeats must be flowing alongside it.
	if up != 1 || down != 1 {
		t.Fatalf("trunk crossings up=%d down=%d, want 1/1", up, down)
	}
	if probes == 0 {
		t.Fatal("no probe heartbeats crossed the trunks")
	}
	if drops := f.Leaves[0].Net.Stats().DroppedNoPeer + f.Spines[0].Net.Stats().DroppedNoPeer; drops != 0 {
		t.Fatalf("unexpected DroppedNoPeer: %d", drops)
	}
}

// TestDosFabricEscalation is the end-to-end tentpole check: a flood
// entering at a spine border port is detected by the victim leaf's
// agent, the coordinator escalates filters to every other switch, and
// attack traffic on the victim leaf's trunks drops ≥90%.
func TestDosFabricEscalation(t *testing.T) {
	s := sim.New(1)
	d, err := NewDosFabric(s, DosFabricConfig{Fabric: Config{Leaves: 2, Spines: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(2*time.Millisecond, 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	esc := d.Escalation()
	if esc == nil {
		t.Fatal("attacker never escalated")
	}
	if esc.DetectedBy != "leaf0" {
		t.Fatalf("detected by %s, want leaf0 (the victim leaf)", esc.DetectedBy)
	}
	if !esc.Complete() {
		t.Fatalf("escalation incomplete: %d/%d installed", len(esc.Installed), esc.targets)
	}
	// Every node except the detector holds exactly one filter entry.
	for _, n := range d.F.Nodes() {
		entries, err := n.Drv.Switch().Entries(FilterTable)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if n.Name == esc.DetectedBy {
			want = 0
		}
		if len(entries) != want {
			t.Fatalf("%s: %d filter entries, want %d", n.Name, len(entries), want)
		}
	}
	sup, err := d.Suppression(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sup < 0.9 {
		t.Fatalf("suppression %.3f, want ≥ 0.9", sup)
	}
	// The local block at the detecting leaf must also be in place.
	if _, ok := d.Detectors["leaf0"].Blocked[AttackerAddr]; !ok {
		t.Fatal("victim leaf never blocked the attacker locally")
	}
	// Heavy hitters: every benign sender reported, view sorted.
	top := d.F.Coord.TopK(len(d.DeliveredBySrc) + 4)
	if len(top) == 0 {
		t.Fatal("empty heavy-hitter view")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Bytes > top[i-1].Bytes {
			t.Fatal("top-k not sorted")
		}
	}
}

// routePort reads n's route-table entry for dst and returns its egress
// port.
func routePort(t *testing.T, n *Node, dst uint32) uint64 {
	t.Helper()
	entries, err := n.Drv.Switch().Entries(RouteTable)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Keys) == 1 && e.Keys[0].Value == uint64(dst) {
			return e.Data[0]
		}
	}
	t.Fatalf("%s: no route for %#x", n.Name, dst)
	return 0
}

// registerDos gives every leaf its required dos_react native.
func registerDos(t *testing.T, f *Fabric) {
	t.Helper()
	for _, leaf := range f.Leaves {
		det := usecases.NewDosDetector(usecases.DefaultDosConfig())
		if err := leaf.Agent.RegisterNativeReaction("dos_react", det.React); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFabricGrayRerouteAndHeal runs the tentpole loop on a single gray
// trunk: leaf0's detector latches the uplink, the coordinator excludes
// the spine from leaf0's ECMP set and moves its affected destinations,
// traffic flows around the gray link, and on heal everything returns.
func TestFabricGrayRerouteAndHeal(t *testing.T) {
	s := sim.New(1)
	f, err := Build(s, Config{Leaves: 3, Spines: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	registerDos(t, f)
	f.Start()
	s.RunFor(time.Millisecond) // prologues install routes

	// A destination on another leaf whose ECMP home is the trunk we
	// will gray.
	dst := HostAddr(1, 1)
	sp := f.SpineFor(dst)
	grayPort := uint64(f.UplinkPort(sp))
	if got := routePort(t, f.Leaves[0], dst); got != grayPort {
		t.Fatalf("initial route for %#x: port %d, want %d", dst, got, grayPort)
	}

	f.Trunks[0][sp].SetGray(1.0)
	s.RunFor(500 * time.Microsecond)

	up := f.UplinkPort(sp)
	if _, failed := f.Leaves[0].GrayDet.FailedPorts[up]; !failed {
		t.Fatalf("leaf0 detector never latched uplink %d", up)
	}
	h := f.Coord.Health(sp)
	if h.State != SpineGray || !h.Suspects["leaf0"] || len(h.Suspects) != 1 {
		t.Fatalf("spine %d health %v suspects %v, want gray/{leaf0}", sp, h.State, h.Suspects)
	}
	rrs := f.Coord.Reroutes()
	if len(rrs) == 0 {
		t.Fatal("no reroute recorded")
	}
	rr := rrs[0]
	if !rr.Exclude || rr.Leaf != "leaf0" || rr.Spine != sp {
		t.Fatalf("reroute %+v, want exclude leaf0/spine%d", rr, sp)
	}
	if rr.Moves == 0 || rr.DoneAt == 0 {
		t.Fatalf("reroute incomplete: moves=%d done=%v", rr.Moves, rr.DoneAt)
	}
	if got := routePort(t, f.Leaves[0], dst); got == grayPort {
		t.Fatalf("route for %#x still on gray uplink %d", dst, got)
	}

	// Traffic now crosses a healthy spine end to end.
	src := f.AddHost(0, 0)
	rx := f.AddHost(1, 1)
	got := 0
	rx.Rx = func(pkt *packet.Packet) { got++ }
	schema := f.Leaves[0].Plan.Prog.Schema
	for i := 0; i < 10; i++ {
		pkt := schema.New()
		pkt.Size = 200
		pkt.SetName(usecases.FM.Src, uint64(src.Addr))
		pkt.SetName(usecases.FM.Dst, uint64(rx.Addr))
		src.Send(pkt)
	}
	s.RunFor(100 * time.Microsecond)
	if got != 10 {
		t.Fatalf("rerouted delivery %d/10", got)
	}

	// Heal: probes flow again, the detector unlatches after its
	// hysteresis, and the coordinator moves the destinations home.
	f.Trunks[0][sp].SetGray(0)
	s.RunFor(500 * time.Microsecond)
	if h := f.Coord.Health(sp); h.State != SpineHealthy || len(h.Suspects) != 0 {
		t.Fatalf("post-heal health %v suspects %v, want healthy/none", h.State, h.Suspects)
	}
	if got := routePort(t, f.Leaves[0], dst); got != grayPort {
		t.Fatalf("post-heal route for %#x: port %d, want home %d", dst, got, grayPort)
	}
	rrs = f.Coord.Reroutes()
	last := rrs[len(rrs)-1]
	if last.Exclude || last.DoneAt == 0 {
		t.Fatalf("restore reroute %+v, want completed restore", last)
	}

	f.Stop()
	s.RunFor(200 * time.Microsecond)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Coord.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFabricSpineCrashHealthDead pins whole-switch failure: every leaf
// latches the crashed spine's trunk, the merged evidence classifies it
// dead, every leaf is rerouted off it, and a restore heals it back to
// healthy with routes home.
func TestFabricSpineCrashHealthDead(t *testing.T) {
	s := sim.New(1)
	f, err := Build(s, Config{Leaves: 2, Spines: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	registerDos(t, f)
	f.Start()
	s.RunFor(time.Millisecond)

	const victim = 1
	if err := f.Crash("spine1"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(500 * time.Microsecond)

	h := f.Coord.Health(victim)
	if h.State != SpineDead || len(h.Suspects) != len(f.Leaves) {
		t.Fatalf("crashed spine health %v suspects %v, want dead/all", h.State, h.Suspects)
	}
	// Every leaf's remote destinations must route via spine0 now.
	for _, leaf := range f.Leaves {
		for dst := range leaf.RouteHandles {
			if got := routePort(t, leaf, dst); got != uint64(f.UplinkPort(0)) {
				t.Fatalf("%s: route %#x on port %d during crash, want %d", leaf.Name, dst, got, f.UplinkPort(0))
			}
		}
	}
	// Cross-leaf traffic survives on the remaining spine.
	src := f.AddHost(0, 0)
	rx := f.AddHost(1, 0)
	got := 0
	rx.Rx = func(pkt *packet.Packet) { got++ }
	schema := f.Leaves[0].Plan.Prog.Schema
	for i := 0; i < 5; i++ {
		pkt := schema.New()
		pkt.Size = 200
		pkt.SetName(usecases.FM.Src, uint64(src.Addr))
		pkt.SetName(usecases.FM.Dst, uint64(rx.Addr))
		src.Send(pkt)
	}
	s.RunFor(100 * time.Microsecond)
	if got != 5 {
		t.Fatalf("delivery during crash %d/5", got)
	}

	if err := f.Restore("spine1"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(500 * time.Microsecond)
	if h := f.Coord.Health(victim); h.State != SpineHealthy {
		t.Fatalf("post-restore health %v, want healthy", h.State)
	}
	for _, leaf := range f.Leaves {
		for dst := range leaf.RouteHandles {
			want := uint64(f.UplinkPort(f.SpineFor(dst)))
			if got := routePort(t, leaf, dst); got != want {
				t.Fatalf("%s: post-restore route %#x on port %d, want %d", leaf.Name, dst, got, want)
			}
		}
	}

	f.Stop()
	s.RunFor(200 * time.Microsecond)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Coord.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDosFabricDeterministic pins that two identically-seeded runs
// produce the identical escalation timeline and packet counts.
func TestDosFabricDeterministic(t *testing.T) {
	type snapshot struct {
		detectedAt, spinesDone, allDone sim.Time
		arrivals                        int
		events                          uint64
		top                             []HHEntry
	}
	run := func() snapshot {
		s := sim.New(1)
		d, err := NewDosFabric(s, DosFabricConfig{Fabric: Config{Leaves: 3, Spines: 2, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Run(2*time.Millisecond, 3*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		esc := d.Escalation()
		if esc == nil {
			t.Fatal("no escalation")
		}
		return snapshot{
			detectedAt: esc.DetectedAt, spinesDone: esc.SpinesDoneAt, allDone: esc.AllDoneAt,
			arrivals: len(d.AttackArrivals), events: d.F.Coord.Stats().Events,
			top: d.F.Coord.TopK(8),
		}
	}
	a, b := run(), run()
	if a.detectedAt != b.detectedAt || a.spinesDone != b.spinesDone || a.allDone != b.allDone {
		t.Fatalf("timeline diverged: %+v vs %+v", a, b)
	}
	if a.arrivals != b.arrivals || a.events != b.events {
		t.Fatalf("counts diverged: %+v vs %+v", a, b)
	}
	if len(a.top) != len(b.top) {
		t.Fatalf("top-k diverged: %v vs %v", a.top, b.top)
	}
	for i := range a.top {
		if a.top[i] != b.top[i] {
			t.Fatalf("top-k[%d] diverged: %v vs %v", i, a.top[i], b.top[i])
		}
	}
}
