package fabric

// Reference P4R programs for the fabric's two switch roles. The leaf
// program is the Fig. 15 DoS program plus a coordinator-owned upstream
// filter table; the spine program carries the same filter plus routing.
//
// Both declare identical headers in identical order. That is load-
// bearing: a packet's field vector is laid out by the schema of the
// program that created it, and the same packet crosses several
// switches, so every program in one fabric must resolve a field name
// to the same slot. Build verifies this and refuses mismatched
// schemas.
//
// Table-name contract with the fabric layer (see fabric.go consts):
// "route"/"route_pkt" for destination routing, installed by each
// node's prologue, and "ufilter"/"drop_pkt" for the coordinator's
// network-wide source filter. The filter is deliberately a plain (non-
// malleable) table: the local agent owns the malleable tables and
// their version bits, while ufilter has exactly one writer — the
// coordinator's session — so the two control paths never contend for
// the same versioned state.

// LeafP4R is the edge-switch program: upstream filter, local malleable
// blocklist, destination routing, per-sender byte counting, the native
// DoS-detection reaction of use case #1, and the use case #2 per-uplink
// heartbeat counter feeding the gray-failure reaction. hb_tbl applies
// first so probe traffic is counted and absorbed before it can touch
// the filter or byte-counting stats.
const LeafP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

register total_bytes { width : 64; instance_count : 1; }
register hb_count { width : 32; instance_count : 32; }

action allow() { no_op(); }
action drop_pkt() { drop(); }
action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}
action note() {
  register_increment(total_bytes, 0, standard_metadata.packet_length);
}
action count_hb() {
  register_increment(hb_count, standard_metadata.ingress_port, 1);
  drop();
}

table hb_tbl {
  reads { ipv4.protocol : exact; }
  actions { count_hb; }
  size : 2;
}
table ufilter {
  reads { ipv4.srcAddr : exact; }
  actions { allow; drop_pkt; }
  default_action : allow;
  size : 256;
}
malleable table blocklist {
  reads { ipv4.srcAddr : exact; }
  actions { allow; drop_pkt; }
  default_action : allow;
  size : 256;
}
table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}
table counter_tbl {
  actions { note; }
  default_action : note;
  size : 1;
}

reaction dos_react(ing ipv4.srcAddr, reg total_bytes) {
  // Implemented natively: per-sender rate estimation + blocking.
}

reaction gray_react(reg hb_count) {
  // Implemented natively: per-uplink loss thresholding (use case #2),
  // exported as gray.suspect / gray.clear events for the coordinator.
}

control ingress {
  apply(hb_tbl);
  apply(ufilter);
  apply(blocklist);
  apply(route);
  apply(counter_tbl);
}
`

// SpineP4R is the aggregation-switch program: the coordinator's
// upstream filter ahead of routing, plus a liveness reaction that
// bumps a malleable generation counter so spine agents exercise the
// full dialogue/commit path too.
const SpineP4R = `
header_type ipv4_t {
  fields { srcAddr : 32; dstAddr : 32; protocol : 8; ecn : 1; }
}
header ipv4_t ipv4;
header_type tcp_t { fields { seq : 32; ack : 32; isAck : 1; } }
header tcp_t tcp;

malleable value spine_gen { width : 32; init : 0; }

action allow() { no_op(); }
action drop_pkt() { drop(); }
action route_pkt(port) {
  modify_field(standard_metadata.egress_spec, port);
}

table ufilter {
  reads { ipv4.srcAddr : exact; }
  actions { allow; drop_pkt; }
  default_action : allow;
  size : 256;
}
table route {
  reads { ipv4.dstAddr : exact; }
  actions { route_pkt; drop_pkt; }
  default_action : drop_pkt;
  size : 64;
}

reaction spine_watch() {
  ${spine_gen} = ${spine_gen} + 1;
}

control ingress {
  apply(ufilter);
  apply(route);
}
`
