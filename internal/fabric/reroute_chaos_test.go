package fabric

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// routeEntryCount counts n's route entries keyed by dst — the
// at-most-once measure for route moves: a reissue after a degraded
// modify must never leave a second entry behind.
func routeEntryCount(t *testing.T, n *Node, dst uint32) int {
	t.Helper()
	entries, err := n.Drv.Switch().Entries(RouteTable)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range entries {
		if len(e.Keys) == 1 && e.Keys[0].Value == uint64(dst) {
			count++
		}
	}
	return count
}

// TestChaosSpineCrashMidGrayReroute grays one trunk and then crashes a
// *different* spine right in the detection window, so the coordinator
// handles a second fabric-wide reroute while the first is barely
// committed. The ECMP exclusion sets must compose (routes avoid both
// the gray and the dead spine), and after both heal everything returns
// home with exactly one route entry per destination. Run under -race
// in CI.
func TestChaosSpineCrashMidGrayReroute(t *testing.T) {
	s := sim.New(2)
	f, err := Build(s, Config{Leaves: 2, Spines: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	registerDos(t, f)
	f.Start()
	s.RunFor(time.Millisecond)

	dst := HostAddr(1, 1)
	spGray := f.SpineFor(dst)
	spCrash := (spGray + 1) % 3

	f.Trunks[0][spGray].SetGray(1.0)
	s.Schedule(60*time.Microsecond, func() {
		if err := f.Crash(f.Spines[spCrash].Name); err != nil {
			t.Errorf("crash: %v", err)
		}
	})
	s.RunFor(time.Millisecond)

	if h := f.Coord.Health(spGray); h.State != SpineGray {
		t.Fatalf("gray spine %d health %v, want gray", spGray, h.State)
	}
	if h := f.Coord.Health(spCrash); h.State != SpineDead {
		t.Fatalf("crashed spine %d health %v, want dead", spCrash, h.State)
	}
	// leaf0's route for dst must dodge both failures.
	want := uint64(f.UplinkPort(SpineForSet(dst, 3, map[int]bool{spGray: true, spCrash: true})))
	if got := routePort(t, f.Leaves[0], dst); got != want {
		t.Fatalf("route for %#x: port %d, want %d (avoiding spines %d and %d)",
			dst, got, want, spGray, spCrash)
	}

	f.Trunks[0][spGray].SetGray(0)
	if err := f.Restore(f.Spines[spCrash].Name); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Millisecond)

	for sp := range f.Spines {
		if h := f.Coord.Health(sp); h.State != SpineHealthy {
			t.Fatalf("spine %d ends %v, want healthy", sp, h.State)
		}
	}
	if got := routePort(t, f.Leaves[0], dst); got != uint64(f.UplinkPort(spGray)) {
		t.Fatalf("route for %#x ends on port %d, want home %d", dst, got, f.UplinkPort(spGray))
	}
	for _, leaf := range f.Leaves {
		for d := range leaf.RouteHandles {
			if got := routeEntryCount(t, leaf, d); got != 1 {
				t.Fatalf("%s: %d route entries for %#x, want 1", leaf.Name, got, d)
			}
		}
	}
	for _, rr := range f.Coord.Reroutes() {
		if rr.Moves > 0 && rr.DoneAt == 0 {
			t.Fatalf("reroute %+v never completed", rr)
		}
	}
	f.Stop()
	s.RunFor(100 * time.Microsecond)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Coord.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosGrayRerouteOverPartitionedChannel partitions the
// coordinator's control link to the evidence leaf before the gray
// failure lands, so the exclude route-move can only go through the
// degraded audit-then-reissue path once the link heals. The move must
// eventually commit exactly once.
func TestChaosGrayRerouteOverPartitionedChannel(t *testing.T) {
	s := sim.New(3)
	f, err := Build(s, Config{Leaves: 2, Spines: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	registerDos(t, f)
	f.Start()
	s.RunFor(time.Millisecond)

	dst := HostAddr(1, 1)
	sp := f.SpineFor(dst)
	other := uint64(f.UplinkPort(1 - sp))

	f.Leaves[0].CoordLink.SetPartitioned(true)
	f.Trunks[0][sp].SetGray(1.0)
	healAt := s.Now() + sim.Time(500*time.Microsecond)
	s.Schedule(500*time.Microsecond, func() {
		f.Leaves[0].CoordLink.SetPartitioned(false)
	})
	s.RunFor(3 * time.Millisecond)

	if got := routePort(t, f.Leaves[0], dst); got != other {
		t.Fatalf("route for %#x: port %d, want %d after the heal", dst, got, other)
	}
	if got := routeEntryCount(t, f.Leaves[0], dst); got != 1 {
		t.Fatalf("%d route entries for %#x, want 1 (at-most-once violated)", got, dst)
	}
	rrs := f.Coord.Reroutes()
	if len(rrs) == 0 {
		t.Fatal("no reroute recorded")
	}
	if rrs[0].DoneAt < healAt {
		t.Fatalf("reroute committed at %v, before the channel heal at %v — wrote through a dead link?",
			rrs[0].DoneAt, healAt)
	}
	// The partition must leave a trace: the move went degraded (audited,
	// possibly reissued) or at least retried.
	st := f.Coord.Stats()
	if st.DegradedRouteMoves == 0 && st.TransientRetries == 0 {
		t.Fatalf("partition left no trace in route-move stats: %+v", st)
	}
	f.Stop()
	s.RunFor(100 * time.Microsecond)
	if err := f.Coord.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosFlappingTrunk flaps one trunk admin-down/up six times at
// 100µs cadence — fast enough that heal hysteresis (RecoverStrikes
// consecutive clean windows) keeps the exclusion latched through the
// brief ups — then leaves it up for good. The coordinator must ride
// the flaps without error and converge: healthy everywhere, routes
// home, every reroute record complete.
func TestChaosFlappingTrunk(t *testing.T) {
	s := sim.New(4)
	f, err := Build(s, Config{Leaves: 2, Spines: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	registerDos(t, f)
	f.Start()
	s.RunFor(time.Millisecond)

	dst := HostAddr(1, 1)
	sp := f.SpineFor(dst)
	tr := f.Trunks[0][sp]
	for i := 0; i < 6; i++ {
		down := i%2 == 0
		s.Schedule(time.Duration(i)*100*time.Microsecond, func() { tr.SetAdminDown(down) })
	}
	s.RunFor(600 * time.Microsecond) // the flapping window
	s.RunFor(2 * time.Millisecond)   // stable tail: the last heal lands

	for spi := range f.Spines {
		if h := f.Coord.Health(spi); h.State != SpineHealthy {
			t.Fatalf("spine %d ends %v, want healthy", spi, h.State)
		}
	}
	if got := routePort(t, f.Leaves[0], dst); got != uint64(f.UplinkPort(sp)) {
		t.Fatalf("route for %#x ends on port %d, want home %d", dst, got, f.UplinkPort(sp))
	}
	if got := routeEntryCount(t, f.Leaves[0], dst); got != 1 {
		t.Fatalf("%d route entries for %#x, want 1", got, dst)
	}
	rrs := f.Coord.Reroutes()
	if len(rrs) < 2 {
		t.Fatalf("%d reroute records over 3 down-phases, want ≥ 2", len(rrs))
	}
	for _, rr := range rrs {
		if rr.Moves > 0 && rr.DoneAt == 0 {
			t.Fatalf("reroute %+v never completed", rr)
		}
	}
	st := f.Coord.Stats()
	if st.GraySuspects == 0 || st.GrayClears == 0 {
		t.Fatalf("flaps left no suspect/clear trace: %+v", st)
	}
	f.Stop()
	s.RunFor(100 * time.Microsecond)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Coord.Err(); err != nil {
		t.Fatal(err)
	}
}
