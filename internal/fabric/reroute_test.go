package fabric

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestRerouteScenarioModes drives the fig-reroute scenario end to end
// for each failure mode at 2×2 and asserts the full arc: steady
// pre-failure goodput, detection + exclude-reroute after the failure,
// goodput recovery to ≥90% of the pre-failure rate while the failure
// is still in place, and a clean restore after the heal.
func TestRerouteScenarioModes(t *testing.T) {
	for i, mode := range []RerouteMode{ModeLinkDown, ModeGray, ModeCrash} {
		mode := mode
		i := i
		t.Run(string(mode), func(t *testing.T) {
			s := sim.New(40 + int64(i))
			r, err := NewRerouteFabric(s, RerouteFabricConfig{
				Fabric: Config{Leaves: 2, Spines: 2, Seed: 40 + int64(i)},
				Mode:   mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Run(time.Millisecond, 2*time.Millisecond, 2*time.Millisecond); err != nil {
				t.Fatal(err)
			}

			pre := r.Goodput(r.FailAt-sim.Time(800*time.Microsecond), r.FailAt)
			if pre <= 0 {
				t.Fatal("no pre-failure goodput")
			}

			first, lastDone, moves, ok := r.RerouteSpan(true, r.FailAt)
			if !ok || moves == 0 {
				t.Fatalf("exclude reroute: first=%v lastDone=%v moves=%d ok=%v",
					first, lastDone, moves, ok)
			}
			if first < r.FailAt {
				t.Fatalf("exclude reroute at %v predates the failure at %v", first, r.FailAt)
			}
			if lastDone < first {
				t.Fatalf("reroute commit %v before trigger %v", lastDone, first)
			}

			rec := r.RecoveredAt(r.FailAt, r.HealAt, pre, 0.9)
			if rec == 0 {
				t.Fatalf("goodput never recovered to 90%% of %.0f bps during the failure", pre)
			}

			// Steady state under failure: the back half of the fail window
			// must hold ≥90% of the pre-failure rate.
			mid := r.FailAt + (r.HealAt-r.FailAt)/2
			if under := r.Goodput(mid, r.HealAt); under < 0.9*pre {
				t.Fatalf("steady goodput under failure %.0f < 90%% of pre %.0f", under, pre)
			}

			hFirst, hDone, hMoves, hOK := r.RerouteSpan(false, r.HealAt)
			if !hOK || hMoves == 0 {
				t.Fatalf("restore reroute: first=%v lastDone=%v moves=%d ok=%v",
					hFirst, hDone, hMoves, hOK)
			}
			for sp := range r.F.Spines {
				if h := r.F.Coord.Health(sp); h.State != SpineHealthy {
					t.Fatalf("spine %d ends %v, want healthy", sp, h.State)
				}
			}
		})
	}
}
