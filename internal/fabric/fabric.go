// Package fabric builds a leaf–spine topology of simulated RMT
// switches on one shared virtual clock and layers the first cross-node
// control structure on top: every switch runs its own Mantis agent
// over the lossy ctlchan transport, and a fabric coordinator
// subscribes to the agents' exported events to compose network-wide
// reactions — escalating a leaf's local DoS block into upstream
// filters at every other switch, and merging per-leaf heavy-hitter
// estimates into a global top-k.
//
// Topology: L leaves × S spines, every leaf trunked to every spine.
// Leaf host ports are 0..HostPorts-1; leaf uplink to spine s is port
// HostPorts+s; spine port l faces leaf l. Hosts are addressed by
// HostAddr(leaf, host), and each node's agent prologue installs the
// full destination route set, so any host can reach any other across
// the fabric.
//
// Control: each node carries two ctlchan sessions over separate
// message links to one per-node server — session 1 is the node's own
// agent (ctlplane RolePrimary), session 2 belongs to the coordinator
// (RoleLegacy, bulk class). The coordinator is therefore just another
// lossy-channel client of every switch, with the same degraded-mode
// ambiguity to resolve; see coordinator.go for its at-most-once
// install discipline.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/compiler/place"
	"repro/internal/core"
	"repro/internal/ctlchan"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
	"repro/internal/usecases"
)

// Table-name contract between the fabric layer and its programs.
const (
	// RouteTable/RouteAction name the destination-routing table every
	// fabric program must expose; prologues install HostAddr routes
	// into it.
	RouteTable  = "route"
	RouteAction = "route_pkt"
	// FilterTable/FilterAction name the coordinator-owned upstream
	// source filter. The table is plain (non-malleable): the
	// coordinator's session is its only writer, so escalations never
	// contend with the local agent's versioned malleable state.
	FilterTable  = "ufilter"
	FilterAction = "drop_pkt"
	// HeartbeatTable counts link probes per ingress port on leaves;
	// HeartbeatProto tags them on the wire.
	HeartbeatTable  = "hb_tbl"
	HeartbeatAction = "count_hb"
	HeartbeatProto  = 0xFD
)

// Gray-failure events exported by each leaf's per-uplink detector (use
// case #2 lifted fabric-wide). Key is the leaf's uplink port; the
// coordinator maps it back to a spine via the fabric's port layout.
const (
	EventGraySuspect = "gray.suspect"
	EventGrayClear   = "gray.clear"
)

// HostAddr returns the canonical address of host h on leaf l.
func HostAddr(leaf, host int) uint32 {
	return 0x0A000000 | uint32(leaf)<<8 | uint32(host+1)
}

// AddrLeaf extracts the leaf index from a HostAddr address.
func AddrLeaf(addr uint32) int { return int(addr>>8) & 0xFF }

// Config sizes and parameterizes a fabric.
type Config struct {
	// Leaves and Spines size the topology (both ≥ 1).
	Leaves int
	Spines int
	// HostPorts is the number of host-facing ports per leaf (default 4).
	HostPorts int

	// LeafProgram/SpineProgram are the P4R sources compiled onto each
	// role (defaults LeafP4R/SpineP4R). All programs in one fabric must
	// produce identical packet schemas; Build verifies.
	LeafProgram  string
	SpineProgram string

	// Target is the switch profile both programs must place under
	// (compiler.Options.Target; default place.DefaultTarget). "none"
	// skips the placement check — every simulated switch then behaves
	// as if it had unbounded stages.
	Target string

	// TrunkDelay is the one-way inter-switch propagation delay (default
	// 1µs); TrunkProfile its fault profile (default none).
	TrunkDelay   time.Duration
	TrunkProfile faults.LinkProfile

	// CtlDelay is the one-way control-link delay per node (default
	// 1µs); CtlProfile the fault profile of the agent and coordinator
	// control links (default none).
	CtlDelay   time.Duration
	CtlProfile faults.LinkProfile
	// CtlOpDeadline overrides each control client's per-operation
	// deadline (0 keeps the ctlchan default of ~4 retransmission
	// opportunities). Raise it when CtlProfile carries sustained loss:
	// a fabric prologue issues hundreds of operations, so even a 1%
	// per-op degrade probability wedges some node most runs.
	CtlOpDeadline time.Duration

	// HostBandwidth/HostPropagation parameterize host access links
	// (defaults 25 Gbps, 1µs).
	HostBandwidth   float64
	HostPropagation time.Duration

	// Pacing is each agent's dialogue pacing (default 5µs).
	Pacing time.Duration

	// Seed derives every per-node and per-link RNG seed.
	Seed int64

	// Coordinator tunes the fabric coordinator.
	Coordinator CoordinatorOptions

	// Gray tunes the fabric's link-failure detection: per-trunk probe
	// heartbeats injected at each spine and a per-leaf gray-failure
	// detector (the Fig. 16 program run per-leaf) whose suspect/clear
	// events feed the coordinator's health view.
	Gray GrayOptions

	// Prologue, if set, runs inside each node's agent prologue after
	// the fabric's route installation.
	Prologue func(n *Node, p *sim.Proc, a *core.Agent) error
}

// GrayOptions tunes fabric-wide gray-failure detection.
type GrayOptions struct {
	// Disabled turns off probe heartbeats and the per-leaf detectors.
	Disabled bool
	// Ts is the per-trunk probe period (default 500ns): each spine
	// emits one probe per leaf trunk every Ts, so a leaf's dialogue
	// window of Td carries Td/Ts samples per uplink.
	Ts time.Duration
	// Eta is the detection expectation (default 0.75): a window
	// delivering under floor(Eta·Td/Ts) probes on an uplink strikes it.
	Eta float64
	// HealEta is the recovery expectation (default 0.99): hysteresis —
	// a latched uplink must deliver essentially every probe for
	// RecoverStrikes consecutive windows before it is declared healed.
	// A 30% gray link clears a symmetric bar often enough to flap.
	HealEta float64
	// Strikes and RecoverStrikes are the consecutive-window counts for
	// detection and recovery (defaults 2 and 3).
	Strikes        int
	RecoverStrikes int
	// MaxTd, when > 0, additionally discards dialogue windows longer
	// than MaxTd (see usecases.GrayConfig.MaxTd). The fabric's primary
	// guard is channel evidence, not time: windows during which the
	// leaf's own control channel retransmitted or timed out are never
	// judged, because their register reads can be dedup-cache stale —
	// the count window and the time window no longer line up.
	MaxTd time.Duration
}

func (g *GrayOptions) setDefaults() {
	if g.Ts <= 0 {
		g.Ts = 500 * time.Nanosecond
	}
	if g.Eta <= 0 {
		g.Eta = 0.75
	}
	if g.HealEta <= 0 {
		g.HealEta = 0.99
	}
	if g.Strikes <= 0 {
		g.Strikes = 2
	}
	if g.RecoverStrikes <= 0 {
		g.RecoverStrikes = 3
	}
}

func (cfg *Config) setDefaults() error {
	if cfg.Leaves < 1 || cfg.Spines < 1 {
		return fmt.Errorf("fabric: need ≥1 leaf and ≥1 spine, got %d×%d", cfg.Leaves, cfg.Spines)
	}
	if cfg.HostPorts <= 0 {
		cfg.HostPorts = 4
	}
	if cfg.LeafProgram == "" {
		cfg.LeafProgram = LeafP4R
	}
	if cfg.SpineProgram == "" {
		cfg.SpineProgram = SpineP4R
	}
	if cfg.Target == "" {
		cfg.Target = place.DefaultTarget
	}
	if cfg.TrunkDelay <= 0 {
		cfg.TrunkDelay = time.Microsecond
	}
	if cfg.CtlDelay <= 0 {
		cfg.CtlDelay = time.Microsecond
	}
	if cfg.HostBandwidth <= 0 {
		cfg.HostBandwidth = 25e9
	}
	if cfg.HostPropagation <= 0 {
		cfg.HostPropagation = time.Microsecond
	}
	if cfg.Pacing <= 0 {
		cfg.Pacing = 5 * time.Microsecond
	}
	cfg.Coordinator.setDefaults()
	cfg.Gray.setDefaults()
	return nil
}

// Node is one switch of the fabric with its full per-switch control
// stack: driver, ctlplane service, ctlchan server, the node's own
// agent client, and the coordinator's client.
type Node struct {
	Name    string
	Index   int // leaf or spine index within its role
	IsSpine bool

	Plan *compiler.Plan
	Sw   *rmt.Switch
	Drv  *driver.Driver
	Svc  *ctlplane.Service
	Net  *netsim.Network
	Srv  *ctlchan.Server

	AgentLink *netsim.Link
	CoordLink *netsim.Link
	AgentCli  *ctlchan.Client
	CoordCli  *ctlchan.Client
	Agent     *core.Agent

	// RouteHandles maps each remote destination installed by this
	// node's prologue to its route-table entry handle — handles are
	// switch-level, so the coordinator's session can ModifyEntry them
	// for ECMP-exclude reroutes. Leaf nodes only (spines route each
	// destination straight to its leaf and are never rerouted).
	RouteHandles map[uint32]rmt.EntryHandle

	// GrayDet is the leaf's per-uplink gray-failure detector (nil on
	// spines or when Config.Gray.Disabled).
	GrayDet *usecases.GrayDetector
}

// Fabric is a built topology plus its coordinator.
type Fabric struct {
	Sim    *sim.Simulator
	Cfg    Config
	Leaves []*Node
	Spines []*Node
	// Trunks[l][s] joins leaf l (side 0) to spine s (side 1).
	Trunks [][]*netsim.Trunk
	Coord  *Coordinator

	// crashed tracks nodes taken down by Crash (by name).
	crashed map[string]bool
	// hbTicker drives the per-trunk probe heartbeats; hbSrc/hbDst/
	// hbProto are the spine-schema fields probes are stamped with.
	hbTicker *sim.Ticker
	hbSrc    packet.FieldID
	hbDst    packet.FieldID
	hbProto  packet.FieldID
	hbSchema *packet.Schema
}

// Build constructs the fabric on s: switches, trunks, per-node control
// stacks, and the coordinator. Agents are not yet started — register
// natives on the nodes first, then call Start.
func Build(s *sim.Simulator, cfg Config) (*Fabric, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	opts := compiler.DefaultOptions()
	if cfg.Target != "none" {
		opts.Target = cfg.Target
	}
	leafPlan, err := compiler.CompileSource(cfg.LeafProgram, opts)
	if err != nil {
		return nil, fmt.Errorf("fabric: leaf program: %w", err)
	}
	spinePlan, err := compiler.CompileSource(cfg.SpineProgram, opts)
	if err != nil {
		return nil, fmt.Errorf("fabric: spine program: %w", err)
	}
	// Trunks re-serialize only wire headers across switches, so the two
	// roles need identical wire layouts but may synthesize different
	// switch-local scratch. Check up front for a clearer error than the
	// first ConnectTrunk would give.
	if err := netsim.WireCompatible(leafPlan.Prog.Schema, spinePlan.Prog.Schema); err != nil {
		return nil, fmt.Errorf("fabric: leaf/spine wire headers diverge (a packet could not cross roles): %w", err)
	}

	f := &Fabric{Sim: s, Cfg: cfg, crashed: make(map[string]bool)}
	f.Coord = newCoordinator(s, cfg.Coordinator)
	for l := 0; l < cfg.Leaves; l++ {
		n, err := f.buildNode(fmt.Sprintf("leaf%d", l), l, false, leafPlan)
		if err != nil {
			return nil, err
		}
		f.Leaves = append(f.Leaves, n)
	}
	for sp := 0; sp < cfg.Spines; sp++ {
		n, err := f.buildNode(fmt.Sprintf("spine%d", sp), sp, true, spinePlan)
		if err != nil {
			return nil, err
		}
		f.Spines = append(f.Spines, n)
	}
	for l, leaf := range f.Leaves {
		row := make([]*netsim.Trunk, cfg.Spines)
		for sp, spine := range f.Spines {
			tr, err := netsim.ConnectTrunk(leaf.Net, f.UplinkPort(sp), spine.Net, l,
				cfg.TrunkDelay, cfg.TrunkProfile, cfg.Seed*7919+int64(l*64+sp))
			if err != nil {
				return nil, err
			}
			row[sp] = tr
		}
		f.Trunks = append(f.Trunks, row)
	}
	if !cfg.Gray.Disabled {
		if err := f.wireGrayDetection(spinePlan.Prog.Schema); err != nil {
			return nil, err
		}
	}
	f.Coord.attach(f)
	return f, nil
}

// wireGrayDetection registers the Fig. 16 detector on every leaf,
// monitoring the uplink ports, and prepares the probe-heartbeat fields
// (the tickers start with the fabric).
func (f *Fabric) wireGrayDetection(spineSchema *packet.Schema) error {
	cfg := &f.Cfg
	f.hbSchema = spineSchema
	f.hbSrc = spineSchema.MustID(usecases.FM.Src)
	f.hbDst = spineSchema.MustID(usecases.FM.Dst)
	f.hbProto = spineSchema.MustID(usecases.FM.Proto)
	uplinks := make([]int, cfg.Spines)
	for sp := range uplinks {
		uplinks[sp] = f.UplinkPort(sp)
	}
	for _, leaf := range f.Leaves {
		// Channel-evidence gating: a retransmit or timeout on the leaf's
		// own agent channel since the last poll marks the window
		// unjudgeable (its register reads may be dedup-cache stale).
		ch := leaf.AgentCli
		var lastRetx, lastTimeouts uint64
		skip := func() bool {
			st := ch.ChanStats()
			dirty := st.Retransmits != lastRetx || st.Timeouts != lastTimeouts
			lastRetx, lastTimeouts = st.Retransmits, st.Timeouts
			return dirty
		}
		det := usecases.NewGrayDetector(usecases.GrayConfig{
			Ts: cfg.Gray.Ts, Eta: cfg.Gray.Eta, HealEta: cfg.Gray.HealEta,
			ConsecutiveStrikes: cfg.Gray.Strikes, RecoverStrikes: cfg.Gray.RecoverStrikes,
			MaxTd: cfg.Gray.MaxTd, SkipWindow: skip,
			Monitored: uplinks,
			Event:     EventGraySuspect, ClearEvent: EventGrayClear,
		}, nil)
		if err := leaf.Agent.RegisterNativeReaction("gray_react", det.React); err != nil {
			return fmt.Errorf("fabric: %s: %w", leaf.Name, err)
		}
		leaf.GrayDet = det
	}
	return nil
}

// startHeartbeats launches the per-trunk probe ticker: every Ts, each
// live spine emits one probe per leaf trunk. Probes are injected at
// the trunk itself (port-hardware liveness probes, BFD-style), so they
// see exactly the drops data packets would on that trunk, without
// consuming spine pipeline capacity. Their destination is deliberately
// unroutable: the leaf's hb_tbl counts and absorbs them, and if that
// entry is not installed yet the route table's default drops them.
func (f *Fabric) startHeartbeats() {
	if f.Cfg.Gray.Disabled || f.hbTicker != nil {
		return
	}
	f.hbTicker = f.Sim.Every(f.Cfg.Gray.Ts, func() {
		for sp, spine := range f.Spines {
			if f.crashed[spine.Name] {
				continue
			}
			for l := range f.Leaves {
				pkt := f.hbSchema.New()
				pkt.Size = 64
				pkt.Priority = 7
				pkt.Set(f.hbSrc, uint64(0x0AFE0000|uint32(sp)))
				pkt.Set(f.hbDst, 0xFFFFFFFF)
				pkt.Set(f.hbProto, HeartbeatProto)
				f.Trunks[l][sp].Inject(1, pkt)
			}
		}
	})
}

// buildNode assembles one switch plus its control stack.
func (f *Fabric) buildNode(name string, idx int, isSpine bool, plan *compiler.Plan) (*Node, error) {
	cfg := &f.Cfg
	need := cfg.HostPorts + cfg.Spines
	if isSpine {
		// One extra port beyond the leaf-facing ones: the border port,
		// where traffic from outside the fabric enters.
		need = cfg.Leaves + 1
	}
	swCfg := rmt.DefaultConfig()
	if swCfg.NumPorts < need {
		swCfg.NumPorts = need
	}
	sw, err := rmt.New(f.Sim, plan.Prog, swCfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", name, err)
	}
	n := &Node{Name: name, Index: idx, IsSpine: isSpine, Plan: plan, Sw: sw}
	n.Drv = driver.New(f.Sim, sw, driver.DefaultCostModel())
	n.Svc = ctlplane.New(f.Sim, n.Drv, ctlplane.Options{})
	agentSess, err := n.Svc.Open(ctlplane.SessionOptions{
		Name: name + "/agent", Role: ctlplane.RolePrimary, ElectionID: 1,
	})
	if err != nil {
		return nil, err
	}
	coordSess, err := n.Svc.Open(ctlplane.SessionOptions{
		Name: name + "/coord", Role: ctlplane.RoleLegacy,
	})
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed*104729 + int64(idx)*31
	if isSpine {
		seed += 17
	}
	n.Srv = ctlchan.NewServer(f.Sim)
	n.AgentLink = netsim.NewLink(f.Sim, cfg.CtlDelay, cfg.CtlProfile, seed+1)
	n.CoordLink = netsim.NewLink(f.Sim, cfg.CtlDelay, cfg.CtlProfile, seed+2)
	n.Srv.Attach(n.AgentLink, netsim.LinkSideB, 1, 1, agentSess)
	n.Srv.Attach(n.CoordLink, netsim.LinkSideB, 2, 1, coordSess)
	n.AgentCli = ctlchan.NewClient(f.Sim, n.AgentLink, netsim.LinkSideA,
		ctlchan.ClientOptions{Session: 1, Epoch: 1, Meta: n.Drv, OpDeadline: cfg.CtlOpDeadline})
	n.CoordCli = ctlchan.NewClient(f.Sim, n.CoordLink, netsim.LinkSideA,
		ctlchan.ClientOptions{Session: 2, Epoch: 1, Meta: n.Drv, OpDeadline: cfg.CtlOpDeadline})
	n.Net = netsim.New(f.Sim, sw, cfg.HostBandwidth, cfg.HostPropagation)

	n.Agent = core.NewAgent(f.Sim, n.AgentCli, plan, core.Options{
		Name:      name,
		EventSink: f.Coord.Observe,
		Pacing:    cfg.Pacing,
		Recovery:  core.RecoveryForChannel(n.AgentCli.RTT()),
		Journal:   &core.JournalConfig{Store: journal.NewMemStore()},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			if err := f.installRoutes(n, p, a); err != nil {
				return err
			}
			if cfg.Prologue != nil {
				return cfg.Prologue(n, p, a)
			}
			return nil
		},
	})
	return n, nil
}

// installRoutes populates n's route table with every fabric host
// address: local hosts out their port, remote hosts toward the
// dst-hashed spine, spine entries toward the destination leaf.
func (f *Fabric) installRoutes(n *Node, p *sim.Proc, a *core.Agent) error {
	if !n.IsSpine {
		n.RouteHandles = make(map[uint32]rmt.EntryHandle)
		if !f.Cfg.Gray.Disabled {
			// Count-and-absorb probe heartbeats per ingress port.
			if _, err := a.Driver().AddEntry(p, HeartbeatTable, rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(HeartbeatProto)}, Action: HeartbeatAction,
			}); err != nil {
				return fmt.Errorf("fabric: %s: heartbeat table: %w", n.Name, err)
			}
		}
	}
	for l := 0; l < f.Cfg.Leaves; l++ {
		for h := 0; h < f.Cfg.HostPorts; h++ {
			dst := HostAddr(l, h)
			remote := false
			var port int
			switch {
			case n.IsSpine:
				port = l
			case n.Index == l:
				port = h
			default:
				remote = true
				port = f.UplinkPort(f.SpineFor(dst))
			}
			handle, err := a.Driver().AddEntry(p, RouteTable, rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(dst))}, Action: RouteAction, Data: []uint64{uint64(port)},
			})
			if err != nil {
				return fmt.Errorf("fabric: %s: route %#x: %w", n.Name, dst, err)
			}
			if remote {
				n.RouteHandles[dst] = handle
			}
		}
	}
	return nil
}

// UplinkPort is the leaf port facing spine sp.
func (f *Fabric) UplinkPort(sp int) int { return f.Cfg.HostPorts + sp }

// SpineFor picks the spine carrying traffic toward dst with every
// uplink live (destination-hashed ECMP, deterministic).
func (f *Fabric) SpineFor(dst uint32) int { return SpineForSet(dst, f.Cfg.Spines, nil) }

// SpineForSet picks the ECMP spine for dst over the live uplink set:
// rendezvous (highest-random-weight) hashing across the non-excluded
// spines. Two properties the fabric leans on: the choice is a pure
// function of (dst, spines, excluded) — identical across nodes and
// runs — and membership changes disturb only the flows that must move
// (excluding a spine reassigns exactly the flows hashed onto it;
// restoring it puts exactly those flows back). If every spine is
// excluded the full set is used as a fallback: no reachable spine is
// worse than a deterministic guess.
func SpineForSet(dst uint32, spines int, excluded map[int]bool) int {
	if spines <= 1 {
		return 0
	}
	best, bestW := -1, uint64(0)
	for sp := 0; sp < spines; sp++ {
		if excluded[sp] {
			continue
		}
		w := ecmpMix(uint64(dst)<<16 ^ uint64(sp))
		if best < 0 || w > bestW {
			best, bestW = sp, w
		}
	}
	if best < 0 {
		// All uplinks down: fall back to the full set.
		return SpineForSet(dst, spines, nil)
	}
	return best
}

// ecmpMix is the rendezvous weight function — splitmix64's finalizer,
// a fixed full-avalanche mixer (seedless on purpose: every node must
// agree on the hash).
func ecmpMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// BorderPort is the spine port where external (non-fabric) traffic
// enters.
func (f *Fabric) BorderPort() int { return f.Cfg.Leaves }

// Nodes returns all nodes, leaves first — the coordinator's canonical
// order.
func (f *Fabric) Nodes() []*Node {
	out := make([]*Node, 0, len(f.Leaves)+len(f.Spines))
	out = append(out, f.Leaves...)
	return append(out, f.Spines...)
}

// Node returns the named node, or nil.
func (f *Fabric) Node(name string) *Node {
	for _, n := range f.Nodes() {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// AddHost attaches a host at leaf l, host port h, with its canonical
// fabric address.
func (f *Fabric) AddHost(l, h int) *netsim.Host {
	return f.Leaves[l].Net.AddHost(h, HostAddr(l, h))
}

// Start launches every node's agent, the probe heartbeats, and the
// coordinator.
func (f *Fabric) Start() {
	for _, n := range f.Nodes() {
		n.Agent.Start()
	}
	f.startHeartbeats()
}

// Stop stops all agents and the coordinator's processes.
func (f *Fabric) Stop() {
	for _, n := range f.Nodes() {
		if !f.crashed[n.Name] {
			n.Agent.Stop()
		}
	}
	if f.hbTicker != nil {
		f.hbTicker.Stop()
		f.hbTicker = nil
	}
	f.Coord.stop()
}

// Crash kills a node whole: every trunk administratively down, both
// control-channel server endpoints dead (clients classify the degrade
// as peer-dead, not partition), the agent halted, and — for spines —
// probe emission stopped. The data-plane evidence of the crash is what
// the per-leaf detectors see: every probe on the node's trunks dies.
func (f *Fabric) Crash(name string) error {
	n := f.Node(name)
	if n == nil {
		return fmt.Errorf("fabric: no node %q", name)
	}
	if f.crashed[name] {
		return fmt.Errorf("fabric: %s already crashed", name)
	}
	f.crashed[name] = true
	f.eachTrunk(n, func(tr *netsim.Trunk) { tr.SetAdminDown(true) })
	n.AgentLink.SetPeerDown(netsim.LinkSideB, true)
	n.CoordLink.SetPeerDown(netsim.LinkSideB, true)
	n.Agent.Stop()
	return nil
}

// Restore brings a crashed node's hardware back: trunks up, control
// endpoints alive, probes flowing again. The agent is NOT restarted —
// switch table state survives the model's crash (the route/filter
// tables live in the switch, not the agent), and agent-level recovery
// is the takeover machinery's job, not the fabric's. The coordinator's
// session resumes working immediately.
func (f *Fabric) Restore(name string) error {
	n := f.Node(name)
	if n == nil {
		return fmt.Errorf("fabric: no node %q", name)
	}
	if !f.crashed[name] {
		return fmt.Errorf("fabric: %s not crashed", name)
	}
	delete(f.crashed, name)
	f.eachTrunk(n, func(tr *netsim.Trunk) { tr.SetAdminDown(false) })
	n.AgentLink.SetPeerDown(netsim.LinkSideB, false)
	n.CoordLink.SetPeerDown(netsim.LinkSideB, false)
	return nil
}

// Crashed reports whether the named node is currently crashed.
func (f *Fabric) Crashed(name string) bool { return f.crashed[name] }

// eachTrunk visits every trunk touching n.
func (f *Fabric) eachTrunk(n *Node, fn func(tr *netsim.Trunk)) {
	if n.IsSpine {
		for l := range f.Leaves {
			fn(f.Trunks[l][n.Index])
		}
		return
	}
	for sp := range f.Spines {
		fn(f.Trunks[n.Index][sp])
	}
}

// Err returns the first agent error, if any.
func (f *Fabric) Err() error {
	for _, n := range f.Nodes() {
		if err := n.Agent.Err(); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	return nil
}
