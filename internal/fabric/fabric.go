// Package fabric builds a leaf–spine topology of simulated RMT
// switches on one shared virtual clock and layers the first cross-node
// control structure on top: every switch runs its own Mantis agent
// over the lossy ctlchan transport, and a fabric coordinator
// subscribes to the agents' exported events to compose network-wide
// reactions — escalating a leaf's local DoS block into upstream
// filters at every other switch, and merging per-leaf heavy-hitter
// estimates into a global top-k.
//
// Topology: L leaves × S spines, every leaf trunked to every spine.
// Leaf host ports are 0..HostPorts-1; leaf uplink to spine s is port
// HostPorts+s; spine port l faces leaf l. Hosts are addressed by
// HostAddr(leaf, host), and each node's agent prologue installs the
// full destination route set, so any host can reach any other across
// the fabric.
//
// Control: each node carries two ctlchan sessions over separate
// message links to one per-node server — session 1 is the node's own
// agent (ctlplane RolePrimary), session 2 belongs to the coordinator
// (RoleLegacy, bulk class). The coordinator is therefore just another
// lossy-channel client of every switch, with the same degraded-mode
// ambiguity to resolve; see coordinator.go for its at-most-once
// install discipline.
package fabric

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ctlchan"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// Table-name contract between the fabric layer and its programs.
const (
	// RouteTable/RouteAction name the destination-routing table every
	// fabric program must expose; prologues install HostAddr routes
	// into it.
	RouteTable  = "route"
	RouteAction = "route_pkt"
	// FilterTable/FilterAction name the coordinator-owned upstream
	// source filter. The table is plain (non-malleable): the
	// coordinator's session is its only writer, so escalations never
	// contend with the local agent's versioned malleable state.
	FilterTable  = "ufilter"
	FilterAction = "drop_pkt"
)

// HostAddr returns the canonical address of host h on leaf l.
func HostAddr(leaf, host int) uint32 {
	return 0x0A000000 | uint32(leaf)<<8 | uint32(host+1)
}

// AddrLeaf extracts the leaf index from a HostAddr address.
func AddrLeaf(addr uint32) int { return int(addr>>8) & 0xFF }

// Config sizes and parameterizes a fabric.
type Config struct {
	// Leaves and Spines size the topology (both ≥ 1).
	Leaves int
	Spines int
	// HostPorts is the number of host-facing ports per leaf (default 4).
	HostPorts int

	// LeafProgram/SpineProgram are the P4R sources compiled onto each
	// role (defaults LeafP4R/SpineP4R). All programs in one fabric must
	// produce identical packet schemas; Build verifies.
	LeafProgram  string
	SpineProgram string

	// TrunkDelay is the one-way inter-switch propagation delay (default
	// 1µs); TrunkProfile its fault profile (default none).
	TrunkDelay   time.Duration
	TrunkProfile faults.LinkProfile

	// CtlDelay is the one-way control-link delay per node (default
	// 1µs); CtlProfile the fault profile of the agent and coordinator
	// control links (default none).
	CtlDelay   time.Duration
	CtlProfile faults.LinkProfile
	// CtlOpDeadline overrides each control client's per-operation
	// deadline (0 keeps the ctlchan default of ~4 retransmission
	// opportunities). Raise it when CtlProfile carries sustained loss:
	// a fabric prologue issues hundreds of operations, so even a 1%
	// per-op degrade probability wedges some node most runs.
	CtlOpDeadline time.Duration

	// HostBandwidth/HostPropagation parameterize host access links
	// (defaults 25 Gbps, 1µs).
	HostBandwidth   float64
	HostPropagation time.Duration

	// Pacing is each agent's dialogue pacing (default 5µs).
	Pacing time.Duration

	// Seed derives every per-node and per-link RNG seed.
	Seed int64

	// Coordinator tunes the fabric coordinator.
	Coordinator CoordinatorOptions

	// Prologue, if set, runs inside each node's agent prologue after
	// the fabric's route installation.
	Prologue func(n *Node, p *sim.Proc, a *core.Agent) error
}

func (cfg *Config) setDefaults() error {
	if cfg.Leaves < 1 || cfg.Spines < 1 {
		return fmt.Errorf("fabric: need ≥1 leaf and ≥1 spine, got %d×%d", cfg.Leaves, cfg.Spines)
	}
	if cfg.HostPorts <= 0 {
		cfg.HostPorts = 4
	}
	if cfg.LeafProgram == "" {
		cfg.LeafProgram = LeafP4R
	}
	if cfg.SpineProgram == "" {
		cfg.SpineProgram = SpineP4R
	}
	if cfg.TrunkDelay <= 0 {
		cfg.TrunkDelay = time.Microsecond
	}
	if cfg.CtlDelay <= 0 {
		cfg.CtlDelay = time.Microsecond
	}
	if cfg.HostBandwidth <= 0 {
		cfg.HostBandwidth = 25e9
	}
	if cfg.HostPropagation <= 0 {
		cfg.HostPropagation = time.Microsecond
	}
	if cfg.Pacing <= 0 {
		cfg.Pacing = 5 * time.Microsecond
	}
	cfg.Coordinator.setDefaults()
	return nil
}

// Node is one switch of the fabric with its full per-switch control
// stack: driver, ctlplane service, ctlchan server, the node's own
// agent client, and the coordinator's client.
type Node struct {
	Name    string
	Index   int // leaf or spine index within its role
	IsSpine bool

	Plan *compiler.Plan
	Sw   *rmt.Switch
	Drv  *driver.Driver
	Svc  *ctlplane.Service
	Net  *netsim.Network
	Srv  *ctlchan.Server

	AgentLink *netsim.Link
	CoordLink *netsim.Link
	AgentCli  *ctlchan.Client
	CoordCli  *ctlchan.Client
	Agent     *core.Agent
}

// Fabric is a built topology plus its coordinator.
type Fabric struct {
	Sim    *sim.Simulator
	Cfg    Config
	Leaves []*Node
	Spines []*Node
	// Trunks[l][s] joins leaf l (side 0) to spine s (side 1).
	Trunks [][]*netsim.Trunk
	Coord  *Coordinator
}

// Build constructs the fabric on s: switches, trunks, per-node control
// stacks, and the coordinator. Agents are not yet started — register
// natives on the nodes first, then call Start.
func Build(s *sim.Simulator, cfg Config) (*Fabric, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	leafPlan, err := compiler.CompileSource(cfg.LeafProgram, compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("fabric: leaf program: %w", err)
	}
	spinePlan, err := compiler.CompileSource(cfg.SpineProgram, compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("fabric: spine program: %w", err)
	}
	// Trunks re-serialize only wire headers across switches, so the two
	// roles need identical wire layouts but may synthesize different
	// switch-local scratch. Check up front for a clearer error than the
	// first ConnectTrunk would give.
	if err := netsim.WireCompatible(leafPlan.Prog.Schema, spinePlan.Prog.Schema); err != nil {
		return nil, fmt.Errorf("fabric: leaf/spine wire headers diverge (a packet could not cross roles): %w", err)
	}

	f := &Fabric{Sim: s, Cfg: cfg}
	f.Coord = newCoordinator(s, cfg.Coordinator)
	for l := 0; l < cfg.Leaves; l++ {
		n, err := f.buildNode(fmt.Sprintf("leaf%d", l), l, false, leafPlan)
		if err != nil {
			return nil, err
		}
		f.Leaves = append(f.Leaves, n)
	}
	for sp := 0; sp < cfg.Spines; sp++ {
		n, err := f.buildNode(fmt.Sprintf("spine%d", sp), sp, true, spinePlan)
		if err != nil {
			return nil, err
		}
		f.Spines = append(f.Spines, n)
	}
	for l, leaf := range f.Leaves {
		row := make([]*netsim.Trunk, cfg.Spines)
		for sp, spine := range f.Spines {
			tr, err := netsim.ConnectTrunk(leaf.Net, f.UplinkPort(sp), spine.Net, l,
				cfg.TrunkDelay, cfg.TrunkProfile, cfg.Seed*7919+int64(l*64+sp))
			if err != nil {
				return nil, err
			}
			row[sp] = tr
		}
		f.Trunks = append(f.Trunks, row)
	}
	f.Coord.attach(f)
	return f, nil
}

// buildNode assembles one switch plus its control stack.
func (f *Fabric) buildNode(name string, idx int, isSpine bool, plan *compiler.Plan) (*Node, error) {
	cfg := &f.Cfg
	need := cfg.HostPorts + cfg.Spines
	if isSpine {
		// One extra port beyond the leaf-facing ones: the border port,
		// where traffic from outside the fabric enters.
		need = cfg.Leaves + 1
	}
	swCfg := rmt.DefaultConfig()
	if swCfg.NumPorts < need {
		swCfg.NumPorts = need
	}
	sw, err := rmt.New(f.Sim, plan.Prog, swCfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", name, err)
	}
	n := &Node{Name: name, Index: idx, IsSpine: isSpine, Plan: plan, Sw: sw}
	n.Drv = driver.New(f.Sim, sw, driver.DefaultCostModel())
	n.Svc = ctlplane.New(f.Sim, n.Drv, ctlplane.Options{})
	agentSess, err := n.Svc.Open(ctlplane.SessionOptions{
		Name: name + "/agent", Role: ctlplane.RolePrimary, ElectionID: 1,
	})
	if err != nil {
		return nil, err
	}
	coordSess, err := n.Svc.Open(ctlplane.SessionOptions{
		Name: name + "/coord", Role: ctlplane.RoleLegacy,
	})
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed*104729 + int64(idx)*31
	if isSpine {
		seed += 17
	}
	n.Srv = ctlchan.NewServer(f.Sim)
	n.AgentLink = netsim.NewLink(f.Sim, cfg.CtlDelay, cfg.CtlProfile, seed+1)
	n.CoordLink = netsim.NewLink(f.Sim, cfg.CtlDelay, cfg.CtlProfile, seed+2)
	n.Srv.Attach(n.AgentLink, netsim.LinkSideB, 1, 1, agentSess)
	n.Srv.Attach(n.CoordLink, netsim.LinkSideB, 2, 1, coordSess)
	n.AgentCli = ctlchan.NewClient(f.Sim, n.AgentLink, netsim.LinkSideA,
		ctlchan.ClientOptions{Session: 1, Epoch: 1, Meta: n.Drv, OpDeadline: cfg.CtlOpDeadline})
	n.CoordCli = ctlchan.NewClient(f.Sim, n.CoordLink, netsim.LinkSideA,
		ctlchan.ClientOptions{Session: 2, Epoch: 1, Meta: n.Drv, OpDeadline: cfg.CtlOpDeadline})
	n.Net = netsim.New(f.Sim, sw, cfg.HostBandwidth, cfg.HostPropagation)

	n.Agent = core.NewAgent(f.Sim, n.AgentCli, plan, core.Options{
		Name:      name,
		EventSink: f.Coord.Observe,
		Pacing:    cfg.Pacing,
		Recovery:  core.RecoveryForChannel(n.AgentCli.RTT()),
		Journal:   &core.JournalConfig{Store: journal.NewMemStore()},
		Prologue: func(p *sim.Proc, a *core.Agent) error {
			if err := f.installRoutes(n, p, a); err != nil {
				return err
			}
			if cfg.Prologue != nil {
				return cfg.Prologue(n, p, a)
			}
			return nil
		},
	})
	return n, nil
}

// installRoutes populates n's route table with every fabric host
// address: local hosts out their port, remote hosts toward the
// dst-hashed spine, spine entries toward the destination leaf.
func (f *Fabric) installRoutes(n *Node, p *sim.Proc, a *core.Agent) error {
	for l := 0; l < f.Cfg.Leaves; l++ {
		for h := 0; h < f.Cfg.HostPorts; h++ {
			dst := HostAddr(l, h)
			var port int
			switch {
			case n.IsSpine:
				port = l
			case n.Index == l:
				port = h
			default:
				port = f.UplinkPort(f.SpineFor(dst))
			}
			if _, err := a.Driver().AddEntry(p, RouteTable, rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(dst))}, Action: RouteAction, Data: []uint64{uint64(port)},
			}); err != nil {
				return fmt.Errorf("fabric: %s: route %#x: %w", n.Name, dst, err)
			}
		}
	}
	return nil
}

// UplinkPort is the leaf port facing spine sp.
func (f *Fabric) UplinkPort(sp int) int { return f.Cfg.HostPorts + sp }

// SpineFor picks the spine carrying traffic toward dst (destination
// hash, deterministic).
func (f *Fabric) SpineFor(dst uint32) int { return int(dst) % f.Cfg.Spines }

// BorderPort is the spine port where external (non-fabric) traffic
// enters.
func (f *Fabric) BorderPort() int { return f.Cfg.Leaves }

// Nodes returns all nodes, leaves first — the coordinator's canonical
// order.
func (f *Fabric) Nodes() []*Node {
	out := make([]*Node, 0, len(f.Leaves)+len(f.Spines))
	out = append(out, f.Leaves...)
	return append(out, f.Spines...)
}

// Node returns the named node, or nil.
func (f *Fabric) Node(name string) *Node {
	for _, n := range f.Nodes() {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// AddHost attaches a host at leaf l, host port h, with its canonical
// fabric address.
func (f *Fabric) AddHost(l, h int) *netsim.Host {
	return f.Leaves[l].Net.AddHost(h, HostAddr(l, h))
}

// Start launches every node's agent and the coordinator.
func (f *Fabric) Start() {
	for _, n := range f.Nodes() {
		n.Agent.Start()
	}
}

// Stop stops all agents and the coordinator's processes.
func (f *Fabric) Stop() {
	for _, n := range f.Nodes() {
		n.Agent.Stop()
	}
	f.Coord.stop()
}

// Err returns the first agent error, if any.
func (f *Fabric) Err() error {
	for _, n := range f.Nodes() {
		if err := n.Agent.Err(); err != nil {
			return fmt.Errorf("%s: %w", n.Name, err)
		}
	}
	return nil
}
