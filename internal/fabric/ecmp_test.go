package fabric

import "testing"

// TestSpineForSetSingleSpine: with one spine every destination maps to
// it, excluded or not (the all-excluded fallback reuses the full set).
func TestSpineForSetSingleSpine(t *testing.T) {
	for dst := uint32(0); dst < 64; dst++ {
		if sp := SpineForSet(dst, 1, nil); sp != 0 {
			t.Fatalf("SpineForSet(%d, 1, nil) = %d, want 0", dst, sp)
		}
		if sp := SpineForSet(dst, 1, map[int]bool{0: true}); sp != 0 {
			t.Fatalf("SpineForSet(%d, 1, {0}) = %d, want 0", dst, sp)
		}
	}
}

// TestSpineForSetAllExcludedFallback: excluding every spine falls back
// to the full-set choice rather than an invalid index.
func TestSpineForSetAllExcludedFallback(t *testing.T) {
	const spines = 3
	all := map[int]bool{0: true, 1: true, 2: true}
	for dst := uint32(0); dst < 256; dst++ {
		got := SpineForSet(dst, spines, all)
		want := SpineForSet(dst, spines, nil)
		if got != want {
			t.Fatalf("dst %d: all-excluded gave %d, full set gives %d", dst, got, want)
		}
		if got < 0 || got >= spines {
			t.Fatalf("dst %d: spine %d out of range", dst, got)
		}
	}
}

// TestSpineForSetDeterministicAndBalanced: the choice is a pure
// function of its arguments (same result on repeat and with distinct
// but equal exclusion maps), and the hash spreads destinations across
// all spines.
func TestSpineForSetDeterministicAndBalanced(t *testing.T) {
	const spines = 4
	hits := make([]int, spines)
	for dst := uint32(0); dst < 1024; dst++ {
		a := SpineForSet(dst, spines, map[int]bool{2: true})
		b := SpineForSet(dst, spines, map[int]bool{2: true})
		if a != b {
			t.Fatalf("dst %d: %d then %d on identical arguments", dst, a, b)
		}
		if a == 2 {
			t.Fatalf("dst %d: chose excluded spine 2", dst)
		}
		hits[SpineForSet(dst, spines, nil)]++
	}
	for sp, n := range hits {
		// 1024 destinations over 4 spines: each should land well clear
		// of zero; rendezvous hashing gives near-uniform spread.
		if n < 128 {
			t.Fatalf("spine %d carries only %d/1024 destinations", sp, n)
		}
	}
}

// TestSpineForSetMinimalDisruption: excluding one spine moves exactly
// the destinations hashed onto it — everything else keeps its
// assignment — and restoring it puts exactly those back.
func TestSpineForSetMinimalDisruption(t *testing.T) {
	const spines = 4
	base := make(map[uint32]int)
	for dst := uint32(0); dst < 1024; dst++ {
		base[dst] = SpineForSet(dst, spines, nil)
	}
	for fail := 0; fail < spines; fail++ {
		ex := map[int]bool{fail: true}
		for dst, home := range base {
			got := SpineForSet(dst, spines, ex)
			if home != fail && got != home {
				t.Fatalf("exclude %d: dst %d moved %d→%d though its home is live",
					fail, dst, home, got)
			}
			if home == fail && got == fail {
				t.Fatalf("exclude %d: dst %d still assigned to the excluded spine", fail, dst)
			}
			// Restore: back to the original assignment.
			if back := SpineForSet(dst, spines, nil); back != home {
				t.Fatalf("restore: dst %d lands on %d, want %d", dst, back, home)
			}
		}
	}
}

// TestUplinkPortLayout: uplink ports sit directly above the host
// ports, one per spine.
func TestUplinkPortLayout(t *testing.T) {
	f := &Fabric{Cfg: Config{HostPorts: 4, Spines: 3}}
	for sp := 0; sp < 3; sp++ {
		if got := f.UplinkPort(sp); got != 4+sp {
			t.Fatalf("UplinkPort(%d) = %d, want %d", sp, got, 4+sp)
		}
	}
}
