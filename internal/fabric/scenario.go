package fabric

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/usecases"
)

// This file instantiates use case #1 (Fig. 15 DoS mitigation) across
// the fabric, reusing the parameterized scenario pieces from
// internal/usecases rather than copy-pasting the single-switch body.
//
// Placement: the victim sits on leaf 0's last host port, benign TCP
// senders spread over every leaf's host ports, and the flood enters at
// a spine border port — modeling an attack arriving from outside the
// fabric through the aggregation layer, where no detection program
// runs. The victim leaf therefore detects the flood in transit via its
// malleables and blocks locally (protecting the victim host), but the
// attack keeps burning the spine→leaf trunk until the coordinator's
// escalation installs the upstream filter at the spines: the trunk
// arrival rate at the victim leaf is the metric that only network-wide
// reaction can improve.

// AttackerAddr is the flood source address — deliberately outside the
// HostAddr space, an address the fabric never routes back to.
const AttackerAddr = 0xBAD00001

// DosFabricConfig parameterizes the fabric-wide DoS scenario.
type DosFabricConfig struct {
	Fabric Config
	// Dos tunes each leaf's detector (default usecases.DefaultDosConfig).
	Dos usecases.DosConfig
	// SendersPerLeaf benign TCP senders per leaf (default 4), each
	// paced at PerSenderBps scaled by (1 + leaf/2) so per-sender rates
	// differ and the fabric-wide top-k has a real ranking to find.
	//
	// Defaults are sized so the aggregate benign load converging on the
	// victim leaf stays well under the detector's threshold: the
	// detector attributes each total-byte delta to the sampled sender,
	// so a src's estimate tends toward its packet share of the leaf's
	// aggregate — push the aggregate near the threshold and heavily
	// sampled benign sources (the victim's own ACK stream above all)
	// get falsely blocked.
	SendersPerLeaf int
	PerSenderBps   float64
	// AttackBps is the flood rate (default 25 Gbps); BottleneckBps the
	// victim access link (default 10 Gbps).
	AttackBps     float64
	BottleneckBps float64
}

func (cfg *DosFabricConfig) setDefaults() {
	if cfg.Dos == (usecases.DosConfig{}) {
		cfg.Dos = usecases.DefaultDosConfig()
		// Longer estimate window than the single-switch scenario: the
		// fabric funnels every leaf's benign flows through the victim
		// leaf, so early small-denominator estimates are noisier here.
		cfg.Dos.MinDuration = 200 * time.Microsecond
	}
	if cfg.SendersPerLeaf <= 0 {
		cfg.SendersPerLeaf = 4
	}
	if cfg.PerSenderBps <= 0 {
		// Size the default so the benign aggregate converging on the
		// victim stays near 400 Mbps at ANY fabric size: every leaf's
		// senders funnel through the victim leaf, so a fixed per-sender
		// default would push large fabrics over the detector threshold
		// via attribution noise. Σ over leaves of the (1 + l/2) scale
		// is L + L(L-1)/4.
		l := float64(cfg.Fabric.Leaves)
		weight := float64(cfg.SendersPerLeaf) * (l + l*(l-1)/4)
		if weight <= 0 {
			weight = float64(cfg.SendersPerLeaf)
		}
		cfg.PerSenderBps = 400e6 / weight
	}
	if cfg.AttackBps <= 0 {
		cfg.AttackBps = 25e9
	}
	if cfg.BottleneckBps <= 0 {
		cfg.BottleneckBps = 10e9
	}
}

// DosFabric is a built fabric running the DoS scenario.
type DosFabric struct {
	Sim *sim.Simulator
	F   *Fabric
	Cfg DosFabricConfig

	// Detectors holds each leaf's DoS detector by node name.
	Detectors map[string]*usecases.DosDetector
	Victim    *netsim.Host
	Flood     *netsim.Flooder
	// VictimAddr is the victim's fabric address; VictimLeaf its leaf.
	VictimAddr uint32
	VictimLeaf int

	// FloodStart is when the attacker began (set by Run).
	FloodStart sim.Time
	// AttackArrivals are the virtual times attack packets crossed a
	// spine→victim-leaf trunk — the pre-filter metric the escalation
	// is judged on.
	AttackArrivals []sim.Time
	// DeliveredBySrc is ground-truth delivered bytes per benign sender
	// address, for heavy-hitter accuracy checks.
	DeliveredBySrc map[uint64]uint64
}

// NewDosFabric builds the fabric and wires the scenario onto it.
func NewDosFabric(s *sim.Simulator, cfg DosFabricConfig) (*DosFabric, error) {
	cfg.setDefaults()
	f, err := Build(s, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	fc := f.Cfg // defaults resolved
	d := &DosFabric{
		Sim: s, F: f, Cfg: cfg,
		Detectors:      make(map[string]*usecases.DosDetector),
		VictimLeaf:     0,
		VictimAddr:     HostAddr(0, fc.HostPorts-1),
		DeliveredBySrc: make(map[uint64]uint64),
	}
	for _, leaf := range f.Leaves {
		det := usecases.NewDosDetector(cfg.Dos)
		if err := leaf.Agent.RegisterNativeReaction("dos_react", det.React); err != nil {
			return nil, err
		}
		d.Detectors[leaf.Name] = det
	}

	schema := f.Leaves[0].Plan.Prog.Schema
	victimLeaf := f.Leaves[d.VictimLeaf]
	victimPort := fc.HostPorts - 1
	d.Victim = usecases.WireDosVictim(victimLeaf.Net, usecases.DosAddressing{
		VictimAddr: d.VictimAddr, VictimPort: victimPort,
	})
	victimLeaf.Sw.SetPortBandwidth(victimPort, cfg.BottleneckBps)

	// Benign senders: every leaf, host ports 0..HostPorts-2 (the last
	// port is reserved for the victim), rates scaled per leaf.
	for l, leaf := range f.Leaves {
		lCopy := l
		senderPorts := fc.HostPorts - 1
		ad := usecases.DosAddressing{
			VictimAddr: d.VictimAddr, VictimPort: victimPort,
			SenderAddr: func(i int) uint32 { return HostAddr(lCopy, i%senderPorts) },
			SenderPort: func(i int) int { return i % senderPorts },
		}
		rate := cfg.PerSenderBps * (1 + float64(l)/2)
		flows := usecases.WireDosSenders(leaf.Net, schema, cfg.SendersPerLeaf, rate, ad, nil)
		for i, fl := range flows {
			src := uint64(ad.SenderAddr(i))
			fl.OnDeliver = func(at sim.Time, bytes int) {
				d.DeliveredBySrc[src] += uint64(bytes)
			}
		}
	}

	// The flood enters at spine 0's border port.
	d.Flood = usecases.WireDosAttacker(f.Spines[0].Net, schema, cfg.AttackBps, usecases.DosAddressing{
		VictimAddr:   d.VictimAddr,
		AttackerAddr: AttackerAddr,
		AttackerPort: f.BorderPort(),
	})

	// Meter attack packets crossing any spine→victim-leaf trunk.
	srcField := schema.MustID(usecases.FM.Src)
	for _, tr := range f.Trunks[d.VictimLeaf] {
		tr.Tap = func(from int, pkt *packet.Packet) {
			if from == 1 && pkt.Get(srcField) == AttackerAddr {
				d.AttackArrivals = append(d.AttackArrivals, s.Now())
			}
		}
	}
	return d, nil
}

// Run drives the scenario: warmup, flood for tail, then drain and
// stop. Returns the first agent or coordinator error.
func (d *DosFabric) Run(warmup, tail time.Duration) error {
	d.F.Start()
	d.Sim.RunFor(warmup)
	d.FloodStart = d.Sim.Now()
	d.Flood.Start()
	d.Sim.RunFor(tail)
	d.Flood.Stop()
	d.F.Stop()
	d.Sim.RunFor(200 * time.Microsecond)
	if err := d.F.Err(); err != nil {
		return err
	}
	return d.F.Coord.Err()
}

// Escalation returns the attacker's escalation record, or nil if the
// fabric never detected it.
func (d *DosFabric) Escalation() *Escalation {
	return d.F.Coord.Escalation(AttackerAddr)
}

// AttackRate returns the attack arrival rate (packets/sec) at the
// victim leaf's trunks inside [from, to).
func (d *DosFabric) AttackRate(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	n := 0
	for _, at := range d.AttackArrivals {
		if at >= from && at < to {
			n++
		}
	}
	return float64(n) / to.Sub(from).Seconds()
}

// Suppression compares the attack arrival rate during the unmitigated
// window [FloodStart, SpinesDoneAt) against the post-escalation window
// [SpinesDoneAt+slack, end) and returns the fractional drop (1 = fully
// suppressed). Returns an error if the escalation never completed at
// the spines.
func (d *DosFabric) Suppression(end sim.Time) (float64, error) {
	esc := d.Escalation()
	if esc == nil {
		return 0, fmt.Errorf("fabric: attacker %#x never escalated", uint64(AttackerAddr))
	}
	if esc.SpinesDoneAt == 0 {
		return 0, fmt.Errorf("fabric: spine filters never completed for %#x", uint64(AttackerAddr))
	}
	const slack = 20 * time.Microsecond
	before := d.AttackRate(d.FloodStart, esc.SpinesDoneAt)
	after := d.AttackRate(esc.SpinesDoneAt.Add(slack), end)
	if before <= 0 {
		return 0, fmt.Errorf("fabric: no attack traffic observed before escalation")
	}
	return 1 - after/before, nil
}
