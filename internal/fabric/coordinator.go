package fabric

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/ctlchan"
	"repro/internal/driver"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// CoordinatorOptions tunes the fabric coordinator.
type CoordinatorOptions struct {
	// BlockEvent is the event kind that triggers a network-wide
	// escalation (default "dos.block"; Key = offending source).
	BlockEvent string
	// HHEvent is the per-sender estimate kind merged into the global
	// heavy-hitter view (default "hh.estimate"; Key = source, Val =
	// estimated bytes).
	HHEvent string
	// RetryBackoff spaces install/audit retries while a node's control
	// channel is degraded (default 50µs).
	RetryBackoff time.Duration
	// OnEscalation, if set, runs synchronously when an escalation is
	// created, before any install is issued — the chaos tests' hook for
	// injecting faults "mid-escalation".
	OnEscalation func(esc *Escalation)
}

func (o *CoordinatorOptions) setDefaults() {
	if o.BlockEvent == "" {
		o.BlockEvent = "dos.block"
	}
	if o.HHEvent == "" {
		o.HHEvent = "hh.estimate"
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Microsecond
	}
}

// Escalation tracks one network-wide reaction: a source blocked by one
// switch's local agent being filtered at every other switch.
type Escalation struct {
	// Src is the filtered source address.
	Src uint64
	// DetectedAt/DetectedBy record the triggering block event.
	DetectedAt sim.Time
	DetectedBy string
	// Installed maps node name → virtual time its filter committed.
	Installed map[string]sim.Time
	// SpinesDoneAt is when the last spine filter committed (the
	// upstream path is cut from here on); AllDoneAt when every target
	// has it. Zero while incomplete.
	SpinesDoneAt sim.Time
	AllDoneAt    sim.Time

	targets      int
	spineTargets int
	spinesDone   int
}

// Complete reports whether every target switch holds the filter.
func (e *Escalation) Complete() bool { return e.AllDoneAt != 0 }

// HHEntry is one row of the fabric-wide heavy-hitter view.
type HHEntry struct {
	Src   uint64
	Bytes uint64
}

// CoordinatorStats counts coordinator activity.
type CoordinatorStats struct {
	// Events is every event observed; Blocks/HHReports split it by kind.
	Events    uint64
	Blocks    uint64
	HHReports uint64
	// DupBlocks counts block events for sources already escalating —
	// e.g. a transit switch detecting the same attacker later.
	DupBlocks uint64
	// FilterInstalls counts filters committed on target switches.
	FilterInstalls uint64
	// DegradedInstalls counts installs abandoned by a degraded channel
	// (ambiguous fate); AuditConfirmed of those were found already
	// present on audit, Reissues were found absent and sent again.
	DegradedInstalls uint64
	AuditConfirmed   uint64
	Reissues         uint64
	// AuditRetries counts audit reads that themselves failed (channel
	// still down) and were retried after RetryBackoff.
	AuditRetries uint64
	// TransientRetries counts installs retried on ErrTransient.
	TransientRetries uint64
	// InstallErrors counts installs abandoned on permanent errors.
	InstallErrors uint64
	// GraySuspects/GrayClears count gray-failure events consumed (dups
	// for an already-excluded uplink are counted but act as no-ops).
	GraySuspects uint64
	GrayClears   uint64
	// Reroutes counts exclude/restore transitions acted on; RouteMoves
	// the individual route-entry modifications committed for them.
	Reroutes   uint64
	RouteMoves uint64
	// DegradedRouteMoves counts route modifications abandoned by a
	// degraded channel; RouteAuditConfirmed of those were found already
	// applied on audit, RouteReissues were found stale and sent again.
	DegradedRouteMoves  uint64
	RouteAuditConfirmed uint64
	RouteReissues       uint64
}

// SpineHealthState is the coordinator's verdict on one spine.
type SpineHealthState uint8

const (
	// SpineHealthy: no leaf currently reports loss toward the spine.
	SpineHealthy SpineHealthState = iota
	// SpineGray: some — but not all — leaves report loss, the signature
	// of a gray trunk (the spine itself is up; specific links drop).
	SpineGray
	// SpineDead: every leaf reports loss, or the coordinator's own
	// control channel to the spine says the peer is dead — the
	// whole-switch failure signature.
	SpineDead
)

func (s SpineHealthState) String() string {
	switch s {
	case SpineGray:
		return "gray"
	case SpineDead:
		return "dead"
	default:
		return "healthy"
	}
}

// SpineHealth is the coordinator's merged per-leaf evidence about one
// spine.
type SpineHealth struct {
	State SpineHealthState
	// Suspects is the set of leaves currently reporting probe loss on
	// their uplink to this spine.
	Suspects map[string]bool
	// PeerDead notes corroborating channel evidence: the coordinator's
	// own client to this spine currently classifies its degrade as
	// peer-dead. Best-effort — the coordinator only learns it when an
	// operation to the spine times out, so a crash with no in-flight
	// coordinator traffic shows up through probe evidence alone.
	PeerDead bool
	// Since is when State last changed (zero if never).
	Since sim.Time
}

// Reroute records one coordinator reaction to per-leaf link evidence:
// excluding a spine from one leaf's ECMP paths (Exclude true) or
// restoring it after heal (false). A bad trunk leaf↔spine kills both
// directions, so one piece of evidence moves two route sets: the
// evidence leaf's own egress, and every other leaf's routes toward
// destinations on the evidence leaf (which would die on the
// spine→leaf hop). Trunks the evidence says nothing about are left
// alone.
type Reroute struct {
	Leaf  string
	Spine int
	// Exclude distinguishes suspect-driven exclusion from clear-driven
	// restore.
	Exclude bool
	// At is the triggering event's emission time (detection instant at
	// the leaf); DoneAt when every implied route move had committed on
	// the leaf — zero while moves are still in flight.
	At     sim.Time
	DoneAt sim.Time
	// Moves is the number of destinations shifted to another spine.
	Moves int

	pending int
}

// Coordinator subscribes to every agent's events and composes
// network-wide reactions. It runs entirely on the virtual clock: a
// dispatcher process consumes the event queue, and one installer
// process per node applies filters through that node's own lossy
// control channel — so one partitioned switch can stall only its own
// installer, never the dispatcher or its peers.
//
// At-most-once discipline: an install abandoned with
// driver.ErrChannelDegraded MAY have executed server-side, and by the
// time the error surfaces the channel's MSL quarantine guarantees no
// copy is still in flight. The installer therefore audits the filter
// table (reads are idempotent) and reissues only if the entry is
// definitely absent — a blind retry could double-install.
type Coordinator struct {
	sim  *sim.Simulator
	opts CoordinatorOptions

	f          *Fabric
	installers map[string]*installer
	order      []string // node names, deterministic dispatch order

	disp    *sim.Proc
	queue   []core.Event
	idle    bool
	stopped bool

	escalations map[uint64]*Escalation
	escOrder    []uint64
	hh          map[uint64]uint64

	// health[sp] merges per-leaf probe evidence about spine sp; exclude
	// is each leaf's current ECMP exclusion set; assign tracks where
	// each leaf's remote destinations currently route (lazily seeded
	// from the full-set hash the prologues installed).
	health   []SpineHealth
	exclude  map[string]map[int]bool
	assign   map[string]map[uint32]int
	reroutes []*Reroute

	stats CoordinatorStats
	err   error
}

func newCoordinator(s *sim.Simulator, opts CoordinatorOptions) *Coordinator {
	co := &Coordinator{
		sim: s, opts: opts,
		installers:  make(map[string]*installer),
		escalations: make(map[uint64]*Escalation),
		hh:          make(map[uint64]uint64),
		exclude:     make(map[string]map[int]bool),
		assign:      make(map[string]map[uint32]int),
	}
	co.disp = s.Spawn("fabric-coordinator", co.run)
	return co
}

// attach wires the coordinator to the built fabric: one installer
// process per node, each writing through that node's CoordCli.
func (co *Coordinator) attach(f *Fabric) {
	co.f = f
	co.health = make([]SpineHealth, f.Cfg.Spines)
	for sp := range co.health {
		co.health[sp].Suspects = make(map[string]bool)
	}
	for _, n := range f.Nodes() {
		co.order = append(co.order, n.Name)
		ins := &installer{co: co, node: n}
		ins.proc = co.sim.Spawn("fabric-install-"+n.Name, ins.run)
		co.installers[n.Name] = ins
	}
}

// Observe is the core.Options.EventSink of every fabric agent: enqueue
// and wake the dispatcher. It runs inside the emitting agent's process
// and must stay non-blocking.
func (co *Coordinator) Observe(ev core.Event) {
	if co.stopped {
		return
	}
	co.queue = append(co.queue, ev)
	if co.idle {
		co.idle = false
		co.disp.Unpark()
	}
}

func (co *Coordinator) run(p *sim.Proc) {
	for {
		if co.stopped {
			return
		}
		if len(co.queue) == 0 {
			co.idle = true
			p.Park()
			continue
		}
		ev := co.queue[0]
		co.queue = co.queue[1:]
		co.handle(ev)
	}
}

func (co *Coordinator) handle(ev core.Event) {
	co.stats.Events++
	switch ev.Kind {
	case co.opts.BlockEvent:
		co.stats.Blocks++
		co.escalate(ev)
	case co.opts.HHEvent:
		co.stats.HHReports++
		// Estimates are monotone per sender; keep the best view.
		if ev.Val > co.hh[ev.Key] {
			co.hh[ev.Key] = ev.Val
		}
	case EventGraySuspect:
		co.stats.GraySuspects++
		co.graySuspect(ev)
	case EventGrayClear:
		co.stats.GrayClears++
		co.grayClear(ev)
	}
}

// spineForEvent maps a leaf detector event (Key = the leaf's uplink
// port) back to the spine it faces, or -1 for a malformed event.
func (co *Coordinator) spineForEvent(ev core.Event) (*Node, int) {
	n := co.f.Node(ev.Agent)
	if n == nil || n.IsSpine {
		return nil, -1
	}
	sp := int(ev.Key) - co.f.Cfg.HostPorts
	if sp < 0 || sp >= co.f.Cfg.Spines {
		return nil, -1
	}
	return n, sp
}

// graySuspect is one leaf's detector latching an uplink: fold the
// evidence into the spine's health view and move that leaf's affected
// destinations off the spine.
func (co *Coordinator) graySuspect(ev core.Event) {
	leaf, sp := co.spineForEvent(ev)
	if leaf == nil {
		return
	}
	ex := co.exclude[leaf.Name]
	if ex == nil {
		ex = make(map[int]bool)
		co.exclude[leaf.Name] = ex
	}
	if ex[sp] {
		return
	}
	ex[sp] = true
	co.health[sp].Suspects[leaf.Name] = true
	co.updateHealth(sp)
	co.reroute(leaf, sp, true, ev.At)
}

// grayClear is the detector's heal: drop the evidence and move the
// leaf's destinations back onto their home spine.
func (co *Coordinator) grayClear(ev core.Event) {
	leaf, sp := co.spineForEvent(ev)
	if leaf == nil {
		return
	}
	ex := co.exclude[leaf.Name]
	if !ex[sp] {
		return
	}
	delete(ex, sp)
	delete(co.health[sp].Suspects, leaf.Name)
	co.updateHealth(sp)
	co.reroute(leaf, sp, false, ev.At)
}

// updateHealth reclassifies spine sp from the current evidence:
// unanimous leaf suspicion (or the coordinator's own channel reporting
// the peer dead) is a whole-switch failure; partial suspicion is a
// gray link; none is healthy.
func (co *Coordinator) updateHealth(sp int) {
	h := &co.health[sp]
	h.PeerDead = co.f.Spines[sp].CoordCli.DegradedCause() == ctlchan.CausePeerDead
	st := SpineHealthy
	switch {
	case len(h.Suspects) == 0:
		st = SpineHealthy
	case len(h.Suspects) == len(co.f.Leaves) || h.PeerDead:
		st = SpineDead
	default:
		st = SpineGray
	}
	if st != h.State {
		h.State = st
		h.Since = co.sim.Now()
	}
}

// reroute reacts to one evidence change about trunk evLeaf↔sp: every
// affected (source leaf, destination) pair is re-resolved under the
// union of the source's exclusions and the destination leaf's (a path
// crosses both trunks), and each changed route is enqueued on its
// owning leaf's installer — the same serialized, at-most-once path
// escalation filters take. Affected pairs are exactly those touching
// the evidence leaf: its own egress, and other leaves' routes toward
// destinations on it. at is the detection (or heal) instant.
func (co *Coordinator) reroute(evLeaf *Node, sp int, exclude bool, at sim.Time) {
	co.stats.Reroutes++
	rr := &Reroute{Leaf: evLeaf.Name, Spine: sp, Exclude: exclude, At: at}
	co.reroutes = append(co.reroutes, rr)
	spines := co.f.Cfg.Spines
	for _, src := range co.f.Leaves {
		as := co.assign[src.Name]
		if as == nil {
			as = make(map[uint32]int)
			co.assign[src.Name] = as
		}
		dsts := make([]uint32, 0, len(src.RouteHandles))
		for dst := range src.RouteHandles {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		for _, dst := range dsts {
			dl := AddrLeaf(dst)
			if src != evLeaf && dl != evLeaf.Index {
				continue // path touches neither side of the evidence trunk
			}
			cur, ok := as[dst]
			if !ok {
				cur = SpineForSet(dst, spines, nil)
			}
			want := SpineForSet(dst, spines, co.unionExclude(src.Name, dl))
			if want == cur {
				continue
			}
			as[dst] = want
			rr.Moves++
			rr.pending++
			co.installers[src.Name].enqueue(installOp{route: &routeOp{
				dst: dst, handle: src.RouteHandles[dst],
				port: uint64(co.f.UplinkPort(want)), rr: rr,
			}})
		}
	}
	if rr.pending == 0 {
		rr.DoneAt = co.sim.Now()
	}
}

// unionExclude is the spine set a path from src to a host on dstLeaf
// must avoid: spines with a bad trunk on either end of the path.
func (co *Coordinator) unionExclude(src string, dstLeaf int) map[int]bool {
	a := co.exclude[src]
	b := co.exclude[co.f.Leaves[dstLeaf].Name]
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	u := make(map[int]bool, len(a)+len(b))
	for sp := range a {
		u[sp] = true
	}
	for sp := range b {
		u[sp] = true
	}
	return u
}

// finishRoute records one committed route move.
func (co *Coordinator) finishRoute(op *routeOp) {
	co.stats.RouteMoves++
	op.rr.pending--
	if op.rr.pending == 0 {
		op.rr.DoneAt = co.sim.Now()
	}
}

// Health returns the coordinator's current view of spine sp.
func (co *Coordinator) Health(sp int) SpineHealth {
	h := co.health[sp]
	out := SpineHealth{State: h.State, PeerDead: h.PeerDead, Since: h.Since,
		Suspects: make(map[string]bool, len(h.Suspects))}
	for l := range h.Suspects {
		out.Suspects[l] = true
	}
	return out
}

// Reroutes returns every reroute acted on, in processing order.
func (co *Coordinator) Reroutes() []*Reroute { return co.reroutes }

// escalate turns one switch's local block into filter installs on
// every other switch.
func (co *Coordinator) escalate(ev core.Event) {
	if co.escalations[ev.Key] != nil {
		co.stats.DupBlocks++
		return
	}
	esc := &Escalation{
		Src: ev.Key, DetectedAt: ev.At, DetectedBy: ev.Agent,
		Installed: make(map[string]sim.Time),
	}
	co.escalations[ev.Key] = esc
	co.escOrder = append(co.escOrder, ev.Key)
	if co.opts.OnEscalation != nil {
		co.opts.OnEscalation(esc)
	}
	for _, name := range co.order {
		if name == ev.Agent {
			continue // the detecting switch already blocks locally
		}
		esc.targets++
		if co.installers[name].node.IsSpine {
			esc.spineTargets++
		}
		co.installers[name].enqueue(installOp{src: ev.Key, esc: esc})
	}
}

// finishInstall records a committed filter on n.
func (co *Coordinator) finishInstall(n *Node, op installOp) {
	now := co.sim.Now()
	op.esc.Installed[n.Name] = now
	co.stats.FilterInstalls++
	if n.IsSpine {
		op.esc.spinesDone++
		if op.esc.spinesDone == op.esc.spineTargets {
			op.esc.SpinesDoneAt = now
		}
	}
	if len(op.esc.Installed) == op.esc.targets {
		op.esc.AllDoneAt = now
	}
}

// Escalation returns the escalation for src, or nil.
func (co *Coordinator) Escalation(src uint64) *Escalation { return co.escalations[src] }

// Escalations returns all escalations in creation order.
func (co *Coordinator) Escalations() []*Escalation {
	out := make([]*Escalation, 0, len(co.escOrder))
	for _, src := range co.escOrder {
		out = append(out, co.escalations[src])
	}
	return out
}

// TopK returns the fabric-wide heavy-hitter view: the k largest merged
// per-sender estimates, bytes descending (source ascending on ties —
// deterministic).
func (co *Coordinator) TopK(k int) []HHEntry {
	out := make([]HHEntry, 0, len(co.hh))
	for src, b := range co.hh {
		out = append(out, HHEntry{Src: src, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Src < out[j].Src
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Stats returns the coordinator's counters.
func (co *Coordinator) Stats() CoordinatorStats { return co.stats }

func (co *Coordinator) stop() {
	co.stopped = true
	if co.idle {
		co.idle = false
		co.disp.Unpark()
	}
	for _, ins := range co.installers {
		ins.stop()
	}
}

// ---- per-node installer ----

// installOp is one unit of installer work: either an escalation filter
// (esc set) or a reroute route-move (route set). Both ride the same
// per-node FIFO, so a node's filters and route moves apply in the
// order the coordinator decided them.
type installOp struct {
	src uint64
	esc *Escalation

	route *routeOp
}

// routeOp modifies one destination's route entry to a new uplink port.
type routeOp struct {
	dst    uint32
	handle rmt.EntryHandle
	port   uint64
	rr     *Reroute
}

// installer serializes one node's filter installs on its own process,
// so a wedged channel to this node cannot block installs elsewhere.
type installer struct {
	co    *Coordinator
	node  *Node
	proc  *sim.Proc
	queue []installOp
	idle  bool
}

func (ins *installer) enqueue(op installOp) {
	ins.queue = append(ins.queue, op)
	if ins.idle {
		ins.idle = false
		ins.proc.Unpark()
	}
}

func (ins *installer) stop() {
	if ins.idle {
		ins.idle = false
		ins.proc.Unpark()
	}
}

func (ins *installer) run(p *sim.Proc) {
	for {
		if ins.co.stopped {
			return
		}
		if len(ins.queue) == 0 {
			ins.idle = true
			p.Park()
			continue
		}
		op := ins.queue[0]
		ins.queue = ins.queue[1:]
		if op.route != nil {
			ins.moveRoute(p, op.route)
		} else {
			ins.install(p, op)
		}
	}
}

// moveRoute applies one route modification with the same at-most-once
// discipline as install: a degraded modify MAY have executed, so audit
// the route table (reads are idempotent) and reissue only if the entry
// still shows a different port. Modify is idempotent in effect, but a
// blind retry would still burn channel budget and blur the stats that
// separate ambiguity from repetition.
func (ins *installer) moveRoute(p *sim.Proc, op *routeOp) {
	co := ins.co
	for !co.stopped {
		err := ins.node.CoordCli.ModifyEntry(p, RouteTable, op.handle, RouteAction, []uint64{op.port})
		switch {
		case err == nil:
			co.finishRoute(op)
			return
		case errors.Is(err, driver.ErrChannelDegraded):
			co.stats.DegradedRouteMoves++
			for !co.stopped {
				applied, aerr := ins.auditRoute(p, op)
				if aerr == nil {
					if applied {
						co.stats.RouteAuditConfirmed++
						co.finishRoute(op)
						return
					}
					co.stats.RouteReissues++
					break
				}
				co.stats.AuditRetries++
				p.Sleep(co.opts.RetryBackoff)
			}
		case errors.Is(err, driver.ErrTransient):
			co.stats.TransientRetries++
			p.Sleep(co.opts.RetryBackoff)
		default:
			co.stats.InstallErrors++
			co.setErr(fmt.Errorf("fabric: move route %#x on %s: %w", op.dst, ins.node.Name, err))
			return
		}
	}
}

// auditRoute reads the node's route table and reports whether op's
// destination already routes out op.port.
func (ins *installer) auditRoute(p *sim.Proc, op *routeOp) (bool, error) {
	entries, err := ins.node.CoordCli.ReadEntries(p, RouteTable)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if len(e.Keys) == 1 && e.Keys[0].Value == uint64(op.dst) {
			return len(e.Data) == 1 && e.Data[0] == op.port, nil
		}
	}
	return false, nil
}

// install applies one filter with the at-most-once discipline
// described on Coordinator.
func (ins *installer) install(p *sim.Proc, op installOp) {
	co := ins.co
	entry := rmt.Entry{
		Keys: []rmt.KeySpec{rmt.ExactKey(op.src)}, Action: FilterAction,
	}
	for !co.stopped {
		_, err := ins.node.CoordCli.AddEntry(p, FilterTable, entry)
		switch {
		case err == nil:
			co.finishInstall(ins.node, op)
			return
		case errors.Is(err, driver.ErrChannelDegraded):
			co.stats.DegradedInstalls++
			// Ambiguous fate, but no copy is in flight anymore (the
			// client's MSL quarantine elapsed before this error
			// surfaced) — audit, then reissue only on definite absence.
			for !co.stopped {
				present, aerr := ins.audit(p, op.src)
				if aerr == nil {
					if present {
						co.stats.AuditConfirmed++
						co.finishInstall(ins.node, op)
						return
					}
					co.stats.Reissues++
					break
				}
				co.stats.AuditRetries++
				p.Sleep(co.opts.RetryBackoff)
			}
		case errors.Is(err, driver.ErrTransient):
			co.stats.TransientRetries++
			p.Sleep(co.opts.RetryBackoff)
		default:
			co.stats.InstallErrors++
			co.setErr(fmt.Errorf("fabric: install filter %#x on %s: %w", op.src, ins.node.Name, err))
			return
		}
	}
}

// audit reads the node's filter table and reports whether src is
// already filtered.
func (ins *installer) audit(p *sim.Proc, src uint64) (bool, error) {
	entries, err := ins.node.CoordCli.ReadEntries(p, FilterTable)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if len(e.Keys) == 1 && e.Keys[0].Value == src {
			return true, nil
		}
	}
	return false, nil
}

func (co *Coordinator) setErr(err error) {
	if co.err == nil {
		co.err = err
	}
}

// Err returns the first permanent installer error, if any.
func (co *Coordinator) Err() error { return co.err }
