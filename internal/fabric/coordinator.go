package fabric

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// CoordinatorOptions tunes the fabric coordinator.
type CoordinatorOptions struct {
	// BlockEvent is the event kind that triggers a network-wide
	// escalation (default "dos.block"; Key = offending source).
	BlockEvent string
	// HHEvent is the per-sender estimate kind merged into the global
	// heavy-hitter view (default "hh.estimate"; Key = source, Val =
	// estimated bytes).
	HHEvent string
	// RetryBackoff spaces install/audit retries while a node's control
	// channel is degraded (default 50µs).
	RetryBackoff time.Duration
	// OnEscalation, if set, runs synchronously when an escalation is
	// created, before any install is issued — the chaos tests' hook for
	// injecting faults "mid-escalation".
	OnEscalation func(esc *Escalation)
}

func (o *CoordinatorOptions) setDefaults() {
	if o.BlockEvent == "" {
		o.BlockEvent = "dos.block"
	}
	if o.HHEvent == "" {
		o.HHEvent = "hh.estimate"
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Microsecond
	}
}

// Escalation tracks one network-wide reaction: a source blocked by one
// switch's local agent being filtered at every other switch.
type Escalation struct {
	// Src is the filtered source address.
	Src uint64
	// DetectedAt/DetectedBy record the triggering block event.
	DetectedAt sim.Time
	DetectedBy string
	// Installed maps node name → virtual time its filter committed.
	Installed map[string]sim.Time
	// SpinesDoneAt is when the last spine filter committed (the
	// upstream path is cut from here on); AllDoneAt when every target
	// has it. Zero while incomplete.
	SpinesDoneAt sim.Time
	AllDoneAt    sim.Time

	targets      int
	spineTargets int
	spinesDone   int
}

// Complete reports whether every target switch holds the filter.
func (e *Escalation) Complete() bool { return e.AllDoneAt != 0 }

// HHEntry is one row of the fabric-wide heavy-hitter view.
type HHEntry struct {
	Src   uint64
	Bytes uint64
}

// CoordinatorStats counts coordinator activity.
type CoordinatorStats struct {
	// Events is every event observed; Blocks/HHReports split it by kind.
	Events    uint64
	Blocks    uint64
	HHReports uint64
	// DupBlocks counts block events for sources already escalating —
	// e.g. a transit switch detecting the same attacker later.
	DupBlocks uint64
	// FilterInstalls counts filters committed on target switches.
	FilterInstalls uint64
	// DegradedInstalls counts installs abandoned by a degraded channel
	// (ambiguous fate); AuditConfirmed of those were found already
	// present on audit, Reissues were found absent and sent again.
	DegradedInstalls uint64
	AuditConfirmed   uint64
	Reissues         uint64
	// AuditRetries counts audit reads that themselves failed (channel
	// still down) and were retried after RetryBackoff.
	AuditRetries uint64
	// TransientRetries counts installs retried on ErrTransient.
	TransientRetries uint64
	// InstallErrors counts installs abandoned on permanent errors.
	InstallErrors uint64
}

// Coordinator subscribes to every agent's events and composes
// network-wide reactions. It runs entirely on the virtual clock: a
// dispatcher process consumes the event queue, and one installer
// process per node applies filters through that node's own lossy
// control channel — so one partitioned switch can stall only its own
// installer, never the dispatcher or its peers.
//
// At-most-once discipline: an install abandoned with
// driver.ErrChannelDegraded MAY have executed server-side, and by the
// time the error surfaces the channel's MSL quarantine guarantees no
// copy is still in flight. The installer therefore audits the filter
// table (reads are idempotent) and reissues only if the entry is
// definitely absent — a blind retry could double-install.
type Coordinator struct {
	sim  *sim.Simulator
	opts CoordinatorOptions

	f          *Fabric
	installers map[string]*installer
	order      []string // node names, deterministic dispatch order

	disp    *sim.Proc
	queue   []core.Event
	idle    bool
	stopped bool

	escalations map[uint64]*Escalation
	escOrder    []uint64
	hh          map[uint64]uint64
	stats       CoordinatorStats
	err         error
}

func newCoordinator(s *sim.Simulator, opts CoordinatorOptions) *Coordinator {
	co := &Coordinator{
		sim: s, opts: opts,
		installers:  make(map[string]*installer),
		escalations: make(map[uint64]*Escalation),
		hh:          make(map[uint64]uint64),
	}
	co.disp = s.Spawn("fabric-coordinator", co.run)
	return co
}

// attach wires the coordinator to the built fabric: one installer
// process per node, each writing through that node's CoordCli.
func (co *Coordinator) attach(f *Fabric) {
	co.f = f
	for _, n := range f.Nodes() {
		co.order = append(co.order, n.Name)
		ins := &installer{co: co, node: n}
		ins.proc = co.sim.Spawn("fabric-install-"+n.Name, ins.run)
		co.installers[n.Name] = ins
	}
}

// Observe is the core.Options.EventSink of every fabric agent: enqueue
// and wake the dispatcher. It runs inside the emitting agent's process
// and must stay non-blocking.
func (co *Coordinator) Observe(ev core.Event) {
	if co.stopped {
		return
	}
	co.queue = append(co.queue, ev)
	if co.idle {
		co.idle = false
		co.disp.Unpark()
	}
}

func (co *Coordinator) run(p *sim.Proc) {
	for {
		if co.stopped {
			return
		}
		if len(co.queue) == 0 {
			co.idle = true
			p.Park()
			continue
		}
		ev := co.queue[0]
		co.queue = co.queue[1:]
		co.handle(ev)
	}
}

func (co *Coordinator) handle(ev core.Event) {
	co.stats.Events++
	switch ev.Kind {
	case co.opts.BlockEvent:
		co.stats.Blocks++
		co.escalate(ev)
	case co.opts.HHEvent:
		co.stats.HHReports++
		// Estimates are monotone per sender; keep the best view.
		if ev.Val > co.hh[ev.Key] {
			co.hh[ev.Key] = ev.Val
		}
	}
}

// escalate turns one switch's local block into filter installs on
// every other switch.
func (co *Coordinator) escalate(ev core.Event) {
	if co.escalations[ev.Key] != nil {
		co.stats.DupBlocks++
		return
	}
	esc := &Escalation{
		Src: ev.Key, DetectedAt: ev.At, DetectedBy: ev.Agent,
		Installed: make(map[string]sim.Time),
	}
	co.escalations[ev.Key] = esc
	co.escOrder = append(co.escOrder, ev.Key)
	if co.opts.OnEscalation != nil {
		co.opts.OnEscalation(esc)
	}
	for _, name := range co.order {
		if name == ev.Agent {
			continue // the detecting switch already blocks locally
		}
		esc.targets++
		if co.installers[name].node.IsSpine {
			esc.spineTargets++
		}
		co.installers[name].enqueue(installOp{src: ev.Key, esc: esc})
	}
}

// finishInstall records a committed filter on n.
func (co *Coordinator) finishInstall(n *Node, op installOp) {
	now := co.sim.Now()
	op.esc.Installed[n.Name] = now
	co.stats.FilterInstalls++
	if n.IsSpine {
		op.esc.spinesDone++
		if op.esc.spinesDone == op.esc.spineTargets {
			op.esc.SpinesDoneAt = now
		}
	}
	if len(op.esc.Installed) == op.esc.targets {
		op.esc.AllDoneAt = now
	}
}

// Escalation returns the escalation for src, or nil.
func (co *Coordinator) Escalation(src uint64) *Escalation { return co.escalations[src] }

// Escalations returns all escalations in creation order.
func (co *Coordinator) Escalations() []*Escalation {
	out := make([]*Escalation, 0, len(co.escOrder))
	for _, src := range co.escOrder {
		out = append(out, co.escalations[src])
	}
	return out
}

// TopK returns the fabric-wide heavy-hitter view: the k largest merged
// per-sender estimates, bytes descending (source ascending on ties —
// deterministic).
func (co *Coordinator) TopK(k int) []HHEntry {
	out := make([]HHEntry, 0, len(co.hh))
	for src, b := range co.hh {
		out = append(out, HHEntry{Src: src, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Src < out[j].Src
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Stats returns the coordinator's counters.
func (co *Coordinator) Stats() CoordinatorStats { return co.stats }

func (co *Coordinator) stop() {
	co.stopped = true
	if co.idle {
		co.idle = false
		co.disp.Unpark()
	}
	for _, ins := range co.installers {
		ins.stop()
	}
}

// ---- per-node installer ----

type installOp struct {
	src uint64
	esc *Escalation
}

// installer serializes one node's filter installs on its own process,
// so a wedged channel to this node cannot block installs elsewhere.
type installer struct {
	co    *Coordinator
	node  *Node
	proc  *sim.Proc
	queue []installOp
	idle  bool
}

func (ins *installer) enqueue(op installOp) {
	ins.queue = append(ins.queue, op)
	if ins.idle {
		ins.idle = false
		ins.proc.Unpark()
	}
}

func (ins *installer) stop() {
	if ins.idle {
		ins.idle = false
		ins.proc.Unpark()
	}
}

func (ins *installer) run(p *sim.Proc) {
	for {
		if ins.co.stopped {
			return
		}
		if len(ins.queue) == 0 {
			ins.idle = true
			p.Park()
			continue
		}
		op := ins.queue[0]
		ins.queue = ins.queue[1:]
		ins.install(p, op)
	}
}

// install applies one filter with the at-most-once discipline
// described on Coordinator.
func (ins *installer) install(p *sim.Proc, op installOp) {
	co := ins.co
	entry := rmt.Entry{
		Keys: []rmt.KeySpec{rmt.ExactKey(op.src)}, Action: FilterAction,
	}
	for !co.stopped {
		_, err := ins.node.CoordCli.AddEntry(p, FilterTable, entry)
		switch {
		case err == nil:
			co.finishInstall(ins.node, op)
			return
		case errors.Is(err, driver.ErrChannelDegraded):
			co.stats.DegradedInstalls++
			// Ambiguous fate, but no copy is in flight anymore (the
			// client's MSL quarantine elapsed before this error
			// surfaced) — audit, then reissue only on definite absence.
			for !co.stopped {
				present, aerr := ins.audit(p, op.src)
				if aerr == nil {
					if present {
						co.stats.AuditConfirmed++
						co.finishInstall(ins.node, op)
						return
					}
					co.stats.Reissues++
					break
				}
				co.stats.AuditRetries++
				p.Sleep(co.opts.RetryBackoff)
			}
		case errors.Is(err, driver.ErrTransient):
			co.stats.TransientRetries++
			p.Sleep(co.opts.RetryBackoff)
		default:
			co.stats.InstallErrors++
			co.setErr(fmt.Errorf("fabric: install filter %#x on %s: %w", op.src, ins.node.Name, err))
			return
		}
	}
}

// audit reads the node's filter table and reports whether src is
// already filtered.
func (ins *installer) audit(p *sim.Proc, src uint64) (bool, error) {
	entries, err := ins.node.CoordCli.ReadEntries(p, FilterTable)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if len(e.Keys) == 1 && e.Keys[0].Value == src {
			return true, nil
		}
	}
	return false, nil
}

func (co *Coordinator) setErr(err error) {
	if co.err == nil {
		co.err = err
	}
}

// Err returns the first permanent installer error, if any.
func (co *Coordinator) Err() error { return co.err }
