package fabric

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// attackerFilterEntries counts n's ufilter entries keyed by the
// attacker — the per-source at-most-once measure (other escalations,
// e.g. a benign false positive under a degraded control plane, may own
// further entries).
func attackerFilterEntries(t *testing.T, n *Node) int {
	t.Helper()
	entries, err := n.Drv.Switch().Entries(FilterTable)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range entries {
		if len(e.Keys) == 1 && e.Keys[0].Value == AttackerAddr {
			count++
		}
	}
	return count
}

// TestChaosPartitionedLeafMidEscalation partitions one non-detecting
// leaf's coordinator control link at the instant the escalation is
// created and heals it later. The coordinator must keep working: the
// other switches' filters commit promptly (one wedged installer never
// blocks its peers), the partitioned leaf's filter lands after the
// heal via the degraded-channel audit path, and no switch ever holds
// more than one filter entry for the attacker (at-most-once installs
// even across channel loss). Run under -race in CI: the whole fabric
// shares one virtual clock, so any cross-process data race here is a
// bug in the handoff discipline, not test noise.
func TestChaosPartitionedLeafMidEscalation(t *testing.T) {
	const healAfter = 500 * time.Microsecond

	s := sim.New(1)
	cfg := DosFabricConfig{Fabric: Config{Leaves: 3, Spines: 2, Seed: 4}}
	var d *DosFabric
	var partitionedAt, healedAt sim.Time
	cfg.Fabric.Coordinator.OnEscalation = func(esc *Escalation) {
		if esc.Src != AttackerAddr || partitionedAt != 0 {
			return
		}
		// leaf1 never detects (the victim sits on leaf0), so its filter
		// comes only from the coordinator — over a link that is now dead.
		target := d.F.Node("leaf1")
		target.CoordLink.SetPartitioned(true)
		partitionedAt = s.Now()
		s.Schedule(healAfter, func() {
			target.CoordLink.SetPartitioned(false)
			healedAt = s.Now()
		})
	}

	var err error
	d, err = NewDosFabric(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Generous tail: leaf1's install must ride out the partition, the
	// channel's degraded-mode quarantine, and the audit backoff loop.
	if err := d.Run(2*time.Millisecond, 6*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d.F.Coord.Err() != nil {
		t.Fatalf("coordinator error: %v", d.F.Coord.Err())
	}
	if partitionedAt == 0 {
		t.Fatal("fault injection never fired")
	}

	esc := d.Escalation()
	if esc == nil {
		t.Fatal("attacker never escalated")
	}
	if !esc.Complete() {
		t.Fatalf("escalation incomplete after heal: %d/%d installed (installed=%v)",
			len(esc.Installed), esc.targets, esc.Installed)
	}

	// No wedge: every healthy node's filter committed long before the
	// heal — a stalled leaf1 installer must not delay its peers.
	for name, at := range esc.Installed {
		if name == "leaf1" {
			continue
		}
		if at >= healedAt {
			t.Fatalf("%s installed at %v, after the %v heal: coordinator wedged on the partitioned node", name, at, healedAt)
		}
	}
	if esc.SpinesDoneAt == 0 || esc.SpinesDoneAt >= healedAt {
		t.Fatalf("spine filters done at %v, want before heal at %v", esc.SpinesDoneAt, healedAt)
	}

	// The partitioned leaf converged only once the link was back.
	leaf1At, ok := esc.Installed["leaf1"]
	if !ok {
		t.Fatal("leaf1 never installed")
	}
	if leaf1At < healedAt {
		t.Fatalf("leaf1 installed at %v, before the heal at %v — wrote through a dead link?", leaf1At, healedAt)
	}

	// At-most-once: exactly one attacker filter entry per target, none
	// on the detector, even though the install crossed a lossy,
	// partitioned channel and may have been audited and reissued.
	for _, n := range d.F.Nodes() {
		want := 1
		if n.Name == esc.DetectedBy {
			want = 0
		}
		if got := attackerFilterEntries(t, n); got != want {
			t.Fatalf("%s: %d attacker filter entries, want %d (at-most-once violated)", n.Name, got, want)
		}
	}

	// The partition forced the degraded path at least once; the stats
	// must show the audit discipline actually exercised, not a lucky
	// clean install.
	st := d.F.Coord.Stats()
	if st.DegradedInstalls == 0 && st.TransientRetries == 0 {
		t.Fatalf("partition left no trace in install stats: %+v", st)
	}
	// And suppression still holds fabric-wide despite the chaos.
	sup, err := d.Suppression(s.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sup < 0.9 {
		t.Fatalf("suppression %.3f under partition, want ≥ 0.9", sup)
	}
}

// TestChaosLossyControlChannels runs the full scenario with every
// control link lossy. Escalation must still complete — retries and
// audits mask the loss — and installs stay at-most-once.
func TestChaosLossyControlChannels(t *testing.T) {
	s := sim.New(1)
	cfg := DosFabricConfig{Fabric: Config{Leaves: 2, Spines: 2, Seed: 11}}
	cfg.Fabric.CtlProfile.Loss = 0.2
	// Long per-op deadline: under sustained 20% loss the default budget
	// (~4 tries) degrades ~1.7% of ops, and prologues issue hundreds.
	cfg.Fabric.CtlOpDeadline = 2 * time.Millisecond
	d, err := NewDosFabric(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(2*time.Millisecond, 6*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	esc := d.Escalation()
	if esc == nil {
		t.Fatal("attacker never escalated")
	}
	if !esc.Complete() {
		t.Fatalf("escalation incomplete under loss: %d/%d", len(esc.Installed), esc.targets)
	}
	for _, n := range d.F.Nodes() {
		want := 1
		if n.Name == esc.DetectedBy {
			want = 0
		}
		if got := attackerFilterEntries(t, n); got != want {
			t.Fatalf("%s: %d attacker filter entries, want %d", n.Name, got, want)
		}
	}
}
