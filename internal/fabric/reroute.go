package fabric

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/usecases"
)

// This file instantiates the failure-resilience scenario behind the
// fig-reroute experiment: ring traffic (each leaf's TCP senders stream
// to a receiver on the next leaf) while one trunk — or one whole spine
// — fails underneath it. The per-leaf gray detectors and the
// coordinator's ECMP-exclude reroutes are the reaction under test; the
// metric is legitimate goodput through the failure: how deep it dips,
// how fast it recovers once routes move, and how cleanly everything
// returns home after the heal.

// RerouteMode selects the injected failure.
type RerouteMode string

const (
	// ModeLinkDown takes one leaf↔spine trunk administratively down:
	// total loss on one trunk, the clean-cut failure.
	ModeLinkDown RerouteMode = "link-down"
	// ModeGray turns the same trunk gray (silent partial drop): the
	// failure that never trips admin alarms and only probe accounting
	// can see.
	ModeGray RerouteMode = "gray"
	// ModeCrash kills a whole spine: every trunk down, control
	// endpoints dead, agent halted.
	ModeCrash RerouteMode = "crash"
)

// RerouteFabricConfig parameterizes the scenario.
type RerouteFabricConfig struct {
	Fabric Config
	// Mode is the injected failure (default ModeLinkDown).
	Mode RerouteMode
	// GrayRate is ModeGray's silent drop probability (default 0.30).
	GrayRate float64
	// SendersPerLeaf paces this many TCP senders per leaf (default 2),
	// each at PerSenderBps (default 400 Mbps), to the receiver on the
	// next leaf around the ring.
	SendersPerLeaf int
	PerSenderBps   float64
	// Bucket is the goodput-series resolution (default 200µs — wide
	// enough that a paced sender lands several MSS per bucket, so the
	// recovery bar is not defeated by packet granularity).
	Bucket time.Duration
}

func (cfg *RerouteFabricConfig) setDefaults() {
	if cfg.Mode == "" {
		cfg.Mode = ModeLinkDown
	}
	if cfg.GrayRate <= 0 {
		cfg.GrayRate = 0.30
	}
	if cfg.SendersPerLeaf <= 0 {
		cfg.SendersPerLeaf = 2
	}
	if cfg.PerSenderBps <= 0 {
		cfg.PerSenderBps = 400e6
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 200 * time.Microsecond
	}
}

// RerouteFabric is a built fabric running the failure scenario.
type RerouteFabric struct {
	Sim *sim.Simulator
	F   *Fabric
	Cfg RerouteFabricConfig

	// TargetSpine is the spine the failure touches. For the link modes
	// the failed trunk is Trunks[0][TargetSpine] — chosen as the spine
	// carrying leaf 0's ring flows, so the failure is guaranteed to sit
	// on live traffic.
	TargetSpine int

	// FailAt/HealAt are stamped by Run.
	FailAt sim.Time
	HealAt sim.Time

	// buckets[i] is legitimate bytes delivered (in order, at any
	// receiver) during [i·Bucket, (i+1)·Bucket).
	buckets []uint64
}

// NewRerouteFabric builds the fabric and wires the ring traffic.
func NewRerouteFabric(s *sim.Simulator, cfg RerouteFabricConfig) (*RerouteFabric, error) {
	cfg.setDefaults()
	if cfg.Fabric.Leaves < 2 {
		return nil, fmt.Errorf("fabric: reroute scenario needs ≥2 leaves")
	}
	if cfg.Fabric.Spines < 2 {
		return nil, fmt.Errorf("fabric: reroute scenario needs ≥2 spines (no alternate path otherwise)")
	}
	f, err := Build(s, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	fc := f.Cfg
	r := &RerouteFabric{Sim: s, F: f, Cfg: cfg}
	// The leaf program carries dos_react, so a native must be registered
	// — but the ring traffic here is all legitimate, and the detector
	// attributes each leaf's whole marginal byte count to the sampled
	// sender, so at the paper's 1 Gbps bar the ~1.6 Gbps aggregate per
	// leaf would blocklist benign senders. Park the threshold far above
	// anything this scenario can generate.
	for _, leaf := range f.Leaves {
		det := usecases.NewDosDetector(usecases.DosConfig{
			ThresholdBps: 1e12, MinDuration: 50 * time.Microsecond,
		})
		if err := leaf.Agent.RegisterNativeReaction("dos_react", det.React); err != nil {
			return nil, err
		}
	}

	schema := f.Leaves[0].Plan.Prog.Schema
	rcvPort := fc.HostPorts - 1
	record := func(at sim.Time, bytes int) {
		idx := int(int64(at) / int64(cfg.Bucket))
		for len(r.buckets) <= idx {
			r.buckets = append(r.buckets, 0)
		}
		r.buckets[idx] += uint64(bytes)
	}
	for l, leaf := range f.Leaves {
		next := (l + 1) % fc.Leaves
		rcvAddr := HostAddr(next, rcvPort)
		usecases.WireDosVictim(f.Leaves[next].Net, usecases.DosAddressing{
			VictimAddr: rcvAddr, VictimPort: rcvPort,
		})
		lCopy := l
		senderPorts := fc.HostPorts - 1
		usecases.WireDosSenders(leaf.Net, schema, cfg.SendersPerLeaf, cfg.PerSenderBps,
			usecases.DosAddressing{
				VictimAddr: rcvAddr, VictimPort: rcvPort,
				SenderAddr: func(i int) uint32 { return HostAddr(lCopy, i%senderPorts) },
				SenderPort: func(i int) int { return i % senderPorts },
			}, record)
	}

	// The failure lands on the spine carrying leaf 0's flows.
	r.TargetSpine = f.SpineFor(HostAddr(1%fc.Leaves, rcvPort))
	return r, nil
}

// Run drives the scenario: warmup, inject the failure, let detection
// and reroute play out for failWindow, heal, then run healWindow for
// the restore and stop.
func (r *RerouteFabric) Run(warmup, failWindow, healWindow time.Duration) error {
	r.F.Start()
	r.Sim.RunFor(warmup)
	r.FailAt = r.Sim.Now()
	if err := r.inject(true); err != nil {
		return err
	}
	r.Sim.RunFor(failWindow)
	r.HealAt = r.Sim.Now()
	if err := r.inject(false); err != nil {
		return err
	}
	r.Sim.RunFor(healWindow)
	r.F.Stop()
	r.Sim.RunFor(200 * time.Microsecond)
	if err := r.F.Err(); err != nil {
		return err
	}
	return r.F.Coord.Err()
}

// inject applies (fail=true) or clears the configured failure.
func (r *RerouteFabric) inject(fail bool) error {
	switch r.Cfg.Mode {
	case ModeLinkDown:
		r.F.Trunks[0][r.TargetSpine].SetAdminDown(fail)
	case ModeGray:
		rate := 0.0
		if fail {
			rate = r.Cfg.GrayRate
		}
		r.F.Trunks[0][r.TargetSpine].SetGray(rate)
	case ModeCrash:
		name := r.F.Spines[r.TargetSpine].Name
		if fail {
			return r.F.Crash(name)
		}
		return r.F.Restore(name)
	default:
		return fmt.Errorf("fabric: unknown reroute mode %q", r.Cfg.Mode)
	}
	return nil
}

// Goodput returns the mean delivered rate (bytes/sec) across buckets
// fully inside [from, to). Zero if the window holds no full bucket.
func (r *RerouteFabric) Goodput(from, to sim.Time) float64 {
	b := int64(r.Cfg.Bucket)
	first := (int64(from) + b - 1) / b
	last := int64(to) / b // exclusive
	if last <= first {
		return 0
	}
	var total uint64
	for i := first; i < last; i++ {
		if i >= 0 && int(i) < len(r.buckets) {
			total += r.buckets[i]
		}
	}
	return float64(total) / (time.Duration((last - first) * b)).Seconds()
}

// MinGoodput returns the smallest single-bucket rate (bytes/sec) over
// buckets fully inside [from, to).
func (r *RerouteFabric) MinGoodput(from, to sim.Time) float64 {
	b := int64(r.Cfg.Bucket)
	first := (int64(from) + b - 1) / b
	last := int64(to) / b
	min := -1.0
	for i := first; i < last; i++ {
		var v uint64
		if i >= 0 && int(i) < len(r.buckets) {
			v = r.buckets[i]
		}
		rate := float64(v) / r.Cfg.Bucket.Seconds()
		if min < 0 || rate < min {
			min = rate
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// RecoveredAt returns the start of the first bucket at or after `from`
// from which two consecutive buckets deliver at least frac·ref
// bytes/sec, or zero if goodput never recovers before `to`.
func (r *RerouteFabric) RecoveredAt(from, to sim.Time, ref, frac float64) sim.Time {
	b := int64(r.Cfg.Bucket)
	first := (int64(from) + b - 1) / b
	last := int64(to) / b
	bar := ref * frac * r.Cfg.Bucket.Seconds() // bytes per bucket
	for i := first; i+1 < last; i++ {
		ok := true
		for j := i; j <= i+1; j++ {
			var v uint64
			if j >= 0 && int(j) < len(r.buckets) {
				v = r.buckets[j]
			}
			if float64(v) < bar {
				ok = false
				break
			}
		}
		if ok {
			return sim.Time(i * b)
		}
	}
	return 0
}

// RerouteSpan summarizes the coordinator's reaction records matching
// exclude, within [from, ∞): the earliest trigger, the latest
// completion, and the total routes moved. ok is false if no matching
// record exists or any is still incomplete.
func (r *RerouteFabric) RerouteSpan(exclude bool, from sim.Time) (first, lastDone sim.Time, moves int, ok bool) {
	for _, rr := range r.F.Coord.Reroutes() {
		if rr.Exclude != exclude || rr.At < from {
			continue
		}
		if first == 0 || rr.At < first {
			first = rr.At
		}
		if rr.DoneAt == 0 && rr.Moves > 0 {
			return first, 0, moves, false
		}
		if rr.DoneAt > lastDone {
			lastDone = rr.DoneAt
		}
		moves += rr.Moves
	}
	return first, lastDone, moves, first != 0
}
