package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func baselineFixture() *Baseline {
	return &Baseline{
		Note: "test",
		Metrics: []Metric{
			{Name: "exact_lookup_1k", NsPerOp: 50, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "pipeline_packet", NsPerOp: 2000, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "dialogue_iteration", NsPerOp: 30000, AllocsPerOp: 120, BytesPerOp: 9000},
		},
	}
}

// TestCompareSyntheticRegression is the harness's own regression test:
// an inflated current run must be flagged and must map to a non-zero
// exit, while report-only mode and a clean run must not.
func TestCompareSyntheticRegression(t *testing.T) {
	base := baselineFixture()
	opt := Options{NsTolerance: 0.5, AllocTolerance: 0}

	clean := baselineFixture()
	clean.Metrics[0].NsPerOp = 70 // +40%, inside the 50% tolerance
	if regs := Compare(base, clean, opt); len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}

	bad := baselineFixture()
	bad.Metrics[0].NsPerOp = 500   // 10x: time regression
	bad.Metrics[1].AllocsPerOp = 3 // new allocations on a zero-alloc path
	regs := Compare(base, bad, opt)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want time + allocs", regs)
	}
	if regs[0].Kind != "time" || regs[0].Name != "exact_lookup_1k" {
		t.Fatalf("first regression = %+v", regs[0])
	}
	if regs[1].Kind != "allocs" || regs[1].Name != "pipeline_packet" {
		t.Fatalf("second regression = %+v", regs[1])
	}
	if got := CheckResult(regs, false); got != 1 {
		t.Fatalf("CheckResult(regressions) = %d, want 1", got)
	}
	if got := CheckResult(regs, true); got != 0 {
		t.Fatalf("CheckResult(report-only) = %d, want 0", got)
	}
	if got := CheckResult(nil, false); got != 0 {
		t.Fatalf("CheckResult(clean) = %d, want 0", got)
	}
	out := FormatReport(regs)
	if !strings.Contains(out, "exact_lookup_1k") || !strings.Contains(out, "allocs/op") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}

// TestCompareMissingMetric: dropping a benchmark from the suite must
// fail the comparison rather than silently hiding its regression.
func TestCompareMissingMetric(t *testing.T) {
	base := baselineFixture()
	cur := baselineFixture()
	cur.Metrics = cur.Metrics[1:]
	regs := Compare(base, cur, DefaultOptions())
	if len(regs) != 1 || regs[0].Kind != "missing" || regs[0].Name != "exact_lookup_1k" {
		t.Fatalf("regressions = %v", regs)
	}
	// The reverse — a brand-new benchmark — is not a regression.
	grown := baselineFixture()
	grown.Metrics = append(grown.Metrics, Metric{Name: "new_bench", NsPerOp: 1})
	if regs := Compare(base, grown, DefaultOptions()); len(regs) != 0 {
		t.Fatalf("new metric flagged: %v", regs)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_rmt.json")
	b := baselineFixture()
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != b.Note || len(got.Metrics) != len(b.Metrics) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Save sorts by name for stable diffs.
	for i := 1; i < len(got.Metrics); i++ {
		if got.Metrics[i-1].Name > got.Metrics[i].Name {
			t.Fatalf("metrics not sorted: %v", got.Metrics)
		}
	}
	if regs := Compare(b, got, Options{}); len(regs) != 0 {
		t.Fatalf("round trip not comparison-clean: %v", regs)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing baseline succeeded")
	}
}

// TestHotPathSuite runs the real suite once (the same entry point
// cmd/perfbench uses) and checks the invariants the checked-in baseline
// encodes: every metric measured, and the lookup and per-packet paths
// allocation-free.
func TestHotPathSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite is slow")
	}
	ms := Run()
	if len(ms) != len(HotPathBenchmarks()) {
		t.Fatalf("measured %d of %d benchmarks", len(ms), len(HotPathBenchmarks()))
	}
	byName := map[string]Metric{}
	for _, m := range ms {
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: ns/op = %v", m.Name, m.NsPerOp)
		}
		byName[m.Name] = m
	}
	for _, name := range []string{"exact_lookup_1k", "ternary_lookup_bucketed_1k", "pipeline_packet"} {
		if m := byName[name]; m.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d/op, want 0", name, m.AllocsPerOp)
		}
	}
	// The point of the bucket index: beating the linear scan by a wide
	// margin on a 1k-entry table. The acceptance floor is 10x; use 5x
	// here to keep the test robust to a noisy machine.
	lin, buck := byName["ternary_lookup_linear_1k"], byName["ternary_lookup_bucketed_1k"]
	if buck.NsPerOp*5 > lin.NsPerOp {
		t.Errorf("bucketed TCAM %.1f ns/op not ≥5x faster than linear %.1f ns/op", buck.NsPerOp, lin.NsPerOp)
	}
}

// TestZeroAllocSteadyState pins the control-plane fast-path invariant:
// one dialogue iteration — and each of its decomposed hot stages — heap
// allocates nothing at steady state. Prologue and warmup costs amortize
// to zero across testing.Benchmark's iteration count; any per-iteration
// allocation survives the division and fails here. Skipped under the
// race detector, whose instrumentation allocates.
func TestZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	if testing.Short() {
		t.Skip("benchmark suite is slow")
	}
	targets := map[string]bool{
		"dialogue_iteration": true,
		"poll_batch":         true,
		"reaction_dispatch":  true,
		"ring_submit":        true,
	}
	for _, nb := range HotPathBenchmarks() {
		if !targets[nb.Name] {
			continue
		}
		r := testing.Benchmark(nb.Bench)
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s: %d allocs/op (%d B/op), want 0", nb.Name, a, r.AllocedBytesPerOp())
		}
	}
}
