package perf

import "testing"

// BenchmarkHotPaths exposes the perfbench suite under `go test -bench`,
// one sub-benchmark per baseline metric:
//
//	go test ./internal/perf -bench 'HotPaths/dialogue_iteration' -benchmem
func BenchmarkHotPaths(b *testing.B) {
	for _, nb := range HotPathBenchmarks() {
		b.Run(nb.Name, nb.Bench)
	}
}
