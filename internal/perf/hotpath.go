package perf

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/rcl"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// NamedBench is one entry of the hot-path suite: a benchmark runnable
// both under `go test -bench` (bench_test.go wraps the suite in b.Run)
// and from cmd/perfbench via testing.Benchmark.
type NamedBench struct {
	Name  string
	Bench func(b *testing.B)
}

// HotPathBenchmarks returns the microbenchmark suite behind
// BENCH_rmt.json. The names are the baseline's metric keys — renaming
// one is a baseline change, and the comparator flags the old name as
// missing until the baseline is regenerated.
func HotPathBenchmarks() []NamedBench {
	return []NamedBench{
		{"exact_lookup_1k", benchExactLookup},
		{"ternary_lookup_bucketed_1k", benchTernaryBucketed},
		{"ternary_lookup_linear_1k", benchTernaryLinear},
		{"pipeline_packet", benchPipelinePacket},
		{"dialogue_iteration", benchDialogueIteration},
		{"poll_batch", benchPollBatch},
		{"reaction_dispatch", benchReactionDispatch},
		{"ring_submit", benchRingSubmit},
	}
}

const lookupEntries = 1024

// lookupProbe builds a switch with one 1k-entry table and returns its
// raw lookup hook. kind selects the index under test: a single-column
// exact table ("exact"), a two-column table whose exact first column
// partitions the TCAM into buckets ("bucketed"), or a pure-ternary
// table that can only scan linearly ("linear").
func lookupProbe(b *testing.B, kind string) func(vals []uint64) bool {
	b.Helper()
	prog := p4.NewProgram("perf-" + kind)
	prog.DefineStandardMetadata()
	fsel := prog.Schema.Define("h.sel", 16)
	faddr := prog.Schema.Define("h.addr", 32)
	prog.AddAction(&p4.Action{Name: "hit", Body: []p4.Primitive{p4.NoOp{}}})
	keys := []p4.MatchKey{{FieldName: "h.sel", Field: fsel, Width: 16, Kind: p4.MatchExact}}
	if kind != "exact" {
		first := p4.MatchExact
		if kind == "linear" {
			first = p4.MatchTernary
		}
		keys = []p4.MatchKey{
			{FieldName: "h.sel", Field: fsel, Width: 16, Kind: first},
			{FieldName: "h.addr", Field: faddr, Width: 32, Kind: p4.MatchTernary},
		}
	}
	prog.AddTable(&p4.Table{Name: "t", Keys: keys, ActionNames: []string{"hit"}, Size: lookupEntries})
	s := sim.New(1)
	sw, err := rmt.New(s, prog, rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < lookupEntries; i++ {
		sel := rmt.ExactKey(uint64(i))
		if kind == "linear" {
			sel = rmt.TernaryKey(uint64(i), 0xFFFF)
		}
		e := rmt.Entry{Keys: []rmt.KeySpec{sel}, Action: "hit"}
		if kind != "exact" {
			e.Keys = append(e.Keys, rmt.TernaryKey(0, 0))
		}
		if _, err := sw.AddEntry("t", e); err != nil {
			b.Fatal(err)
		}
	}
	probe, err := sw.LookupProbe("t")
	if err != nil {
		b.Fatal(err)
	}
	return probe
}

func benchLookup(b *testing.B, kind string, ncols int) {
	probe := lookupProbe(b, kind)
	vals := make([]uint64, ncols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals[0] = uint64(i % lookupEntries)
		if !probe(vals) {
			b.Fatal("miss")
		}
	}
}

func benchExactLookup(b *testing.B)     { benchLookup(b, "exact", 1) }
func benchTernaryBucketed(b *testing.B) { benchLookup(b, "bucketed", 2) }
func benchTernaryLinear(b *testing.B)   { benchLookup(b, "linear", 2) }

// benchPipelinePacket measures one full ingress-to-egress pass —
// admission, compiled ingress (ternary ACL + exact forward + register
// count), queueing, serialization, compiled egress — with a pooled
// packet. Steady state must be allocation-free.
func benchPipelinePacket(b *testing.B) {
	prog := p4.NewProgram("perf-pipeline")
	prog.DefineStandardMetadata()
	dst := prog.Schema.Define("ipv4.dstAddr", 32)
	proto := prog.Schema.Define("ipv4.protocol", 8)
	egr := prog.Schema.MustID(p4.FieldEgressSpec)
	inp := prog.Schema.MustID(p4.FieldIngressPort)
	plen := prog.Schema.MustID(p4.FieldPacketLen)
	prog.AddRegister(&p4.Register{Name: "port_bytes", Width: 64, Instances: 32})
	prog.AddAction(&p4.Action{
		Name:   "set_egress",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	prog.AddAction(&p4.Action{Name: "allow", Body: []p4.Primitive{p4.NoOp{}}})
	prog.AddAction(&p4.Action{Name: "count_rx", Body: []p4.Primitive{
		p4.RegisterIncrement{Reg: "port_bytes", Index: p4.FieldOp(inp, p4.FieldIngressPort), By: p4.FieldOp(plen, p4.FieldPacketLen)},
	}})
	prog.AddTable(&p4.Table{
		Name:          "acl",
		Keys:          []p4.MatchKey{{FieldName: "ipv4.protocol", Field: proto, Width: 8, Kind: p4.MatchTernary}},
		ActionNames:   []string{"allow"},
		DefaultAction: &p4.ActionCall{Action: "allow"},
		Size:          16,
	})
	prog.AddTable(&p4.Table{
		Name:        "forward",
		Keys:        []p4.MatchKey{{FieldName: "ipv4.dstAddr", Field: dst, Width: 32, Kind: p4.MatchExact}},
		ActionNames: []string{"set_egress"},
		Size:        256,
	})
	prog.AddTable(&p4.Table{
		Name:          "rx_counter",
		ActionNames:   []string{"count_rx"},
		DefaultAction: &p4.ActionCall{Action: "count_rx"},
		Size:          1,
	})
	prog.Ingress = []p4.ControlStmt{
		p4.Apply{Table: "acl"}, p4.Apply{Table: "forward"}, p4.Apply{Table: "rx_counter"},
	}
	s := sim.New(1)
	sw, err := rmt.New(s, prog, rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sw.AddEntry("forward", rmt.Entry{
		Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set_egress", Data: []uint64{2},
	}); err != nil {
		b.Fatal(err)
	}
	pool := packet.NewPool(prog.Schema)
	tmpl := prog.Schema.New()
	tmpl.SetName("ipv4.dstAddr", 7)
	tmpl.Size = 256
	send := func() {
		p := pool.Get()
		tmpl.CloneInto(p)
		sw.Inject(0, p)
		s.Run()
		pool.Put(p)
	}
	for i := 0; i < 100; i++ {
		send() // warm the packet pool and event freelist
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	if sw.Stats().TxPackets == 0 {
		b.Fatal("no packets transmitted")
	}
}

// dialogueSrc is a representative Mantis program: a register-mirroring
// measurement, an interpreted reaction folding 16 cells, and a
// malleable-value update committed back through the serializable
// dialogue protocol.
const dialogueSrc = `
header_type h_t { fields { tag : 16; port : 8; } }
header h_t hdr;
register qdepths { width : 32; instance_count : 16; }
malleable value v { width : 16; init : 0; }
action observe() {
  register_write(qdepths, hdr.port, standard_metadata.packet_length);
  modify_field(hdr.tag, ${v});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { observe; } default_action : observe; size : 1; }
reaction r(reg qdepths) {
  uint16_t m = 0;
  for (int i = 0; i < 16; ++i) { if (qdepths[i] > m) { m = qdepths[i]; } }
  ${v} = m;
}
control ingress { apply(t); }
`

// benchDialogueIteration measures the host cost of one virtual dialogue
// iteration: measurement reads, the interpreted reaction, and the
// serializable commit.
func benchDialogueIteration(b *testing.B) {
	plan, err := compiler.CompileSource(dialogueSrc, compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	agent := core.NewAgent(s, drv, plan, core.Options{MaxIterations: uint64(b.N)})
	b.ReportAllocs()
	b.ResetTimer()
	agent.Start()
	s.Run()
	if err := agent.Err(); err != nil {
		b.Fatal(err)
	}
}

// perfRegProgram builds a minimal switch with one 16-cell register for
// the poll and ring-submit probes.
func perfRegProgram(name string) *p4.Program {
	prog := p4.NewProgram(name)
	prog.DefineStandardMetadata()
	prog.AddRegister(&p4.Register{Name: "qdepths", Width: 32, Instances: 16})
	return prog
}

// benchPollBatch measures the agent's measurement-poll shape: one
// batched register read per iteration into a caller-owned dst matrix.
// Steady state must be allocation-free (BatchReadInto refills rows in
// place).
func benchPollBatch(b *testing.B) {
	s := sim.New(1)
	sw, err := rmt.New(s, perfRegProgram("perf-poll"), rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	reqs := []driver.ReadReq{{Reg: "qdepths", Lo: 0, Hi: 16}}
	dst := make([][]uint64, 1)
	s.Spawn("poll", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if err := drv.BatchReadInto(p, reqs, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// benchReactionDispatch measures one compiled-reaction execution: the
// fold from dialogueSrc run through a prepared rcl Frame with bound
// parameters, isolated from polling and commit. This is the interpreter
// cost the closure compiler is accountable for.
func benchReactionDispatch(b *testing.B) {
	prog, err := rcl.Compile(`
		uint16_t m = 0;
		for (int i = 0; i < 16; ++i) { if (qdepths[i] > m) { m = qdepths[i]; } }
		${v} = m;
	`)
	if err != nil {
		b.Fatal(err)
	}
	f := prog.NewFrame()
	q := make([]int64, 16)
	f.BindArray("qdepths", q)
	host := &noopHost{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[i%16] = int64(i)
		if err := f.Exec(host); err != nil {
			b.Fatal(err)
		}
	}
}

// noopHost absorbs malleable writes so benchReactionDispatch measures
// pure dispatch.
type noopHost struct{ last int64 }

func (h *noopHost) ReadMbl(string) (int64, error)                   { return h.last, nil }
func (h *noopHost) WriteMbl(_ string, v int64) error                { h.last = v; return nil }
func (h *noopHost) TableOp(_, _ string, _ []rcl.Arg) (int64, error) { return 0, nil }
func (h *noopHost) Call(_ string, _ []rcl.Arg) (int64, error)       { return 0, nil }

// benchRingSubmit measures one submission-ring lap: reserve and encode
// a dialogue iteration's worth of register writes, flush the doorbell,
// and drain completions. The descriptors and their buffers are
// ring-resident, so steady state must be allocation-free.
func benchRingSubmit(b *testing.B) {
	const opsPerLap = 8
	s := sim.New(1)
	sw, err := rmt.New(s, perfRegProgram("perf-ring"), rmt.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	ring := driver.NewRing(drv, opsPerLap)
	s.Spawn("submit", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < opsPerLap; j++ {
				op, err := ring.Reserve()
				if err != nil {
					b.Fatal(err)
				}
				op.SetRegWrite("qdepths", uint64(j%16), uint64(i))
			}
			if err := ring.Flush(p); err != nil {
				b.Fatal(err)
			}
			ring.Drain(func(op *driver.RingOp) {
				if op.Err != nil {
					b.Fatal(op.Err)
				}
			})
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// Run executes the whole suite via testing.Benchmark and returns the
// measured metrics in suite order. It is the entry point cmd/perfbench
// uses to produce a Baseline outside `go test`.
func Run() []Metric {
	var ms []Metric
	for _, nb := range HotPathBenchmarks() {
		r := testing.Benchmark(nb.Bench)
		ms = append(ms, Metric{
			Name:        nb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return ms
}
