// Package perf is the performance-regression harness for the hot paths
// of the reproduction: it defines the microbenchmark suite run by
// cmd/perfbench, the JSON baseline format checked in as BENCH_rmt.json,
// and the comparator that turns "slower than the baseline" into a
// non-zero exit for CI.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Metric is one benchmark's measured cost.
type Metric struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Baseline is a set of metrics captured on some reference machine. Note
// records where the numbers came from; comparisons are tolerant of
// machine-to-machine variance via Options.
type Baseline struct {
	Note    string   `json:"note,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Metric returns the named metric, or nil.
func (b *Baseline) Metric(name string) *Metric {
	for i := range b.Metrics {
		if b.Metrics[i].Name == name {
			return &b.Metrics[i]
		}
	}
	return nil
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("perf: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes a baseline file with stable formatting (sorted by name),
// so regenerated baselines diff cleanly.
func (b *Baseline) Save(path string) error {
	sort.Slice(b.Metrics, func(i, j int) bool { return b.Metrics[i].Name < b.Metrics[j].Name })
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal baseline: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("perf: write baseline: %w", err)
	}
	return nil
}

// Options sets the comparison tolerances.
type Options struct {
	// NsTolerance is the allowed relative time growth: a current ns/op
	// above base*(1+NsTolerance) is a regression. Generous by default —
	// wall-clock benchmarks on shared CI machines are noisy; the harness
	// is after order-of-magnitude breakage (a lookup going linear, a hot
	// path growing an allocation), not single-digit percent drift.
	NsTolerance float64
	// AllocTolerance is the allowed absolute allocs/op growth. Zero by
	// default: allocation counts are deterministic, so any new
	// allocation on a zero-alloc path is a real regression.
	AllocTolerance int64
}

// DefaultOptions returns the tolerances used by cmd/perfbench and CI.
func DefaultOptions() Options { return Options{NsTolerance: 1.0, AllocTolerance: 0} }

// Regression is one metric that got worse than the baseline allows.
type Regression struct {
	Name string
	// Kind is "time", "allocs", or "missing" (metric present in the
	// baseline but absent from the current run — a renamed or dropped
	// benchmark hides regressions, so it fails the comparison).
	Kind string
	Base float64
	Cur  float64
}

func (r Regression) String() string {
	switch r.Kind {
	case "missing":
		return fmt.Sprintf("%s: present in baseline but not measured", r.Name)
	case "allocs":
		return fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f", r.Name, r.Cur, r.Base)
	default:
		return fmt.Sprintf("%s: %.1f ns/op, baseline %.1f (+%.0f%%)",
			r.Name, r.Cur, r.Base, 100*(r.Cur-r.Base)/r.Base)
	}
}

// Compare checks cur against base and returns every regression. Metrics
// new in cur (absent from base) pass: adding benchmarks is not a
// regression.
func Compare(base, cur *Baseline, opt Options) []Regression {
	var regs []Regression
	for _, bm := range base.Metrics {
		cm := cur.Metric(bm.Name)
		if cm == nil {
			regs = append(regs, Regression{Name: bm.Name, Kind: "missing"})
			continue
		}
		if bm.NsPerOp > 0 && cm.NsPerOp > bm.NsPerOp*(1+opt.NsTolerance) {
			regs = append(regs, Regression{Name: bm.Name, Kind: "time", Base: bm.NsPerOp, Cur: cm.NsPerOp})
		}
		if cm.AllocsPerOp > bm.AllocsPerOp+opt.AllocTolerance {
			regs = append(regs, Regression{
				Name: bm.Name, Kind: "allocs",
				Base: float64(bm.AllocsPerOp), Cur: float64(cm.AllocsPerOp),
			})
		}
	}
	return regs
}

// FormatReport renders a comparison result for humans.
func FormatReport(regs []Regression) string {
	if len(regs) == 0 {
		return "perf: no regressions against baseline\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "perf: %d regression(s) against baseline:\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(&sb, "  %s\n", r)
	}
	return sb.String()
}

// CheckResult maps a comparison to a process exit code: 0 when clean or
// when reportOnly is set, 1 when regressions should fail the run.
func CheckResult(regs []Regression, reportOnly bool) int {
	if len(regs) == 0 || reportOnly {
		return 0
	}
	return 1
}

// FormatMetrics renders the measured suite for humans.
func FormatMetrics(ms []Metric) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %14s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, m := range ms {
		fmt.Fprintf(&sb, "%-28s %14.1f %12d %12d\n", m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	return sb.String()
}
