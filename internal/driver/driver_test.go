package driver

import (
	"testing"
	"time"

	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

func testSwitch(t testing.TB, s *sim.Simulator) *rmt.Switch {
	t.Helper()
	prog := p4.NewProgram("drv-test")
	prog.DefineStandardMetadata()
	dst := prog.Schema.Define("ipv4.dstAddr", 32)
	egr := prog.Schema.MustID(p4.FieldEgressSpec)
	prog.AddRegister(&p4.Register{Name: "ctr", Width: 32, Instances: 64})
	prog.AddRegister(&p4.Register{Name: "wide", Width: 64, Instances: 16})
	prog.AddAction(&p4.Action{
		Name:   "fwd",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	prog.AddTable(&p4.Table{
		Name:        "fw",
		Keys:        []p4.MatchKey{{FieldName: "ipv4.dstAddr", Field: dst, Width: 32, Kind: p4.MatchExact}},
		ActionNames: []string{"fwd"},
		Size:        128,
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "fw"}}
	sw, err := rmt.New(s, prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestTableOpLatency(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	var elapsed time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := d.AddEntry(p, "fw", rmt.Entry{
			Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "fwd", Data: []uint64{2},
		}); err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(t0)
	})
	s.Run()
	if elapsed != DefaultCostModel().TableOp {
		t.Fatalf("AddEntry latency = %v, want %v", elapsed, DefaultCostModel().TableOp)
	}
}

func TestMemoizationReducesCost(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	var cold, warm time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		h, err := d.AddEntry(p, "fw", rmt.Entry{
			Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "fwd", Data: []uint64{2},
		})
		if err != nil {
			t.Error(err)
			return
		}
		t0 := p.Now()
		d.ModifyEntry(p, "fw", h, "fwd", []uint64{3})
		cold = p.Now().Sub(t0)

		d.Memoize("fw", h)
		t0 = p.Now()
		d.ModifyEntry(p, "fw", h, "fwd", []uint64{4})
		warm = p.Now().Sub(t0)
	})
	s.Run()
	if cold != DefaultCostModel().TableOp {
		t.Fatalf("cold = %v", cold)
	}
	if warm != DefaultCostModel().TableOpMemoized {
		t.Fatalf("warm = %v", warm)
	}
	if d.Stats().MemoizedOps != 1 {
		t.Fatalf("MemoizedOps = %d", d.Stats().MemoizedOps)
	}
}

func TestMemoizationDisabled(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	d.SetMemoization(false)
	var lat time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		h, _ := d.AddEntry(p, "fw", rmt.Entry{
			Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "fwd", Data: []uint64{2},
		})
		d.Memoize("fw", h)
		t0 := p.Now()
		d.ModifyEntry(p, "fw", h, "fwd", []uint64{4})
		lat = p.Now().Sub(t0)
	})
	s.Run()
	if lat != DefaultCostModel().TableOp {
		t.Fatalf("disabled memoization latency = %v, want cold cost", lat)
	}
}

func TestBatchedVsUnbatchedReads(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	reqs := []ReadReq{
		{Reg: "ctr", Lo: 0, Hi: 16},
		{Reg: "ctr", Lo: 16, Hi: 32},
		{Reg: "wide", Lo: 0, Hi: 8},
	}
	var batched, unbatched time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := d.BatchRead(p, reqs); err != nil {
			t.Error(err)
		}
		batched = p.Now().Sub(t0)
		t0 = p.Now()
		if _, err := d.UnbatchedRead(p, reqs); err != nil {
			t.Error(err)
		}
		unbatched = p.Now().Sub(t0)
	})
	s.Run()
	cm := DefaultCostModel()
	// 16*4 + 16*4 + 8*8 = 192 bytes across 3 ranges.
	wantBatched := cm.RegReadBase + 3*cm.RegReadPerReq + 192*cm.RegReadPerByte
	if batched != wantBatched {
		t.Fatalf("batched = %v, want %v", batched, wantBatched)
	}
	wantUnbatched := 3*cm.RegReadBase + 3*cm.RegReadPerReq + 192*cm.RegReadPerByte
	if unbatched != wantUnbatched {
		t.Fatalf("unbatched = %v, want %v", unbatched, wantUnbatched)
	}
	if unbatched <= batched {
		t.Fatal("batching should be cheaper")
	}
}

func TestBatchReadValues(t *testing.T) {
	s := sim.New(1)
	sw := testSwitch(t, s)
	d := New(s, sw, DefaultCostModel())
	sw.RegWrite("ctr", 3, 77)
	var got uint64
	s.Spawn("cp", func(p *sim.Proc) {
		v, err := d.RegRead(p, "ctr", 3)
		if err != nil {
			t.Error(err)
		}
		got = v
	})
	s.Run()
	if got != 77 {
		t.Fatalf("RegRead = %d", got)
	}
}

func TestUnknownRegisterError(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	s.Spawn("cp", func(p *sim.Proc) {
		if _, err := d.RegRead(p, "ghost", 0); err == nil {
			t.Error("unknown register accepted")
		}
	})
	s.Run()
}

func TestChannelContentionSerializes(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	cm := DefaultCostModel()
	var aDone, bDone sim.Time
	// Both processes issue a table op at t=0; the second must queue.
	s.Spawn("a", func(p *sim.Proc) {
		d.AddEntry(p, "fw", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "fwd", Data: []uint64{1}})
		aDone = p.Now()
	})
	s.Spawn("b", func(p *sim.Proc) {
		d.AddEntry(p, "fw", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(2)}, Action: "fwd", Data: []uint64{1}})
		bDone = p.Now()
	})
	s.Run()
	if aDone != sim.Time(cm.TableOp) {
		t.Fatalf("a done at %v", aDone)
	}
	if bDone != sim.Time(2*cm.TableOp) {
		t.Fatalf("b done at %v, want serialized after a", bDone)
	}
}

func TestRegWriteAndStats(t *testing.T) {
	s := sim.New(1)
	sw := testSwitch(t, s)
	d := New(s, sw, DefaultCostModel())
	s.Spawn("cp", func(p *sim.Proc) {
		if err := d.RegWrite(p, "ctr", 5, 99); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	if v, _ := sw.RegRead("ctr", 5); v != 99 {
		t.Fatalf("ctr[5] = %d", v)
	}
	st := d.Stats()
	if st.RegWrites != 1 || st.Busy != DefaultCostModel().RegWrite {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMutationAppliedAtCompletionTime(t *testing.T) {
	s := sim.New(1)
	sw := testSwitch(t, s)
	d := New(s, sw, DefaultCostModel())
	// Sample the switch state midway through the driver operation: it
	// must still be the pre-op state (PCIe write not yet landed).
	s.Spawn("cp", func(p *sim.Proc) {
		d.RegWrite(p, "ctr", 0, 42)
	})
	var mid uint64 = 999
	s.Schedule(DefaultCostModel().RegWrite/2, func() {
		mid, _ = sw.RegRead("ctr", 0)
	})
	s.Run()
	if mid != 0 {
		t.Fatalf("state mid-operation = %d, want 0 (pre-op)", mid)
	}
	if v, _ := sw.RegRead("ctr", 0); v != 42 {
		t.Fatal("write lost")
	}
}

func TestSetHashSeedAndDefaultAction(t *testing.T) {
	s := sim.New(1)
	sw := testSwitch(t, s)
	d := New(s, sw, DefaultCostModel())
	s.Spawn("cp", func(p *sim.Proc) {
		if err := d.SetDefaultAction(p, "fw", &p4.ActionCall{Action: "fwd", Data: []uint64{9}}); err != nil {
			t.Error(err)
		}
		if err := d.SetHashSeed(p, "nope", 1); err == nil {
			t.Error("unknown hash accepted")
		}
	})
	s.Run()
	_ = sw
}

func TestDeleteEntryThroughDriver(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	s.Spawn("cp", func(p *sim.Proc) {
		h, err := d.AddEntry(p, "fw", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "fwd", Data: []uint64{1}})
		if err != nil {
			t.Error(err)
			return
		}
		if err := d.DeleteEntry(p, "fw", h); err != nil {
			t.Error(err)
		}
	})
	s.Run()
	es, _ := d.Switch().Entries("fw")
	if len(es) != 0 {
		t.Fatalf("entries = %v", es)
	}
}
