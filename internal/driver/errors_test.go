package driver

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rmt"
	"repro/internal/sim"
)

// runOnDriver runs fn as a control-plane process and returns how much
// virtual time it consumed.
func runOnDriver(t *testing.T, d *Driver, s *sim.Simulator, fn func(p *sim.Proc)) time.Duration {
	t.Helper()
	var elapsed time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		t0 := p.Now()
		fn(p)
		elapsed = p.Now().Sub(t0)
	})
	s.Run()
	return elapsed
}

func TestBatchReadOutOfRange(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	elapsed := runOnDriver(t, d, s, func(p *sim.Proc) {
		_, err := d.BatchRead(p, []ReadReq{{Reg: "ctr", Lo: 0, Hi: 65}})
		if !errors.Is(err, rmt.ErrRegRange) {
			t.Errorf("out-of-range read: err = %v, want ErrRegRange", err)
		}
	})
	if elapsed != 0 {
		t.Fatalf("rejected batch consumed %v of channel time, want 0", elapsed)
	}
	if d.Stats().RegReads != 0 {
		t.Fatalf("rejected batch counted as a read")
	}
}

func TestBatchReadInvertedRange(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	runOnDriver(t, d, s, func(p *sim.Proc) {
		_, err := d.BatchRead(p, []ReadReq{{Reg: "ctr", Lo: 8, Hi: 4}})
		if !errors.Is(err, ErrBadBatch) {
			t.Errorf("inverted range: err = %v, want ErrBadBatch", err)
		}
	})
}

func TestBatchReadUnknownRegister(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	runOnDriver(t, d, s, func(p *sim.Proc) {
		_, err := d.BatchRead(p, []ReadReq{{Reg: "nope", Lo: 0, Hi: 1}})
		if !errors.Is(err, rmt.ErrUnknownRegister) {
			t.Errorf("unknown register: err = %v, want ErrUnknownRegister", err)
		}
	})
}

func TestBatchReadEmpty(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	elapsed := runOnDriver(t, d, s, func(p *sim.Proc) {
		vals, err := d.BatchRead(p, nil)
		if err != nil || vals != nil {
			t.Errorf("empty batch: vals=%v err=%v, want nil, nil", vals, err)
		}
	})
	if elapsed != 0 {
		t.Fatalf("empty batch consumed %v of channel time, want 0", elapsed)
	}
}

// A malformed request mixed into a batch must fail the whole batch
// before any channel time is spent (validation is part of the request
// prologue).
func TestBatchReadMalformedMixedBatch(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	elapsed := runOnDriver(t, d, s, func(p *sim.Proc) {
		_, err := d.BatchRead(p, []ReadReq{
			{Reg: "ctr", Lo: 0, Hi: 4},
			{Reg: "wide", Lo: 10, Hi: 20},
		})
		if !errors.Is(err, rmt.ErrRegRange) {
			t.Errorf("mixed batch: err = %v, want ErrRegRange", err)
		}
	})
	if elapsed != 0 {
		t.Fatalf("rejected mixed batch consumed %v, want 0", elapsed)
	}
}

func TestUnknownNameSentinels(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	runOnDriver(t, d, s, func(p *sim.Proc) {
		if _, err := d.AddEntry(p, "nope", rmt.Entry{Action: "fwd"}); !errors.Is(err, rmt.ErrUnknownTable) {
			t.Errorf("AddEntry unknown table: err = %v, want ErrUnknownTable", err)
		}
		if err := d.SetHashSeed(p, "nope", 1); !errors.Is(err, rmt.ErrUnknownHash) {
			t.Errorf("SetHashSeed unknown calc: err = %v, want ErrUnknownHash", err)
		}
		if err := d.RegWrite(p, "ctr", 64, 1); !errors.Is(err, rmt.ErrRegRange) {
			t.Errorf("RegWrite out of range: err = %v, want ErrRegRange", err)
		}
		if err := d.ModifyEntry(p, "fw", 99, "fwd", []uint64{1}); !errors.Is(err, rmt.ErrUnknownEntry) {
			t.Errorf("ModifyEntry unknown handle: err = %v, want ErrUnknownEntry", err)
		}
		// None of these are transient channel failures.
		if _, err := d.AddEntry(p, "nope", rmt.Entry{Action: "fwd"}); IsTransient(err) {
			t.Errorf("fatal error classified transient: %v", err)
		}
	})
}
