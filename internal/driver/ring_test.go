package driver

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rmt"
	"repro/internal/sim"
)

// TestRingFull exercises the backpressure path: a ring of depth N hands
// out exactly N descriptors, refuses the N+1th with ErrRingFull, and
// accepts again once completions are flushed and drained.
func TestRingFull(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	rg := NewRing(d, 4)
	s.Spawn("cp", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			op, err := rg.Reserve()
			if err != nil {
				t.Errorf("Reserve %d: %v", i, err)
				return
			}
			op.SetRegWrite("ctr", uint64(i), uint64(i))
		}
		if _, err := rg.Reserve(); !errors.Is(err, ErrRingFull) {
			t.Errorf("Reserve on full ring: err = %v, want ErrRingFull", err)
		}
		if !IsTransient(ErrRingFull) {
			t.Error("ErrRingFull should be transient (retry after drain)")
		}
		if err := rg.Flush(p); err != nil {
			t.Errorf("Flush: %v", err)
		}
		// Flushed but not drained: completions still occupy the slots.
		if _, err := rg.Reserve(); !errors.Is(err, ErrRingFull) {
			t.Errorf("Reserve before Drain: err = %v, want ErrRingFull", err)
		}
		rg.Drain(func(*RingOp) {})
		if _, err := rg.Reserve(); err != nil {
			t.Errorf("Reserve after Drain: %v", err)
		}
	})
	s.Run()
	if got := rg.Stats().FullRejections; got != 2 {
		t.Fatalf("FullRejections = %d, want 2", got)
	}
}

// TestRingWraparound pushes several laps through a small ring and
// checks that slot reuse neither loses writes nor corrupts previously
// installed state (the staged buffers are recycled in place).
func TestRingWraparound(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	rg := NewRing(d, 3)
	const laps = 5
	s.Spawn("cp", func(p *sim.Proc) {
		n := 0
		for n < laps*3 {
			for i := 0; i < 3; i++ {
				op, err := rg.Reserve()
				if err != nil {
					t.Errorf("Reserve: %v", err)
					return
				}
				op.SetRegWrite("ctr", uint64(n%64), uint64(n))
				n++
			}
			if err := rg.Flush(p); err != nil {
				t.Errorf("Flush: %v", err)
			}
			rg.Drain(func(op *RingOp) {
				if op.Err != nil {
					t.Errorf("op %v: %v", op.Kind, op.Err)
				}
			})
		}
		// The last write to each touched cell must have stuck.
		for i := 0; i < laps*3; i++ {
			want := uint64(i) // cells are written in increasing order, idx = i%64 < 64 unique here
			got, err := d.RegRead(p, "ctr", uint64(i%64))
			if err != nil {
				t.Errorf("RegRead %d: %v", i, err)
				return
			}
			if got != want {
				t.Errorf("ctr[%d] = %d, want %d", i%64, got, want)
			}
		}
	})
	s.Run()
	if got := rg.Stats().OpsFlushed; got != laps*3 {
		t.Fatalf("OpsFlushed = %d, want %d", got, laps*3)
	}
}

// TestRingOrderingAndCompletions verifies FIFO execution across mixed
// op kinds, per-descriptor completion records (including a failure that
// does not abort the rest of the flush), and AddEntry handle return.
func TestRingOrderingAndCompletions(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	rg := NewRing(d, 8)
	s.Spawn("cp", func(p *sim.Proc) {
		add, _ := rg.Reserve()
		add.SetAdd("fw", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(9)}, Action: "fwd", Data: []uint64{1}})
		add.Tag = "add"
		bad, _ := rg.Reserve()
		bad.SetModify("no-such-table", 1, "fwd", []uint64{0})
		bad.Tag = "bad"
		wr, _ := rg.Reserve()
		wr.SetRegWrite("ctr", 5, 77)
		wr.Tag = "wr"
		if err := rg.Flush(p); err == nil {
			t.Error("Flush with a failing descriptor should return its error")
		}
		var order []string
		var addHandle rmt.EntryHandle
		rg.Drain(func(op *RingOp) {
			order = append(order, op.Tag.(string))
			switch op.Tag {
			case "add":
				if op.Err != nil {
					t.Errorf("add: %v", op.Err)
				}
				addHandle = op.NewHandle
			case "bad":
				if op.Err == nil {
					t.Error("bad descriptor completed without error")
				}
			case "wr":
				if op.Err != nil {
					t.Errorf("regwrite after failed descriptor: %v (flush must continue past errors)", op.Err)
				}
			}
		})
		if len(order) != 3 || order[0] != "add" || order[1] != "bad" || order[2] != "wr" {
			t.Errorf("completion order = %v, want [add bad wr]", order)
		}
		// The add landed and is modifiable through its returned handle;
		// mutating the drained descriptor's buffers must not affect it.
		add.Keys = append(add.Keys[:0], rmt.ExactKey(12345))
		add.Data = append(add.Data[:0], 999)
		if err := d.ModifyEntry(p, "fw", addHandle, "fwd", []uint64{3}); err != nil {
			t.Errorf("ModifyEntry via ring handle: %v", err)
		}
		got, err := d.RegRead(p, "ctr", 5)
		if err != nil || got != 77 {
			t.Errorf("ctr[5] = %d, %v; want 77", got, err)
		}
		es, err := d.ReadEntries(p, "fw")
		if err != nil || len(es) != 1 {
			t.Fatalf("ReadEntries = %v, %v", es, err)
		}
		if es[0].Keys[0].Value != 9 {
			t.Errorf("installed key = %d, want 9 (ring slot reuse corrupted it)", es[0].Keys[0].Value)
		}
	})
	s.Run()
	if st := rg.Stats(); st.OpErrors != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v, want 1 error, 1 flush", st)
	}
}

// TestRingCostEquivalence checks the cost-model contract: N writes
// through one ring flush occupy the channel for exactly as long as the
// same N writes issued directly.
func TestRingCostEquivalence(t *testing.T) {
	const n = 6
	run := func(viaRing bool) time.Duration {
		s := sim.New(1)
		d := New(s, testSwitch(t, s), DefaultCostModel())
		var elapsed time.Duration
		s.Spawn("cp", func(p *sim.Proc) {
			t0 := p.Now()
			if viaRing {
				rg := NewRing(d, n)
				for i := 0; i < n; i++ {
					op, err := rg.Reserve()
					if err != nil {
						t.Error(err)
						return
					}
					op.SetRegWrite("ctr", uint64(i), 1)
				}
				if err := rg.Flush(p); err != nil {
					t.Error(err)
				}
				rg.Drain(func(*RingOp) {})
			} else {
				for i := 0; i < n; i++ {
					if err := d.RegWrite(p, "ctr", uint64(i), 1); err != nil {
						t.Error(err)
					}
				}
			}
			elapsed = p.Now().Sub(t0)
		})
		s.Run()
		return elapsed
	}
	direct, ringed := run(false), run(true)
	if direct != ringed {
		t.Fatalf("channel time: direct = %v, ring = %v (ring must not change the cost model)", direct, ringed)
	}
}

// TestRingStagedVisibility confirms nothing reaches the switch before
// the doorbell: reserved descriptors are pure host memory until Flush.
func TestRingStagedVisibility(t *testing.T) {
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())
	rg := NewRing(d, 4)
	s.Spawn("cp", func(p *sim.Proc) {
		op, _ := rg.Reserve()
		op.SetRegWrite("ctr", 0, 42)
		if got, _ := d.RegRead(p, "ctr", 0); got != 0 {
			t.Errorf("ctr[0] = %d before Flush, want 0", got)
		}
		if rg.Staged() != 1 {
			t.Errorf("Staged = %d, want 1", rg.Staged())
		}
		if err := rg.Flush(p); err != nil {
			t.Error(err)
		}
		if got, _ := d.RegRead(p, "ctr", 0); got != 42 {
			t.Errorf("ctr[0] = %d after Flush, want 42", got)
		}
	})
	s.Run()
}
