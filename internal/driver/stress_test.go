package driver

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rmt"
	"repro/internal/sim"
)

// TestStressManyProcsOneDriver hammers a single Driver from many
// concurrent simulated control-plane processes with a mix of table ops,
// register writes, and batched reads. Under -race (CI runs the full
// suite with it) this exercises the channel-occupancy serialization and
// the simulator's goroutine handoffs at scale; the assertions check
// that every operation landed exactly once and that the channel really
// did serialize (total busy time equals the sum of per-op costs).
func TestStressManyProcsOneDriver(t *testing.T) {
	const (
		nProcs  = 24
		rounds  = 30
		perProc = rounds * 3 // modify + regwrite + batchread per round
	)
	s := sim.New(1)
	d := New(s, testSwitch(t, s), DefaultCostModel())

	for c := 0; c < nProcs; c++ {
		c := c
		s.Spawn(fmt.Sprintf("cp%d", c), func(p *sim.Proc) {
			h, err := d.AddEntry(p, "fw", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(c))}, Action: "fwd", Data: []uint64{0},
			})
			if err != nil {
				t.Errorf("cp%d add: %v", c, err)
				return
			}
			for i := 0; i < rounds; i++ {
				if err := d.ModifyEntry(p, "fw", h, "fwd", []uint64{uint64(i)}); err != nil {
					t.Errorf("cp%d modify: %v", c, err)
					return
				}
				if err := d.RegWrite(p, "ctr", uint64(c%64), uint64(i)); err != nil {
					t.Errorf("cp%d regwrite: %v", c, err)
					return
				}
				if _, err := d.BatchRead(p, []ReadReq{{Reg: "ctr", Lo: 0, Hi: 64}}); err != nil {
					t.Errorf("cp%d read: %v", c, err)
					return
				}
				// Stagger the processes so arrival patterns differ.
				p.Sleep(time.Duration(c*37+1) * time.Nanosecond)
			}
		})
	}
	s.Run()

	st := d.Stats()
	if want := uint64(nProcs * (rounds + 1)); st.TableOps != want {
		t.Fatalf("table ops = %d, want %d", st.TableOps, want)
	}
	if want := uint64(nProcs * rounds); st.RegWrites != want {
		t.Fatalf("reg writes = %d, want %d", st.RegWrites, want)
	}
	if want := uint64(nProcs * rounds); st.RegReads != want {
		t.Fatalf("read transactions = %d, want %d", st.RegReads, want)
	}

	// The channel admits one op at a time: simulated completion time
	// must be at least the serial sum of all op costs.
	cm := DefaultCostModel()
	serial := time.Duration(nProcs*(rounds+1))*cm.TableOp +
		time.Duration(nProcs*rounds)*cm.RegWrite +
		time.Duration(nProcs*rounds)*(cm.RegReadBase+cm.RegReadPerReq) // per-byte cost omitted: still a lower bound
	if got := time.Duration(s.Now()); got < serial {
		t.Fatalf("finished at %v, before serial lower bound %v — channel did not serialize", got, serial)
	}
}
