package driver

import (
	"errors"

	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// Sentinel errors of the driver layer. The switch model's own sentinels
// (rmt.ErrUnknownTable etc.) pass through wrapped, so callers classify
// every failure with errors.Is.
var (
	// ErrTransient marks failures of the driver channel itself — the
	// software/PCIe path between control plane and ASIC — rather than of
	// the requested operation. A transient failure did NOT apply the
	// operation; retrying the identical request may succeed. The real
	// driver never fails in simulation; internal/faults injects these.
	ErrTransient = errors.New("transient driver channel failure")
	// ErrBadBatch reports a malformed batched read: an inverted range
	// (Lo > Hi). Rejected during request validation, before any channel
	// time is spent.
	ErrBadBatch = errors.New("malformed batch read request")
	// ErrChannelDegraded marks an operation abandoned because the control
	// channel could not confirm it within its deadline — a lossy or
	// partitioned message transport (internal/ctlchan), not a clean
	// in-process failure. Unlike ErrTransient, the operation MAY have
	// been applied switch-side (the acknowledgment, not the request, may
	// be what was lost), so callers must not blindly reissue mutations;
	// the agent abandons the iteration and resynchronizes via audit once
	// the channel heals.
	ErrChannelDegraded = errors.New("control channel degraded")
)

// IsTransient reports whether err is a retryable channel failure (the
// operation was not applied and may be reissued). Fatal errors —
// unknown names, range violations, capacity — return false.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Channel is the control-plane method set a client needs from a driver
// stack: the access points of §6 plus the stats/wiring accessors the
// agent uses. *Driver implements it directly; fault-injection or other
// interposing layers wrap another Channel with the same contract:
// operations block the calling process for their channel latency and
// mutate switch state only at completion time.
type Channel interface {
	AddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error)
	ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error
	DeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error
	SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error
	SetHashSeed(p *sim.Proc, name string, seed uint64) error
	RegWrite(p *sim.Proc, reg string, idx uint64, v uint64) error
	RegRead(p *sim.Proc, reg string, idx uint64) (uint64, error)
	BatchRead(p *sim.Proc, reqs []ReadReq) ([][]uint64, error)
	UnbatchedRead(p *sim.Proc, reqs []ReadReq) ([][]uint64, error)
	// ReadEntries and ReadDefaultAction are the audit path: a recovering
	// controller reads back the switch's installed configuration (entry
	// pairs, version bits) to reconcile it against its journal. They pay
	// channel time like any other operation.
	ReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error)
	ReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error)
	Memoize(table string, handle rmt.EntryHandle)
	Switch() *rmt.Switch
	Stats() Stats
}

var _ Channel = (*Driver)(nil)

// RangeReader is the optional allocation-free read extension of a
// Channel. The agent probes for it once at setup: when the channel
// supports it (the raw *Driver does), steady-state polls refill a
// preallocated result matrix instead of allocating one per BatchRead;
// when it doesn't (session, fault, or message-channel wrappers), the
// agent falls back to BatchRead and copies.
type RangeReader interface {
	BatchReadInto(p *sim.Proc, reqs []ReadReq, dst [][]uint64) error
}

var _ RangeReader = (*Driver)(nil)
