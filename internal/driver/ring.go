package driver

import (
	"errors"
	"fmt"

	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// This file implements the driver's ring-buffer submission channel: a
// fixed-capacity pair of submit/completion queues over one Channel,
// shaped like the DMA descriptor rings real switch drivers feed
// (reserve a descriptor slot, fill it in place, ring the doorbell,
// reap completions). The point is the allocation profile, not new
// semantics: a control-plane client that issues many small writes per
// dialogue iteration reserves slots in a preallocated ring and flushes
// them in one call, so the steady state touches no heap at all —
// descriptors, their data buffers, and their completion records are
// all ring-resident and reused lap after lap.
//
// The cost model is untouched: Flush executes each descriptor against
// the underlying Channel exactly as if the caller had made the call
// itself, so channel occupancy, serialization, and per-op capture-time
// semantics are identical to unbatched submission. What the ring saves
// is host-side work, mirroring how a real DMA ring saves PCIe doorbell
// writes rather than descriptor processing time.
//
// Ordering and journaling: descriptors execute in reservation order
// (FIFO), and Flush is the only point where switch state changes. A
// client that journals its write-ahead intent before calling Flush
// therefore keeps the journal-before-mutation invariant for every
// descriptor in the ring; Reserve and the Set* encoders are pure
// host-memory staging.

// ErrRingFull reports a Reserve on a ring with no free slots: every
// slot holds either a staged descriptor or an unconsumed completion.
// The caller must Flush and Drain before reserving again. It wraps
// ErrTransient — like a full hardware queue, retrying after draining
// succeeds.
var ErrRingFull = fmt.Errorf("submission ring full: %w", ErrTransient)

// OpKind selects the channel verb a ring descriptor encodes.
type OpKind uint8

const (
	// OpNone marks an unused descriptor (zero value).
	OpNone OpKind = iota
	// OpAddEntry installs a table entry (completion carries NewHandle).
	OpAddEntry
	// OpModifyEntry rebinds an entry's action and data.
	OpModifyEntry
	// OpDeleteEntry removes an entry.
	OpDeleteEntry
	// OpSetDefault replaces a table's miss action.
	OpSetDefault
	// OpSetHashSeed reprograms a hash calculation.
	OpSetHashSeed
	// OpRegWrite writes one register cell.
	OpRegWrite
)

// String names the kind for stats and errors.
func (k OpKind) String() string {
	switch k {
	case OpAddEntry:
		return "AddEntry"
	case OpModifyEntry:
		return "ModifyEntry"
	case OpDeleteEntry:
		return "DeleteEntry"
	case OpSetDefault:
		return "SetDefaultAction"
	case OpSetHashSeed:
		return "SetHashSeed"
	case OpRegWrite:
		return "RegWrite"
	default:
		return "None"
	}
}

// RingOp is one descriptor: the encoded operation before Flush, plus
// its completion record (Err, NewHandle) after. Slots are reused in
// place — the keys/data slices keep their capacity across laps, which
// is what makes steady-state submission allocation-free. Callers fill
// descriptors with the Set* encoders rather than assigning fields so
// buffer reuse stays in one place.
type RingOp struct {
	Kind   OpKind
	Table  string // table, register, or hash-calculation name
	Handle rmt.EntryHandle
	Action string
	Data   []uint64 // action data (reused capacity)
	// keys/priority stage an OpAddEntry's match spec (reused capacity).
	Keys     []rmt.KeySpec
	Priority int
	// Idx/Val carry OpRegWrite's cell and value, and OpSetHashSeed's
	// seed (in Val).
	Idx uint64
	Val uint64

	// Completion record, valid after Flush until the slot is reused.
	Err       error
	NewHandle rmt.EntryHandle

	// Tag is an opaque caller cookie (e.g. a request pointer index)
	// carried through to Drain.
	Tag any
}

// reset clears a descriptor for reuse, keeping slice capacity.
func (op *RingOp) reset() {
	op.Kind = OpNone
	op.Table = ""
	op.Handle = 0
	op.Action = ""
	op.Data = op.Data[:0]
	op.Keys = op.Keys[:0]
	op.Priority = 0
	op.Idx = 0
	op.Val = 0
	op.Err = nil
	op.NewHandle = 0
	op.Tag = nil
}

// SetModify encodes a ModifyEntry, copying data into the slot's buffer.
func (op *RingOp) SetModify(table string, h rmt.EntryHandle, action string, data []uint64) {
	op.Kind = OpModifyEntry
	op.Table = table
	op.Handle = h
	op.Action = action
	op.Data = append(op.Data[:0], data...)
}

// SetAdd encodes an AddEntry, copying the entry spec into the slot's
// buffers. The handle is reported in NewHandle after Flush.
func (op *RingOp) SetAdd(table string, e rmt.Entry) {
	op.Kind = OpAddEntry
	op.Table = table
	op.Keys = append(op.Keys[:0], e.Keys...)
	op.Priority = e.Priority
	op.Action = e.Action
	op.Data = append(op.Data[:0], e.Data...)
}

// SetDelete encodes a DeleteEntry.
func (op *RingOp) SetDelete(table string, h rmt.EntryHandle) {
	op.Kind = OpDeleteEntry
	op.Table = table
	op.Handle = h
}

// SetDefault encodes a SetDefaultAction, copying the call's data.
func (op *RingOp) SetDefault(table string, call *p4.ActionCall) {
	op.Kind = OpSetDefault
	op.Table = table
	op.Action = call.Action
	op.Data = append(op.Data[:0], call.Data...)
}

// SetHashSeed encodes a SetHashSeed.
func (op *RingOp) SetHashSeed(name string, seed uint64) {
	op.Kind = OpSetHashSeed
	op.Table = name
	op.Val = seed
}

// SetRegWrite encodes a RegWrite.
func (op *RingOp) SetRegWrite(reg string, idx, v uint64) {
	op.Kind = OpRegWrite
	op.Table = reg
	op.Idx = idx
	op.Val = v
}

// RingStats counts ring activity.
type RingStats struct {
	// Reserved counts descriptors handed out; Flushes counts doorbell
	// rings that had work; OpsFlushed counts descriptors executed.
	Reserved   uint64
	Flushes    uint64
	OpsFlushed uint64
	// OpErrors counts descriptors whose execution failed (recorded in
	// the completion, never aborting the rest of the flush).
	OpErrors uint64
	// FullRejections counts Reserve calls refused with ErrRingFull.
	FullRejections uint64
}

// Ring is a fixed-capacity submission/completion ring over a Channel.
// It is single-producer, single-consumer, and not safe for concurrent
// use — like everything else in the simulated control plane, one
// process owns it.
//
// Slot lifecycle is tracked by three free-running counters with the
// invariant consumed <= flushed <= reserved <= consumed+cap:
//
//	Reserve   — hand out slots[reserved % cap], advance reserved
//	Flush     — execute [flushed, reserved), advance flushed
//	Drain     — yield completions [consumed, flushed), advance consumed
type Ring struct {
	ch    Channel
	slots []RingOp

	reserved uint64
	flushed  uint64
	consumed uint64

	stats RingStats
}

// DefaultRingSize is the submit-queue depth when NewRing gets size<=0:
// deep enough for a dialogue iteration's worth of writes, small enough
// that an unconsumed backlog surfaces as backpressure quickly.
const DefaultRingSize = 64

// NewRing builds a ring of the given depth over ch.
func NewRing(ch Channel, size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{ch: ch, slots: make([]RingOp, size)}
}

// Cap returns the ring depth.
func (rg *Ring) Cap() int { return len(rg.slots) }

// Staged returns the number of reserved-but-unflushed descriptors.
func (rg *Ring) Staged() int { return int(rg.reserved - rg.flushed) }

// Completions returns the number of flushed-but-unconsumed descriptors.
func (rg *Ring) Completions() int { return int(rg.flushed - rg.consumed) }

// Stats returns a copy of the ring counters.
func (rg *Ring) Stats() RingStats { return rg.stats }

// Reserve hands out the next descriptor slot, reset and ready to
// encode. The slot stays valid until the lap after its completion is
// consumed. Returns ErrRingFull when every slot is staged or awaiting
// Drain.
func (rg *Ring) Reserve() (*RingOp, error) {
	if rg.reserved-rg.consumed >= uint64(len(rg.slots)) {
		rg.stats.FullRejections++
		return nil, ErrRingFull
	}
	op := &rg.slots[rg.reserved%uint64(len(rg.slots))]
	rg.reserved++
	rg.stats.Reserved++
	op.reset()
	return op, nil
}

// Flush executes every staged descriptor in reservation order against
// the channel — the doorbell write. Each descriptor's outcome lands in
// its completion record; an error does not stop later descriptors
// (hardware rings post per-descriptor status the same way). Channel
// cost is identical to the caller having issued each call itself.
// Returns the first error for callers that treat the flush as one
// transaction; per-op outcomes are read via Drain.
func (rg *Ring) Flush(p *sim.Proc) error {
	n := rg.reserved - rg.flushed
	if n == 0 {
		return nil
	}
	rg.stats.Flushes++
	var first error
	for ; rg.flushed < rg.reserved; rg.flushed++ {
		op := &rg.slots[rg.flushed%uint64(len(rg.slots))]
		op.Err = rg.execute(p, op)
		rg.stats.OpsFlushed++
		if op.Err != nil {
			rg.stats.OpErrors++
			if first == nil {
				first = op.Err
			}
		}
	}
	return first
}

// Drain yields each unconsumed completion in order, then releases its
// slot for reuse. The *RingOp (and its buffers) must not be retained
// past the callback.
func (rg *Ring) Drain(fn func(op *RingOp)) {
	for ; rg.consumed < rg.flushed; rg.consumed++ {
		fn(&rg.slots[rg.consumed%uint64(len(rg.slots))])
	}
}

// execute runs one descriptor against the channel.
func (rg *Ring) execute(p *sim.Proc, op *RingOp) error {
	switch op.Kind {
	case OpAddEntry:
		h, err := rg.ch.AddEntry(p, op.Table, rmt.Entry{
			Keys: op.Keys, Priority: op.Priority, Action: op.Action, Data: op.Data,
		})
		op.NewHandle = h
		return err
	case OpModifyEntry:
		return rg.ch.ModifyEntry(p, op.Table, op.Handle, op.Action, op.Data)
	case OpDeleteEntry:
		return rg.ch.DeleteEntry(p, op.Table, op.Handle)
	case OpSetDefault:
		call := p4.ActionCall{Action: op.Action, Data: op.Data}
		return rg.ch.SetDefaultAction(p, op.Table, &call)
	case OpSetHashSeed:
		return rg.ch.SetHashSeed(p, op.Table, op.Val)
	case OpRegWrite:
		return rg.ch.RegWrite(p, op.Table, op.Idx, op.Val)
	}
	return errors.New("driver: flush of unencoded ring descriptor")
}
