// Package driver models the switch driver stack between a control-plane
// process and the switching ASIC.
//
// On the paper's Wedge100BF-32X, every control-plane interaction crosses
// PCIe and passes through driver software whose per-operation overhead
// dominates reaction latency. Mantis's reported speed comes from three
// driver-level techniques (§6): precomputing operation metadata in the
// prologue, memoizing device instructions for repeated operations, and
// batching register reads. This package reproduces those effects with a
// calibrated cost model:
//
//   - every operation pays a base software + PCIe round-trip cost;
//   - repeated table operations with a memoized descriptor pay a reduced
//     cost (the memoization win);
//   - a batched register read pays one base cost plus a small per-byte
//     DMA cost, instead of one base cost per register (the batching win,
//     visible as the near-flat register series of Figure 10a).
//
// The driver channel is exclusive: operations from concurrent processes
// (the Mantis agent and a legacy control plane) serialize, which is what
// produces the bimodal latency distribution of Figure 12.
package driver

import (
	"fmt"
	"time"

	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// CostModel parameterizes operation latencies. Defaults approximate the
// scale of the paper's Figure 10 microbenchmarks (single-digit µs for
// scalar operations, 10s of ns per additional register byte).
type CostModel struct {
	// TableOp is the cost of one table add/modify/delete or default-action
	// set with a cold descriptor.
	TableOp time.Duration
	// TableOpMemoized is the same operation with a descriptor memoized
	// during the prologue.
	TableOpMemoized time.Duration
	// RegReadBase is the fixed cost of a register read transaction.
	RegReadBase time.Duration
	// RegReadPerReq is the per-range setup cost inside a transaction;
	// polling K distinct packed field registers pays it K times, which
	// is why Fig. 10a's field-argument series climbs faster than the
	// single-array register series.
	RegReadPerReq time.Duration
	// RegReadPerByte is the marginal DMA cost per byte within one range.
	RegReadPerByte time.Duration
	// RegWrite is the cost of one register cell write.
	RegWrite time.Duration
	// HashSeed is the cost of reprogramming a hash calculation seed.
	HashSeed time.Duration
	// AuditBase is the fixed cost of one audit read (table entry dump or
	// default-action read); AuditPerEntry is the marginal DMA cost per
	// dumped entry. Audit reads happen on the recovery path, not in the
	// dialogue loop, so they are costed separately from table ops.
	AuditBase     time.Duration
	AuditPerEntry time.Duration
}

// DefaultCostModel returns latencies calibrated to the paper's
// microbenchmark scale.
func DefaultCostModel() CostModel {
	return CostModel{
		TableOp:         1600 * time.Nanosecond,
		TableOpMemoized: 900 * time.Nanosecond,
		RegReadBase:     800 * time.Nanosecond,
		RegReadPerReq:   400 * time.Nanosecond,
		RegReadPerByte:  25 * time.Nanosecond,
		RegWrite:        900 * time.Nanosecond,
		HashSeed:        1600 * time.Nanosecond,
		AuditBase:       1600 * time.Nanosecond,
		AuditPerEntry:   150 * time.Nanosecond,
	}
}

// Stats counts driver activity.
type Stats struct {
	TableOps     uint64
	MemoizedOps  uint64
	RegReads     uint64
	RegReadBytes uint64
	RegWrites    uint64
	// AuditReads counts configuration read-backs (entry dumps and
	// default-action reads) on the recovery path.
	AuditReads uint64
	// Busy accumulates total channel-occupied time, for CPU/utilization
	// accounting.
	Busy time.Duration
}

// Driver mediates control-plane access to one switch.
type Driver struct {
	sw    *rmt.Switch
	sim   *sim.Simulator
	cost  CostModel
	stats Stats

	// busyUntil serializes the channel: a new operation cannot start
	// before the previous one completes, regardless of issuing process.
	busyUntil sim.Time

	// memo holds descriptors precomputed in the prologue. Memoization is
	// keyed by table name + entry handle (or the table itself for default
	// actions), matching "caching/memoization of device instructions ...
	// for repeated table modifications".
	memo map[memoKey]bool
	// memoEnabled can be cleared for the ablation benchmarks.
	memoEnabled bool
}

type memoKey struct {
	table  string
	handle rmt.EntryHandle // 0 for default-action / seed descriptors
}

// New returns a driver for sw with the given cost model.
func New(s *sim.Simulator, sw *rmt.Switch, cost CostModel) *Driver {
	return &Driver{sw: sw, sim: s, cost: cost, memo: make(map[memoKey]bool), memoEnabled: true}
}

// Switch exposes the underlying switch (for instantaneous reads in
// tests and for wiring the data plane).
func (d *Driver) Switch() *rmt.Switch { return d.sw }

// Stats returns a copy of the driver counters.
func (d *Driver) Stats() Stats { return d.stats }

// SetMemoization enables or disables descriptor memoization (ablation).
func (d *Driver) SetMemoization(on bool) { d.memoEnabled = on }

// Memoize precomputes the descriptor for repeated operations on the
// given table entry (handle 0 memoizes the table's default-action and
// add paths). Called from the agent prologue.
func (d *Driver) Memoize(table string, handle rmt.EntryHandle) {
	d.memo[memoKey{table, handle}] = true
}

// occupy blocks p while the channel is busy, then holds the channel for
// cost and returns. All state mutation happens at the operation's
// completion time, so packets processed mid-operation see pre-op state.
func (d *Driver) occupy(p *sim.Proc, cost time.Duration) {
	start := p.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	end := start.Add(cost)
	d.busyUntil = end
	d.stats.Busy += cost
	p.WaitUntil(end)
}

func (d *Driver) tableCost(table string, handle rmt.EntryHandle) time.Duration {
	d.stats.TableOps++
	if d.memoEnabled && d.memo[memoKey{table, handle}] {
		d.stats.MemoizedOps++
		return d.cost.TableOpMemoized
	}
	return d.cost.TableOp
}

// AddEntry installs a table entry, blocking p for the operation latency.
func (d *Driver) AddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error) {
	d.occupy(p, d.tableCost(table, 0))
	return d.sw.AddEntry(table, e)
}

// ModifyEntry rebinds an entry's action and data.
func (d *Driver) ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	d.occupy(p, d.tableCost(table, h))
	return d.sw.ModifyEntry(table, h, action, data)
}

// DeleteEntry removes an entry.
func (d *Driver) DeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error {
	d.occupy(p, d.tableCost(table, h))
	return d.sw.DeleteEntry(table, h)
}

// SetDefaultAction replaces a table's miss action.
func (d *Driver) SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	d.occupy(p, d.tableCost(table, 0))
	return d.sw.SetDefaultAction(table, call)
}

// SetHashSeed reprograms a hash calculation.
func (d *Driver) SetHashSeed(p *sim.Proc, name string, seed uint64) error {
	d.occupy(p, d.cost.HashSeed)
	return d.sw.SetHashSeed(name, seed)
}

// RegWrite writes one register cell.
func (d *Driver) RegWrite(p *sim.Proc, reg string, idx uint64, v uint64) error {
	d.occupy(p, d.cost.RegWrite)
	d.stats.RegWrites++
	return d.sw.RegWrite(reg, idx, v)
}

// ReadReq describes one register range in a batched read.
type ReadReq struct {
	Reg string
	Lo  uint64
	Hi  uint64 // exclusive
}

// rangeBytes validates one batched-read range and returns its DMA byte
// count. Validation happens during request prologue, before any channel
// time is spent — real drivers reject malformed requests without
// touching the device.
func (d *Driver) rangeBytes(req ReadReq) (uint64, error) {
	r, ok := d.sw.Program().Registers[req.Reg]
	if !ok {
		return 0, fmt.Errorf("driver: unknown register %q: %w", req.Reg, rmt.ErrUnknownRegister)
	}
	if req.Lo > req.Hi {
		return 0, fmt.Errorf("driver: register %q range [%d,%d) inverted: %w", req.Reg, req.Lo, req.Hi, ErrBadBatch)
	}
	if req.Hi > uint64(r.Instances) {
		return 0, fmt.Errorf("driver: register %q range [%d,%d) out of bounds [0,%d): %w",
			req.Reg, req.Lo, req.Hi, r.Instances, rmt.ErrRegRange)
	}
	widthBytes := uint64((r.Width + 7) / 8)
	return (req.Hi - req.Lo) * widthBytes, nil
}

// RegRead reads one register cell (an unbatched single read).
func (d *Driver) RegRead(p *sim.Proc, reg string, idx uint64) (uint64, error) {
	var (
		reqs = [1]ReadReq{{Reg: reg, Lo: idx, Hi: idx + 1}}
		buf  [1]uint64
		dst  = [1][]uint64{buf[:0]}
	)
	if err := d.readInto(p, reqs[:], dst[:], true); err != nil {
		return 0, err
	}
	return dst[0][0], nil
}

// readInto is the single read entry point behind BatchRead,
// BatchReadInto, UnbatchedRead, and RegRead: one range-validation/cost
// loop, then either one combined transaction (batched) or one
// transaction per range (the ablation mode). dst must have one row per
// request; rows are refilled in place via append on row[:0], so a
// caller that keeps dst across iterations reads with zero allocations.
func (d *Driver) readInto(p *sim.Proc, reqs []ReadReq, dst [][]uint64, batched bool) error {
	if len(reqs) == 0 {
		// An empty batch is a no-op: no transaction is issued, no channel
		// time is spent.
		return nil
	}
	if len(dst) != len(reqs) {
		return fmt.Errorf("driver: %d result rows for %d requests: %w", len(dst), len(reqs), ErrBadBatch)
	}
	// Validate every range (and size the batched DMA) before any channel
	// time is spent, in both modes.
	var bytes uint64
	for _, req := range reqs {
		b, err := d.rangeBytes(req)
		if err != nil {
			return err
		}
		bytes += b
	}
	if batched {
		cost := d.cost.RegReadBase +
			time.Duration(len(reqs))*d.cost.RegReadPerReq +
			time.Duration(bytes)*d.cost.RegReadPerByte
		d.occupy(p, cost)
		d.stats.RegReads++
		d.stats.RegReadBytes += bytes
	}
	for i, req := range reqs {
		if !batched {
			// Each range is its own transaction, paying the full base
			// cost, and its values are captured at that transaction's
			// completion time (not the whole sweep's).
			b, _ := d.rangeBytes(req) // validated above
			d.occupy(p, d.cost.RegReadBase+d.cost.RegReadPerReq+time.Duration(b)*d.cost.RegReadPerByte)
			d.stats.RegReads++
			d.stats.RegReadBytes += b
		}
		row, err := d.sw.RegReadRangeInto(req.Reg, req.Lo, req.Hi, dst[i][:0])
		if err != nil {
			return err
		}
		dst[i] = row
	}
	return nil
}

// BatchRead reads several register ranges in one driver transaction:
// one base cost plus the per-byte DMA cost of all ranges. Values are
// captured at the completion time of the whole batch.
func (d *Driver) BatchRead(p *sim.Proc, reqs []ReadReq) ([][]uint64, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([][]uint64, len(reqs))
	if err := d.readInto(p, reqs, out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchReadInto is BatchRead without the result allocation: dst must
// have one row per request, and each row is refilled in place (append
// on row[:0], retaining capacity). The agent's steady-state poll path
// reuses one dst matrix across all iterations.
func (d *Driver) BatchReadInto(p *sim.Proc, reqs []ReadReq, dst [][]uint64) error {
	return d.readInto(p, reqs, dst, true)
}

// ReadEntries dumps a table's installed entries, paying one audit
// transaction plus a per-entry DMA cost. The snapshot is captured at
// the operation's completion time, like every other channel read.
func (d *Driver) ReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error) {
	// Validate (and size the dump) before any channel time is spent.
	pre, err := d.sw.Entries(table)
	if err != nil {
		return nil, err
	}
	d.occupy(p, d.cost.AuditBase+time.Duration(len(pre))*d.cost.AuditPerEntry)
	d.stats.AuditReads++
	return d.sw.Entries(table)
}

// ReadDefaultAction reads back a table's miss action in one audit
// transaction.
func (d *Driver) ReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error) {
	d.occupy(p, d.cost.AuditBase)
	d.stats.AuditReads++
	return d.sw.DefaultAction(table)
}

// UnbatchedRead performs the reads one request at a time, each paying
// the base cost — the ablation counterpart of BatchRead. It shares
// BatchRead's validation and range-cost loop via readInto.
func (d *Driver) UnbatchedRead(p *sim.Proc, reqs []ReadReq) ([][]uint64, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([][]uint64, len(reqs))
	if err := d.readInto(p, reqs, out, false); err != nil {
		return nil, err
	}
	return out, nil
}
