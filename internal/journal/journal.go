// Package journal is the durable write-ahead intent log that makes the
// Mantis dialogue loop crash-consistent.
//
// The three-phase update protocol of §5.1 is serializable only while
// the agent process survives: its undo/mirror journals live in agent
// memory, so a crash between prepare and commit strands installed
// shadow entries and half-flipped version state that no successor can
// interpret from the switch alone. This package gives the agent a tiny
// durable side-channel — a checkpoint of the last committed
// configuration plus an intent record for the in-flight iteration —
// sized so one journal write costs far less than one driver operation.
//
// The write discipline (enforced by internal/core):
//
//   - A Checkpoint is saved after the prologue and after every
//     completed iteration. It captures exactly the state a successor
//     needs to rebuild the agent: version bits, init-table data,
//     committed malleable values, user-level table entries (with their
//     user handles, so application-held handles survive failover), and
//     the measurement caches that guard against §5.2's stale-read
//     anomaly.
//
//   - An Intent in PhaseBegun is written before the iteration touches
//     the switch; it is upgraded to PhaseCommitStaged — now carrying
//     the staged user-level table ops and the exact init-table data the
//     flip will install — immediately before the prepare phase, and
//     truncated once the iteration (or its rollback) completes.
//
// Recovery (core.Recover) classifies a crash by combining the intent
// phase with an audit of the live switch: no intent means the crash hit
// between iterations; a Begun or CommitStaged intent with the audited
// vv still at the checkpoint value means the flip never executed (roll
// back to the checkpoint); a CommitStaged intent with the audited vv at
// the target value means the flip landed but mirrors may be unfinished
// (roll forward by applying the intent's ops to the checkpoint).
//
// Store implementations must be atomic per record: a reader sees either
// the previous record or the new one, never a torn write. MemStore
// models battery-backed controller RAM shared with a standby; FileStore
// persists JSON files for processes that genuinely restart.
package journal

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/rmt"
)

// EntrySpec is a user-level table entry specification, the journal's
// copy of core.UserEntry (duplicated here so the dependency points from
// core to journal, not back).
type EntrySpec struct {
	Keys     []rmt.KeySpec `json:"keys"`
	Priority int           `json:"priority,omitempty"`
	Action   string        `json:"action"`
	Data     []uint64      `json:"data"`
}

// TableOpKind distinguishes the user-level operations an intent stages.
type TableOpKind string

// The three user-level table operations of the dialogue protocol.
const (
	OpAdd    TableOpKind = "add"
	OpModify TableOpKind = "modify"
	OpDelete TableOpKind = "delete"
)

// TableOp is one staged user-level table operation. Ops are recorded at
// user level, not concrete-entry level: concrete handles are assigned
// by the (now dead) primary's driver calls and mean nothing to a
// successor, whereas the user spec deterministically regenerates every
// concrete entry for both versions.
type TableOp struct {
	Table string      `json:"table"`
	Kind  TableOpKind `json:"kind"`
	// Handle is the user-level handle the op targets (for OpAdd, the
	// handle the primary assigned — replayed so application handles stay
	// stable across failover).
	Handle uint64 `json:"handle"`
	// Spec is the post-op entry specification (zero for OpDelete).
	Spec EntrySpec `json:"spec,omitempty"`
}

// EntryState is one user entry in a checkpointed table.
type EntryState struct {
	Handle uint64    `json:"handle"`
	Spec   EntrySpec `json:"spec"`
}

// TableState checkpoints one malleable table's user-level content.
type TableState struct {
	Table      string       `json:"table"`
	NextHandle uint64       `json:"next_handle"`
	Entries    []EntryState `json:"entries"` // sorted by handle
}

// RegCache checkpoints one measurement register's timestamp-guarded
// cache, so a successor resumes with the freshest serializable values
// instead of re-triggering the alternating-stale-read anomaly of §5.2.
type RegCache struct {
	Name   string      `json:"name"`
	Vals   []uint64    `json:"vals"`
	LastTs [2][]uint64 `json:"last_ts"`
}

// Checkpoint is the durable image of the last committed configuration.
type Checkpoint struct {
	// Iteration is the dialogue iteration count at save time.
	Iteration uint64 `json:"iteration"`
	// VV and MV are the committed version bits.
	VV uint64 `json:"vv"`
	MV uint64 `json:"mv"`
	// InitData mirrors the committed action data of each init table,
	// indexed like the plan's InitTables (index 0 = master).
	InitData [][]uint64 `json:"init_data"`
	// Mbl holds the committed malleable values (alt indices for fields).
	Mbl map[string]uint64 `json:"mbl,omitempty"`
	// Tables checkpoints each malleable table, sorted by name.
	Tables []TableState `json:"tables,omitempty"`
	// RegCaches checkpoints the measurement caches, sorted by name.
	RegCaches []RegCache `json:"reg_caches,omitempty"`
	// SavedAt is the virtual time of the save, in nanoseconds.
	SavedAt int64 `json:"saved_at"`
}

// Phase tells recovery how far the journaled iteration got.
type Phase string

const (
	// PhaseBegun: the iteration started (mv flip, polls, reactions may
	// have staged shadow writes) but its commit was not yet attempted.
	PhaseBegun Phase = "begun"
	// PhaseCommitStaged: the commit was about to run — the intent holds
	// the full staged op list and the init data the flip will install.
	// Whether the flip landed is decided by auditing the live vv bit.
	PhaseCommitStaged Phase = "commit-staged"
)

// Intent is the write-ahead record of one in-flight iteration.
type Intent struct {
	Iteration uint64 `json:"iteration"`
	Phase     Phase  `json:"phase"`
	// StartVV is the committed vv when the iteration began; TargetVV is
	// the value the commit will flip to. Comparing the audited live vv
	// against these two classifies torn-prepare vs committed-unmirrored.
	StartVV  uint64 `json:"start_vv"`
	TargetVV uint64 `json:"target_vv"`
	// Ops are the staged user-level table operations, in staging order
	// (PhaseCommitStaged only).
	Ops []TableOp `json:"ops,omitempty"`
	// PendingMbl are the staged malleable writes the flip will commit.
	PendingMbl map[string]uint64 `json:"pending_mbl,omitempty"`
	// TargetInitData is the init-table action data the commit installs,
	// indexed like the plan's InitTables (PhaseCommitStaged only).
	TargetInitData [][]uint64 `json:"target_init_data,omitempty"`
	// WrittenAt is the virtual time of the write, in nanoseconds.
	WrittenAt int64 `json:"written_at"`
}

// Store is the pluggable durability backend. Implementations must make
// each record write atomic (old or new, never torn) and must tolerate
// Load* before any Save/Write (returning nil, nil).
//
// The heartbeat shares the store because failure detection and recovery
// need the same reachability: a standby that can read the journal can
// also see the primary stopped beating.
type Store interface {
	SaveCheckpoint(c *Checkpoint) error
	// LoadCheckpoint returns nil, nil when no checkpoint was ever saved.
	LoadCheckpoint() (*Checkpoint, error)
	// WriteIntent must serialize (or deep-copy) the intent before
	// returning: callers reuse the *Intent and the slices/maps it
	// references across iterations, so retaining either is a bug.
	WriteIntent(it *Intent) error
	// LoadIntent returns nil, nil when no intent is outstanding.
	LoadIntent() (*Intent, error)
	TruncateIntent() error
	// Heartbeat records the primary's liveness at virtual time now (ns).
	Heartbeat(now int64) error
	// LastHeartbeat returns the last recorded beat (0 = never).
	LastHeartbeat() (int64, error)
}

// MemStore is an in-memory Store: the model of a journal region in
// battery-backed controller RAM (or a replicated KV namespace) that a
// standby on the same failure domain boundary can read after the
// primary dies. Records are stored serialized, so a loaded record is
// always a deep copy — exactly the aliasing semantics a real durable
// store gives.
type MemStore struct {
	mu         sync.Mutex
	checkpoint []byte
	intent     []byte
	beat       int64

	stats StoreStats
}

// StoreStats counts journal activity (for experiments and tests).
type StoreStats struct {
	CheckpointSaves uint64
	IntentWrites    uint64
	Truncates       uint64
	Heartbeats      uint64
}

// NewMemStore returns an empty in-memory journal store.
func NewMemStore() *MemStore { return &MemStore{} }

// Stats returns a copy of the store counters.
func (m *MemStore) Stats() StoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SaveCheckpoint atomically replaces the checkpoint record.
func (m *MemStore) SaveCheckpoint(c *Checkpoint) error {
	buf, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("journal: encode checkpoint: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checkpoint = buf
	m.stats.CheckpointSaves++
	return nil
}

// LoadCheckpoint returns the last saved checkpoint (nil, nil if none).
func (m *MemStore) LoadCheckpoint() (*Checkpoint, error) {
	m.mu.Lock()
	buf := m.checkpoint
	m.mu.Unlock()
	if buf == nil {
		return nil, nil
	}
	var c Checkpoint
	if err := json.Unmarshal(buf, &c); err != nil {
		return nil, fmt.Errorf("journal: decode checkpoint: %w", err)
	}
	return &c, nil
}

// WriteIntent atomically replaces the intent record.
func (m *MemStore) WriteIntent(it *Intent) error {
	buf, err := json.Marshal(it)
	if err != nil {
		return fmt.Errorf("journal: encode intent: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.intent = buf
	m.stats.IntentWrites++
	return nil
}

// LoadIntent returns the outstanding intent (nil, nil if none).
func (m *MemStore) LoadIntent() (*Intent, error) {
	m.mu.Lock()
	buf := m.intent
	m.mu.Unlock()
	if buf == nil {
		return nil, nil
	}
	var it Intent
	if err := json.Unmarshal(buf, &it); err != nil {
		return nil, fmt.Errorf("journal: decode intent: %w", err)
	}
	return &it, nil
}

// TruncateIntent clears the intent record.
func (m *MemStore) TruncateIntent() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.intent = nil
	m.stats.Truncates++
	return nil
}

// Heartbeat records the primary's liveness.
func (m *MemStore) Heartbeat(now int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.beat = now
	m.stats.Heartbeats++
	return nil
}

// LastHeartbeat returns the last recorded beat (0 = never).
func (m *MemStore) LastHeartbeat() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.beat, nil
}

var _ Store = (*MemStore)(nil)
