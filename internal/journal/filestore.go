package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// FileStore persists the journal as JSON files in a directory — the
// backend for agents that genuinely restart (examples, operational
// tooling) rather than failing over to an in-process standby. Writes go
// through a temp file + rename, so a reader never observes a torn
// record even if the writer dies mid-write.
type FileStore struct {
	dir string
}

const (
	checkpointFile = "checkpoint.json"
	intentFile     = "intent.json"
	heartbeatFile  = "heartbeat"
)

// NewFileStore opens (creating if needed) a journal directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the journal directory.
func (fs *FileStore) Dir() string { return fs.dir }

// writeAtomic writes buf to name via temp file + rename.
func (fs *FileStore) writeAtomic(name string, buf []byte) error {
	tmp, err := os.CreateTemp(fs.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(fs.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// readFile returns the named record's bytes, nil if absent.
func (fs *FileStore) readFile(name string) ([]byte, error) {
	buf, err := os.ReadFile(filepath.Join(fs.dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return buf, nil
}

// SaveCheckpoint atomically replaces the checkpoint file.
func (fs *FileStore) SaveCheckpoint(c *Checkpoint) error {
	buf, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("journal: encode checkpoint: %w", err)
	}
	return fs.writeAtomic(checkpointFile, buf)
}

// LoadCheckpoint returns the saved checkpoint (nil, nil if none).
func (fs *FileStore) LoadCheckpoint() (*Checkpoint, error) {
	buf, err := fs.readFile(checkpointFile)
	if buf == nil || err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(buf, &c); err != nil {
		return nil, fmt.Errorf("journal: decode checkpoint: %w", err)
	}
	return &c, nil
}

// WriteIntent atomically replaces the intent file.
func (fs *FileStore) WriteIntent(it *Intent) error {
	buf, err := json.Marshal(it)
	if err != nil {
		return fmt.Errorf("journal: encode intent: %w", err)
	}
	return fs.writeAtomic(intentFile, buf)
}

// LoadIntent returns the outstanding intent (nil, nil if none).
func (fs *FileStore) LoadIntent() (*Intent, error) {
	buf, err := fs.readFile(intentFile)
	if buf == nil || err != nil {
		return nil, err
	}
	var it Intent
	if err := json.Unmarshal(buf, &it); err != nil {
		return nil, fmt.Errorf("journal: decode intent: %w", err)
	}
	return &it, nil
}

// TruncateIntent removes the intent file.
func (fs *FileStore) TruncateIntent() error {
	err := os.Remove(filepath.Join(fs.dir, intentFile))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Heartbeat records the primary's liveness.
func (fs *FileStore) Heartbeat(now int64) error {
	return fs.writeAtomic(heartbeatFile, []byte(strconv.FormatInt(now, 10)))
}

// LastHeartbeat returns the last recorded beat (0 = never).
func (fs *FileStore) LastHeartbeat() (int64, error) {
	buf, err := fs.readFile(heartbeatFile)
	if buf == nil || err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(strings.TrimSpace(string(buf)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("journal: decode heartbeat: %w", err)
	}
	return v, nil
}

var _ Store = (*FileStore)(nil)
