package journal

import (
	"reflect"
	"testing"

	"repro/internal/rmt"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Iteration: 42,
		VV:        1,
		MV:        0,
		InitData:  [][]uint64{{1, 0, 7}, {9}},
		Mbl:       map[string]uint64{"thresh": 7},
		Tables: []TableState{{
			Table:      "t1__gen",
			NextHandle: 3,
			Entries: []EntryState{
				{Handle: 1, Spec: EntrySpec{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{5}}},
				{Handle: 3, Spec: EntrySpec{Keys: []rmt.KeySpec{rmt.TernaryKey(4, 0xff)}, Priority: 2, Action: "set1", Data: []uint64{6}}},
			},
		}},
		RegCaches: []RegCache{{
			Name: "qd", Vals: []uint64{1, 2},
			LastTs: [2][]uint64{{3, 4}, {5, 6}},
		}},
		SavedAt: 1000,
	}
}

func sampleIntent() *Intent {
	return &Intent{
		Iteration: 43,
		Phase:     PhaseCommitStaged,
		StartVV:   1,
		TargetVV:  0,
		Ops: []TableOp{
			{Table: "t1__gen", Kind: OpModify, Handle: 1,
				Spec: EntrySpec{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{8}}},
			{Table: "t1__gen", Kind: OpDelete, Handle: 3},
		},
		PendingMbl:     map[string]uint64{"thresh": 8},
		TargetInitData: [][]uint64{{0, 0, 8}, {9}},
		WrittenAt:      2000,
	}
}

// exerciseStore runs the round-trip contract shared by every Store.
func exerciseStore(t *testing.T, st Store) {
	t.Helper()

	// Empty store: loads return nil/zero without error.
	if c, err := st.LoadCheckpoint(); c != nil || err != nil {
		t.Fatalf("empty LoadCheckpoint = %v, %v", c, err)
	}
	if it, err := st.LoadIntent(); it != nil || err != nil {
		t.Fatalf("empty LoadIntent = %v, %v", it, err)
	}
	if hb, err := st.LastHeartbeat(); hb != 0 || err != nil {
		t.Fatalf("empty LastHeartbeat = %d, %v", hb, err)
	}

	cp := sampleCheckpoint()
	if err := st.SaveCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("checkpoint round trip:\n got %+v\nwant %+v", got, cp)
	}

	// Loaded records must be deep copies: mutating one must not bleed
	// into a subsequent load.
	got.Tables[0].Entries[0].Spec.Data[0] = 999
	got2, _ := st.LoadCheckpoint()
	if got2.Tables[0].Entries[0].Spec.Data[0] != 5 {
		t.Fatal("LoadCheckpoint aliases store memory")
	}

	it := sampleIntent()
	if err := st.WriteIntent(it); err != nil {
		t.Fatal(err)
	}
	gotIt, err := st.LoadIntent()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIt, it) {
		t.Fatalf("intent round trip:\n got %+v\nwant %+v", gotIt, it)
	}

	if err := st.TruncateIntent(); err != nil {
		t.Fatal(err)
	}
	if gotIt, _ := st.LoadIntent(); gotIt != nil {
		t.Fatalf("intent survived truncate: %+v", gotIt)
	}
	// Truncating an already-empty intent is a no-op, not an error.
	if err := st.TruncateIntent(); err != nil {
		t.Fatal(err)
	}

	if err := st.Heartbeat(12345); err != nil {
		t.Fatal(err)
	}
	if hb, _ := st.LastHeartbeat(); hb != 12345 {
		t.Fatalf("heartbeat = %d, want 12345", hb)
	}
	if err := st.Heartbeat(12400); err != nil {
		t.Fatal(err)
	}
	if hb, _ := st.LastHeartbeat(); hb != 12400 {
		t.Fatalf("heartbeat = %d, want 12400", hb)
	}

	// Checkpoint survives intent churn.
	if c, _ := st.LoadCheckpoint(); c == nil || c.Iteration != 42 {
		t.Fatalf("checkpoint lost: %+v", c)
	}
}

func TestMemStore(t *testing.T) { exerciseStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir() + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, fs)

	// A second FileStore on the same directory sees the records — the
	// actual restart path.
	fs2, err := NewFileStore(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if c, err := fs2.LoadCheckpoint(); err != nil || c == nil || c.Iteration != 42 {
		t.Fatalf("reopened store checkpoint = %+v, %v", c, err)
	}
	if hb, _ := fs2.LastHeartbeat(); hb != 12400 {
		t.Fatalf("reopened store heartbeat = %d", hb)
	}
}

func TestMemStoreStats(t *testing.T) {
	st := NewMemStore()
	_ = st.SaveCheckpoint(sampleCheckpoint())
	_ = st.WriteIntent(sampleIntent())
	_ = st.WriteIntent(sampleIntent())
	_ = st.TruncateIntent()
	_ = st.Heartbeat(1)
	got := st.Stats()
	want := StoreStats{CheckpointSaves: 1, IntentWrites: 2, Truncates: 1, Heartbeats: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}
