package p4r

import "fmt"

// File is the parsed representation of one .p4r source file.
type File struct {
	HeaderTypes []*HeaderType
	Instances   []*Instance
	Registers   []*RegisterDecl
	FieldLists  []*FieldList
	Calcs       []*FieldListCalc
	Actions     []*ActionDecl
	Tables      []*TableDecl
	MblValues   []*MblValue
	MblFields   []*MblField
	Reactions   []*Reaction
	Ingress     []Stmt
	Egress      []Stmt
}

// HeaderType declares a header layout.
type HeaderType struct {
	Name   string
	Fields []FieldDef
	Line   int
	Col    int
}

// FieldDef is one field of a header type.
type FieldDef struct {
	Name  string
	Width int
}

// Instance instantiates a header type as a packet header or metadata.
type Instance struct {
	TypeName string
	Name     string
	Metadata bool
	Line     int
	Col      int
}

// RegisterDecl declares a stateful register array.
type RegisterDecl struct {
	Name          string
	Width         int
	InstanceCount int
	Line          int
	Col           int
}

// FieldList names an ordered list of fields (possibly malleable refs).
type FieldList struct {
	Name    string
	Entries []Arg
	Line    int
	Col     int
}

// FieldListCalc declares a hash over a field list.
type FieldListCalc struct {
	Name        string
	Input       string
	Algorithm   string
	OutputWidth int
	Line        int
	Col         int
}

// ArgKind discriminates Arg variants.
type ArgKind int

// Arg kinds: a (possibly dotted) identifier, a numeric literal, or a
// ${...} malleable reference.
const (
	ArgIdent ArgKind = iota
	ArgConst
	ArgMblRef
)

// Arg is an argument in an action call, table read, field list, or
// condition. Identifier resolution (action parameter vs header field)
// happens during compilation, once the enclosing action's parameter list
// is known.
type Arg struct {
	Kind  ArgKind
	Ident string
	Value uint64
	Mbl   string
	Line  int
	Col   int
}

func (a Arg) String() string {
	switch a.Kind {
	case ArgIdent:
		return a.Ident
	case ArgConst:
		return fmt.Sprintf("%d", a.Value)
	default:
		return fmt.Sprintf("${%s}", a.Mbl)
	}
}

// PrimCall is one primitive invocation in an action body.
type PrimCall struct {
	Name string
	Args []Arg
	Line int
	Col  int
}

// ActionDecl declares a compound action.
type ActionDecl struct {
	Name   string
	Params []string
	Body   []PrimCall
	Line   int
	Col    int
}

// ReadKey is one column of a table's reads block.
type ReadKey struct {
	Target    Arg // ArgIdent field or ArgMblRef
	MatchType string
	// Mask is the static mask of a `f mask 0x..` read (HasMask set).
	Mask    uint64
	HasMask bool
	Line    int
	Col     int
}

// DefaultCall is a table's default action with constant arguments.
type DefaultCall struct {
	Action string
	Args   []uint64
}

// TableDecl declares a match-action table; Malleable tables get version
// control from the Mantis compiler.
type TableDecl struct {
	Name      string
	Malleable bool
	Reads     []ReadKey
	Actions   []string
	Default   *DefaultCall
	Size      int
	Line      int
	Col       int
}

// MblValue is a `malleable value` declaration: a runtime-settable
// constant of a given width.
type MblValue struct {
	Name  string
	Width int
	Init  uint64
	Line  int
	Col   int
}

// MblField is a `malleable field` declaration: a runtime-shiftable
// reference to one of a fixed set of alternative fields.
type MblField struct {
	Name  string
	Width int
	Init  string
	Alts  []string
	Line  int
	Col   int
}

// InitAltIndex returns the index of the init field within Alts, or -1.
func (m *MblField) InitAltIndex() int {
	for i, a := range m.Alts {
		if a == m.Init {
			return i
		}
	}
	return -1
}

// ReactionParamKind classifies reaction parameters per Figure 3's
// reaction_args rule.
type ReactionParamKind int

// Reaction parameter kinds: ingress field, egress field, register slice.
const (
	ParamIng ReactionParamKind = iota
	ParamEgr
	ParamReg
)

// ReactionParam is one polled parameter of a reaction.
type ReactionParam struct {
	Kind ReactionParamKind
	// Target is the field name (ing/egr), the malleable name when IsMbl,
	// or the register name (reg).
	Target string
	IsMbl  bool
	// Lo, Hi bound a register slice parameter reg name[lo:hi]
	// (inclusive, as in the paper's `reg qdepths[1:10]`).
	Lo, Hi int
	Line   int
	Col    int
}

// Reaction is a reaction declaration. Body is the raw C-like source,
// parsed and executed by internal/rcl.
type Reaction struct {
	Name   string
	Params []ReactionParam
	Body   string
	Line   int
	Col    int
}

// Stmt is a control-flow statement (apply or if).
type Stmt interface{ stmt() }

// ApplyStmt applies a table.
type ApplyStmt struct {
	Table string
	Line  int
	Col   int
}

// IfStmt branches on a condition.
type IfStmt struct {
	Cond CondExpr
	Then []Stmt
	Else []Stmt
}

func (ApplyStmt) stmt() {}
func (IfStmt) stmt()    {}

// CondExpr is a binary comparison between two arguments.
type CondExpr struct {
	Left  Arg
	Op    string
	Right Arg
}

// BodyLineCount counts the non-blank lines of all reaction bodies plus
// declarations — used for the Table-1 "P4R LoC" metric.
func (f *File) BodyLineCount(src string) int {
	n := 0
	for _, line := range splitLines(src) {
		if line != "" {
			n++
		}
	}
	return n
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			// trim spaces
			j, k := 0, len(line)
			for j < k && (line[j] == ' ' || line[j] == '\t' || line[j] == '\r') {
				j++
			}
			for k > j && (line[k-1] == ' ' || line[k-1] == '\t' || line[k-1] == '\r') {
				k--
			}
			out = append(out, line[j:k])
			start = i + 1
		}
	}
	return out
}
