package p4r

import (
	"repro/internal/p4r/diag"
)

// Parser is a recursive-descent parser for P4R source with one token of
// lookahead.
type Parser struct {
	lx  *Lexer
	cur Token
	f   *File
}

// Parse parses a complete P4R source file.
func Parse(src string) (*File, error) {
	p := &Parser{lx: NewLexer(src), f: &File{}}
	if err := p.next(); err != nil {
		return nil, err
	}
	for p.cur.Kind != TokEOF {
		if err := p.parseTopLevel(); err != nil {
			return nil, err
		}
	}
	return p.f, nil
}

func (p *Parser) next() error {
	tok, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

// errf reports a generic syntax error at the current token.
func (p *Parser) errf(format string, args ...any) error {
	return p.errc(diag.SyntaxError, format, args...)
}

// errc reports a coded syntax error at the current token.
func (p *Parser) errc(code, format string, args ...any) error {
	return diag.Errorf(code, p.cur.Line, p.cur.Col, format, args...)
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur.Kind != TokIdent {
		return Token{}, p.errf("expected identifier, got %s", p.cur)
	}
	tok := p.cur
	return tok, p.next()
}

func (p *Parser) expectNumber() (uint64, error) {
	if p.cur.Kind != TokNumber {
		return 0, p.errf("expected number, got %s", p.cur)
	}
	v := p.cur.Num
	return v, p.next()
}

func (p *Parser) expectPunct(text string) error {
	if p.cur.Kind != TokPunct || p.cur.Text != text {
		return p.errf("expected %q, got %s", text, p.cur)
	}
	return p.next()
}

func (p *Parser) isPunct(text string) bool {
	return p.cur.Kind == TokPunct && p.cur.Text == text
}

func (p *Parser) acceptPunct(text string) (bool, error) {
	if p.isPunct(text) {
		return true, p.next()
	}
	return false, nil
}

// keyNumber parses `key : <number> ;` where the key identifier was
// already consumed.
func (p *Parser) keyNumber() (uint64, error) {
	if err := p.expectPunct(":"); err != nil {
		return 0, err
	}
	v, err := p.expectNumber()
	if err != nil {
		return 0, err
	}
	return v, p.expectPunct(";")
}

func (p *Parser) parseTopLevel() error {
	if p.cur.Kind != TokIdent {
		return p.errf("expected declaration, got %s", p.cur)
	}
	switch p.cur.Text {
	case "header_type":
		return p.parseHeaderType()
	case "header", "metadata":
		return p.parseInstance()
	case "register":
		return p.parseRegister()
	case "field_list":
		return p.parseFieldList()
	case "field_list_calculation":
		return p.parseFieldListCalc()
	case "action":
		return p.parseAction()
	case "table":
		if err := p.next(); err != nil {
			return err
		}
		return p.parseTable(false)
	case "malleable":
		return p.parseMalleable()
	case "reaction":
		return p.parseReaction()
	case "control":
		return p.parseControl()
	default:
		return p.errc(diag.UnknownConstruct, "unknown declaration %q", p.cur.Text)
	}
}

func (p *Parser) parseHeaderType() error {
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	ht := &HeaderType{Name: name.Text, Line: line, Col: col}
	// fields { name : width; ... }
	kw, err := p.expectIdent()
	if err != nil {
		return err
	}
	if kw.Text != "fields" {
		return p.errf("expected 'fields' in header_type %s", name.Text)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		fname, err := p.expectIdent()
		if err != nil {
			return err
		}
		w, err := p.keyNumber()
		if err != nil {
			return err
		}
		ht.Fields = append(ht.Fields, FieldDef{Name: fname.Text, Width: int(w)})
	}
	if err := p.next(); err != nil { // consume inner }
		return err
	}
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	p.f.HeaderTypes = append(p.f.HeaderTypes, ht)
	return nil
}

func (p *Parser) parseInstance() error {
	meta := p.cur.Text == "metadata"
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	typ, err := p.expectIdent()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	p.f.Instances = append(p.f.Instances, &Instance{
		TypeName: typ.Text, Name: name.Text, Metadata: meta, Line: line, Col: col,
	})
	return nil
}

func (p *Parser) parseRegister() error {
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	r := &RegisterDecl{Name: name.Text, Line: line, Col: col}
	for !p.isPunct("}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		v, err := p.keyNumber()
		if err != nil {
			return err
		}
		switch key.Text {
		case "width":
			r.Width = int(v)
		case "instance_count":
			r.InstanceCount = int(v)
		default:
			return diag.Errorf(diag.UnknownConstruct, key.Line, key.Col, "unknown register attribute %q", key.Text)
		}
	}
	if err := p.next(); err != nil {
		return err
	}
	if r.Width == 0 {
		return diag.Errorf(diag.MissingAttr, name.Line, name.Col, "register %s missing width", r.Name)
	}
	if r.InstanceCount == 0 {
		r.InstanceCount = 1
	}
	p.f.Registers = append(p.f.Registers, r)
	return nil
}

// parseArg parses an identifier, number, or ${mbl} reference.
func (p *Parser) parseArg() (Arg, error) {
	switch p.cur.Kind {
	case TokIdent:
		a := Arg{Kind: ArgIdent, Ident: p.cur.Text, Line: p.cur.Line, Col: p.cur.Col}
		return a, p.next()
	case TokNumber:
		a := Arg{Kind: ArgConst, Value: p.cur.Num, Line: p.cur.Line, Col: p.cur.Col}
		return a, p.next()
	case TokMblRef:
		a := Arg{Kind: ArgMblRef, Mbl: p.cur.Text, Line: p.cur.Line, Col: p.cur.Col}
		return a, p.next()
	default:
		return Arg{}, p.errf("expected argument, got %s", p.cur)
	}
}

func (p *Parser) parseFieldList() error {
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	fl := &FieldList{Name: name.Text, Line: line, Col: col}
	for !p.isPunct("}") {
		a, err := p.parseArg()
		if err != nil {
			return err
		}
		fl.Entries = append(fl.Entries, a)
		if ok, err := p.acceptPunct(";"); err != nil {
			return err
		} else if !ok {
			if _, err := p.acceptPunct(","); err != nil {
				return err
			}
		}
	}
	if err := p.next(); err != nil {
		return err
	}
	p.f.FieldLists = append(p.f.FieldLists, fl)
	return nil
}

func (p *Parser) parseFieldListCalc() error {
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	c := &FieldListCalc{Name: name.Text, Line: line, Col: col}
	for !p.isPunct("}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key.Text {
		case "input":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			in, err := p.expectIdent()
			if err != nil {
				return err
			}
			c.Input = in.Text
			if _, err := p.acceptPunct(";"); err != nil {
				return err
			}
			if err := p.expectPunct("}"); err != nil {
				return err
			}
		case "algorithm":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			algo, err := p.expectIdent()
			if err != nil {
				return err
			}
			c.Algorithm = algo.Text
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case "output_width":
			w, err := p.keyNumber()
			if err != nil {
				return err
			}
			c.OutputWidth = int(w)
		default:
			return diag.Errorf(diag.UnknownConstruct, key.Line, key.Col, "unknown field_list_calculation attribute %q", key.Text)
		}
	}
	if err := p.next(); err != nil {
		return err
	}
	p.f.Calcs = append(p.f.Calcs, c)
	return nil
}

func (p *Parser) parseAction() error {
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	a := &ActionDecl{Name: name.Text, Line: line, Col: col}
	for !p.isPunct(")") {
		param, err := p.expectIdent()
		if err != nil {
			return err
		}
		a.Params = append(a.Params, param.Text)
		if _, err := p.acceptPunct(","); err != nil {
			return err
		}
	}
	if err := p.next(); err != nil { // consume )
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		prim, err := p.expectIdent()
		if err != nil {
			return err
		}
		call := PrimCall{Name: prim.Text, Line: prim.Line, Col: prim.Col}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for !p.isPunct(")") {
			arg, err := p.parseArg()
			if err != nil {
				return err
			}
			call.Args = append(call.Args, arg)
			if _, err := p.acceptPunct(","); err != nil {
				return err
			}
		}
		if err := p.next(); err != nil { // consume )
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		a.Body = append(a.Body, call)
	}
	if err := p.next(); err != nil {
		return err
	}
	p.f.Actions = append(p.f.Actions, a)
	return nil
}

var matchTypes = map[string]bool{"exact": true, "ternary": true, "lpm": true, "range": true}

func (p *Parser) parseTable(malleable bool) error {
	line, col := p.cur.Line, p.cur.Col
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	t := &TableDecl{Name: name.Text, Malleable: malleable, Line: line, Col: col}
	for !p.isPunct("}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key.Text {
		case "reads":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.isPunct("}") {
				target, err := p.parseArg()
				if err != nil {
					return err
				}
				if target.Kind == ArgConst {
					return diag.Errorf(diag.SyntaxError, target.Line, target.Col, "table %s: read key cannot be a constant", t.Name)
				}
				rk := ReadKey{Target: target, Line: target.Line, Col: target.Col}
				if p.cur.Kind == TokIdent && p.cur.Text == "mask" {
					if err := p.next(); err != nil {
						return err
					}
					m, err := p.expectNumber()
					if err != nil {
						return err
					}
					rk.Mask, rk.HasMask = m, true
				}
				if err := p.expectPunct(":"); err != nil {
					return err
				}
				mt, err := p.expectIdent()
				if err != nil {
					return err
				}
				if !matchTypes[mt.Text] {
					return diag.Errorf(diag.UnknownConstruct, mt.Line, mt.Col, "table %s: unknown match type %q", t.Name, mt.Text)
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				rk.MatchType = mt.Text
				t.Reads = append(t.Reads, rk)
			}
			if err := p.next(); err != nil {
				return err
			}
		case "actions":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.isPunct("}") {
				an, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				t.Actions = append(t.Actions, an.Text)
			}
			if err := p.next(); err != nil {
				return err
			}
		case "default_action":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			an, err := p.expectIdent()
			if err != nil {
				return err
			}
			d := &DefaultCall{Action: an.Text}
			if ok, err := p.acceptPunct("("); err != nil {
				return err
			} else if ok {
				for !p.isPunct(")") {
					v, err := p.expectNumber()
					if err != nil {
						return err
					}
					d.Args = append(d.Args, v)
					if _, err := p.acceptPunct(","); err != nil {
						return err
					}
				}
				if err := p.next(); err != nil {
					return err
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			t.Default = d
		case "size":
			v, err := p.keyNumber()
			if err != nil {
				return err
			}
			t.Size = int(v)
		default:
			return diag.Errorf(diag.UnknownConstruct, key.Line, key.Col, "unknown table attribute %q", key.Text)
		}
	}
	if err := p.next(); err != nil {
		return err
	}
	p.f.Tables = append(p.f.Tables, t)
	return nil
}

func (p *Parser) parseMalleable() error {
	if err := p.next(); err != nil {
		return err
	}
	kind, err := p.expectIdent()
	if err != nil {
		return err
	}
	switch kind.Text {
	case "value":
		return p.parseMblValue()
	case "field":
		return p.parseMblField()
	case "table":
		return p.parseTable(true)
	default:
		return diag.Errorf(diag.BadMalleable, kind.Line, kind.Col, "malleable %q: expected value, field, or table", kind.Text)
	}
}

func (p *Parser) parseMblValue() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	line, col := name.Line, name.Col
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	m := &MblValue{Name: name.Text, Line: line, Col: col}
	for !p.isPunct("}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		v, err := p.keyNumber()
		if err != nil {
			return err
		}
		switch key.Text {
		case "width":
			m.Width = int(v)
		case "init":
			m.Init = v
		default:
			return diag.Errorf(diag.UnknownConstruct, key.Line, key.Col, "unknown malleable value attribute %q", key.Text)
		}
	}
	if err := p.next(); err != nil {
		return err
	}
	if m.Width == 0 {
		return diag.Errorf(diag.MissingAttr, line, col, "malleable value %s missing width", m.Name)
	}
	p.f.MblValues = append(p.f.MblValues, m)
	return nil
}

func (p *Parser) parseMblField() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	line, col := name.Line, name.Col
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	m := &MblField{Name: name.Text, Line: line, Col: col}
	for !p.isPunct("}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key.Text {
		case "width":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			v, err := p.expectNumber()
			if err != nil {
				return err
			}
			m.Width = int(v)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case "init":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			f, err := p.expectIdent()
			if err != nil {
				return err
			}
			m.Init = f.Text
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case "alts":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.isPunct("}") {
				f, err := p.expectIdent()
				if err != nil {
					return err
				}
				m.Alts = append(m.Alts, f.Text)
				if _, err := p.acceptPunct(","); err != nil {
					return err
				}
			}
			if err := p.next(); err != nil {
				return err
			}
			// optional trailing ;
			if _, err := p.acceptPunct(";"); err != nil {
				return err
			}
		default:
			return diag.Errorf(diag.UnknownConstruct, key.Line, key.Col, "unknown malleable field attribute %q", key.Text)
		}
	}
	if err := p.next(); err != nil {
		return err
	}
	if m.Width == 0 {
		return diag.Errorf(diag.MissingAttr, line, col, "malleable field %s missing width", m.Name)
	}
	if len(m.Alts) == 0 {
		return diag.Errorf(diag.MissingAttr, line, col, "malleable field %s has no alts", m.Name)
	}
	if m.Init == "" {
		m.Init = m.Alts[0]
	}
	if m.InitAltIndex() < 0 {
		return diag.Errorf(diag.BadMalleable, line, col, "malleable field %s: init %q not in alts", m.Name, m.Init)
	}
	p.f.MblFields = append(p.f.MblFields, m)
	return nil
}

func (p *Parser) parseReaction() error {
	line, col := p.cur.Line, p.cur.Col
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	r := &Reaction{Name: name.Text, Line: line, Col: col}
	for !p.isPunct(")") {
		param, err := p.parseReactionParam()
		if err != nil {
			return err
		}
		r.Params = append(r.Params, param)
		if _, err := p.acceptPunct(","); err != nil {
			return err
		}
	}
	if err := p.next(); err != nil { // consume )
		return err
	}
	if !p.isPunct("{") {
		return p.errf("expected reaction body, got %s", p.cur)
	}
	// The lexer sits just past the '{' of the body: capture raw C-like
	// source up to the matching brace and hand it to the reaction
	// language (internal/rcl) later.
	body, err := p.lx.captureBraceBlock()
	if err != nil {
		return err
	}
	r.Body = body
	if err := p.next(); err != nil {
		return err
	}
	p.f.Reactions = append(p.f.Reactions, r)
	return nil
}

func (p *Parser) parseReactionParam() (ReactionParam, error) {
	kindTok, err := p.expectIdent()
	if err != nil {
		return ReactionParam{}, err
	}
	rp := ReactionParam{Line: kindTok.Line, Col: kindTok.Col}
	switch kindTok.Text {
	case "ing":
		rp.Kind = ParamIng
	case "egr":
		rp.Kind = ParamEgr
	case "reg":
		rp.Kind = ParamReg
	default:
		return ReactionParam{}, diag.Errorf(diag.BadReactionParam, kindTok.Line, kindTok.Col, "reaction parameter must start with ing, egr, or reg (got %q)", kindTok.Text)
	}
	if rp.Kind == ParamReg {
		name, err := p.expectIdent()
		if err != nil {
			return ReactionParam{}, err
		}
		rp.Target = name.Text
		if ok, err := p.acceptPunct("["); err != nil {
			return ReactionParam{}, err
		} else if ok {
			lo, err := p.expectNumber()
			if err != nil {
				return ReactionParam{}, err
			}
			if err := p.expectPunct(":"); err != nil {
				return ReactionParam{}, err
			}
			hi, err := p.expectNumber()
			if err != nil {
				return ReactionParam{}, err
			}
			if err := p.expectPunct("]"); err != nil {
				return ReactionParam{}, err
			}
			rp.Lo, rp.Hi = int(lo), int(hi)
			if rp.Hi < rp.Lo {
				return ReactionParam{}, diag.Errorf(diag.BadReactionParam, rp.Line, rp.Col, "register slice [%d:%d] inverted", rp.Lo, rp.Hi)
			}
		} else {
			rp.Lo, rp.Hi = 0, -1 // full array, resolved at compile time
		}
		return rp, nil
	}
	arg, err := p.parseArg()
	if err != nil {
		return ReactionParam{}, err
	}
	switch arg.Kind {
	case ArgIdent:
		rp.Target = arg.Ident
	case ArgMblRef:
		rp.Target = arg.Mbl
		rp.IsMbl = true
	default:
		return ReactionParam{}, diag.Errorf(diag.BadReactionParam, arg.Line, arg.Col, "reaction parameter cannot be a constant")
	}
	return rp, nil
}

func (p *Parser) parseControl() error {
	if err := p.next(); err != nil {
		return err
	}
	which, err := p.expectIdent()
	if err != nil {
		return err
	}
	if which.Text != "ingress" && which.Text != "egress" {
		return p.errf("control must be ingress or egress, got %q", which.Text)
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	stmts, err := p.parseStmts()
	if err != nil {
		return err
	}
	if which.Text == "ingress" {
		p.f.Ingress = append(p.f.Ingress, stmts...)
	} else {
		p.f.Egress = append(p.f.Egress, stmts...)
	}
	return nil
}

// parseStmts parses statements until the closing '}' (consumed).
func (p *Parser) parseStmts() ([]Stmt, error) {
	var out []Stmt
	for !p.isPunct("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, p.next()
}

func (p *Parser) parseStmt() (Stmt, error) {
	kw, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch kw.Text {
	case "apply":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return ApplyStmt{Table: name.Text, Line: name.Line, Col: name.Col}, nil
	case "if":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		left, err := p.parseArg()
		if err != nil {
			return nil, err
		}
		if p.cur.Kind != TokPunct {
			return nil, p.errf("expected comparison operator, got %s", p.cur)
		}
		op := p.cur.Text
		switch op {
		case "==", "!=", "<", "<=", ">", ">=":
		default:
			return nil, p.errf("unknown comparison operator %q", op)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseArg()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		then, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		st := IfStmt{Cond: CondExpr{Left: left, Op: op, Right: right}, Then: then}
		if p.cur.Kind == TokIdent && p.cur.Text == "else" {
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("{"); err != nil {
				return nil, err
			}
			els, err := p.parseStmts()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	default:
		return nil, p.errf("unknown statement %q", kw.Text)
	}
}
