// Package diag defines the structured diagnostic type shared by the P4R
// frontend (lexer, parser), the semantic analyzer
// (internal/p4r/analysis), and the Mantis compiler (internal/compiler).
//
// A Diagnostic carries a stable machine-readable code, a severity, a
// source position, a human message, and an optional hint. A List
// collects many diagnostics (the analyzer reports everything it finds
// instead of dying on the first problem) and implements error, so
// existing `(*File, error)` / `(*Plan, error)` signatures keep working
// unchanged while callers that care can errors.As their way back to the
// structured form.
//
// Code families:
//
//	S0xx — syntax errors from the lexer/parser (always fail-first)
//	M0xx — semantic analysis findings (collect-all, pre-lowering)
//	L0xx — lowering errors from the compiler backend
//	P0xx — placement/fit findings from the RMT resource-allocation
//	       pass (internal/compiler/place, collect-all, post-lowering)
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Error blocks compilation; Warning does not unless the
// caller promotes warnings (mantisc -Werror).
const (
	Error Severity = iota
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Syntax codes (lexer + parser).
const (
	SyntaxError      = "S001" // unexpected token / malformed construct
	UnknownConstruct = "S002" // unknown declaration, attribute, or keyword
	MissingAttr      = "S003" // required attribute absent (width, alts, ...)
	BadMalleable     = "S004" // malformed malleable declaration
	BadReactionParam = "S005" // malformed reaction parameter
	BadLiteral       = "S006" // unterminated/invalid token at the lexical level
)

// Semantic codes (internal/p4r/analysis passes).
const (
	UndeclaredMbl   = "M001" // ${x} reference to an undeclared malleable
	UnusedMbl       = "M002" // malleable declared but never referenced (warning)
	WriteNonMbl     = "M003" // reaction assigns to a polled parameter
	ReadBeforePoll  = "M004" // reaction reads a register it does not poll
	WidthMismatch   = "M005" // width/type mismatch in a reaction expression
	InitCapacity    = "M006" // malleable exceeds init-action capacity
	RegSliceRange   = "M007" // register slice out of range or inverted
	DefaultArity    = "M008" // default_action argument count mismatch
	DuplicateAction = "M009" // action listed twice in a table
	IsolationHazard = "M010" // unpolled read of a data-plane-written register
	UnreachableDecl = "M011" // declared action/register reachable from no table or reaction (warning)
	TableExpansion  = "M012" // generated entries exceed platform table capacity
	DuplicateDecl   = "M013" // duplicate top-level declaration
	UnknownSymbol   = "M014" // reference to an undeclared field, action, or table
)

// Lowering codes (internal/compiler backend). These group the backend's
// fail-first errors; positions are attached where the AST carries them.
const (
	LowerUnknown  = "L001" // unknown field/action/table/register during lowering
	LowerInvalid  = "L002" // construct cannot be lowered as written
	LowerCapacity = "L003" // width or capacity limit exceeded
	LowerInternal = "L004" // generated program failed validation
)

// Placement codes (internal/compiler/place). The placement pass runs
// after lowering and charges the generated program against a switch
// profile's per-stage budgets; like the semantic analyzer it collects
// every violation instead of dying on the first.
const (
	PlaceStages    = "P001" // dependency chain needs more stages than the profile has
	PlaceSRAM      = "P002" // no stage has enough SRAM left for a table
	PlaceTCAM      = "P003" // no stage has enough TCAM left for a table
	PlaceRegFile   = "P004" // per-stage register-file budget exceeded
	PlaceOversized = "P005" // one table exceeds an empty stage's budget outright
	PlaceSlots     = "P006" // no stage has a free logical table slot
	PlaceProfile   = "P007" // unknown -target profile or malformed profile file
)

// Diagnostic is one analyzer or compiler finding. Line and Col are
// 1-based; zero means unknown.
type Diagnostic struct {
	Code     string
	Severity Severity
	Line     int
	Col      int
	Msg      string
	Hint     string
}

// Error renders the diagnostic in the canonical single-line form used by
// golden tests and the CLIs: "line L:C: severity[CODE]: msg (hint)".
func (d *Diagnostic) Error() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "line %d:", d.Line)
		if d.Col > 0 {
			fmt.Fprintf(&b, "%d:", d.Col)
		}
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "%s[%s]: %s", d.Severity, d.Code, d.Msg)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (%s)", d.Hint)
	}
	return b.String()
}

// WithHint returns a copy of d carrying the given hint.
func (d *Diagnostic) WithHint(format string, args ...any) *Diagnostic {
	c := *d
	c.Hint = fmt.Sprintf(format, args...)
	return &c
}

// Errorf builds an Error-severity diagnostic at line:col.
func Errorf(code string, line, col int, format string, args ...any) *Diagnostic {
	return &Diagnostic{Code: code, Severity: Error, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Warnf builds a Warning-severity diagnostic at line:col.
func Warnf(code string, line, col int, format string, args ...any) *Diagnostic {
	return &Diagnostic{Code: code, Severity: Warning, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// List is an ordered collection of diagnostics. The zero value is ready
// to use. A *List implements error (rendering every entry, one per
// line), so it can flow through existing error returns.
type List struct {
	Diags []*Diagnostic
}

// Add appends diagnostics to the list, dropping nils.
func (l *List) Add(ds ...*Diagnostic) {
	for _, d := range ds {
		if d != nil {
			l.Diags = append(l.Diags, d)
		}
	}
}

// Merge appends every diagnostic of other (which may be nil).
func (l *List) Merge(other *List) {
	if other != nil {
		l.Add(other.Diags...)
	}
}

// Len returns the number of collected diagnostics.
func (l *List) Len() int { return len(l.Diags) }

// HasErrors reports whether any diagnostic has Error severity.
func (l *List) HasErrors() bool {
	for _, d := range l.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Warnings returns the Warning-severity subset, in order.
func (l *List) Warnings() []*Diagnostic {
	var out []*Diagnostic
	for _, d := range l.Diags {
		if d.Severity == Warning {
			out = append(out, d)
		}
	}
	return out
}

// Promote upgrades every warning to an error (mantisc -Werror).
func (l *List) Promote() {
	for _, d := range l.Diags {
		if d.Severity == Warning {
			d.Severity = Error
		}
	}
}

// Sort orders diagnostics by position, then code, preserving the
// relative order of diagnostics at the same position and code.
func (l *List) Sort() {
	sort.SliceStable(l.Diags, func(i, j int) bool {
		a, b := l.Diags[i], l.Diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
}

// Error renders every diagnostic, one per line.
func (l *List) Error() string {
	lines := make([]string, len(l.Diags))
	for i, d := range l.Diags {
		lines[i] = d.Error()
	}
	return strings.Join(lines, "\n")
}

// Err returns l as an error if it is non-empty, else nil. Callers that
// only fail on hard errors should test HasErrors first.
func (l *List) Err() error {
	if l == nil || len(l.Diags) == 0 {
		return nil
	}
	return l
}
