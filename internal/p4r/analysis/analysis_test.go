package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/p4r"
	"repro/internal/p4r/analysis"
	"repro/internal/p4r/diag"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// corpusLimits shrinks platform limits for the capacity-oriented corpus
// files so the overflow cases stay small and readable.
var corpusLimits = map[string]analysis.Limits{
	"init_capacity.p4r":   {MaxInitActionBits: 16, MeasSlotBits: 8},
	"table_expansion.p4r": {MaxTableEntries: 100},
}

// placementTargets routes the placement-failure corpus files through
// the full compile pipeline against a named switch profile, so the
// goldens pin the positioned P diagnostics rather than analyzer output.
var placementTargets = map[string]string{
	"place_stage_chain.p4r":     "mini",
	"place_tcam_budget.p4r":     "mini",
	"place_regfile.p4r":         "mini",
	"place_table_expansion.p4r": "mini",
}

// run parses and analyzes one corpus file, rendering the diagnostics in
// the canonical one-per-line form. A parse failure renders the parser's
// single fail-first diagnostic. Files listed in placementTargets run the
// full compile (lowering + placement) instead of the analyzer alone.
func run(t *testing.T, path string) string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if target, ok := placementTargets[filepath.Base(path)]; ok {
		return runPlacement(t, string(src), target)
	}
	f, err := p4r.Parse(string(src))
	if err != nil {
		return err.Error() + "\n"
	}
	list := analysis.Analyze(f, corpusLimits[filepath.Base(path)])
	var b strings.Builder
	for _, d := range list.Diags {
		b.WriteString(d.Error())
		b.WriteByte('\n')
	}
	return b.String()
}

// runPlacement compiles a corpus program against a switch profile and
// renders the merged diagnostic list (analysis + placement).
func runPlacement(t *testing.T, src, target string) string {
	t.Helper()
	opts := compiler.DefaultOptions()
	opts.Target = target
	plan, err := compiler.CompileSource(src, opts)
	list := &diag.List{}
	if plan != nil && plan.Diags != nil {
		list = plan.Diags
	} else if err != nil {
		if !asList(err, &list) {
			t.Fatalf("placement corpus: non-diagnostic error: %v", err)
		}
	}
	var b strings.Builder
	for _, d := range list.Diags {
		b.WriteString(d.Error())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGolden checks every corpus program against its golden diagnostic
// output. Run with -update to regenerate goldens after intentional
// analyzer changes.
func TestGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/*.p4r")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			got := run(t, path)
			golden := strings.TrimSuffix(path, ".p4r") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCorpusCoverage asserts the corpus exercises the diagnostic space:
// at least 8 distinct codes, each appearing in some golden file, and
// every golden line carries a source position.
func TestCorpusCoverage(t *testing.T) {
	goldens, err := filepath.Glob("testdata/*.golden")
	if err != nil || len(goldens) == 0 {
		t.Fatalf("no golden files: %v", err)
	}
	codes := map[string]bool{}
	for _, path := range goldens {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, "line ") {
				t.Errorf("%s: diagnostic without position: %q", path, line)
			}
			start := strings.IndexByte(line, '[')
			end := strings.IndexByte(line, ']')
			if start < 0 || end < start {
				t.Errorf("%s: diagnostic without code: %q", path, line)
				continue
			}
			codes[line[start+1:end]] = true
		}
	}
	if len(codes) < 8 {
		t.Errorf("corpus exercises %d distinct diagnostic codes, want >= 8: %v", len(codes), keys(codes))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestExamplesClean compiles every .p4r under examples/ with the full
// pipeline (analyzer included) and requires zero diagnostics — errors or
// warnings — so the shipped examples stay lint-clean.
func TestExamplesClean(t *testing.T) {
	root := filepath.Join("..", "..", "..", "examples")
	var found int
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".p4r" {
			return err
		}
		found++
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		opts := compiler.DefaultOptions()
		opts.Werror = true
		plan, err := compiler.CompileSource(string(src), opts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if plan.Diags != nil && plan.Diags.Len() > 0 {
			return fmt.Errorf("%s: unexpected diagnostics:\n%s", path, plan.Diags.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("no .p4r examples found")
	}
}

// TestWerrorPromotes pins the -Werror contract: a warning-only program
// compiles by default and fails under Werror.
func TestWerrorPromotes(t *testing.T) {
	src := `
header_type h_t { fields { f1 : 16; } }
header h_t hdr;
malleable value unused { width : 8; init : 0; }
action fwd() { modify_field(hdr.f1, 1); }
table t { reads { hdr.f1 : exact; } actions { fwd; } size : 4; }
control ingress { apply(t); }
`
	plan, err := compiler.CompileSource(src, compiler.Options{})
	if err != nil {
		t.Fatalf("default compile should succeed: %v", err)
	}
	if got := len(plan.Diags.Warnings()); got != 1 {
		t.Fatalf("want 1 warning, got %d: %v", got, plan.Diags.Err())
	}
	_, err = compiler.CompileSource(src, compiler.Options{Werror: true})
	if err == nil {
		t.Fatal("Werror compile should fail")
	}
	var list *diag.List
	if !asList(err, &list) || !list.HasErrors() {
		t.Fatalf("want promoted diagnostic list, got %T: %v", err, err)
	}
	if list.Diags[0].Code != diag.UnusedMbl {
		t.Fatalf("want %s, got %s", diag.UnusedMbl, list.Diags[0].Code)
	}
}

func asList(err error, out **diag.List) bool {
	l, ok := err.(*diag.List)
	if ok {
		*out = l
	}
	return ok
}
