// Package analysis implements the semantic analyzer of the P4R
// frontend. It runs over the parsed AST before lowering and reports
// everything it finds as structured diagnostics (internal/p4r/diag)
// instead of dying on the first problem, the way the backend's
// fail-first lowering does.
//
// The passes encode the preconditions of the Mantis program
// transformations (§4–§5 of the paper): malleable declaration/use
// consistency, reaction read/write discipline against polled snapshots,
// init-action and measurement-slot capacity, version-bit entry
// expansion, and the static portion of the serializable-isolation
// invariant (a reaction may only read registers the compiler protects
// with the mv bit, i.e. registers it polls).
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/p4"
	"repro/internal/p4r"
	"repro/internal/p4r/diag"
	"repro/internal/rcl"
)

// Limits are the platform capacities the analyzer checks against. They
// mirror the knobs of compiler.Options so mantisc -check sees the same
// limits the backend would enforce.
type Limits struct {
	// MaxInitActionBits bounds the total parameter width of one init
	// action (§5.1.1); a single malleable wider than this can never be
	// packed.
	MaxInitActionBits int
	// MeasSlotBits is the width of one packed measurement register slot
	// (§5.2); a field parameter wider than this cannot be measured.
	MeasSlotBits int
	// MaxTableEntries bounds the generated (post-expansion) entry count
	// of a single table: declared size × alt expansion × 2 version
	// copies (§5.1.2).
	MaxTableEntries int
}

// DefaultLimits mirrors compiler.DefaultOptions.
func DefaultLimits() Limits {
	return Limits{MaxInitActionBits: 512, MeasSlotBits: 64, MaxTableEntries: 1 << 20}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxInitActionBits == 0 {
		l.MaxInitActionBits = d.MaxInitActionBits
	}
	if l.MeasSlotBits == 0 {
		l.MeasSlotBits = d.MeasSlotBits
	}
	if l.MaxTableEntries == 0 {
		l.MaxTableEntries = d.MaxTableEntries
	}
	return l
}

// checker carries the symbol tables shared by the passes.
type checker struct {
	f   *p4r.File
	lim Limits
	out *diag.List

	fields    map[string]int // instance.field (and standard metadata) -> width
	registers map[string]*p4r.RegisterDecl
	mblValues map[string]*p4r.MblValue
	mblFields map[string]*p4r.MblField
	actions   map[string]*p4r.ActionDecl
	tables    map[string]*p4r.TableDecl

	mblUsed    map[string]bool // malleable name -> referenced anywhere
	regWritten map[string]bool // register name -> written by a data-plane action
}

// Analyze runs every semantic pass over f and returns the collected
// diagnostics, sorted by source position. The returned list may mix
// errors and warnings; callers decide whether warnings block (Werror).
func Analyze(f *p4r.File, lim Limits) *diag.List {
	c := &checker{
		f:          f,
		lim:        lim.withDefaults(),
		out:        &diag.List{},
		fields:     make(map[string]int),
		registers:  make(map[string]*p4r.RegisterDecl),
		mblValues:  make(map[string]*p4r.MblValue),
		mblFields:  make(map[string]*p4r.MblField),
		actions:    make(map[string]*p4r.ActionDecl),
		tables:     make(map[string]*p4r.TableDecl),
		mblUsed:    make(map[string]bool),
		regWritten: make(map[string]bool),
	}
	c.buildSymbols()
	c.checkMblFieldAlts()
	c.checkActions()
	c.checkFieldLists()
	c.checkTables()
	c.checkReactions()
	c.checkInitCapacity()
	c.checkUnused()
	c.out.Sort()
	return c.out
}

func (c *checker) errorf(code string, line, col int, format string, args ...any) *diag.Diagnostic {
	d := diag.Errorf(code, line, col, format, args...)
	c.out.Add(d)
	return d
}

func (c *checker) warnf(code string, line, col int, format string, args ...any) *diag.Diagnostic {
	d := diag.Warnf(code, line, col, format, args...)
	c.out.Add(d)
	return d
}

// mblDeclared reports whether name is a declared malleable (value or
// field), marking it used.
func (c *checker) mblDeclared(name string) bool {
	_, isVal := c.mblValues[name]
	_, isField := c.mblFields[name]
	if isVal || isField {
		c.mblUsed[name] = true
		return true
	}
	return false
}

// mblWidth returns the declared width of a malleable, or 0.
func (c *checker) mblWidth(name string) int {
	if mv, ok := c.mblValues[name]; ok {
		return mv.Width
	}
	if mf, ok := c.mblFields[name]; ok {
		return mf.Width
	}
	return 0
}

// ---- Symbol construction + duplicate detection (M013) ----

func (c *checker) buildSymbols() {
	// Standard metadata is always in scope (p4.DefineStandardMetadata).
	for name, w := range map[string]int{
		p4.FieldIngressPort: 16, p4.FieldEgressSpec: 16, p4.FieldPacketLen: 32,
		p4.FieldTimestamp: 48, p4.FieldEnqQdepth: 24, p4.FieldEgressPort: 16,
		p4.FieldPriority: 8,
	} {
		c.fields[name] = w
	}

	headerTypes := make(map[string]*p4r.HeaderType)
	for _, ht := range c.f.HeaderTypes {
		if prev, dup := headerTypes[ht.Name]; dup {
			c.errorf(diag.DuplicateDecl, ht.Line, ht.Col, "duplicate header_type %s (first declared on line %d)", ht.Name, prev.Line)
			continue
		}
		headerTypes[ht.Name] = ht
	}
	instances := make(map[string]*p4r.Instance)
	for _, inst := range c.f.Instances {
		if prev, dup := instances[inst.Name]; dup {
			c.errorf(diag.DuplicateDecl, inst.Line, inst.Col, "duplicate instance %s (first declared on line %d)", inst.Name, prev.Line)
			continue
		}
		instances[inst.Name] = inst
		ht, ok := headerTypes[inst.TypeName]
		if !ok {
			c.errorf(diag.UnknownSymbol, inst.Line, inst.Col, "instance %s of unknown header_type %s", inst.Name, inst.TypeName)
			continue
		}
		for _, fd := range ht.Fields {
			c.fields[inst.Name+"."+fd.Name] = fd.Width
		}
	}
	for _, r := range c.f.Registers {
		if prev, dup := c.registers[r.Name]; dup {
			c.errorf(diag.DuplicateDecl, r.Line, r.Col, "duplicate register %s (first declared on line %d)", r.Name, prev.Line)
			continue
		}
		c.registers[r.Name] = r
	}
	for _, mv := range c.f.MblValues {
		if c.declaredMblDup(mv.Name, mv.Line, mv.Col) {
			continue
		}
		c.mblValues[mv.Name] = mv
	}
	for _, mf := range c.f.MblFields {
		if c.declaredMblDup(mf.Name, mf.Line, mf.Col) {
			continue
		}
		c.mblFields[mf.Name] = mf
	}
	for _, a := range c.f.Actions {
		if prev, dup := c.actions[a.Name]; dup {
			c.errorf(diag.DuplicateDecl, a.Line, a.Col, "duplicate action %s (first declared on line %d)", a.Name, prev.Line)
			continue
		}
		c.actions[a.Name] = a
	}
	for _, t := range c.f.Tables {
		if prev, dup := c.tables[t.Name]; dup {
			c.errorf(diag.DuplicateDecl, t.Line, t.Col, "duplicate table %s (first declared on line %d)", t.Name, prev.Line)
			continue
		}
		c.tables[t.Name] = t
	}
	seenRxn := make(map[string]*p4r.Reaction)
	for _, r := range c.f.Reactions {
		if prev, dup := seenRxn[r.Name]; dup {
			c.errorf(diag.DuplicateDecl, r.Line, r.Col, "duplicate reaction %s (first declared on line %d)", r.Name, prev.Line)
			continue
		}
		seenRxn[r.Name] = r
	}

	// Record which registers the data plane writes (register_write,
	// register_increment, count, count_bytes): these are the registers
	// whose unpolled reads are isolation hazards (M010).
	for _, a := range c.f.Actions {
		for _, call := range a.Body {
			switch call.Name {
			case "register_write", "register_increment", "count", "count_bytes":
				if len(call.Args) > 0 && call.Args[0].Kind == p4r.ArgIdent {
					c.regWritten[call.Args[0].Ident] = true
				}
			}
		}
	}
}

func (c *checker) declaredMblDup(name string, line, col int) bool {
	if prev, ok := c.mblValues[name]; ok {
		c.errorf(diag.DuplicateDecl, line, col, "duplicate malleable %s (first declared on line %d)", name, prev.Line)
		return true
	}
	if prev, ok := c.mblFields[name]; ok {
		c.errorf(diag.DuplicateDecl, line, col, "duplicate malleable %s (first declared on line %d)", name, prev.Line)
		return true
	}
	return false
}

// ---- Malleable field alternatives (M005/M014) ----

func (c *checker) checkMblFieldAlts() {
	for _, mf := range c.f.MblFields {
		for _, alt := range mf.Alts {
			w, ok := c.fields[alt]
			if !ok {
				c.errorf(diag.UnknownSymbol, mf.Line, mf.Col, "malleable field %s: unknown alt %q", mf.Name, alt)
				continue
			}
			if w != mf.Width {
				c.errorf(diag.WidthMismatch, mf.Line, mf.Col,
					"malleable field %s (width %d): alt %q has width %d", mf.Name, mf.Width, alt, w)
			}
		}
	}
}

// ---- Actions: malleable references + symbol resolution (M001) ----

func (c *checker) checkActions() {
	for _, a := range c.f.Actions {
		params := make(map[string]bool, len(a.Params))
		for _, pn := range a.Params {
			params[pn] = true
		}
		for _, call := range a.Body {
			for i, arg := range call.Args {
				switch arg.Kind {
				case p4r.ArgMblRef:
					if !c.mblDeclared(arg.Mbl) {
						c.errorf(diag.UndeclaredMbl, arg.Line, arg.Col,
							"action %s: reference to undeclared malleable ${%s}", a.Name, arg.Mbl).Hint =
							"declare it with `malleable value` or `malleable field`"
					}
				case p4r.ArgIdent:
					// Identifiers resolve as action parameters, fields,
					// registers (for register_* primitives), or hash
					// calculation names. Leave primitive-specific arity and
					// operand-kind checking to the backend; here only flag
					// names that resolve to nothing at all.
					if params[arg.Ident] {
						continue
					}
					if _, ok := c.fields[arg.Ident]; ok {
						continue
					}
					if _, ok := c.registers[arg.Ident]; ok {
						continue
					}
					if c.isCalcName(arg.Ident) {
						continue
					}
					c.errorf(diag.UnknownSymbol, arg.Line, arg.Col,
						"action %s: %s argument %d: unknown field or parameter %q", a.Name, call.Name, i+1, arg.Ident)
				}
			}
		}
	}
}

func (c *checker) isCalcName(name string) bool {
	for _, calc := range c.f.Calcs {
		if calc.Name == name {
			return true
		}
	}
	return false
}

// ---- Field lists and hash calculations (M001/M014) ----

func (c *checker) checkFieldLists() {
	lists := make(map[string]*p4r.FieldList)
	for _, fl := range c.f.FieldLists {
		if prev, dup := lists[fl.Name]; dup {
			c.errorf(diag.DuplicateDecl, fl.Line, fl.Col, "duplicate field_list %s (first declared on line %d)", fl.Name, prev.Line)
			continue
		}
		lists[fl.Name] = fl
		for _, e := range fl.Entries {
			switch e.Kind {
			case p4r.ArgIdent:
				if _, ok := c.fields[e.Ident]; !ok {
					c.errorf(diag.UnknownSymbol, e.Line, e.Col, "field_list %s: unknown field %q", fl.Name, e.Ident)
				}
			case p4r.ArgMblRef:
				if !c.mblDeclared(e.Mbl) {
					c.errorf(diag.UndeclaredMbl, e.Line, e.Col, "field_list %s: reference to undeclared malleable ${%s}", fl.Name, e.Mbl)
				}
			}
		}
	}
	for _, calc := range c.f.Calcs {
		if _, ok := lists[calc.Input]; !ok {
			c.errorf(diag.UnknownSymbol, calc.Line, calc.Col, "field_list_calculation %s: unknown field_list %q", calc.Name, calc.Input)
		}
		switch calc.Algorithm {
		case "crc16", "crc32", "identity", "":
		default:
			c.errorf(diag.UnknownSymbol, calc.Line, calc.Col, "field_list_calculation %s: unknown algorithm %q", calc.Name, calc.Algorithm)
		}
	}
}

// ---- Tables (M001, M008, M009, M012, M014) ----

// actionMblFields returns the distinct malleable fields an action's body
// references (the fields the compiler specializes over, Figs. 5–6).
func (c *checker) actionMblFields(a *p4r.ActionDecl) []string {
	var out []string
	seen := map[string]bool{}
	for _, call := range a.Body {
		for _, arg := range call.Args {
			if arg.Kind != p4r.ArgMblRef {
				continue
			}
			if _, isField := c.mblFields[arg.Mbl]; isField && !seen[arg.Mbl] {
				seen[arg.Mbl] = true
				out = append(out, arg.Mbl)
			}
		}
	}
	return out
}

func (c *checker) checkTables() {
	for _, t := range c.f.Tables {
		expansion := 1
		expanded := map[string]bool{}
		noteMbl := func(name string) {
			if mf, ok := c.mblFields[name]; ok && !expanded[name] {
				expanded[name] = true
				expansion *= len(mf.Alts)
			}
		}

		for _, rk := range t.Reads {
			switch rk.Target.Kind {
			case p4r.ArgIdent:
				if _, ok := c.fields[rk.Target.Ident]; !ok {
					c.errorf(diag.UnknownSymbol, rk.Line, rk.Col, "table %s: unknown match field %q", t.Name, rk.Target.Ident)
				}
			case p4r.ArgMblRef:
				if !c.mblDeclared(rk.Target.Mbl) {
					c.errorf(diag.UndeclaredMbl, rk.Line, rk.Col, "table %s: reference to undeclared malleable ${%s}", t.Name, rk.Target.Mbl)
					continue
				}
				if mf, isField := c.mblFields[rk.Target.Mbl]; isField {
					if rk.MatchType == "range" {
						c.errorf(diag.LowerInvalid, rk.Line, rk.Col, "table %s: range match on malleable field ${%s} is not supported", t.Name, mf.Name)
					}
					noteMbl(mf.Name)
				}
			}
		}

		seenAction := map[string]int{}
		for _, an := range t.Actions {
			if line, dup := seenAction[an]; dup {
				c.errorf(diag.DuplicateAction, t.Line, t.Col,
					"table %s: action %s listed more than once", t.Name, an).Hint =
					fmt.Sprintf("first listed for this table on line %d", line)
				continue
			}
			seenAction[an] = t.Line
			a, ok := c.actions[an]
			if !ok {
				c.errorf(diag.UnknownSymbol, t.Line, t.Col, "table %s: unknown action %q", t.Name, an)
				continue
			}
			for _, fn := range c.actionMblFields(a) {
				noteMbl(fn)
			}
		}

		if t.Default != nil {
			a, ok := c.actions[t.Default.Action]
			switch {
			case !ok:
				c.errorf(diag.UnknownSymbol, t.Line, t.Col, "table %s: unknown default action %q", t.Name, t.Default.Action)
			case len(c.actionMblFields(a)) > 0:
				c.errorf(diag.LowerInvalid, t.Line, t.Col,
					"table %s: default action %q uses malleable fields, which is not supported", t.Name, t.Default.Action).Hint =
					"install a low-priority entry instead"
			case len(t.Default.Args) != len(a.Params):
				c.errorf(diag.DefaultArity, t.Line, t.Col,
					"table %s: default_action %s takes %d arguments, got %d", t.Name, a.Name, len(a.Params), len(t.Default.Args))
			}
		}

		// §5.1.2: every user entry of a malleable table is installed once
		// per alt combination and doubled for the two config versions. The
		// generated capacity must fit the platform table limit.
		if t.Size > 0 {
			gen := t.Size * expansion
			if t.Malleable {
				gen *= 2
			}
			if gen > c.lim.MaxTableEntries {
				c.errorf(diag.TableExpansion, t.Line, t.Col,
					"table %s: %d declared entries expand to %d generated entries (× %d alt combinations%s), exceeding the platform table capacity %d",
					t.Name, t.Size, gen, expansion, versionNote(t.Malleable), c.lim.MaxTableEntries).Hint =
					"shrink the table, reduce alts, or split the malleable field"
			}
		}
	}

	// Control blocks: applied tables must exist (M014). Walked here so
	// table-name typos surface in -check, not just at lowering.
	var walk func(stmts []p4r.Stmt)
	walk = func(stmts []p4r.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case p4r.ApplyStmt:
				if _, ok := c.tables[st.Table]; !ok {
					c.errorf(diag.UnknownSymbol, st.Line, st.Col, "apply of unknown table %q", st.Table)
				}
			case p4r.IfStmt:
				for _, arg := range []p4r.Arg{st.Cond.Left, st.Cond.Right} {
					switch arg.Kind {
					case p4r.ArgIdent:
						if _, ok := c.fields[arg.Ident]; !ok {
							c.errorf(diag.UnknownSymbol, arg.Line, arg.Col, "unknown field %q in condition", arg.Ident)
						}
					case p4r.ArgMblRef:
						if !c.mblDeclared(arg.Mbl) {
							c.errorf(diag.UndeclaredMbl, arg.Line, arg.Col, "reference to undeclared malleable ${%s} in condition", arg.Mbl)
						}
					}
				}
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(c.f.Ingress)
	walk(c.f.Egress)
}

func versionNote(malleable bool) string {
	if malleable {
		return " × 2 version copies"
	}
	return ""
}

// ---- Init-table capacity (M006) ----

func (c *checker) checkInitCapacity() {
	for _, mv := range c.f.MblValues {
		if mv.Width > c.lim.MaxInitActionBits {
			c.errorf(diag.InitCapacity, mv.Line, mv.Col,
				"malleable value %s (%d bits) exceeds the init-action capacity %d", mv.Name, mv.Width, c.lim.MaxInitActionBits)
		}
	}
	// Selector widths (ceil log2 of the alt count) are tiny; only a
	// pathological alt count could exceed the cap, but check anyway so
	// the invariant is complete.
	for _, mf := range c.f.MblFields {
		sel := 1
		for (1 << sel) < len(mf.Alts) {
			sel++
		}
		if sel > c.lim.MaxInitActionBits {
			c.errorf(diag.InitCapacity, mf.Line, mf.Col,
				"malleable field %s selector (%d bits) exceeds the init-action capacity %d", mf.Name, sel, c.lim.MaxInitActionBits)
		}
	}
}

// ---- Unused declarations (M002, M011 — warnings) ----

func (c *checker) checkUnused() {
	for _, mv := range c.f.MblValues {
		if !c.mblUsed[mv.Name] {
			c.warnf(diag.UnusedMbl, mv.Line, mv.Col, "malleable value %s is declared but never used", mv.Name)
		}
	}
	for _, mf := range c.f.MblFields {
		if !c.mblUsed[mf.Name] {
			c.warnf(diag.UnusedMbl, mf.Line, mf.Col, "malleable field %s is declared but never used", mf.Name)
		}
	}
	referenced := map[string]bool{}
	for _, t := range c.f.Tables {
		for _, an := range t.Actions {
			referenced[an] = true
		}
		if t.Default != nil {
			referenced[t.Default.Action] = true
		}
	}
	for _, a := range c.f.Actions {
		if !referenced[a.Name] {
			c.warnf(diag.UnreachableDecl, a.Line, a.Col,
				"action %s is not reachable from any table", a.Name).Hint =
				"add it to a table's actions block or delete it"
		}
	}
}

// ---- Reactions (M001, M003, M004, M005, M006, M007, M010, M014) ----

func (c *checker) checkReactions() {
	for _, r := range c.f.Reactions {
		rx := &reactionScope{
			c:          c,
			r:          r,
			fieldParam: make(map[string]int),
			regParam:   make(map[string]bool),
			locals:     make(map[string]bool),
		}
		for _, p := range r.Params {
			switch p.Kind {
			case p4r.ParamIng, p4r.ParamEgr:
				if p.IsMbl {
					if !c.mblDeclared(p.Target) {
						c.errorf(diag.UndeclaredMbl, p.Line, p.Col,
							"reaction %s: reference to undeclared malleable ${%s}", r.Name, p.Target)
					}
					continue
				}
				w, ok := c.fields[p.Target]
				if !ok {
					c.errorf(diag.UnknownSymbol, p.Line, p.Col, "reaction %s: unknown field parameter %q", r.Name, p.Target)
					continue
				}
				if w > c.lim.MeasSlotBits {
					c.errorf(diag.InitCapacity, p.Line, p.Col,
						"reaction %s: field %q (%d bits) exceeds the measurement slot width %d", r.Name, p.Target, w, c.lim.MeasSlotBits)
				}
				rx.fieldParam[sanitize(p.Target)] = w
			case p4r.ParamReg:
				reg, ok := c.registers[p.Target]
				if !ok {
					c.errorf(diag.UnknownSymbol, p.Line, p.Col, "reaction %s: unknown register parameter %q", r.Name, p.Target)
					continue
				}
				n := reg.InstanceCount
				if n == 0 {
					n = 1
				}
				if p.Hi >= 0 && p.Hi >= n {
					c.errorf(diag.RegSliceRange, p.Line, p.Col,
						"reaction %s: register %s[%d:%d] out of range (instance_count %d)", r.Name, p.Target, p.Lo, p.Hi, n)
				}
				rx.regParam[p.Target] = true
			}
		}
		rx.checkBody()
	}
}

// reactionScope tracks name bindings while walking one reaction body.
type reactionScope struct {
	c          *checker
	r          *p4r.Reaction
	fieldParam map[string]int // sanitized field-param var -> width
	regParam   map[string]bool
	locals     map[string]bool
}

// checkBody parses the C-like reaction body and walks it. Bodies that do
// not parse as RCL are assumed to be stand-ins for native Go reactions
// (the runtime requires a registered native implementation for them) and
// are skipped.
func (rx *reactionScope) checkBody() {
	stmts, err := rcl.ParseBody(rx.r.Body)
	if err != nil {
		return
	}
	// First collect every declared local (including statics and loop-init
	// declarations) so use-sites resolve regardless of order.
	var collect func(stmts []rcl.Stmt)
	collect = func(stmts []rcl.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case rcl.DeclStmt:
				for _, v := range st.Vars {
					rx.locals[v.Name] = true
				}
			case rcl.IfStmt:
				collect(st.Then)
				collect(st.Else)
			case rcl.WhileStmt:
				collect(st.Body)
			case rcl.ForStmt:
				if st.Init != nil {
					collect([]rcl.Stmt{st.Init})
				}
				collect(st.Body)
			}
		}
	}
	collect(stmts)
	rx.walkStmts(stmts)
}

func (rx *reactionScope) walkStmts(stmts []rcl.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case rcl.DeclStmt:
			for _, v := range st.Vars {
				if v.Init != nil {
					rx.walkExpr(v.Init)
				}
			}
		case rcl.ExprStmt:
			rx.walkExpr(st.E)
		case rcl.IfStmt:
			rx.walkExpr(st.Cond)
			rx.walkStmts(st.Then)
			rx.walkStmts(st.Else)
		case rcl.WhileStmt:
			rx.walkExpr(st.Cond)
			rx.walkStmts(st.Body)
		case rcl.ForStmt:
			if st.Init != nil {
				rx.walkStmts([]rcl.Stmt{st.Init})
			}
			if st.Cond != nil {
				rx.walkExpr(st.Cond)
			}
			if st.Post != nil {
				rx.walkExpr(st.Post)
			}
			rx.walkStmts(st.Body)
		case rcl.ReturnStmt:
			if st.E != nil {
				rx.walkExpr(st.E)
			}
		}
	}
}

func (rx *reactionScope) walkExpr(e rcl.Expr) {
	switch x := e.(type) {
	case rcl.VarRef:
		rx.checkRead(x.Name, x.Line)
	case rcl.MblExpr:
		if !rx.c.mblDeclared(x.Name) {
			rx.c.errorf(diag.UndeclaredMbl, bodyLine(rx.r, x.Line), 0,
				"reaction %s: reference to undeclared malleable ${%s}", rx.r.Name, x.Name)
		}
	case rcl.IndexExpr:
		rx.walkExpr(x.Base)
		rx.walkExpr(x.Idx)
	case rcl.UnaryExpr:
		if x.Op == "++" || x.Op == "--" {
			rx.checkWrite(x.X, x.Line, nil)
		}
		rx.walkExpr(x.X)
	case rcl.BinaryExpr:
		rx.checkCompareWidths(x)
		rx.walkExpr(x.L)
		rx.walkExpr(x.R)
	case rcl.TernaryExpr:
		rx.walkExpr(x.Cond)
		rx.walkExpr(x.T)
		rx.walkExpr(x.F)
	case rcl.AssignExpr:
		rx.checkWrite(x.Target, x.Line, x.Val)
		rx.walkExpr(x.Val)
		// The target's sub-expressions (array index) still count as reads.
		if ix, ok := x.Target.(rcl.IndexExpr); ok {
			rx.walkExpr(ix.Idx)
		}
	case rcl.CallExpr:
		for _, a := range x.Args {
			rx.walkExpr(a)
		}
	case rcl.TableCallExpr:
		if _, ok := rx.c.tables[x.Table]; !ok {
			rx.c.errorf(diag.UnknownSymbol, bodyLine(rx.r, x.Line), 0,
				"reaction %s: table call on unknown table %q", rx.r.Name, x.Table)
		}
		for _, a := range x.Args {
			rx.walkExpr(a)
		}
	}
}

// checkRead flags reads of register state the reaction did not poll. A
// polled register is snapshotted under the mv bit by the generated
// duplicate/mirror machinery (§5.2); reading any other register from the
// control plane races the data plane and breaks serializable isolation.
func (rx *reactionScope) checkRead(name string, line int) {
	if rx.locals[name] || rx.regParam[name] {
		return
	}
	if _, ok := rx.fieldParam[name]; ok {
		return
	}
	if _, isReg := rx.c.registers[name]; isReg {
		if rx.c.regWritten[name] {
			rx.c.errorf(diag.IsolationHazard, bodyLine(rx.r, line), 0,
				"reaction %s: reads register %s, which the data plane writes, without polling it", rx.r.Name, name).Hint =
				fmt.Sprintf("add `reg %s` to the reaction parameters so the compiler mv-protects it", name)
		} else {
			rx.c.errorf(diag.ReadBeforePoll, bodyLine(rx.r, line), 0,
				"reaction %s: reads register %s without polling it", rx.r.Name, name).Hint =
				fmt.Sprintf("add `reg %s` to the reaction parameters", name)
		}
	}
	// Other unknown names may be host builtins or native bindings; the
	// interpreter reports those at run time.
}

// checkWrite flags writes through anything but a local variable or a
// declared malleable. Polled parameters are immutable snapshots (§4.2):
// assigning to them cannot reach the switch and indicates a confused
// program.
func (rx *reactionScope) checkWrite(target rcl.Expr, line int, val rcl.Expr) {
	switch t := target.(type) {
	case rcl.MblExpr:
		if !rx.c.mblDeclared(t.Name) {
			rx.c.errorf(diag.UndeclaredMbl, bodyLine(rx.r, line), 0,
				"reaction %s: write to undeclared malleable ${%s}", rx.r.Name, t.Name)
			return
		}
		rx.checkMblValueWidth(t.Name, line, val)
	case rcl.VarRef:
		if rx.locals[t.Name] {
			return
		}
		if _, ok := rx.fieldParam[t.Name]; ok {
			rx.c.errorf(diag.WriteNonMbl, bodyLine(rx.r, line), 0,
				"reaction %s: writes to polled field parameter %s", rx.r.Name, t.Name).Hint =
				"polled parameters are read-only snapshots; stage changes through a malleable"
			return
		}
		if rx.regParam[t.Name] || rx.c.registers[t.Name] != nil {
			rx.c.errorf(diag.WriteNonMbl, bodyLine(rx.r, line), 0,
				"reaction %s: writes to register %s", rx.r.Name, t.Name).Hint =
				"register snapshots are read-only; the data plane owns register state"
		}
	case rcl.IndexExpr:
		if base, ok := t.Base.(rcl.VarRef); ok && !rx.locals[base.Name] {
			if rx.regParam[base.Name] || rx.c.registers[base.Name] != nil {
				rx.c.errorf(diag.WriteNonMbl, bodyLine(rx.r, line), 0,
					"reaction %s: writes to polled register %s", rx.r.Name, base.Name).Hint =
					"register snapshots are read-only; the data plane owns register state"
			}
		}
	}
}

// checkMblValueWidth reports constant stores that cannot fit the
// malleable's declared width (M005).
func (rx *reactionScope) checkMblValueWidth(name string, line int, val rcl.Expr) {
	lit, ok := val.(rcl.NumLit)
	if !ok || lit.V < 0 {
		return
	}
	if mf, isField := rx.c.mblFields[name]; isField {
		if int(lit.V) >= len(mf.Alts) {
			rx.c.errorf(diag.WidthMismatch, bodyLine(rx.r, line), 0,
				"reaction %s: alt index %d out of range for malleable field %s (%d alts)", rx.r.Name, lit.V, name, len(mf.Alts))
		}
		return
	}
	if w := rx.c.mblWidth(name); w > 0 && w < 64 && uint64(lit.V) >= 1<<uint(w) {
		rx.c.errorf(diag.WidthMismatch, bodyLine(rx.r, line), 0,
			"reaction %s: constant %d does not fit malleable %s (width %d)", rx.r.Name, lit.V, name, w)
	}
}

// checkCompareWidths warns about comparisons of a polled field parameter
// against a constant that its width can never produce (M005): the branch
// is statically dead.
func (rx *reactionScope) checkCompareWidths(x rcl.BinaryExpr) {
	switch x.Op {
	case "==", "!=", "<", "<=", ">", ">=":
	default:
		return
	}
	ref, lit := x.L, x.R
	if _, ok := ref.(rcl.VarRef); !ok {
		ref, lit = x.R, x.L
	}
	v, okV := ref.(rcl.VarRef)
	n, okN := lit.(rcl.NumLit)
	if !okV || !okN || n.V < 0 {
		return
	}
	if w, ok := rx.fieldParam[v.Name]; ok && w < 64 && uint64(n.V) >= 1<<uint(w) {
		rx.c.warnf(diag.WidthMismatch, bodyLine(rx.r, x.Line), 0,
			"reaction %s: %s is %d bits wide and can never equal or exceed %d; comparison is constant", rx.r.Name, v.Name, w, n.V)
	}
}

// bodyLine converts a 1-based line within a reaction body to an absolute
// source line. The body starts on the reaction declaration's line (the
// capture begins right after the opening brace).
func bodyLine(r *p4r.Reaction, rel int) int {
	if rel <= 0 {
		return r.Line
	}
	return r.Line + rel - 1
}

func sanitize(name string) string { return strings.ReplaceAll(name, ".", "_") }
