package p4r

import (
	"strings"
	"testing"
)

// fig1Source is essentially the example program from Figure 1 of the
// paper, completed with the declarations it references.
const fig1Source = `
header_type foo_t {
  fields {
    foo : 32;
    bar : 32;
    baz : 32;
    qux : 16;
  }
}
header foo_t hdr;

register qdepths {
  width : 32;
  instance_count : 16;
}

malleable value value_var { width : 16; init : 1; }
malleable field field_var {
  width : 32; init : hdr.foo;
  alts {hdr.foo, hdr.bar}
}
malleable table table_var {
  reads { ${field_var} : exact; }
  actions { my_action; my_drop; }
  size : 64;
}
action my_action() {
  add(${field_var}, hdr.baz, ${value_var});
}
action my_drop() {
  drop();
}
reaction my_reaction(reg qdepths[1:10]) {
  uint16_t current_max = 0;
  uint16_t max_port = 0;
  for (int i = 1; i <= 10; ++i) {
    if (qdepths[i] > current_max) {
      current_max = qdepths[i]; max_port = i;
    }
  }
  ${value_var} = max_port;
}
control ingress {
  apply(table_var);
}
`

func TestParseFig1(t *testing.T) {
	f, err := Parse(fig1Source)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.HeaderTypes) != 1 || f.HeaderTypes[0].Name != "foo_t" {
		t.Fatalf("header types: %+v", f.HeaderTypes)
	}
	if len(f.HeaderTypes[0].Fields) != 4 {
		t.Fatalf("fields: %+v", f.HeaderTypes[0].Fields)
	}
	if len(f.Instances) != 1 || f.Instances[0].Name != "hdr" || f.Instances[0].Metadata {
		t.Fatalf("instances: %+v", f.Instances[0])
	}
	if len(f.Registers) != 1 || f.Registers[0].InstanceCount != 16 {
		t.Fatalf("registers: %+v", f.Registers)
	}

	if len(f.MblValues) != 1 {
		t.Fatalf("malleable values: %+v", f.MblValues)
	}
	mv := f.MblValues[0]
	if mv.Name != "value_var" || mv.Width != 16 || mv.Init != 1 {
		t.Fatalf("value_var = %+v", mv)
	}

	if len(f.MblFields) != 1 {
		t.Fatalf("malleable fields: %+v", f.MblFields)
	}
	mf := f.MblFields[0]
	if mf.Name != "field_var" || mf.Width != 32 || mf.Init != "hdr.foo" {
		t.Fatalf("field_var = %+v", mf)
	}
	if len(mf.Alts) != 2 || mf.Alts[0] != "hdr.foo" || mf.Alts[1] != "hdr.bar" {
		t.Fatalf("alts = %v", mf.Alts)
	}
	if mf.InitAltIndex() != 0 {
		t.Fatalf("InitAltIndex = %d", mf.InitAltIndex())
	}

	if len(f.Tables) != 1 {
		t.Fatalf("tables: %+v", f.Tables)
	}
	tbl := f.Tables[0]
	if !tbl.Malleable || tbl.Name != "table_var" || tbl.Size != 64 {
		t.Fatalf("table_var = %+v", tbl)
	}
	if len(tbl.Reads) != 1 || tbl.Reads[0].Target.Kind != ArgMblRef || tbl.Reads[0].Target.Mbl != "field_var" {
		t.Fatalf("reads = %+v", tbl.Reads)
	}
	if tbl.Reads[0].MatchType != "exact" {
		t.Fatalf("match type = %s", tbl.Reads[0].MatchType)
	}

	if len(f.Actions) != 2 {
		t.Fatalf("actions: %d", len(f.Actions))
	}
	act := f.Actions[0]
	if act.Name != "my_action" || len(act.Body) != 1 {
		t.Fatalf("my_action = %+v", act)
	}
	call := act.Body[0]
	if call.Name != "add" || len(call.Args) != 3 {
		t.Fatalf("call = %+v", call)
	}
	if call.Args[0].Kind != ArgMblRef || call.Args[0].Mbl != "field_var" {
		t.Fatalf("arg0 = %+v", call.Args[0])
	}
	if call.Args[1].Kind != ArgIdent || call.Args[1].Ident != "hdr.baz" {
		t.Fatalf("arg1 = %+v", call.Args[1])
	}
	if call.Args[2].Kind != ArgMblRef || call.Args[2].Mbl != "value_var" {
		t.Fatalf("arg2 = %+v", call.Args[2])
	}

	if len(f.Reactions) != 1 {
		t.Fatalf("reactions: %d", len(f.Reactions))
	}
	r := f.Reactions[0]
	if r.Name != "my_reaction" || len(r.Params) != 1 {
		t.Fatalf("reaction = %+v", r)
	}
	rp := r.Params[0]
	if rp.Kind != ParamReg || rp.Target != "qdepths" || rp.Lo != 1 || rp.Hi != 10 {
		t.Fatalf("reaction param = %+v", rp)
	}
	if !strings.Contains(r.Body, "${value_var} = max_port;") {
		t.Fatalf("body not captured:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "for (int i = 1; i <= 10; ++i)") {
		t.Fatalf("nested body lost:\n%s", r.Body)
	}

	if len(f.Ingress) != 1 {
		t.Fatalf("ingress: %+v", f.Ingress)
	}
	if ap, ok := f.Ingress[0].(ApplyStmt); !ok || ap.Table != "table_var" {
		t.Fatalf("ingress[0] = %+v", f.Ingress[0])
	}
}

func TestParseControlIf(t *testing.T) {
	src := `
action nop() { no_op(); }
table t { actions { nop; } }
table t2 { actions { nop; } }
control ingress {
  if (hdr.x == 5) {
    apply(t);
  } else {
    apply(t2);
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifst, ok := f.Ingress[0].(IfStmt)
	if !ok {
		t.Fatalf("ingress[0] = %T", f.Ingress[0])
	}
	if ifst.Cond.Left.Ident != "hdr.x" || ifst.Cond.Op != "==" || ifst.Cond.Right.Value != 5 {
		t.Fatalf("cond = %+v", ifst.Cond)
	}
	if len(ifst.Then) != 1 || len(ifst.Else) != 1 {
		t.Fatalf("branches: then=%d else=%d", len(ifst.Then), len(ifst.Else))
	}
}

func TestParseFieldListAndCalc(t *testing.T) {
	src := `
field_list ecmp_fields {
  ipv4.srcAddr;
  ipv4.dstAddr;
  ${src_sel};
}
field_list_calculation ecmp_hash {
  input { ecmp_fields; }
  algorithm : crc16;
  output_width : 14;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.FieldLists) != 1 || len(f.FieldLists[0].Entries) != 3 {
		t.Fatalf("field lists: %+v", f.FieldLists)
	}
	if f.FieldLists[0].Entries[2].Kind != ArgMblRef {
		t.Fatal("malleable ref in field list not parsed")
	}
	c := f.Calcs[0]
	if c.Input != "ecmp_fields" || c.Algorithm != "crc16" || c.OutputWidth != 14 {
		t.Fatalf("calc = %+v", c)
	}
}

func TestParseReactionIngEgrParams(t *testing.T) {
	src := `
reaction r(ing ipv4.srcAddr, egr standard_metadata.enq_qdepth, ing ${fv}, reg ctr) {
  // body
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ps := f.Reactions[0].Params
	if len(ps) != 4 {
		t.Fatalf("params: %+v", ps)
	}
	if ps[0].Kind != ParamIng || ps[0].Target != "ipv4.srcAddr" || ps[0].IsMbl {
		t.Fatalf("p0 = %+v", ps[0])
	}
	if ps[1].Kind != ParamEgr || ps[1].Target != "standard_metadata.enq_qdepth" {
		t.Fatalf("p1 = %+v", ps[1])
	}
	if ps[2].Kind != ParamIng || !ps[2].IsMbl || ps[2].Target != "fv" {
		t.Fatalf("p2 = %+v", ps[2])
	}
	if ps[3].Kind != ParamReg || ps[3].Lo != 0 || ps[3].Hi != -1 {
		t.Fatalf("p3 = %+v (want full-array sentinel)", ps[3])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"stray":                  `bogus`,
		"missing width":          `malleable value v { init : 3; }`,
		"no alts":                `malleable field f { width : 8; init : a.b; }`,
		"init not in alts":       `malleable field f { width : 8; init : a.c; alts { a.b }; }`,
		"bad malleable kind":     `malleable widget w { }`,
		"const read key":         `table t { reads { 5 : exact; } actions { a; } }`,
		"bad match type":         `table t { reads { a.b : fuzzy; } actions { a; } }`,
		"bad reaction param":     `reaction r(bogus a.b) { }`,
		"inverted reg slice":     `reaction r(reg q[5:2]) { }`,
		"unterminated reaction":  `reaction r() { if (x) {`,
		"unterminated comment":   `/* nope`,
		"empty mbl ref":          `action a() { add(${}, x, y); }`,
		"unterminated mbl ref":   `action a() { add(${foo, x, y); }`,
		"control neither":        `control sideways { }`,
		"register missing width": `register r { instance_count : 4; }`,
		"bad stmt":               `control ingress { jump(t); }`,
		"bad cmp op":             `control ingress { if (a.b = 4) { } }`,
		"reaction param const":   `reaction r(ing 5) { }`,
		"unknown table attr":     `table t { flavor : 3; }`,
		"unknown register attr":  `register r { depth : 3; }`,
		"unknown mbl value attr": `malleable value v { width : 8; color : 1; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	lx := NewLexer(`foo.bar 0x1F 42 ${mbl} == <= { } ;`)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == TokEOF {
			break
		}
		toks = append(toks, tok)
	}
	if len(toks) != 9 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "foo.bar" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokNumber || toks[1].Num != 0x1F {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].Num != 42 {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != TokMblRef || toks[3].Text != "mbl" {
		t.Fatalf("tok3 = %+v", toks[3])
	}
	if toks[4].Text != "==" || toks[5].Text != "<=" {
		t.Fatalf("operators: %+v %+v", toks[4], toks[5])
	}
}

func TestLexerComments(t *testing.T) {
	lx := NewLexer("a // line comment\n/* block\ncomment */ b")
	t1, _ := lx.Next()
	t2, _ := lx.Next()
	t3, _ := lx.Next()
	if t1.Text != "a" || t2.Text != "b" || t3.Kind != TokEOF {
		t.Fatalf("tokens: %v %v %v", t1, t2, t3)
	}
	if t2.Line != 3 {
		t.Fatalf("line tracking: b at line %d, want 3", t2.Line)
	}
}

func TestLexerPositions(t *testing.T) {
	lx := NewLexer("x\n  y")
	a, _ := lx.Next()
	b, _ := lx.Next()
	if a.Line != 1 || a.Col != 1 {
		t.Fatalf("a at %d:%d", a.Line, a.Col)
	}
	if b.Line != 2 || b.Col != 3 {
		t.Fatalf("b at %d:%d", b.Line, b.Col)
	}
}

func TestReactionBodyNestedBraces(t *testing.T) {
	src := `reaction r() { while (1) { if (2) { x = 3; } } done = 1; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Reactions[0].Body
	if !strings.Contains(body, "x = 3;") || !strings.Contains(body, "done = 1;") {
		t.Fatalf("body = %q", body)
	}
	if strings.Count(body, "{") != 2 || strings.Count(body, "}") != 2 {
		t.Fatalf("brace balance wrong in %q", body)
	}
}

func TestDefaultActionWithArgs(t *testing.T) {
	src := `
action fwd(port) { modify_field(standard_metadata.egress_spec, port); }
table t {
  actions { fwd; }
  default_action : fwd(7);
  size : 8;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := f.Tables[0].Default
	if d == nil || d.Action != "fwd" || len(d.Args) != 1 || d.Args[0] != 7 {
		t.Fatalf("default = %+v", d)
	}
}

func TestBodyLineCount(t *testing.T) {
	f := &File{}
	n := f.BodyLineCount("a\n\n  b  \n\t\nc")
	if n != 3 {
		t.Fatalf("BodyLineCount = %d, want 3", n)
	}
}

func TestParseMaskedRead(t *testing.T) {
	src := `
action nop() { no_op(); }
table t {
  reads {
    hdr.x mask 0xFF00 : ternary;
    ${fv} mask 0x0F : exact;
    hdr.y : exact;
  }
  actions { nop; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	reads := f.Tables[0].Reads
	if !reads[0].HasMask || reads[0].Mask != 0xFF00 {
		t.Fatalf("read0 = %+v", reads[0])
	}
	if !reads[1].HasMask || reads[1].Mask != 0x0F || reads[1].Target.Kind != ArgMblRef {
		t.Fatalf("read1 = %+v", reads[1])
	}
	if reads[2].HasMask {
		t.Fatalf("read2 unexpectedly masked: %+v", reads[2])
	}
}
