// Package p4r implements the P4R language frontend: a lexer and
// recursive-descent parser for the P4-14 v1.0.5 subset extended with the
// Mantis constructs of the paper's Figure 3 — `malleable value`,
// `malleable field`, `malleable table`, `${...}` malleable references,
// and `reaction` declarations with embedded C-like bodies.
//
// The original Mantis frontend is written in Flex/Bison; this package is
// a hand-written equivalent producing the same surface AST, which the
// Mantis compiler (internal/compiler) lowers to a malleable p4.Program
// plus a reaction plan.
package p4r

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/p4r/diag"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokPunct  // single or multi-char punctuation: { } ( ) ; : , [ ] < > = etc.
	TokMblRef // ${name}
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Num  uint64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokMblRef:
		return fmt.Sprintf("${%s}", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Lexer tokenizes P4R source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return diag.Errorf(diag.BadLiteral, startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token. Dotted names like hdr.foo lex as a single
// identifier, matching how P4-14 references header instance fields.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peekByte()

	// ${name}
	if c == '$' && lx.peekByteAt(1) == '{' {
		lx.advance()
		lx.advance()
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		name := lx.src[start:lx.pos]
		if name == "" {
			return Token{}, diag.Errorf(diag.BadLiteral, line, col, "empty malleable reference")
		}
		if lx.peekByte() != '}' {
			return Token{}, diag.Errorf(diag.BadLiteral, line, col, "malleable reference ${%s missing '}'", name)
		}
		lx.advance()
		return Token{Kind: TokMblRef, Text: name, Line: line, Col: col}, nil
	}

	if isIdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		return Token{Kind: TokIdent, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
	}

	if unicode.IsDigit(rune(c)) {
		start := lx.pos
		if c == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) && isHex(lx.peekByte()) {
				lx.advance()
			}
			text := lx.src[start:lx.pos]
			v, err := strconv.ParseUint(text, 0, 64)
			if err != nil {
				return Token{}, diag.Errorf(diag.BadLiteral, line, col, "bad hex literal %q", text)
			}
			return Token{Kind: TokNumber, Text: text, Num: v, Line: line, Col: col}, nil
		}
		for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.peekByte())) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return Token{}, diag.Errorf(diag.BadLiteral, line, col, "bad number literal %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Num: v, Line: line, Col: col}, nil
	}

	// Multi-char punctuation used in conditions.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		lx.advance()
		lx.advance()
		return Token{Kind: TokPunct, Text: two, Line: line, Col: col}, nil
	}
	lx.advance()
	return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// captureBraceBlock returns the raw source between the current position
// (which must be just after an opening '{') and its matching '}',
// honoring nested braces and comments. Used to extract reaction bodies,
// which are parsed separately by the reaction-language interpreter.
func (lx *Lexer) captureBraceBlock() (string, error) {
	depth := 1
	var b strings.Builder
	startLine, startCol := lx.line, lx.col
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		if c == '/' && lx.peekByteAt(1) == '/' {
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				b.WriteByte(lx.advance())
			}
			continue
		}
		switch c {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				lx.advance()
				return b.String(), nil
			}
		}
		b.WriteByte(lx.advance())
	}
	return "", diag.Errorf(diag.BadLiteral, startLine, startCol, "unterminated block")
}
