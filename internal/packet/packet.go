// Package packet defines the packet representation shared by the RMT
// switch model and the network simulator.
//
// A Packet is a flat vector of header and metadata field values, indexed
// by FieldID. The mapping from dotted P4 names (e.g. "ipv4.srcAddr" or
// "p4r_meta_.value_var") to FieldIDs lives in a Schema, which is built
// once per compiled program. Resolving names to integer indices at
// compile time keeps the per-packet hot path free of map lookups and
// string hashing — the same reason hardware pipelines operate on a fixed
// packet header vector (PHV).
package packet

import (
	"fmt"
	"sort"
)

// FieldID indexes a field within a Schema's packet layout.
type FieldID int

// Invalid is the zero-value sentinel for an unresolved field.
const Invalid FieldID = -1

// Schema maps dotted field names to packet-vector slots. A Schema is
// immutable once packets have been created from it; Define must not be
// called concurrently with packet processing.
type Schema struct {
	names  []string
	widths []int
	index  map[string]FieldID
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{index: make(map[string]FieldID)}
}

// Define registers a field with the given dotted name and bit width
// (1..64) and returns its ID. Defining an existing name with the same
// width returns the existing ID; redefining with a different width
// panics, since that is always a compiler bug.
func (s *Schema) Define(name string, width int) FieldID {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("packet: field %q has unsupported width %d", name, width))
	}
	if id, ok := s.index[name]; ok {
		if s.widths[id] != width {
			panic(fmt.Sprintf("packet: field %q redefined with width %d (was %d)", name, width, s.widths[id]))
		}
		return id
	}
	id := FieldID(len(s.names))
	s.names = append(s.names, name)
	s.widths = append(s.widths, width)
	s.index[name] = id
	return id
}

// Lookup resolves a field name, reporting whether it exists.
func (s *Schema) Lookup(name string) (FieldID, bool) {
	id, ok := s.index[name]
	return id, ok
}

// MustID resolves a field name, panicking if it is not defined.
func (s *Schema) MustID(name string) FieldID {
	id, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("packet: unknown field %q", name))
	}
	return id
}

// Width returns the bit width of the field.
func (s *Schema) Width(id FieldID) int { return s.widths[id] }

// Name returns the dotted name of the field.
func (s *Schema) Name(id FieldID) string { return s.names[id] }

// NumFields reports how many fields the schema defines.
func (s *Schema) NumFields() int { return len(s.names) }

// Names returns all defined field names in sorted order.
func (s *Schema) Names() []string {
	out := append([]string(nil), s.names...)
	sort.Strings(out)
	return out
}

// Mask returns the value mask for a field of the given width.
func Mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Packet is a unit of traffic moving through the simulated network and
// switch pipelines. Field values are always stored masked to their
// declared width.
type Packet struct {
	schema *Schema
	fields []uint64

	// Size is the wire size in bytes, used for byte counters and link
	// serialization delay.
	Size int
	// IngressPort is the switch port the packet arrived on.
	IngressPort int
	// EgressPort is the port chosen by the ingress pipeline; -1 until set.
	EgressPort int
	// Dropped marks the packet as discarded.
	Dropped bool
	// Recirculations counts trips back through the pipeline.
	Recirculations int
	// Priority selects the egress queue (higher is more urgent).
	Priority int
	// Payload carries opaque simulator context (e.g. the netsim flow that
	// emitted the packet); the data plane never inspects it.
	Payload any
}

// New creates a zero-filled packet for this schema.
func (s *Schema) New() *Packet {
	return &Packet{
		schema:     s,
		fields:     make([]uint64, len(s.names)),
		EgressPort: -1,
	}
}

// Schema returns the schema the packet was created from.
func (p *Packet) Schema() *Schema { return p.schema }

// Get returns the value of a field.
func (p *Packet) Get(id FieldID) uint64 { return p.fields[id] }

// Set stores v into the field, masked to the field's width.
func (p *Packet) Set(id FieldID, v uint64) {
	p.fields[id] = v & Mask(p.schema.widths[id])
}

// GetName and SetName are conveniences for tests and scenario setup; the
// data-plane hot path resolves IDs ahead of time.
func (p *Packet) GetName(name string) uint64 { return p.fields[p.schema.MustID(name)] }

// SetName stores a value by field name.
func (p *Packet) SetName(name string, v uint64) { p.Set(p.schema.MustID(name), v) }

// Clone returns a deep copy of the packet (Payload is copied by
// reference).
func (p *Packet) Clone() *Packet {
	q := *p
	q.fields = append([]uint64(nil), p.fields...)
	return &q
}

// CloneInto deep-copies p into dst (same schema), reusing dst's field
// storage. It is the allocation-free counterpart of Clone for callers
// that recycle packets through a Pool.
func (p *Packet) CloneInto(dst *Packet) {
	fields := dst.fields
	*dst = *p
	dst.fields = append(fields[:0], p.fields...)
}

// Reset zeroes the packet back to its post-New state so it can be
// reused for a fresh unit of traffic.
func (p *Packet) Reset() {
	for i := range p.fields {
		p.fields[i] = 0
	}
	p.Size = 0
	p.IngressPort = 0
	p.EgressPort = -1
	p.Dropped = false
	p.Recirculations = 0
	p.Priority = 0
	p.Payload = nil
}

// Pool recycles packets of one schema so per-packet hot paths (traffic
// generators, benchmarks) run allocation-free in steady state. It is a
// plain freelist, not a sync.Pool: simulations are single-threaded by
// design, and a deterministic freelist keeps runs reproducible. Not
// safe for concurrent use; give each simulation its own Pool.
type Pool struct {
	schema *Schema
	free   []*Packet
}

// NewPool returns an empty pool producing packets of schema s.
func NewPool(s *Schema) *Pool { return &Pool{schema: s} }

// Get returns a zeroed packet, reusing a returned one when available.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return p
	}
	return pl.schema.New()
}

// Put resets p and returns it to the pool. The caller must not use p
// afterwards.
func (pl *Pool) Put(p *Packet) {
	p.Reset()
	pl.free = append(pl.free, p)
}
