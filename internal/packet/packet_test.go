package packet

import (
	"testing"
	"testing/quick"
)

func TestDefineAndLookup(t *testing.T) {
	s := NewSchema()
	a := s.Define("ipv4.srcAddr", 32)
	b := s.Define("ipv4.dstAddr", 32)
	if a == b {
		t.Fatal("distinct fields share an ID")
	}
	if id, ok := s.Lookup("ipv4.srcAddr"); !ok || id != a {
		t.Fatal("Lookup failed")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup found undefined field")
	}
	if s.NumFields() != 2 {
		t.Fatalf("NumFields = %d", s.NumFields())
	}
}

func TestDefineIdempotent(t *testing.T) {
	s := NewSchema()
	a := s.Define("x", 16)
	if s.Define("x", 16) != a {
		t.Fatal("re-Define returned new ID")
	}
}

func TestDefineWidthConflictPanics(t *testing.T) {
	s := NewSchema()
	s.Define("x", 16)
	defer func() {
		if recover() == nil {
			t.Fatal("width conflict did not panic")
		}
	}()
	s.Define("x", 32)
}

func TestDefineBadWidthPanics(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() { recover() }()
			NewSchema().Define("x", w)
			t.Fatalf("width %d did not panic", w)
		}()
	}
}

func TestSetMasksToWidth(t *testing.T) {
	s := NewSchema()
	f := s.Define("h.small", 4)
	p := s.New()
	p.Set(f, 0xFF)
	if got := p.Get(f); got != 0xF {
		t.Fatalf("Get = %#x, want 0xF", got)
	}
}

func TestSet64BitField(t *testing.T) {
	s := NewSchema()
	f := s.Define("h.big", 64)
	p := s.New()
	p.Set(f, ^uint64(0))
	if p.Get(f) != ^uint64(0) {
		t.Fatal("64-bit value truncated")
	}
}

func TestMask(t *testing.T) {
	cases := map[int]uint64{1: 1, 8: 0xFF, 16: 0xFFFF, 32: 0xFFFFFFFF, 64: ^uint64(0)}
	for w, want := range cases {
		if Mask(w) != want {
			t.Errorf("Mask(%d) = %#x, want %#x", w, Mask(w), want)
		}
	}
}

func TestGetSetByName(t *testing.T) {
	s := NewSchema()
	s.Define("eth.type", 16)
	p := s.New()
	p.SetName("eth.type", 0x0800)
	if p.GetName("eth.type") != 0x0800 {
		t.Fatal("name round trip failed")
	}
}

func TestMustIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustID on unknown field did not panic")
		}
	}()
	NewSchema().MustID("ghost")
}

func TestClone(t *testing.T) {
	s := NewSchema()
	f := s.Define("a", 32)
	p := s.New()
	p.Set(f, 7)
	p.Size = 100
	q := p.Clone()
	q.Set(f, 9)
	if p.Get(f) != 7 {
		t.Fatal("Clone aliases field storage")
	}
	if q.Size != 100 {
		t.Fatal("Clone lost scalar state")
	}
}

func TestNewPacketDefaults(t *testing.T) {
	s := NewSchema()
	p := s.New()
	if p.EgressPort != -1 {
		t.Fatalf("EgressPort = %d, want -1", p.EgressPort)
	}
	if p.Dropped {
		t.Fatal("new packet is dropped")
	}
}

func TestNamesSorted(t *testing.T) {
	s := NewSchema()
	s.Define("z", 8)
	s.Define("a", 8)
	names := s.Names()
	if names[0] != "a" || names[1] != "z" {
		t.Fatalf("Names = %v", names)
	}
}

// Property: Set then Get is identity modulo the width mask, for any
// width in [1,64].
func TestPropertySetGetMasked(t *testing.T) {
	f := func(v uint64, w8 uint8) bool {
		w := int(w8%64) + 1
		s := NewSchema()
		id := s.Define("f", w)
		p := s.New()
		p.Set(id, v)
		return p.Get(id) == v&Mask(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
