package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Fatal("10% error")
	}
	if RelativeError(90, 100) != 0.1 {
		t.Fatal("symmetric error")
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("0/0")
	}
	if !math.IsInf(RelativeError(5, 0), 1) {
		t.Fatal("x/0")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestMAD(t *testing.T) {
	// Balanced: identical values -> MAD 0.
	if MAD([]float64{7, 7, 7, 7}) != 0 {
		t.Fatal("uniform MAD")
	}
	// {1,2,3,4,9}: median 3, deviations {2,1,0,1,6}, median 1.
	if MAD([]float64{1, 2, 3, 4, 9}) != 1 {
		t.Fatal("MAD")
	}
	// An imbalanced port distribution has larger MAD than a balanced one.
	balanced := MAD([]float64{100, 101, 99, 100})
	skewed := MAD([]float64{10, 200, 15, 180})
	if skewed <= balanced {
		t.Fatalf("MAD skewed=%v balanced=%v", skewed, balanced)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 50) != 5 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 10 || Percentile(xs, 0) != 1 {
		t.Fatal("extremes")
	}
	if Percentile(xs, 99) != 10 {
		t.Fatal("p99 of 10 samples")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty")
	}
}

func TestSummarizeDurations(t *testing.T) {
	ds := []time.Duration{time.Microsecond, 3 * time.Microsecond, 2 * time.Microsecond}
	s := SummarizeDurations(ds)
	if s.Count != 3 || s.Mean != 2*time.Microsecond || s.Median != 2*time.Microsecond {
		t.Fatalf("stats = %+v", s)
	}
	if s.Min != time.Microsecond || s.Max != 3*time.Microsecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if SummarizeDurations(nil).Count != 0 {
		t.Fatal("empty")
	}
	if s.String() == "" {
		t.Fatal("String")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 || pts[0].X != 1 || pts[2].P != 1.0 {
		t.Fatalf("cdf = %v", pts)
	}
	if pts[0].P <= 0 || pts[1].P != 2.0/3 {
		t.Fatalf("cdf = %v", pts)
	}
}

func TestGeoMean(t *testing.T) {
	g := GeoMean([]float64{1, 100})
	if math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean([]float64{0, 0}) != 0 {
		t.Fatal("all-zero")
	}
}

func TestTimeSeriesBucketize(t *testing.T) {
	var ts TimeSeries
	ts.Add(100*time.Microsecond, 10)
	ts.Add(150*time.Microsecond, 5)
	ts.Add(900*time.Microsecond, 7)
	starts, sums := ts.Bucketize(500 * time.Microsecond)
	if len(starts) != 2 {
		t.Fatalf("buckets = %v %v", starts, sums)
	}
	if sums[0] != 15 || sums[1] != 7 {
		t.Fatalf("sums = %v", sums)
	}
	if s, v := new(TimeSeries).Bucketize(time.Second); s != nil || v != nil {
		t.Fatal("empty series")
	}
}

// Property: Percentile(xs, 100) is the max, Percentile(xs, 0) the min,
// and percentiles are monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return Percentile(xs, 0) == s[0] &&
			Percentile(xs, 100) == s[len(s)-1] &&
			Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MAD is translation invariant.
func TestPropertyMADTranslationInvariant(t *testing.T) {
	f := func(raw []int16, shift int16) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, x := range raw {
			a[i] = float64(x)
			b[i] = float64(x) + float64(shift)
		}
		return math.Abs(MAD(a)-MAD(b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
