// Package stats provides the metrics used by the paper's evaluation:
// relative estimation error (Fig. 14), median absolute deviation (the
// hash-polarization trigger of §8.3.3), percentiles and CDFs for
// latency distributions (Figs. 12, 16), and simple time series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// RelativeError returns |est - actual| / actual. An actual of zero
// returns 0 when est is also zero, else +Inf.
func RelativeError(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-actual) / actual
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the middle value (average of the two middles for even
// lengths); 0 for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median — the
// imbalance statistic of use case #3.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// MeanAbsDevFromMedian returns the mean absolute deviation from the
// median. Unlike the median-of-deviations MAD, it flags a single hot
// outlier among many idle values (MAD proper is 0 when fewer than half
// the values deviate) — which is exactly the single-hot-path shape of
// hash polarization.
func MeanAbsDevFromMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x - med)
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// DurationPercentile is Percentile over time.Durations.
func DurationPercentile(ds []time.Duration, p float64) time.Duration {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Percentile(xs, p))
}

// DurationStats summarizes a latency distribution.
type DurationStats struct {
	Count  int
	Mean   time.Duration
	Median time.Duration
	P99    time.Duration
	Min    time.Duration
	Max    time.Duration
}

// SummarizeDurations computes DurationStats for a sample set.
func SummarizeDurations(ds []time.Duration) DurationStats {
	if len(ds) == 0 {
		return DurationStats{}
	}
	xs := make([]float64, len(ds))
	min, max := ds[0], ds[0]
	for i, d := range ds {
		xs[i] = float64(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return DurationStats{
		Count:  len(ds),
		Mean:   time.Duration(Mean(xs)),
		Median: time.Duration(Median(xs)),
		P99:    time.Duration(Percentile(xs, 99)),
		Min:    min,
		Max:    max,
	}
}

func (s DurationStats) String() string {
	return fmt.Sprintf("n=%d mean=%v median=%v p99=%v min=%v max=%v",
		s.Count, s.Mean, s.Median, s.P99, s.Min, s.Max)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical CDF of xs (sorted by X).
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// GeoMean returns the geometric mean of positive values; zero entries
// are skipped (0 if none remain).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// TimeSeries accumulates (t, value) points, e.g. goodput over time for
// Fig. 15.
type TimeSeries struct {
	T []time.Duration
	V []float64
}

// Add appends one point.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.T) }

// Bucketize aggregates per-event samples into fixed-width time buckets,
// returning bucket start times and the sum of values per bucket.
func (ts *TimeSeries) Bucketize(width time.Duration) ([]time.Duration, []float64) {
	if ts.Len() == 0 || width <= 0 {
		return nil, nil
	}
	maxT := ts.T[0]
	for _, t := range ts.T {
		if t > maxT {
			maxT = t
		}
	}
	n := int(maxT/width) + 1
	starts := make([]time.Duration, n)
	sums := make([]float64, n)
	for i := range starts {
		starts[i] = time.Duration(i) * width
	}
	for i, t := range ts.T {
		sums[int(t/width)] += ts.V[i]
	}
	return starts, sums
}
