package faults

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffWindowDoubles(t *testing.T) {
	b := NewBackoff(rand.New(rand.NewSource(1)), 2*time.Microsecond, 16*time.Microsecond)
	wantCeils := []time.Duration{
		2 * time.Microsecond, 4 * time.Microsecond, 8 * time.Microsecond,
		16 * time.Microsecond, 16 * time.Microsecond, 16 * time.Microsecond,
	}
	for i, want := range wantCeils {
		ceil := b.Ceil()
		if ceil != want {
			t.Fatalf("attempt %d: ceil = %v, want %v", i, ceil, want)
		}
		d := b.Next()
		if d < 0 || d > ceil {
			t.Fatalf("attempt %d: draw %v outside [0, %v]", i, d, ceil)
		}
	}
	b.Reset()
	if b.Ceil() != 2*time.Microsecond {
		t.Fatalf("after Reset, ceil = %v, want base", b.Ceil())
	}
}

func TestBackoffClampsDegenerateConfig(t *testing.T) {
	b := NewBackoff(rand.New(rand.NewSource(1)), 0, 0)
	if b.Base <= 0 || b.Max < b.Base {
		t.Fatalf("degenerate config not clamped: base=%v max=%v", b.Base, b.Max)
	}
	for i := 0; i < 10; i++ {
		if d := b.Next(); d < 0 || d > b.Max {
			t.Fatalf("draw %v outside [0, %v]", d, b.Max)
		}
	}
}

// Collision-rate fixture shared by the decorrelation tests: simulate
// groups of sessions that all fail at t=0 and retry per a schedule
// generator, then measure how often a pair of sessions lands its k-th
// retry within one base period of each other — close enough to hit the
// contended resource in the same window. The first attempts are skipped:
// with windows at most one base wide, early collisions are unavoidable
// under ANY schedule; decorrelation is about the later attempts, where
// the windows have room to spread.
func backoffCollisionFrac(t *testing.T, gen func(rng *rand.Rand, base, max time.Duration, attempts int) []time.Duration) float64 {
	t.Helper()
	const (
		sessions = 8
		attempts = 6
		skip     = 2
		trials   = 200
	)
	base, max := 2*time.Microsecond, 64*time.Microsecond
	collisions, pairs := 0, 0
	seed := int64(1)
	for trial := 0; trial < trials; trial++ {
		wakeups := make([][]time.Duration, sessions)
		for s := range wakeups {
			// Each session draws from its own seeded stream, as two
			// agents (or two ctlchan clients) would.
			wakeups[s] = gen(rand.New(rand.NewSource(seed)), base, max, attempts)
			seed++
		}
		for i := 0; i < sessions; i++ {
			for j := i + 1; j < sessions; j++ {
				for k := skip; k < attempts; k++ {
					pairs++
					d := wakeups[i][k] - wakeups[j][k]
					if d < 0 {
						d = -d
					}
					if d < base {
						collisions++
					}
				}
			}
		}
	}
	return float64(collisions) / float64(pairs)
}

// fullJitterSchedule is the production schedule: cumulative Backoff.Next
// retry instants.
func fullJitterSchedule(rng *rand.Rand, base, max time.Duration, attempts int) []time.Duration {
	b := NewBackoff(rng, base, max)
	var at time.Duration
	out := make([]time.Duration, 0, attempts)
	for i := 0; i < attempts; i++ {
		at += b.Next()
		out = append(out, at)
	}
	return out
}

// synchronizedSchedule is the pre-change scheme this package replaced:
// deterministic doubling plus a small jitter in [0, backoff/2]. Kept as
// the baseline the decorrelation claim is measured against.
func synchronizedSchedule(rng *rand.Rand, base, max time.Duration, attempts int) []time.Duration {
	backoff := base
	var at time.Duration
	out := make([]time.Duration, 0, attempts)
	for i := 0; i < attempts; i++ {
		at += backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		if backoff *= 2; backoff > max {
			backoff = max
		}
		out = append(out, at)
	}
	return out
}

// TestBackoffDecorrelatesSessions is the retransmit-storm regression:
// sessions that trip over the same fault at the same instant must not
// keep re-arriving in lockstep. Full jitter spreads attempt k over
// [0, sum of windows]; the old synchronized scheme confined it to a
// narrow band around the deterministic doubling sum, so every pair of
// sessions re-collided. Measured rates (seeded, deterministic): ~0.19
// for full jitter vs ~0.35 for synchronized.
func TestBackoffDecorrelatesSessions(t *testing.T) {
	full := backoffCollisionFrac(t, fullJitterSchedule)
	sync := backoffCollisionFrac(t, synchronizedSchedule)
	if full >= sync {
		t.Fatalf("full jitter does not decorrelate: collision rate %.3f >= synchronized %.3f", full, sync)
	}
	if full > 0.25 {
		t.Fatalf("full-jitter collision rate %.3f above expected ceiling 0.25", full)
	}
	// Guard the baseline too: if the synchronized reference stops
	// colliding, the comparison above stops meaning anything.
	if sync < 0.30 {
		t.Fatalf("synchronized baseline collision rate %.3f unexpectedly low — revisit the metric", sync)
	}
}
