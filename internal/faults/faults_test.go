package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

func testChannel(t testing.TB, s *sim.Simulator) *driver.Driver {
	t.Helper()
	prog := p4.NewProgram("faults-test")
	prog.DefineStandardMetadata()
	dst := prog.Schema.Define("ipv4.dstAddr", 32)
	egr := prog.Schema.MustID(p4.FieldEgressSpec)
	prog.AddRegister(&p4.Register{Name: "ctr", Width: 32, Instances: 64})
	prog.AddAction(&p4.Action{
		Name:   "fwd",
		Params: []p4.Param{{Name: "port", Width: 16}},
		Body:   []p4.Primitive{p4.ModifyField{Dst: egr, DstName: p4.FieldEgressSpec, Src: p4.ParamOp(0, "port")}},
	})
	prog.AddTable(&p4.Table{
		Name:        "fw",
		Keys:        []p4.MatchKey{{FieldName: "ipv4.dstAddr", Field: dst, Width: 32, Kind: p4.MatchExact}},
		ActionNames: []string{"fwd"},
		Size:        128,
	})
	prog.Ingress = []p4.ControlStmt{p4.Apply{Table: "fw"}}
	sw, err := rmt.New(s, prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return driver.New(s, sw, driver.DefaultCostModel())
}

// trace records the outcome pattern of a fixed op sequence, for
// determinism comparison across runs.
func trace(t *testing.T, prof Profile, seed int64, ops int) (string, Stats) {
	t.Helper()
	s := sim.New(7)
	inj := Wrap(s, testChannel(t, s), prof, seed)
	out := make([]byte, 0, ops)
	s.Spawn("cp", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			err := inj.RegWrite(p, "ctr", uint64(i%64), uint64(i))
			switch {
			case err == nil:
				out = append(out, '.')
			case driver.IsTransient(err):
				out = append(out, 'E')
			default:
				t.Errorf("op %d: non-transient error %v", i, err)
				out = append(out, '?')
			}
		}
	})
	s.Run()
	return string(out), inj.FaultStats()
}

func TestDeterministicSchedule(t *testing.T) {
	prof := TransientErrors()
	a, as := trace(t, prof, 42, 400)
	b, bs := trace(t, prof, 42, 400)
	if a != b {
		t.Fatalf("same (profile, seed) produced different fault schedules:\n%s\n%s", a, b)
	}
	if as != bs {
		t.Fatalf("same (profile, seed) produced different stats: %+v vs %+v", as, bs)
	}
	c, _ := trace(t, prof, 43, 400)
	if a == c {
		t.Fatalf("different seeds produced the identical 400-op schedule")
	}
}

func TestTransientErrorsProfile(t *testing.T) {
	tr, st := trace(t, TransientErrors(), 1, 1000)
	if st.InjectedErrors == 0 {
		t.Fatalf("no errors injected in 1000 ops at 5%% rate")
	}
	if st.Ops != 1000 {
		t.Fatalf("Ops = %d, want 1000", st.Ops)
	}
	// Bursts of 2: at least one EE pair should occur in 1000 ops.
	found := false
	for i := 0; i+1 < len(tr); i++ {
		if tr[i] == 'E' && tr[i+1] == 'E' {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("ErrorBurst=2 never produced consecutive failures in %d ops", len(tr))
	}
}

func TestNoneProfileIsTransparent(t *testing.T) {
	tr, st := trace(t, None(), 1, 200)
	for _, c := range tr {
		if c != '.' {
			t.Fatalf("control profile injected a fault: %s", tr)
		}
	}
	if st.InjectedErrors != 0 || st.InjectedSpikes != 0 || st.PartialBatches != 0 || st.StuckWaits != 0 {
		t.Fatalf("control profile counted faults: %+v", st)
	}
}

func TestDisabledInjectorIsTransparent(t *testing.T) {
	s := sim.New(7)
	inj := Wrap(s, testChannel(t, s), TransientErrors(), 42)
	inj.SetEnabled(false)
	s.Spawn("cp", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			if err := inj.RegWrite(p, "ctr", 0, uint64(i)); err != nil {
				t.Errorf("disabled injector failed op %d: %v", i, err)
			}
		}
	})
	s.Run()
	if st := inj.FaultStats(); st.InjectedErrors != 0 {
		t.Fatalf("disabled injector injected %d errors", st.InjectedErrors)
	}
}

func TestLatencySpikes(t *testing.T) {
	s := sim.New(7)
	prof := LatencySpikes()
	prof.SpikeRate = 1.0 // every op spikes
	inj := Wrap(s, testChannel(t, s), prof, 1)
	var elapsed time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		t0 := p.Now()
		if err := inj.RegWrite(p, "ctr", 0, 1); err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(t0)
	})
	s.Run()
	want := prof.SpikeDelay + driver.DefaultCostModel().RegWrite
	if elapsed != want {
		t.Fatalf("spiked op took %v, want %v", elapsed, want)
	}
	if inj.FaultStats().InjectedSpikes != 1 {
		t.Fatalf("InjectedSpikes = %d", inj.FaultStats().InjectedSpikes)
	}
}

func TestPartialBatch(t *testing.T) {
	s := sim.New(7)
	prof := Profile{Name: "partial", PartialBatchRate: 1.0}
	inj := Wrap(s, testChannel(t, s), prof, 1)
	reqs := []ReadReq{{Reg: "ctr", Lo: 0, Hi: 8}, {Reg: "ctr", Lo: 8, Hi: 16}, {Reg: "ctr", Lo: 16, Hi: 24}}
	s.Spawn("cp", func(p *sim.Proc) {
		vals, err := inj.BatchRead(p, reqs)
		if !driver.IsTransient(err) {
			t.Errorf("partial batch: err = %v, want transient", err)
		}
		if vals != nil {
			t.Errorf("aborted batch returned values: %v", vals)
		}
		// Single-range batches cannot abort partway.
		if _, err := inj.BatchRead(p, reqs[:1]); err != nil {
			t.Errorf("single-range batch: %v", err)
		}
	})
	s.Run()
	st := inj.FaultStats()
	if st.PartialBatches != 1 {
		t.Fatalf("PartialBatches = %d, want 1", st.PartialBatches)
	}
	// The aborted prefix paid channel time: the inner driver saw a read.
	if inj.Stats().RegReads != 2 {
		t.Fatalf("inner RegReads = %d, want 2 (aborted prefix + single)", inj.Stats().RegReads)
	}
}

func TestStuckChannelWindow(t *testing.T) {
	s := sim.New(7)
	prof := StuckChannel()
	inj := Wrap(s, testChannel(t, s), prof, 1)
	var waited time.Duration
	s.Spawn("cp", func(p *sim.Proc) {
		// Jump into the middle of the first stuck window.
		p.Sleep(prof.StuckEvery + prof.StuckFor/2)
		t0 := p.Now()
		if err := inj.RegWrite(p, "ctr", 0, 1); err != nil {
			t.Error(err)
		}
		waited = p.Now().Sub(t0)
	})
	s.Run()
	want := prof.StuckFor/2 + driver.DefaultCostModel().RegWrite
	if waited != want {
		t.Fatalf("op in stuck window took %v, want %v", waited, want)
	}
	st := inj.FaultStats()
	if st.StuckWaits != 1 || st.StuckTime != prof.StuckFor/2 {
		t.Fatalf("stuck stats = %+v", st)
	}
}

func TestInjectedErrorClassification(t *testing.T) {
	s := sim.New(7)
	prof := Profile{Name: "always", ErrorRate: 1.0}
	inj := Wrap(s, testChannel(t, s), prof, 1)
	s.Spawn("cp", func(p *sim.Proc) {
		_, err := inj.AddEntry(p, "fw", rmt.Entry{Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "fwd", Data: []uint64{2}})
		if !driver.IsTransient(err) {
			t.Errorf("injected failure not transient: %v", err)
		}
		if errors.Is(err, rmt.ErrUnknownTable) {
			t.Errorf("injected failure claims a switch-level cause: %v", err)
		}
		// The switch was never touched.
		entries, eerr := inj.Switch().Entries("fw")
		if eerr != nil {
			t.Error(eerr)
		} else if len(entries) != 0 {
			t.Errorf("failed AddEntry mutated the switch: %d entries", len(entries))
		}
	})
	s.Run()
}
