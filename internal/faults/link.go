package faults

import (
	"time"

	"repro/internal/sim"
)

// LinkProfile configures the fault model of one control-channel link
// (netsim.Link): message-level loss, duplication, reordering, delay
// jitter, and periodic partition windows. It is the channel-level
// counterpart of Profile, which perturbs *operations*: a Profile below
// the channel composes with a LinkProfile on the channel, and the chaos
// suite sweeps both. The zero value injects nothing.
//
// All probabilities are per message per direction; all windows are
// measured on the shared virtual clock, so a given (profile, seed) pair
// reproduces the identical delivery schedule on every run.
type LinkProfile struct {
	// Name labels the profile in stats output and sweep tables.
	Name string

	// Loss is the probability a message is silently dropped at send time.
	Loss float64
	// Dup is the probability a message is delivered twice; the duplicate
	// arrives up to DupDelay after the original (uniform).
	Dup      float64
	DupDelay time.Duration
	// Reorder is the probability a message is held back by an extra
	// delay of up to ReorderDelay (uniform, on top of base delay and
	// jitter), letting later sends overtake it — and letting a message
	// sent before a partition window land after the heal.
	Reorder      float64
	ReorderDelay time.Duration
	// Jitter adds a uniform [0, Jitter) component to every delivery
	// delay.
	Jitter time.Duration

	// PartitionEvery/PartitionFor open a periodic partition window:
	// every PartitionEvery of virtual time the link is cut for
	// PartitionFor — messages sent or due to arrive inside the window
	// are dropped. PartitionEvery == 0 disables; manual partitions are
	// still available via netsim.Link.SetPartitioned.
	PartitionEvery time.Duration
	PartitionFor   time.Duration
}

// Partitioned reports whether the profile's periodic schedule has the
// link cut at time t. The window opens after each PartitionEvery of up
// time: [E, E+F), [2E+F, 2E+2F), ...
func (lp LinkProfile) Partitioned(t sim.Time) bool {
	if lp.PartitionEvery <= 0 || lp.PartitionFor <= 0 {
		return false
	}
	period := lp.PartitionEvery + lp.PartitionFor
	phase := time.Duration(int64(t) % int64(period))
	return phase >= lp.PartitionEvery
}

// MaxSkew bounds how long after its send instant a message (or its
// duplicate) can still arrive: base delay aside, the profile can add at
// most Jitter + ReorderDelay + DupDelay. Reliability layers use this as
// the quarantine period after abandoning an un-acked mutation — once it
// has elapsed, no stale copy is still in flight (the virtual-clock
// analogue of TCP's maximum segment lifetime).
func (lp LinkProfile) MaxSkew() time.Duration {
	return lp.Jitter + lp.ReorderDelay + lp.DupDelay
}

// Predefined link profiles, one per channel fault class plus the
// composition, mirroring the Profiles() operation-fault sweep.

// LinkNone injects nothing (control profile).
func LinkNone() LinkProfile { return LinkProfile{Name: "none"} }

// LinkLossy drops 2% of messages in each direction.
func LinkLossy() LinkProfile { return LinkProfile{Name: "lossy", Loss: 0.02} }

// LinkDup duplicates 5% of messages, the duplicate trailing by up to
// 4µs — past a typical retransmission timeout, so duplicates interleave
// with retransmits.
func LinkDup() LinkProfile {
	return LinkProfile{Name: "dup", Dup: 0.05, DupDelay: 4 * time.Microsecond}
}

// LinkReorder holds back 10% of messages by up to 6µs, enough for
// several later sends to overtake.
func LinkReorder() LinkProfile {
	return LinkProfile{Name: "reorder", Reorder: 0.10, ReorderDelay: 6 * time.Microsecond}
}

// LinkJitter smears every delivery by up to 2µs — on the order of
// several base RTTs, so responses routinely cross requests.
func LinkJitter() LinkProfile {
	return LinkProfile{Name: "jitter", Jitter: 2 * time.Microsecond}
}

// LinkPartition cuts the channel for 150µs out of every 600µs.
func LinkPartition() LinkProfile {
	return LinkProfile{Name: "partition", PartitionEvery: 450 * time.Microsecond, PartitionFor: 150 * time.Microsecond}
}

// LinkChaos composes every channel fault at once: loss, duplication,
// reordering, jitter, and partitions.
func LinkChaos() LinkProfile {
	return LinkProfile{
		Name: "chaos",
		Loss: 0.02,
		Dup:  0.03, DupDelay: 4 * time.Microsecond,
		Reorder: 0.05, ReorderDelay: 6 * time.Microsecond,
		Jitter:         time.Microsecond,
		PartitionEvery: 600 * time.Microsecond, PartitionFor: 100 * time.Microsecond,
	}
}

// LinkProfiles returns the channel chaos sweep: every predefined link
// profile, control first, composition last.
func LinkProfiles() []LinkProfile {
	return []LinkProfile{
		LinkNone(), LinkLossy(), LinkDup(), LinkReorder(), LinkJitter(),
		LinkPartition(), LinkChaos(),
	}
}
