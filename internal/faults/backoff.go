package faults

import (
	"math/rand"
	"time"
)

// Backoff computes full-jitter exponential retry delays: attempt k
// sleeps a uniform random duration in [0, min(Max, Base<<k)). Compared
// to the classic "backoff ± small jitter" scheme, full jitter spreads
// concurrent retriers across the whole window, so sessions that all
// tripped over the same channel fault (a shared stuck window, a
// partition heal) do not re-arrive in lockstep and re-collide — the
// retransmit-storm failure mode of synchronized backoff.
//
// The delays are drawn from the caller-supplied RNG, so a seeded source
// makes every schedule reproducible, and two sessions with independent
// streams decorrelate (see TestBackoffDecorrelatesSessions).
type Backoff struct {
	// Base is the first attempt's window ceiling; it doubles per attempt.
	Base time.Duration
	// Max caps the window ceiling.
	Max time.Duration

	rng  *rand.Rand
	ceil time.Duration
}

// NewBackoff returns a full-jitter backoff drawing from rng. Base and
// max are clamped to at least 1ns so Next always makes progress.
func NewBackoff(rng *rand.Rand, base, max time.Duration) *Backoff {
	if base <= 0 {
		base = time.Nanosecond
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: rng, ceil: base}
}

// Next returns the delay before the next retry and widens the window.
// The draw is uniform in [0, ceil]; a zero draw is valid (retry
// immediately) — at-most-once protection belongs to the layer below,
// not to the pacing of retries.
func (b *Backoff) Next() time.Duration {
	d := time.Duration(b.rng.Int63n(int64(b.ceil) + 1))
	if b.ceil *= 2; b.ceil > b.Max {
		b.ceil = b.Max
	}
	return d
}

// Ceil exposes the current window ceiling (the next Next draws below
// it) — diagnostics and tests.
func (b *Backoff) Ceil() time.Duration { return b.ceil }

// Reset shrinks the window back to Base, for callers that reuse one
// Backoff across independent operations.
func (b *Backoff) Reset() { b.ceil = b.Base }
