// Package faults is a deterministic fault-injection layer for the
// switch driver channel.
//
// Real Tofino driver stacks fail in ways the calibrated cost model of
// internal/driver never does: RPCs time out under daemon load, PCIe
// transactions stall, batched DMA reads abort partway, and the whole
// channel can wedge for milliseconds while an unrelated component holds
// the device lock. The Mantis agent's robustness machinery (retries,
// rollback, watchdog, degradation — internal/core) exists to survive
// exactly these conditions, and this package exists to provoke them on
// demand.
//
// An Injector wraps any driver.Channel and presents the same method
// set, so it drops between the agent and the driver without either
// noticing. Fault decisions are keyed off the simulation's virtual
// clock and the injector's own seeded RNG, so a given (profile, seed)
// pair reproduces the identical fault schedule on every run — a failing
// chaos test replays exactly.
//
// Injected failures are "clean": a failed operation consumes channel
// time but never mutates switch state, so there is no ambiguity about
// whether a timed-out update landed. The ambiguous case — a message
// channel where the request or only its acknowledgment may be lost —
// is modeled separately: LinkProfile (this package) configures the
// message-level faults, netsim.Link carries them, and internal/ctlchan
// supplies the sequence-numbered idempotency tokens and resync audit
// that put at-most-once semantics back on top. An Injector below the
// channel composes with a LinkProfile on it.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// Profile configures which faults an Injector produces and how often.
// The zero value injects nothing.
type Profile struct {
	// Name labels the profile in stats output and sweep tables.
	Name string

	// ErrorRate is the per-operation probability of a transient failure:
	// the op consumes FailCost of channel time and returns an error
	// wrapping driver.ErrTransient without touching the switch.
	ErrorRate float64
	// ErrorBurst makes each triggered failure repeat for the next
	// ErrorBurst-1 operations too (timeouts cluster: a wedged daemon
	// fails every request until it recovers). 0 or 1 = single failures.
	ErrorBurst int

	// SpikeRate is the per-operation probability of a latency spike:
	// the op succeeds but takes an extra SpikeDelay of channel time.
	SpikeRate float64
	// SpikeDelay is the added latency of one spike.
	SpikeDelay time.Duration

	// PartialBatchRate is the per-BatchRead probability that the
	// transaction aborts after reading a strict prefix of its ranges.
	// The prefix's channel time is paid; no values are returned.
	PartialBatchRate float64

	// StuckEvery/StuckFor open a periodic stuck-channel window: every
	// StuckEvery of virtual time the channel wedges for StuckFor, and
	// operations issued inside the window block until it closes before
	// proceeding. StuckEvery == 0 disables.
	StuckEvery time.Duration
	StuckFor   time.Duration

	// FailCost is the channel time a transiently failed operation
	// consumes (the timeout the caller waited out). Defaults to 2µs.
	FailCost time.Duration

	// CrashAtOp, when > 0, halts the calling process immediately before
	// the Nth matching operation observed while injection is enabled
	// (1-based) — the model of a control-plane process crash: the op
	// never executes, everything already written stays exactly as
	// written, and the process never touches the channel again. Unlike
	// the transient faults above, a crash is not survivable in-process;
	// it exists to exercise the journal/takeover machinery
	// (internal/journal, core.Recover). The injector must wrap the
	// crashing client's own channel (e.g. its ctlplane session), not a
	// layer shared with other clients.
	CrashAtOp int
	// CrashOp restricts the op counting to one named channel operation
	// ("AddEntry", "ModifyEntry", "SetDefaultAction", "BatchRead", ...);
	// empty counts every operation. Combined with CrashAtOp this pins
	// the crash to a protocol phase of a known scenario (e.g. the 3rd
	// ModifyEntry after enable = the first post-flip mirror write in the
	// two-table chaos workload).
	CrashOp string
}

// DefaultFailCost is the channel time consumed by an injected failure
// when Profile.FailCost is zero.
const DefaultFailCost = 2 * time.Microsecond

// Predefined profiles, one per fault class the chaos suite exercises.

// None injects nothing (control profile).
func None() Profile { return Profile{Name: "none"} }

// TransientErrors makes ~5% of operations fail transiently, in bursts
// of up to 2.
func TransientErrors() Profile {
	return Profile{Name: "transient", ErrorRate: 0.05, ErrorBurst: 2}
}

// LatencySpikes adds a 200µs stall to ~5% of operations — an order of
// magnitude above the per-op cost, enough to blow an iteration budget.
func LatencySpikes() Profile {
	return Profile{Name: "latency", SpikeRate: 0.05, SpikeDelay: 200 * time.Microsecond}
}

// PartialBatches aborts ~10% of batched reads partway and sprinkles a
// low rate of plain transient failures on top.
func PartialBatches() Profile {
	return Profile{Name: "partial-batch", PartialBatchRate: 0.10, ErrorRate: 0.01}
}

// StuckChannel wedges the channel for 300µs out of every 2ms — long
// enough to trip a per-iteration watchdog set below 300µs.
func StuckChannel() Profile {
	return Profile{Name: "stuck", StuckEvery: 2 * time.Millisecond, StuckFor: 300 * time.Microsecond}
}

// The crash profiles pin a process crash to one phase of the two-table
// chaos workload's dialogue iteration, whose driver-op sequence per
// committing iteration is: SetDefaultAction (mv flip), BatchRead
// (poll), ModifyEntry ×2 (prepares), SetDefaultAction (vv flip),
// ModifyEntry ×2 (mirrors). The op counts are relative to the moment
// injection is enabled; the failover rig additionally sweeps every op
// index, so these named profiles are the reproducible landmarks, not
// the only crash points tested.

// CrashMidPrepare halts the agent between the two shadow prepares of a
// commit: one table's shadow carries the new value, the other the old —
// the canonical torn-prepare state recovery must roll back.
func CrashMidPrepare() Profile {
	return Profile{Name: "crash-prepare", CrashOp: "ModifyEntry", CrashAtOp: 2}
}

// CrashAtCommit halts the agent immediately before a master
// default-action write (an mv or vv flip): the flip never executes, so
// recovery must classify the iteration as never committed.
func CrashAtCommit() Profile {
	return Profile{Name: "crash-commit", CrashOp: "SetDefaultAction", CrashAtOp: 2}
}

// CrashMidMirror halts the agent after the vv flip but before the
// mirror writes complete: the change is committed and packet-visible,
// and recovery must roll the unfinished shadow copies forward.
func CrashMidMirror() Profile {
	return Profile{Name: "crash-mirror", CrashOp: "ModifyEntry", CrashAtOp: 3}
}

// CrashEnabled reports whether the profile halts the process at an
// injection point (such profiles need the failover rig, not the
// in-process recovery loop).
func (pr Profile) CrashEnabled() bool { return pr.CrashAtOp > 0 }

// Profiles returns the chaos-suite sweep: every predefined fault
// profile, control first. The crash profiles come last; runners that
// cannot host a standby takeover should branch on CrashEnabled.
func Profiles() []Profile {
	return []Profile{
		None(), TransientErrors(), LatencySpikes(), PartialBatches(), StuckChannel(),
		CrashMidPrepare(), CrashAtCommit(), CrashMidMirror(),
	}
}

// Stats counts injected faults.
type Stats struct {
	// Ops is the number of operations that entered the injector.
	Ops uint64
	// InjectedErrors counts transiently failed operations.
	InjectedErrors uint64
	// InjectedSpikes counts latency spikes.
	InjectedSpikes uint64
	// PartialBatches counts batched reads aborted partway.
	PartialBatches uint64
	// StuckWaits counts operations that blocked on a stuck window.
	StuckWaits uint64
	// StuckTime accumulates time operations spent blocked on stuck
	// windows.
	StuckTime time.Duration
	// Crashes counts injected process crashes (0 or 1 per injector).
	Crashes uint64
}

// Injector wraps a driver.Channel and injects faults per its Profile.
// It implements driver.Channel itself, so it stacks.
type Injector struct {
	inner   driver.Channel
	sim     *sim.Simulator
	prof    Profile
	rng     *rand.Rand
	enabled bool

	// burstLeft counts remaining forced failures of the current burst.
	burstLeft int

	// crashSeen counts matching ops toward CrashAtOp; crashed/crashedAt
	// record the injected process crash.
	crashSeen int
	crashed   bool
	crashedAt sim.Time

	stats Stats
}

var _ driver.Channel = (*Injector)(nil)

// Wrap interposes an Injector between a control-plane client and inner.
// The injector draws fault decisions from its own RNG seeded with seed,
// independent of the simulator's stream, so adding or removing fault
// injection never perturbs workload randomness.
func Wrap(s *sim.Simulator, inner driver.Channel, prof Profile, seed int64) *Injector {
	return &Injector{
		inner:   inner,
		sim:     s,
		prof:    prof,
		rng:     rand.New(rand.NewSource(seed)),
		enabled: true,
	}
}

// SetEnabled toggles injection at runtime (e.g. to confine faults to a
// window of an experiment). Disabled, the injector is a transparent
// pass-through; the RNG does not advance.
func (f *Injector) SetEnabled(on bool) { f.enabled = on }

// Profile returns the active fault profile.
func (f *Injector) Profile() Profile { return f.prof }

// FaultStats returns a copy of the injection counters. (Named to keep
// Stats() free for the driver.Channel pass-through.)
func (f *Injector) FaultStats() Stats { return f.stats }

// failCost returns the channel time one injected failure consumes.
func (f *Injector) failCost() time.Duration {
	if f.prof.FailCost > 0 {
		return f.prof.FailCost
	}
	return DefaultFailCost
}

// stall blocks p until the current stuck window (if any) closes.
func (f *Injector) stall(p *sim.Proc) {
	if f.prof.StuckEvery <= 0 || f.prof.StuckFor <= 0 {
		return
	}
	period := f.prof.StuckEvery + f.prof.StuckFor
	phase := time.Duration(int64(p.Now()) % int64(period))
	if phase < f.prof.StuckEvery {
		return // channel currently responsive
	}
	wait := period - phase
	f.stats.StuckWaits++
	f.stats.StuckTime += wait
	p.Sleep(wait)
}

// inject runs the common fault prologue for one operation. A non-nil
// return is the injected transient error; the underlying driver must
// not be called.
func (f *Injector) inject(p *sim.Proc, op string) error {
	f.stats.Ops++
	if !f.enabled {
		return nil
	}
	if f.crashed {
		// A crashed process never touches the channel again; any process
		// that reaches a dead injector halts too (there is exactly one
		// client above a crash injector by contract).
		f.halt(p)
	}
	if f.prof.CrashAtOp > 0 && (f.prof.CrashOp == "" || f.prof.CrashOp == op) {
		f.crashSeen++
		if f.crashSeen == f.prof.CrashAtOp {
			f.crashed = true
			f.crashedAt = p.Now()
			f.stats.Crashes++
			f.halt(p)
		}
	}
	f.stall(p)
	if f.prof.SpikeRate > 0 && f.rng.Float64() < f.prof.SpikeRate {
		f.stats.InjectedSpikes++
		p.Sleep(f.prof.SpikeDelay)
	}
	if f.burstLeft > 0 {
		f.burstLeft--
		return f.fail(p, op)
	}
	if f.prof.ErrorRate > 0 && f.rng.Float64() < f.prof.ErrorRate {
		if f.prof.ErrorBurst > 1 {
			f.burstLeft = f.prof.ErrorBurst - 1
		}
		return f.fail(p, op)
	}
	return nil
}

// halt parks the calling process forever — the simulation's model of a
// process crash (see sim.Proc.Park: the goroutine leaks by design). The
// loop re-parks against stray Unparks so a crashed process can never
// resume.
func (f *Injector) halt(p *sim.Proc) {
	for {
		p.Park()
	}
}

// Crashed reports whether the injector's crash point fired.
func (f *Injector) Crashed() bool { return f.crashed }

// CrashedAt returns the virtual time of the injected crash (0 if none
// fired yet).
func (f *Injector) CrashedAt() sim.Time { return f.crashedAt }

// fail consumes the timeout cost and returns a transient error.
func (f *Injector) fail(p *sim.Proc, op string) error {
	f.stats.InjectedErrors++
	p.Sleep(f.failCost())
	return fmt.Errorf("faults: injected %s failure at %v: %w", op, p.Now(), driver.ErrTransient)
}

// ---- driver.Channel implementation ----

// AddEntry forwards to the wrapped channel unless a fault fires.
func (f *Injector) AddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error) {
	if err := f.inject(p, "AddEntry"); err != nil {
		return 0, err
	}
	return f.inner.AddEntry(p, table, e)
}

// ModifyEntry forwards to the wrapped channel unless a fault fires.
func (f *Injector) ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	if err := f.inject(p, "ModifyEntry"); err != nil {
		return err
	}
	return f.inner.ModifyEntry(p, table, h, action, data)
}

// DeleteEntry forwards to the wrapped channel unless a fault fires.
func (f *Injector) DeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error {
	if err := f.inject(p, "DeleteEntry"); err != nil {
		return err
	}
	return f.inner.DeleteEntry(p, table, h)
}

// SetDefaultAction forwards to the wrapped channel unless a fault fires.
func (f *Injector) SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	if err := f.inject(p, "SetDefaultAction"); err != nil {
		return err
	}
	return f.inner.SetDefaultAction(p, table, call)
}

// SetHashSeed forwards to the wrapped channel unless a fault fires.
func (f *Injector) SetHashSeed(p *sim.Proc, name string, seed uint64) error {
	if err := f.inject(p, "SetHashSeed"); err != nil {
		return err
	}
	return f.inner.SetHashSeed(p, name, seed)
}

// RegWrite forwards to the wrapped channel unless a fault fires.
func (f *Injector) RegWrite(p *sim.Proc, reg string, idx uint64, v uint64) error {
	if err := f.inject(p, "RegWrite"); err != nil {
		return err
	}
	return f.inner.RegWrite(p, reg, idx, v)
}

// RegRead forwards to the wrapped channel unless a fault fires.
func (f *Injector) RegRead(p *sim.Proc, reg string, idx uint64) (uint64, error) {
	if err := f.inject(p, "RegRead"); err != nil {
		return 0, err
	}
	return f.inner.RegRead(p, reg, idx)
}

// BatchRead forwards to the wrapped channel; besides the common faults
// it can abort partway, paying for a prefix of the ranges and
// returning no values.
func (f *Injector) BatchRead(p *sim.Proc, reqs []ReadReq) ([][]uint64, error) {
	if err := f.inject(p, "BatchRead"); err != nil {
		return nil, err
	}
	if f.enabled && f.prof.PartialBatchRate > 0 && len(reqs) > 1 &&
		f.rng.Float64() < f.prof.PartialBatchRate {
		f.stats.PartialBatches++
		cut := 1 + f.rng.Intn(len(reqs)-1)
		if _, err := f.inner.BatchRead(p, reqs[:cut]); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("faults: batch read aborted after %d/%d ranges at %v: %w",
			cut, len(reqs), p.Now(), driver.ErrTransient)
	}
	return f.inner.BatchRead(p, reqs)
}

// UnbatchedRead issues the requests one transaction at a time through
// the injector, so each can fault independently (the unbatched ablation
// under faults).
func (f *Injector) UnbatchedRead(p *sim.Proc, reqs []ReadReq) ([][]uint64, error) {
	out := make([][]uint64, len(reqs))
	for i, req := range reqs {
		vals, err := f.BatchRead(p, []ReadReq{req})
		if err != nil {
			return nil, err
		}
		out[i] = vals[0]
	}
	return out, nil
}

// ReadEntries forwards to the wrapped channel unless a fault fires
// (the recovery audit path is as fallible as any other operation).
func (f *Injector) ReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error) {
	if err := f.inject(p, "ReadEntries"); err != nil {
		return nil, err
	}
	return f.inner.ReadEntries(p, table)
}

// ReadDefaultAction forwards to the wrapped channel unless a fault
// fires.
func (f *Injector) ReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error) {
	if err := f.inject(p, "ReadDefaultAction"); err != nil {
		return nil, err
	}
	return f.inner.ReadDefaultAction(p, table)
}

// Memoize passes through (prologue metadata precomputation is local to
// the control plane and cannot fault).
func (f *Injector) Memoize(table string, handle rmt.EntryHandle) { f.inner.Memoize(table, handle) }

// Switch exposes the wrapped channel's switch.
func (f *Injector) Switch() *rmt.Switch { return f.inner.Switch() }

// Stats returns the wrapped channel's driver counters.
func (f *Injector) Stats() driver.Stats { return f.inner.Stats() }

// ReadReq aliases the driver's batched-read request type for callers
// importing only this package.
type ReadReq = driver.ReadReq
