package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// This file implements the agent's fault-tolerance layer: per-operation
// retries with exponential backoff, a per-iteration watchdog deadline,
// transactional rollback of half-applied three-phase updates, and
// graceful degradation to the last checkpointed measurement snapshot.
//
// The recovery model leans on two properties of the stack below:
//
//   - Transient channel failures (driver.ErrTransient) never apply the
//     operation, so reissuing an identical request is always safe.
//   - Shadow (vv^1) table copies are invisible to the data plane until
//     the master flip, so a half-applied prepare or mirror phase is
//     never observable — it only has to be cleaned up (or completed)
//     before the *next* flip.
//
// Together these give a simple transactional discipline: an iteration
// either commits (master flip succeeded) or is abandoned (everything it
// staged is undone and the loop continues). The master flip itself is a
// single driver operation, so there is no window in which vv is
// half-flipped.

// Sentinel errors of the dialogue loop's recovery layer.
var (
	// ErrWatchdog marks an iteration abandoned because its deadline
	// (RecoveryOptions.IterationDeadline) passed — typically a stuck
	// driver channel. The iteration's staged updates are rolled back and
	// the loop continues.
	ErrWatchdog = errors.New("core: iteration watchdog deadline exceeded")
	// ErrRetriesExhausted marks a driver operation that kept failing
	// transiently after the configured retry attempts/budget.
	ErrRetriesExhausted = errors.New("core: transient-failure retries exhausted")
	// ErrStopped marks an iteration cut short because Stop was
	// requested; the agent exits cleanly (Err() stays nil).
	ErrStopped = errors.New("core: agent stop requested")
)

// RecoveryOptions configures how the dialogue loop survives transient
// driver-channel failures. The zero value disables all recovery: any
// driver error is fatal and stops the agent, the pre-robustness
// behavior.
type RecoveryOptions struct {
	// MaxAttempts is the number of tries per driver operation (1 = no
	// retry). Only failures wrapping driver.ErrTransient are retried;
	// fatal errors (unknown table, range violation) propagate at once.
	MaxAttempts int
	// RetryBackoff seeds the full-jitter exponential backoff between
	// retries (faults.Backoff): retry k sleeps uniform in
	// [0, min(MaxBackoff, RetryBackoff<<k)], drawn deterministically
	// from the simulation RNG. Zero defaults to 2µs, matching the scale
	// of one driver op.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero defaults to 64µs.
	MaxBackoff time.Duration
	// RetryBudget bounds the total retries spent inside one dialogue
	// iteration; past it the iteration is abandoned rather than retried
	// op by op. Zero = no per-iteration bound.
	RetryBudget int
	// IterationDeadline is the watchdog: an iteration that has not
	// finished within this much virtual time is abandoned at the next
	// operation boundary, its staged updates rolled back. Zero = off.
	// (The simulator cannot preempt a process blocked inside a driver
	// call, so the watchdog is cooperative: it fires when the stuck
	// operation finally returns, bounding damage to one op.)
	IterationDeadline time.Duration
	// DegradeOnPollFailure lets a reaction run on its previous
	// checkpointed measurement snapshot when polling fails past the
	// retry limits, instead of abandoning the iteration. Reactions go
	// briefly stale rather than silent — the paper's measurement
	// checkpoint (Fig. 9) is exactly a consistent snapshot, so reusing
	// the last one preserves serializability.
	DegradeOnPollFailure bool
	// StalenessBudget bounds how old a degraded reaction's snapshot may
	// be: once the last successful poll is further in the past than
	// this, the iteration is abandoned instead of reacting to ancient
	// data. Zero = no bound (a reaction degrades indefinitely).
	StalenessBudget time.Duration
	// ChannelRTT, when set with WatchdogRTTs, scales the iteration
	// watchdog to the control channel: an explicit IterationDeadline
	// wins, otherwise the deadline is WatchdogRTTs * ChannelRTT. A
	// fixed wall deadline tuned for an in-process channel trips
	// constantly once every driver op pays a real (and possibly
	// retransmitted) round trip; scaling by RTT keeps the watchdog
	// meaningful across channel speeds.
	ChannelRTT   time.Duration
	WatchdogRTTs int
}

// DefaultRecovery returns the recovery configuration used by cmd/mantisd
// and the chaos suite: retries with backoff, a 2ms watchdog, and poll
// degradation.
func DefaultRecovery() RecoveryOptions {
	return RecoveryOptions{
		MaxAttempts:          5,
		RetryBackoff:         2 * time.Microsecond,
		MaxBackoff:           64 * time.Microsecond,
		RetryBudget:          64,
		IterationDeadline:    2 * time.Millisecond,
		DegradeOnPollFailure: true,
	}
}

// RecoveryForChannel returns DefaultRecovery rescaled to a message
// channel with the given fault-free round trip time: the watchdog
// becomes RTT-proportional (DefaultWatchdogRTTs round trips) instead of
// a fixed wall deadline, and the retry backoff starts at one RTT.
func RecoveryForChannel(rtt time.Duration) RecoveryOptions {
	r := DefaultRecovery()
	if rtt > 0 {
		r.IterationDeadline = 0
		r.ChannelRTT = rtt
		r.WatchdogRTTs = DefaultWatchdogRTTs
		r.RetryBackoff = rtt
		if r.MaxBackoff < 32*rtt {
			r.MaxBackoff = 32 * rtt
		}
	}
	return r
}

// DefaultWatchdogRTTs is the RTT-scaled watchdog budget: an iteration
// gets this many channel round trips before it is abandoned. Sized for
// the chaos suite's workloads (tens of ops per iteration, each possibly
// retransmitted several times).
const DefaultWatchdogRTTs = 400

// watchdogDeadline computes the iteration watchdog cutoff starting at
// start: an explicit IterationDeadline wins; otherwise WatchdogRTTs
// channel round trips; otherwise no watchdog (0).
func (r RecoveryOptions) watchdogDeadline(start sim.Time) sim.Time {
	if r.IterationDeadline > 0 {
		return start.Add(r.IterationDeadline)
	}
	if r.ChannelRTT > 0 && r.WatchdogRTTs > 0 {
		return start.Add(time.Duration(r.WatchdogRTTs) * r.ChannelRTT)
	}
	return 0
}

// Enabled reports whether any recovery behavior is configured.
func (r RecoveryOptions) Enabled() bool {
	return r.MaxAttempts > 1 || r.IterationDeadline > 0 || r.DegradeOnPollFailure ||
		(r.ChannelRTT > 0 && r.WatchdogRTTs > 0)
}

// chanOp is one raw driver-channel operation queued for undo or repair.
// The closure must be resumable: executing it again after a partial
// failure continues where it left off.
type chanOp struct {
	desc string
	fn   func(p *sim.Proc) error
}

// recoverable reports whether err abandons the iteration (rollback and
// continue) rather than killing the agent. A degraded channel
// (driver.ErrChannelDegraded) is recoverable but additionally marks the
// agent for a resynchronizing audit before its next iteration, because
// the abandoned operation may have applied switch-side.
func (a *Agent) recoverable(err error) bool {
	if !a.opts.Recovery.Enabled() {
		return false
	}
	return errors.Is(err, ErrWatchdog) || errors.Is(err, ErrRetriesExhausted) ||
		driver.IsTransient(err) || errors.Is(err, driver.ErrChannelDegraded)
}

// drvOp runs one driver operation with the retry policy: transient
// failures back off exponentially (with jitter) and reissue, up to
// MaxAttempts per op and RetryBudget per iteration, never past the
// iteration deadline or a stop request.
func (a *Agent) drvOp(p *sim.Proc, op string, fn func() error) error {
	rec := a.opts.Recovery
	attempts := rec.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := rec.RetryBackoff
	if backoff <= 0 {
		backoff = 2 * time.Microsecond
	}
	maxBackoff := rec.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 64 * time.Microsecond
	}
	// The backoff state is built lazily, only once a retry is actually
	// needed: the fault-free steady-state path through drvOp stays
	// allocation-free.
	var bo *faults.Backoff
	for attempt := 1; ; attempt++ {
		if a.iterDeadline > 0 && p.Now() >= a.iterDeadline {
			return fmt.Errorf("%s: %w", op, ErrWatchdog)
		}
		err := fn()
		if err == nil {
			return nil
		}
		if !driver.IsTransient(err) {
			return fmt.Errorf("%s: %w", op, err)
		}
		if a.stopRequested() {
			return fmt.Errorf("%s: %w (last transient: %v)", op, ErrStopped, err)
		}
		if a.iterDeadline > 0 && p.Now() >= a.iterDeadline {
			return fmt.Errorf("%s: %w (last transient: %v)", op, ErrWatchdog, err)
		}
		if attempt >= attempts {
			return fmt.Errorf("%s: %d attempts: %w: %w", op, attempt, ErrRetriesExhausted, err)
		}
		if rec.RetryBudget > 0 && a.iterRetries >= rec.RetryBudget {
			return fmt.Errorf("%s: iteration retry budget %d spent: %w: %w", op, rec.RetryBudget, ErrRetriesExhausted, err)
		}
		a.iterRetries++
		a.stats.Retries++
		// Full-jitter backoff (faults.Backoff): agents that tripped over
		// the same fault window retry decorrelated instead of in lockstep.
		if bo == nil {
			bo = faults.NewBackoff(a.sim.Rand(), backoff, maxBackoff)
		}
		p.Sleep(bo.Next())
	}
}

// ---- Retry-wrapped driver operations ----
//
// Every driver call the agent makes goes through one of these, so the
// retry policy is applied uniformly: prologue, measurement polls,
// three-phase prepares, the master flip, mirrors, undos and repairs.

func (a *Agent) drvAddEntry(p *sim.Proc, table string, e rmt.Entry) (rmt.EntryHandle, error) {
	var h rmt.EntryHandle
	err := a.drvOp(p, "AddEntry "+table, func() error {
		var err error
		h, err = a.drv.AddEntry(p, table, e)
		return err
	})
	return h, err
}

func (a *Agent) drvModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	return a.drvOp(p, "ModifyEntry "+table, func() error {
		return a.drv.ModifyEntry(p, table, h, action, data)
	})
}

func (a *Agent) drvDeleteEntry(p *sim.Proc, table string, h rmt.EntryHandle) error {
	return a.drvOp(p, "DeleteEntry "+table, func() error {
		return a.drv.DeleteEntry(p, table, h)
	})
}

func (a *Agent) drvSetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	return a.drvOp(p, "SetDefaultAction "+table, func() error {
		return a.drv.SetDefaultAction(p, table, call)
	})
}

func (a *Agent) drvSetHashSeed(p *sim.Proc, name string, seed uint64) error {
	return a.drvOp(p, "SetHashSeed "+name, func() error {
		return a.drv.SetHashSeed(p, name, seed)
	})
}

func (a *Agent) drvBatchRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	var vals [][]uint64
	err := a.drvOp(p, "BatchRead", func() error {
		var err error
		vals, err = a.drv.BatchRead(p, reqs)
		return err
	})
	return vals, err
}

func (a *Agent) drvReadEntries(p *sim.Proc, table string) ([]rmt.Entry, error) {
	var es []rmt.Entry
	err := a.drvOp(p, "ReadEntries "+table, func() error {
		var err error
		es, err = a.drv.ReadEntries(p, table)
		return err
	})
	return es, err
}

func (a *Agent) drvReadDefaultAction(p *sim.Proc, table string) (*p4.ActionCall, error) {
	var call *p4.ActionCall
	err := a.drvOp(p, "ReadDefaultAction "+table, func() error {
		var err error
		call, err = a.drv.ReadDefaultAction(p, table)
		return err
	})
	return call, err
}

func (a *Agent) drvUnbatchedRead(p *sim.Proc, reqs []driver.ReadReq) ([][]uint64, error) {
	var vals [][]uint64
	err := a.drvOp(p, "UnbatchedRead", func() error {
		var err error
		vals, err = a.drv.UnbatchedRead(p, reqs)
		return err
	})
	return vals, err
}

// ---- Rollback and repair ----

// queueRepair defers a shadow-side operation that could not complete
// now. Repairs drain (with retries) at the start of the next commit,
// before any flip — shadow copies must converge to the committed state
// before they can become primary, but until then their content is
// invisible to packets, so deferring is safe.
func (a *Agent) queueRepair(op chanOp) {
	a.pendingRepairs = append(a.pendingRepairs, op)
	a.stats.RepairOps++
}

// drainRepairs completes deferred shadow-side work. On failure the
// remaining repairs stay queued and the commit is abandoned (no flip
// happens over an unconverged shadow).
func (a *Agent) drainRepairs(p *sim.Proc) error {
	for len(a.pendingRepairs) > 0 {
		op := a.pendingRepairs[0]
		if err := a.drvOp(p, "repair: "+op.desc, func() error { return op.fn(p) }); err != nil {
			return err
		}
		a.pendingRepairs = a.pendingRepairs[1:]
	}
	return nil
}

// rollbackIteration reverts everything the abandoned iteration staged:
// pending malleable writes are dropped and shadow-entry prepares are
// undone (or queued as repairs if the channel is still failing). The
// committed configuration — what packets observe — was never touched,
// because vv only flips on a fully-successful commit.
func (a *Agent) rollbackIteration(p *sim.Proc) {
	// The iteration's deadline no longer applies; rollback gets a fresh
	// retry budget.
	a.iterDeadline = 0
	a.iterRetries = 0
	dirty := len(a.pendingMbl) > 0
	clear(a.pendingMbl)
	for _, tm := range a.tables {
		if tm.rollback(p) {
			dirty = true
		}
	}
	if dirty {
		a.stats.Rollbacks++
	}
}
