package core

import (
	"errors"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/driver"
	"repro/internal/packet"
	"repro/internal/rcl"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// NativeReaction is a reaction body written in Go instead of the
// embedded C-like language. It receives the same polled parameters and
// may stage the same malleable/table updates; the agent applies them
// with identical serializability guarantees.
type NativeReaction func(ctx *Ctx) error

// Ctx exposes one reaction invocation's polled parameters and staged
// update operations.
type Ctx struct {
	agent *Agent
	proc  *sim.Proc
	rxn   *runtimeReaction

	fields map[string]uint64
	regs   map[string][]uint64
}

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.proc.Now() }

// Proc returns the agent process (for advanced driver access).
func (c *Ctx) Proc() *sim.Proc { return c.proc }

// Field returns a polled ing/egr field parameter by its P4R name.
func (c *Ctx) Field(name string) uint64 { return c.fields[name] }

// Reg returns a polled register parameter: a slice of length hi+1 whose
// [lo..hi] cells hold the freshest serializable values.
func (c *Ctx) Reg(name string) []uint64 { return c.regs[name] }

// Mbl returns the visible value of a malleable (pending write from this
// iteration, else last committed).
func (c *Ctx) Mbl(name string) uint64 {
	if v, ok := c.agent.pendingMbl[name]; ok {
		return v
	}
	return c.agent.mblCache[name]
}

// SetMbl stages a write to a malleable value (or a malleable field's
// alt index); it commits atomically with the iteration's vv flip.
func (c *Ctx) SetMbl(name string, v uint64) error {
	return c.agent.stageMblWrite(name, v)
}

// Table returns a reaction-scoped handle of a malleable table whose
// operations participate in the three-phase protocol.
func (c *Ctx) Table(name string) (*RxnTable, error) {
	th, err := c.agent.Table(name)
	if err != nil {
		return nil, err
	}
	return &RxnTable{th: th, p: c.proc}, nil
}

// SetHashSeed reprograms a hash calculation's seed (used by the hash
// polarization use case). Hash seeds are not vv-protected.
func (c *Ctx) SetHashSeed(name string, seed uint64) error {
	return c.agent.drvSetHashSeed(c.proc, name, seed)
}

// RxnTable is a TableHandle bound to the reaction's process.
type RxnTable struct {
	th *TableHandle
	p  *sim.Proc
}

// AddEntry stages a user entry add.
func (t *RxnTable) AddEntry(e UserEntry) (UserHandle, error) { return t.th.AddEntry(t.p, e) }

// ModifyEntry stages a user entry modification.
func (t *RxnTable) ModifyEntry(h UserHandle, action string, data []uint64) error {
	return t.th.ModifyEntry(t.p, h, action, data)
}

// DeleteEntry stages a user entry removal.
func (t *RxnTable) DeleteEntry(h UserHandle) error { return t.th.DeleteEntry(t.p, h) }

// stageMblWrite validates and stages a malleable write.
func (a *Agent) stageMblWrite(name string, v uint64) error {
	if mv, ok := a.plan.MblValues[name]; ok {
		a.pendingMbl[name] = v & packet.Mask(mv.Width)
		return nil
	}
	if mf, ok := a.plan.MblFields[name]; ok {
		if v >= uint64(len(mf.Alts)) {
			return fmt.Errorf("core: malleable field %s: alt index %d out of range [0,%d)", name, v, len(mf.Alts))
		}
		a.pendingMbl[name] = v
		return nil
	}
	return fmt.Errorf("core: unknown malleable %q", name)
}

// ---- Measurement polling (§4.2, §5.2) ----

// regCacheState implements the timestamp-guarded cache that fixes the
// alternating-stale-read anomaly of §5.2: a checkpoint cell only
// replaces the cached value when its timestamp register advanced.
type regCacheState struct {
	rp     compiler.RegParamInfo
	vals   []uint64    // freshest known value per original index
	lastTs [2][]uint64 // last seen ts per copy per index
}

func newRegCacheState(rp compiler.RegParamInfo) *regCacheState {
	return &regCacheState{
		rp:     rp,
		vals:   make([]uint64, rp.N),
		lastTs: [2][]uint64{make([]uint64, rp.PaddedN), make([]uint64, rp.PaddedN)},
	}
}

func (rc *regCacheState) merge(copyIdx uint64, lo int, dup, ts []uint64) {
	for i := range dup {
		idx := lo + i
		if ts[i] != rc.lastTs[copyIdx][idx] {
			rc.lastTs[copyIdx][idx] = ts[i]
			rc.vals[idx] = dup[i]
		}
	}
}

// ---- Compiled reaction dispatch ----
//
// setupReactionRuntime compiles one reaction's dispatch at agent setup
// time, so the steady-state iteration walks flat instruction slices and
// preallocated buffers instead of rebuilding request slices, parameter
// maps, and interface-boxed params every time:
//
//   - pollReqs[v] is the complete driver.ReadReq batch for checkpoint
//     bit v, precomputed for both bits;
//   - rows is the reusable read-result matrix (refilled in place via
//     driver.RangeReader when the channel supports it);
//   - fields/regs are persistent parameter maps whose key sets never
//     change after setup, so per-iteration stores never allocate;
//   - interpreted bodies run through a prepared rcl.Frame with scalar
//     parameters bound by pointer and arrays by reference;
//   - pollFns are prebound retry closures, so drvOp is not handed a
//     freshly allocated closure per iteration.

// scalarBind routes one polled field (or malleable param) into a bound
// rcl frame scalar.
type scalarBind struct {
	key string // fields key (f.Param) or malleable name
	dst *int64
}

// arrayBind routes one polled register parameter into a bound rcl frame
// array, converting uint64 → int64 in place.
type arrayBind struct {
	key string // regs key (rp.Var)
	dst []int64
}

// setupReactionRuntime (re)builds rr's compiled dispatch state. Called
// from the prologue for every reaction and again from applySwaps when a
// swap relinks the body.
func (a *Agent) setupReactionRuntime(p *sim.Proc, rr *runtimeReaction) {
	info := rr.info

	// Poll plan: both checkpoint-bit variants, fully precomputed.
	for v := uint64(0); v < 2; v++ {
		reqs := rr.pollReqs[v][:0]
		for _, s := range info.IngSlots {
			reqs = append(reqs, driver.ReadReq{Reg: s.Register, Lo: v, Hi: v + 1})
		}
		for _, s := range info.EgrSlots {
			reqs = append(reqs, driver.ReadReq{Reg: s.Register, Lo: v, Hi: v + 1})
		}
		for _, rp := range info.RegParams {
			base := v * uint64(rp.PaddedN)
			reqs = append(reqs,
				driver.ReadReq{Reg: rp.Dup, Lo: base + uint64(rp.Lo), Hi: base + uint64(rp.Hi) + 1},
				driver.ReadReq{Reg: rp.Ts, Lo: base + uint64(rp.Lo), Hi: base + uint64(rp.Hi) + 1},
			)
		}
		rr.pollReqs[v] = reqs
	}
	nSlots := len(info.IngSlots) + len(info.EgrSlots)
	rr.rows = make([][]uint64, nSlots+2*len(info.RegParams))
	for i := range rr.rows {
		n := 1
		if i >= nSlots {
			rp := info.RegParams[(i-nSlots)/2]
			n = rp.Hi - rp.Lo + 1
		}
		rr.rows[i] = make([]uint64, 0, n)
	}

	// Prebound retry bodies for both checkpoint bits.
	for v := uint64(0); v < 2; v++ {
		v := v
		rr.pollFns[v] = func() error { return a.pollRead(a.proc, rr, v) }
	}

	// Persistent parameter storage. The key sets are fixed at setup;
	// per-iteration refills overwrite existing keys and never allocate.
	rr.fields = make(map[string]uint64)
	rr.regs = make(map[string][]uint64)
	for _, s := range info.IngSlots {
		for _, f := range s.Fields {
			rr.fields[f.Param] = 0
		}
	}
	for _, s := range info.EgrSlots {
		for _, f := range s.Fields {
			rr.fields[f.Param] = 0
		}
	}
	for _, rp := range info.RegParams {
		rr.regs[rp.Var] = make([]uint64, rp.Hi+1)
	}
	rr.lastFields = make(map[string]uint64, len(rr.fields))
	rr.lastRegs = make(map[string][]uint64, len(rr.regs))
	for _, rp := range info.RegParams {
		rr.lastRegs[rp.Var] = make([]uint64, rp.Hi+1)
	}
	rr.hasSnapshot = false

	rr.host = rclHost{agent: a, proc: p}
	rr.ctx = Ctx{agent: a, proc: p, rxn: rr, fields: rr.fields, regs: rr.regs}

	// Interpreted dispatch: prepared frame, scalars bound by pointer,
	// register arrays bound by reference to persistent int64 buffers.
	rr.frame = nil
	rr.fieldDst = rr.fieldDst[:0]
	rr.mblDst = rr.mblDst[:0]
	rr.regDst = rr.regDst[:0]
	if rr.native == nil {
		rr.frame = rr.prog.NewFrame()
		for _, s := range info.IngSlots {
			for _, f := range s.Fields {
				rr.fieldDst = append(rr.fieldDst, scalarBind{key: f.Param, dst: rr.frame.BindScalar(f.Var)})
			}
		}
		for _, s := range info.EgrSlots {
			for _, f := range s.Fields {
				rr.fieldDst = append(rr.fieldDst, scalarBind{key: f.Param, dst: rr.frame.BindScalar(f.Var)})
			}
		}
		for _, rp := range info.RegParams {
			buf := make([]int64, rp.Hi+1)
			rr.frame.BindArray(rp.Var, buf)
			rr.regDst = append(rr.regDst, arrayBind{key: rp.Var, dst: buf})
		}
		for _, mp := range info.MblParams {
			rr.mblDst = append(rr.mblDst, scalarBind{key: mp.Name, dst: rr.frame.BindScalar(mp.Var)})
		}
	}
}

// pollRead issues the precompiled read batch for one checkpoint bit and
// leaves the raw values in rr.rows. On a RangeReader channel the rows
// are refilled in place (zero allocation); otherwise the returned matrix
// is copied into the persistent rows so extraction is uniform.
func (a *Agent) pollRead(p *sim.Proc, rr *runtimeReaction, checkpoint uint64) error {
	reqs := rr.pollReqs[checkpoint]
	if a.batchedReads && a.rangeRd != nil {
		return a.rangeRd.BatchReadInto(p, reqs, rr.rows)
	}
	var (
		vals [][]uint64
		err  error
	)
	if a.batchedReads {
		vals, err = a.drv.BatchRead(p, reqs)
	} else {
		vals, err = a.drv.UnbatchedRead(p, reqs)
	}
	if err != nil {
		return err
	}
	for i := range vals {
		rr.rows[i] = append(rr.rows[i][:0], vals[i]...)
	}
	return nil
}

// extractPoll decodes rr.rows into the persistent parameter storage:
// packed slot words are unpacked into rr.fields, register dup/ts pairs
// are merged through the timestamp-guarded cache into rr.regs.
func (a *Agent) extractPoll(rr *runtimeReaction, checkpoint uint64) {
	info := rr.info
	i := 0
	i = extractSlots(rr, info.IngSlots, i)
	i = extractSlots(rr, info.EgrSlots, i)
	for _, rp := range info.RegParams {
		dup, ts := rr.rows[i], rr.rows[i+1]
		i += 2
		rc := a.regCache[rp.Orig]
		rc.merge(checkpoint, rp.Lo, dup, ts)
		copy(rr.regs[rp.Var], rc.vals[:rp.Hi+1])
	}
}

func extractSlots(rr *runtimeReaction, slots []compiler.MeasSlot, i int) int {
	for _, s := range slots {
		word := rr.rows[i][0]
		i++
		for _, f := range s.Fields {
			rr.fields[f.Param] = (word >> uint(f.Shift)) & packet.Mask(f.Width)
		}
	}
	return i
}

// snapshotPoll copies the just-polled parameters into the degradation
// snapshot. Key sets match by construction, so the copies are
// allocation-free after the first iteration.
func (rr *runtimeReaction) snapshotPoll() {
	for k, v := range rr.fields {
		rr.lastFields[k] = v
	}
	for k, v := range rr.regs {
		copy(rr.lastRegs[k], v)
	}
	rr.hasSnapshot = true
}

// restoreSnapshot loads the degradation snapshot back into the working
// parameter storage, so dispatch (native ctx or prepared frame) sees the
// stale-but-consistent values through the same buffers.
func (rr *runtimeReaction) restoreSnapshot() {
	for k, v := range rr.lastFields {
		rr.fields[k] = v
	}
	for k, v := range rr.lastRegs {
		copy(rr.regs[k], v)
	}
}

// pollReaction reads one reaction's parameters from the checkpoint
// copies (a single batched driver transaction on the default path) into
// the reaction's persistent parameter storage.
func (a *Agent) pollReaction(p *sim.Proc, rr *runtimeReaction, checkpoint uint64) error {
	if len(rr.pollReqs[checkpoint]) == 0 {
		return nil
	}
	op := "BatchRead"
	if !a.batchedReads {
		op = "UnbatchedRead"
	}
	if err := a.drvOp(p, op, rr.pollFns[checkpoint]); err != nil {
		return err
	}
	a.extractPoll(rr, checkpoint)
	return nil
}

// runReaction polls parameters and executes the body (native or
// interpreted).
func (a *Agent) runReaction(p *sim.Proc, rr *runtimeReaction, checkpoint uint64) error {
	err := a.pollReaction(p, rr, checkpoint)
	switch {
	case err == nil:
		rr.snapshotPoll()
		rr.lastPollAt = p.Now()
	case a.opts.Recovery.DegradeOnPollFailure && rr.hasSnapshot &&
		(errors.Is(err, ErrRetriesExhausted) || errors.Is(err, driver.ErrChannelDegraded)):
		// Graceful degradation: the channel would not yield a fresh
		// snapshot, so the reaction runs on the last checkpointed one.
		// Both are consistent snapshots (Fig. 9); this one is just stale.
		// A degraded message channel (loss, partition) degrades the same
		// way as exhausted retries — but only within the staleness
		// budget: past it, reacting to ancient measurements is worse
		// than not reacting, so the iteration is abandoned instead.
		if b := a.opts.Recovery.StalenessBudget; b > 0 && p.Now().Sub(rr.lastPollAt) > b {
			a.stats.StalenessAborts++
			return fmt.Errorf("reaction %s: degradation snapshot older than staleness budget %v: %w", rr.info.Name, b, err)
		}
		rr.restoreSnapshot()
		a.iterDegraded = true
	default:
		return err
	}
	a.inReaction = true
	defer func() { a.inReaction = false }()
	if rr.native != nil {
		return rr.native(&rr.ctx)
	}
	for _, b := range rr.fieldDst {
		*b.dst = int64(rr.fields[b.key])
	}
	for _, b := range rr.regDst {
		src := rr.regs[b.key]
		for i, x := range src {
			b.dst[i] = int64(x)
		}
	}
	for _, b := range rr.mblDst {
		*b.dst = int64(a.mblCache[b.key])
	}
	return rr.frame.Exec(&rr.host)
}

// ---- rcl host binding ----

// rclHost adapts the agent to the reaction language's Host interface.
type rclHost struct {
	agent *Agent
	proc  *sim.Proc
}

func (h *rclHost) ReadMbl(name string) (int64, error) {
	if v, ok := h.agent.pendingMbl[name]; ok {
		return int64(v), nil
	}
	if v, ok := h.agent.mblCache[name]; ok {
		return int64(v), nil
	}
	return 0, fmt.Errorf("unknown malleable ${%s}", name)
}

func (h *rclHost) WriteMbl(name string, v int64) error {
	return h.agent.stageMblWrite(name, uint64(v))
}

func (h *rclHost) TableOp(table, method string, args []rcl.Arg) (int64, error) {
	tm, ok := h.agent.tables[table]
	if !ok {
		return 0, fmt.Errorf("unknown malleable table %q", table)
	}
	info := tm.info
	switch method {
	case "addEntry":
		// addEntry(key..., "action", data...)
		nkeys := len(info.Keys)
		if len(args) < nkeys+1 {
			return 0, fmt.Errorf("%s.addEntry needs %d keys and an action name", table, nkeys)
		}
		spec := UserEntry{}
		for i := 0; i < nkeys; i++ {
			if args[i].IsStr {
				return 0, fmt.Errorf("%s.addEntry: key %d must be numeric", table, i)
			}
			spec.Keys = append(spec.Keys, rmt.ExactKey(uint64(args[i].I)))
		}
		if !args[nkeys].IsStr {
			return 0, fmt.Errorf("%s.addEntry: argument %d must be the action name", table, nkeys)
		}
		spec.Action = args[nkeys].S
		for _, a := range args[nkeys+1:] {
			if a.IsStr {
				return 0, fmt.Errorf("%s.addEntry: action data must be numeric", table)
			}
			spec.Data = append(spec.Data, uint64(a.I))
		}
		hdl, err := tm.addEntry(h.proc, spec)
		return int64(hdl), err
	case "modEntry":
		if len(args) < 2 || args[0].IsStr || !args[1].IsStr {
			return 0, fmt.Errorf("%s.modEntry(handle, \"action\", data...)", table)
		}
		var data []uint64
		for _, a := range args[2:] {
			if a.IsStr {
				return 0, fmt.Errorf("%s.modEntry: action data must be numeric", table)
			}
			data = append(data, uint64(a.I))
		}
		return 0, tm.modifyEntry(h.proc, UserHandle(args[0].I), args[1].S, data)
	case "delEntry":
		if len(args) != 1 || args[0].IsStr {
			return 0, fmt.Errorf("%s.delEntry(handle)", table)
		}
		return 0, tm.deleteEntry(h.proc, UserHandle(args[0].I))
	default:
		return 0, fmt.Errorf("unknown table method %s.%s", table, method)
	}
}

func (h *rclHost) Call(name string, args []rcl.Arg) (int64, error) {
	fn, ok := h.agent.builtins[name]
	if !ok {
		return 0, fmt.Errorf("unknown builtin %q", name)
	}
	return fn(h.proc, h.agent, args)
}

// registerDefaultBuiltins installs the host functions every reaction
// can call.
func (a *Agent) registerDefaultBuiltins() {
	a.builtins["now"] = func(p *sim.Proc, _ *Agent, _ []rcl.Arg) (int64, error) {
		return int64(p.Now()), nil
	}
	a.builtins["set_hash_seed"] = func(p *sim.Proc, ag *Agent, args []rcl.Arg) (int64, error) {
		if len(args) != 2 || !args[0].IsStr || args[1].IsStr {
			return 0, fmt.Errorf("set_hash_seed(\"calc\", seed)")
		}
		return 0, ag.drvSetHashSeed(p, args[0].S, uint64(args[1].I))
	}
	a.builtins["port_count"] = func(_ *sim.Proc, ag *Agent, _ []rcl.Arg) (int64, error) {
		return int64(ag.drv.Switch().Config().NumPorts), nil
	}
}
