package core

import (
	"errors"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/driver"
	"repro/internal/packet"
	"repro/internal/rcl"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// NativeReaction is a reaction body written in Go instead of the
// embedded C-like language. It receives the same polled parameters and
// may stage the same malleable/table updates; the agent applies them
// with identical serializability guarantees.
type NativeReaction func(ctx *Ctx) error

// Ctx exposes one reaction invocation's polled parameters and staged
// update operations.
type Ctx struct {
	agent *Agent
	proc  *sim.Proc
	rxn   *runtimeReaction

	fields map[string]uint64
	regs   map[string][]uint64
}

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.proc.Now() }

// Proc returns the agent process (for advanced driver access).
func (c *Ctx) Proc() *sim.Proc { return c.proc }

// Field returns a polled ing/egr field parameter by its P4R name.
func (c *Ctx) Field(name string) uint64 { return c.fields[name] }

// Reg returns a polled register parameter: a slice of length hi+1 whose
// [lo..hi] cells hold the freshest serializable values.
func (c *Ctx) Reg(name string) []uint64 { return c.regs[name] }

// Mbl returns the visible value of a malleable (pending write from this
// iteration, else last committed).
func (c *Ctx) Mbl(name string) uint64 {
	if v, ok := c.agent.pendingMbl[name]; ok {
		return v
	}
	return c.agent.mblCache[name]
}

// SetMbl stages a write to a malleable value (or a malleable field's
// alt index); it commits atomically with the iteration's vv flip.
func (c *Ctx) SetMbl(name string, v uint64) error {
	return c.agent.stageMblWrite(name, v)
}

// Table returns a reaction-scoped handle of a malleable table whose
// operations participate in the three-phase protocol.
func (c *Ctx) Table(name string) (*RxnTable, error) {
	th, err := c.agent.Table(name)
	if err != nil {
		return nil, err
	}
	return &RxnTable{th: th, p: c.proc}, nil
}

// SetHashSeed reprograms a hash calculation's seed (used by the hash
// polarization use case). Hash seeds are not vv-protected.
func (c *Ctx) SetHashSeed(name string, seed uint64) error {
	return c.agent.drvSetHashSeed(c.proc, name, seed)
}

// RxnTable is a TableHandle bound to the reaction's process.
type RxnTable struct {
	th *TableHandle
	p  *sim.Proc
}

// AddEntry stages a user entry add.
func (t *RxnTable) AddEntry(e UserEntry) (UserHandle, error) { return t.th.AddEntry(t.p, e) }

// ModifyEntry stages a user entry modification.
func (t *RxnTable) ModifyEntry(h UserHandle, action string, data []uint64) error {
	return t.th.ModifyEntry(t.p, h, action, data)
}

// DeleteEntry stages a user entry removal.
func (t *RxnTable) DeleteEntry(h UserHandle) error { return t.th.DeleteEntry(t.p, h) }

// stageMblWrite validates and stages a malleable write.
func (a *Agent) stageMblWrite(name string, v uint64) error {
	if mv, ok := a.plan.MblValues[name]; ok {
		a.pendingMbl[name] = v & packet.Mask(mv.Width)
		return nil
	}
	if mf, ok := a.plan.MblFields[name]; ok {
		if v >= uint64(len(mf.Alts)) {
			return fmt.Errorf("core: malleable field %s: alt index %d out of range [0,%d)", name, v, len(mf.Alts))
		}
		a.pendingMbl[name] = v
		return nil
	}
	return fmt.Errorf("core: unknown malleable %q", name)
}

// ---- Measurement polling (§4.2, §5.2) ----

// regCacheState implements the timestamp-guarded cache that fixes the
// alternating-stale-read anomaly of §5.2: a checkpoint cell only
// replaces the cached value when its timestamp register advanced.
type regCacheState struct {
	rp     compiler.RegParamInfo
	vals   []uint64    // freshest known value per original index
	lastTs [2][]uint64 // last seen ts per copy per index
}

func newRegCacheState(rp compiler.RegParamInfo) *regCacheState {
	return &regCacheState{
		rp:     rp,
		vals:   make([]uint64, rp.N),
		lastTs: [2][]uint64{make([]uint64, rp.PaddedN), make([]uint64, rp.PaddedN)},
	}
}

func (rc *regCacheState) merge(copyIdx uint64, lo int, dup, ts []uint64) {
	for i := range dup {
		idx := lo + i
		if ts[i] != rc.lastTs[copyIdx][idx] {
			rc.lastTs[copyIdx][idx] = ts[i]
			rc.vals[idx] = dup[i]
		}
	}
}

// pollReaction reads one reaction's parameters from the checkpoint
// copies in a single batched driver transaction and binds them.
func (a *Agent) pollReaction(p *sim.Proc, rr *runtimeReaction, checkpoint uint64) (map[string]uint64, map[string][]uint64, error) {
	info := rr.info
	var reqs []driver.ReadReq
	slotCount := 0
	for _, slots := range [][]compiler.MeasSlot{info.IngSlots, info.EgrSlots} {
		for _, s := range slots {
			reqs = append(reqs, driver.ReadReq{Reg: s.Register, Lo: checkpoint, Hi: checkpoint + 1})
			slotCount++
		}
	}
	for _, rp := range info.RegParams {
		base := checkpoint * uint64(rp.PaddedN)
		reqs = append(reqs,
			driver.ReadReq{Reg: rp.Dup, Lo: base + uint64(rp.Lo), Hi: base + uint64(rp.Hi) + 1},
			driver.ReadReq{Reg: rp.Ts, Lo: base + uint64(rp.Lo), Hi: base + uint64(rp.Hi) + 1},
		)
	}

	fields := make(map[string]uint64)
	regs := make(map[string][]uint64)
	if len(reqs) > 0 {
		read := a.drvBatchRead
		if !a.batchedReads {
			read = a.drvUnbatchedRead
		}
		vals, err := read(p, reqs)
		if err != nil {
			return nil, nil, err
		}
		i := 0
		for _, slots := range [][]compiler.MeasSlot{info.IngSlots, info.EgrSlots} {
			for _, s := range slots {
				word := vals[i][0]
				i++
				for _, f := range s.Fields {
					fields[f.Param] = (word >> uint(f.Shift)) & packet.Mask(f.Width)
				}
			}
		}
		for _, rp := range info.RegParams {
			dup, ts := vals[i], vals[i+1]
			i += 2
			rc := a.regCache[rp.Orig]
			rc.merge(checkpoint, rp.Lo, dup, ts)
			out := make([]uint64, rp.Hi+1)
			copy(out, rc.vals[:rp.Hi+1])
			regs[rp.Var] = out
		}
	}
	return fields, regs, nil
}

// runReaction polls parameters and executes the body (native or
// interpreted).
func (a *Agent) runReaction(p *sim.Proc, rr *runtimeReaction, checkpoint uint64) error {
	fields, regs, err := a.pollReaction(p, rr, checkpoint)
	switch {
	case err == nil:
		rr.lastFields, rr.lastRegs = fields, regs
		rr.lastPollAt = p.Now()
	case a.opts.Recovery.DegradeOnPollFailure && rr.lastFields != nil &&
		(errors.Is(err, ErrRetriesExhausted) || errors.Is(err, driver.ErrChannelDegraded)):
		// Graceful degradation: the channel would not yield a fresh
		// snapshot, so the reaction runs on the last checkpointed one.
		// Both are consistent snapshots (Fig. 9); this one is just stale.
		// A degraded message channel (loss, partition) degrades the same
		// way as exhausted retries — but only within the staleness
		// budget: past it, reacting to ancient measurements is worse
		// than not reacting, so the iteration is abandoned instead.
		if b := a.opts.Recovery.StalenessBudget; b > 0 && p.Now().Sub(rr.lastPollAt) > b {
			a.stats.StalenessAborts++
			return fmt.Errorf("reaction %s: degradation snapshot older than staleness budget %v: %w", rr.info.Name, b, err)
		}
		fields, regs = rr.lastFields, rr.lastRegs
		a.iterDegraded = true
	default:
		return err
	}
	a.inReaction = true
	defer func() { a.inReaction = false }()
	if rr.native != nil {
		ctx := &Ctx{agent: a, proc: p, rxn: rr, fields: fields, regs: regs}
		return rr.native(ctx)
	}
	params := make(map[string]any)
	for _, slots := range [][]compiler.MeasSlot{rr.info.IngSlots, rr.info.EgrSlots} {
		for _, s := range slots {
			for _, f := range s.Fields {
				params[f.Var] = int64(fields[f.Param])
			}
		}
	}
	for _, rp := range rr.info.RegParams {
		params[rp.Var] = regs[rp.Var]
	}
	for _, mp := range rr.info.MblParams {
		params[mp.Var] = int64(a.mblCache[mp.Name])
	}
	host := &rclHost{agent: a, proc: p}
	return rr.prog.Exec(host, params)
}

// ---- rcl host binding ----

// rclHost adapts the agent to the reaction language's Host interface.
type rclHost struct {
	agent *Agent
	proc  *sim.Proc
}

func (h *rclHost) ReadMbl(name string) (int64, error) {
	if v, ok := h.agent.pendingMbl[name]; ok {
		return int64(v), nil
	}
	if v, ok := h.agent.mblCache[name]; ok {
		return int64(v), nil
	}
	return 0, fmt.Errorf("unknown malleable ${%s}", name)
}

func (h *rclHost) WriteMbl(name string, v int64) error {
	return h.agent.stageMblWrite(name, uint64(v))
}

func (h *rclHost) TableOp(table, method string, args []rcl.Arg) (int64, error) {
	tm, ok := h.agent.tables[table]
	if !ok {
		return 0, fmt.Errorf("unknown malleable table %q", table)
	}
	info := tm.info
	switch method {
	case "addEntry":
		// addEntry(key..., "action", data...)
		nkeys := len(info.Keys)
		if len(args) < nkeys+1 {
			return 0, fmt.Errorf("%s.addEntry needs %d keys and an action name", table, nkeys)
		}
		spec := UserEntry{}
		for i := 0; i < nkeys; i++ {
			if args[i].IsStr {
				return 0, fmt.Errorf("%s.addEntry: key %d must be numeric", table, i)
			}
			spec.Keys = append(spec.Keys, rmt.ExactKey(uint64(args[i].I)))
		}
		if !args[nkeys].IsStr {
			return 0, fmt.Errorf("%s.addEntry: argument %d must be the action name", table, nkeys)
		}
		spec.Action = args[nkeys].S
		for _, a := range args[nkeys+1:] {
			if a.IsStr {
				return 0, fmt.Errorf("%s.addEntry: action data must be numeric", table)
			}
			spec.Data = append(spec.Data, uint64(a.I))
		}
		hdl, err := tm.addEntry(h.proc, spec)
		return int64(hdl), err
	case "modEntry":
		if len(args) < 2 || args[0].IsStr || !args[1].IsStr {
			return 0, fmt.Errorf("%s.modEntry(handle, \"action\", data...)", table)
		}
		var data []uint64
		for _, a := range args[2:] {
			if a.IsStr {
				return 0, fmt.Errorf("%s.modEntry: action data must be numeric", table)
			}
			data = append(data, uint64(a.I))
		}
		return 0, tm.modifyEntry(h.proc, UserHandle(args[0].I), args[1].S, data)
	case "delEntry":
		if len(args) != 1 || args[0].IsStr {
			return 0, fmt.Errorf("%s.delEntry(handle)", table)
		}
		return 0, tm.deleteEntry(h.proc, UserHandle(args[0].I))
	default:
		return 0, fmt.Errorf("unknown table method %s.%s", table, method)
	}
}

func (h *rclHost) Call(name string, args []rcl.Arg) (int64, error) {
	fn, ok := h.agent.builtins[name]
	if !ok {
		return 0, fmt.Errorf("unknown builtin %q", name)
	}
	return fn(h.proc, h.agent, args)
}

// registerDefaultBuiltins installs the host functions every reaction
// can call.
func (a *Agent) registerDefaultBuiltins() {
	a.builtins["now"] = func(p *sim.Proc, _ *Agent, _ []rcl.Arg) (int64, error) {
		return int64(p.Now()), nil
	}
	a.builtins["set_hash_seed"] = func(p *sim.Proc, ag *Agent, args []rcl.Arg) (int64, error) {
		if len(args) != 2 || !args[0].IsStr || args[1].IsStr {
			return 0, fmt.Errorf("set_hash_seed(\"calc\", seed)")
		}
		return 0, ag.drvSetHashSeed(p, args[0].S, uint64(args[1].I))
	}
	a.builtins["port_count"] = func(_ *sim.Proc, ag *Agent, _ []rcl.Arg) (int64, error) {
		return int64(ag.drv.Switch().Config().NumPorts), nil
	}
}
