package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// buildChaosRig is buildRig with a fault injector interposed between
// the agent and the driver.
func buildChaosRig(t testing.TB, src string, prof faults.Profile, seed int64, opts Options) (*rig, *faults.Injector) {
	t.Helper()
	plan, err := compiler.CompileSource(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	inj := faults.Wrap(s, drv, prof, seed)
	agent := NewAgent(s, inj, plan, opts)
	return &rig{sim: s, sw: sw, drv: drv, plan: plan, agent: agent}, inj
}

// chaosScenario drives the two-table serializability workload (the
// Figs. 7/8 setup of TestThreePhaseTableConsistency) under a fault
// profile and returns (violations, packets, generations).
func chaosScenario(t *testing.T, prof faults.Profile, seed int64, rec RecoveryOptions, run time.Duration) (*rig, *faults.Injector, int, int, uint64) {
	t.Helper()
	var h1, h2 UserHandle
	r, inj := buildChaosRig(t, twoTableSrc, prof, seed, Options{
		Recovery: rec,
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	gen := uint64(0)
	if err := r.agent.RegisterNativeReaction("bump", func(ctx *Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}); err != nil {
		t.Fatal(err)
	}
	// Let the prologue install cleanly; faults start shortly after. (A
	// profile harsh enough to kill a non-redundant prologue is a boot
	// failure, not a dialogue-robustness scenario.)
	inj.SetEnabled(false)
	r.sim.Schedule(50*sim.Microsecond, func() { inj.SetEnabled(true) })
	r.agent.Start()

	violations, packets := 0, 0
	r.sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			violations++
		}
	}
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 7})
	})
	r.sim.RunFor(run)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)
	return r, inj, violations, packets, gen
}

// TestChaosSerializability is the chaos suite's core property: under
// every fault profile, the recovering agent keeps making progress and
// no packet ever observes a mixed (vv, config) snapshot.
func TestChaosSerializability(t *testing.T) {
	for _, prof := range faults.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			if prof.CrashEnabled() {
				// A crash halts the agent process for good; the in-process
				// recovery loop cannot survive it. These profiles run in the
				// failover rig, where a standby takes over and the same
				// serializability invariant is asserted across the takeover.
				r := buildFailoverRig(t, prof, 1234)
				runFailoverScenario(t, r)
				checkFailover(t, r)
				return
			}
			r, inj, violations, packets, gen := chaosScenario(t, prof, 1234, DefaultRecovery(), 4*time.Millisecond)
			if err := r.agent.Err(); err != nil {
				t.Fatalf("agent died under %s faults: %v", prof.Name, err)
			}
			st := r.agent.Stats()
			if violations != 0 {
				t.Fatalf("%d/%d packets observed inconsistent cross-table state under %s faults",
					violations, packets, prof.Name)
			}
			if packets < 1000 || gen < 5 || st.Commits == 0 {
				t.Fatalf("no progress under %s faults: packets=%d generations=%d commits=%d",
					prof.Name, packets, gen, st.Commits)
			}
			fst := inj.FaultStats()
			switch prof.Name {
			case "transient":
				if fst.InjectedErrors == 0 {
					t.Fatal("transient profile injected nothing; the test exercised no faults")
				}
				if st.Retries == 0 {
					t.Fatal("injected transient failures but the agent never retried")
				}
			case "latency":
				if fst.InjectedSpikes == 0 {
					t.Fatal("latency profile injected no spikes")
				}
			case "stuck":
				if fst.StuckWaits == 0 {
					t.Fatal("stuck profile blocked no operations")
				}
			}
		})
	}
}

// TestChaosRollback cranks the error rate past the retry budget so
// iterations are abandoned, and checks that rollback keeps the
// committed state consistent while the loop keeps going.
func TestChaosRollback(t *testing.T) {
	prof := faults.Profile{Name: "harsh", ErrorRate: 0.30, ErrorBurst: 6}
	rec := DefaultRecovery()
	rec.MaxAttempts = 2 // give up fast so abandons actually happen
	r, _, violations, packets, _ := chaosScenario(t, prof, 99, rec, 6*time.Millisecond)
	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent died: %v", err)
	}
	st := r.agent.Stats()
	if st.Abandoned == 0 || st.Rollbacks == 0 {
		t.Fatalf("harsh profile caused no abandons/rollbacks: %+v", st)
	}
	if st.Commits == 0 {
		t.Fatalf("no iteration ever committed: %+v", st)
	}
	if violations != 0 {
		t.Fatalf("%d/%d packets observed inconsistency despite rollback", violations, packets)
	}
}

// TestChaosWatchdog sets the iteration deadline below the stuck-window
// length, so a wedged channel trips the watchdog instead of silently
// stretching iterations.
func TestChaosWatchdog(t *testing.T) {
	prof := faults.StuckChannel() // wedges 300µs out of every 2ms
	rec := DefaultRecovery()
	rec.IterationDeadline = 150 * time.Microsecond
	r, inj, violations, packets, _ := chaosScenario(t, prof, 7, rec, 10*time.Millisecond)
	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent died: %v", err)
	}
	st := r.agent.Stats()
	if inj.FaultStats().StuckWaits == 0 {
		t.Fatal("no operation ever hit a stuck window; the test is vacuous")
	}
	if st.WatchdogTrips == 0 {
		t.Fatalf("stuck channel never tripped the %v watchdog: %+v", rec.IterationDeadline, st)
	}
	if violations != 0 {
		t.Fatalf("%d/%d packets observed inconsistency after watchdog abandons", violations, packets)
	}
}

// TestChaosDegradedPolls forces measurement reads to fail past their
// retries and checks the reaction keeps running on the last checkpoint
// snapshot instead of stalling the agent.
func TestChaosDegradedPolls(t *testing.T) {
	prof := faults.Profile{Name: "flaky-reads", ErrorRate: 0.30}
	rec := DefaultRecovery()
	rec.MaxAttempts = 2
	r, inj := buildChaosRig(t, fig1Src, prof, 5, Options{Recovery: rec})
	inj.SetEnabled(false)
	r.sim.Schedule(50*sim.Microsecond, func() { inj.SetEnabled(true) })
	r.agent.Start()
	tick := r.sim.Every(2*sim.Microsecond, func() {
		r.inject(0, 400, map[string]uint64{"hdr.port": 5})
	})
	r.sim.RunFor(8 * time.Millisecond)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)

	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent died: %v", err)
	}
	st := r.agent.Stats()
	if st.Degraded == 0 {
		t.Fatalf("no iteration degraded to the cached snapshot: %+v", st)
	}
	if st.Iterations < 20 {
		t.Fatalf("agent made little progress: %d iterations", st.Iterations)
	}
}

// TestFaultsFatalWithoutRecovery pins the compatibility contract: with
// zero-value RecoveryOptions the historical fail-fast behavior remains
// — the first transient failure stops the agent.
func TestFaultsFatalWithoutRecovery(t *testing.T) {
	prof := faults.Profile{Name: "always", ErrorRate: 1.0}
	r, _ := buildChaosRig(t, fig1Src, prof, 1, Options{})
	r.agent.Start()
	r.sim.RunFor(time.Millisecond)
	err := r.agent.Err()
	if err == nil {
		t.Fatal("agent survived guaranteed failures with recovery disabled")
	}
	if !driver.IsTransient(err) {
		t.Fatalf("fatal error lost its transient cause: %v", err)
	}
}

// TestStopAndErrAreRaceSafe exercises Stop/Err from a different
// goroutine while the simulation runs, for the -race detector.
func TestStopAndErrAreRaceSafe(t *testing.T) {
	r := buildRig(t, fig1Src, Options{})
	r.agent.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond) // real time, overlapping the run below
		r.agent.Stop()
		_ = r.agent.Err()
	}()
	r.sim.RunFor(500 * time.Millisecond)
	wg.Wait()
	r.sim.RunFor(time.Millisecond) // let a stopped-mid-iteration agent wind down
	if err := r.agent.Err(); err != nil {
		t.Fatalf("stopped agent reported error: %v", err)
	}
}

// TestStopHonoredMidIteration checks a stop request lands inside an
// iteration (between reactions) and the partial iteration's staged
// changes are rolled back rather than committed.
func TestStopHonoredMidIteration(t *testing.T) {
	var h1 UserHandle
	stopNow := false
	r := buildRig(t, twoTableSrc, Options{
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			var err error
			h1, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}})
			return err
		},
		Recovery: DefaultRecovery(),
	})
	if err := r.agent.RegisterNativeReaction("bump", func(ctx *Ctx) error {
		t1, _ := ctx.Table("t1")
		if err := t1.ModifyEntry(h1, "set1", []uint64{77}); err != nil {
			return err
		}
		if stopNow {
			// Stop lands after this reaction staged its change but before
			// the commit: the write must NOT become visible.
			r.agent.Stop()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.agent.Start()
	r.sim.RunFor(200 * time.Microsecond)
	committed := r.agent.Stats().Commits
	stopNow = true
	r.sim.RunFor(5 * time.Millisecond)
	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent error: %v", err)
	}
	st := r.agent.Stats()
	if st.Commits != committed {
		// One more commit could only happen if the stop was ignored for a
		// full iteration.
		t.Fatalf("commits advanced from %d to %d after mid-iteration stop", committed, st.Commits)
	}
	if st.Rollbacks == 0 {
		t.Fatalf("mid-iteration stop rolled nothing back: %+v", st)
	}
}
