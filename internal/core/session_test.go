package core

import (
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// sessionChaosSrc is twoTableSrc plus a legacy (non-malleable) table so
// legacy bulk sessions have something to churn that is outside the
// agent's serializability domain. The legacy table applies after t1/t2,
// so its entries never perturb the invariant fields.
const sessionChaosSrc = `
header_type h_t { fields { k : 8; o1 : 32; o2 : 32; } }
header h_t hdr;
malleable value dummy { width : 8; init : 0; }
action set1(v) { modify_field(hdr.o1, v); }
action set2(v) {
  modify_field(hdr.o2, v);
  modify_field(standard_metadata.egress_spec, 1);
}
action mark(v) { modify_field(hdr.k, v); }
malleable table t1 { reads { hdr.k : exact; } actions { set1; } size : 4; }
malleable table t2 { reads { hdr.k : exact; } actions { set2; } size : 4; }
table legacy { reads { hdr.k : exact; } actions { mark; } size : 64; }
reaction bump() { }
control ingress { apply(t1); apply(t2); apply(legacy); }
`

// sessionRig is the full production stack: driver at the bottom, fault
// injector above it, control-plane service above that, and the agent
// speaking through a primary session.
type sessionRig struct {
	rig
	inj  *faults.Injector
	svc  *ctlplane.Service
	sess *ctlplane.Session
}

func buildSessionRig(t testing.TB, src string, prof faults.Profile, seed int64, opts Options) *sessionRig {
	t.Helper()
	plan, err := compiler.CompileSource(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	inj := faults.Wrap(s, drv, prof, seed)
	svc := ctlplane.New(s, inj, ctlplane.Options{})
	agent, sess, err := NewSessionAgent(s, svc, 1, plan, opts)
	if err != nil {
		t.Fatalf("session agent: %v", err)
	}
	return &sessionRig{
		rig:  rig{sim: s, sw: sw, drv: drv, plan: plan, agent: agent},
		inj:  inj, svc: svc, sess: sess,
	}
}

// TestSessionAgentDialogue is the no-fault smoke: the Figure 1 agent
// behind a ctlplane session behaves exactly like one on a raw driver.
func TestSessionAgentDialogue(t *testing.T) {
	r := buildSessionRig(t, fig1Src, faults.None(), 1, Options{})
	r.agent.Start()
	r.sim.RunFor(2 * time.Millisecond)
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)
	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent error: %v", err)
	}
	st := r.agent.Stats()
	if st.Iterations == 0 {
		t.Fatal("agent made no progress through the session")
	}
	if r.svc.Stats().DialogueOps == 0 {
		t.Fatal("no ops were classified as dialogue traffic")
	}
	if r.sess.SessionStats().Completed == 0 {
		t.Fatal("session completed no requests")
	}
}

// TestChaosSerializabilityThroughSession is the chaos-suite extension
// for the control-plane service: under the representative transient-
// error profile — injected BELOW the service, so scheduler, coalescer,
// and sessions all sit in the blast radius — the session-routed agent
// with recovery still never lets a packet observe a mixed (vv, config)
// snapshot, while two legacy bulk sessions churn an unrelated table
// through the same scheduler.
func TestChaosSerializabilityThroughSession(t *testing.T) {
	prof := faults.TransientErrors()
	var h1, h2 UserHandle
	r := buildSessionRig(t, sessionChaosSrc, prof, 4321, Options{
		Recovery: DefaultRecovery(),
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	gen := uint64(0)
	if err := r.agent.RegisterNativeReaction("bump", func(ctx *Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}); err != nil {
		t.Fatal(err)
	}

	// Two legacy bulk writers churn the legacy table through their own
	// sessions. They see the same injected faults the agent does; a
	// failed churn op is simply retried on the next round.
	legacyOK := 0
	for c := 0; c < 2; c++ {
		c := c
		sess, err := r.svc.Open(ctlplane.SessionOptions{Role: ctlplane.RoleLegacy})
		if err != nil {
			t.Fatal(err)
		}
		r.sim.Spawn(sess.Name(), func(p *sim.Proc) {
			p.Sleep(60 * sim.Microsecond) // let the prologue finish first
			h, err := sess.AddEntry(p, "legacy", rmt.Entry{
				Keys: []rmt.KeySpec{rmt.ExactKey(uint64(100 + c))}, Action: "mark", Data: []uint64{0},
			})
			if err != nil {
				return // churn is best-effort under faults
			}
			for i := 0; ; i++ {
				if err := sess.ModifyEntry(p, "legacy", h, "mark", []uint64{uint64(i)}); err == nil {
					legacyOK++
				}
				p.Sleep(5 * sim.Microsecond)
			}
		})
	}

	r.inj.SetEnabled(false)
	r.sim.Schedule(50*sim.Microsecond, func() { r.inj.SetEnabled(true) })
	r.agent.Start()

	violations, packets := 0, 0
	r.sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			violations++
		}
	}
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 7})
	})
	r.sim.RunFor(4 * time.Millisecond)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)

	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent died under session-routed faults: %v", err)
	}
	st := r.agent.Stats()
	if violations != 0 {
		t.Fatalf("%d/%d packets observed inconsistent cross-table state through the session", violations, packets)
	}
	if packets < 1000 || gen < 5 || st.Commits == 0 {
		t.Fatalf("no progress: packets=%d generations=%d commits=%d", packets, gen, st.Commits)
	}
	if r.inj.FaultStats().InjectedErrors == 0 {
		t.Fatal("profile injected nothing; the test exercised no faults")
	}
	if st.Retries == 0 {
		t.Fatal("injected transient failures but the agent never retried")
	}
	if legacyOK == 0 {
		t.Fatal("legacy sessions made no progress — bulk class starved")
	}
	svcStats := r.svc.Stats()
	if svcStats.DialogueOps == 0 || svcStats.BulkOps == 0 {
		t.Fatalf("both classes should have been served: %+v", svcStats)
	}
}
