package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// flakyMirrorChannel models a channel that starts failing entry writes
// mid-commit and stays broken until its window closes. Inside the
// window, the first ModifyEntry that is a mirror (one of the first two
// MEs after a SetDefaultAction, i.e. after the vv flip) trips the
// fault, and from then on every ModifyEntry fails until the window
// ends. Tripping on a mirror is what forces the repair-debt path: the
// flip has already committed, so the agent cannot abandon — it must
// defer the shadow work and then keep failing to drain it at the start
// of each subsequent iteration until the channel heals.
type flakyMirrorChannel struct {
	driver.Channel
	sim              *sim.Simulator
	failFrom, failTo sim.Time
	sinceFlip        int
	latched          bool
	failures         int
}

func (f *flakyMirrorChannel) SetDefaultAction(p *sim.Proc, table string, call *p4.ActionCall) error {
	f.sinceFlip = 0
	return f.Channel.SetDefaultAction(p, table, call)
}

func (f *flakyMirrorChannel) ModifyEntry(p *sim.Proc, table string, h rmt.EntryHandle, action string, data []uint64) error {
	f.sinceFlip++
	now := f.sim.Now()
	if now < f.failFrom || now >= f.failTo {
		f.latched = false
		return f.Channel.ModifyEntry(p, table, h, action, data)
	}
	if f.latched || f.sinceFlip <= 2 {
		f.latched = true
		f.failures++
		return fmt.Errorf("flaky mirror window: %w", driver.ErrTransient)
	}
	return f.Channel.ModifyEntry(p, table, h, action, data)
}

// buildRepairRig wires the two-table workload over a flaky-mirror
// channel, with a tight retry policy so mirror failures exhaust their
// retries quickly and become repair debt.
func buildRepairRig(t *testing.T, failFrom, failTo sim.Time) (*rig, *flakyMirrorChannel, *int, *int) {
	t.Helper()
	var h1, h2 UserHandle
	base := buildRig(t, twoTableSrc, Options{})
	fc := &flakyMirrorChannel{Channel: base.drv, sim: base.sim, failFrom: failFrom, failTo: failTo}
	rec := DefaultRecovery()
	rec.MaxAttempts = 2
	rec.RetryBackoff = time.Microsecond
	agent := NewAgent(base.sim, fc, base.plan, Options{
		Recovery: rec,
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	base.agent = agent
	gen := uint64(0)
	if err := agent.RegisterNativeReaction("bump", func(ctx *Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}); err != nil {
		t.Fatal(err)
	}
	violations, packets := new(int), new(int)
	base.sw.Tx = func(_ int, pkt *packet.Packet) {
		*packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			*violations++
		}
	}
	return base, fc, violations, packets
}

// TestRepairDebtAcrossIterations opens a mirror-failure window long
// enough that repair attempts themselves fail across several iteration
// boundaries: debt queued by fillShadow must survive repeated failed
// drainRepairs calls (each an abandoned iteration), then drain fully
// once the window heals, with no packet ever observing mixed state and
// no flip happening over an unconverged shadow.
func TestRepairDebtAcrossIterations(t *testing.T) {
	r, fc, violations, packets := buildRepairRig(t,
		sim.Time(200*sim.Microsecond), sim.Time(450*sim.Microsecond))
	r.agent.Start()
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 7})
	})
	r.sim.RunFor(2 * time.Millisecond)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)

	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent died: %v", err)
	}
	if fc.failures == 0 {
		t.Fatal("the mirror window failed nothing; the test is vacuous")
	}
	st := r.agent.Stats()
	if st.RepairOps == 0 {
		t.Fatalf("failing mirrors queued no repair debt: %+v", st)
	}
	if st.Abandoned == 0 {
		t.Fatalf("failing drains abandoned no iterations (window too short to cross a boundary?): %+v", st)
	}
	if len(r.agent.pendingRepairs) != 0 {
		t.Fatalf("%d repairs still queued after the window healed", len(r.agent.pendingRepairs))
	}
	if st.Commits < 100 {
		t.Fatalf("agent made little progress after healing: %+v", st)
	}
	if *violations != 0 {
		t.Fatalf("%d/%d packets observed mixed cross-table state despite repair gating", *violations, *packets)
	}
}

// TestRepairStopRace stops the agent while repair debt is outstanding
// and the channel is still failing: the stop must win — clean exit, no
// error, debt left queued — rather than the agent spinning on repairs
// or dying on the transient failures.
func TestRepairStopRace(t *testing.T) {
	// The window opens at 200µs and never heals.
	r, fc, violations, _ := buildRepairRig(t,
		sim.Time(200*sim.Microsecond), sim.Time(1<<62))
	r.agent.Start()
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 7})
	})
	// Stop lands while drainRepairs is failing back to back.
	r.sim.Schedule(600*sim.Microsecond, func() { r.agent.Stop() })
	r.sim.RunFor(2 * time.Millisecond)
	tick.Stop()
	r.sim.RunFor(time.Millisecond)

	if err := r.agent.Err(); err != nil {
		t.Fatalf("stop during pending repairs reported error: %v", err)
	}
	if fc.failures == 0 {
		t.Fatal("the mirror window failed nothing; the test is vacuous")
	}
	st := r.agent.Stats()
	if st.RepairOps == 0 {
		t.Fatalf("no repair debt was ever queued: %+v", st)
	}
	if len(r.agent.pendingRepairs) == 0 {
		t.Fatal("unhealable window left no queued repairs at exit")
	}
	if *violations != 0 {
		t.Fatalf("%d packets observed mixed state", *violations)
	}
}
