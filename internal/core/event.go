// Agent event export: the hook that lets an observer outside the agent
// — a fabric coordinator composing network-wide reactions, a telemetry
// collector — subscribe to what reactions decide, without coupling
// reaction bodies to any particular consumer.
package core

import "repro/internal/sim"

// Event is one notification exported by a reaction through Ctx.Emit.
// Kind is an application-level tag (e.g. "dos.block"); Key and Val are
// its payload, with meaning fixed by the kind. Events are facts about
// committed or in-flight reaction decisions, not control messages: the
// emitting agent does not wait for consumers.
type Event struct {
	// At is the virtual time of emission.
	At sim.Time
	// Agent is the emitting agent's Options.Name.
	Agent string
	// Kind tags the event type.
	Kind string
	// Key and Val carry the kind-specific payload.
	Key uint64
	Val uint64
}

// Emit exports an event to the agent's EventSink. Without a sink it is
// a no-op, so reaction bodies can emit unconditionally.
func (c *Ctx) Emit(kind string, key, val uint64) {
	sink := c.agent.opts.EventSink
	if sink == nil {
		return
	}
	sink(Event{At: c.proc.Now(), Agent: c.agent.opts.Name, Kind: kind, Key: key, Val: val})
}
