package core

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/driver"
	"repro/internal/sim"
)

// MultiAgent runs one Agent per pipeline. The paper notes that a switch
// with multiple disjoint linecards or pipelines — each with distinct
// register state — is handled by spawning one Mantis agent per
// component (§4 "a separate instance of the Mantis agent will run for
// each", §6 "these can be handled by spawning multiple Mantis agent
// threads"). Each agent owns its pipeline's driver; reactions see only
// their own pipeline's registers and stage updates only to it.
type MultiAgent struct {
	Agents []*Agent
}

// NewMultiAgent creates one agent per driver, all running the same
// compiled plan. The opts apply to every agent; per-agent reaction
// registration happens through Agent(i).
func NewMultiAgent(s *sim.Simulator, drivers []*driver.Driver, plan *compiler.Plan, opts Options) (*MultiAgent, error) {
	if len(drivers) == 0 {
		return nil, fmt.Errorf("core: MultiAgent needs at least one pipeline driver")
	}
	m := &MultiAgent{}
	for _, d := range drivers {
		m.Agents = append(m.Agents, NewAgent(s, d, plan, opts))
	}
	return m, nil
}

// Agent returns the agent of pipeline i.
func (m *MultiAgent) Agent(i int) *Agent { return m.Agents[i] }

// RegisterNativeReaction registers fn on every pipeline's agent; fn
// receives the pipeline index so reactions can act per-pipe.
func (m *MultiAgent) RegisterNativeReaction(name string, fn func(pipe int, ctx *Ctx) error) error {
	for i, a := range m.Agents {
		i := i
		if err := a.RegisterNativeReaction(name, func(ctx *Ctx) error { return fn(i, ctx) }); err != nil {
			return err
		}
	}
	return nil
}

// Start starts every pipeline agent.
func (m *MultiAgent) Start() {
	for _, a := range m.Agents {
		a.Start()
	}
}

// Stop stops every pipeline agent.
func (m *MultiAgent) Stop() {
	for _, a := range m.Agents {
		a.Stop()
	}
}

// Err returns the first pipeline error, annotated with its index.
func (m *MultiAgent) Err() error {
	for i, a := range m.Agents {
		if err := a.Err(); err != nil {
			return fmt.Errorf("pipeline %d: %w", i, err)
		}
	}
	return nil
}
