package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/compiler"
	"repro/internal/driver"
	"repro/internal/packet"
	"repro/internal/rcl"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// rig bundles a full Mantis stack: simulator, switch, driver, agent.
type rig struct {
	sim   *sim.Simulator
	sw    *rmt.Switch
	drv   *driver.Driver
	plan  *compiler.Plan
	agent *Agent
}

func buildRig(t testing.TB, src string, opts Options) *rig {
	t.Helper()
	plan, err := compiler.CompileSource(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	agent := NewAgent(s, drv, plan, opts)
	return &rig{sim: s, sw: sw, drv: drv, plan: plan, agent: agent}
}

// inject creates a packet with the given named fields and injects it.
func (r *rig) inject(port int, size int, fields map[string]uint64) *packet.Packet {
	pkt := r.plan.Prog.Schema.New()
	pkt.Size = size
	for name, v := range fields {
		pkt.SetName(name, v)
	}
	r.sw.Inject(port, pkt)
	return pkt
}

// fig1Src mirrors the paper's Figure 1 program: qdepths polled, the
// port with the deepest queue written into a malleable value that tags
// passing packets.
const fig1Src = `
header_type h_t { fields { tag : 16; port : 8; } }
header h_t hdr;
register qdepths { width : 32; instance_count : 16; }
malleable value value_var { width : 16; init : 0; }
action observe() {
  register_write(qdepths, hdr.port, standard_metadata.packet_length);
  modify_field(hdr.tag, ${value_var});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { observe; } default_action : observe; size : 1; }
reaction my_reaction(reg qdepths) {
  uint16_t current_max = 0;
  uint16_t max_port = 0;
  for (int i = 0; i < 16; ++i) {
    if (qdepths[i] > current_max) {
      current_max = qdepths[i]; max_port = i;
    }
  }
  ${value_var} = max_port;
}
control ingress { apply(t); }
`

func TestFig1EndToEnd(t *testing.T) {
	r := buildRig(t, fig1Src, Options{MaxIterations: 50})
	r.agent.Start()

	// Traffic: port 5 carries the biggest packets.
	r.sim.Schedule(20*sim.Microsecond, func() {
		r.inject(0, 100, map[string]uint64{"hdr.port": 2})
		r.inject(0, 900, map[string]uint64{"hdr.port": 5})
		r.inject(0, 300, map[string]uint64{"hdr.port": 7})
	})
	var lastTag uint64
	r.sw.Tx = func(_ int, pkt *packet.Packet) { lastTag = pkt.GetName("hdr.tag") }

	// Late probe packet observes the updated malleable.
	r.sim.Schedule(2*sim.Millisecond, func() {
		r.inject(0, 50, map[string]uint64{"hdr.port": 9})
	})
	r.sim.RunFor(10 * time.Millisecond)

	if err := r.agent.Err(); err != nil {
		t.Fatalf("agent error: %v", err)
	}
	if lastTag != 5 {
		t.Fatalf("tag = %d, want 5 (port with max recorded depth)", lastTag)
	}
	if r.agent.Stats().Iterations != 50 {
		t.Fatalf("iterations = %d", r.agent.Stats().Iterations)
	}
}

func TestReactionLatencyTensOfMicroseconds(t *testing.T) {
	// The headline claim: a full dialogue iteration — measurement flip,
	// poll, reaction, serializable commit — lands in the 10s of µs.
	r := buildRig(t, fig1Src, Options{MaxIterations: 100})
	r.agent.Start()
	r.sim.Run()
	st := r.agent.Stats()
	if st.LastIteration <= 0 {
		t.Fatal("no latency recorded")
	}
	if st.LastIteration > 100*time.Microsecond {
		t.Fatalf("iteration latency %v, want < 100µs", st.LastIteration)
	}
	if st.LastIteration < time.Microsecond {
		t.Fatalf("iteration latency %v implausibly low", st.LastIteration)
	}
}

const twoValueSrc = `
header_type h_t { fields { x : 16; y : 16; } }
header h_t hdr;
malleable value a { width : 16; init : 0; }
malleable value b { width : 16; init : 0; }
action tag() {
  modify_field(hdr.x, ${a});
  modify_field(hdr.y, ${b});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { tag; } default_action : tag; size : 1; }
reaction bump() {
  static int i = 0;
  i = i + 1;
  ${a} = i;
  ${b} = i;
}
control ingress { apply(t); }
`

// TestAtomicMultiMalleableCommit checks §5.1.1: both malleables update
// in the same single master-table write, so no packet ever observes
// a != b.
func TestAtomicMultiMalleableCommit(t *testing.T) {
	r := buildRig(t, twoValueSrc, Options{})
	r.agent.Start()
	violations, packets := 0, 0
	r.sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.x") != pkt.GetName("hdr.y") {
			violations++
		}
	}
	// Dense traffic: a packet every 100ns while the agent spins.
	tick := r.sim.Every(100*sim.Nanosecond, func() {
		r.inject(0, 64, nil)
	})
	r.sim.RunFor(3 * time.Millisecond)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)

	if packets < 1000 {
		t.Fatalf("only %d packets observed", packets)
	}
	if violations != 0 {
		t.Fatalf("%d/%d packets observed torn malleable state", violations, packets)
	}
	// Sanity: values actually advanced.
	if v, _ := r.agent.Mbl("a"); v == 0 {
		t.Fatal("malleable a never advanced")
	}
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
}

const fieldShiftSrc = `
header_type h_t { fields { foo : 16; bar : 16; out : 16; kind : 8; } }
header h_t hdr;
malleable field fv { width : 16; init : hdr.foo; alts { hdr.foo, hdr.bar } }
action use(port) {
  modify_field(hdr.out, ${fv});
  modify_field(standard_metadata.egress_spec, port);
}
malleable table t {
  reads { hdr.kind : exact; }
  actions { use; }
  size : 4;
}
reaction shift() {
  static int n = 0;
  n = n + 1;
  if (n == 300) { ${fv} = 1; }
}
control ingress { apply(t); }
`

// TestMalleableFieldShift checks the Figs. 5/6 machinery end to end: a
// reaction shifts the reference and subsequent packets read hdr.bar.
func TestMalleableFieldShift(t *testing.T) {
	r := buildRig(t, fieldShiftSrc, Options{
		Prologue: func(p *sim.Proc, a *Agent) error {
			th, err := a.Table("t")
			if err != nil {
				return err
			}
			_, err = th.AddEntry(p, UserEntry{
				Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "use", Data: []uint64{1},
			})
			return err
		},
	})
	r.agent.Start()
	var outs []uint64
	r.sw.Tx = func(_ int, pkt *packet.Packet) { outs = append(outs, pkt.GetName("hdr.out")) }

	fields := map[string]uint64{"hdr.kind": 1, "hdr.foo": 111, "hdr.bar": 222}
	// Iterations take ~2µs (no polled params), so the shift at n == 300
	// lands around 600µs; probe well before and well after.
	r.sim.Schedule(50*sim.Microsecond, func() { r.inject(0, 64, fields) })
	r.sim.Schedule(1500*sim.Microsecond, func() { r.inject(0, 64, fields) })
	r.sim.RunFor(1200 * time.Microsecond)
	r.agent.Stop()
	r.sim.Run()

	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("packets = %d, want 2", len(outs))
	}
	if outs[0] != 111 {
		t.Fatalf("pre-shift out = %d, want 111 (hdr.foo)", outs[0])
	}
	if outs[1] != 222 {
		t.Fatalf("post-shift out = %d, want 222 (hdr.bar)", outs[1])
	}
	if alt, _ := r.agent.Mbl("fv"); alt != 1 {
		t.Fatalf("fv alt = %d", alt)
	}
}

const twoTableSrc = `
header_type h_t { fields { k : 8; o1 : 32; o2 : 32; } }
header h_t hdr;
malleable value dummy { width : 8; init : 0; }
action set1(v) { modify_field(hdr.o1, v); }
action set2(v) {
  modify_field(hdr.o2, v);
  modify_field(standard_metadata.egress_spec, 1);
}
malleable table t1 { reads { hdr.k : exact; } actions { set1; } size : 4; }
malleable table t2 { reads { hdr.k : exact; } actions { set2; } size : 4; }
reaction bump() { }
control ingress { apply(t1); apply(t2); }
`

// TestThreePhaseTableConsistency drives the Figs. 7/8 protocol: a
// native reaction updates entries in two tables every iteration; with
// the vv commit no packet may observe t1's new value with t2's old one.
func TestThreePhaseTableConsistency(t *testing.T) {
	var h1, h2 UserHandle
	r := buildRig(t, twoTableSrc, Options{
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	gen := uint64(0)
	if err := r.agent.RegisterNativeReaction("bump", func(ctx *Ctx) error {
		gen++
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}); err != nil {
		t.Fatal(err)
	}
	r.agent.Start()

	violations, packets := 0, 0
	r.sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			violations++
		}
	}
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 7})
	})
	r.sim.RunFor(3 * time.Millisecond)
	tick.Stop()
	r.agent.Stop()
	r.sim.RunFor(time.Millisecond)

	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if packets < 1000 || gen < 10 {
		t.Fatalf("packets = %d, generations = %d", packets, gen)
	}
	if violations != 0 {
		t.Fatalf("%d/%d packets observed inconsistent cross-table state", violations, packets)
	}
}

// TestNaiveUpdatesViolateConsistency is the control experiment: the
// same two-table update performed as direct driver writes (no version
// bit) lets packets observe mixed configurations.
func TestNaiveUpdatesViolateConsistency(t *testing.T) {
	r := buildRig(t, twoTableSrc, Options{})
	// Bypass the agent: install entries directly in both tables with
	// vv=0 (the initial version) and update them from a plain process.
	key := func(v uint64) []rmt.KeySpec {
		return []rmt.KeySpec{rmt.ExactKey(7), rmt.ExactKey(v)}
	}
	var rh1, rh2 rmt.EntryHandle
	r.sim.Spawn("naive-cp", func(p *sim.Proc) {
		var err error
		if rh1, err = r.drv.AddEntry(p, "t1", rmt.Entry{Keys: key(0), Action: "set1", Data: []uint64{0}}); err != nil {
			t.Error(err)
			return
		}
		if rh2, err = r.drv.AddEntry(p, "t2", rmt.Entry{Keys: key(0), Action: "set2", Data: []uint64{0}}); err != nil {
			t.Error(err)
			return
		}
		for gen := uint64(1); gen <= 200; gen++ {
			r.drv.ModifyEntry(p, "t1", rh1, "set1", []uint64{gen})
			r.drv.ModifyEntry(p, "t2", rh2, "set2", []uint64{gen})
		}
	})
	violations, packets := 0, 0
	r.sw.Tx = func(_ int, pkt *packet.Packet) {
		packets++
		if pkt.GetName("hdr.o1") != pkt.GetName("hdr.o2") {
			violations++
		}
	}
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 7})
	})
	r.sim.RunFor(2 * time.Millisecond)
	tick.Stop()
	r.sim.Run()
	if packets < 1000 {
		t.Fatalf("packets = %d", packets)
	}
	if violations == 0 {
		t.Fatal("naive updates produced no visible inconsistency; the control experiment is broken")
	}
}

const measureSrc = `
header_type h_t { fields { serial : 48; } }
header h_t hdr;
action rec() { modify_field(standard_metadata.egress_spec, 1); }
table t { actions { rec; } default_action : rec; size : 1; }
reaction snap(ing hdr.serial, ing standard_metadata.ingress_port) {
}
control ingress { apply(t); }
`

// TestMeasurementCheckpointStable checks Fig. 9: once mv flips, the
// checkpoint copy is immune to ongoing traffic.
func TestMeasurementCheckpointStable(t *testing.T) {
	type snap struct{ serial, port uint64 }
	var snaps []snap
	r := buildRig(t, measureSrc, Options{})
	if err := r.agent.RegisterNativeReaction("snap", func(ctx *Ctx) error {
		snaps = append(snaps, snap{ctx.Field("hdr.serial"), ctx.Field("standard_metadata.ingress_port")})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.agent.Start()
	// Every packet writes serial = 1000+i and arrives on port i%4; both
	// land in the same measurement action, so a serializable snapshot
	// has port == (serial-1000)%4.
	i := uint64(0)
	tick := r.sim.Every(130*sim.Nanosecond, func() {
		pkt := r.plan.Prog.Schema.New()
		pkt.Size = 64
		pkt.SetName("hdr.serial", 1000+i)
		r.sw.Inject(int(i%4), pkt)
		i++
	})
	r.sim.RunFor(2 * time.Millisecond)
	tick.Stop()
	r.agent.Stop()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 20 {
		t.Fatalf("snaps = %d", len(snaps))
	}
	for _, s := range snaps {
		if s.serial == 0 {
			continue // before first packet
		}
		if s.port != (s.serial-1000)%4 {
			t.Fatalf("torn measurement: serial %d with port %d", s.serial, s.port)
		}
	}
}

const regCacheSrc = `
header_type h_t { fields { v : 32; } }
header h_t hdr;
register rr { width : 32; instance_count : 4; }
action wr() {
  register_write(rr, 2, hdr.v);
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { wr; } default_action : wr; size : 1; }
reaction watch(reg rr[2:2]) {
}
control ingress { apply(t); }
`

// TestTimestampCacheFixesAlternatingStaleReads reproduces the §5.2
// anomaly and its fix: after one write, repeated mv flips with no new
// traffic must keep returning the written value, never the stale zero
// in the other copy.
func TestTimestampCacheFixesAlternatingStaleReads(t *testing.T) {
	var seen []uint64
	r := buildRig(t, regCacheSrc, Options{})
	if err := r.agent.RegisterNativeReaction("watch", func(ctx *Ctx) error {
		seen = append(seen, ctx.Reg("rr")[2])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.agent.Start()
	// One write early, then silence while the agent keeps flipping mv.
	r.sim.Schedule(30*sim.Microsecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.v": 777})
	})
	r.sim.RunFor(2 * time.Millisecond)
	r.agent.Stop()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	sawValue := false
	for _, v := range seen {
		if v == 777 {
			sawValue = true
		} else if sawValue && v != 777 {
			t.Fatalf("stale read after fresh value: history %v", seen)
		}
	}
	if !sawValue {
		t.Fatal("reaction never observed the write")
	}
}

func TestMultiInitTableMalleables(t *testing.T) {
	src := `
header_type h_t { fields { x : 32; y : 32; } }
header h_t hdr;
malleable value big1 { width : 32; init : 10; }
malleable value big2 { width : 32; init : 20; }
malleable value big3 { width : 32; init : 30; }
action tag() {
  modify_field(hdr.x, ${big1});
  add(hdr.y, ${big2}, ${big3});
  modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { tag; } default_action : tag; size : 1; }
reaction r() {
  static int n = 0;
  n = n + 1;
  ${big1} = 100 + n;
  ${big2} = 200 + n;
  ${big3} = 300 + n;
}
control ingress { apply(t); }
`
	plan, err := compiler.CompileSource(src, compiler.Options{MaxInitActionBits: 34, ProgramName: "multi", MeasSlotBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.InitTables) < 3 {
		t.Fatalf("init tables = %d, want split", len(plan.InitTables))
	}
	s := sim.New(1)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	agent := NewAgent(s, drv, plan, Options{MaxIterations: 5})
	agent.Start()
	s.Run()
	if err := agent.Err(); err != nil {
		t.Fatal(err)
	}
	// Inject a probe; it must see a consistent (same-n) triple.
	var x, y uint64
	sw.Tx = func(_ int, pkt *packet.Packet) {
		x, y = pkt.GetName("hdr.x"), pkt.GetName("hdr.y")
	}
	pkt := plan.Prog.Schema.New()
	pkt.Size = 64
	sw.Inject(0, pkt)
	s.Run()
	if x != 105 || y != 205+305 {
		t.Fatalf("x=%d y=%d, want 105 and 510 (consistent n=5)", x, y)
	}
}

func TestPacingReducesUtilization(t *testing.T) {
	busy := func(pacing time.Duration) (time.Duration, sim.Time, Stats) {
		r := buildRig(t, fig1Src, Options{Pacing: pacing, MaxIterations: 50})
		r.agent.Start()
		r.sim.Run()
		if err := r.agent.Err(); err != nil {
			t.Fatal(err)
		}
		return r.agent.Stats().Busy, r.sim.Now(), r.agent.Stats()
	}
	busyLoop, elapsedBusy, _ := busy(0)
	paced, elapsedPaced, st := busy(100 * time.Microsecond)
	utilBusy := float64(busyLoop) / float64(elapsedBusy.Duration())
	utilPaced := float64(paced) / float64(elapsedPaced.Duration())
	if utilBusy < 0.9 {
		t.Fatalf("busy-loop utilization = %.2f, want ~1", utilBusy)
	}
	if utilPaced > 0.5 {
		t.Fatalf("paced utilization = %.2f, want well below busy", utilPaced)
	}
	// Reaction latency per iteration is unchanged by pacing.
	if st.LastIteration > 100*time.Microsecond {
		t.Fatalf("paced iteration latency = %v", st.LastIteration)
	}
}

func TestSkipIdleCommit(t *testing.T) {
	src := `
header_type h_t { fields { x : 8; } }
header h_t hdr;
malleable value v { width : 8; init : 0; }
action tag() { modify_field(hdr.x, ${v}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction idle() { int x = 1; }
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{SkipIdleCommit: true, MaxIterations: 10})
	r.agent.Start()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	st := r.agent.Stats()
	if st.Commits != 0 {
		t.Fatalf("commits = %d, want 0 for idle reactions", st.Commits)
	}
	r2 := buildRig(t, src, Options{MaxIterations: 10})
	r2.agent.Start()
	r2.sim.Run()
	if r2.agent.Stats().Commits != 10 {
		t.Fatalf("default commits = %d, want 10", r2.agent.Stats().Commits)
	}
}

func TestBuiltinsFromRcl(t *testing.T) {
	src := `
header_type h_t { fields { x : 8; } }
header h_t hdr;
field_list fl { hdr.x; }
field_list_calculation hc { input { fl; } algorithm : crc16; output_width : 8; }
malleable value v { width : 64; init : 0; }
action tag() { modify_field(hdr.x, ${v}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction r() {
  ${v} = now();
  set_hash_seed("hc", 42);
}
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{MaxIterations: 3})
	r.agent.Start()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.agent.Mbl("v"); v == 0 {
		t.Fatal("now() builtin returned 0")
	}
}

func TestReactionTableOpsFromRcl(t *testing.T) {
	src := `
header_type h_t { fields { k : 8; out : 8; } }
header h_t hdr;
action hit(v) {
  modify_field(hdr.out, v);
  modify_field(standard_metadata.egress_spec, 1);
}
action miss() { drop(); }
malleable table t {
  reads { hdr.k : exact; }
  actions { hit; miss; }
  default_action : miss;
  size : 8;
}
reaction manage() {
  static int done = 0;
  if (done == 0) {
    int h = t.addEntry(9, "hit", 55);
    done = h;
  }
}
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{})
	r.agent.Start()
	var out uint64
	r.sw.Tx = func(_ int, pkt *packet.Packet) { out = pkt.GetName("hdr.out") }
	r.sim.Schedule(500*sim.Microsecond, func() {
		r.inject(0, 64, map[string]uint64{"hdr.k": 9})
	})
	r.sim.RunFor(time.Millisecond)
	r.agent.Stop()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if out != 55 {
		t.Fatalf("out = %d, want 55 (entry added by reaction)", out)
	}
}

func TestReactionErrorStopsAgent(t *testing.T) {
	src := `
header_type h_t { fields { x : 8; } }
header h_t hdr;
malleable value v { width : 8; init : 0; }
action tag() { modify_field(hdr.x, ${v}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction bad() { int x = 1 / 0; }
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{})
	r.agent.Start()
	r.sim.RunFor(time.Millisecond)
	if err := r.agent.Err(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	if r.agent.Stats().ReactionErrors != 1 {
		t.Fatalf("ReactionErrors = %d", r.agent.Stats().ReactionErrors)
	}
}

func TestRegisterNativeReactionValidation(t *testing.T) {
	r := buildRig(t, fig1Src, Options{})
	if err := r.agent.RegisterNativeReaction("nope", func(*Ctx) error { return nil }); err == nil {
		t.Fatal("unknown reaction name accepted")
	}
	r.agent.Start()
	if err := r.agent.RegisterNativeReaction("my_reaction", func(*Ctx) error { return nil }); err == nil {
		t.Fatal("registration after Start accepted")
	}
}

func TestTableLookupErrors(t *testing.T) {
	r := buildRig(t, fig1Src, Options{})
	if _, err := r.agent.Table("t"); err == nil {
		t.Fatal("non-malleable table returned a handle")
	}
	if _, err := r.agent.Table("ghost"); err == nil {
		t.Fatal("unknown table returned a handle")
	}
}

func TestStageMblWriteValidation(t *testing.T) {
	r := buildRig(t, fieldShiftSrc, Options{})
	if err := r.agent.stageMblWrite("fv", 5); err == nil {
		t.Fatal("out-of-range alt accepted")
	}
	if err := r.agent.stageMblWrite("ghost", 0); err == nil {
		t.Fatal("unknown malleable accepted")
	}
	if err := r.agent.stageMblWrite("fv", 1); err != nil {
		t.Fatal(err)
	}
}

func TestMemoizationUsedInDialogue(t *testing.T) {
	r := buildRig(t, fig1Src, Options{MaxIterations: 20})
	r.agent.Start()
	r.sim.Run()
	st := r.drv.Stats()
	if st.MemoizedOps == 0 {
		t.Fatal("dialogue performed no memoized operations")
	}
	// Most repeated master updates should be memoized.
	if st.MemoizedOps < 30 {
		t.Fatalf("memoized = %d of %d table ops", st.MemoizedOps, st.TableOps)
	}
}

// TestSwapReactionAtRuntime exercises §7's dynamic loading: the
// reaction body is replaced mid-run without stopping the agent, first
// with a new interpreted body, then with a native function.
func TestSwapReactionAtRuntime(t *testing.T) {
	src := `
header_type h_t { fields { x : 16; } }
header h_t hdr;
malleable value v { width : 16; init : 0; }
action tag() { modify_field(hdr.x, ${v}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction r() { ${v} = 1; }
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{})
	r.agent.Start()
	r.sim.RunFor(200 * time.Microsecond)
	if v, _ := r.agent.Mbl("v"); v != 1 {
		t.Fatalf("initial body: v = %d", v)
	}
	// Swap to a new interpreted body.
	if err := r.agent.SwapReaction("r", nil, "${v} = 2;", false); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(200 * time.Microsecond)
	if v, _ := r.agent.Mbl("v"); v != 2 {
		t.Fatalf("after body swap: v = %d", v)
	}
	// Swap to a native function.
	if err := r.agent.SwapReaction("r", func(ctx *Ctx) error {
		return ctx.SetMbl("v", 3)
	}, "", false); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(200 * time.Microsecond)
	if v, _ := r.agent.Mbl("v"); v != 3 {
		t.Fatalf("after native swap: v = %d", v)
	}
	// The agent never stopped or errored across both swaps.
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if r.agent.Stats().Iterations < 100 {
		t.Fatalf("loop stalled: %d iterations", r.agent.Stats().Iterations)
	}
	r.agent.Stop()
	r.sim.Run()
}

func TestSwapReactionValidation(t *testing.T) {
	r := buildRig(t, fig1Src, Options{})
	if err := r.agent.SwapReaction("ghost", nil, "${v} = 1;", false); err == nil {
		t.Fatal("unknown reaction accepted")
	}
	if err := r.agent.SwapReaction("my_reaction", nil, "", false); err == nil {
		t.Fatal("neither native nor body rejected")
	}
	if err := r.agent.SwapReaction("my_reaction", func(*Ctx) error { return nil }, "x;", false); err == nil {
		t.Fatal("both native and body rejected")
	}
}

// TestSwapReactionBadBodyStopsAgent: a broken reload surfaces as an
// agent error at link time, not a silent wedge.
func TestSwapReactionBadBodyStopsAgent(t *testing.T) {
	r := buildRig(t, fig1Src, Options{})
	r.agent.Start()
	r.sim.RunFor(100 * time.Microsecond)
	if err := r.agent.SwapReaction("my_reaction", nil, "int x = ;", false); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(100 * time.Microsecond)
	if err := r.agent.Err(); err == nil || !strings.Contains(err.Error(), "swap") {
		t.Fatalf("err = %v", err)
	}
}

// TestSwapReactionRerunsPrologue: rerunInit re-executes the user
// initialization hook, per §7 ("Users can specify whether the prologue
// user initialization should be re-executed").
func TestSwapReactionRerunsPrologue(t *testing.T) {
	prologueRuns := 0
	src := `
header_type h_t { fields { x : 16; } }
header h_t hdr;
malleable value v { width : 16; init : 0; }
action tag() { modify_field(hdr.x, ${v}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction r() { }
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{
		Prologue: func(p *sim.Proc, a *Agent) error {
			prologueRuns++
			return nil
		},
	})
	r.agent.Start()
	r.sim.RunFor(100 * time.Microsecond)
	if prologueRuns != 1 {
		t.Fatalf("prologue runs = %d", prologueRuns)
	}
	if err := r.agent.SwapReaction("r", nil, "int x = 1;", true); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(100 * time.Microsecond)
	if prologueRuns != 2 {
		t.Fatalf("prologue not re-run: %d", prologueRuns)
	}
	r.agent.Stop()
	r.sim.Run()
}

// TestMultiAgentPerPipeline: two pipelines with distinct register
// state, one agent each; every agent reacts to its own pipeline only.
func TestMultiAgentPerPipeline(t *testing.T) {
	plan, err := compiler.CompileSource(fig1Src, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	var drivers []*driver.Driver
	var switches []*rmt.Switch
	for pipe := 0; pipe < 2; pipe++ {
		sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		switches = append(switches, sw)
		drivers = append(drivers, driver.New(s, sw, driver.DefaultCostModel()))
	}
	m, err := NewMultiAgent(s, drivers, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxPort := [2]uint64{}
	if err := m.RegisterNativeReaction("my_reaction", func(pipe int, ctx *Ctx) error {
		q := ctx.Reg("qdepths")
		best := uint64(0)
		for i, v := range q {
			if v > q[best] {
				best = uint64(i)
			}
			_ = i
		}
		maxPort[pipe] = best
		return ctx.SetMbl("value_var", best)
	}); err != nil {
		t.Fatal(err)
	}
	m.Start()
	// Pipe 0 sees its max on port 4; pipe 1 on port 9.
	s.Schedule(30*sim.Microsecond, func() {
		pkt := plan.Prog.Schema.New()
		pkt.Size = 900
		pkt.SetName("hdr.port", 4)
		switches[0].Inject(0, pkt)
		pkt2 := plan.Prog.Schema.New()
		pkt2.Size = 900
		pkt2.SetName("hdr.port", 9)
		switches[1].Inject(0, pkt2)
	})
	s.RunFor(2 * time.Millisecond)
	m.Stop()
	s.Run()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	if maxPort[0] != 4 || maxPort[1] != 9 {
		t.Fatalf("per-pipe isolation broken: %v", maxPort)
	}
	// Each pipeline's malleable reflects its own state.
	if v, _ := m.Agent(0).Mbl("value_var"); v != 4 {
		t.Fatalf("pipe 0 value_var = %d", v)
	}
	if v, _ := m.Agent(1).Mbl("value_var"); v != 9 {
		t.Fatalf("pipe 1 value_var = %d", v)
	}
}

func TestMultiAgentValidation(t *testing.T) {
	if _, err := NewMultiAgent(sim.New(1), nil, nil, Options{}); err == nil {
		t.Fatal("empty driver list accepted")
	}
}

// TestPropertyTableExpansion: for random alt counts, a user entry in a
// table matching two malleable fields expands into exactly
// prod(|alts|) x 2 concrete entries, and for every selector assignment
// exactly one concrete entry matches.
func TestPropertyTableExpansion(t *testing.T) {
	f := func(a8, b8 uint8) bool {
		a := int(a8%3) + 2 // 2..4 alts
		b := int(b8%3) + 2
		src := "header_type h_t { fields { k : 8; "
		for i := 0; i < a; i++ {
			src += fmt.Sprintf("fa%d : 16; ", i)
		}
		for i := 0; i < b; i++ {
			src += fmt.Sprintf("fb%d : 16; ", i)
		}
		src += "out : 16; } }\nheader h_t hdr;\n"
		src += "malleable field A { width : 16; init : hdr.fa0; alts { "
		for i := 0; i < a; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("hdr.fa%d", i)
		}
		src += " } }\n"
		src += "malleable field B { width : 16; init : hdr.fb0; alts { "
		for i := 0; i < b; i++ {
			if i > 0 {
				src += ", "
			}
			src += fmt.Sprintf("hdr.fb%d", i)
		}
		src += " } }\n"
		src += `
action use() { add(hdr.out, ${A}, ${B}); }
malleable table t {
  reads { hdr.k : exact; }
  actions { use; }
  size : 4;
}
reaction r() { }
control ingress { apply(t); }
`
		r := buildRig(t, src, Options{
			Prologue: func(p *sim.Proc, ag *Agent) error {
				tbl, err := ag.Table("t")
				if err != nil {
					return err
				}
				_, err = tbl.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(1)}, Action: "use"})
				return err
			},
		})
		r.agent.Start()
		r.sim.RunFor(100 * time.Microsecond)
		r.agent.Stop()
		r.sim.Run()
		if err := r.agent.Err(); err != nil {
			t.Logf("agent: %v", err)
			return false
		}
		entries, err := r.sw.Entries("t")
		if err != nil {
			return false
		}
		return len(entries) == a*b*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestThreePhaseDeleteFromReaction: a reaction deletes a user entry;
// the shadow copy goes in the prepare phase, the primary after commit,
// and packets never miss while the entry logically exists.
func TestThreePhaseDeleteFromReaction(t *testing.T) {
	var handle UserHandle
	r := buildRig(t, twoTableSrc, Options{
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			var err error
			handle, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{1}})
			return err
		},
	})
	deleted := false
	iter := 0
	if err := r.agent.RegisterNativeReaction("bump", func(ctx *Ctx) error {
		iter++
		if iter == 50 && !deleted {
			deleted = true
			t1, _ := ctx.Table("t1")
			return t1.DeleteEntry(handle)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.agent.Start()
	r.sim.RunFor(2 * time.Millisecond)
	r.agent.Stop()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if !deleted {
		t.Fatal("delete never ran")
	}
	entries, _ := r.sw.Entries("t1")
	if len(entries) != 0 {
		t.Fatalf("concrete entries remain after three-phase delete: %d", len(entries))
	}
	// The user handle is gone.
	t1, _ := r.agent.Table("t1")
	if got := t1.Entries(); len(got) != 0 {
		t.Fatalf("user entries remain: %v", got)
	}
}

// TestCtxAccessors exercises the native-reaction context surface: Mbl,
// Now, Proc, SetHashSeed, and RxnTable add/delete.
func TestCtxAccessors(t *testing.T) {
	src := `
header_type h_t { fields { k : 8; x : 16; } }
header h_t hdr;
field_list fl { hdr.x; }
field_list_calculation hc { input { fl; } algorithm : crc16; output_width : 8; }
malleable value v { width : 16; init : 42; }
action hit() { modify_field(hdr.x, ${v}); }
action fallthrough() { no_op(); }
malleable table t {
  reads { hdr.k : exact; }
  actions { hit; fallthrough; }
  default_action : fallthrough;
  size : 8;
}
reaction r() { }
control ingress { apply(t); }
`
	var sawMbl, sawNow uint64
	var added UserHandle
	step := 0
	r := buildRig(t, src, Options{})
	if err := r.agent.RegisterNativeReaction("r", func(ctx *Ctx) error {
		step++
		switch step {
		case 1:
			sawMbl = ctx.Mbl("v")
			sawNow = uint64(ctx.Now())
			if ctx.Proc() == nil {
				t.Error("nil proc")
			}
			if err := ctx.SetHashSeed("hc", 99); err != nil {
				return err
			}
			tbl, err := ctx.Table("t")
			if err != nil {
				return err
			}
			added, err = tbl.AddEntry(UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(5)}, Action: "hit"})
			return err
		case 40:
			tbl, _ := ctx.Table("t")
			return tbl.DeleteEntry(added)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.agent.Start()
	r.sim.RunFor(time.Millisecond)
	r.agent.Stop()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	if sawMbl != 42 {
		t.Fatalf("ctx.Mbl = %d", sawMbl)
	}
	if sawNow == 0 {
		t.Fatal("ctx.Now = 0")
	}
	if step < 50 {
		t.Fatalf("loop ran only %d steps", step)
	}
}

// TestRclReadsMalleable: the ${v} read path through the agent's rcl
// host, including read-your-pending-write within one iteration.
func TestRclReadsMalleable(t *testing.T) {
	src := `
header_type h_t { fields { x : 16; } }
header h_t hdr;
malleable value v { width : 16; init : 100; }
action tag() { modify_field(hdr.x, ${v}); }
table t { actions { tag; } default_action : tag; size : 1; }
reaction r() {
  ${v} = ${v} + 1;
  if (${v} % 2 == 1) {
    ${v} = ${v} + 1;
  }
}
control ingress { apply(t); }
`
	r := buildRig(t, src, Options{MaxIterations: 10})
	r.agent.Start()
	r.sim.Run()
	if err := r.agent.Err(); err != nil {
		t.Fatal(err)
	}
	// 100 -> 102 -> 104 ... (each iteration +1 then +1 if odd; 101 is
	// odd so +1 again = +2/iteration).
	if v, _ := r.agent.Mbl("v"); v != 120 {
		t.Fatalf("v = %d, want 120 after 10 iterations", v)
	}
}

// TestRclSetDefaultTableOp: the generated setDefault library call for
// unversioned (non-malleable-annotated but alt-expanded) tables is
// rejected on vv tables with a clear error.
func TestSetDefaultRejectedOnVersionedTable(t *testing.T) {
	r := buildRig(t, twoTableSrc, Options{})
	th, err := r.agent.Table("t1")
	if err != nil {
		t.Fatal(err)
	}
	done := false
	r.sim.Spawn("cp", func(p *sim.Proc) {
		if err := th.SetDefault(p, nil); err == nil {
			t.Error("SetDefault on vv table accepted")
		}
		done = true
	})
	r.sim.Run()
	if !done {
		t.Fatal("proc never ran")
	}
}

func TestAgentAccessors(t *testing.T) {
	r := buildRig(t, fig1Src, Options{})
	if r.agent.Plan() != r.plan || r.agent.Driver() != r.drv {
		t.Fatal("accessors broken")
	}
	if r.agent.VV() != 0 || r.agent.MV() != 0 {
		t.Fatal("version bits should start at 0")
	}
	r.agent.RegisterBuiltin("custom", func(p *sim.Proc, a *Agent, args []rcl.Arg) (int64, error) {
		return 7, nil
	})
	if _, ok := r.agent.builtins["custom"]; !ok {
		t.Fatal("builtin not registered")
	}
}
