package core

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/journal"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// UserHandle identifies a user-level entry in a malleable table. One
// user entry maps to several concrete data-plane entries: one per
// combination of malleable-field alternatives, times two versions for
// vv-protected tables.
type UserHandle uint64

// UserEntry is a user-level entry specification against the table's
// P4R-visible key columns (malleable-field columns take a single
// KeySpec that is replicated across the alternatives).
type UserEntry struct {
	Keys     []rmt.KeySpec
	Priority int
	Action   string
	Data     []uint64
}

// tableManager owns the user-to-concrete entry mapping for one
// malleable (or alt-expanded) table and implements the three-phase
// prepare/commit/mirror protocol of §5.1.2.
type tableManager struct {
	agent *Agent
	info  *compiler.MblTableInfo

	entries    map[UserHandle]*userEntry
	nextHandle UserHandle

	// fields and combos are derived from the (immutable) table info once
	// at construction: the expansion fields in selector-column order and
	// every alt combination over them. All user entries share them.
	fields []string
	combos [][]int

	// mirror holds closures to run in the fill-shadow phase (step 3),
	// re-applying this iteration's changes to the now-shadow copy. The
	// closures are resumable: re-running one after a partial failure
	// continues where it stopped.
	mirror []func(p *sim.Proc) error
	// undo journals how to revert this iteration's shadow prepares if
	// the iteration is abandoned before its commit. Cleared (without
	// running) once the commit lands; run in reverse order on rollback.
	undo []chanOp
}

type userEntry struct {
	spec UserEntry
	// concrete[v] holds the installed rmt handles for version v. For
	// non-vv tables only concrete[0] is used.
	concrete [2][]rmt.EntryHandle
	// combos caches the alt combinations, aligned with concrete[v].
	combos [][]int
}

func newTableManager(a *Agent, info *compiler.MblTableInfo) *tableManager {
	tm := &tableManager{agent: a, info: info, entries: make(map[UserHandle]*userEntry)}
	tm.fields = tm.expandFields()
	tm.combos = tm.allCombos()
	return tm
}

// expandFields returns the malleable fields involved in this table's
// expansion, ordered by selector column for determinism. Called once at
// construction; use tm.fields afterwards.
func (tm *tableManager) expandFields() []string {
	fields := make([]string, 0, len(tm.info.SelectorCol))
	for f := range tm.info.SelectorCol {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool {
		return tm.info.SelectorCol[fields[i]] < tm.info.SelectorCol[fields[j]]
	})
	return fields
}

// allCombos enumerates all alt combinations over the expansion fields.
// Called once at construction; use tm.combos afterwards.
func (tm *tableManager) allCombos() [][]int {
	fields := tm.expandFields()
	if len(fields) == 0 {
		return [][]int{nil}
	}
	counts := make([]int, len(fields))
	for i, f := range fields {
		counts[i] = len(tm.agent.plan.MblFields[f].Alts)
	}
	var out [][]int
	combo := make([]int, len(fields))
	for {
		out = append(out, append([]int(nil), combo...))
		i := len(combo) - 1
		for i >= 0 {
			combo[i]++
			if combo[i] < counts[i] {
				break
			}
			combo[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// concreteEntry builds the generated-table entry for one user entry,
// one alt combination, and one vv version.
func (tm *tableManager) concreteEntry(spec UserEntry, fields []string, combo []int, version uint64) (rmt.Entry, error) {
	if len(spec.Keys) != len(tm.info.Keys) {
		return rmt.Entry{}, fmt.Errorf("table %s: entry has %d user keys, want %d", tm.info.Table, len(spec.Keys), len(tm.info.Keys))
	}
	altOf := map[string]int{}
	for i, f := range fields {
		altOf[f] = combo[i]
	}
	gen := make([]rmt.KeySpec, tm.info.GenKeyCount)
	for i := range gen {
		gen[i] = rmt.WildcardKey()
	}
	for ui, uk := range tm.info.Keys {
		off := tm.info.ColOffset[ui]
		if uk.MblField == "" {
			gen[off] = spec.Keys[ui]
			continue
		}
		// Fig. 6: the active alternative's column carries the user key
		// (ternary full-mask for user-exact); the others stay wildcard.
		alt := altOf[uk.MblField]
		gen[off+alt] = spec.Keys[ui]
	}
	for f, col := range tm.info.SelectorCol {
		gen[col] = rmt.ExactKey(uint64(altOf[f]))
	}
	if tm.info.VVCol >= 0 {
		gen[tm.info.VVCol] = rmt.ExactKey(version)
	}
	action := spec.Action
	if as, ok := tm.info.ActionSpec[spec.Action]; ok {
		alts := make([]int, len(as.Fields))
		for i, f := range as.Fields {
			alts[i] = altOf[f]
		}
		action = as.VariantFor(alts)
	}
	return rmt.Entry{Keys: gen, Priority: spec.Priority, Action: action, Data: spec.Data}, nil
}

// versioned reports whether the table carries the vv column.
func (tm *tableManager) versioned() bool { return tm.info.VVCol >= 0 }

// ---- Resumable concrete-entry operations ----
//
// All three maintain the invariant that ue.concrete[version] holds the
// handles of a prefix of ue.combos, so re-running an operation after a
// mid-way transient failure resumes instead of duplicating work: that
// is what lets a failed prepare be retried, undone, or queued as a
// repair without tracking per-combo state externally.

// install extends version's concrete entries until every combo is
// installed, using the entry's current spec.
func (tm *tableManager) install(p *sim.Proc, ue *userEntry, version uint64) error {
	fields := tm.fields
	for len(ue.concrete[version]) < len(ue.combos) {
		i := len(ue.concrete[version])
		e, err := tm.concreteEntry(ue.spec, fields, ue.combos[i], version)
		if err != nil {
			return err
		}
		rh, err := tm.agent.drvAddEntry(p, tm.info.Table, e)
		if err != nil {
			return err
		}
		ue.concrete[version] = append(ue.concrete[version], rh)
	}
	return nil
}

// uninstall deletes version's concrete entries back-to-front until none
// remain, preserving the prefix invariant.
func (tm *tableManager) uninstall(p *sim.Proc, ue *userEntry, version uint64) error {
	for len(ue.concrete[version]) > 0 {
		i := len(ue.concrete[version]) - 1
		if err := tm.agent.drvDeleteEntry(p, tm.info.Table, ue.concrete[version][i]); err != nil {
			return err
		}
		ue.concrete[version] = ue.concrete[version][:i]
	}
	return nil
}

// applyAll modifies every concrete entry of version to spec. Modifying
// an entry to data it already carries is harmless, so re-running after
// a partial failure is safe without progress tracking.
func (tm *tableManager) applyAll(p *sim.Proc, ue *userEntry, version uint64, spec UserEntry) error {
	fields := tm.fields
	for i, combo := range ue.combos {
		e, err := tm.concreteEntry(spec, fields, combo, version)
		if err != nil {
			return err
		}
		if err := tm.agent.drvModifyEntry(p, tm.info.Table, ue.concrete[version][i], e.Action, e.Data); err != nil {
			return err
		}
	}
	return nil
}

// addEntry prepares a new user entry: concrete entries are installed
// for the shadow version (vv^1) immediately; installation for the
// primary version is deferred to the mirror phase. For unversioned
// tables the entries install directly.
func (tm *tableManager) addEntry(p *sim.Proc, spec UserEntry) (UserHandle, error) {
	if _, ok := tm.agent.plan.Prog.Actions[spec.Action]; !ok {
		if _, specialized := tm.info.ActionSpec[spec.Action]; !specialized {
			return 0, fmt.Errorf("table %s: unknown action %q: %w", tm.info.Table, spec.Action, rmt.ErrUnknownAction)
		}
	}
	ue := &userEntry{spec: spec, combos: tm.combos}
	tm.nextHandle++
	h := tm.nextHandle

	if !tm.versioned() {
		if err := tm.install(p, ue, 0); err != nil {
			// Unversioned entries are packet-visible as they land; a
			// partial install must not linger. If cleanup also fails the
			// entries leak until the channel heals — unversioned tables
			// have no shadow to hide behind.
			_ = tm.uninstall(p, ue, 0)
			return 0, err
		}
		tm.entries[h] = ue
		return h, nil
	}
	shadow := tm.agent.vv ^ 1
	tm.entries[h] = ue
	if tm.agent.inReaction {
		// Journal first: if the install below fails partway (or a later
		// staged operation fails), rollback removes whatever landed.
		tm.undo = append(tm.undo, chanOp{desc: "undo add " + tm.info.Table, fn: func(p *sim.Proc) error {
			if err := tm.uninstall(p, ue, shadow); err != nil {
				return err
			}
			delete(tm.entries, h)
			return nil
		}})
	}
	if err := tm.install(p, ue, shadow); err != nil {
		if !tm.agent.inReaction {
			_ = tm.uninstall(p, ue, shadow)
			delete(tm.entries, h)
		}
		return 0, err
	}
	if !tm.agent.inReaction {
		// Outside a reaction (prologue or ad-hoc): install both copies
		// immediately; there is no pending commit to mirror after.
		return h, tm.install(p, ue, shadow^1)
	}
	tm.agent.recordStagedOp(journal.TableOp{
		Table: tm.info.Table, Kind: journal.OpAdd, Handle: uint64(h), Spec: specToJournal(spec),
	})
	// Phase 3 (mirror): install the other copy after commit.
	tm.mirror = append(tm.mirror, func(p *sim.Proc) error {
		return tm.install(p, ue, shadow^1)
	})
	return h, nil
}

// modifyEntry rebinds a user entry's action/data via three-phase update.
func (tm *tableManager) modifyEntry(p *sim.Proc, h UserHandle, action string, data []uint64) error {
	ue, ok := tm.entries[h]
	if !ok {
		return fmt.Errorf("table %s: no user entry %d: %w", tm.info.Table, h, rmt.ErrUnknownEntry)
	}
	newSpec := ue.spec
	newSpec.Action = action
	newSpec.Data = append([]uint64(nil), data...)

	if !tm.versioned() {
		if err := tm.applyAll(p, ue, 0, newSpec); err != nil {
			// Re-apply the old spec so the packet-visible copy is not
			// left half-updated.
			_ = tm.applyAll(p, ue, 0, ue.spec)
			return err
		}
		ue.spec = newSpec
		return nil
	}
	shadow := tm.agent.vv ^ 1
	if tm.agent.inReaction {
		oldSpec := ue.spec
		tm.undo = append(tm.undo, chanOp{desc: "undo modify " + tm.info.Table, fn: func(p *sim.Proc) error {
			ue.spec = oldSpec
			return tm.applyAll(p, ue, shadow, oldSpec)
		}})
	}
	if err := tm.applyAll(p, ue, shadow, newSpec); err != nil {
		if !tm.agent.inReaction {
			_ = tm.applyAll(p, ue, shadow, ue.spec)
		}
		return err
	}
	ue.spec = newSpec
	if !tm.agent.inReaction {
		return tm.applyAll(p, ue, shadow^1, newSpec)
	}
	tm.agent.recordStagedOp(journal.TableOp{
		Table: tm.info.Table, Kind: journal.OpModify, Handle: uint64(h), Spec: specToJournal(newSpec),
	})
	tm.mirror = append(tm.mirror, func(p *sim.Proc) error {
		return tm.applyAll(p, ue, shadow^1, newSpec)
	})
	return nil
}

// deleteEntry removes a user entry: the shadow copy is deleted in the
// prepare phase, the old primary after commit (§5.1.2).
func (tm *tableManager) deleteEntry(p *sim.Proc, h UserHandle) error {
	ue, ok := tm.entries[h]
	if !ok {
		return fmt.Errorf("table %s: no user entry %d: %w", tm.info.Table, h, rmt.ErrUnknownEntry)
	}
	if !tm.versioned() {
		if err := tm.uninstall(p, ue, 0); err != nil {
			return err
		}
		delete(tm.entries, h)
		return nil
	}
	shadow := tm.agent.vv ^ 1
	if tm.agent.inReaction {
		// Undo reinstates the deleted shadow entries (install resumes the
		// combo prefix, so a partial delete is repaired too).
		tm.undo = append(tm.undo, chanOp{desc: "undo delete " + tm.info.Table, fn: func(p *sim.Proc) error {
			return tm.install(p, ue, shadow)
		}})
	}
	if err := tm.uninstall(p, ue, shadow); err != nil {
		if !tm.agent.inReaction {
			_ = tm.install(p, ue, shadow)
		}
		return err
	}
	if !tm.agent.inReaction {
		if err := tm.uninstall(p, ue, shadow^1); err != nil {
			return err
		}
		delete(tm.entries, h)
		return nil
	}
	tm.agent.recordStagedOp(journal.TableOp{
		Table: tm.info.Table, Kind: journal.OpDelete, Handle: uint64(h),
	})
	tm.mirror = append(tm.mirror, func(p *sim.Proc) error {
		if err := tm.uninstall(p, ue, shadow^1); err != nil {
			return err
		}
		delete(tm.entries, h)
		return nil
	})
	return nil
}

// fillShadow runs the deferred mirror operations (phase 3). When
// recovery is enabled, a mirror that keeps failing is queued as repair
// debt instead of killing the agent: the flip already committed the
// change, and the unfinished shadow work is invisible to packets until
// the next flip, which drainRepairs gates.
func (tm *tableManager) fillShadow(p *sim.Proc) error {
	ops := tm.mirror
	tm.mirror = nil
	for i, op := range ops {
		if err := op(p); err != nil {
			if !tm.agent.opts.Recovery.Enabled() {
				return err
			}
			for _, rest := range ops[i:] {
				tm.agent.queueRepair(chanOp{desc: "mirror " + tm.info.Table, fn: rest})
			}
			return nil
		}
	}
	return nil
}

// rollback reverts this iteration's staged changes: mirror closures are
// dropped and the undo journal runs in reverse. An undo that still
// fails is queued as repair debt (its target is a shadow copy, so
// deferring it is safe). Reports whether anything was staged.
func (tm *tableManager) rollback(p *sim.Proc) bool {
	had := len(tm.undo) > 0 || len(tm.mirror) > 0
	tm.mirror = nil
	ops := tm.undo
	tm.undo = nil
	for i := len(ops) - 1; i >= 0; i-- {
		// The closures use the retry-wrapped helpers internally, so a
		// failure here means retries were already spent.
		if err := ops[i].fn(p); err != nil {
			tm.agent.queueRepair(ops[i])
		}
	}
	return had
}

// pendingMirrors reports whether the table has staged changes awaiting
// commit.
func (tm *tableManager) pendingMirrors() int { return len(tm.mirror) }

// TableHandle is the user-facing API of a malleable table.
type TableHandle struct {
	tm *tableManager
}

// AddEntry installs a user entry (serializably, when invoked from a
// reaction).
func (th *TableHandle) AddEntry(p *sim.Proc, e UserEntry) (UserHandle, error) {
	return th.tm.addEntry(p, e)
}

// ModifyEntry rebinds a user entry's action and data.
func (th *TableHandle) ModifyEntry(p *sim.Proc, h UserHandle, action string, data []uint64) error {
	return th.tm.modifyEntry(p, h, action, data)
}

// DeleteEntry removes a user entry.
func (th *TableHandle) DeleteEntry(p *sim.Proc, h UserHandle) error {
	return th.tm.deleteEntry(p, h)
}

// SetDefault replaces the table's default action. Only valid for
// unversioned tables (a versioned default cannot match on vv).
func (th *TableHandle) SetDefault(p *sim.Proc, call *p4.ActionCall) error {
	if th.tm.versioned() {
		return fmt.Errorf("table %s: default actions on vv-protected tables are fixed; install entries instead", th.tm.info.Table)
	}
	return th.tm.agent.drvSetDefaultAction(p, th.tm.info.Table, call)
}

// Entries returns the user-level entries (sorted by handle).
func (th *TableHandle) Entries() []UserEntry {
	hs := make([]UserHandle, 0, len(th.tm.entries))
	for h := range th.tm.entries {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	out := make([]UserEntry, len(hs))
	for i, h := range hs {
		out[i] = th.tm.entries[h].spec
	}
	return out
}
