package core

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// UserHandle identifies a user-level entry in a malleable table. One
// user entry maps to several concrete data-plane entries: one per
// combination of malleable-field alternatives, times two versions for
// vv-protected tables.
type UserHandle uint64

// UserEntry is a user-level entry specification against the table's
// P4R-visible key columns (malleable-field columns take a single
// KeySpec that is replicated across the alternatives).
type UserEntry struct {
	Keys     []rmt.KeySpec
	Priority int
	Action   string
	Data     []uint64
}

// tableManager owns the user-to-concrete entry mapping for one
// malleable (or alt-expanded) table and implements the three-phase
// prepare/commit/mirror protocol of §5.1.2.
type tableManager struct {
	agent *Agent
	info  *compiler.MblTableInfo

	entries    map[UserHandle]*userEntry
	nextHandle UserHandle

	// mirror holds closures to run in the fill-shadow phase (step 3),
	// re-applying this iteration's changes to the now-shadow copy.
	mirror []func(p *sim.Proc) error
}

type userEntry struct {
	spec UserEntry
	// concrete[v] holds the installed rmt handles for version v. For
	// non-vv tables only concrete[0] is used.
	concrete [2][]rmt.EntryHandle
	// combos caches the alt combinations, aligned with concrete[v].
	combos [][]int
}

func newTableManager(a *Agent, info *compiler.MblTableInfo) *tableManager {
	return &tableManager{agent: a, info: info, entries: make(map[UserHandle]*userEntry)}
}

// expandFields returns the malleable fields involved in this table's
// expansion, ordered by selector column for determinism.
func (tm *tableManager) expandFields() []string {
	fields := make([]string, 0, len(tm.info.SelectorCol))
	for f := range tm.info.SelectorCol {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool {
		return tm.info.SelectorCol[fields[i]] < tm.info.SelectorCol[fields[j]]
	})
	return fields
}

// combos enumerates all alt combinations over the expansion fields.
func (tm *tableManager) allCombos() [][]int {
	fields := tm.expandFields()
	if len(fields) == 0 {
		return [][]int{nil}
	}
	counts := make([]int, len(fields))
	for i, f := range fields {
		counts[i] = len(tm.agent.plan.MblFields[f].Alts)
	}
	var out [][]int
	combo := make([]int, len(fields))
	for {
		out = append(out, append([]int(nil), combo...))
		i := len(combo) - 1
		for i >= 0 {
			combo[i]++
			if combo[i] < counts[i] {
				break
			}
			combo[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// concreteEntry builds the generated-table entry for one user entry,
// one alt combination, and one vv version.
func (tm *tableManager) concreteEntry(spec UserEntry, fields []string, combo []int, version uint64) (rmt.Entry, error) {
	if len(spec.Keys) != len(tm.info.Keys) {
		return rmt.Entry{}, fmt.Errorf("table %s: entry has %d user keys, want %d", tm.info.Table, len(spec.Keys), len(tm.info.Keys))
	}
	altOf := map[string]int{}
	for i, f := range fields {
		altOf[f] = combo[i]
	}
	gen := make([]rmt.KeySpec, tm.info.GenKeyCount)
	for i := range gen {
		gen[i] = rmt.WildcardKey()
	}
	for ui, uk := range tm.info.Keys {
		off := tm.info.ColOffset[ui]
		if uk.MblField == "" {
			gen[off] = spec.Keys[ui]
			continue
		}
		// Fig. 6: the active alternative's column carries the user key
		// (ternary full-mask for user-exact); the others stay wildcard.
		alt := altOf[uk.MblField]
		gen[off+alt] = spec.Keys[ui]
	}
	for f, col := range tm.info.SelectorCol {
		gen[col] = rmt.ExactKey(uint64(altOf[f]))
	}
	if tm.info.VVCol >= 0 {
		gen[tm.info.VVCol] = rmt.ExactKey(version)
	}
	action := spec.Action
	if as, ok := tm.info.ActionSpec[spec.Action]; ok {
		alts := make([]int, len(as.Fields))
		for i, f := range as.Fields {
			alts[i] = altOf[f]
		}
		action = as.VariantFor(alts)
	}
	return rmt.Entry{Keys: gen, Priority: spec.Priority, Action: action, Data: spec.Data}, nil
}

// versioned reports whether the table carries the vv column.
func (tm *tableManager) versioned() bool { return tm.info.VVCol >= 0 }

// addEntry prepares a new user entry: concrete entries are installed
// for the shadow version (vv^1) immediately; installation for the
// primary version is deferred to the mirror phase. For unversioned
// tables the entries install directly.
func (tm *tableManager) addEntry(p *sim.Proc, spec UserEntry) (UserHandle, error) {
	if _, ok := tm.agent.plan.Prog.Actions[spec.Action]; !ok {
		if _, specialized := tm.info.ActionSpec[spec.Action]; !specialized {
			return 0, fmt.Errorf("table %s: unknown action %q", tm.info.Table, spec.Action)
		}
	}
	fields := tm.expandFields()
	combos := tm.allCombos()
	ue := &userEntry{spec: spec, combos: combos}
	tm.nextHandle++
	h := tm.nextHandle

	install := func(p *sim.Proc, version uint64) error {
		handles := make([]rmt.EntryHandle, 0, len(combos))
		for _, combo := range combos {
			e, err := tm.concreteEntry(spec, fields, combo, version)
			if err != nil {
				return err
			}
			rh, err := tm.agent.drv.AddEntry(p, tm.info.Table, e)
			if err != nil {
				return err
			}
			handles = append(handles, rh)
		}
		ue.concrete[version] = handles
		return nil
	}

	if !tm.versioned() {
		if err := install(p, 0); err != nil {
			return 0, err
		}
		tm.entries[h] = ue
		return h, nil
	}
	shadow := tm.agent.vv ^ 1
	if err := install(p, shadow); err != nil {
		return 0, err
	}
	tm.entries[h] = ue
	if !tm.agent.inReaction {
		// Outside a reaction (prologue or ad-hoc): install both copies
		// immediately; there is no pending commit to mirror after.
		return h, install(p, shadow^1)
	}
	// Phase 3 (mirror): install the other copy after commit.
	tm.mirror = append(tm.mirror, func(p *sim.Proc) error {
		return install(p, shadow^1)
	})
	return h, nil
}

// modifyEntry rebinds a user entry's action/data via three-phase update.
func (tm *tableManager) modifyEntry(p *sim.Proc, h UserHandle, action string, data []uint64) error {
	ue, ok := tm.entries[h]
	if !ok {
		return fmt.Errorf("table %s: no user entry %d", tm.info.Table, h)
	}
	fields := tm.expandFields()
	newSpec := ue.spec
	newSpec.Action = action
	newSpec.Data = append([]uint64(nil), data...)

	apply := func(p *sim.Proc, version uint64) error {
		for i, combo := range ue.combos {
			e, err := tm.concreteEntry(newSpec, fields, combo, version)
			if err != nil {
				return err
			}
			if err := tm.agent.drv.ModifyEntry(p, tm.info.Table, ue.concrete[version][i], e.Action, e.Data); err != nil {
				return err
			}
		}
		return nil
	}
	if !tm.versioned() {
		if err := apply(p, 0); err != nil {
			return err
		}
		ue.spec = newSpec
		return nil
	}
	shadow := tm.agent.vv ^ 1
	if err := apply(p, shadow); err != nil {
		return err
	}
	ue.spec = newSpec
	if !tm.agent.inReaction {
		return apply(p, shadow^1)
	}
	tm.mirror = append(tm.mirror, func(p *sim.Proc) error {
		return apply(p, shadow^1)
	})
	return nil
}

// deleteEntry removes a user entry: the shadow copy is deleted in the
// prepare phase, the old primary after commit (§5.1.2).
func (tm *tableManager) deleteEntry(p *sim.Proc, h UserHandle) error {
	ue, ok := tm.entries[h]
	if !ok {
		return fmt.Errorf("table %s: no user entry %d", tm.info.Table, h)
	}
	remove := func(p *sim.Proc, version uint64) error {
		for _, rh := range ue.concrete[version] {
			if err := tm.agent.drv.DeleteEntry(p, tm.info.Table, rh); err != nil {
				return err
			}
		}
		ue.concrete[version] = nil
		return nil
	}
	if !tm.versioned() {
		if err := remove(p, 0); err != nil {
			return err
		}
		delete(tm.entries, h)
		return nil
	}
	shadow := tm.agent.vv ^ 1
	if err := remove(p, shadow); err != nil {
		return err
	}
	if !tm.agent.inReaction {
		if err := remove(p, shadow^1); err != nil {
			return err
		}
		delete(tm.entries, h)
		return nil
	}
	tm.mirror = append(tm.mirror, func(p *sim.Proc) error {
		if err := remove(p, shadow^1); err != nil {
			return err
		}
		delete(tm.entries, h)
		return nil
	})
	return nil
}

// fillShadow runs the deferred mirror operations (phase 3).
func (tm *tableManager) fillShadow(p *sim.Proc) error {
	ops := tm.mirror
	tm.mirror = nil
	for _, op := range ops {
		if err := op(p); err != nil {
			return err
		}
	}
	return nil
}

// pendingMirrors reports whether the table has staged changes awaiting
// commit.
func (tm *tableManager) pendingMirrors() int { return len(tm.mirror) }

// TableHandle is the user-facing API of a malleable table.
type TableHandle struct {
	tm *tableManager
}

// AddEntry installs a user entry (serializably, when invoked from a
// reaction).
func (th *TableHandle) AddEntry(p *sim.Proc, e UserEntry) (UserHandle, error) {
	return th.tm.addEntry(p, e)
}

// ModifyEntry rebinds a user entry's action and data.
func (th *TableHandle) ModifyEntry(p *sim.Proc, h UserHandle, action string, data []uint64) error {
	return th.tm.modifyEntry(p, h, action, data)
}

// DeleteEntry removes a user entry.
func (th *TableHandle) DeleteEntry(p *sim.Proc, h UserHandle) error {
	return th.tm.deleteEntry(p, h)
}

// SetDefault replaces the table's default action. Only valid for
// unversioned tables (a versioned default cannot match on vv).
func (th *TableHandle) SetDefault(p *sim.Proc, call *p4.ActionCall) error {
	if th.tm.versioned() {
		return fmt.Errorf("table %s: default actions on vv-protected tables are fixed; install entries instead", th.tm.info.Table)
	}
	return th.tm.agent.drv.SetDefaultAction(p, th.tm.info.Table, call)
}

// Entries returns the user-level entries (sorted by handle).
func (th *TableHandle) Entries() []UserEntry {
	hs := make([]UserHandle, 0, len(th.tm.entries))
	for h := range th.tm.entries {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	out := make([]UserEntry, len(hs))
	for i, h := range hs {
		out[i] = th.tm.entries[h].spec
	}
	return out
}
