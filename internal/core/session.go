package core

import (
	"repro/internal/compiler"
	"repro/internal/ctlplane"
	"repro/internal/sim"
)

// NewSessionAgent opens a primary-writer session on a control-plane
// service and builds an agent that speaks to the switch through it.
// This is the production wiring: the agent's dialogue ops are scheduled
// in the dialogue class ahead of legacy bulk traffic, and a competing
// controller can only take over by opening a primary session with a
// higher election id (at which point this agent's writes start failing
// with ctlplane.ErrNotPrimary and it stops, by design).
//
// NewAgent remains available for wiring an agent directly to a raw
// driver.Channel — single-tenant tests and the original microbenchmark
// rigs use it unchanged.
func NewSessionAgent(s *sim.Simulator, svc *ctlplane.Service, electionID uint64, plan *compiler.Plan, opts Options) (*Agent, *ctlplane.Session, error) {
	sess, err := svc.Open(ctlplane.SessionOptions{
		Name:       "mantis-agent",
		Role:       ctlplane.RolePrimary,
		ElectionID: electionID,
	})
	if err != nil {
		return nil, nil, err
	}
	return NewAgent(s, sess, plan, opts), sess, nil
}
