package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/packet"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// armAtIteration is the dialogue iteration at whose boundary the crash
// injector arms. Arming at a boundary (from AfterIteration) rather than
// at a wall-clock instant makes the op-counting deterministic: for the
// two-table workload every committing iteration issues exactly
//
//	ME(prepare t1), ME(prepare t2), SD(vv flip), ME(mirror t1), ME(mirror t2)
//
// so crash point k maps to a known protocol phase.
const armAtIteration = 50

// failoverRig is the two-controller crash rig: a journaled primary
// agent runs through a ctlplane session with a crash injector between
// agent and session (so only the primary's own channel halts, never the
// shared dispatcher), and a hot standby watches the shared journal.
//
//	primary agent -> crash injector -> session(e=1) -> service -> driver
//	standby agent ---------------------> session(e=2) (on takeover)
type failoverRig struct {
	sim   *sim.Simulator
	sw    *rmt.Switch
	drv   *driver.Driver
	svc   *ctlplane.Service
	plan  *compiler.Plan
	store *journal.MemStore
	inj   *faults.Injector
	agent *Agent // the primary
	sb    *Standby

	// Serializability bookkeeping, filled by the Tx hook and by the
	// AfterIteration hooks of both controllers. The reaction bumps a
	// shared generation once per iteration, so generation == iteration
	// number throughout (both controllers share the closure).
	packets    int
	violations int
	observed   map[uint64]bool // every o1/o2 value any egress packet carried
	committed  map[uint64]bool // every generation some controller committed
	stagedGen  uint64          // generation staged by the current iteration
}

func (r *failoverRig) inject(fields map[string]uint64) {
	pkt := r.plan.Prog.Schema.New()
	pkt.Size = 64
	for name, v := range fields {
		pkt.SetName(name, v)
	}
	r.sw.Inject(0, pkt)
}

// switchVV reads the committed version bit straight off the switch's
// master init table, independent of any agent's belief.
func (r *failoverRig) switchVV(t *testing.T) uint64 {
	t.Helper()
	master := r.plan.InitTables[0]
	call, err := r.sw.DefaultAction(master.Table)
	if err != nil {
		t.Fatalf("read master default action: %v", err)
	}
	for i, ip := range master.Params {
		if ip.Kind == compiler.InitVV {
			return call.Data[i]
		}
	}
	t.Fatal("master init table has no vv parameter")
	return 0
}

// afterIterationHook returns a per-agent commit recorder: whenever the
// agent's commit counter advances, the generation staged during that
// iteration became packet-visible.
func (r *failoverRig) afterIterationHook(arm bool) func(p *sim.Proc, a *Agent) {
	var seen uint64
	return func(p *sim.Proc, a *Agent) {
		if a.stats.Commits > seen {
			seen = a.stats.Commits
			r.committed[r.stagedGen] = true
		}
		if arm && a.stats.Iterations == armAtIteration {
			r.inj.SetEnabled(true)
		}
	}
}

// buildFailoverRig wires the full two-controller stack over the
// two-table serializability workload.
func buildFailoverRig(t testing.TB, prof faults.Profile, seed int64) *failoverRig {
	t.Helper()
	plan, err := compiler.CompileSource(twoTableSrc, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.New(seed)
	sw, err := rmt.New(s, plan.Prog, rmt.DefaultConfig())
	if err != nil {
		t.Fatalf("switch: %v", err)
	}
	drv := driver.New(s, sw, driver.DefaultCostModel())
	svc := ctlplane.New(s, drv, ctlplane.Options{})
	sess, err := svc.Open(ctlplane.SessionOptions{Name: "primary", Role: ctlplane.RolePrimary, ElectionID: 1})
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	inj := faults.Wrap(s, sess, prof, seed)
	inj.SetEnabled(false) // armed at an iteration boundary by the hook
	store := journal.NewMemStore()

	r := &failoverRig{
		sim: s, sw: sw, drv: drv, svc: svc, plan: plan, store: store, inj: inj,
		observed: make(map[uint64]bool), committed: make(map[uint64]bool),
	}

	// h1/h2 and gen are shared closures: user handles are stable across
	// a takeover (the journal records them), so the successor's reaction
	// reuses them as-is.
	var h1, h2 UserHandle
	gen := uint64(0)
	reaction := func(ctx *Ctx) error {
		gen++
		r.stagedGen = gen
		t1, _ := ctx.Table("t1")
		t2, _ := ctx.Table("t2")
		if err := t1.ModifyEntry(h1, "set1", []uint64{gen}); err != nil {
			return err
		}
		return t2.ModifyEntry(h2, "set2", []uint64{gen})
	}

	r.agent = NewAgent(s, inj, plan, Options{
		Recovery:       DefaultRecovery(),
		Journal:        &JournalConfig{Store: store},
		AfterIteration: r.afterIterationHook(true),
		Prologue: func(p *sim.Proc, a *Agent) error {
			t1, _ := a.Table("t1")
			t2, _ := a.Table("t2")
			var err error
			if h1, err = t1.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set1", Data: []uint64{0}}); err != nil {
				return err
			}
			h2, err = t2.AddEntry(p, UserEntry{Keys: []rmt.KeySpec{rmt.ExactKey(7)}, Action: "set2", Data: []uint64{0}})
			return err
		},
	})
	if err := r.agent.RegisterNativeReaction("bump", reaction); err != nil {
		t.Fatal(err)
	}

	r.sb = NewStandby(s, svc, StandbyOptions{
		Name:             "standby",
		ElectionID:       2,
		Store:            store,
		Plan:             plan,
		HeartbeatTimeout: 30 * time.Microsecond,
		CheckEvery:       3 * time.Microsecond,
		Agent: Options{
			Recovery:       DefaultRecovery(),
			AfterIteration: r.afterIterationHook(false),
		},
		Configure: func(a *Agent) error {
			return a.RegisterNativeReaction("bump", reaction)
		},
	})

	r.sw.Tx = func(_ int, pkt *packet.Packet) {
		r.packets++
		o1, o2 := pkt.GetName("hdr.o1"), pkt.GetName("hdr.o2")
		if o1 != o2 {
			r.violations++
		}
		r.observed[o1] = true
		r.observed[o2] = true
	}
	return r
}

// runFailoverScenario executes the rig: the prologue installs cleanly,
// the injector arms at the configured iteration boundary, traffic flows
// throughout, and the simulation runs long enough for crash, detection,
// recovery, and post-takeover progress.
func runFailoverScenario(t testing.TB, r *failoverRig) {
	t.Helper()
	r.agent.Start()
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(map[string]uint64{"hdr.k": 7})
	})
	r.sim.RunFor(2 * time.Millisecond)
	tick.Stop()
	r.sb.Stop()
	if a := r.sb.Agent(); a != nil {
		a.Stop()
	}
	r.sim.RunFor(time.Millisecond)
}

// checkFailover asserts the full takeover contract: the standby
// promoted itself, recovery succeeded, the successor made progress, no
// packet observed a mixed (vv, config) snapshot, and no table write
// from a torn iteration ever became packet-visible.
func checkFailover(t *testing.T, r *failoverRig) *TakeoverReport {
	t.Helper()
	if !r.inj.Crashed() {
		t.Fatal("the crash point never fired; the scenario is vacuous")
	}
	if err := r.sb.Err(); err != nil {
		t.Fatalf("standby takeover failed: %v", err)
	}
	if !r.sb.TookOver() {
		t.Fatal("standby never detected the dead primary")
	}
	rep := r.sb.Report()
	if rep == nil || rep.Recover == nil {
		t.Fatal("takeover produced no report")
	}
	succ := r.sb.Agent()
	if err := succ.Err(); err != nil {
		t.Fatalf("successor agent died: %v", err)
	}
	if succ.Stats().Commits == 0 {
		t.Fatalf("successor made no commits after %s recovery", rep.Recover.Outcome)
	}
	if r.violations != 0 {
		t.Fatalf("%d/%d packets observed mixed cross-table state across the takeover", r.violations, r.packets)
	}
	if r.packets < 1000 {
		t.Fatalf("only %d packets audited; traffic generator misconfigured", r.packets)
	}
	// Leak check: every generation any packet carried must be one some
	// controller committed (0 is the prologue value). The crashed
	// iteration's generation equals its iteration number (the reaction
	// bumps once per iteration); it may appear only if recovery rolled
	// the iteration forward.
	allowed := make(map[uint64]bool, len(r.committed)+2)
	for g := range r.committed {
		allowed[g] = true
	}
	allowed[0] = true
	if rep.Recover.Outcome == OutcomeCommittedUnmirrored {
		allowed[rep.Recover.Iteration] = true
	}
	for g := range r.observed {
		if !allowed[g] {
			t.Fatalf("packets observed generation %d, which no controller committed (outcome %s)", g, rep.Recover.Outcome)
		}
	}
	// MTTR sanity: phases are ordered and the whole takeover lands well
	// inside a millisecond of virtual time.
	if rep.RecoveredAt < rep.DetectedAt {
		t.Fatalf("takeover phases out of order: %+v", rep)
	}
	if rep.ResumedAt == 0 {
		t.Fatal("successor never committed (no resume timestamp)")
	}
	if rep.ResumedAt < rep.RecoveredAt {
		t.Fatalf("resumed before recovery finished: %+v", rep)
	}
	if mttr := rep.ResumedAt.Sub(r.inj.CrashedAt()); mttr > time.Millisecond {
		t.Fatalf("MTTR %v exceeds the 1ms budget", mttr)
	}
	return rep
}

// TestFailoverCrashPointSweep kills the primary before its k-th driver
// operation for every k across two-plus iterations' worth of the op
// sequence and asserts the takeover contract at every point. This is
// the acceptance sweep: recovery must be correct no matter where in the
// three-phase protocol the crash lands.
func TestFailoverCrashPointSweep(t *testing.T) {
	outcomes := make(map[Outcome]int)
	for k := 1; k <= 12; k++ {
		k := k
		t.Run(fmt.Sprintf("op-%02d", k), func(t *testing.T) {
			prof := faults.Profile{Name: fmt.Sprintf("crash-at-%d", k), CrashAtOp: k}
			r := buildFailoverRig(t, prof, int64(1000+k))
			runFailoverScenario(t, r)
			rep := checkFailover(t, r)
			outcomes[rep.Recover.Outcome]++
		})
	}
	// Two-plus full iterations of crash points must exercise every
	// classification; if one never appears, the op indexing regressed.
	for _, want := range []Outcome{OutcomeNotStarted, OutcomeTornPrepare, OutcomeCommittedUnmirrored} {
		if outcomes[want] == 0 {
			t.Fatalf("no crash point classified as %s: %v", want, outcomes)
		}
	}
}

// TestFailoverClassification pins the torn-state classification for the
// named crash profiles, which target specific protocol phases by op
// kind. With boundary-aligned arming the mapping is exact.
func TestFailoverClassification(t *testing.T) {
	cases := []struct {
		name string
		prof faults.Profile
		want Outcome
	}{
		// Crash before the second shadow prepare: one table's shadow
		// carries the new value, the other the old. Roll back.
		{"mid-prepare", faults.CrashMidPrepare(), OutcomeTornPrepare},
		// Crash before a vv flip: prepares landed, the flip did not.
		{"at-commit", faults.CrashAtCommit(), OutcomeTornPrepare},
		// Crash before the first mirror write: the flip landed, so
		// recovery completes the iteration from its journaled intent.
		{"mid-mirror", faults.CrashMidMirror(), OutcomeCommittedUnmirrored},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := buildFailoverRig(t, tc.prof, 42)
			runFailoverScenario(t, r)
			rep := checkFailover(t, r)
			if rep.Recover.Outcome != tc.want {
				t.Fatalf("outcome = %s, want %s", rep.Recover.Outcome, tc.want)
			}
			if tc.want == OutcomeCommittedUnmirrored && rep.Recover.RepairWrites == 0 {
				t.Fatal("committed-unmirrored recovery issued no repair writes (mirror cannot have been complete)")
			}
		})
	}
}

// TestRecoverCleanRestart recovers from a journal with no pending
// intent: the audit must verify the switch against the checkpoint and
// change nothing.
func TestRecoverCleanRestart(t *testing.T) {
	r := buildFailoverRig(t, faults.Profile{Name: "none"}, 7)
	r.sb.Stop() // no heartbeat takeover here; Recover is called directly
	r.agent.opts.MaxIterations = 20
	r.agent.Start()
	r.sim.RunFor(2 * time.Millisecond)
	if err := r.agent.Err(); err != nil {
		t.Fatalf("primary: %v", err)
	}

	done := false
	r.sim.Spawn("restarter", func(p *sim.Proc) {
		a, rep, err := RecoverSessionAgent(p, r.sim, r.svc, "restart", 2, r.store, r.plan, Options{})
		if err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if rep.Outcome != OutcomeClean {
			t.Errorf("outcome = %s, want clean", rep.Outcome)
		}
		if rep.RepairWrites != 0 {
			t.Errorf("clean recovery issued %d repair writes", rep.RepairWrites)
		}
		if rep.Iteration != 20 {
			t.Errorf("recovered iteration = %d, want 20", rep.Iteration)
		}
		if a.VV() != r.agent.VV() {
			t.Errorf("recovered vv = %d, primary had %d", a.VV(), r.agent.VV())
		}
		if rep.AuditedTables == 0 || rep.AuditedEntries == 0 {
			t.Errorf("clean recovery audited nothing: %+v", rep)
		}
		done = true
	})
	r.sim.RunFor(time.Millisecond)
	if !done {
		t.Fatal("recovery never completed")
	}
}

// TestRecoverNoCheckpoint pins the boot-failure contract: recovering
// from an empty journal refuses with ErrNoCheckpoint.
func TestRecoverNoCheckpoint(t *testing.T) {
	r := buildFailoverRig(t, faults.Profile{Name: "none"}, 3)
	r.sb.Stop()
	ran := false
	r.sim.Spawn("recover-empty", func(p *sim.Proc) {
		_, _, err := RecoverSessionAgent(p, r.sim, r.svc, "succ", 2, journal.NewMemStore(), r.plan, Options{})
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("err = %v, want ErrNoCheckpoint", err)
		}
		ran = true
	})
	r.sim.RunFor(time.Millisecond)
	if !ran {
		t.Fatal("recovery goroutine never ran")
	}
}

// TestReelectionDuringIteration is the demotion path (as opposed to the
// crash path above): a successor with a higher election id takes
// primacy while the incumbent is mid-iteration. The incumbent's next
// write fails with ErrNotPrimary and it dies; whatever it half-staged
// must not corrupt the state the successor audits, and packets must
// stay consistent throughout.
func TestReelectionDuringIteration(t *testing.T) {
	r := buildFailoverRig(t, faults.Profile{Name: "none"}, 11)
	r.sb.Stop() // takeover is explicit here, not heartbeat-driven

	r.agent.Start()
	tick := r.sim.Every(150*sim.Nanosecond, func() {
		r.inject(map[string]uint64{"hdr.k": 7})
	})
	var succ *Agent
	var rep *RecoverReport
	r.sim.Schedule(500*sim.Microsecond, func() {
		r.sim.Spawn("usurper", func(p *sim.Proc) {
			// A small odd offset lands the election mid-iteration
			// (iterations are a few µs long and back to back).
			p.Sleep(1700 * sim.Nanosecond)
			var err error
			succ, rep, err = RecoverSessionAgent(p, r.sim, r.svc, "usurper", 5, r.store, r.plan, Options{
				Recovery: DefaultRecovery(),
			})
			if err != nil {
				t.Errorf("usurper recovery: %v", err)
			}
		})
	})
	r.sim.RunFor(3 * time.Millisecond)
	tick.Stop()

	// The incumbent must be dead with a non-primary error: demotion is
	// not a transient channel fault, so retrying cannot mask it.
	err := r.agent.Err()
	if err == nil {
		t.Fatal("demoted primary kept running")
	}
	if !errors.Is(err, ctlplane.ErrNotPrimary) {
		t.Fatalf("incumbent died with %v, want ErrNotPrimary", err)
	}
	if succ == nil || rep == nil {
		t.Fatal("successor never recovered")
	}
	if r.violations != 0 {
		t.Fatalf("%d/%d packets observed mixed state across the demotion", r.violations, r.packets)
	}
	if got, want := succ.VV(), r.switchVV(t); got != want {
		t.Fatalf("successor vv=%d disagrees with switch vv=%d", got, want)
	}
}
