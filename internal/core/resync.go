package core

import (
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/faults"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// This file handles the one failure mode an unreliable control channel
// adds on top of the transient-error model: ambiguity. When an
// operation dies with driver.ErrChannelDegraded, the request — or only
// its acknowledgment — may be what was lost, so the switch may or may
// not hold the write. Two mechanisms resolve the two places ambiguity
// bites:
//
//   - resync: after an iteration is abandoned on a degraded error, the
//     switch is audited (master default action + every recovery-audited
//     table) against the agent's committed in-memory image — the same
//     image the journal checkpoints — and reconciled with minimal
//     writes, exactly as a standby takeover would, but in-session and
//     without restarting. Until the audit itself succeeds the flag
//     stays set, so a partitioned agent keeps degrading and retrying
//     until the heal, then resyncs once.
//
//   - resolveFlip: the master vv flip cannot wait for a later audit —
//     if a flip reported as degraded actually landed, the former shadow
//     copies are already packet-visible, and the normal rollback would
//     scribble on them mid-service. So a degraded flip is resolved
//     inline: read the master back until a read succeeds (the channel
//     client's MSL quarantine guarantees no stale copy of the flip is
//     still in flight by the time the degraded error is reported, so
//     what the read observes is the flip's final fate), then either
//     continue the commit as a success or reissue the flip.

// resync audits the switch against the committed image and reconciles
// any divergence left by operations whose fate was unknown. Runs at
// iteration start, after repair debt drains and before anything new is
// staged; failures (e.g. the channel is still partitioned) abandon the
// iteration again with the resync still pending.
func (a *Agent) resync(p *sim.Proc) error {
	if len(a.plan.InitTables) == 0 {
		a.stats.Resyncs++
		return nil
	}
	master := a.plan.InitTables[0]
	masterCall, err := a.drvReadDefaultAction(p, master.Table)
	if err != nil {
		return fmt.Errorf("resync: master audit: %w", err)
	}
	actualVV, actualMV := a.vv, a.mv
	if masterCall != nil {
		for i, ip := range master.Params {
			if i >= len(masterCall.Data) {
				break
			}
			switch ip.Kind {
			case compiler.InitVV:
				actualVV = masterCall.Data[i]
			case compiler.InitMV:
				actualMV = masterCall.Data[i]
			}
		}
	}
	// vv never moves ambiguously: commit resolves degraded flips inline
	// before the iteration can be abandoned. A mismatch here means that
	// invariant broke — stop rather than guess which copies are live.
	if actualVV != a.vv {
		return fmt.Errorf("core: resync: switch has vv=%d but committed image has vv=%d (ambiguous flip escaped resolution)", actualVV, a.vv)
	}
	// Journal-vs-switch cross-check: the committed image being reasserted
	// is exactly what the last checkpoint recorded. If they disagree, the
	// journal no longer describes this agent and a failover from it would
	// diverge — fatal.
	if a.journaling() {
		cp, err := a.opts.Journal.Store.LoadCheckpoint()
		if err != nil {
			return fmt.Errorf("resync: load checkpoint: %w", err)
		}
		if cp != nil && cp.VV != a.vv {
			return fmt.Errorf("core: resync: journal checkpoint has vv=%d but committed image has vv=%d", cp.VV, a.vv)
		}
	}

	auditTables := auditTableSet(a.plan)
	audited := make(map[string][]rmt.Entry, len(auditTables))
	for _, table := range auditTables {
		es, err := a.drvReadEntries(p, table)
		if err != nil {
			return fmt.Errorf("resync: audit %s: %w", table, err)
		}
		audited[table] = es
	}

	// mv flips are measurement-only; adopt whatever the switch holds (a
	// degraded mv flip that silently landed is absorbed here).
	a.mv = actualMV
	writes, err := a.reconcile(p, masterCall, audited, auditTables, actualMV)
	a.stats.ResyncWrites += uint64(writes)
	if err != nil {
		return fmt.Errorf("resync: reconcile: %w", err)
	}
	a.stats.Resyncs++
	return nil
}

// resolveFlip determines the fate of a master update that died with
// driver.ErrChannelDegraded: it reads the master default action back —
// retrying indefinitely, since no forward progress of any kind is safe
// while the flip is in limbo — and reports whether the vv slot reached
// newVV. A stop request escapes with flipUnresolved set, so the exit
// path leaves the journal intent in place for a successor.
func (a *Agent) resolveFlip(p *sim.Proc, newVV uint64) (bool, error) {
	a.stats.AmbiguousFlips++
	// Disarm the watchdog: there is no safe way to abandon an iteration
	// whose flip is undecided, so the resolution loop must outlive any
	// deadline.
	a.iterDeadline = 0
	master := a.plan.InitTables[0]
	rec := a.opts.Recovery
	base := rec.RetryBackoff
	if base <= 0 {
		base = 2 * time.Microsecond
	}
	maxB := rec.MaxBackoff
	if maxB <= 0 {
		maxB = 64 * time.Microsecond
	}
	bo := faults.NewBackoff(a.sim.Rand(), base, maxB)
	for {
		// Raw read, outside drvOp: the retry budget and watchdog must not
		// apply, and every error class (transient, degraded) just means
		// "ask again".
		call, err := a.drv.ReadDefaultAction(p, master.Table)
		if err == nil {
			actualVV := a.vv
			if call != nil {
				for i, ip := range master.Params {
					if i < len(call.Data) && ip.Kind == compiler.InitVV {
						actualVV = call.Data[i]
					}
				}
			}
			return actualVV == newVV, nil
		}
		if a.stopRequested() {
			a.flipUnresolved = true
			return false, fmt.Errorf("master flip unresolved: %w", ErrStopped)
		}
		p.Sleep(bo.Next())
	}
}
