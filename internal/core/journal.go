package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// This file wires the agent's dialogue loop to the durable intent
// journal (internal/journal). The write points:
//
//   - prologue end: checkpoint + heartbeat (the recovery baseline);
//   - iteration start (after repair debt drains): intent in PhaseBegun;
//   - commit start (before the prepare phase touches the switch):
//     intent upgraded to PhaseCommitStaged with the staged user-level
//     ops and the exact init data the flip will install;
//   - iteration end: fresh checkpoint, THEN intent truncation, then
//     heartbeat. The order matters: if the process dies between the
//     two writes, the leftover intent is idempotent against the new
//     checkpoint (ops record post-state, so re-applying them is a
//     no-op), whereas truncating first could leave a committed
//     iteration looking "clean" against a stale checkpoint and make
//     recovery rewrite the packet-visible copy;
//   - iteration abandon: rollback first, then intent truncation — if
//     the process dies mid-rollback the intent still classifies the
//     state as torn and recovery finishes the job.
//
// Journal failures are fatal to the agent: mutating the switch without
// a durable intent would silently void the crash-consistency guarantee.

// JournalConfig enables crash-consistent write-ahead journaling of the
// dialogue loop.
type JournalConfig struct {
	// Store is the durability backend (journal.MemStore models a
	// battery-backed journal region a standby can read; journal.FileStore
	// persists across real process restarts).
	Store journal.Store
	// WriteLatency models the durability cost of one checkpoint or
	// intent write (an NVMe flush, a replication ack). Zero = free.
	// Heartbeats are piggybacked and never pay it.
	WriteLatency time.Duration
}

// journaling reports whether the agent writes a durable journal.
func (a *Agent) journaling() bool {
	return a.opts.Journal != nil && a.opts.Journal.Store != nil
}

// journalWrite pays the configured durability latency, then runs one
// store operation.
func (a *Agent) journalWrite(p *sim.Proc, desc string, fn func() error) error {
	if d := a.opts.Journal.WriteLatency; d > 0 {
		p.Sleep(d)
	}
	if err := fn(); err != nil {
		return fmt.Errorf("journal %s: %w", desc, err)
	}
	return nil
}

// recordStagedOp appends one user-level table op to the iteration's
// intent, preserving global staging order across tables (roll-forward
// replays in this order).
func (a *Agent) recordStagedOp(op journal.TableOp) {
	if !a.journaling() {
		return
	}
	a.stagedOps = append(a.stagedOps, op)
}

// specToJournal deep-copies a user entry spec into its journal form.
func specToJournal(spec UserEntry) journal.EntrySpec {
	return journal.EntrySpec{
		Keys:     append([]rmt.KeySpec(nil), spec.Keys...),
		Priority: spec.Priority,
		Action:   spec.Action,
		Data:     append([]uint64(nil), spec.Data...),
	}
}

// specFromJournal is the inverse of specToJournal.
func specFromJournal(es journal.EntrySpec) UserEntry {
	return UserEntry{
		Keys:     append([]rmt.KeySpec(nil), es.Keys...),
		Priority: es.Priority,
		Action:   es.Action,
		Data:     append([]uint64(nil), es.Data...),
	}
}

// sortedTableNames returns the agent's malleable table names in
// deterministic order.
func (a *Agent) sortedTableNames() []string {
	names := make([]string, 0, len(a.tables))
	for name := range a.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildCheckpoint captures the committed configuration as a journal
// checkpoint. Called only between iterations (or at prologue end), when
// every in-memory spec reflects committed state.
func (a *Agent) buildCheckpoint(now sim.Time) *journal.Checkpoint {
	cp := &journal.Checkpoint{
		Iteration: a.stats.Iterations,
		VV:        a.vv,
		MV:        a.mv,
		SavedAt:   int64(now),
	}
	cp.InitData = make([][]uint64, len(a.initData))
	for i, d := range a.initData {
		cp.InitData[i] = append([]uint64(nil), d...)
	}
	if len(a.mblCache) > 0 {
		cp.Mbl = make(map[string]uint64, len(a.mblCache))
		for k, v := range a.mblCache {
			cp.Mbl[k] = v
		}
	}
	for _, name := range a.sortedTableNames() {
		tm := a.tables[name]
		ts := journal.TableState{Table: name, NextHandle: uint64(tm.nextHandle)}
		handles := make([]UserHandle, 0, len(tm.entries))
		for h := range tm.entries {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		for _, h := range handles {
			ts.Entries = append(ts.Entries, journal.EntryState{
				Handle: uint64(h), Spec: specToJournal(tm.entries[h].spec),
			})
		}
		cp.Tables = append(cp.Tables, ts)
	}
	regNames := make([]string, 0, len(a.regCache))
	for name := range a.regCache {
		regNames = append(regNames, name)
	}
	sort.Strings(regNames)
	for _, name := range regNames {
		rc := a.regCache[name]
		cp.RegCaches = append(cp.RegCaches, journal.RegCache{
			Name: name,
			Vals: append([]uint64(nil), rc.vals...),
			LastTs: [2][]uint64{
				append([]uint64(nil), rc.lastTs[0]...),
				append([]uint64(nil), rc.lastTs[1]...),
			},
		})
	}
	return cp
}

// journalCheckpoint saves a fresh checkpoint and heartbeats.
func (a *Agent) journalCheckpoint(p *sim.Proc) error {
	if !a.journaling() {
		return nil
	}
	cp := a.buildCheckpoint(p.Now())
	if err := a.journalWrite(p, "checkpoint", func() error {
		return a.opts.Journal.Store.SaveCheckpoint(cp)
	}); err != nil {
		return err
	}
	return a.heartbeat(p)
}

// heartbeat records liveness (free: piggybacked on journal traffic).
func (a *Agent) heartbeat(p *sim.Proc) error {
	if err := a.opts.Journal.Store.Heartbeat(int64(p.Now())); err != nil {
		return fmt.Errorf("journal heartbeat: %w", err)
	}
	return nil
}

// journalBegin write-ahead-logs the start of an iteration.
func (a *Agent) journalBegin(p *sim.Proc) error {
	if !a.journaling() {
		return nil
	}
	// The intent scratch is reused every iteration: Store.WriteIntent
	// serializes before returning (see the journal.Store contract), so
	// handing it a pooled value is safe.
	a.intentScratch = journal.Intent{
		Iteration: a.stats.Iterations + 1,
		Phase:     journal.PhaseBegun,
		StartVV:   a.vv,
		TargetVV:  a.vv ^ 1,
		WrittenAt: int64(p.Now()),
	}
	return a.journalWrite(p, "begin intent", func() error {
		return a.opts.Journal.Store.WriteIntent(&a.intentScratch)
	})
}

// journalCommitStaged upgrades the iteration's intent with the full
// staged op list and the init data the flip will install. Must complete
// before the prepare phase issues its first driver write.
func (a *Agent) journalCommitStaged(p *sim.Proc, targetInit [][]uint64) error {
	if !a.journaling() {
		return nil
	}
	// Ops references the staged-op slice directly (no defensive copy):
	// WriteIntent serializes synchronously and the slice is not mutated
	// until the intent is retired.
	a.intentScratch = journal.Intent{
		Iteration: a.stats.Iterations + 1,
		Phase:     journal.PhaseCommitStaged,
		StartVV:   a.vv,
		TargetVV:  a.vv ^ 1,
		Ops:       a.stagedOps,
		WrittenAt: int64(p.Now()),
	}
	if len(a.pendingMbl) > 0 {
		a.intentScratch.PendingMbl = a.pendingMbl
	}
	a.intentScratch.TargetInitData = targetInit
	return a.journalWrite(p, "commit intent", func() error {
		return a.opts.Journal.Store.WriteIntent(&a.intentScratch)
	})
}

// journalIterationEnd checkpoints the now-committed configuration and
// retires the iteration's intent (checkpoint strictly first; see the
// file comment for why).
func (a *Agent) journalIterationEnd(p *sim.Proc) error {
	a.stagedOps = a.stagedOps[:0]
	if !a.journaling() {
		return nil
	}
	cp := a.buildCheckpoint(p.Now())
	if err := a.journalWrite(p, "checkpoint", func() error {
		return a.opts.Journal.Store.SaveCheckpoint(cp)
	}); err != nil {
		return err
	}
	if err := a.opts.Journal.Store.TruncateIntent(); err != nil {
		return fmt.Errorf("journal truncate: %w", err)
	}
	return a.heartbeat(p)
}

// journalAbandon retires the intent of an iteration whose staged state
// was just rolled back. The checkpoint is untouched: nothing committed.
func (a *Agent) journalAbandon(p *sim.Proc) error {
	a.stagedOps = a.stagedOps[:0]
	if !a.journaling() {
		return nil
	}
	if err := a.opts.Journal.Store.TruncateIntent(); err != nil {
		return fmt.Errorf("journal truncate: %w", err)
	}
	return a.heartbeat(p)
}
