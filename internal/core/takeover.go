package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/ctlplane"
	"repro/internal/driver"
	"repro/internal/journal"
	"repro/internal/p4"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// This file implements crash recovery and primary takeover: a successor
// controller reads the dead primary's journal, audits the live switch
// configuration through the driver, classifies how far the crashed
// iteration got, and deterministically rolls it back or forward before
// resuming the dialogue loop.
//
// Classification, from journal (checkpoint C, optional intent I) and
// the audited vv bit:
//
//	I absent,        vv == C.VV        -> clean       (verify only)
//	I.Phase = begun, vv == I.StartVV   -> not-started (no divergence) or
//	                                      torn-prepare (divergence: the
//	                                      reaction's shadow prepares
//	                                      landed partially) -> roll back
//	I.Phase = commit-staged,
//	                 vv == I.StartVV   -> torn-prepare -> roll back to C
//	                 vv == I.TargetVV  -> committed-unmirrored -> roll
//	                                      forward to C ⊕ I.Ops
//	anything else                      -> corrupt journal, refuse
//
// Two properties make reconciliation simple and safe:
//
//   - The target state defines BOTH table copies (primary and shadow
//     converge between iterations), so the reconciler never needs to
//     reason about which copy a torn write landed in: it diffs every
//     audited entry against the target and every fix to the live copy
//     is, by construction, restoring data packets were already meant
//     to see, while fixes to the shadow copy are invisible until the
//     next flip.
//
//   - Audited entries are matched to expected entries by their match
//     key fingerprint, not by handle: the dead primary's handles are
//     meaningless to the successor, but the generated keys (alt
//     selectors, vv column) identify each concrete entry uniquely.
type Outcome string

// Takeover outcomes (RecoverReport.Outcome).
const (
	// OutcomeClean: no intent was pending; the audit verified the switch
	// matches the checkpoint.
	OutcomeClean Outcome = "clean"
	// OutcomeNotStarted: an iteration was in flight but no write of it
	// reached the switch.
	OutcomeNotStarted Outcome = "not-started"
	// OutcomeTornPrepare: the crashed iteration left partial shadow
	// prepares (or a partial rollback); recovery rolled back to the
	// checkpoint.
	OutcomeTornPrepare Outcome = "torn-prepare"
	// OutcomeCommittedUnmirrored: the vv flip landed but the mirror
	// phase did not finish; recovery rolled forward, completing the
	// crashed iteration's intent.
	OutcomeCommittedUnmirrored Outcome = "committed-unmirrored"
)

// Recovery errors.
var (
	// ErrNoCheckpoint: the journal has no checkpoint — the primary died
	// before finishing its prologue. That is a boot failure, not a
	// failover: redeploy instead of recovering.
	ErrNoCheckpoint = errors.New("core: recover: journal has no checkpoint")
	// ErrJournalCorrupt: the audited switch state is impossible under
	// the journal (e.g. a vv value neither the start nor the target of
	// the pending intent). Refusing is safer than guessing.
	ErrJournalCorrupt = errors.New("core: recover: switch state inconsistent with journal")
)

// RecoverReport describes what recovery found and fixed.
type RecoverReport struct {
	Outcome   Outcome
	Iteration uint64 // dialogue iteration count after recovery
	VV        uint64 // committed config version after recovery
	MV        uint64 // measurement version adopted from the audit
	// AuditedTables/AuditedEntries size the audit read-back.
	AuditedTables  int
	AuditedEntries int
	// RepairWrites counts the driver writes reconciliation issued to
	// converge the switch on the target state (0 for clean/not-started).
	RepairWrites int
	// AuditTime and ReconcileTime split the recovery's channel work.
	AuditTime     time.Duration
	ReconcileTime time.Duration
}

// Recover reconstructs an agent from the journal in store and the live
// switch state behind ch. It audits the configuration, classifies the
// crashed iteration, rolls it back or forward, journals a fresh
// baseline, and returns the agent ready to Start (its prologue will
// skip re-installation). Register natives via the returned agent
// before starting it.
func Recover(p *sim.Proc, s *sim.Simulator, ch driver.Channel, store journal.Store, plan *compiler.Plan, opts Options) (*Agent, *RecoverReport, error) {
	cp, err := store.LoadCheckpoint()
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: load checkpoint: %w", err)
	}
	if cp == nil {
		return nil, nil, ErrNoCheckpoint
	}
	intent, err := store.LoadIntent()
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: load intent: %w", err)
	}
	if len(plan.InitTables) == 0 {
		return nil, nil, fmt.Errorf("core: recover: plan has no init tables, nothing to audit")
	}

	// The successor journals to the same store.
	if opts.Journal == nil {
		opts.Journal = &JournalConfig{Store: store}
	} else if opts.Journal.Store == nil {
		j := *opts.Journal
		j.Store = store
		opts.Journal = &j
	}
	a := NewAgent(s, ch, plan, opts)
	a.recovered = true
	rep := &RecoverReport{}

	// ---- Audit: read back version bits and every reconciled table ----
	auditStart := p.Now()
	master := plan.InitTables[0]
	masterCall, err := a.drvReadDefaultAction(p, master.Table)
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: audit master: %w", err)
	}
	actualVV, actualMV := cp.VV, cp.MV
	if masterCall != nil {
		for i, ip := range master.Params {
			if i >= len(masterCall.Data) {
				break
			}
			switch ip.Kind {
			case compiler.InitVV:
				actualVV = masterCall.Data[i]
			case compiler.InitMV:
				actualMV = masterCall.Data[i]
			}
		}
	}
	audited := make(map[string][]rmt.Entry)
	auditTables := auditTableSet(plan)
	for _, table := range auditTables {
		es, err := a.drvReadEntries(p, table)
		if err != nil {
			return nil, nil, fmt.Errorf("core: recover: audit %s: %w", table, err)
		}
		audited[table] = es
		rep.AuditedEntries += len(es)
	}
	rep.AuditedTables = len(auditTables)
	rep.AuditTime = p.Now().Sub(auditStart)

	// ---- Classify and pick the target state ----
	target := cp
	targetMbl := make(map[string]uint64, len(cp.Mbl))
	for k, v := range cp.Mbl {
		targetMbl[k] = v
	}
	var outcome Outcome
	switch {
	case intent == nil:
		if actualVV != cp.VV {
			return nil, nil, fmt.Errorf("%w: no pending intent but vv=%d, checkpoint has %d", ErrJournalCorrupt, actualVV, cp.VV)
		}
		outcome = OutcomeClean
	case intent.Phase == journal.PhaseBegun:
		if actualVV != intent.StartVV {
			return nil, nil, fmt.Errorf("%w: begun intent from vv=%d but switch has vv=%d", ErrJournalCorrupt, intent.StartVV, actualVV)
		}
		outcome = OutcomeTornPrepare // refined to not-started below if nothing diverged
	case intent.Phase == journal.PhaseCommitStaged && actualVV == intent.TargetVV:
		outcome = OutcomeCommittedUnmirrored
		target = rollForward(cp, intent)
		for k, v := range intent.PendingMbl {
			targetMbl[k] = v
		}
	case intent.Phase == journal.PhaseCommitStaged && actualVV == intent.StartVV:
		outcome = OutcomeTornPrepare
	default:
		return nil, nil, fmt.Errorf("%w: intent phase %q start=%d target=%d, switch vv=%d",
			ErrJournalCorrupt, intent.Phase, intent.StartVV, intent.TargetVV, actualVV)
	}

	// ---- Seed the successor's in-memory image from the target ----
	a.vv = target.VV
	a.mv = actualMV // mv flips are measurement-only; adopt the live bit
	a.stats.Iterations = target.Iteration
	a.initData = make([][]uint64, len(target.InitData))
	for i, d := range target.InitData {
		a.initData[i] = append([]uint64(nil), d...)
	}
	a.mblCache = targetMbl
	for _, ts := range target.Tables {
		tm, ok := a.tables[ts.Table]
		if !ok {
			return nil, nil, fmt.Errorf("core: recover: checkpoint names unknown malleable table %q", ts.Table)
		}
		tm.nextHandle = UserHandle(ts.NextHandle)
		for _, es := range ts.Entries {
			tm.entries[UserHandle(es.Handle)] = &userEntry{
				spec:   specFromJournal(es.Spec),
				combos: tm.allCombos(),
			}
		}
	}
	// Register caches resume from the checkpointed measurement snapshot,
	// so the ts-guarded merge stays monotonic across the takeover.
	for _, info := range plan.Reactions {
		for _, rp := range info.RegParams {
			if _, ok := a.regCache[rp.Orig]; !ok {
				a.regCache[rp.Orig] = newRegCacheState(rp)
			}
		}
	}
	for _, rc := range cp.RegCaches {
		if st, ok := a.regCache[rc.Name]; ok {
			copy(st.vals, rc.Vals)
			copy(st.lastTs[0], rc.LastTs[0])
			copy(st.lastTs[1], rc.LastTs[1])
		}
	}

	// ---- Reconcile the switch onto the target state ----
	reconStart := p.Now()
	writes, err := a.reconcile(p, masterCall, audited, auditTables, actualMV)
	rep.RepairWrites = writes
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: reconcile: %w", err)
	}
	if outcome == OutcomeTornPrepare && intent != nil && intent.Phase == journal.PhaseBegun && writes == 0 {
		outcome = OutcomeNotStarted
	}
	rep.ReconcileTime = p.Now().Sub(reconStart)

	// Memoize the descriptors the dialogue loop repeats, as the original
	// prologue did.
	a.drv.Memoize(master.Table, 0)
	for t, hs := range a.initHandles {
		a.drv.Memoize(plan.InitTables[t].Table, hs[0])
		a.drv.Memoize(plan.InitTables[t].Table, hs[1])
	}

	// The switch now matches the successor's image: journal it as the
	// new baseline and retire the crashed iteration's intent.
	if err := store.SaveCheckpoint(a.buildCheckpoint(p.Now())); err != nil {
		return nil, nil, fmt.Errorf("core: recover: save checkpoint: %w", err)
	}
	if err := store.TruncateIntent(); err != nil {
		return nil, nil, fmt.Errorf("core: recover: truncate intent: %w", err)
	}
	if err := store.Heartbeat(int64(p.Now())); err != nil {
		return nil, nil, fmt.Errorf("core: recover: heartbeat: %w", err)
	}

	rep.Outcome = outcome
	rep.Iteration = a.stats.Iterations
	rep.VV = a.vv
	rep.MV = a.mv
	return a, rep, nil
}

// rollForward computes the committed-unmirrored target: the checkpoint
// advanced by the intent's recorded ops and init data. Ops record
// post-state, so applying them to a checkpoint that already reflects
// some (or all) of them is idempotent.
func rollForward(cp *journal.Checkpoint, it *journal.Intent) *journal.Checkpoint {
	out := &journal.Checkpoint{
		Iteration: it.Iteration,
		VV:        it.TargetVV,
		MV:        cp.MV,
		InitData:  it.TargetInitData,
		Mbl:       cp.Mbl,
	}
	type tstate struct {
		next    uint64
		entries map[uint64]journal.EntrySpec
	}
	states := make(map[string]*tstate, len(cp.Tables))
	for _, ts := range cp.Tables {
		st := &tstate{next: ts.NextHandle, entries: make(map[uint64]journal.EntrySpec, len(ts.Entries))}
		for _, es := range ts.Entries {
			st.entries[es.Handle] = es.Spec
		}
		states[ts.Table] = st
	}
	for _, op := range it.Ops {
		st, ok := states[op.Table]
		if !ok {
			st = &tstate{entries: make(map[uint64]journal.EntrySpec)}
			states[op.Table] = st
		}
		switch op.Kind {
		case journal.OpAdd, journal.OpModify:
			st.entries[op.Handle] = op.Spec
			if op.Handle > st.next {
				st.next = op.Handle
			}
		case journal.OpDelete:
			delete(st.entries, op.Handle)
		}
	}
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := states[name]
		ts := journal.TableState{Table: name, NextHandle: st.next}
		handles := make([]uint64, 0, len(st.entries))
		for h := range st.entries {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		for _, h := range handles {
			ts.Entries = append(ts.Entries, journal.EntryState{Handle: h, Spec: st.entries[h]})
		}
		out.Tables = append(out.Tables, ts)
	}
	return out
}

// auditTableSet lists every table recovery reads back: non-master init
// tables, generated malleable tables, and static-entry carriers.
func auditTableSet(plan *compiler.Plan) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for t := 1; t < len(plan.InitTables); t++ {
		add(plan.InitTables[t].Table)
	}
	for _, info := range plan.MblTables {
		add(info.Table)
	}
	for _, se := range plan.StaticEntries {
		add(se.Table)
	}
	sort.Strings(out)
	return out
}

// expSlot is one concrete entry the target state requires, with an
// optional callback receiving the handle it ends up installed under.
type expSlot struct {
	entry   rmt.Entry
	record  func(h rmt.EntryHandle)
	matched bool
}

// entryFP fingerprints an entry's identity — match keys and priority —
// independent of its handle, action, or data.
func entryFP(e rmt.Entry) string {
	var b strings.Builder
	for _, k := range e.Keys {
		fmt.Fprintf(&b, "%x/%x/%x/%x|", k.Value, k.Mask, k.Lo, k.Hi)
	}
	fmt.Fprintf(&b, "p%d", e.Priority)
	return b.String()
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reconcile diffs the audited switch configuration against the agent's
// (already seeded) target image and issues the minimal fixes: modify
// mismatched entries, delete torn leftovers, install missing ones. It
// also relearns every handle the dialogue loop needs (init-table pairs,
// concrete malleable entries) from the audit. Returns the write count.
func (a *Agent) reconcile(p *sim.Proc, masterCall *p4.ActionCall, audited map[string][]rmt.Entry, auditTables []string, actualMV uint64) (int, error) {
	writes := 0

	// Master default action: the target image with the live version bits
	// substituted in. On a torn prepare the vv slot equals the audited
	// value (the flip never landed), so fixing the master never moves vv.
	master := a.plan.InitTables[0]
	expMaster := append([]uint64(nil), a.initData[0]...)
	for i, ip := range master.Params {
		switch ip.Kind {
		case compiler.InitVV:
			expMaster[i] = a.vv
		case compiler.InitMV:
			expMaster[i] = actualMV
		}
	}
	a.initData[0] = expMaster
	if masterCall == nil || masterCall.Action != master.Action || !equalU64(masterCall.Data, expMaster) {
		if err := a.drvSetDefaultAction(p, master.Table, &p4.ActionCall{
			Action: master.Action, Data: append([]uint64(nil), expMaster...),
		}); err != nil {
			return writes, err
		}
		writes++
	}

	// Expected concrete entries per table, in deterministic order.
	byTable := make(map[string][]*expSlot)
	for t := 1; t < len(a.plan.InitTables); t++ {
		it := a.plan.InitTables[t]
		t := t
		for v := uint64(0); v < 2; v++ {
			v := v
			byTable[it.Table] = append(byTable[it.Table], &expSlot{
				entry: rmt.Entry{
					Keys: []rmt.KeySpec{rmt.ExactKey(v)}, Action: it.Action,
					Data: append([]uint64(nil), a.initData[t]...),
				},
				record: func(h rmt.EntryHandle) {
					hs := a.initHandles[t]
					hs[v] = h
					a.initHandles[t] = hs
				},
			})
		}
	}
	for _, name := range a.sortedTableNames() {
		tm := a.tables[name]
		fields := tm.expandFields()
		versions := []uint64{0}
		if tm.versioned() {
			versions = []uint64{0, 1}
		}
		handles := make([]UserHandle, 0, len(tm.entries))
		for h := range tm.entries {
			handles = append(handles, h)
		}
		sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
		for _, h := range handles {
			ue := tm.entries[h]
			for _, v := range versions {
				ue.concrete[v] = make([]rmt.EntryHandle, len(ue.combos))
				for ci, combo := range ue.combos {
					e, err := tm.concreteEntry(ue.spec, fields, combo, v)
					if err != nil {
						return writes, err
					}
					ue, v, ci := ue, v, ci
					byTable[tm.info.Table] = append(byTable[tm.info.Table], &expSlot{
						entry:  e,
						record: func(rh rmt.EntryHandle) { ue.concrete[v][ci] = rh },
					})
				}
			}
		}
	}
	for _, se := range a.plan.StaticEntries {
		byTable[se.Table] = append(byTable[se.Table], &expSlot{entry: se.Entry})
	}

	for _, table := range auditTables {
		exp := byTable[table]
		byFP := make(map[string][]*expSlot, len(exp))
		for _, sl := range exp {
			fp := entryFP(sl.entry)
			byFP[fp] = append(byFP[fp], sl)
		}
		for _, got := range audited[table] {
			fp := entryFP(got)
			if slots := byFP[fp]; len(slots) > 0 {
				sl := slots[0]
				byFP[fp] = slots[1:]
				sl.matched = true
				if got.Action != sl.entry.Action || !equalU64(got.Data, sl.entry.Data) {
					if err := a.drvModifyEntry(p, table, got.Handle, sl.entry.Action, sl.entry.Data); err != nil {
						return writes, err
					}
					writes++
				}
				if sl.record != nil {
					sl.record(got.Handle)
				}
				continue
			}
			// No expected entry has this identity: a torn write from the
			// dead primary (e.g. a partially staged add). Remove it.
			if err := a.drvDeleteEntry(p, table, got.Handle); err != nil {
				return writes, err
			}
			writes++
		}
		for _, sl := range exp {
			if sl.matched {
				continue
			}
			h, err := a.drvAddEntry(p, table, sl.entry)
			if err != nil {
				return writes, err
			}
			writes++
			if sl.record != nil {
				sl.record(h)
			}
		}
	}
	return writes, nil
}

// RecoverSessionAgent opens a primary control-plane session (demoting
// any incumbent via election id) and runs Recover over it — the
// one-call takeover path for a successor controller.
func RecoverSessionAgent(p *sim.Proc, s *sim.Simulator, svc *ctlplane.Service, name string, electionID uint64, store journal.Store, plan *compiler.Plan, opts Options) (*Agent, *RecoverReport, error) {
	sess, err := svc.Open(ctlplane.SessionOptions{
		Name: name, Role: ctlplane.RolePrimary, ElectionID: electionID,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: open primary session: %w", err)
	}
	return Recover(p, s, sess, store, plan, opts)
}

// StandbyOptions configures a hot-standby controller.
type StandbyOptions struct {
	// Name labels the standby's session and process.
	Name string
	// ElectionID must exceed the primary's so the takeover demotes it.
	ElectionID uint64
	// Store is the shared journal the primary writes and the standby
	// watches (heartbeats) and recovers from.
	Store journal.Store
	// Plan is the compiled plan both controllers run.
	Plan *compiler.Plan
	// HeartbeatTimeout declares the primary dead when its last journal
	// heartbeat is older than this (default 50µs of virtual time).
	HeartbeatTimeout time.Duration
	// CheckEvery is the monitor's polling interval (default 2µs).
	CheckEvery time.Duration
	// Agent configures the successor agent Recover constructs.
	Agent Options
	// Configure, if set, runs on the recovered agent before Start —
	// the place to register native reactions and builtins.
	Configure func(a *Agent) error
}

// TakeoverReport timestamps the takeover's phases. MTTR decomposes as
// detect (crash to DetectedAt), audit+reconcile (to RecoveredAt, split
// in Recover), and resume (to ResumedAt, the successor's first commit).
type TakeoverReport struct {
	DetectedAt  sim.Time
	RecoveredAt sim.Time
	ResumedAt   sim.Time
	Recover     *RecoverReport
}

// Standby is a hot-standby controller: it monitors the primary's
// journal heartbeat and, on timeout, elects itself primary, runs
// Recover, and starts the successor agent.
type Standby struct {
	sim  *sim.Simulator
	svc  *ctlplane.Service
	opts StandbyOptions

	stopReq  atomic.Bool
	tookOver atomic.Bool
	agent    *Agent
	report   *TakeoverReport
	err      error
}

// NewStandby spawns the monitor process and returns the standby.
func NewStandby(s *sim.Simulator, svc *ctlplane.Service, opts StandbyOptions) *Standby {
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 50 * time.Microsecond
	}
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 2 * time.Microsecond
	}
	if opts.Name == "" {
		opts.Name = "standby"
	}
	sb := &Standby{sim: s, svc: svc, opts: opts}
	s.Spawn(opts.Name+"-monitor", sb.run)
	return sb
}

// Stop halts the monitor (it does not stop an agent that already took
// over; use Agent().Stop() for that).
func (sb *Standby) Stop() { sb.stopReq.Store(true) }

// TookOver reports whether the standby promoted itself.
func (sb *Standby) TookOver() bool { return sb.tookOver.Load() }

// Agent returns the successor agent (nil before takeover).
func (sb *Standby) Agent() *Agent { return sb.agent }

// Report returns the takeover timestamps (nil before takeover).
func (sb *Standby) Report() *TakeoverReport { return sb.report }

// Err returns the takeover error, if recovery failed.
func (sb *Standby) Err() error { return sb.err }

func (sb *Standby) run(p *sim.Proc) {
	for !sb.stopReq.Load() {
		p.Sleep(sb.opts.CheckEvery)
		hb, err := sb.opts.Store.LastHeartbeat()
		if err != nil {
			sb.err = fmt.Errorf("core: standby: read heartbeat: %w", err)
			return
		}
		if hb == 0 {
			// Primary has not journaled yet; nothing to take over.
			continue
		}
		if p.Now().Sub(sim.Time(hb)) < sb.opts.HeartbeatTimeout {
			continue
		}
		sb.takeover(p)
		return
	}
}

func (sb *Standby) takeover(p *sim.Proc) {
	rep := &TakeoverReport{DetectedAt: p.Now()}
	sb.report = rep

	agentOpts := sb.opts.Agent
	userAfter := agentOpts.AfterIteration
	agentOpts.AfterIteration = func(p *sim.Proc, a *Agent) {
		if rep.ResumedAt == 0 && a.stats.Commits > 0 {
			rep.ResumedAt = p.Now()
		}
		if userAfter != nil {
			userAfter(p, a)
		}
	}

	a, rrep, err := RecoverSessionAgent(p, sb.sim, sb.svc, sb.opts.Name, sb.opts.ElectionID, sb.opts.Store, sb.opts.Plan, agentOpts)
	if err != nil {
		sb.err = err
		return
	}
	rep.Recover = rrep
	rep.RecoveredAt = p.Now()
	if sb.opts.Configure != nil {
		if err := sb.opts.Configure(a); err != nil {
			sb.err = fmt.Errorf("core: standby: configure successor: %w", err)
			return
		}
	}
	sb.agent = a
	sb.tookOver.Store(true)
	a.Start()
}
