// Package core implements the Mantis control-plane agent — the paper's
// primary contribution (§6).
//
// The agent runs as a simulated process on the switch CPU. Its life is
// split into the two phases of the paper:
//
//   - Prologue: initialize malleables (master init default action,
//     vv-keyed entries of any additional init tables), install static
//     loader entries, memoize driver descriptors for the operations the
//     dialogue repeats, compile reaction bodies, and run user setup.
//
//   - Dialogue: a (optionally paced) loop that, per iteration, flips
//     the measurement version bit, polls each reaction's parameters
//     from the checkpoint copies, executes the reactions, and commits
//     their effects with the serializable three-phase protocol:
//     prepares target the shadow (vv^1) copies, a single master
//     init-table update atomically flips vv together with all malleable
//     value/field changes, and the mirror step re-applies the changes
//     to the now-shadow copy.
//
// Reactions come in two forms: the C-like bodies embedded in .p4r
// source (interpreted by internal/rcl — the analogue of the paper's
// dynamically loaded .so files) and native Go functions registered
// against a reaction's polling declaration.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/driver"
	"repro/internal/journal"
	"repro/internal/p4"
	"repro/internal/rcl"
	"repro/internal/rmt"
	"repro/internal/sim"
)

// Options configures an Agent.
type Options struct {
	// Name labels the agent in exported events; a fabric coordinator
	// uses it to tell which switch an event came from.
	Name string
	// EventSink, if set, receives every Event a reaction emits via
	// Ctx.Emit. The sink runs synchronously inside the agent's dialogue
	// process at emission time; it must not block, and should hand off
	// to its own process (queue + Unpark) for any real work.
	EventSink func(Event)
	// Pacing inserts a sleep between dialogue iterations, trading
	// reaction latency for CPU utilization (Fig. 11). Zero = busy loop.
	Pacing time.Duration
	// SkipIdleCommit omits the vv commit and shadow fill on iterations
	// where no reaction staged any change. The paper's pseudocode always
	// commits; this is the measure-only optimization used by the
	// microbenchmarks.
	SkipIdleCommit bool
	// MaxIterations stops the dialogue after this many iterations
	// (0 = run until Stop).
	MaxIterations uint64
	// LatencySamples caps the retained per-iteration latency samples.
	LatencySamples int
	// Prologue, if set, runs at the end of the prologue phase (user
	// initialization: populating initial table entries etc.).
	Prologue func(p *sim.Proc, a *Agent) error
	// AfterIteration, if set, runs after each dialogue iteration.
	AfterIteration func(p *sim.Proc, a *Agent)
	// Recovery configures fault tolerance for the dialogue loop. The
	// zero value keeps the historical fail-fast behavior: any driver
	// error stops the agent.
	Recovery RecoveryOptions
	// Journal, if set, makes the loop crash-consistent: a write-ahead
	// intent record precedes every three-phase update and a checkpoint
	// of the committed configuration follows it, so a standby can take
	// over via core.Recover after this agent dies mid-update.
	Journal *JournalConfig
}

// Stats aggregates dialogue-loop metrics.
type Stats struct {
	Iterations     uint64
	Commits        uint64
	ReactionErrors uint64
	// Retries counts driver operations reissued after a transient
	// channel failure.
	Retries uint64
	// Rollbacks counts abandoned iterations whose staged shadow updates
	// and pending malleable writes were rolled back.
	Rollbacks uint64
	// WatchdogTrips counts iterations abandoned by the deadline watchdog.
	WatchdogTrips uint64
	// Abandoned counts iterations abandoned for any recoverable reason
	// (retries exhausted, watchdog, retry budget spent).
	Abandoned uint64
	// Degraded counts iterations where at least one reaction fell back
	// to its last checkpointed measurement snapshot because polling
	// failed (RecoveryOptions.DegradeOnPollFailure).
	Degraded uint64
	// RepairOps counts shadow-side operations that could not complete
	// during rollback or mirror and were queued to drain before the
	// next commit.
	RepairOps uint64
	// Resyncs counts completed channel resynchronizations: after an
	// iteration died on driver.ErrChannelDegraded (the op's fate
	// unknown), the agent audited the switch against its committed
	// image and reconciled any divergence before proceeding.
	Resyncs uint64
	// ResyncWrites counts the fix-up writes those resyncs issued.
	ResyncWrites uint64
	// AmbiguousFlips counts master vv flips that timed out degraded and
	// had to be resolved by reading the master back (the one op whose
	// ambiguity cannot wait for a later audit — the flip decides which
	// table copies packets see).
	AmbiguousFlips uint64
	// StalenessAborts counts iterations abandoned because a reaction's
	// degradation snapshot aged past RecoveryOptions.StalenessBudget.
	StalenessAborts uint64
	// Busy is the total virtual time spent inside iterations (excludes
	// pacing sleeps); divide by elapsed time for CPU utilization.
	Busy time.Duration
	// LastIteration is the latency of the most recent iteration.
	LastIteration time.Duration
	// Latencies holds up to LatencySamples per-iteration latencies.
	Latencies []time.Duration
}

// BuiltinFunc is a host function callable from reaction bodies.
type BuiltinFunc func(p *sim.Proc, a *Agent, args []rcl.Arg) (int64, error)

// runtimeReaction pairs a plan reaction with its executable body and
// the dispatch state compiled at setup (see setupReactionRuntime in
// reaction.go): precomputed poll batches, reusable read buffers,
// persistent parameter storage, and — for interpreted bodies — a
// prepared rcl.Frame with parameters bound by pointer/reference. The
// steady-state iteration touches only this preallocated state.
type runtimeReaction struct {
	info   *compiler.ReactionInfo
	prog   *rcl.Program   // interpreted body (nil if native)
	native NativeReaction // native override (nil if interpreted)

	// Compiled poll plan: the full ReadReq batch per checkpoint bit, a
	// reusable result matrix, and prebound retry closures so drvOp gets
	// no per-iteration allocation.
	pollReqs [2][]driver.ReadReq
	rows     [][]uint64
	pollFns  [2]func() error

	// Persistent parameter storage, refilled in place each iteration.
	fields map[string]uint64
	regs   map[string][]uint64

	// Interpreted dispatch: prepared frame plus the flat copy
	// instructions that move polled values into its bound cells.
	frame    *rcl.Frame
	fieldDst []scalarBind
	mblDst   []scalarBind
	regDst   []arrayBind

	ctx  Ctx     // reused for native dispatch
	host rclHost // reused for interpreted dispatch

	// lastFields/lastRegs hold the most recent successfully polled
	// parameters — the degradation snapshot used when polling fails and
	// RecoveryOptions.DegradeOnPollFailure is set (explicit copies of
	// the working storage; hasSnapshot arms them after the first
	// successful poll). lastPollAt stamps that poll, so the staleness
	// budget can refuse snapshots that have aged past usefulness.
	lastFields  map[string]uint64
	lastRegs    map[string][]uint64
	hasSnapshot bool
	lastPollAt  sim.Time
}

// Agent is one Mantis control-plane instance driving one pipeline.
type Agent struct {
	sim  *sim.Simulator
	drv  driver.Channel
	plan *compiler.Plan
	opts Options

	vv, mv uint64
	// initData mirrors the currently-committed action data of each init
	// table, indexed like plan.InitTables.
	initData [][]uint64
	// initHandles[t][v] is the entry handle of non-master init table t
	// (t>0) for version v.
	initHandles map[int][2]rmt.EntryHandle

	mblCache   map[string]uint64
	pendingMbl map[string]uint64

	tables   map[string]*tableManager
	regCache map[string]*regCacheState

	reactions []*runtimeReaction
	natives   map[string]NativeReaction
	builtins  map[string]BuiltinFunc

	proc       *sim.Proc
	started    bool
	inReaction bool
	// pendingSwaps holds reaction reloads staged by SwapReaction; the
	// dialogue loop links them in between iterations (§7's dynamic
	// loading of new .so files without interrupting switch operations).
	pendingSwaps []reactionSwap
	// batchedReads selects one driver transaction per reaction poll
	// (default) vs one per range — the batching ablation.
	batchedReads bool
	// rangeRd is the channel's optional allocation-free read extension
	// (driver.RangeReader), probed once at construction. Nil when the
	// channel only supports BatchRead.
	rangeRd driver.RangeReader
	stats   Stats

	// Control-plane fast-path scratch: the master init table's action
	// data and call are persistent buffers refilled per flip, and flipFn
	// is the prebound retry body, so the twice-per-iteration master
	// update allocates nothing. Set up in prologue.
	masterScratch []uint64
	masterCall    p4.ActionCall
	flipFn        func() error
	flipOpName    string

	// intentScratch is the pooled write-ahead intent record; the journal
	// stores serialize on write and never retain the pointer.
	intentScratch journal.Intent

	// stopReq and err may be touched from outside the simulation
	// goroutine (Stop from a test's main goroutine, Err after Run
	// returns), so they get atomic/mutex protection.
	stopReq atomic.Bool
	errMu   sync.Mutex
	err     error

	// Recovery state (see recovery.go). iterDeadline is the watchdog
	// cutoff for the current iteration (0 = none); iterRetries counts
	// retries spent inside it; iterDegraded marks that some reaction ran
	// on a stale snapshot; pendingRepairs holds shadow-side operations
	// that must complete before the next vv flip.
	iterDeadline   sim.Time
	iterRetries    int
	iterDegraded   bool
	pendingRepairs []chanOp
	// resyncPending marks that some abandoned operation may have applied
	// switch-side (the channel went degraded mid-iteration); before the
	// next iteration stages anything, resync audits the switch against
	// the committed image and reconciles. flipUnresolved marks a stop
	// honored while a master flip's fate was still unknown: the exit
	// path must NOT roll back or retire the journal intent — the
	// CommitStaged record is exactly what a successor needs to classify
	// the torn state.
	resyncPending  bool
	flipUnresolved bool

	// Journal state (see journal.go). stagedOps accumulates the
	// iteration's user-level table ops in global staging order for the
	// CommitStaged intent; recovered marks an agent reconstructed by
	// Recover, whose prologue must not re-install switch state.
	stagedOps []journal.TableOp
	recovered bool
}

// NewAgent creates an agent for a compiled plan over a driver channel
// (a *driver.Driver, or any interposing layer such as faults.Injector).
func NewAgent(s *sim.Simulator, drv driver.Channel, plan *compiler.Plan, opts Options) *Agent {
	if opts.LatencySamples == 0 {
		opts.LatencySamples = 4096
	}
	a := &Agent{
		sim:         s,
		drv:         drv,
		plan:        plan,
		opts:        opts,
		initHandles: make(map[int][2]rmt.EntryHandle),
		mblCache:    make(map[string]uint64),
		pendingMbl:  make(map[string]uint64),
		tables:      make(map[string]*tableManager),
		regCache:    make(map[string]*regCacheState),
		natives:     make(map[string]NativeReaction),
		builtins:    make(map[string]BuiltinFunc),
	}
	a.batchedReads = true
	a.rangeRd, _ = drv.(driver.RangeReader)
	a.stats.Latencies = make([]time.Duration, 0, opts.LatencySamples)
	for name, info := range plan.MblTables {
		a.tables[name] = newTableManager(a, info)
	}
	a.registerDefaultBuiltins()
	return a
}

// Plan returns the compiled plan the agent operates.
func (a *Agent) Plan() *compiler.Plan { return a.plan }

// Driver returns the agent's driver channel.
func (a *Agent) Driver() driver.Channel { return a.drv }

// Stats returns a copy of the dialogue statistics.
func (a *Agent) Stats() Stats {
	st := a.stats
	st.Latencies = append([]time.Duration(nil), a.stats.Latencies...)
	return st
}

// Err returns the error that stopped the agent, if any. Safe to call
// from any goroutine.
func (a *Agent) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

func (a *Agent) setErr(err error) {
	a.errMu.Lock()
	a.err = err
	a.errMu.Unlock()
}

// VV and MV expose the current version bits (for tests and debugging).
func (a *Agent) VV() uint64 { return a.vv }

// MV returns the current measurement version bit.
func (a *Agent) MV() uint64 { return a.mv }

// Mbl returns the last committed value of a malleable (the alt index
// for malleable fields).
func (a *Agent) Mbl(name string) (uint64, bool) {
	v, ok := a.mblCache[name]
	return v, ok
}

// Table returns the user-level handle of a malleable table.
func (a *Agent) Table(name string) (*TableHandle, error) {
	tm, ok := a.tables[name]
	if !ok {
		return nil, fmt.Errorf("core: table %q is not malleable (no runtime info)", name)
	}
	return &TableHandle{tm: tm}, nil
}

// RegisterNativeReaction replaces the interpreted body of the named
// plan reaction with a Go function. Must be called before Start.
func (a *Agent) RegisterNativeReaction(name string, fn NativeReaction) error {
	if a.started {
		return fmt.Errorf("core: agent already started")
	}
	for _, r := range a.plan.Reactions {
		if r.Name == name {
			a.natives[name] = fn
			return nil
		}
	}
	return fmt.Errorf("core: no reaction %q in plan", name)
}

// RegisterBuiltin adds a host function callable from reaction bodies.
func (a *Agent) RegisterBuiltin(name string, fn BuiltinFunc) {
	a.builtins[name] = fn
}

// Start spawns the agent process (prologue then dialogue loop).
func (a *Agent) Start() {
	if a.started {
		panic("core: agent started twice")
	}
	a.started = true
	a.proc = a.sim.Spawn("mantis-agent", a.run)
}

// Stop requests the dialogue loop to exit. Safe to call from any
// goroutine. The request is honored mid-iteration at the next reaction
// or retry boundary; an iteration cut short is rolled back (its staged
// changes are discarded) so the committed configuration stays
// consistent, and Err() remains nil.
func (a *Agent) Stop() { a.stopReq.Store(true) }

func (a *Agent) stopRequested() bool { return a.stopReq.Load() }

// reactionSwap is a staged reaction reload.
type reactionSwap struct {
	name      string
	native    NativeReaction
	body      string
	rerunInit bool
}

// SwapReaction replaces a running reaction's body without stopping the
// agent — the paper's dynamic-loading path: the swap takes effect after
// the current dialogue iteration completes. Exactly one of native or
// body must be provided; rerunInit re-executes the user prologue hook
// after linking.
func (a *Agent) SwapReaction(name string, native NativeReaction, body string, rerunInit bool) error {
	if (native == nil) == (body == "") {
		return fmt.Errorf("core: SwapReaction needs exactly one of a native function or a body")
	}
	found := false
	for _, r := range a.plan.Reactions {
		if r.Name == name {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("core: no reaction %q", name)
	}
	a.pendingSwaps = append(a.pendingSwaps, reactionSwap{name: name, native: native, body: body, rerunInit: rerunInit})
	return nil
}

// applySwaps links staged reaction reloads. Runs on the agent process
// between dialogue iterations.
func (a *Agent) applySwaps(p *sim.Proc) error {
	swaps := a.pendingSwaps
	a.pendingSwaps = nil
	for _, sw := range swaps {
		for _, rr := range a.reactions {
			if rr.info.Name != sw.name {
				continue
			}
			if sw.native != nil {
				rr.native = sw.native
				rr.prog = nil
			} else {
				prog, err := rcl.Compile(sw.body)
				if err != nil {
					return fmt.Errorf("swap %s: %w", sw.name, err)
				}
				rr.prog = prog
				rr.native = nil
			}
			// Relink the compiled dispatch (frame bindings, buffers) to
			// the new body.
			a.setupReactionRuntime(p, rr)
			if sw.rerunInit && a.opts.Prologue != nil {
				if err := a.opts.Prologue(p, a); err != nil {
					return fmt.Errorf("swap %s: re-running prologue: %w", sw.name, err)
				}
			}
		}
	}
	return nil
}

// SetBatchedReads toggles batched measurement polling (ablation; on by
// default).
func (a *Agent) SetBatchedReads(on bool) { a.batchedReads = on }

func (a *Agent) run(p *sim.Proc) {
	if err := a.prologue(p); err != nil {
		a.setErr(fmt.Errorf("prologue: %w", err))
		return
	}
	for !a.stopRequested() {
		if err := a.iteration(p); err != nil {
			switch {
			case errors.Is(err, ErrStopped):
				// Stop honored mid-iteration: discard the partial
				// iteration's staged changes and exit cleanly. The intent
				// truncation is best-effort — if it fails, the leftover
				// intent merely makes a successor re-verify a clean state.
				// Exception: a stop that interrupted an unresolved master
				// flip must leave everything in place — rolling back could
				// fight a flip that actually landed, and the CommitStaged
				// intent is the successor's map of the torn state.
				if a.flipUnresolved {
					return
				}
				a.rollbackIteration(p)
				if a.journaling() {
					_ = a.journalAbandon(p)
				}
				return
			case a.recoverable(err):
				// Abandon the iteration: undo its staged shadow updates,
				// keep the committed configuration, and continue the loop.
				if errors.Is(err, ErrWatchdog) {
					a.stats.WatchdogTrips++
				}
				if errors.Is(err, driver.ErrChannelDegraded) {
					// The abandoned op may have applied; audit before the
					// next iteration stages anything new.
					a.resyncPending = true
				}
				a.stats.Abandoned++
				a.rollbackIteration(p)
				if jerr := a.journalAbandon(p); jerr != nil {
					a.setErr(jerr)
					return
				}
			default:
				a.setErr(fmt.Errorf("dialogue iteration %d: %w", a.stats.Iterations, err))
				return
			}
		}
		if len(a.pendingSwaps) > 0 {
			if err := a.applySwaps(p); err != nil {
				a.setErr(err)
				return
			}
		}
		if a.opts.AfterIteration != nil {
			a.opts.AfterIteration(p, a)
		}
		if a.opts.MaxIterations > 0 && a.stats.Iterations >= a.opts.MaxIterations {
			return
		}
		if a.opts.Pacing > 0 {
			p.Sleep(a.opts.Pacing)
		} else {
			// A busy loop still yields so same-time data plane events run.
			p.Yield()
		}
	}
}

// ---- Prologue ----

func (a *Agent) prologue(p *sim.Proc) error {
	// A recovered agent's configuration (version bits, init data,
	// malleable cache, table entries, handles) was reconstructed by
	// Recover from journal + switch audit; re-installing it here would
	// clobber live state. Only the in-process setup below (reaction
	// compilation, register cache wiring) still runs.
	if !a.recovered {
		// Seed malleable cache and init data from the plan.
		a.initData = make([][]uint64, len(a.plan.InitTables))
		for t, it := range a.plan.InitTables {
			data := make([]uint64, len(it.Params))
			for i, ip := range it.Params {
				data[i] = ip.Init
				switch ip.Kind {
				case compiler.InitValue, compiler.InitField:
					a.mblCache[ip.Mbl] = ip.Init
				}
			}
			a.initData[t] = data
		}

		// Master init table: configure via default action.
		if len(a.plan.InitTables) > 0 {
			master := a.plan.InitTables[0]
			if err := a.drvSetDefaultAction(p, master.Table, &p4.ActionCall{
				Action: master.Action, Data: append([]uint64(nil), a.initData[0]...),
			}); err != nil {
				return err
			}
			a.drv.Memoize(master.Table, 0)
		}
		// Non-master init tables: one entry per version.
		for t := 1; t < len(a.plan.InitTables); t++ {
			it := a.plan.InitTables[t]
			var handles [2]rmt.EntryHandle
			for v := uint64(0); v < 2; v++ {
				h, err := a.drvAddEntry(p, it.Table, rmt.Entry{
					Keys: []rmt.KeySpec{rmt.ExactKey(v)}, Action: it.Action,
					Data: append([]uint64(nil), a.initData[t]...),
				})
				if err != nil {
					return err
				}
				handles[v] = h
				a.drv.Memoize(it.Table, h)
			}
			a.initHandles[t] = handles
		}

		// Static entries (carrier loaders).
		for _, se := range a.plan.StaticEntries {
			if _, err := a.drvAddEntry(p, se.Table, se.Entry); err != nil {
				return err
			}
		}
	}

	// The master flip fast path: one persistent ActionCall + data
	// scratch and a prebound retry body, shared by the mv flip and the
	// commit flip (they never overlap within an iteration). rmt's
	// setDefault deep-copies, so reusing the scratch across flips is
	// safe. Recovered agents need this too.
	if len(a.plan.InitTables) > 0 {
		master := a.plan.InitTables[0]
		a.masterCall.Action = master.Action
		a.masterScratch = make([]uint64, 0, len(master.Params))
		a.flipOpName = "SetDefaultAction " + master.Table
		table := master.Table
		a.flipFn = func() error { return a.drv.SetDefaultAction(a.proc, table, &a.masterCall) }
	}

	// Reaction bodies: native overrides win; otherwise compile the
	// embedded C-like body. setupReactionRuntime then compiles the
	// dispatch (poll plan, persistent buffers, prepared frame).
	for _, info := range a.plan.Reactions {
		rr := &runtimeReaction{info: info}
		if fn, ok := a.natives[info.Name]; ok {
			rr.native = fn
		} else {
			prog, err := rcl.Compile(info.Body)
			if err != nil {
				return fmt.Errorf("reaction %s: %w", info.Name, err)
			}
			rr.prog = prog
		}
		a.reactions = append(a.reactions, rr)
		for _, rp := range info.RegParams {
			if _, ok := a.regCache[rp.Orig]; !ok {
				a.regCache[rp.Orig] = newRegCacheState(rp)
			}
		}
		a.setupReactionRuntime(p, rr)
	}

	if a.opts.Prologue != nil && !a.recovered {
		if err := a.opts.Prologue(p, a); err != nil {
			return err
		}
	}
	// The initial configuration is now live: journal it as the recovery
	// baseline. (A crash before this first checkpoint is a boot failure —
	// redeploy, don't fail over.)
	return a.journalCheckpoint(p)
}

// ---- Dialogue ----

// masterData builds the master init table's action data for the given
// version bits, applying any pending malleable writes whose slot lives
// in the master. The result is written into dst (reusing its capacity)
// — the steady-state path passes the agent's persistent scratch, so no
// allocation occurs after warmup.
func (a *Agent) masterData(dst []uint64, vv, mv uint64, applyPending bool) []uint64 {
	master := a.plan.InitTables[0]
	data := append(dst[:0], a.initData[0]...)
	for i, ip := range master.Params {
		switch ip.Kind {
		case compiler.InitVV:
			data[i] = vv
		case compiler.InitMV:
			data[i] = mv
		case compiler.InitValue, compiler.InitField:
			if applyPending {
				if v, ok := a.pendingMbl[ip.Mbl]; ok {
					data[i] = v
				}
			}
		}
	}
	return data
}

// updateMaster issues the master default-action update through the
// persistent call + prebound retry body. rmt deep-copies the data on
// install, so handing it the scratch is safe across retries and flips.
func (a *Agent) updateMaster(p *sim.Proc, data []uint64) error {
	a.masterCall.Data = data
	return a.drvOp(p, a.flipOpName, a.flipFn)
}

// iteration executes one turn of the dialogue loop, mirroring the §6
// pseudocode.
func (a *Agent) iteration(p *sim.Proc) error {
	start := p.Now()
	a.iterDeadline = a.opts.Recovery.watchdogDeadline(start)
	a.iterRetries = 0
	a.iterDegraded = false

	// 0. Settle repair debt from earlier failures before anything new is
	// staged. Repairs rewrite shadow copies with committed data; running
	// one after a reaction has staged fresh shadow updates would stomp
	// them, so this must precede the reaction phase — and no vv flip may
	// happen over an unconverged shadow. On failure the debt stays
	// queued and the iteration is abandoned with nothing staged.
	if err := a.drainRepairs(p); err != nil {
		return err
	}

	// 0b. If a degraded-channel abandon left the switch's state in
	// doubt, audit and reconcile before staging anything new. A resync
	// that fails because the channel is still down is itself recoverable
	// — the flag stays set and the next iteration tries again, which is
	// what lets a partitioned agent heal without a session restart.
	if a.resyncPending {
		if err := a.resync(p); err != nil {
			return err
		}
		a.resyncPending = false
	}

	// Write-ahead: log that an iteration is in flight before the first
	// driver write. A successor finding this intent (and no later
	// CommitStaged upgrade) knows at most reaction prepares landed — all
	// shadow-side, all safe to roll back.
	if err := a.journalBegin(p); err != nil {
		return err
	}

	// 1. Flip the measurement version; the old working copy becomes the
	// checkpoint the control plane may read at leisure (Fig. 9). If the
	// flip fails, the iteration is abandoned before any poll: reading
	// the still-working copy would break the snapshot isolation of §5.2.
	checkpoint := a.mv
	if a.plan.UsesMV && len(a.plan.InitTables) > 0 {
		a.masterScratch = a.masterData(a.masterScratch, a.vv, a.mv^1, false)
		if err := a.updateMaster(p, a.masterScratch); err != nil {
			return err
		}
		a.mv ^= 1
	}

	// 2. Poll and run each reaction. Parameters are polled immediately
	// before their reaction for freshness (§4.2).
	for _, rr := range a.reactions {
		if a.stopRequested() {
			return ErrStopped
		}
		if err := a.runReaction(p, rr, checkpoint); err != nil {
			a.stats.ReactionErrors++
			return err
		}
	}

	// 3. Commit staged effects serializably (§5.1). A stop requested by
	// now abandons the staged changes instead of committing them: the
	// caller asked the dialogue to cease, and rollback is always safe.
	if a.stopRequested() {
		return ErrStopped
	}
	hasChanges := len(a.pendingMbl) > 0
	for _, tm := range a.tables {
		if tm.pendingMirrors() > 0 {
			hasChanges = true
		}
	}
	if a.plan.UsesVV && len(a.plan.InitTables) > 0 && (hasChanges || !a.opts.SkipIdleCommit) {
		if err := a.commit(p); err != nil {
			return err
		}
		a.stats.Commits++
	}

	a.stats.Iterations++
	if a.iterDegraded {
		a.stats.Degraded++
	}
	// The iteration's prepares are now committed (or there were none);
	// the undo journals are obsolete.
	for _, tm := range a.tables {
		tm.undo = nil
	}
	// Checkpoint the committed configuration and retire the intent.
	if err := a.journalIterationEnd(p); err != nil {
		return err
	}
	a.iterDeadline = 0
	lat := p.Now().Sub(start)
	a.stats.LastIteration = lat
	a.stats.Busy += lat
	if len(a.stats.Latencies) < a.opts.LatencySamples {
		a.stats.Latencies = append(a.stats.Latencies, lat)
	}
	return nil
}

// commit performs prepare (non-master init shadow updates), the atomic
// master flip, and the mirror/fill-shadow phase.
//
// Failure discipline: vv flips if and only if the single master update
// succeeds. A failure before the flip rolls the prepared shadow entries
// back (they were never packet-visible) and abandons the iteration. A
// failure after the flip cannot un-commit — the change is live — so the
// unfinished mirror work is queued as repair debt and drained, with
// retries, before any future flip.
func (a *Agent) commit(p *sim.Proc) error {
	newVV := a.vv ^ 1

	// Compute the complete post-commit image first — the non-master
	// shadow data and the master action data — so the CommitStaged
	// intent can describe every write this commit will issue before any
	// of them reaches the switch.
	var nmChanges []nonMasterChange
	for t := 1; t < len(a.plan.InitTables); t++ {
		it := a.plan.InitTables[t]
		changed := false
		data := append([]uint64(nil), a.initData[t]...)
		for i, ip := range it.Params {
			if ip.Kind != compiler.InitValue && ip.Kind != compiler.InitField {
				continue
			}
			if v, ok := a.pendingMbl[ip.Mbl]; ok {
				data[i] = v
				changed = true
			}
		}
		if changed {
			nmChanges = append(nmChanges, nonMasterChange{t, data})
		}
	}
	a.masterScratch = a.masterData(a.masterScratch, newVV, a.mv, true)
	newMaster := a.masterScratch

	if a.journaling() {
		targetInit := make([][]uint64, len(a.initData))
		for i := range a.initData {
			targetInit[i] = append([]uint64(nil), a.initData[i]...)
		}
		for _, ch := range nmChanges {
			targetInit[ch.t] = append([]uint64(nil), ch.data...)
		}
		targetInit[0] = append([]uint64(nil), newMaster...)
		if err := a.journalCommitStaged(p, targetInit); err != nil {
			return err
		}
	}

	// Prepare: stage non-master init-table changes in their shadow
	// (vv^1) entries. (Malleable-table entry prepares already happened
	// inside the reaction's table calls.)
	var prepared []nonMasterChange
	for _, ch := range nmChanges {
		it := a.plan.InitTables[ch.t]
		if err := a.drvModifyEntry(p, it.Table, a.initHandles[ch.t][newVV], it.Action, ch.data); err != nil {
			a.undoNonMaster(p, prepared, newVV)
			return err
		}
		prepared = append(prepared, ch)
	}

	// Commit: one atomic master update flips vv and applies all pending
	// master-resident malleable changes together (§5.1.1); the master is
	// always updated last (§5.1.2).
	//
	// The flip is the one operation whose channel ambiguity cannot be
	// deferred to a later audit: if a degraded report hides a flip that
	// actually landed, the shadow copies are live and any rollback write
	// would be packet-visible mid-iteration. So a degraded flip is
	// resolved inline — read the master back (the MSL quarantine below
	// the degraded report guarantees no stale flip copy is still in
	// flight, so the read is definitive) and either proceed as committed
	// or reissue.
	for {
		err := a.updateMaster(p, newMaster)
		if err == nil {
			break
		}
		if !a.opts.Recovery.Enabled() || !errors.Is(err, driver.ErrChannelDegraded) {
			a.undoNonMaster(p, prepared, newVV)
			return err
		}
		flipped, rerr := a.resolveFlip(p, newVV)
		if rerr != nil {
			return rerr
		}
		if flipped {
			break
		}
		// Definitively not applied: reissue the identical flip.
	}
	// Copy rather than alias: newMaster is the agent's reusable scratch
	// and will be overwritten by the next iteration's mv flip.
	a.initData[0] = append(a.initData[0][:0], newMaster...)
	oldVV := a.vv
	a.vv = newVV
	for name, v := range a.pendingMbl {
		a.mblCache[name] = v
	}
	clear(a.pendingMbl)

	// Mirror: re-apply to the now-shadow copies so a future flip is safe.
	for _, ch := range nmChanges {
		it := a.plan.InitTables[ch.t]
		a.initData[ch.t] = ch.data
		if err := a.drvModifyEntry(p, it.Table, a.initHandles[ch.t][oldVV], it.Action, ch.data); err != nil {
			if !a.opts.Recovery.Enabled() {
				return err
			}
			table, h, action, data := it.Table, a.initHandles[ch.t][oldVV], it.Action, ch.data
			a.queueRepair(chanOp{desc: "mirror init " + table, fn: func(p *sim.Proc) error {
				return a.drv.ModifyEntry(p, table, h, action, data)
			}})
		}
	}
	for _, tm := range a.tables {
		if err := tm.fillShadow(p); err != nil {
			return err
		}
	}
	return nil
}

// nonMasterChange records one prepared non-master init-table update.
type nonMasterChange struct {
	t    int
	data []uint64
}

// undoNonMaster restores already-prepared non-master shadow entries to
// their committed data after a pre-flip commit failure. If an undo
// write itself fails, it is queued as repair debt — the dirty entry is
// in a shadow copy, invisible to packets, and repairs drain before any
// future flip could expose it.
func (a *Agent) undoNonMaster(p *sim.Proc, changes []nonMasterChange, shadowVV uint64) {
	for _, ch := range changes {
		it := a.plan.InitTables[ch.t]
		table, h, action := it.Table, a.initHandles[ch.t][shadowVV], it.Action
		committed := append([]uint64(nil), a.initData[ch.t]...)
		if err := a.drvModifyEntry(p, table, h, action, committed); err != nil {
			a.queueRepair(chanOp{desc: "restore init " + table, fn: func(p *sim.Proc) error {
				return a.drv.ModifyEntry(p, table, h, action, committed)
			}})
		}
	}
}
