package compiler

import (
	"fmt"
	"sort"

	"repro/internal/p4"
	"repro/internal/p4r"
	"repro/internal/p4r/diag"
)

func measTableName(reaction, pipe string) string {
	return fmt.Sprintf("p4r_meas_%s_%s_", reaction, pipe)
}

// ---- Reactions: measurement generation (§4.2, Fig. 9, §5.2) ----

func (c *compiler) lowerReactions() error {
	// dupRegs dedupes duplicated registers shared by multiple reactions.
	dupRegs := make(map[string]*RegParamInfo)

	for _, r := range c.f.Reactions {
		info := &ReactionInfo{Name: r.Name, Body: r.Body}
		var ingFields, egrFields []SlotField

		for _, p := range r.Params {
			switch p.Kind {
			case p4r.ParamIng, p4r.ParamEgr:
				if p.IsMbl {
					if _, isVal := c.plan.MblValues[p.Target]; !isVal {
						if _, isField := c.plan.MblFields[p.Target]; !isField {
							return lerr(diag.LowerUnknown, p.Line, p.Col, "reaction %s: unknown malleable parameter ${%s}", r.Name, p.Target)
						}
					}
					info.MblParams = append(info.MblParams, MblParamInfo{Name: p.Target, Var: sanitize(p.Target)})
					continue
				}
				id, ok := c.prog.Schema.Lookup(p.Target)
				if !ok {
					return lerr(diag.LowerUnknown, p.Line, p.Col, "reaction %s: unknown field parameter %q", r.Name, p.Target)
				}
				sf := SlotField{Param: p.Target, Var: sanitize(p.Target), Width: c.prog.Schema.Width(id)}
				if sf.Width > c.opts.MeasSlotBits {
					return lerr(diag.LowerCapacity, p.Line, p.Col, "reaction %s: field %q (%d bits) exceeds measurement slot width %d",
						r.Name, p.Target, sf.Width, c.opts.MeasSlotBits)
				}
				if p.Kind == p4r.ParamIng {
					ingFields = append(ingFields, sf)
				} else {
					egrFields = append(egrFields, sf)
				}
			case p4r.ParamReg:
				reg, ok := c.prog.Registers[p.Target]
				if !ok {
					return lerr(diag.LowerUnknown, p.Line, p.Col, "reaction %s: unknown register parameter %q", r.Name, p.Target)
				}
				lo, hi := p.Lo, p.Hi
				if hi < 0 {
					lo, hi = 0, reg.Instances-1
				}
				if hi >= reg.Instances {
					return lerr(diag.LowerCapacity, p.Line, p.Col, "reaction %s: register %s[%d:%d] out of range (instances %d)",
						r.Name, p.Target, lo, hi, reg.Instances)
				}
				rp, exists := dupRegs[p.Target]
				if !exists {
					rp = c.duplicateRegister(reg)
					dupRegs[p.Target] = rp
				}
				cp := *rp
				cp.Var = p.Target
				cp.Lo, cp.Hi = lo, hi
				info.RegParams = append(info.RegParams, cp)
			}
		}

		var err error
		info.IngSlots, err = c.packMeasurement(r.Name, "ing", ingFields)
		if err != nil {
			return err
		}
		info.EgrSlots, err = c.packMeasurement(r.Name, "egr", egrFields)
		if err != nil {
			return err
		}
		c.plan.Reactions = append(c.plan.Reactions, info)
	}

	// Inject mirroring into every action that writes a duplicated
	// register (§5.2 "Registers and register arrays").
	var regs []string
	for name := range dupRegs {
		regs = append(regs, name)
	}
	sort.Strings(regs)
	for _, name := range regs {
		c.injectMirrors(name, dupRegs[name])
	}
	return nil
}

// packMeasurement packs field parameters into 64-bit measurement slots
// using sorted first-fit, generates the per-slot registers, and emits
// the measurement action/table for one pipeline.
func (c *compiler) packMeasurement(reaction, pipe string, fields []SlotField) ([]MeasSlot, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	sorted := append([]SlotField(nil), fields...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Width != sorted[j].Width {
			return sorted[i].Width > sorted[j].Width
		}
		return sorted[i].Param < sorted[j].Param
	})
	var slots []MeasSlot
	used := []int{}
	for _, f := range sorted {
		placed := false
		for i := range slots {
			if used[i]+f.Width <= c.opts.MeasSlotBits {
				f.Shift = used[i]
				slots[i].Fields = append(slots[i].Fields, f)
				used[i] += f.Width
				placed = true
				break
			}
		}
		if !placed {
			f.Shift = 0
			slots = append(slots, MeasSlot{Fields: []SlotField{f}})
			used = append(used, f.Width)
		}
	}

	mvID := c.prog.Schema.MustID(MVField)
	action := &p4.Action{Name: fmt.Sprintf("p4r_meas_act_%s_%s_", reaction, pipe)}
	for k := range slots {
		regName := fmt.Sprintf("p4r_meas_%s_%s%d_", reaction, pipe, k)
		slots[k].Register = regName
		c.prog.AddRegister(&p4.Register{Name: regName, Width: c.opts.MeasSlotBits, Instances: 2})

		if len(slots[k].Fields) == 1 && slots[k].Fields[0].Shift == 0 {
			f := slots[k].Fields[0]
			id := c.prog.Schema.MustID(f.Param)
			action.Body = append(action.Body, p4.RegisterWrite{
				Reg: regName, Index: p4.FieldOp(mvID, MVField), Value: p4.FieldOp(id, f.Param),
			})
			continue
		}
		// Multiple fields: stage the packed word in metadata, then write.
		staging := fmt.Sprintf("%smeas_%s_%s%d", MetaPrefix, reaction, pipe, k)
		c.prog.Schema.Define(staging, c.opts.MeasSlotBits)
		scratch := MetaPrefix + "meas_scratch_"
		c.prog.Schema.Define(scratch, c.opts.MeasSlotBits)
		stID := c.prog.Schema.MustID(staging)
		scID := c.prog.Schema.MustID(scratch)
		action.Body = append(action.Body, p4.ModifyField{Dst: stID, DstName: staging, Src: p4.ConstOp(0)})
		for _, f := range slots[k].Fields {
			id := c.prog.Schema.MustID(f.Param)
			action.Body = append(action.Body,
				p4.ModifyField{Dst: scID, DstName: scratch, Src: p4.FieldOp(id, f.Param)},
				p4.ALU{Op: p4.ALUShl, Dst: scID, DstName: scratch, A: p4.FieldOp(scID, scratch), B: p4.ConstOp(uint64(f.Shift))},
				p4.ALU{Op: p4.ALUOr, Dst: stID, DstName: staging, A: p4.FieldOp(stID, staging), B: p4.FieldOp(scID, scratch)},
			)
		}
		action.Body = append(action.Body, p4.RegisterWrite{
			Reg: regName, Index: p4.FieldOp(mvID, MVField), Value: p4.FieldOp(stID, staging),
		})
	}
	c.prog.AddAction(action)
	c.prog.AddTable(&p4.Table{
		Name:          measTableName(reaction, pipe),
		ActionNames:   []string{action.Name},
		DefaultAction: &p4.ActionCall{Action: action.Name},
		Size:          1,
	})
	return slots, nil
}

// duplicateRegister creates the mv-indexed duplicate and timestamp
// registers for a polled user register.
func (c *compiler) duplicateRegister(reg *p4.Register) *RegParamInfo {
	padded := nextPow2(reg.Instances)
	dup := fmt.Sprintf("p4r_dup_%s_", reg.Name)
	ts := fmt.Sprintf("p4r_ts_%s_", reg.Name)
	c.prog.AddRegister(&p4.Register{Name: dup, Width: reg.Width, Instances: 2 * padded})
	c.prog.AddRegister(&p4.Register{Name: ts, Width: 32, Instances: 2 * padded})
	return &RegParamInfo{
		Orig: reg.Name, Dup: dup, Ts: ts,
		N: reg.Instances, PaddedN: padded,
	}
}

// injectMirrors appends, after every data-plane write to rp.Orig, the
// operations that mirror the written value into the mv-prefixed
// duplicate register and bump its timestamp register.
func (c *compiler) injectMirrors(regName string, rp *RegParamInfo) {
	mvID := c.prog.Schema.MustID(MVField)
	idxField := MetaPrefix + "mirr_" + regName + "_idx"
	valField := MetaPrefix + "mirr_" + regName + "_val"
	c.prog.Schema.Define(idxField, 32)
	c.prog.Schema.Define(valField, c.prog.Registers[regName].Width)
	idxID := c.prog.Schema.MustID(idxField)
	valID := c.prog.Schema.MustID(valField)
	shift := uint64(ceilLog2(rp.PaddedN))

	mirrorOps := func(index p4.Operand, value p4.Operand) []p4.Primitive {
		return []p4.Primitive{
			// dup index = (mv << log2(paddedN)) | index
			p4.ModifyField{Dst: idxID, DstName: idxField, Src: p4.FieldOp(mvID, MVField)},
			p4.ALU{Op: p4.ALUShl, Dst: idxID, DstName: idxField, A: p4.FieldOp(idxID, idxField), B: p4.ConstOp(shift)},
			p4.ALU{Op: p4.ALUOr, Dst: idxID, DstName: idxField, A: p4.FieldOp(idxID, idxField), B: index},
			p4.RegisterWrite{Reg: rp.Dup, Index: p4.FieldOp(idxID, idxField), Value: value},
			p4.RegisterIncrement{Reg: rp.Ts, Index: p4.FieldOp(idxID, idxField), By: p4.ConstOp(1)},
		}
	}

	for _, a := range c.prog.Actions {
		var body []p4.Primitive
		changed := false
		for _, prim := range a.Body {
			body = append(body, prim)
			switch op := prim.(type) {
			case p4.RegisterWrite:
				if op.Reg == regName {
					body = append(body, mirrorOps(op.Index, op.Value)...)
					changed = true
				}
			case p4.RegisterIncrement:
				if op.Reg == regName {
					// Read back the post-increment value, then mirror it.
					body = append(body, p4.RegisterRead{Dst: valID, DstName: valField, Reg: regName, Index: op.Index})
					body = append(body, mirrorOps(op.Index, p4.FieldOp(valID, valField))...)
					changed = true
				}
			}
		}
		if changed {
			a.Body = body
		}
	}
}
