package compiler

import (
	"sort"
	"strings"

	"repro/internal/p4"
	"repro/internal/p4r"
	"repro/internal/p4r/diag"
	"repro/internal/packet"
)

// ---- Action lowering and specialization (Figs. 4, 5, 6) ----

// mblFieldsUsed returns the malleable *fields* referenced by an action,
// in order of first occurrence.
func (c *compiler) mblFieldsUsed(a *p4r.ActionDecl) []string {
	var out []string
	seen := map[string]bool{}
	for _, call := range a.Body {
		for _, arg := range call.Args {
			if arg.Kind != p4r.ArgMblRef {
				continue
			}
			if _, isField := c.plan.MblFields[arg.Mbl]; isField && !seen[arg.Mbl] {
				seen[arg.Mbl] = true
				out = append(out, arg.Mbl)
			}
		}
	}
	return out
}

func (c *compiler) lowerActions() error {
	for _, a := range c.f.Actions {
		fields := c.mblFieldsUsed(a)
		if len(fields) == 0 {
			la, err := c.lowerAction(a, a.Name, nil)
			if err != nil {
				return err
			}
			c.prog.AddAction(la)
			continue
		}
		// Specialize over the cartesian product of alternatives — the
		// action-instantiation strategy of Figs. 5 and 6.
		spec := &ActionSpecInfo{Fields: fields}
		for _, fn := range fields {
			spec.AltCounts = append(spec.AltCounts, len(c.plan.MblFields[fn].Alts))
		}
		combo := make([]int, len(fields))
		for {
			binding := make(map[string]string, len(fields))
			parts := make([]string, len(fields))
			for i, fn := range fields {
				alt := c.plan.MblFields[fn].Alts[combo[i]]
				binding[fn] = alt
				parts[i] = sanitize(alt)
			}
			vname := a.Name + "__" + strings.Join(parts, "__") + "_"
			la, err := c.lowerAction(a, vname, binding)
			if err != nil {
				return err
			}
			c.prog.AddAction(la)
			spec.Variants = append(spec.Variants, vname)
			// Advance the combination, last index fastest (row-major, so
			// VariantFor's Horner indexing matches).
			i := len(combo) - 1
			for i >= 0 {
				combo[i]++
				if combo[i] < spec.AltCounts[i] {
					break
				}
				combo[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
		c.specs[a.Name] = spec
	}
	return nil
}

// resolveOperand maps a P4R argument to a p4 operand in the context of
// an action declaration and a malleable-field binding.
func (c *compiler) resolveOperand(arg p4r.Arg, decl *p4r.ActionDecl, binding map[string]string) (p4.Operand, error) {
	switch arg.Kind {
	case p4r.ArgConst:
		return p4.ConstOp(arg.Value), nil
	case p4r.ArgIdent:
		if decl != nil {
			for i, pn := range decl.Params {
				if pn == arg.Ident {
					return p4.ParamOp(i, pn), nil
				}
			}
		}
		if id, ok := c.prog.Schema.Lookup(arg.Ident); ok {
			return p4.FieldOp(id, arg.Ident), nil
		}
		return p4.Operand{}, lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown field or parameter %q", arg.Ident)
	case p4r.ArgMblRef:
		if mv, ok := c.plan.MblValues[arg.Mbl]; ok {
			id := c.prog.Schema.MustID(mv.MetaField)
			return p4.FieldOp(id, mv.MetaField), nil
		}
		if _, ok := c.plan.MblFields[arg.Mbl]; ok {
			alt, bound := binding[arg.Mbl]
			if !bound {
				return p4.Operand{}, lerr(diag.LowerInvalid, arg.Line, arg.Col, "malleable field ${%s} used outside a specializable context", arg.Mbl)
			}
			id := c.prog.Schema.MustID(alt)
			return p4.FieldOp(id, alt), nil
		}
		return p4.Operand{}, lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown malleable ${%s}", arg.Mbl)
	}
	return p4.Operand{}, lerr(diag.LowerInvalid, arg.Line, arg.Col, "bad argument")
}

// resolveDst resolves an argument that must denote a writable field.
func (c *compiler) resolveDst(arg p4r.Arg, binding map[string]string) (packet.FieldID, string, error) {
	switch arg.Kind {
	case p4r.ArgIdent:
		if id, ok := c.prog.Schema.Lookup(arg.Ident); ok {
			return id, arg.Ident, nil
		}
		return 0, "", lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown destination field %q", arg.Ident)
	case p4r.ArgMblRef:
		if _, isVal := c.plan.MblValues[arg.Mbl]; isVal {
			return 0, "", lerr(diag.LowerInvalid, arg.Line, arg.Col, "malleable value ${%s} cannot be assigned in the data plane (values are set by reactions)", arg.Mbl)
		}
		if _, isField := c.plan.MblFields[arg.Mbl]; isField {
			alt, bound := binding[arg.Mbl]
			if !bound {
				return 0, "", lerr(diag.LowerInvalid, arg.Line, arg.Col, "malleable field ${%s} used outside a specializable context", arg.Mbl)
			}
			return c.prog.Schema.MustID(alt), alt, nil
		}
		return 0, "", lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown malleable ${%s}", arg.Mbl)
	}
	return 0, "", lerr(diag.LowerInvalid, arg.Line, arg.Col, "destination must be a field")
}

func (c *compiler) registerName(arg p4r.Arg) (string, error) {
	if arg.Kind != p4r.ArgIdent {
		return "", lerr(diag.LowerInvalid, arg.Line, arg.Col, "register name expected")
	}
	if _, ok := c.prog.Registers[arg.Ident]; !ok {
		return "", lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown register %q", arg.Ident)
	}
	return arg.Ident, nil
}

var aluOps = map[string]p4.ALUOp{
	"add": p4.ALUAdd, "subtract": p4.ALUSub,
	"bit_and": p4.ALUAnd, "bit_or": p4.ALUOr, "bit_xor": p4.ALUXor,
	"shift_left": p4.ALUShl, "shift_right": p4.ALUShr,
	"min": p4.ALUMin, "max": p4.ALUMax,
}

func (c *compiler) lowerAction(decl *p4r.ActionDecl, name string, binding map[string]string) (*p4.Action, error) {
	a := &p4.Action{Name: name}
	widths := make([]int, len(decl.Params))
	for i := range widths {
		widths[i] = 32 // default; refined below from usage
	}
	noteParamWidth := func(op p4.Operand, w int) {
		if op.Kind == p4.OpParam && w > 0 && widths[op.Param] < w {
			widths[op.Param] = w
		}
	}
	fieldWidth := func(id packet.FieldID) int { return c.prog.Schema.Width(id) }

	for _, call := range decl.Body {
		argc := func(n int) error {
			if len(call.Args) != n {
				return lerr(diag.LowerInvalid, call.Line, call.Col, "%s takes %d arguments, got %d", call.Name, n, len(call.Args))
			}
			return nil
		}
		switch call.Name {
		case "modify_field":
			if err := argc(2); err != nil {
				return nil, err
			}
			dst, dstName, err := c.resolveDst(call.Args[0], binding)
			if err != nil {
				return nil, err
			}
			src, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			noteParamWidth(src, fieldWidth(dst))
			a.Body = append(a.Body, p4.ModifyField{Dst: dst, DstName: dstName, Src: src})
		case "add", "subtract", "bit_and", "bit_or", "bit_xor", "shift_left", "shift_right", "min", "max":
			if err := argc(3); err != nil {
				return nil, err
			}
			dst, dstName, err := c.resolveDst(call.Args[0], binding)
			if err != nil {
				return nil, err
			}
			x, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			y, err := c.resolveOperand(call.Args[2], decl, binding)
			if err != nil {
				return nil, err
			}
			noteParamWidth(x, fieldWidth(dst))
			noteParamWidth(y, fieldWidth(dst))
			a.Body = append(a.Body, p4.ALU{Op: aluOps[call.Name], Dst: dst, DstName: dstName, A: x, B: y})
		case "add_to_field", "subtract_from_field":
			if err := argc(2); err != nil {
				return nil, err
			}
			dst, dstName, err := c.resolveDst(call.Args[0], binding)
			if err != nil {
				return nil, err
			}
			v, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			op := p4.ALUAdd
			if call.Name == "subtract_from_field" {
				op = p4.ALUSub
			}
			noteParamWidth(v, fieldWidth(dst))
			a.Body = append(a.Body, p4.ALU{Op: op, Dst: dst, DstName: dstName, A: p4.FieldOp(dst, dstName), B: v})
		case "drop":
			if err := argc(0); err != nil {
				return nil, err
			}
			a.Body = append(a.Body, p4.Drop{})
		case "no_op":
			if err := argc(0); err != nil {
				return nil, err
			}
			a.Body = append(a.Body, p4.NoOp{})
		case "recirculate":
			if err := argc(0); err != nil {
				return nil, err
			}
			a.Body = append(a.Body, p4.Recirculate{})
		case "register_read":
			if err := argc(3); err != nil {
				return nil, err
			}
			dst, dstName, err := c.resolveDst(call.Args[0], binding)
			if err != nil {
				return nil, err
			}
			reg, err := c.registerName(call.Args[1])
			if err != nil {
				return nil, err
			}
			idx, err := c.resolveOperand(call.Args[2], decl, binding)
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, p4.RegisterRead{Dst: dst, DstName: dstName, Reg: reg, Index: idx})
		case "register_write":
			if err := argc(3); err != nil {
				return nil, err
			}
			reg, err := c.registerName(call.Args[0])
			if err != nil {
				return nil, err
			}
			idx, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			val, err := c.resolveOperand(call.Args[2], decl, binding)
			if err != nil {
				return nil, err
			}
			noteParamWidth(val, c.prog.Registers[reg].Width)
			a.Body = append(a.Body, p4.RegisterWrite{Reg: reg, Index: idx, Value: val})
		case "register_increment":
			if err := argc(3); err != nil {
				return nil, err
			}
			reg, err := c.registerName(call.Args[0])
			if err != nil {
				return nil, err
			}
			idx, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			by, err := c.resolveOperand(call.Args[2], decl, binding)
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, p4.RegisterIncrement{Reg: reg, Index: idx, By: by})
		case "count":
			if err := argc(2); err != nil {
				return nil, err
			}
			reg, err := c.registerName(call.Args[0])
			if err != nil {
				return nil, err
			}
			idx, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			a.Body = append(a.Body, p4.RegisterIncrement{Reg: reg, Index: idx, By: p4.ConstOp(1)})
		case "count_bytes":
			if err := argc(2); err != nil {
				return nil, err
			}
			reg, err := c.registerName(call.Args[0])
			if err != nil {
				return nil, err
			}
			idx, err := c.resolveOperand(call.Args[1], decl, binding)
			if err != nil {
				return nil, err
			}
			plen := c.prog.Schema.MustID(p4.FieldPacketLen)
			a.Body = append(a.Body, p4.RegisterIncrement{Reg: reg, Index: idx, By: p4.FieldOp(plen, p4.FieldPacketLen)})
		case "modify_field_with_hash_based_offset":
			if err := argc(4); err != nil {
				return nil, err
			}
			dst, dstName, err := c.resolveDst(call.Args[0], binding)
			if err != nil {
				return nil, err
			}
			if call.Args[1].Kind != p4r.ArgConst || call.Args[3].Kind != p4r.ArgConst {
				return nil, lerr(diag.LowerInvalid, call.Line, call.Col, "hash base and size must be constants")
			}
			if call.Args[2].Kind != p4r.ArgIdent {
				return nil, lerr(diag.LowerInvalid, call.Line, call.Col, "hash calculation name expected")
			}
			a.Body = append(a.Body, p4.ModifyFieldWithHash{
				Dst: dst, DstName: dstName,
				Base: call.Args[1].Value, Hash: call.Args[2].Ident, Size: call.Args[3].Value,
			})
		default:
			return nil, lerr(diag.LowerUnknown, call.Line, call.Col, "unknown primitive %q", call.Name)
		}
	}
	for i, pn := range decl.Params {
		a.Params = append(a.Params, p4.Param{Name: pn, Width: widths[i]})
	}
	return a, nil
}

// ---- Table lowering (Figs. 5, 6 and §5.1.2) ----

var matchKindOf = map[string]p4.MatchKind{
	"exact": p4.MatchExact, "ternary": p4.MatchTernary, "lpm": p4.MatchLPM, "range": p4.MatchRange,
}

func (c *compiler) lowerTables() error {
	for _, t := range c.f.Tables {
		tbl := &p4.Table{Name: t.Name, Malleable: t.Malleable}
		info := &MblTableInfo{Table: t.Name, SelectorCol: make(map[string]int), VVCol: -1, ActionSpec: make(map[string]*ActionSpecInfo)}
		needsInfo := t.Malleable
		var selectorOrder []string
		expansion := 1
		seenMbl := map[string]bool{}

		noteMbl := func(name string) {
			if !seenMbl[name] {
				seenMbl[name] = true
				selectorOrder = append(selectorOrder, name)
				expansion *= len(c.plan.MblFields[name].Alts)
			}
		}

		for _, rk := range t.Reads {
			uk := UserKey{MatchType: rk.MatchType}
			info.ColOffset = append(info.ColOffset, len(tbl.Keys))
			switch rk.Target.Kind {
			case p4r.ArgIdent:
				id, ok := c.prog.Schema.Lookup(rk.Target.Ident)
				if !ok {
					return lerr(diag.LowerUnknown, rk.Line, rk.Col, "table %s: unknown match field %q", t.Name, rk.Target.Ident)
				}
				uk.FieldName = rk.Target.Ident
				uk.Width = c.prog.Schema.Width(id)
				mk := p4.MatchKey{
					FieldName: rk.Target.Ident, Field: id, Width: uk.Width, Kind: matchKindOf[rk.MatchType],
				}
				if rk.HasMask {
					mk.StaticMask = rk.Mask
				}
				tbl.Keys = append(tbl.Keys, mk)
			case p4r.ArgMblRef:
				if mv, isVal := c.plan.MblValues[rk.Target.Mbl]; isVal {
					// Matching on a malleable value is matching its metadata.
					id := c.prog.Schema.MustID(mv.MetaField)
					uk.FieldName = mv.MetaField
					uk.Width = mv.Width
					tbl.Keys = append(tbl.Keys, p4.MatchKey{
						FieldName: mv.MetaField, Field: id, Width: mv.Width, Kind: matchKindOf[rk.MatchType],
					})
					break
				}
				mf, isField := c.plan.MblFields[rk.Target.Mbl]
				if !isField {
					return lerr(diag.LowerUnknown, rk.Line, rk.Col, "table %s: unknown malleable ${%s}", t.Name, rk.Target.Mbl)
				}
				if rk.MatchType == "range" {
					return lerr(diag.LowerInvalid, rk.Line, rk.Col, "table %s: range match on malleable field ${%s} is not supported", t.Name, mf.Name)
				}
				// Fig. 6: one ternary column per alternative. Exact user
				// matches become ternary to admit the wildcard.
				uk.MblField = mf.Name
				uk.Width = mf.Width
				needsInfo = true
				noteMbl(mf.Name)
				for _, alt := range mf.Alts {
					id := c.prog.Schema.MustID(alt)
					kind := p4.MatchTernary
					if rk.MatchType == "lpm" {
						kind = p4.MatchLPM
					}
					mk := p4.MatchKey{
						FieldName: alt, Field: id, Width: mf.Width, Kind: kind,
					}
					if rk.HasMask {
						mk.StaticMask = rk.Mask
					}
					tbl.Keys = append(tbl.Keys, mk)
				}
			default:
				return lerr(diag.LowerInvalid, rk.Line, rk.Col, "table %s: invalid match key", t.Name)
			}
			info.Keys = append(info.Keys, uk)
		}

		for _, an := range t.Actions {
			if spec, ok := c.specs[an]; ok {
				needsInfo = true
				info.ActionSpec[an] = spec
				for _, fn := range spec.Fields {
					noteMbl(fn)
				}
				tbl.ActionNames = append(tbl.ActionNames, spec.Variants...)
				continue
			}
			if _, ok := c.prog.Actions[an]; !ok {
				return lerr(diag.LowerUnknown, t.Line, t.Col, "table %s: unknown action %q", t.Name, an)
			}
			tbl.ActionNames = append(tbl.ActionNames, an)
		}

		// Selector columns, in order of first use.
		for _, fn := range selectorOrder {
			mf := c.plan.MblFields[fn]
			id := c.prog.Schema.MustID(mf.Selector)
			info.SelectorCol[fn] = len(tbl.Keys)
			tbl.Keys = append(tbl.Keys, p4.MatchKey{
				FieldName: mf.Selector, Field: id, Width: c.prog.Schema.Width(id), Kind: p4.MatchExact,
			})
		}

		if t.Default != nil {
			if _, specialized := c.specs[t.Default.Action]; specialized {
				return lerr(diag.LowerInvalid, t.Line, t.Col, "table %s: default action %q uses malleable fields, which is not supported (install a low-priority entry instead)", t.Name, t.Default.Action)
			}
			if _, ok := c.prog.Actions[t.Default.Action]; !ok {
				return lerr(diag.LowerUnknown, t.Line, t.Col, "table %s: unknown default action %q", t.Name, t.Default.Action)
			}
			tbl.DefaultAction = &p4.ActionCall{Action: t.Default.Action, Data: append([]uint64(nil), t.Default.Args...)}
		}

		if t.Malleable {
			// §5.1.2: vv as an exact-match column; every entry doubled.
			vvID := c.prog.Schema.MustID(VVField)
			info.VVCol = len(tbl.Keys)
			tbl.Keys = append(tbl.Keys, p4.MatchKey{FieldName: VVField, Field: vvID, Width: 1, Kind: p4.MatchExact})
		}

		if t.Size > 0 {
			gen := t.Size * expansion
			if t.Malleable {
				gen *= 2
			}
			tbl.Size = gen
		}
		info.GenKeyCount = len(tbl.Keys)
		c.prog.AddTable(tbl)
		if needsInfo {
			c.plan.MblTables[t.Name] = info
		}
	}
	return nil
}

// ---- Control flow ----

func (c *compiler) condOperand(arg p4r.Arg) (p4.Operand, error) {
	switch arg.Kind {
	case p4r.ArgConst:
		return p4.ConstOp(arg.Value), nil
	case p4r.ArgIdent:
		id, ok := c.prog.Schema.Lookup(arg.Ident)
		if !ok {
			return p4.Operand{}, lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown field %q in condition", arg.Ident)
		}
		return p4.FieldOp(id, arg.Ident), nil
	case p4r.ArgMblRef:
		if mv, ok := c.plan.MblValues[arg.Mbl]; ok {
			return p4.FieldOp(c.prog.Schema.MustID(mv.MetaField), mv.MetaField), nil
		}
		if _, ok := c.plan.MblFields[arg.Mbl]; ok {
			carrier, err := c.carrierFor(arg.Mbl, arg.Line, arg.Col)
			if err != nil {
				return p4.Operand{}, err
			}
			return p4.FieldOp(c.prog.Schema.MustID(carrier), carrier), nil
		}
		return p4.Operand{}, lerr(diag.LowerUnknown, arg.Line, arg.Col, "unknown malleable ${%s} in condition", arg.Mbl)
	}
	return p4.Operand{}, lerr(diag.LowerInvalid, arg.Line, arg.Col, "bad condition operand")
}

var cmpOps = map[string]p4.CmpOp{
	"==": p4.CmpEQ, "!=": p4.CmpNE, "<": p4.CmpLT, "<=": p4.CmpLE, ">": p4.CmpGT, ">=": p4.CmpGE,
}

func (c *compiler) lowerStmts(stmts []p4r.Stmt) ([]p4.ControlStmt, error) {
	var out []p4.ControlStmt
	for _, s := range stmts {
		switch st := s.(type) {
		case p4r.ApplyStmt:
			if _, ok := c.prog.Tables[st.Table]; !ok {
				return nil, lerr(diag.LowerUnknown, st.Line, st.Col, "apply of unknown table %q", st.Table)
			}
			out = append(out, p4.Apply{Table: st.Table})
		case p4r.IfStmt:
			l, err := c.condOperand(st.Cond.Left)
			if err != nil {
				return nil, err
			}
			r, err := c.condOperand(st.Cond.Right)
			if err != nil {
				return nil, err
			}
			then, err := c.lowerStmts(st.Then)
			if err != nil {
				return nil, err
			}
			els, err := c.lowerStmts(st.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, p4.If{
				Cond: p4.CondExpr{Left: l, Op: cmpOps[st.Cond.Op], Right: r},
				Then: then, Else: els,
			})
		}
	}
	return out, nil
}

func (c *compiler) buildControlFlow() error {
	// lowerStmts errors are already positioned diagnostics; no prefix
	// wrapping — the line number locates the pipeline.
	userIng, err := c.lowerStmts(c.f.Ingress)
	if err != nil {
		return err
	}
	userEgr, err := c.lowerStmts(c.f.Egress)
	if err != nil {
		return err
	}
	var ing []p4.ControlStmt
	for _, it := range c.plan.InitTables {
		ing = append(ing, p4.Apply{Table: it.Table})
	}
	// Carrier loaders run right after init (they read selectors the init
	// tables just loaded). Deterministic order: sorted by malleable name.
	var loaders []string
	for name, mf := range c.plan.MblFields {
		if mf.LoaderTable != "" {
			loaders = append(loaders, name)
		}
	}
	sort.Strings(loaders)
	for _, name := range loaders {
		ing = append(ing, p4.Apply{Table: c.plan.MblFields[name].LoaderTable})
	}
	ing = append(ing, userIng...)
	for _, rxn := range c.plan.Reactions {
		if len(rxn.IngSlots) > 0 {
			ing = append(ing, p4.Apply{Table: measTableName(rxn.Name, "ing")})
		}
	}
	egr := append([]p4.ControlStmt(nil), userEgr...)
	for _, rxn := range c.plan.Reactions {
		if len(rxn.EgrSlots) > 0 {
			egr = append(egr, p4.Apply{Table: measTableName(rxn.Name, "egr")})
		}
	}
	c.prog.Ingress = ing
	c.prog.Egress = egr
	return nil
}
