package compiler

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/p4"
	"repro/internal/p4r"
)

func compile(t *testing.T, src string) *Plan {
	t.Helper()
	plan, err := CompileSource(src, DefaultOptions())
	if err != nil {
		t.Fatalf("CompileSource: %v", err)
	}
	return plan
}

const valueSrc = `
header_type h_t { fields { foo : 16; bar : 16; baz : 16; } }
header h_t hdr;
malleable value value_var { width : 16; init : 1; }
action my_action() {
  add(hdr.foo, hdr.baz, ${value_var});
}
table t {
  reads { hdr.bar : exact; }
  actions { my_action; }
  size : 16;
}
control ingress { apply(t); }
`

// TestMalleableValueTransformation checks the Fig. 4 lowering: the value
// becomes a p4r_meta_ field loaded by an init table and referenced in
// place of the ${...}.
func TestMalleableValueTransformation(t *testing.T) {
	plan := compile(t, valueSrc)
	info := plan.MblValues["value_var"]
	if info == nil {
		t.Fatal("value_var missing from plan")
	}
	if info.MetaField != "p4r_meta_.value_var" || info.Init != 1 || info.Width != 16 {
		t.Fatalf("info = %+v", info)
	}
	if len(plan.InitTables) != 1 || !plan.InitTables[0].Master {
		t.Fatalf("init tables = %+v", plan.InitTables)
	}
	master := plan.InitTables[0]
	if master.Table != "p4r_init1_" {
		t.Fatalf("master table = %s", master.Table)
	}
	// The init table must be applied first in ingress.
	ing := plan.Prog.Ingress
	if ap, ok := ing[0].(p4.Apply); !ok || ap.Table != "p4r_init1_" {
		t.Fatalf("ingress[0] = %+v", ing[0])
	}
	// my_action must now reference the metadata field.
	act := plan.Prog.Actions["my_action"]
	if act == nil {
		t.Fatal("my_action missing")
	}
	alu, ok := act.Body[0].(p4.ALU)
	if !ok {
		t.Fatalf("body[0] = %T", act.Body[0])
	}
	if alu.B.Kind != p4.OpField || alu.B.Name != "p4r_meta_.value_var" {
		t.Fatalf("operand B = %+v, want meta field", alu.B)
	}
	// The master's default action carries the init value.
	tbl := plan.Prog.Tables["p4r_init1_"]
	if tbl.DefaultAction == nil {
		t.Fatal("master init table has no default action")
	}
	idx := master.ParamIndexOf("value_var")
	if idx < 0 || tbl.DefaultAction.Data[idx] != 1 {
		t.Fatalf("init data = %v (value_var at %d)", tbl.DefaultAction.Data, idx)
	}
}

const fieldWriteSrc = `
header_type h_t { fields { foo : 32; bar : 32; baz : 32; qux : 8; } }
header h_t hdr;
malleable field write_var {
  width : 32; init : hdr.foo;
  alts { hdr.foo, hdr.bar }
}
action my_action(bazp) {
  modify_field(${write_var}, bazp);
}
malleable table my_table {
  reads { hdr.qux : exact; }
  actions { my_action; }
  size : 8;
}
control ingress { apply(my_table); }
`

// TestMalleableFieldWriteTransformation checks the Fig. 5 lowering:
// selector metadata, specialized actions, and selector+vv columns.
func TestMalleableFieldWriteTransformation(t *testing.T) {
	plan := compile(t, fieldWriteSrc)
	mf := plan.MblFields["write_var"]
	if mf == nil {
		t.Fatal("write_var missing")
	}
	if mf.Selector != "p4r_meta_.write_var_alt" {
		t.Fatalf("selector = %s", mf.Selector)
	}
	if w := plan.Prog.Schema.Width(plan.Prog.Schema.MustID(mf.Selector)); w != 1 {
		t.Fatalf("selector width = %d, want ceil(log2(2)) = 1", w)
	}
	ti := plan.MblTables["my_table"]
	if ti == nil {
		t.Fatal("my_table has no MblTableInfo")
	}
	spec := ti.ActionSpec["my_action"]
	if spec == nil {
		t.Fatal("my_action not specialized")
	}
	if len(spec.Variants) != 2 {
		t.Fatalf("variants = %v", spec.Variants)
	}
	// Each variant writes a different concrete field.
	v0 := plan.Prog.Actions[spec.VariantFor([]int{0})]
	v1 := plan.Prog.Actions[spec.VariantFor([]int{1})]
	d0 := v0.Body[0].(p4.ModifyField).DstName
	d1 := v1.Body[0].(p4.ModifyField).DstName
	if d0 != "hdr.foo" || d1 != "hdr.bar" {
		t.Fatalf("variant dsts = %s, %s", d0, d1)
	}
	// Generated table layout: [hdr.qux][selector][vv].
	tbl := plan.Prog.Tables["my_table"]
	if len(tbl.Keys) != 3 {
		t.Fatalf("keys = %+v", tbl.Keys)
	}
	if ti.SelectorCol["write_var"] != 1 || ti.VVCol != 2 {
		t.Fatalf("cols: selector=%d vv=%d", ti.SelectorCol["write_var"], ti.VVCol)
	}
	if tbl.Keys[2].FieldName != VVField {
		t.Fatalf("last key = %s", tbl.Keys[2].FieldName)
	}
	// Size: 8 user entries x 2 alts x 2 versions.
	if tbl.Size != 32 {
		t.Fatalf("generated size = %d, want 32", tbl.Size)
	}
	// The original action name must not exist in the program.
	if _, exists := plan.Prog.Actions["my_action"]; exists {
		t.Fatal("unspecialized action was also added")
	}
}

const fieldReadSrc = `
header_type h_t { fields { foo : 32; bar : 32; baz : 32; qux : 32; } }
header h_t hdr;
malleable field read_var {
  width : 32; init : hdr.foo;
  alts { hdr.foo, hdr.bar }
}
action my_action() {
  add(hdr.qux, hdr.baz, ${read_var});
}
malleable table my_table {
  reads { ${read_var} : exact; }
  actions { my_action; }
  size : 4;
}
control ingress { apply(my_table); }
`

// TestMalleableFieldReadTransformation checks the Fig. 6 lowering: the
// malleable match column becomes |alts| ternary columns plus the
// selector, and the action is specialized.
func TestMalleableFieldReadTransformation(t *testing.T) {
	plan := compile(t, fieldReadSrc)
	tbl := plan.Prog.Tables["my_table"]
	ti := plan.MblTables["my_table"]
	// Layout: [hdr.foo ternary][hdr.bar ternary][selector][vv].
	if len(tbl.Keys) != 4 {
		t.Fatalf("keys = %+v", tbl.Keys)
	}
	if tbl.Keys[0].FieldName != "hdr.foo" || tbl.Keys[0].Kind != p4.MatchTernary {
		t.Fatalf("key0 = %+v (exact must become ternary)", tbl.Keys[0])
	}
	if tbl.Keys[1].FieldName != "hdr.bar" || tbl.Keys[1].Kind != p4.MatchTernary {
		t.Fatalf("key1 = %+v", tbl.Keys[1])
	}
	if ti.ColOffset[0] != 0 || ti.SelectorCol["read_var"] != 2 || ti.VVCol != 3 {
		t.Fatalf("layout: %+v", ti)
	}
	if ti.Keys[0].MblField != "read_var" {
		t.Fatalf("user key = %+v", ti.Keys[0])
	}
	// Size: 4 user x 2 alts x 2 versions.
	if tbl.Size != 16 {
		t.Fatalf("size = %d", tbl.Size)
	}
}

func TestInitTableSplitting(t *testing.T) {
	src := `
header_type h_t { fields { a : 32; b : 32; } }
header h_t hdr;
malleable value v1 { width : 32; init : 1; }
malleable value v2 { width : 32; init : 2; }
malleable value v3 { width : 32; init : 3; }
malleable value v4 { width : 16; init : 4; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`
	f, err := p4r.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxInitActionBits = 40 // forces one 32-bit value per table
	plan, err := Compile(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.InitTables) < 3 {
		t.Fatalf("init tables = %d, want split", len(plan.InitTables))
	}
	if !plan.InitTables[0].Master {
		t.Fatal("first init table is not master")
	}
	// vv+mv... (no reactions, so just vv) must live in the master.
	foundVV := false
	for _, p := range plan.InitTables[0].Params {
		if p.Kind == InitVV {
			foundVV = true
		}
	}
	if !foundVV {
		t.Fatal("vv not in master init table")
	}
	// Non-master init tables match on vv.
	for _, it := range plan.InitTables[1:] {
		tbl := plan.Prog.Tables[it.Table]
		if len(tbl.Keys) != 1 || tbl.Keys[0].FieldName != VVField {
			t.Fatalf("non-master init table %s keys = %+v", it.Table, tbl.Keys)
		}
	}
	// Every malleable is assigned to exactly one init slot.
	for name, mv := range plan.MblValues {
		it := plan.InitTables[mv.InitTable]
		if it.ParamIndexOf(name) != mv.ParamIdx {
			t.Fatalf("%s slot mismatch", name)
		}
	}
}

func TestSortedFirstFitProperty(t *testing.T) {
	f := func(widths []uint8) bool {
		var items []InitParam
		for i, w := range widths {
			width := int(w%64) + 1
			items = append(items, InitParam{Kind: InitValue, Mbl: string(rune('a' + i%26)), Width: width})
		}
		bins := firstFitDecreasing(nil, items, 64)
		total := 0
		for _, bin := range bins {
			sum := 0
			for _, it := range bin {
				sum += it.Width
			}
			if sum > 64 {
				return false // capacity violated
			}
			total += len(bin)
		}
		return total == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

const reactionSrc = `
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; proto : 8; } }
header ipv4_t ipv4;
register total_bytes { width : 32; instance_count : 1; }
register port_pkts { width : 32; instance_count : 10; }
malleable value threshold { width : 32; init : 100; }
action cnt() {
  register_increment(total_bytes, 0, standard_metadata.packet_length);
  count(port_pkts, standard_metadata.ingress_port);
}
table counting { actions { cnt; } default_action : cnt; size : 1; }
reaction my_rxn(ing ipv4.srcAddr, ing ipv4.proto, reg total_bytes[0:0], reg port_pkts) {
  ${threshold} = ${threshold} + 1;
}
control ingress { apply(counting); }
`

func TestReactionMeasurementGeneration(t *testing.T) {
	plan := compile(t, reactionSrc)
	if len(plan.Reactions) != 1 {
		t.Fatalf("reactions = %d", len(plan.Reactions))
	}
	r := plan.Reactions[0]
	// srcAddr(32) + proto(8) pack into a single 64-bit slot.
	if len(r.IngSlots) != 1 {
		t.Fatalf("ing slots = %+v", r.IngSlots)
	}
	slot := r.IngSlots[0]
	if len(slot.Fields) != 2 {
		t.Fatalf("slot fields = %+v", slot.Fields)
	}
	// Sorted first-fit: srcAddr (wider) first at shift 0, proto at 32.
	if slot.Fields[0].Param != "ipv4.srcAddr" || slot.Fields[0].Shift != 0 {
		t.Fatalf("field0 = %+v", slot.Fields[0])
	}
	if slot.Fields[1].Param != "ipv4.proto" || slot.Fields[1].Shift != 32 {
		t.Fatalf("field1 = %+v", slot.Fields[1])
	}
	if slot.Fields[1].Var != "ipv4_proto" {
		t.Fatalf("var = %s", slot.Fields[1].Var)
	}
	// The measurement register exists with 2 instances (working+checkpoint).
	reg := plan.Prog.Registers[slot.Register]
	if reg == nil || reg.Instances != 2 {
		t.Fatalf("meas register = %+v", reg)
	}
	// The measurement table is applied at the end of ingress.
	ing := plan.Prog.Ingress
	last := ing[len(ing)-1].(p4.Apply)
	if last.Table != "p4r_meas_my_rxn_ing_" {
		t.Fatalf("last ingress apply = %s", last.Table)
	}
	// Register params: full-array slice resolves to [0, N-1].
	if len(r.RegParams) != 2 {
		t.Fatalf("reg params = %+v", r.RegParams)
	}
	pp := r.RegParams[1]
	if pp.Orig != "port_pkts" || pp.Lo != 0 || pp.Hi != 9 || pp.N != 10 || pp.PaddedN != 16 {
		t.Fatalf("port_pkts param = %+v", pp)
	}
	// Duplicate and timestamp registers sized 2*paddedN.
	dup := plan.Prog.Registers[pp.Dup]
	ts := plan.Prog.Registers[pp.Ts]
	if dup == nil || dup.Instances != 32 || ts == nil || ts.Instances != 32 {
		t.Fatalf("dup = %+v ts = %+v", dup, ts)
	}
	if !plan.UsesMV || !plan.UsesVV {
		t.Fatalf("version bits: vv=%v mv=%v", plan.UsesVV, plan.UsesMV)
	}
}

func TestMirrorInjection(t *testing.T) {
	plan := compile(t, reactionSrc)
	cnt := plan.Prog.Actions["cnt"]
	// Original body: 2 increments. After mirroring each increment gains
	// 1 read-back + 5 mirror ops.
	if len(cnt.Body) != 2+2*6 {
		t.Fatalf("cnt body has %d ops", len(cnt.Body))
	}
	// Check a duplicate write targets the dup register.
	foundDup, foundTs := false, false
	for _, prim := range cnt.Body {
		switch op := prim.(type) {
		case p4.RegisterWrite:
			if strings.HasPrefix(op.Reg, "p4r_dup_") {
				foundDup = true
			}
		case p4.RegisterIncrement:
			if strings.HasPrefix(op.Reg, "p4r_ts_") {
				foundTs = true
			}
		}
	}
	if !foundDup || !foundTs {
		t.Fatalf("mirror ops missing: dup=%v ts=%v", foundDup, foundTs)
	}
}

func TestFieldListCarrierOptimization(t *testing.T) {
	src := `
header_type ipv4_t { fields { srcAddr : 32; dstAddr : 32; } }
header ipv4_t ipv4;
header_type ipv6_t { fields { flowLabel : 32; } }
header ipv6_t ipv6;
malleable field src_sel {
  width : 32; init : ipv4.srcAddr;
  alts { ipv4.srcAddr, ipv6.flowLabel }
}
field_list ecmp_fl { ${src_sel}; ipv4.dstAddr; }
field_list_calculation ecmp_hash {
  input { ecmp_fl; }
  algorithm : crc16;
  output_width : 14;
}
action h() { modify_field_with_hash_based_offset(ipv4.dstAddr, 0, ecmp_hash, 4); }
table t { actions { h; } default_action : h; size : 1; }
control ingress { apply(t); }
`
	plan := compile(t, src)
	mf := plan.MblFields["src_sel"]
	if mf.Carrier != "p4r_meta_.src_sel_val" || mf.LoaderTable == "" {
		t.Fatalf("carrier = %+v", mf)
	}
	// The hash reads the carrier, not either alt.
	h := plan.Prog.Hashes["ecmp_hash"]
	if h == nil {
		t.Fatal("hash missing")
	}
	if plan.Prog.Schema.Name(h.Fields[0]) != mf.Carrier {
		t.Fatalf("hash field0 = %s", plan.Prog.Schema.Name(h.Fields[0]))
	}
	// Static loader entries: one per alt.
	count := 0
	for _, se := range plan.StaticEntries {
		if se.Table == mf.LoaderTable {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("loader entries = %d", count)
	}
	// Loader applied after init, before user tables.
	ing := plan.Prog.Ingress
	if ap, ok := ing[1].(p4.Apply); !ok || ap.Table != mf.LoaderTable {
		t.Fatalf("ingress[1] = %+v", ing[1])
	}
}

func TestCompoundMalleablesInOneAction(t *testing.T) {
	src := `
header_type h_t { fields { a : 16; b : 16; c : 16; d : 16; } }
header h_t hdr;
malleable field f1 { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
malleable field f2 { width : 16; init : hdr.c; alts { hdr.c, hdr.d } }
malleable value v { width : 16; init : 5; }
action mix() {
  add(${f1}, ${f2}, ${v});
}
malleable table t {
  actions { mix; }
  size : 2;
}
control ingress { apply(t); }
`
	plan := compile(t, src)
	ti := plan.MblTables["t"]
	spec := ti.ActionSpec["mix"]
	if len(spec.Variants) != 4 {
		t.Fatalf("variants = %v, want 2x2 = 4", spec.Variants)
	}
	// Check variant (1,0): dst hdr.b, src hdr.c, value meta.
	a := plan.Prog.Actions[spec.VariantFor([]int{1, 0})]
	alu := a.Body[0].(p4.ALU)
	if alu.DstName != "hdr.b" || alu.A.Name != "hdr.c" || alu.B.Name != "p4r_meta_.v" {
		t.Fatalf("variant(1,0): %+v", alu)
	}
	// Table columns: selectors for f1 and f2 plus vv.
	tbl := plan.Prog.Tables["t"]
	if len(tbl.Keys) != 3 {
		t.Fatalf("keys = %+v", tbl.Keys)
	}
	// Size: 2 user x 2 x 2 alts x 2 vv = 16.
	if tbl.Size != 16 {
		t.Fatalf("size = %d", tbl.Size)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"unknown alt": `
malleable field f { width : 8; init : a.b; alts { a.b } }
`,
		"alt width mismatch": `
header_type h_t { fields { a : 8; b : 16; } }
header h_t hdr;
malleable field f { width : 8; init : hdr.a; alts { hdr.a, hdr.b } }
`,
		"assign to malleable value": `
malleable value v { width : 8; init : 0; }
action a() { modify_field(${v}, 1); }
table t { actions { a; } }
control ingress { apply(t); }
`,
		"unknown malleable in action": `
header_type h_t { fields { a : 8; } }
header h_t hdr;
action a() { modify_field(hdr.a, ${ghost}); }
table t { actions { a; } }
control ingress { apply(t); }
`,
		"unknown field in reads": `
action a() { no_op(); }
table t { reads { hdr.nope : exact; } actions { a; } }
control ingress { apply(t); }
`,
		"unknown register in reaction": `
reaction r(reg ghost) { }
`,
		"reg slice out of range": `
register q { width : 32; instance_count : 4; }
reaction r(reg q[0:9]) { }
`,
		"unknown field param": `
reaction r(ing ipv4.nope) { }
`,
		"default action with malleable field": `
header_type h_t { fields { a : 8; b : 8; } }
header h_t hdr;
malleable field f { width : 8; init : hdr.a; alts { hdr.a, hdr.b } }
action a() { modify_field(${f}, 1); }
table t { actions { a; } default_action : a; }
control ingress { apply(t); }
`,
		"apply unknown table": `
control ingress { apply(ghost); }
`,
		"duplicate header type": `
header_type h_t { fields { a : 8; } }
header_type h_t { fields { b : 8; } }
`,
		"instance of unknown type": `
header ghost_t hdr;
`,
		"bad hash algorithm": `
header_type h_t { fields { a : 8; } }
header h_t hdr;
field_list fl { hdr.a; }
field_list_calculation c { input { fl; } algorithm : md5; output_width : 16; }
`,
		"calc of unknown list": `
field_list_calculation c { input { ghost; } algorithm : crc16; output_width : 16; }
`,
		"range on malleable field": `
header_type h_t { fields { a : 8; b : 8; } }
header h_t hdr;
malleable field f { width : 8; init : hdr.a; alts { hdr.a, hdr.b } }
action a() { no_op(); }
table t { reads { ${f} : range; } actions { a; } }
control ingress { apply(t); }
`,
		"unknown primitive": `
header_type h_t { fields { a : 8; } }
header h_t hdr;
action a() { teleport(hdr.a); }
table t { actions { a; } }
control ingress { apply(t); }
`,
	}
	for name, src := range cases {
		if _, err := CompileSource(src, DefaultOptions()); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestGeneratedProgramValidatesAndPrints(t *testing.T) {
	for _, src := range []string{valueSrc, fieldWriteSrc, fieldReadSrc, reactionSrc} {
		plan := compile(t, src)
		if err := plan.Prog.Validate(); err != nil {
			t.Fatalf("generated program invalid: %v", err)
		}
		out := plan.Prog.Print()
		if !strings.Contains(out, "control ingress") {
			t.Fatal("print output incomplete")
		}
		if plan.SourceLines == 0 {
			t.Fatal("SourceLines not recorded")
		}
	}
}

func TestMetadataBitsAccounted(t *testing.T) {
	plan := compile(t, valueSrc)
	res := plan.Prog.EstimateResources(nil)
	// value_var (16) + vv (1): generated metadata.
	if res.MetadataBits != 17 {
		t.Fatalf("MetadataBits = %d, want 17", res.MetadataBits)
	}
}

func TestReactionBodyPreserved(t *testing.T) {
	plan := compile(t, reactionSrc)
	if !strings.Contains(plan.Reactions[0].Body, "${threshold} = ${threshold} + 1;") {
		t.Fatalf("body = %q", plan.Reactions[0].Body)
	}
}

func TestCeilLog2AndNextPow2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
	pows := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 16: 16, 17: 32}
	for n, want := range pows {
		if got := nextPow2(n); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestStaticMaskThreadedThrough(t *testing.T) {
	src := `
header_type h_t { fields { x : 32; } }
header h_t hdr;
action nop() { no_op(); }
table t {
  reads { hdr.x mask 0xFF : exact; }
  actions { nop; }
  size : 4;
}
control ingress { apply(t); }
`
	plan := compile(t, src)
	k := plan.Prog.Tables["t"].Keys[0]
	if k.StaticMask != 0xFF {
		t.Fatalf("StaticMask = %#x", k.StaticMask)
	}
}

// TestSameFieldReadAndWriteCoalesced: §4.1 "multiple uses of the same
// field — whether left-hand or right — can be coalesced; each action
// needs to be specialized at most one time."
func TestSameFieldReadAndWriteCoalesced(t *testing.T) {
	src := `
header_type h_t { fields { a : 16; b : 16; c : 16; } }
header h_t hdr;
malleable field f { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action rw() {
  add(${f}, ${f}, hdr.c);
}
malleable table t {
  actions { rw; }
  size : 2;
}
control ingress { apply(t); }
`
	plan := compile(t, src)
	spec := plan.MblTables["t"].ActionSpec["rw"]
	if len(spec.Fields) != 1 {
		t.Fatalf("specialized over %v, want one field (coalesced)", spec.Fields)
	}
	if len(spec.Variants) != 2 {
		t.Fatalf("variants = %v, want 2 (|alts|, not |alts|^uses)", spec.Variants)
	}
	// Within a variant, both uses bind to the same alternative — no
	// mixed-reference torn action.
	v1 := plan.Prog.Actions[spec.VariantFor([]int{1})]
	alu := v1.Body[0].(p4.ALU)
	if alu.DstName != "hdr.b" || alu.A.Name != "hdr.b" {
		t.Fatalf("variant 1 mixes alternatives: dst=%s a=%s", alu.DstName, alu.A.Name)
	}
}

// TestControlFlowConditionLowering covers if/else lowering with plain
// fields, malleable values, and malleable fields (carrier path) in
// conditions.
func TestControlFlowConditionLowering(t *testing.T) {
	src := `
header_type h_t { fields { a : 16; b : 16; q : 16; } }
header h_t hdr;
malleable value thresh { width : 16; init : 5; }
malleable field sel { width : 16; init : hdr.a; alts { hdr.a, hdr.b } }
action nop() { no_op(); }
table t1 { actions { nop; } default_action : nop; size : 1; }
table t2 { actions { nop; } default_action : nop; size : 1; }
table t3 { actions { nop; } default_action : nop; size : 1; }
control ingress {
  if (hdr.q > ${thresh}) {
    apply(t1);
  } else {
    if (${sel} == 7) {
      apply(t2);
    }
  }
  apply(t3);
}
`
	plan := compile(t, src)
	ing := plan.Prog.Ingress
	// After init + loader applies, the first user statement is the If.
	var ifStmt *p4.If
	for _, s := range ing {
		if st, ok := s.(p4.If); ok {
			ifStmt = &st
			break
		}
	}
	if ifStmt == nil {
		t.Fatal("no If in lowered ingress")
	}
	if ifStmt.Cond.Right.Name != "p4r_meta_.thresh" {
		t.Fatalf("threshold operand = %+v, want meta field", ifStmt.Cond.Right)
	}
	// The nested condition on the malleable field reads its carrier.
	nested, ok := ifStmt.Else[0].(p4.If)
	if !ok {
		t.Fatalf("else[0] = %T", ifStmt.Else[0])
	}
	if nested.Cond.Left.Name != "p4r_meta_.sel_val" {
		t.Fatalf("field condition operand = %+v, want carrier", nested.Cond.Left)
	}
	// The carrier's loader table was generated and applied.
	if plan.MblFields["sel"].LoaderTable == "" {
		t.Fatal("no carrier loader for condition use")
	}
}

// TestKitchenSinkPrimitives lowers every supported P4-14 primitive.
func TestKitchenSinkPrimitives(t *testing.T) {
	src := `
header_type h_t { fields { a : 32; b : 32; c : 32; } }
header h_t hdr;
register r { width : 32; instance_count : 8; }
field_list fl { hdr.a; }
field_list_calculation hc { input { fl; } algorithm : crc32; output_width : 16; }
action everything(p) {
  modify_field(hdr.a, p);
  add(hdr.a, hdr.b, hdr.c);
  subtract(hdr.a, hdr.b, hdr.c);
  bit_and(hdr.a, hdr.b, hdr.c);
  bit_or(hdr.a, hdr.b, hdr.c);
  bit_xor(hdr.a, hdr.b, hdr.c);
  shift_left(hdr.a, hdr.b, 2);
  shift_right(hdr.a, hdr.b, 2);
  min(hdr.a, hdr.b, hdr.c);
  max(hdr.a, hdr.b, hdr.c);
  add_to_field(hdr.a, 1);
  subtract_from_field(hdr.a, 1);
  register_read(hdr.b, r, 0);
  register_write(r, 1, hdr.a);
  register_increment(r, 2, hdr.c);
  count(r, 3);
  count_bytes(r, 4);
  modify_field_with_hash_based_offset(hdr.c, 0, hc, 8);
  no_op();
}
action bounce() { recirculate(); }
table t { actions { everything; bounce; } default_action : everything(9); size : 1; }
control ingress { apply(t); }
`
	plan := compile(t, src)
	a := plan.Prog.Actions["everything"]
	if len(a.Body) != 19 {
		t.Fatalf("lowered %d primitives, want 19", len(a.Body))
	}
	// Parameter width inferred from its widest destination (32).
	if a.Params[0].Width != 32 {
		t.Fatalf("inferred param width = %d", a.Params[0].Width)
	}
	// count_bytes increments by packet_length.
	found := false
	for _, prim := range a.Body {
		if ri, ok := prim.(p4.RegisterIncrement); ok && ri.By.Kind == p4.OpField &&
			ri.By.Name == p4.FieldPacketLen {
			found = true
		}
	}
	if !found {
		t.Fatal("count_bytes did not lower to a packet_length increment")
	}
}
